package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	olog "demandrace/internal/obs/log"
	"demandrace/internal/runner"
)

// syncBuffer lets the test read log output while server goroutines are
// still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func getStats(t *testing.T, baseURL string) StatsSummary {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats: status %d", resp.StatusCode)
	}
	var sum StatsSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	return sum
}

func TestStatsPopulatedAfterJob(t *testing.T) {
	_, ts, cl := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	st, err := cl.Submit(ctx, Request{Kernel: "racy_flag"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := cl.Wait(ctx, st.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	sum := getStats(t, ts.URL)

	if sum.Workers != 1 || sum.Health != HealthOK {
		t.Errorf("workers/health = %d/%q", sum.Workers, sum.Health)
	}
	if sum.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v", sum.UptimeSeconds)
	}
	if sum.Jobs.Submitted != 1 || sum.Jobs.Completed != 1 {
		t.Errorf("job counters = %+v", sum.Jobs)
	}
	// Endpoint rows come back in registration order, so dashboards can rely
	// on stable positions.
	wantRoutes := []string{"post_jobs", "post_traces", "put_trace_chunk",
		"get_trace_session", "post_trace_commit", "get_job", "get_job_trace",
		"get_job_partial", "get_result", "get_cache_keys", "get_cache_entry",
		"put_cache_entry", "get_timeseries", "get_events",
		"get_alerts", "get_dashboard", "get_stats", "healthz", "metrics"}
	if len(sum.Endpoints) != len(wantRoutes) {
		t.Fatalf("endpoints = %d rows, want %d", len(sum.Endpoints), len(wantRoutes))
	}
	for i, want := range wantRoutes {
		if sum.Endpoints[i].Route != want {
			t.Errorf("endpoint[%d] = %q, want %q", i, sum.Endpoints[i].Route, want)
		}
	}
	// The submit and the status polls were measured: their percentiles must
	// be non-zero (acceptance criterion for the stats endpoint).
	post := sum.Endpoints[0]
	if post.Count == 0 || post.P50MS <= 0 || post.P99MS <= 0 {
		t.Errorf("post_jobs latency summary empty: %+v", post)
	}
	if sum.QueueWait.Count != 1 || sum.JobDuration.Count != 1 {
		t.Errorf("queue_wait/job_duration counts = %d/%d, want 1/1",
			sum.QueueWait.Count, sum.JobDuration.Count)
	}
	if sum.JobDuration.P50MS <= 0 {
		t.Errorf("job duration p50 = %v, want > 0", sum.JobDuration.P50MS)
	}
	if sum.SLO.Requests == 0 || sum.SLO.Target != 0.99 || sum.SLO.ThresholdMS != 500 {
		t.Errorf("SLO = %+v", sum.SLO)
	}
	if sum.SLO.Compliance < 0 || sum.SLO.Compliance > 1 {
		t.Errorf("SLO compliance out of range: %v", sum.SLO.Compliance)
	}
}

func TestHealthzDegradedOnQueuePressure(t *testing.T) {
	// No workers started: submissions pile up in the queue deterministically.
	s := NewServer(Config{QueueDepth: 8, QueueHighWater: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(fmt.Sprintf(`{"kernel":"racy_flag","seed":%d}`, i)))
		if err != nil {
			t.Fatalf("POST %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d: status %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz: status %d, want 503", resp.StatusCode)
	}
	var body struct {
		Status    string `json:"status"`
		Queued    int    `json:"queued"`
		HighWater int    `json:"high_water"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding healthz body: %v", err)
	}
	if body.Status != HealthDegraded {
		t.Errorf("status = %q, want %q", body.Status, HealthDegraded)
	}
	if body.Queued <= body.HighWater || body.HighWater != 2 {
		t.Errorf("queued/high_water = %d/%d, want queued past 2", body.Queued, body.HighWater)
	}
	// /v1/stats mirrors the same pressure signal.
	sum := getStats(t, ts.URL)
	if sum.Health != HealthDegraded || !sum.Queue.Degraded {
		t.Errorf("stats health = %q degraded=%v", sum.Health, sum.Queue.Degraded)
	}
	if sum.Queue.Depth != body.Queued || sum.Queue.Capacity != 8 {
		t.Errorf("stats queue = %+v", sum.Queue)
	}
}

func TestAccessLogsAndJobLifecycleLogs(t *testing.T) {
	var logs syncBuffer
	lg := olog.New(olog.Options{Level: slog.LevelDebug, Format: olog.FormatJSON, Output: &logs})
	_, ts, cl := newTestServer(t, Config{Workers: 1, Log: lg})
	ctx := context.Background()

	st, err := cl.Submit(ctx, Request{Kernel: "racy_flag"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := cl.Wait(ctx, st.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if _, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatalf("GET healthz: %v", err)
	}

	// The access line is written after the response body flushes, so give
	// the handler goroutine a moment to get there.
	deadline := time.Now().Add(2 * time.Second)
	var access, healthz, lifecycle map[string]any
	for time.Now().Before(deadline) {
		access, healthz, lifecycle = nil, nil, nil
		for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
			if line == "" {
				continue
			}
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("log line is not JSON: %v\n%s", err, line)
			}
			switch {
			case rec["msg"] == "http request" && rec["route"] == "post_jobs":
				access = rec
			case rec["msg"] == "http request" && rec["route"] == "healthz":
				healthz = rec
			case rec["msg"] == "job done":
				lifecycle = rec
			}
		}
		if access != nil && healthz != nil && lifecycle != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if access == nil {
		t.Fatalf("no post_jobs access log in:\n%s", logs.String())
	}
	for _, key := range []string{"method", "path", "status", "bytes", "dur_ms", "level", "time"} {
		if _, ok := access[key]; !ok {
			t.Errorf("access log missing %q: %v", key, access)
		}
	}
	if access["method"] != "POST" || access["path"] != "/v1/jobs" {
		t.Errorf("access log fields = %v", access)
	}
	if healthz == nil {
		t.Errorf("quiet healthz route not logged at debug level:\n%s", logs.String())
	} else if healthz["level"] != "DEBUG" {
		t.Errorf("healthz access log level = %v, want DEBUG", healthz["level"])
	}
	if lifecycle == nil {
		t.Fatalf("no job lifecycle log in:\n%s", logs.String())
	}
	if lifecycle["job_id"] != st.ID {
		t.Errorf("lifecycle log job_id = %v, want %s", lifecycle["job_id"], st.ID)
	}
}

func TestProfileRequestedJob(t *testing.T) {
	_, _, cl := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	st, err := cl.Submit(ctx, Request{Kernel: "racy_flag", Profile: true})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st, err = cl.Wait(ctx, st.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	data, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	var rep runner.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decoding report: %v", err)
	}
	if rep.Profile == nil || rep.Profile.TotalSamples == 0 {
		t.Fatalf("profiled job returned no profile: %+v", rep.Profile)
	}
	// The same request without profiling is a different cache key: it must
	// rerun, and its report must carry no profile.
	st2, err := cl.Submit(ctx, Request{Kernel: "racy_flag"})
	if err != nil {
		t.Fatalf("Submit unprofiled: %v", err)
	}
	if st2.CacheHit {
		t.Fatal("unprofiled request hit the profiled job's cache entry")
	}
	if _, err := cl.Wait(ctx, st2.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	// An identical profiled resubmit does hit.
	st3, err := cl.Submit(ctx, Request{Kernel: "racy_flag", Profile: true})
	if err != nil {
		t.Fatalf("profiled resubmit: %v", err)
	}
	if !st3.CacheHit {
		t.Fatal("identical profiled resubmission missed the cache")
	}
}
