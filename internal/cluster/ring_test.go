package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingLookupDeterministic: two rings built from the same members — in
// different insertion orders — must place every key identically. This is
// the property the whole cluster design leans on: any gateway instance
// with the same membership routes the same.
func TestRingLookupDeterministic(t *testing.T) {
	a := NewRing(64)
	for _, m := range []string{"n1", "n2", "n3"} {
		a.Add(m)
	}
	b := NewRing(64)
	for _, m := range []string{"n3", "n1", "n2"} {
		b.Add(m)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		la, lb := a.Lookup(key, 3), b.Lookup(key, 3)
		if !reflect.DeepEqual(la, lb) {
			t.Fatalf("key %q: ring A %v, ring B %v", key, la, lb)
		}
		if len(la) != 3 {
			t.Fatalf("key %q: want 3 distinct candidates, got %v", key, la)
		}
		seen := map[string]bool{}
		for _, m := range la {
			if seen[m] {
				t.Fatalf("key %q: duplicate candidate in %v", key, la)
			}
			seen[m] = true
		}
	}
}

// TestRingDistribution: with virtual nodes, each of 3 members should own a
// non-degenerate share of the keyspace. The bound is deliberately loose
// (>10% each); we care that no member is starved, not about perfection.
func TestRingDistribution(t *testing.T) {
	r := NewRing(DefaultVNodes)
	members := []string{"n1", "n2", "n3"}
	for _, m := range members {
		r.Add(m)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, m := range members {
		if share := float64(counts[m]) / keys; share < 0.10 {
			t.Fatalf("member %s owns %.1f%% of keys, want > 10%% (counts %v)", m, share*100, counts)
		}
	}
}

// TestRingEvictionStability: evicting a member must leave every key it did
// NOT own exactly where it was — only the evicted member's share moves.
func TestRingEvictionStability(t *testing.T) {
	r := NewRing(DefaultVNodes)
	for _, m := range []string{"n1", "n2", "n3"} {
		r.Add(m)
	}
	const keys = 1000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("key-%d", i))
	}

	r.Evict("n2")
	if got := r.Active(); !reflect.DeepEqual(got, []string{"n1", "n3"}) {
		t.Fatalf("active after eviction = %v", got)
	}
	moved := 0
	for i := range before {
		after := r.Owner(fmt.Sprintf("key-%d", i))
		if after == "n2" {
			t.Fatalf("key-%d still routed to evicted member", i)
		}
		if before[i] != "n2" && after != before[i] {
			t.Fatalf("key-%d moved %s -> %s though its owner was not evicted", i, before[i], after)
		}
		if before[i] == "n2" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("test is vacuous: n2 owned no keys")
	}

	// Readmission restores the exact original placement.
	r.Readmit("n2")
	for i := range before {
		if after := r.Owner(fmt.Sprintf("key-%d", i)); after != before[i] {
			t.Fatalf("key-%d after readmission: %s, want %s", i, after, before[i])
		}
	}
}

// TestRingSuccessorsDistribution: with replication factor 2 (one
// successor), the successor role must spread across members like
// ownership does — no member may be starved of replica duty, and a key's
// successor is never its owner.
func TestRingSuccessorsDistribution(t *testing.T) {
	r := NewRing(DefaultVNodes)
	members := []string{"n1", "n2", "n3", "n4"}
	for _, m := range members {
		r.Add(m)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		succ := r.Successors(key, 1)
		if len(succ) != 1 {
			t.Fatalf("key %q: want 1 successor, got %v", key, succ)
		}
		if succ[0] == r.Owner(key) {
			t.Fatalf("key %q: successor %s is the owner", key, succ[0])
		}
		counts[succ[0]]++
	}
	for _, m := range members {
		if share := float64(counts[m]) / keys; share < 0.10 {
			t.Fatalf("member %s is successor for %.1f%% of keys, want > 10%% (counts %v)", m, share*100, counts)
		}
	}
	// n larger than the remaining membership caps at everyone-but-the-owner.
	if succ := r.Successors("key-0", 10); len(succ) != len(members)-1 {
		t.Fatalf("over-asking successors = %v, want %d members", succ, len(members)-1)
	}
}

// TestRingSuccessorsEvictionStability mirrors the eviction-stability test
// for replica sets: evicting an unrelated member must not reorder the
// surviving members of any key's successor set — only the evicted member
// drops out (back-filled from further along the ring), and readmission
// restores every set exactly.
func TestRingSuccessorsEvictionStability(t *testing.T) {
	r := NewRing(DefaultVNodes)
	members := []string{"n1", "n2", "n3", "n4"}
	for _, m := range members {
		r.Add(m)
	}
	const keys = 1000
	before := make([][]string, keys)
	for i := range before {
		before[i] = r.Successors(fmt.Sprintf("key-%d", i), 2)
	}

	chains := make([][]string, keys)
	for i := range chains {
		chains[i] = r.Lookup(fmt.Sprintf("key-%d", i), 3) // owner + the 2 successors
	}

	r.Evict("n4")
	touched := 0
	for i := range chains {
		key := fmt.Sprintf("key-%d", i)
		after := r.Lookup(key, 3)
		for _, m := range after {
			if m == "n4" {
				t.Fatalf("key-%d: evicted member in chain %v", i, after)
			}
		}
		// Eviction removes n4 from the replica chain without swapping any
		// two survivors: the old chain minus n4 must be a prefix of the new
		// chain. (If n4 owned the key, its first successor is promoted to
		// owner — the chain shifts left, order preserved.)
		survivors := make([]string, 0, 3)
		for _, m := range chains[i] {
			if m != "n4" {
				survivors = append(survivors, m)
			}
		}
		if len(survivors) < len(chains[i]) {
			touched++
		}
		for j, m := range survivors {
			if j >= len(after) || after[j] != m {
				t.Fatalf("key-%d: chain %v became %v; survivors reordered", i, chains[i], after)
			}
		}
		// Successors stays consistent with the chain view.
		if succ := r.Successors(key, 2); !reflect.DeepEqual(succ, after[1:]) {
			t.Fatalf("key-%d: Successors %v disagrees with Lookup chain %v", i, succ, after)
		}
	}
	if touched == 0 {
		t.Fatal("test is vacuous: n4 was in no replica chain")
	}

	r.Readmit("n4")
	for i := range before {
		if after := r.Successors(fmt.Sprintf("key-%d", i), 2); !reflect.DeepEqual(after, before[i]) {
			t.Fatalf("key-%d after readmission: %v, want %v", i, after, before[i])
		}
	}
}

// TestRingLookupSkipsEvicted: failover candidate lists never include an
// evicted member, and shrink when membership does.
func TestRingLookupSkipsEvicted(t *testing.T) {
	r := NewRing(32)
	for _, m := range []string{"n1", "n2", "n3"} {
		r.Add(m)
	}
	r.Evict("n1")
	for i := 0; i < 200; i++ {
		cands := r.Lookup(fmt.Sprintf("key-%d", i), 3)
		if len(cands) != 2 {
			t.Fatalf("want 2 candidates after eviction, got %v", cands)
		}
		for _, m := range cands {
			if m == "n1" {
				t.Fatalf("evicted member in candidates %v", cands)
			}
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup("k", 2); got != nil {
		t.Fatalf("empty ring lookup = %v", got)
	}
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if r.Size() != 0 {
		t.Fatalf("empty ring size = %d", r.Size())
	}
}

func TestParseBackends(t *testing.T) {
	bs, err := ParseBackends("http://127.0.0.1:8318, fast=http://10.0.0.2:9000/")
	if err != nil {
		t.Fatalf("ParseBackends: %v", err)
	}
	want := []Backend{
		{Name: "127.0.0.1-8318", URL: "http://127.0.0.1:8318"},
		{Name: "fast", URL: "http://10.0.0.2:9000"},
	}
	if !reflect.DeepEqual(bs, want) {
		t.Fatalf("parsed %+v, want %+v", bs, want)
	}
	for _, bad := range []string{"", "   ", "not-a-url", "a=http://x:1,a=http://y:2"} {
		if _, err := ParseBackends(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}
