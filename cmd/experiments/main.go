// Command experiments regenerates the tables and figures of the paper's
// evaluation (reconstructed per DESIGN.md).
//
// Independent simulation runs fan out across a worker pool (one worker per
// CPU by default; bound it with -workers). Tables are byte-identical for
// every worker count; a timing summary — per-experiment wall clock, run
// throughput, and realized parallel speedup — goes to stderr so it never
// perturbs the comparable stdout stream.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig4 -threads 8 -scale 2
//	experiments -exp fig1 -csv
//	experiments -quick               # seconds-long smoke run of every experiment
//	experiments -workers 1           # serial baseline (identical output)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"demandrace/internal/experiments"
	"demandrace/internal/parallel"
	"demandrace/internal/stats"
)

type tabler interface{ Table() *stats.Table }

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run executes the selected experiments, rendering tables to out and the
// timing/throughput summary to diag. Keeping the two streams separate is
// what lets `-workers N` output be byte-compared against `-workers 1`.
func run(args []string, out, diag io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment: scorecard|tab1|fig1|fig2|fig3|fig4|fig5|fig6|fig7|tab3|tab4|tab5|tab6|all")
		threads = fs.Int("threads", 4, "worker thread count")
		scale   = fs.Int("scale", 1, "workload scale factor")
		csv     = fs.Bool("csv", false, "emit CSV instead of text tables")
		workers = fs.Int("workers", 0, "parallel simulation runs (0 = one per CPU, 1 = serial)")
		quick   = fs.Bool("quick", false, "smoke mode: trimmed kernels and seeds, runs in seconds")
		timing  = fs.Bool("timing", true, "print wall-clock/throughput stats to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng := parallel.New(*workers)
	o := experiments.Options{
		Threads: *threads,
		Scale:   *scale,
		Workers: *workers,
		Quick:   *quick,
		Engine:  eng,
	}

	runners := map[string]func(experiments.Options) (tabler, error){
		"tab1":      func(o experiments.Options) (tabler, error) { return experiments.Tab1(o) },
		"fig1":      func(o experiments.Options) (tabler, error) { return experiments.Fig1(o) },
		"fig2":      func(o experiments.Options) (tabler, error) { return experiments.Fig2(o) },
		"fig3":      func(o experiments.Options) (tabler, error) { return experiments.Fig3(o) },
		"fig4":      func(o experiments.Options) (tabler, error) { return experiments.Fig4(o) },
		"fig5":      func(o experiments.Options) (tabler, error) { return experiments.Fig5(o) },
		"fig6":      func(o experiments.Options) (tabler, error) { return experiments.Fig6(o) },
		"tab3":      func(o experiments.Options) (tabler, error) { return experiments.Tab3(o) },
		"tab4":      func(o experiments.Options) (tabler, error) { return experiments.Tab4(o) },
		"tab5":      func(o experiments.Options) (tabler, error) { return experiments.Tab5(o) },
		"fig7":      func(o experiments.Options) (tabler, error) { return experiments.Fig7(o) },
		"tab6":      func(o experiments.Options) (tabler, error) { return experiments.Tab6(o) },
		"scorecard": func(o experiments.Options) (tabler, error) { return experiments.Scorecard(o) },
	}
	order := []string{"scorecard", "tab1", "fig1", "fig2", "fig3", "fig4", "tab3", "fig5", "fig6", "fig7", "tab4", "tab5", "tab6"}

	var names []string
	if *exp == "all" {
		names = order
	} else if _, ok := runners[*exp]; ok {
		names = []string{*exp}
	} else {
		return fmt.Errorf("unknown experiment %q", *exp)
	}

	type timingRow struct {
		name  string
		wall  time.Duration
		delta parallel.Stats
	}
	var rows []timingRow
	suiteStart := time.Now()
	for _, name := range names {
		prev := eng.Stats()
		expStart := time.Now()
		res, err := runners[name](o)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, timingRow{name: name, wall: time.Since(expStart), delta: eng.Stats().Sub(prev)})
		tb := res.Table()
		if *csv {
			fmt.Fprint(out, tb.CSV())
		} else {
			fmt.Fprintln(out, tb)
		}
	}
	suiteWall := time.Since(suiteStart)

	if *timing {
		total := eng.Stats()
		tb := stats.NewTable(
			fmt.Sprintf("Harness timing — %d workers", eng.Workers()),
			"experiment", "runs", "busy (serial-equiv)", "wall", "speedup (×)", "runs/s")
		for _, r := range rows {
			tb.AddRow(r.name,
				fmt.Sprintf("%d", r.delta.Jobs),
				r.delta.Busy.Round(time.Millisecond).String(),
				r.wall.Round(time.Millisecond).String(),
				fmt.Sprintf("%.2f", r.delta.Speedup()),
				fmt.Sprintf("%.1f", r.delta.Throughput()))
		}
		suiteSpeedup := 0.0
		if suiteWall > 0 {
			suiteSpeedup = float64(total.Busy) / float64(suiteWall)
		}
		tb.AddRow("TOTAL",
			fmt.Sprintf("%d", total.Jobs),
			total.Busy.Round(time.Millisecond).String(),
			suiteWall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", suiteSpeedup),
			fmt.Sprintf("%.1f", float64(total.Jobs)/suiteWall.Seconds()))
		fmt.Fprintln(diag, tb)
	}
	return nil
}
