package experiments

import (
	"testing"

	"demandrace/internal/parallel"
)

// The parallel engine's determinism contract (see ARCHITECTURE.md): any
// Options.Workers value must render byte-identical tables. Fig4 is the
// headline per-kernel fan-out; Tab3 additionally exercises flattened
// multi-axis grids (kernel × repeats × seed) with ordered floating-point
// and integer aggregation.

func renderFig4(t *testing.T, workers int) string {
	t.Helper()
	r, err := Fig4(Options{Workers: workers})
	if err != nil {
		t.Fatalf("Fig4 workers=%d: %v", workers, err)
	}
	return r.Table().String()
}

func renderTab3(t *testing.T, workers int) string {
	t.Helper()
	r, err := Tab3(Options{Workers: workers})
	if err != nil {
		t.Fatalf("Tab3 workers=%d: %v", workers, err)
	}
	return r.Table().String()
}

func TestFig4DeterministicAcrossWorkers(t *testing.T) {
	serial := renderFig4(t, 1)
	wide := renderFig4(t, 8)
	if serial != wide {
		t.Errorf("Fig4 tables differ:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, wide)
	}
}

func TestTab3DeterministicAcrossWorkers(t *testing.T) {
	serial := renderTab3(t, 1)
	wide := renderTab3(t, 8)
	if serial != wide {
		t.Errorf("Tab3 tables differ:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, wide)
	}
}

// TestQuickModeDeterministicAcrossWorkers pins the same contract on the
// trimmed -quick grids, which exercise different flattening shapes.
func TestQuickModeDeterministicAcrossWorkers(t *testing.T) {
	for name, fn := range map[string]func(Options) (interface{ String() string }, error){
		"fig5": func(o Options) (interface{ String() string }, error) {
			r, err := Fig5(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"tab4": func(o Options) (interface{ String() string }, error) {
			r, err := Tab4(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"tab5": func(o Options) (interface{ String() string }, error) {
			r, err := Tab5(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
	} {
		serial, err := fn(Options{Quick: true, Workers: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		wide, err := fn(Options{Quick: true, Workers: 8})
		if err != nil {
			t.Fatalf("%s wide: %v", name, err)
		}
		if serial.String() != wide.String() {
			t.Errorf("%s quick tables differ:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
				name, serial.String(), wide.String())
		}
	}
}

// TestSharedEngineAccumulatesAcrossExperiments checks the throughput
// accounting cmd/experiments reports: one engine shared by several
// experiments must see every run.
func TestSharedEngineAccumulatesAcrossExperiments(t *testing.T) {
	eng := parallel.New(4)
	o := Options{Quick: true, Engine: eng}
	if _, err := Fig1(o); err != nil {
		t.Fatal(err)
	}
	afterFig1 := eng.Stats()
	if afterFig1.Jobs != len(suiteKernels(Options{Quick: true})) {
		t.Errorf("Fig1 quick ran %d jobs, want %d", afterFig1.Jobs, len(suiteKernels(Options{Quick: true})))
	}
	if _, err := Fig7(o); err != nil {
		t.Fatal(err)
	}
	delta := eng.Stats().Sub(afterFig1)
	if delta.Jobs != 4 {
		t.Errorf("Fig7 quick added %d jobs, want 4 sweep points", delta.Jobs)
	}
	if total := eng.Stats(); total.Busy <= 0 || total.Wall <= 0 {
		t.Errorf("engine stats not accumulating: %+v", total)
	}
}
