// Package shadow provides the shadow-memory table the race detectors hang
// their per-variable metadata on.
//
// Shadow state is tracked at word granularity (mem.WordSize): the detector's
// notion of "the same variable". Each word owns a State holding FastTrack's
// adaptive representation — a last-write epoch plus either a last-read epoch
// (the common case) or an inflated read vector clock once the variable is
// read-shared. The same State carries the optional full-VC (DJIT+-style)
// write history used by the representation ablation.
package shadow

import (
	"demandrace/internal/mem"
	"demandrace/internal/vclock"
)

// State is the per-word detector metadata.
type State struct {
	// W is the epoch of the last write (vclock.None if never written).
	W vclock.Epoch
	// R is the epoch of the last read, or vclock.ReadShared when the read
	// history has inflated to RVC, or vclock.None if never read.
	R vclock.Epoch
	// RVC is the read vector clock, allocated only after inflation.
	RVC *vclock.VC
	// WVC is the full write history (one component per thread), allocated
	// only by the full-VC detector variant.
	WVC *vclock.VC
	// WRegion and RRegion record the program region of the last write and
	// last read (representative reader once read-shared), giving race
	// reports the "where" a binary-instrumentation tool would take from
	// debug info.
	WRegion string
	RRegion string
}

// InflateRead converts an epoch-form read history into vector form,
// seeding it with the previous read epoch (if any).
func (s *State) InflateRead() {
	if s.RVC == nil {
		s.RVC = vclock.New(0)
	}
	if s.R != vclock.None && s.R != vclock.ReadShared {
		s.RVC.Set(s.R.TIDOf(), s.R.TimeOf())
	}
	s.R = vclock.ReadShared
}

// Table maps words to their shadow state, creating states on demand.
type Table struct {
	words map[mem.Addr]*State
}

// NewTable returns an empty shadow table.
func NewTable() *Table {
	return &Table{words: make(map[mem.Addr]*State)}
}

// Get returns the state for the word containing addr, or nil if the word
// has never been touched.
func (t *Table) Get(addr mem.Addr) *State {
	return t.words[mem.WordOf(addr)]
}

// GetOrCreate returns the state for the word containing addr, allocating a
// fresh zero state on first touch.
func (t *Table) GetOrCreate(addr mem.Addr) *State {
	w := mem.WordOf(addr)
	s, ok := t.words[w]
	if !ok {
		s = &State{}
		t.words[w] = s
	}
	return s
}

// Len returns the number of tracked words.
func (t *Table) Len() int { return len(t.words) }

// Range calls fn for every tracked word until fn returns false. Iteration
// order is unspecified.
func (t *Table) Range(fn func(word mem.Addr, s *State) bool) {
	for w, s := range t.words {
		if !fn(w, s) {
			return
		}
	}
}

// Reset drops all state (between experiment repetitions).
func (t *Table) Reset() {
	t.words = make(map[mem.Addr]*State)
}
