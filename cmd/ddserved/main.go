// Command ddserved is the race-analysis service daemon: it accepts
// analysis jobs over HTTP — a bundled kernel plus runner knobs as JSON, or
// an uploaded binary trace — runs them on a bounded worker pool, and serves
// JSON reports with content-addressed result caching and queue
// backpressure.
//
// Endpoints:
//
//	POST /v1/jobs               submit (JSON request or binary trace upload)
//	POST /v1/traces             open a chunked resumable trace-upload session
//	PUT  /v1/traces/{id}/chunks/{seq}  append one CRC-checked chunk (analyzed on arrival)
//	GET  /v1/traces/{id}        session snapshot (resume handle: next expected chunk)
//	POST /v1/traces/{id}/commit seal the session into a done job
//	GET  /v1/jobs/{id}/partial  races found so far, mid-stream or after commit
//	GET  /v1/jobs/{id}          poll job status
//	GET  /v1/jobs/{id}/trace    Chrome-trace waterfall of one job's lifecycle
//	GET  /v1/results/{id}       fetch the report of a done job
//	GET  /v1/timeseries         sampled metric history (-ts-interval/-ts-retention)
//	GET  /v1/events             live SSE stream of job, cache, and alert events
//	                            (resumable: send Last-Event-ID to replay)
//	GET  /v1/alerts             active + recently resolved alerts (-alert-rules)
//	GET  /v1/dashboard          self-contained HTML ops console
//	GET  /v1/stats              latency percentiles, SLO budget, pool state
//	GET  /healthz               liveness, drain state, per-subsystem detail
//	GET  /metrics               Prometheus text exposition
//
// Usage:
//
//	ddserved -addr 127.0.0.1:8318
//	ddserved -addr 127.0.0.1:0 -addr-file /tmp/ddserved.addr   # random port
//	ddserved -debug-addr 127.0.0.1:8319                        # pprof+expvar
//	ddserved -store-dir /var/lib/ddserved                      # results survive restarts
//	curl -d '{"kernel":"racy_flag"}' localhost:8318/v1/jobs
//	ddrace -kernel histogram -policy hitm-demand -submit http://localhost:8318
//
// Operational logs (access lines, job lifecycle) go to stderr as structured
// JSON by default; tune with -log-level and -log-format. The optional
// -debug-addr opens a second, loopback-only listener exposing
// net/http/pprof and expvar — kept off the public mux so profiling is an
// explicit opt-in.
//
// SIGINT/SIGTERM trigger a graceful shutdown: intake stops, queued and
// in-flight jobs drain (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"demandrace/internal/obs/alert"
	olog "demandrace/internal/obs/log"
	"demandrace/internal/service"
	"demandrace/internal/store"
	"demandrace/internal/tenant"
	"demandrace/internal/version"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8318", "listen address (port 0 picks a free port; see -addr-file)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		debugAddr   = flag.String("debug-addr", "", "optional second listener for net/http/pprof and expvar (empty = disabled)")
		workers     = flag.Int("workers", 0, "analysis worker pool width (0 = one per CPU)")
		queueDepth  = flag.Int("queue", 64, "submission queue depth; a full queue answers 429")
		highWater   = flag.Int("high-water", 0, "queue depth at which /healthz degrades to 503 (0 = 3/4 of -queue)")
		cacheSize   = flag.Int("cache", 256, "result cache entries (negative disables caching)")
		storeDir    = flag.String("store-dir", "", "directory for the crash-safe on-disk result store (empty = memory-only cache)")
		storeMax    = flag.Int64("store-max-bytes", 256<<20, "on-disk store size cap before oldest segments are compacted away (negative = unlimited)")
		node        = flag.String("node", "", "node name reported in /v1/stats (default ddserved)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-job deadline")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested deadlines")
		maxBytes    = flag.Int64("max-trace-bytes", 64<<20, "max accepted trace upload size in bytes")
		maxEvents   = flag.Uint64("max-trace-events", 1<<22, "max events an uploaded trace may declare")
		ingSessions = flag.Int("ingest-sessions", 0, "concurrent streaming-upload sessions admitted (0 = 64); excess opens answer 429")
		ingChunk    = flag.Int64("ingest-chunk-bytes", 0, "max size of one streamed chunk in bytes (0 = 4 MiB)")
		ingIdle     = flag.Duration("ingest-idle", 0, "idle streaming sessions are garbage-collected after this long (0 = 2m)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget before jobs are hard-canceled")
		sloLatency  = flag.Duration("slo-latency", 500*time.Millisecond, "request-latency SLO threshold reported by /v1/stats")
		sloTarget   = flag.Float64("slo-target", 0.99, "fraction of requests that must meet -slo-latency")
		tsInterval  = flag.Duration("ts-interval", 0, "time-series sampling period for /v1/timeseries (0 = 5s default)")
		tsRetention = flag.Duration("ts-retention", 0, "time-series history kept per metric (0 = 1h default)")
		alertRules  = flag.String("alert-rules", "", "JSON file of alert rules evaluated each ts-interval tick (empty = compiled-in defaults)")
		tenantsFile = flag.String("tenants", "", "JSON file of tenant configs; enables API-key admission control")
		versionFlag = flag.Bool("version", false, "print the version and exit")
	)
	logFlags := olog.Register(flag.CommandLine, olog.FormatJSON)
	flag.Parse()
	if *versionFlag {
		fmt.Println(version.String("ddserved"))
		return
	}
	lg, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddserved:", err)
		os.Exit(2)
	}
	var rules []alert.Rule
	if *alertRules != "" {
		rules, err = alert.LoadRulesFile(*alertRules)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddserved:", err)
			os.Exit(2)
		}
	}
	var tenants []tenant.Config
	if *tenantsFile != "" {
		tenants, err = tenant.LoadFile(*tenantsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddserved: -tenants:", err)
			os.Exit(2)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, options{
		addr:      *addr,
		addrFile:  *addrFile,
		debugAddr: *debugAddr,
		drain:     *drain,
		storeDir:  *storeDir,
		storeMax:  *storeMax,
		cfg: service.Config{
			Node:             *node,
			Workers:          *workers,
			QueueDepth:       *queueDepth,
			QueueHighWater:   *highWater,
			CacheEntries:     *cacheSize,
			DefaultTimeout:   *timeout,
			MaxTimeout:       *maxTimeout,
			MaxTraceBytes:    *maxBytes,
			MaxTraceEvents:   *maxEvents,
			IngestSessions:   *ingSessions,
			IngestChunkBytes: *ingChunk,
			IngestIdle:       *ingIdle,
			SLOLatency:       *sloLatency,
			SLOTarget:        *sloTarget,
			TSInterval:       *tsInterval,
			TSRetention:      *tsRetention,
			AlertRules:       rules,
			Tenants:          tenants,
			Log:              lg,
		},
	}); err != nil {
		lg.Error("ddserved exiting", "error", err.Error())
		os.Exit(1)
	}
}

type options struct {
	addr      string
	addrFile  string
	debugAddr string
	drain     time.Duration
	storeDir  string
	storeMax  int64
	cfg       service.Config
}

// run serves until ctx is canceled (main wires ctx to SIGINT/SIGTERM),
// then drains gracefully.
func run(ctx context.Context, opts options) error {
	if opts.cfg.Log == nil {
		opts.cfg.Log = olog.Discard()
	}
	lg := opts.cfg.Log

	if opts.storeDir != "" {
		st, err := store.Open(opts.storeDir, store.Options{MaxBytes: opts.storeMax, Log: lg})
		if err != nil {
			return fmt.Errorf("opening -store-dir: %w", err)
		}
		defer st.Close()
		opts.cfg.Store = st
		lg.Info("result store open", "dir", st.Dir(), "entries", st.Len(), "bytes", st.Size())
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if opts.addrFile != "" {
		if err := os.WriteFile(opts.addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}

	svc := service.NewServer(opts.cfg)
	svc.Start()
	httpSrv := &http.Server{Handler: svc.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	n := svc.Config()
	lg.Info("ddserved listening",
		"version", version.Version,
		"addr", bound,
		"workers", n.Workers,
		"queue", n.QueueDepth,
		"high_water", n.QueueHighWater,
		"cache", n.CacheEntries,
		"slo_latency_ms", n.SLOLatency.Milliseconds(),
		"slo_target", n.SLOTarget,
	)

	var debugSrv *http.Server
	if opts.debugAddr != "" {
		dln, err := net.Listen("tcp", opts.debugAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("listening on -debug-addr: %w", err)
		}
		debugSrv = &http.Server{Handler: debugMux()}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				lg.Error("debug listener failed", "error", err.Error())
			}
		}()
		lg.Info("debug listener up", "addr", dln.Addr().String(),
			"endpoints", "/debug/pprof/ /debug/vars")
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	lg.Info("draining", "queued", svc.QueueLen(), "budget_ms", opts.drain.Milliseconds())
	dctx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	// Drain order: stop intake and finish jobs first, then close the HTTP
	// listener, so pollers can still fetch results while jobs complete.
	if err := svc.Shutdown(dctx); err != nil {
		lg.Warn("drain incomplete", "error", err.Error())
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	lg.Info("ddserved stopped")
	return nil
}

// debugMux assembles the opt-in diagnostics surface: the stdlib pprof
// handlers (wired explicitly — importing net/http/pprof for its
// DefaultServeMux side effect would leak them onto any default-mux server)
// plus the expvar JSON dump.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
