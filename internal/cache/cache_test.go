package cache

import (
	"math/rand"
	"testing"

	"demandrace/internal/mem"
)

func newTest(t *testing.T, cfg Config) *Hierarchy {
	t.Helper()
	return New(cfg)
}

func addr(line, off uint64) mem.Addr {
	return mem.Addr(line*mem.LineSize + off)
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Cores: 0, SMT: 1, L1Sets: 64, L1Ways: 8},
		{Cores: 4, SMT: 0, L1Sets: 64, L1Ways: 8},
		{Cores: 4, SMT: 1, L1Sets: 63, L1Ways: 8},
		{Cores: 4, SMT: 1, L1Sets: 0, L1Ways: 8},
		{Cores: 4, SMT: 1, L1Sets: 64, L1Ways: 0},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestColdLoadFillsExclusive(t *testing.T) {
	h := newTest(t, DefaultConfig())
	res := h.Access(0, addr(1, 0), false)
	if res.HitL1 || res.HITM {
		t.Errorf("cold load: %+v", res)
	}
	if res.Latency != LatMemory {
		t.Errorf("cold load latency = %d, want %d", res.Latency, LatMemory)
	}
	if st := h.StateOf(0, mem.LineOf(addr(1, 0))); st != Exclusive {
		t.Errorf("state after cold load = %v, want E", st)
	}
}

func TestColdStoreFillsModified(t *testing.T) {
	h := newTest(t, DefaultConfig())
	h.Access(0, addr(1, 0), true)
	if st := h.StateOf(0, mem.LineOf(addr(1, 0))); st != Modified {
		t.Errorf("state after cold store = %v, want M", st)
	}
}

func TestLoadHitAfterLoad(t *testing.T) {
	h := newTest(t, DefaultConfig())
	h.Access(0, addr(1, 0), false)
	res := h.Access(0, addr(1, 8), false) // same line, different word
	if !res.HitL1 || res.Latency != LatL1Hit {
		t.Errorf("expected L1 hit, got %+v", res)
	}
}

func TestSilentUpgradeEtoM(t *testing.T) {
	h := newTest(t, DefaultConfig())
	h.Access(0, addr(1, 0), false) // E
	res := h.Access(0, addr(1, 0), true)
	if !res.HitL1 || len(res.Events) != 0 {
		t.Errorf("E→M upgrade should be silent, got %+v", res)
	}
	if st := h.StateOf(0, mem.LineOf(addr(1, 0))); st != Modified {
		t.Errorf("state = %v, want M", st)
	}
}

func TestHITMOnProducerConsumer(t *testing.T) {
	// The canonical W→R sharing pattern: core 0 writes, core 1 reads.
	h := newTest(t, DefaultConfig())
	h.Access(0, addr(5, 0), true) // producer dirties the line
	res := h.Access(1, addr(5, 0), false)
	if !res.HITM {
		t.Fatalf("consumer load should HITM, got %+v", res)
	}
	if res.SrcCore != 0 {
		t.Errorf("HITM source = %d, want 0", res.SrcCore)
	}
	if got := h.Stats().HITMLoad; got != 1 {
		t.Errorf("HITMLoad = %d, want 1", got)
	}
	// Afterwards both hold Shared.
	if h.StateOf(0, 5) != Shared || h.StateOf(1, 5) != Shared {
		t.Errorf("post-HITM states: core0=%v core1=%v, want S/S",
			h.StateOf(0, 5), h.StateOf(1, 5))
	}
}

func TestHITMOnWriteWrite(t *testing.T) {
	// W→W sharing: core 1's store misses and finds core 0's M copy.
	h := newTest(t, DefaultConfig())
	h.Access(0, addr(5, 0), true)
	res := h.Access(1, addr(5, 0), true)
	if !res.HITM {
		t.Fatalf("store to remote-M line should HITM, got %+v", res)
	}
	if h.Stats().HITMStore != 1 {
		t.Errorf("HITMStore = %d", h.Stats().HITMStore)
	}
	if h.StateOf(0, 5) != Invalid {
		t.Errorf("old owner should be invalidated, state=%v", h.StateOf(0, 5))
	}
	if h.StateOf(1, 5) != Modified {
		t.Errorf("new owner state = %v, want M", h.StateOf(1, 5))
	}
}

func TestNoHITMOnReadSharing(t *testing.T) {
	// R→R sharing is not a race indicator and raises no HITM.
	h := newTest(t, DefaultConfig())
	h.Access(0, addr(5, 0), false)
	res := h.Access(1, addr(5, 0), false)
	if res.HITM {
		t.Errorf("read-read sharing raised HITM: %+v", res)
	}
	if res.SrcCore != 0 || res.Latency != LatPeerCache {
		t.Errorf("expected peer-clean fill, got %+v", res)
	}
	if h.Stats().HITM != 0 {
		t.Errorf("HITM count = %d, want 0", h.Stats().HITM)
	}
}

func TestFalseSharingRaisesHITM(t *testing.T) {
	// Different words, same line: the hardware indicator fires even though
	// no word is actually shared. The detector will later reject this.
	h := newTest(t, DefaultConfig())
	h.Access(0, addr(5, 0), true)
	res := h.Access(1, addr(5, 8), false)
	if !res.HITM {
		t.Error("false sharing should raise HITM at line granularity")
	}
}

func TestEvictionHidesSharing(t *testing.T) {
	// Producer writes, line is evicted (flushed), consumer reads: the fill
	// comes from memory and no HITM fires. This is the indicator's blind
	// spot the paper documents.
	h := newTest(t, DefaultConfig())
	h.Access(0, addr(5, 0), true)
	h.Flush()
	res := h.Access(1, addr(5, 0), false)
	if res.HITM {
		t.Error("post-eviction fill should not HITM")
	}
	if res.Latency != LatMemory {
		t.Errorf("post-eviction fill latency = %d, want memory", res.Latency)
	}
	if h.Stats().Writebacks == 0 {
		t.Error("flush of dirty line should count a writeback")
	}
}

func TestCapacityEvictionHidesSharing(t *testing.T) {
	// Same blind spot via natural capacity eviction rather than Flush: fill
	// one set past its associativity.
	cfg := Config{Cores: 2, SMT: 1, L1Sets: 2, L1Ways: 2}
	h := newTest(t, cfg)
	// All these lines map to set 0 (line numbers even).
	h.Access(0, addr(0, 0), true) // victim-to-be
	h.Access(0, addr(2, 0), false)
	h.Access(0, addr(4, 0), false) // evicts line 0 (LRU)
	if h.StateOf(0, 0) != Invalid {
		t.Fatal("line 0 should have been evicted")
	}
	if h.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", h.Stats().Writebacks)
	}
	res := h.Access(1, addr(0, 0), false)
	if res.HITM {
		t.Error("consumer of evicted line should not HITM")
	}
}

func TestSMTSharingInvisible(t *testing.T) {
	// Two contexts on the same core share an L1: producer/consumer between
	// them never raises coherence events.
	cfg := Config{Cores: 2, SMT: 2, L1Sets: 64, L1Ways: 8}
	h := newTest(t, cfg)
	// Contexts 0 and 1 are both on core 0.
	h.Access(0, addr(5, 0), true)
	res := h.Access(1, addr(5, 0), false)
	if res.HITM || !res.HitL1 {
		t.Errorf("SMT sibling access should be a silent L1 hit, got %+v", res)
	}
	// Context 2 is on core 1: cross-core access still fires.
	res = h.Access(2, addr(5, 0), false)
	if !res.HITM {
		t.Errorf("cross-core access should HITM, got %+v", res)
	}
}

func TestInvalidationOnUpgrade(t *testing.T) {
	h := newTest(t, DefaultConfig())
	h.Access(0, addr(5, 0), false) // core0: E
	h.Access(1, addr(5, 0), false) // both S
	res := h.Access(0, addr(5, 0), true)
	if !res.HitL1 {
		t.Errorf("S→M upgrade should hit locally, got %+v", res)
	}
	var sawInv bool
	for _, ev := range res.Events {
		if ev.Kind == EvInvalidation {
			sawInv = true
		}
	}
	if !sawInv {
		t.Error("upgrade should invalidate the peer copy")
	}
	if h.StateOf(1, 5) != Invalid {
		t.Errorf("peer state = %v, want I", h.StateOf(1, 5))
	}
}

func TestWriteMissOverCleanPeerInvalidates(t *testing.T) {
	h := newTest(t, DefaultConfig())
	h.Access(0, addr(5, 0), false) // core0: E
	res := h.Access(1, addr(5, 0), true)
	if res.HITM {
		t.Error("store over clean peer copy must not count HITM")
	}
	if h.StateOf(0, 5) != Invalid || h.StateOf(1, 5) != Modified {
		t.Errorf("states: %v/%v, want I/M", h.StateOf(0, 5), h.StateOf(1, 5))
	}
}

func TestEventSink(t *testing.T) {
	h := newTest(t, DefaultConfig())
	var got []Event
	h.SetEventSink(func(ev Event) { got = append(got, ev) })
	h.Access(0, addr(5, 0), true)
	h.Access(1, addr(5, 0), false)
	if len(got) != 1 || got[0].Kind != EvHITM || got[0].Ctx != 1 || got[0].Src != 0 {
		t.Errorf("sink events = %+v", got)
	}
}

func TestContextRangePanics(t *testing.T) {
	h := newTest(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range context should panic")
		}
	}()
	h.Access(Context(99), addr(0, 0), false)
}

func TestLRUReplacement(t *testing.T) {
	cfg := Config{Cores: 1, SMT: 1, L1Sets: 1, L1Ways: 2}
	h := newTest(t, cfg)
	h.Access(0, addr(0, 0), false)
	h.Access(0, addr(1, 0), false)
	h.Access(0, addr(0, 0), false) // touch line 0, line 1 becomes LRU
	h.Access(0, addr(2, 0), false) // must evict line 1
	if h.StateOf(0, 1) != Invalid {
		t.Error("LRU line 1 should be evicted")
	}
	if h.StateOf(0, 0) == Invalid {
		t.Error("MRU line 0 should survive")
	}
}

// TestMESIInvariantsRandom drives a random access stream across cores and
// checks the single-writer invariants after every access.
func TestMESIInvariantsRandom(t *testing.T) {
	for _, cfg := range []Config{
		{Cores: 2, SMT: 1, L1Sets: 4, L1Ways: 2},
		{Cores: 4, SMT: 1, L1Sets: 8, L1Ways: 2},
		{Cores: 4, SMT: 2, L1Sets: 4, L1Ways: 1},
		{Cores: 8, SMT: 1, L1Sets: 2, L1Ways: 4},
	} {
		r := rand.New(rand.NewSource(42))
		h := New(cfg)
		for i := 0; i < 20000; i++ {
			ctx := Context(r.Intn(cfg.Contexts()))
			a := addr(uint64(r.Intn(32)), uint64(r.Intn(8)*8))
			h.Access(ctx, a, r.Intn(2) == 0)
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("cfg %+v step %d: %v", cfg, i, err)
			}
		}
	}
}

// TestHITMIffRemoteModified checks the defining property of the indicator:
// an access raises HITM exactly when some other core held the line Modified
// immediately before the access.
func TestHITMIffRemoteModified(t *testing.T) {
	cfg := Config{Cores: 4, SMT: 1, L1Sets: 4, L1Ways: 2}
	r := rand.New(rand.NewSource(7))
	h := New(cfg)
	for i := 0; i < 20000; i++ {
		ctx := Context(r.Intn(cfg.Contexts()))
		a := addr(uint64(r.Intn(16)), 0)
		l := mem.LineOf(a)
		core := h.CoreOf(ctx)
		remoteM := false
		for c := 0; c < cfg.Cores; c++ {
			if c != core && h.StateOf(c, l) == Modified {
				remoteM = true
			}
		}
		localHit := h.StateOf(core, l) != Invalid
		res := h.Access(ctx, a, r.Intn(2) == 0)
		wantHITM := remoteM && !localHit
		if res.HITM != wantHITM {
			t.Fatalf("step %d: HITM=%v, want %v (remoteM=%v localHit=%v)",
				i, res.HITM, wantHITM, remoteM, localHit)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	h := newTest(t, DefaultConfig())
	h.Access(0, addr(1, 0), false)
	h.Access(0, addr(1, 0), false)
	h.Access(0, addr(2, 0), true)
	s := h.Stats()
	if s.Accesses != 3 || s.Loads != 2 || s.Stores != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.L1Hits != 1 || s.L1Misses != 2 {
		t.Errorf("hit/miss = %d/%d", s.L1Hits, s.L1Misses)
	}
	if s.MemoryFills != 2 {
		t.Errorf("memory fills = %d", s.MemoryFills)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if st.String() != want {
			t.Errorf("%v.String() = %q", uint8(st), st.String())
		}
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvHITM: "HITM", EvHitShared: "HIT_SHARED",
		EvInvalidation: "INVALIDATION", EvWriteback: "WRITEBACK",
	} {
		if k.String() != want {
			t.Errorf("kind %d String = %q, want %q", uint8(k), k.String(), want)
		}
	}
}

func TestPrefetcherPullsNextLine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NextLinePrefetch = true
	h := New(cfg)
	h.Access(0, addr(5, 0), false) // miss → prefetch line 6
	if h.StateOf(0, 6) == Invalid {
		t.Error("next line not prefetched")
	}
	if h.Stats().Prefetches == 0 {
		t.Error("prefetch not counted")
	}
	// The prefetched line now hits without any further fill.
	res := h.Access(0, addr(6, 0), false)
	if !res.HitL1 {
		t.Error("prefetched line missed")
	}
}

func TestPrefetcherHidesSequentialSharing(t *testing.T) {
	// Producer dirties lines 5 and 6. Consumer reads line 5 (HITM) — the
	// prefetcher silently drains line 6, so the consumer's later read of
	// line 6 is a local hit with NO second HITM: the prefetch blind spot.
	cfg := DefaultConfig()
	cfg.NextLinePrefetch = true
	h := New(cfg)
	h.Access(0, addr(5, 0), true)
	h.Access(0, addr(6, 0), true)
	res5 := h.Access(1, addr(5, 0), false)
	if !res5.HITM {
		t.Fatal("first consumer read should HITM")
	}
	if h.Stats().PrefetchedHITM != 1 {
		t.Fatalf("prefetched-HITM = %d, want 1", h.Stats().PrefetchedHITM)
	}
	res6 := h.Access(1, addr(6, 0), false)
	if res6.HITM || !res6.HitL1 {
		t.Errorf("prefetched sharing should be silent: %+v", res6)
	}
	// Exactly one PMU-visible HITM for two truly shared lines.
	if h.Stats().HITM != 1 {
		t.Errorf("visible HITM = %d, want 1", h.Stats().HITM)
	}
}

func TestPrefetcherNoEventEmission(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NextLinePrefetch = true
	h := New(cfg)
	var hitms int
	h.SetEventSink(func(ev Event) {
		if ev.Kind == EvHITM {
			hitms++
		}
	})
	h.Access(0, addr(5, 0), true)
	h.Access(0, addr(6, 0), true)
	h.Access(1, addr(5, 0), false) // HITM on 5, silent prefetch drain of 6
	if hitms != 1 {
		t.Errorf("HITM events = %d, want 1", hitms)
	}
}

func TestPrefetcherInvariantsRandom(t *testing.T) {
	cfg := Config{Cores: 4, SMT: 1, L1Sets: 4, L1Ways: 2, L2Sets: 32, L2Ways: 4, NextLinePrefetch: true}
	r := rand.New(rand.NewSource(3))
	h := New(cfg)
	for i := 0; i < 20000; i++ {
		ctx := Context(r.Intn(cfg.Contexts()))
		a := addr(uint64(r.Intn(24)), uint64(r.Intn(8)*8))
		h.Access(ctx, a, r.Intn(2) == 0)
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestPerCoreStats(t *testing.T) {
	h := newTest(t, DefaultConfig())
	h.Access(0, addr(5, 0), true)  // core 0 miss
	h.Access(0, addr(5, 0), false) // core 0 hit
	h.Access(1, addr(5, 0), false) // core 1 miss, HITM in; core 0 supplies
	pc := h.PerCoreStats()
	if pc[0].Misses != 1 || pc[0].Hits != 1 || pc[0].HITMOut != 1 || pc[0].HITMIn != 0 {
		t.Errorf("core0 = %+v", pc[0])
	}
	if pc[1].Misses != 1 || pc[1].HITMIn != 1 || pc[1].HITMOut != 0 {
		t.Errorf("core1 = %+v", pc[1])
	}
	// Snapshot independence.
	pc[0].Hits = 999
	if h.PerCoreStats()[0].Hits == 999 {
		t.Error("PerCoreStats aliases internal state")
	}
}

func TestPerCoreStatsSumToGlobal(t *testing.T) {
	h := newTest(t, DefaultConfig())
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		h.Access(Context(r.Intn(4)), addr(uint64(r.Intn(32)), 0), r.Intn(2) == 0)
	}
	var hits, misses, in, out uint64
	for _, pc := range h.PerCoreStats() {
		hits += pc.Hits
		misses += pc.Misses
		in += pc.HITMIn
		out += pc.HITMOut
	}
	st := h.Stats()
	if hits != st.L1Hits || misses != st.L1Misses {
		t.Errorf("per-core sums %d/%d != global %d/%d", hits, misses, st.L1Hits, st.L1Misses)
	}
	if in != st.HITM || out != st.HITM {
		t.Errorf("HITM in/out sums %d/%d != global %d", in, out, st.HITM)
	}
}
