package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// SpanRecord is one completed wall-clock span, as persisted by a
// SpanRecorder: what ran, when it started, how long it took, and the
// attributes it carried. Track names the process (or tier) the span ran
// in — "ddserved", "ddgate" — so a merged cross-process waterfall keeps
// each hop on its own row.
type SpanRecord struct {
	Track string
	Name  string
	Start time.Time
	Dur   time.Duration
	Attrs []SpanAttr
}

// SpanRecorder collects the completed spans of one unit of work (one job)
// so the tree outlives the request that produced it and can be served
// later as a trace waterfall. It is bounded: past cap, new records are
// dropped and counted, so a pathological job cannot grow memory without
// limit. A nil *SpanRecorder is a valid no-op receiver, matching the
// package's conventions — recording is attached where wanted and free
// everywhere else.
type SpanRecorder struct {
	track string
	cap   int

	mu      sync.Mutex
	recs    []SpanRecord
	dropped int
}

// DefaultSpanRecorderCap bounds a job's recorded spans. A job's tree is a
// handful of stages; 256 leaves generous room for retries and per-stage
// detail while keeping the worst case small.
const DefaultSpanRecorderCap = 256

// NewSpanRecorder builds a recorder whose records carry track as their
// Track. capacity <= 0 takes DefaultSpanRecorderCap.
func NewSpanRecorder(track string, capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = DefaultSpanRecorderCap
	}
	return &SpanRecorder{track: track, cap: capacity}
}

// Track returns the recorder's track name. Nil-safe.
func (r *SpanRecorder) Track() string {
	if r == nil {
		return ""
	}
	return r.track
}

// Add appends one completed span, stamping the recorder's track when the
// record names none. Past capacity the record is dropped (and counted) —
// early spans are the skeleton of the waterfall, so oldest-kept is the
// right bound here. Nil-safe.
func (r *SpanRecorder) Add(rec SpanRecord) {
	if r == nil {
		return
	}
	if rec.Track == "" {
		rec.Track = r.track
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recs) >= r.cap {
		r.dropped++
		return
	}
	r.recs = append(r.recs, rec)
}

// Records returns a copy of the recorded spans, in completion order.
// Nil-safe.
func (r *SpanRecorder) Records() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanRecord(nil), r.recs...)
}

// Dropped returns how many records the capacity bound discarded. Nil-safe.
func (r *SpanRecorder) Dropped() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// baseUnixUSKey is the otherData key carrying the absolute wall-clock
// instant (microseconds since the Unix epoch) that a span trace's ts=0
// corresponds to. It is what lets a gateway merge its own spans with a
// backend's: both documents re-base onto one shared timeline.
const baseUnixUSKey = "base_unix_us"

// EncodeSpanTrace renders wall-clock span records as a Chrome trace-event
// JSON document (loadable in Perfetto or chrome://tracing). Every record
// becomes a complete ("X") slice; tracks map onto viewer rows, labeled
// via thread_name metadata, with rows ordered by each track's earliest
// span so the document reads top-to-bottom in causal order (client edge
// first, backend stages below). Timestamps are microseconds relative to
// the earliest span; the absolute base lands in otherData so documents
// from different processes can be merged onto one timeline (see
// DecodeSpanTrace).
//
// Unlike WriteChromeTrace — which renders the simulator's deterministic
// cycle-stamped telemetry — this export is wall-clock by design: it
// describes service time, not simulated time, and its bytes are not
// expected to be reproducible.
func EncodeSpanTrace(label string, recs []SpanRecord, extra map[string]string) ([]byte, error) {
	doc := chromeTrace{
		OtherData: map[string]string{"label": label},
	}
	for k, v := range extra {
		doc.OtherData[k] = v
	}
	if len(recs) == 0 {
		doc.TraceEvents = []chromeEvent{}
		return json.Marshal(doc)
	}

	base := recs[0].Start
	trackFirst := make(map[string]time.Time)
	for _, rec := range recs {
		if rec.Start.Before(base) {
			base = rec.Start
		}
		if first, ok := trackFirst[rec.Track]; !ok || rec.Start.Before(first) {
			trackFirst[rec.Track] = rec.Start
		}
	}
	doc.OtherData[baseUnixUSKey] = strconv.FormatInt(base.UnixMicro(), 10)

	// Row order: earliest-starting track first, name as tiebreak.
	tracks := make([]string, 0, len(trackFirst))
	for tr := range trackFirst {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool {
		ti, tj := trackFirst[tracks[i]], trackFirst[tracks[j]]
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return tracks[i] < tracks[j]
	})
	tid := make(map[string]int, len(tracks))
	for i, tr := range tracks {
		tid[tr] = i
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: i,
			Args: map[string]string{"name": tr},
		})
	}
	for _, rec := range recs {
		ce := chromeEvent{
			Name: rec.Name, Cat: "span", Phase: "X",
			TS:  uint64(rec.Start.Sub(base) / time.Microsecond),
			Dur: uint64(rec.Dur / time.Microsecond),
			PID: 1, TID: tid[rec.Track],
		}
		if len(rec.Attrs) > 0 {
			ce.Args = make(map[string]string, len(rec.Attrs))
			for _, a := range rec.Attrs {
				ce.Args[a.Key] = a.Value
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	return json.Marshal(doc)
}

// DecodeSpanTrace parses a document produced by EncodeSpanTrace back into
// absolute-time span records plus the document's otherData. Metadata
// events reconstruct the track names; the base_unix_us key reconstructs
// absolute time, so records decoded from two processes' documents can be
// concatenated and re-encoded onto one shared timeline — which is exactly
// how ddgate prepends its forwarding spans to a backend's job waterfall.
func DecodeSpanTrace(data []byte) ([]SpanRecord, map[string]string, error) {
	var doc chromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, nil, fmt.Errorf("obs: decoding span trace: %w", err)
	}
	var baseUS int64
	if v, ok := doc.OtherData[baseUnixUSKey]; ok {
		var err error
		if baseUS, err = strconv.ParseInt(v, 10, 64); err != nil {
			return nil, nil, fmt.Errorf("obs: span trace %s %q: %w", baseUnixUSKey, v, err)
		}
	}
	base := time.UnixMicro(baseUS)

	trackName := make(map[int]string)
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" && ev.Name == "thread_name" {
			trackName[ev.TID] = ev.Args["name"]
		}
	}
	var recs []SpanRecord
	for _, ev := range doc.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		rec := SpanRecord{
			Track: trackName[ev.TID],
			Name:  ev.Name,
			Start: base.Add(time.Duration(ev.TS) * time.Microsecond),
			Dur:   time.Duration(ev.Dur) * time.Microsecond,
		}
		if rec.Track == "" {
			rec.Track = "track-" + strconv.Itoa(ev.TID)
		}
		if len(ev.Args) > 0 {
			keys := make([]string, 0, len(ev.Args))
			for k := range ev.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				rec.Attrs = append(rec.Attrs, SpanAttr{Key: k, Value: ev.Args[k]})
			}
		}
		recs = append(recs, rec)
	}
	return recs, doc.OtherData, nil
}

// WriteSpanTrace is EncodeSpanTrace straight to a writer.
func WriteSpanTrace(w io.Writer, label string, recs []SpanRecord, extra map[string]string) error {
	data, err := EncodeSpanTrace(label, recs, extra)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
