// Package demandrace is a reproduction of "Demand-Driven Software Race
// Detection using Hardware Performance Counters" (Greathouse, Ma, Frank,
// Peri, Austin; ISCA 2011) as a self-contained Go library.
//
// The paper's insight: data races require inter-thread data sharing, and
// cache-coherent hardware already detects sharing — a load or store that
// hits a line Modified in another core's cache raises a HITM coherence
// event that per-thread performance counters can sample. Gating a software
// happens-before race detector on that signal lets threads run
// uninstrumented until sharing actually occurs, recovering most of the
// 10–300× overhead of continuous analysis on low-sharing programs while
// finding nearly all of the same races.
//
// Because Go programs cannot portably observe per-thread HITM counters (the
// runtime migrates goroutines across threads at will), this reproduction
// builds the entire stack as a deterministic simulation: a MESI cache
// hierarchy that raises HITM events, a PMU with sample-after values, skid
// and drop-rate, a FastTrack happens-before detector standing in for the
// Intel Inspector XE engine, and the demand-driven controller that gates
// it. Workload kernels mimic the sharing profiles of the Phoenix and
// PARSEC suites the paper evaluates.
//
// # Quick start
//
//	b := demandrace.NewProgram("example")
//	x := b.Space().AllocLine(8)
//	t0, t1 := b.Thread(), b.Thread()
//	for i := 0; i < 10; i++ {
//		t0.Store(x).Compute(5)
//		t1.Load(x).Compute(5)
//	}
//	p := b.MustBuild()
//
//	rep, err := demandrace.Run(p, demandrace.DefaultConfig().WithPolicy(demandrace.HITMDemand))
//	if err != nil { ... }
//	fmt.Println(rep.Slowdown, rep.Races)
//
// The cmd/ddrace binary runs any bundled kernel under any policy, and
// cmd/experiments regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md).
package demandrace

import (
	"io"

	"demandrace/internal/cache"
	"demandrace/internal/cost"
	"demandrace/internal/demand"
	"demandrace/internal/detector"
	"demandrace/internal/mem"
	"demandrace/internal/obs"
	"demandrace/internal/perf"
	"demandrace/internal/program"
	"demandrace/internal/racefuzz"
	"demandrace/internal/runner"
	"demandrace/internal/trace"
	"demandrace/internal/workloads"
)

// Addr is a byte address in the simulated flat address space.
type Addr = mem.Addr

// AddressSpace hands out non-overlapping simulated memory regions with
// controlled cache-line alignment.
type AddressSpace = mem.Space

// Program is an op-level multithreaded workload. Build one with NewProgram
// or take a bundled kernel from Kernels.
type Program = program.Program

// ProgramBuilder assembles a Program with a per-thread fluent DSL.
type ProgramBuilder = program.Builder

// ThreadBuilder appends ops to one thread of a program under construction.
type ThreadBuilder = program.ThreadBuilder

// NewProgram starts a program builder.
func NewProgram(name string) *ProgramBuilder { return program.NewBuilder(name) }

// Policy selects how analysis is gated.
type Policy = demand.PolicyKind

// The available analysis policies.
const (
	// Off runs natively with no analysis at all: the timing baseline.
	Off = demand.Off
	// Continuous analyzes every access: the Inspector-XE-style tool the
	// paper compares against.
	Continuous = demand.Continuous
	// SyncOnly instruments synchronization but never data accesses.
	SyncOnly = demand.SyncOnly
	// HITMDemand is the paper's contribution: analysis toggled by HITM
	// performance-counter samples.
	HITMDemand = demand.HITMDemand
	// Hybrid triggers on the broader HITM+invalidation signal.
	Hybrid = demand.Hybrid
	// Sampling analyzes each access with probability
	// Config.Demand.SampleRate: the LiteRace-style software-only baseline.
	Sampling = demand.Sampling
	// WatchDemand arms hardware watchpoints on sampled shared lines and
	// analyzes only accesses that hit them.
	WatchDemand = demand.WatchDemand
	// PageDemand gates analysis on page-protection faults instead of
	// performance counters: the pre-PMU software mechanism.
	PageDemand = demand.PageDemand
)

// Scope selects which threads a sharing sample enables.
type Scope = demand.Scope

// The available sample scopes.
const (
	ScopeGlobal = demand.ScopeGlobal
	ScopePair   = demand.ScopePair
	ScopeSelf   = demand.ScopeSelf
)

// Config assembles one run: machine shape, PMU programming, analysis
// policy, detector options, and cost model.
type Config = runner.Config

// Report is the complete result of one run: races found, cycle counts,
// slowdown, sharing profile, and per-component statistics.
type Report = runner.Report

// RaceReport describes one detected race.
type RaceReport = detector.Report

// DetectorOptions configures the happens-before engine.
type DetectorOptions = detector.Options

// CacheConfig sizes the simulated cache hierarchy.
type CacheConfig = cache.Config

// CacheHierarchy is the simulated MESI multicore cache system, exposed for
// users who want to drive the hardware substrate directly.
type CacheHierarchy = cache.Hierarchy

// Context identifies a simulated hardware thread context.
type Context = cache.Context

// Protocol selects the simulated coherence protocol.
type Protocol = cache.Protocol

// The available coherence protocols.
const (
	// MESI is the Intel-style protocol the paper measured.
	MESI = cache.MESI
	// MOESI is the AMD-style protocol with an Owned state, which keeps
	// dirty sharing visible to the indicator longer.
	MOESI = cache.MOESI
)

// DefaultCacheConfig models a 4-core machine with 32 KiB 8-way private L1s
// over a 2 MiB shared inclusive LLC.
func DefaultCacheConfig() CacheConfig { return cache.DefaultConfig() }

// NewCache constructs a standalone cache hierarchy.
func NewCache(cfg CacheConfig) *CacheHierarchy { return cache.New(cfg) }

// PMUConfig programs the simulated performance counters.
type PMUConfig = perf.Config

// DemandConfig parameterizes the demand-driven controller.
type DemandConfig = demand.Config

// DefaultConfig is a 4-core machine with the paper's demand-driven policy
// at its default operating point.
func DefaultConfig() Config { return runner.DefaultConfig() }

// Run executes p under cfg. Runs are deterministic: identical inputs yield
// identical reports.
func Run(p *Program, cfg Config) (*Report, error) { return runner.Run(p, cfg) }

// RunPolicies runs p once per policy under otherwise identical
// configuration — on the identical interleaving — and returns the reports
// in order.
func RunPolicies(p *Program, cfg Config, policies ...Policy) ([]*Report, error) {
	return runner.RunPolicies(p, cfg, policies...)
}

// RunPoliciesParallel is RunPolicies fanned out across workers goroutines
// (0 = one per CPU). Runs are pure, so the reports — still in policy
// order — are identical to the serial ones.
func RunPoliciesParallel(p *Program, cfg Config, workers int, policies ...Policy) ([]*Report, error) {
	return runner.RunPoliciesParallel(p, cfg, workers, policies...)
}

// Exploration aggregates a program's race behavior across many seeded
// interleavings.
type Exploration = runner.Exploration

// Explore runs p under cfg once per seed in [0, seeds) with seeded-random
// interleaving and aggregates the racy-address sets — the "run it until
// the bug shows" workflow. Seeds run concurrently, one worker per CPU.
func Explore(p *Program, cfg Config, seeds int) (*Exploration, error) {
	return runner.Explore(p, cfg, seeds)
}

// ExploreParallel is Explore with an explicit fan-out width (0 = one
// worker per CPU, 1 = serial). Aggregation is in seed order, so results
// are identical for any width.
func ExploreParallel(p *Program, cfg Config, seeds, workers int) (*Exploration, error) {
	return runner.ExploreWorkers(p, cfg, seeds, workers)
}

// Kernel is a bundled benchmark workload.
type Kernel = workloads.Kernel

// KernelConfig sizes a kernel build (threads, scale).
type KernelConfig = workloads.Config

// Kernels returns every bundled kernel: the Phoenix-like and PARSEC-like
// suites, HITM-characterization microbenchmarks, and racy regression
// kernels.
func Kernels() []Kernel { return workloads.All() }

// KernelByName finds a bundled kernel.
func KernelByName(name string) (Kernel, bool) { return workloads.ByName(name) }

// KernelSuite returns the kernels of one suite: "phoenix", "parsec",
// "micro", or "racy".
func KernelSuite(name string) []Kernel { return workloads.Suite(name) }

// Injection records one synthetic race spliced into a program.
type Injection = racefuzz.Injection

// InjectionConfig controls race injection.
type InjectionConfig = racefuzz.Config

// InjectRaces returns a copy of p with synthetic races spliced in, plus
// ground-truth records, for accuracy experiments.
func InjectRaces(p *Program, cfg InjectionConfig) (*Program, []Injection, error) {
	return racefuzz.Inject(p, cfg)
}

// Trace is a recorded run for offline replay.
type Trace = trace.Trace

// TraceRecorder records a run's event stream; install it in Config.Tracer.
type TraceRecorder = trace.Recorder

// NewTraceRecorder starts a recorder for the named program.
func NewTraceRecorder(name string) *TraceRecorder { return trace.NewRecorder(name) }

// ReplayTrace feeds a trace's analyzed events through a fresh detector and
// returns it, supporting analyze-many-times workflows over one execution.
func ReplayTrace(tr *Trace, opt DetectorOptions) *detector.Detector {
	return trace.Replay(tr, opt)
}

// TraceTimeline renders a trace as per-thread ASCII activity strips showing
// fast/analyzed spans, synchronization, and caught vs unobserved HITMs.
func TraceTimeline(tr *Trace, width int) string { return trace.Timeline(tr, width) }

// EventTracer records cycle-timestamped pipeline telemetry (HITM events,
// PMU overflows, mode transitions, race reports). Install one in
// Config.Trace; timestamps are simulated cycles, so traces are
// byte-deterministic. See internal/obs for the event taxonomy.
type EventTracer = obs.Tracer

// NewEventTracer returns an empty tracer for Config.Trace.
func NewEventTracer() *EventTracer { return obs.NewTracer() }

// TelemetryEvent is one recorded pipeline event.
type TelemetryEvent = obs.Event

// ModeSpan is one contiguous stretch of a thread's run in fast or analysis
// mode; Report.Timeline holds them when a tracer was installed.
type ModeSpan = obs.Span

// MetricsRegistry collects named counters, gauges, and histograms. Install
// one in Config.Metrics; counters and histograms may be shared across
// concurrent runs and still export deterministic totals.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry for Config.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WriteChromeTrace renders tracer events plus mode spans as Chrome
// trace-event JSON, loadable in Perfetto or chrome://tracing.
func WriteChromeTrace(w io.Writer, program string, events []TelemetryEvent, spans []ModeSpan) error {
	return obs.WriteChromeTrace(w, program, events, spans)
}

// CostModel holds the cycle-cost constants slowdowns are computed from.
type CostModel = cost.Model

// CalibrateContinuous solves for the per-access analysis cost that makes
// continuous analysis of p cost target× native speed — the fitting step
// that anchors the simulator's constants to a published slowdown.
func CalibrateContinuous(p *Program, cfg Config, target float64) (CostModel, error) {
	return runner.CalibrateContinuous(p, cfg, target)
}
