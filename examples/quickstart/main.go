// Quickstart: build a small racy program with the public API, run it under
// the continuous and demand-driven policies, and compare cost and findings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"demandrace"
)

func main() {
	// A two-thread program: mostly private array work, with a short buggy
	// phase in the middle where both threads touch one word unsynchronized.
	b := demandrace.NewProgram("quickstart")
	shared := b.Space().AllocLine(8)
	priv0 := b.Space().AllocArray(1000, 8)
	priv1 := b.Space().AllocArray(1000, 8)
	t0, t1 := b.Thread(), b.Thread()
	for i := 0; i < 1000; i++ {
		t0.Load(priv0 + demandrace.Addr(i*8)).Store(priv0 + demandrace.Addr(i*8)).Compute(3)
		t1.Load(priv1 + demandrace.Addr(i*8)).Store(priv1 + demandrace.Addr(i*8)).Compute(3)
		if i >= 500 && i < 510 {
			t0.Store(shared) // the bug
			t1.Load(shared)
		}
	}
	p := b.MustBuild()

	reps, err := demandrace.RunPolicies(p, demandrace.DefaultConfig(),
		demandrace.Off, demandrace.Continuous, demandrace.HITMDemand)
	if err != nil {
		log.Fatal(err)
	}
	native, cont, dem := reps[0], reps[1], reps[2]

	fmt.Printf("program: %s (%d ops, %.3f%% of accesses are cache-visible sharing)\n\n",
		p.Name, p.TotalOps(), 100*native.SharingFraction())
	fmt.Printf("%-12s %10s %8s %16s\n", "policy", "slowdown", "races", "accesses analyzed")
	for _, r := range []*demandrace.Report{native, cont, dem} {
		fmt.Printf("%-12s %9.2f× %8d %15.1f%%\n",
			r.Policy, r.Slowdown, len(r.Races), 100*r.Demand.AnalyzedFraction())
	}
	fmt.Printf("\ndemand-driven speedup over continuous: %.1f×\n", cont.Slowdown/dem.Slowdown)
	if len(dem.Races) > 0 {
		fmt.Printf("first race: %v\n", dem.Races[0])
	}
}
