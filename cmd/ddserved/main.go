// Command ddserved is the race-analysis service daemon: it accepts
// analysis jobs over HTTP — a bundled kernel plus runner knobs as JSON, or
// an uploaded binary trace — runs them on a bounded worker pool, and serves
// JSON reports with content-addressed result caching and queue
// backpressure.
//
// Endpoints:
//
//	POST /v1/jobs          submit (JSON request or binary trace upload)
//	GET  /v1/jobs/{id}     poll job status
//	GET  /v1/results/{id}  fetch the report of a done job
//	GET  /healthz          liveness + drain state
//	GET  /metrics          Prometheus text exposition
//
// Usage:
//
//	ddserved -addr 127.0.0.1:8318
//	ddserved -addr 127.0.0.1:0 -addr-file /tmp/ddserved.addr   # random port
//	curl -d '{"kernel":"racy_flag"}' localhost:8318/v1/jobs
//	ddrace -kernel histogram -policy hitm-demand -submit http://localhost:8318
//
// SIGINT/SIGTERM trigger a graceful shutdown: intake stops, queued and
// in-flight jobs drain (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"demandrace/internal/service"
	"demandrace/internal/version"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8318", "listen address (port 0 picks a free port; see -addr-file)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		workers     = flag.Int("workers", 0, "analysis worker pool width (0 = one per CPU)")
		queueDepth  = flag.Int("queue", 64, "submission queue depth; a full queue answers 429")
		cacheSize   = flag.Int("cache", 256, "result cache entries (negative disables caching)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-job deadline")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested deadlines")
		maxBytes    = flag.Int64("max-trace-bytes", 64<<20, "max accepted trace upload size in bytes")
		maxEvents   = flag.Uint64("max-trace-events", 1<<22, "max events an uploaded trace may declare")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget before jobs are hard-canceled")
		versionFlag = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *versionFlag {
		fmt.Println(version.String("ddserved"))
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, *addrFile, service.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CacheEntries:   *cacheSize,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxTraceBytes:  *maxBytes,
		MaxTraceEvents: *maxEvents,
	}, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "ddserved:", err)
		os.Exit(1)
	}
}

// run serves until ctx is canceled (main wires ctx to SIGINT/SIGTERM),
// then drains gracefully.
func run(ctx context.Context, addr, addrFile string, cfg service.Config, drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}

	svc := service.NewServer(cfg)
	svc.Start()
	httpSrv := &http.Server{Handler: svc.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	n := svc.Config()
	fmt.Fprintf(os.Stderr, "ddserved %s listening on http://%s (workers=%d queue=%d cache=%d)\n",
		version.Version, bound, n.Workers, n.QueueDepth, n.CacheEntries)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "ddserved: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Drain order: stop intake and finish jobs first, then close the HTTP
	// listener, so pollers can still fetch results while jobs complete.
	if err := svc.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "ddserved: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(os.Stderr, "ddserved: stopped")
	return nil
}
