package workloads

import (
	"demandrace/internal/mem"
	"demandrace/internal/program"
)

// The apps suite holds application-shaped programs rather than benchmark
// kernels: the structures downstream users actually debug — a server's
// worker pool, lazy initialization, a lock-free ring — with their
// characteristic sharing and (where noted) their characteristic bugs.

func init() {
	register(Kernel{Name: "app_webserver", Suite: "apps", Racy: true,
		Sharing: "request queue + worker pool, locked stats, racy hit counter", Build: AppWebserver})
	register(Kernel{Name: "app_dclp", Suite: "apps", Racy: true,
		Sharing: "broken double-checked locking: racy init flag", Build: AppDCLP})
	register(Kernel{Name: "app_ringbuffer", Suite: "apps",
		Sharing: "SPSC ring with atomic head/tail (race-free, HITM-heavy)", Build: AppRingBuffer})
	register(Kernel{Name: "app_workstealing", Suite: "apps",
		Sharing: "per-worker deques, locked steals when idle", Build: AppWorkStealing})
}

// AppWebserver models an accept loop dispatching requests to a worker pool
// through a semaphore queue. Workers parse into private buffers, update a
// properly locked latency histogram — and bump a *plain* hit counter, the
// classic "it's just a counter" race.
func AppWebserver(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("app_webserver")
	workers := cfg.Threads - 1
	if workers < 1 {
		workers = 1
	}
	requests := 30 * cfg.Scale * workers
	const reqWords = 6
	reqs := b.Space().AllocArray(uint64(requests*reqWords), mem.WordSize)
	hist := b.Space().AllocArray(16, mem.WordSize)
	hits := b.Space().AllocLine(8) // the bug: unlocked hit counter
	mu := b.Mutex()
	// Round-robin dispatch: one queue per worker, so each handoff carries
	// a happens-before edge for exactly the requests that worker reads.
	queues := make([]program.SyncID, workers)
	for i := range queues {
		queues[i] = b.Semaphore()
	}

	// Acceptor writes request buffers and posts the owning worker's queue.
	acceptor := b.Thread()
	acceptor.Region("accept-loop")
	for i := 0; i < requests; i++ {
		for w := 0; w < reqWords; w++ {
			acceptor.Store(reqs + mem.Addr((i*reqWords+w)*mem.WordSize))
		}
		acceptor.Compute(3)
		acceptor.Signal(queues[i%workers])
	}

	per := requests / workers
	for wkr := 0; wkr < workers; wkr++ {
		tb := b.Thread()
		scratch := b.Space().AllocArray(uint64(reqWords), mem.WordSize)
		tb.Region("worker-parse")
		for j := 0; j < per; j++ {
			i := j*workers + wkr
			tb.Wait(queues[wkr])
			for w := 0; w < reqWords; w++ {
				tb.Load(reqs + mem.Addr((i*reqWords+w)*mem.WordSize))
				tb.Store(scratch + mem.Addr(w*mem.WordSize))
			}
			tb.Compute(10)
			tb.Region("stats")
			lockedUpdate(tb, mu, hist+mem.Addr((i%16)*mem.WordSize))
			tb.Load(hits).Store(hits) // the bug
			tb.Region("worker-parse")
		}
	}
	return b.MustBuild()
}

// AppDCLP is the broken double-checked-locking pattern: readers test an
// unsynchronized init flag and then read the lazily-built object; the
// initializer writes both under a lock the readers never take on the fast
// path. Both the flag and the payload race.
func AppDCLP(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("app_dclp")
	flag := b.Space().AllocLine(8)
	payload := b.Space().AllocArray(4, mem.WordSize)
	mu := b.Mutex()
	checks := 40 * cfg.Scale

	init := b.Thread()
	init.Region("lazy-init")
	init.Compute(20) // readers start checking before init completes
	init.Lock(mu)
	for w := 0; w < 4; w++ {
		init.Store(payload + mem.Addr(w*mem.WordSize))
	}
	init.Store(flag)
	init.Unlock(mu)

	for t := 1; t < cfg.Threads; t++ {
		tb := b.Thread()
		tb.Region("fast-path-check")
		for i := 0; i < checks; i++ {
			tb.Load(flag) // unsynchronized check: races with the init store
			tb.Load(payload + mem.Addr((i%4)*mem.WordSize))
			tb.Compute(5)
		}
	}
	return b.MustBuild()
}

// AppRingBuffer is a single-producer single-consumer ring whose head and
// tail are atomics: completely race-free, but the slot handoffs and index
// ping-pong keep the HITM indicator busy — the "correct but
// communication-heavy" case where demand analysis stays on yet finds
// nothing.
func AppRingBuffer(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("app_ringbuffer")
	const slots = 8
	ring := b.Space().AllocArray(slots, mem.WordSize)
	head := b.Space().AllocLine(8)
	tail := b.Space().AllocLine(8)
	full, empty := b.Semaphore(), b.Semaphore()
	items := 60 * cfg.Scale

	prod := b.Thread()
	prod.Region("produce")
	cons := b.Thread()
	cons.Region("consume")
	for i := 0; i < items; i++ {
		if i >= slots {
			prod.Wait(empty) // ring full until a slot frees
		}
		prod.Store(ring + mem.Addr((i%slots)*mem.WordSize))
		prod.AtomicStore(head)
		prod.Signal(full)

		cons.Wait(full)
		cons.AtomicLoad(head)
		cons.Load(ring + mem.Addr((i%slots)*mem.WordSize))
		cons.AtomicStore(tail)
		cons.Compute(4)
		cons.Signal(empty)
	}
	return b.MustBuild()
}

// AppWorkStealing gives each worker a private deque of tasks; when a
// worker's deque empties it steals from a victim's under the victim's lock.
// Sharing is bursty and localized to steal events.
func AppWorkStealing(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("app_workstealing")
	tasksPer := 80 * cfg.Scale
	deques := make([]mem.Addr, cfg.Threads)
	mus := make([]program.SyncID, cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		deques[i] = b.Space().AllocArray(uint64(tasksPer), mem.WordSize)
		mus[i] = b.Mutex()
	}
	const stealable = 8 // head slots steals may touch, lock-protected
	for t := 0; t < cfg.Threads; t++ {
		tb := b.Thread()
		tb.Region("run-own-tasks")
		// The deque's stealable head is touched under the owner's lock;
		// the private bottom runs lock-free.
		for i := 0; i < tasksPer; i++ {
			a := deques[t] + mem.Addr(i*mem.WordSize)
			if i < stealable {
				tb.Lock(mus[t]).Load(a).Store(a).Unlock(mus[t])
				tb.Compute(6)
			} else {
				tb.Load(a).Store(a).Compute(6)
			}
		}
		// Then a few steals from the right neighbor, under its lock.
		victim := (t + 1) % cfg.Threads
		if victim != t {
			tb.Region("steal")
			for s := 0; s < 4; s++ {
				stolen := deques[victim] + mem.Addr(s*mem.WordSize)
				tb.Lock(mus[victim]).Load(stolen).Store(stolen).Unlock(mus[victim])
				tb.Compute(6)
			}
		}
	}
	return b.MustBuild()
}
