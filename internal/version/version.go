// Package version holds the build version stamped into every binary.
//
// Version defaults to "dev" and is overridden at build time:
//
//	go build -ldflags "-X demandrace/internal/version.Version=v1.2.3" ./cmd/...
//
// Every command exposes it through a -version flag.
package version

// Version is the build version, overridden via -ldflags.
var Version = "dev"

// String renders the canonical one-line version banner for a binary.
func String(binary string) string { return binary + " version " + Version }
