// Package stream is the live event layer: a small publish/subscribe bus
// for operational events (job lifecycle, cache activity, ring membership)
// served over Server-Sent Events at GET /v1/events.
//
// The design constraint that shapes everything here is that a slow
// subscriber must never block the worker pool. Publish is non-blocking by
// construction: each subscriber owns a bounded ring buffer; when a
// subscriber falls behind, its oldest undelivered events are dropped and
// counted, and the subscriber can see the gap in the event sequence
// numbers. The bus never applies backpressure to publishers — operational
// visibility rides along with the service, it does not steer it.
package stream

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Event types published by the service and cluster tiers.
const (
	// TypeJobQueued fires when a job is admitted to the queue.
	TypeJobQueued = "job_queued"
	// TypeJobStarted fires when a worker picks the job up.
	TypeJobStarted = "job_started"
	// TypeJobDone fires when a job completes (Detail carries the state).
	TypeJobDone = "job_done"
	// TypeCacheHit fires when a submit is served from the result cache.
	TypeCacheHit = "cache_hit"
	// TypeRingChange fires when a gateway marks a backend up or down.
	TypeRingChange = "ring_change"
	// TypeHello is the first event on every subscription, so a tail shows
	// who it is connected to before any job activity happens.
	TypeHello = "hello"
	// TypeTraceChunk fires when a streaming-ingest session applies a chunk
	// (Job carries the session ID; Detail carries seq/bytes/events/races).
	TypeTraceChunk = "trace_chunk"
	// TypeRaceFound fires the moment an in-flight upload's live analysis
	// surfaces a new race, before the session commits (Detail carries
	// addr/kind/cur/prev).
	TypeRaceFound = "race_found"
	// TypeAlertFiring fires exactly once when an alert rule transitions to
	// firing (Detail carries rule/severity/value/threshold/summary).
	TypeAlertFiring = "alert_firing"
	// TypeAlertResolved fires exactly once when a firing alert's condition
	// clears.
	TypeAlertResolved = "alert_resolved"
	// TypeReplicaRepair fires when a read miss on the owning backend was
	// answered from a replica and the owner was queued for back-fill
	// (Detail carries key/owner/source).
	TypeReplicaRepair = "replica_repair"
	// TypeTenantThrottled fires on the admitted→throttled edge of a
	// tenant's budget — once per exhaustion episode, not per rejected
	// request (Detail carries tenant/retry_after_s).
	TypeTenantThrottled = "tenant_throttled"
)

// Event is one operational occurrence, JSON-encoded on the wire.
type Event struct {
	// Seq is the bus-assigned sequence number, strictly increasing per
	// publishing process. Gaps visible to a subscriber mean drops.
	Seq uint64 `json:"seq"`
	// UnixMS is the publish time in milliseconds.
	UnixMS int64 `json:"t"`
	// Type is one of the Type* constants.
	Type string `json:"type"`
	// Node names the publishing process.
	Node string `json:"node,omitempty"`
	// Job is the job ID the event concerns, if any.
	Job string `json:"job,omitempty"`
	// Trace is the trace ID of the request that caused the event, if any.
	Trace string `json:"trace,omitempty"`
	// Detail carries event-specific fields (state, backend, health, ...).
	Detail map[string]string `json:"detail,omitempty"`
	// Gap, set only on the hello of a resumed subscription, counts events
	// that fell out of the bus's retained ring before the client's
	// Last-Event-ID — history the resume could not replay.
	Gap uint64 `json:"gap,omitempty"`
}

// DefaultSubBuffer bounds each subscriber's undelivered-event ring.
const DefaultSubBuffer = 256

// Sub is one subscription: a bounded drop-oldest ring the bus writes into
// and the subscriber drains via Next.
type Sub struct {
	bus *Bus

	mu      sync.Mutex
	buf     []Event
	head    int
	n       int
	dropped uint64
	closed  bool

	// wake has capacity 1: publish does a non-blocking send, Next drains.
	wake chan struct{}
}

// push appends ev, evicting the oldest buffered event when full. Never
// blocks.
func (s *Sub) push(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.buf) {
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
	}
	s.buf[(s.head+s.n)%len(s.buf)] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Next returns the oldest undelivered event, blocking until one arrives,
// ctx is done, or the subscription is closed. The boolean is false when
// no more events will come.
func (s *Sub) Next(ctx context.Context) (Event, bool) {
	for {
		s.mu.Lock()
		if s.n > 0 {
			ev := s.buf[s.head]
			s.head = (s.head + 1) % len(s.buf)
			s.n--
			s.mu.Unlock()
			return ev, true
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, false
		}
		select {
		case <-s.wake:
		case <-ctx.Done():
			return Event{}, false
		}
	}
}

// Dropped returns how many events this subscriber lost to the buffer
// bound.
func (s *Sub) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close detaches the subscription from the bus. Idempotent.
func (s *Sub) Close() {
	s.bus.unsubscribe(s)
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		return
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// DefaultRetained bounds the bus's replay ring, from which resumed
// subscriptions (Last-Event-ID) are backfilled.
const DefaultRetained = 1024

// Bus fans events out to subscribers. A nil *Bus is a valid no-op
// publisher, so event publication can be wired unconditionally.
type Bus struct {
	node string

	mu   sync.Mutex
	seq  uint64
	subs map[*Sub]struct{}

	// retained is a bounded ring of recently published events, kept so a
	// reconnecting SSE client can resume from its Last-Event-ID instead of
	// losing everything between connections.
	retained []Event
	rHead    int
	rN       int
}

// NewBus builds a bus whose events carry node as their origin.
func NewBus(node string) *Bus {
	return &Bus{
		node:     node,
		subs:     make(map[*Sub]struct{}),
		retained: make([]Event, DefaultRetained),
	}
}

// Publish stamps ev (sequence, time, node) and delivers it to every
// subscriber without blocking. Nil-safe.
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	if ev.UnixMS == 0 {
		ev.UnixMS = time.Now().UnixMilli()
	}
	if ev.Node == "" {
		ev.Node = b.node
	}
	if b.rN < len(b.retained) {
		b.retained[(b.rHead+b.rN)%len(b.retained)] = ev
		b.rN++
	} else {
		b.retained[b.rHead] = ev
		b.rHead = (b.rHead + 1) % len(b.retained)
	}
	subs := make([]*Sub, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	for _, s := range subs {
		s.push(ev)
	}
}

// Replay returns the retained events with Seq > after, oldest first, plus
// the number of events that were published after `after` but have already
// fallen out of the retained ring (the unresumable gap). A client that
// reconnects with a Last-Event-ID from a restarted bus (after beyond the
// current sequence) gets nothing and no gap; the live stream takes over.
// Nil-safe.
func (b *Bus) Replay(after uint64) ([]Event, uint64) {
	if b == nil {
		return nil, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if after >= b.seq || b.rN == 0 {
		return nil, 0
	}
	oldest := b.retained[b.rHead].Seq
	var gap uint64
	if oldest > after+1 {
		gap = oldest - after - 1
	}
	out := make([]Event, 0, b.rN)
	for i := 0; i < b.rN; i++ {
		ev := b.retained[(b.rHead+i)%len(b.retained)]
		if ev.Seq > after {
			out = append(out, ev)
		}
	}
	return out, gap
}

// Subscribe attaches a new subscriber with a ring of the given size
// (<= 0 takes DefaultSubBuffer). Returns nil on a nil bus.
func (b *Bus) Subscribe(buffer int) *Sub {
	if b == nil {
		return nil
	}
	if buffer <= 0 {
		buffer = DefaultSubBuffer
	}
	s := &Sub{
		bus:  b,
		buf:  make([]Event, buffer),
		wake: make(chan struct{}, 1),
	}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

func (b *Bus) unsubscribe(s *Sub) {
	if b == nil {
		return
	}
	b.mu.Lock()
	delete(b.subs, s)
	b.mu.Unlock()
}

// Subscribers returns the current subscriber count. Nil-safe.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// keepalive is how often the SSE handler emits a comment line when no
// events flow, so idle connections are detected and proxies keep the
// stream open.
const keepalive = 15 * time.Second

// ServeSSE streams the bus over w as Server-Sent Events until the request
// context ends. The first event is a hello carrying the node name; after
// that, every published event becomes an `id:`/`event:`/`data:` block. A
// client that reconnects with a Last-Event-ID header (or ?last_event_id=
// query parameter) first gets the retained events after that sequence
// number replayed; history already evicted from the retained ring is
// reported as the hello's gap field. Slow readers lose oldest events
// (never service throughput).
func ServeSSE(w http.ResponseWriter, r *http.Request, b *Bus) {
	if b == nil {
		http.Error(w, "event stream unavailable", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("last_event_id")
	}
	var after uint64
	resumed := false
	if lastID != "" {
		if v, err := strconv.ParseUint(lastID, 10, 64); err == nil {
			after, resumed = v, true
		}
	}

	// Subscribe before replaying so nothing published in between is lost;
	// the overlap is deduplicated below by sequence number.
	sub := b.Subscribe(0)
	defer sub.Close()

	var replayed []Event
	var gap uint64
	if resumed {
		replayed, gap = b.Replay(after)
	}

	hello := Event{
		UnixMS: time.Now().UnixMilli(),
		Type:   TypeHello,
		Node:   b.node,
		Gap:    gap,
	}
	if err := writeSSE(w, hello); err != nil {
		return
	}
	var maxSeq uint64
	for _, ev := range replayed {
		if err := writeSSE(w, ev); err != nil {
			return
		}
		maxSeq = ev.Seq
	}
	fl.Flush()

	ctx := r.Context()
	for {
		next, cancel := context.WithTimeout(ctx, keepalive)
		ev, ok := sub.Next(next)
		cancel()
		if !ok {
			if ctx.Err() != nil {
				return
			}
			// Keepalive window elapsed with no events: emit a comment so
			// the connection stays demonstrably alive.
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
			continue
		}
		if ev.Seq <= maxSeq {
			continue // already replayed
		}
		if err := writeSSE(w, ev); err != nil {
			return
		}
		fl.Flush()
	}
}

// writeSSE renders one event as an SSE block. Stamped events carry an id:
// line so clients can resume via Last-Event-ID; the unstamped hello does
// not.
func writeSSE(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if ev.Seq > 0 {
		_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	return err
}

// Decoder reads Server-Sent Events produced by ServeSSE back into Events —
// the client half used by `ddrace -watch` and by a gateway tailing its
// backends.
type Decoder struct {
	r *bufio.Reader
}

// NewDecoder wraps r for event decoding.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// Next returns the next event, skipping comments and blank lines. io.EOF
// signals a cleanly closed stream.
func (d *Decoder) Next() (Event, error) {
	var data string
	for {
		line, err := d.r.ReadString('\n')
		if err != nil {
			return Event{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "" && data != "":
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				return Event{}, fmt.Errorf("stream: decoding event: %w", err)
			}
			return ev, nil
		}
	}
}
