package stream

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestPublishSubscribe(t *testing.T) {
	b := NewBus("n0")
	sub := b.Subscribe(0)
	defer sub.Close()

	b.Publish(Event{Type: TypeJobQueued, Job: "j-1", Trace: "abc"})
	b.Publish(Event{Type: TypeJobDone, Job: "j-1", Detail: map[string]string{"state": "done"}})

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	ev, ok := sub.Next(ctx)
	if !ok || ev.Type != TypeJobQueued || ev.Job != "j-1" || ev.Trace != "abc" {
		t.Fatalf("first event = %+v, %v", ev, ok)
	}
	if ev.Seq == 0 || ev.UnixMS == 0 || ev.Node != "n0" {
		t.Fatalf("bus did not stamp the event: %+v", ev)
	}
	ev2, ok := sub.Next(ctx)
	if !ok || ev2.Type != TypeJobDone || ev2.Detail["state"] != "done" {
		t.Fatalf("second event = %+v, %v", ev2, ok)
	}
	if ev2.Seq != ev.Seq+1 {
		t.Fatalf("sequence not contiguous: %d then %d", ev.Seq, ev2.Seq)
	}
}

func TestSlowSubscriberDropsOldest(t *testing.T) {
	b := NewBus("n0")
	sub := b.Subscribe(4)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		b.Publish(Event{Type: TypeJobQueued})
	}
	if got := sub.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	ev, ok := sub.Next(ctx)
	if !ok || ev.Seq != 7 {
		// Oldest dropped: the first retained event is seq 7 of 10.
		t.Fatalf("first retained seq = %d (%v), want 7", ev.Seq, ok)
	}
	for want := uint64(8); want <= 10; want++ {
		ev, ok := sub.Next(ctx)
		if !ok || ev.Seq != want {
			t.Fatalf("retained seq = %d (%v), want %d", ev.Seq, ok, want)
		}
	}
}

func TestNextUnblocksOnCtxAndClose(t *testing.T) {
	b := NewBus("n0")
	sub := b.Subscribe(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, ok := sub.Next(ctx); ok {
		t.Fatal("Next returned an event from an empty bus")
	}
	done := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(context.Background())
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	sub.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned an event after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not unblock on Close")
	}
	if b.Subscribers() != 0 {
		t.Fatalf("subscribers = %d after close", b.Subscribers())
	}
}

func TestNilBusIsNoOp(t *testing.T) {
	var b *Bus
	b.Publish(Event{Type: TypeJobQueued})
	if b.Subscribe(0) != nil || b.Subscribers() != 0 {
		t.Fatal("nil bus is not a no-op")
	}
}

func TestServeSSEAndDecoderRoundtrip(t *testing.T) {
	b := NewBus("n0")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ServeSSE(w, r, b)
	}))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	dec := NewDecoder(resp.Body)
	hello, err := dec.Next()
	if err != nil || hello.Type != TypeHello || hello.Node != "n0" {
		t.Fatalf("hello = %+v, %v", hello, err)
	}

	// The subscriber attaches inside ServeSSE; publish until the event
	// comes through rather than racing the handler's subscribe.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				b.Publish(Event{Type: TypeCacheHit, Job: "j-9"})
			}
		}
	}()
	ev, err := dec.Next()
	if err != nil || ev.Type != TypeCacheHit || ev.Job != "j-9" {
		t.Fatalf("streamed event = %+v, %v", ev, err)
	}
}

func TestDecoderSkipsCommentsAndBlankLines(t *testing.T) {
	in := ": keepalive\n\n" +
		"event: job_done\ndata: {\"seq\":3,\"t\":1,\"type\":\"job_done\",\"job\":\"j-2\"}\n\n"
	dec := NewDecoder(strings.NewReader(in))
	ev, err := dec.Next()
	if err != nil || ev.Type != TypeJobDone || ev.Job != "j-2" || ev.Seq != 3 {
		t.Fatalf("decoded = %+v, %v", ev, err)
	}
}

// TestIngestEventTypesRoundtrip wire-round-trips the streaming-ingest
// event types (trace_chunk, race_found) through the SSE encoder and
// Decoder, including the Detail payloads the ingest manager publishes.
func TestIngestEventTypesRoundtrip(t *testing.T) {
	events := []Event{
		{Type: TypeTraceChunk, Job: "s-1", Detail: map[string]string{
			"seq": "3", "bytes": "4096", "events": "120", "races": "0",
		}},
		{Type: TypeRaceFound, Job: "s-1", Detail: map[string]string{
			"addr": "0x40", "kind": "write-write", "cur": "2", "prev": "0",
		}},
	}
	var buf strings.Builder
	for _, ev := range events {
		ev.Seq, ev.UnixMS = 1, 1
		if err := writeSSE(&buf, ev); err != nil {
			t.Fatalf("writeSSE(%s): %v", ev.Type, err)
		}
	}
	// The event: field names the type so SSE-native consumers can filter
	// without parsing the JSON.
	for _, typ := range []string{TypeTraceChunk, TypeRaceFound} {
		if !strings.Contains(buf.String(), "event: "+typ+"\n") {
			t.Fatalf("encoded stream lacks event field for %s:\n%s", typ, buf.String())
		}
	}
	dec := NewDecoder(strings.NewReader(buf.String()))
	for _, want := range events {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("decoding %s: %v", want.Type, err)
		}
		if got.Type != want.Type || got.Job != want.Job {
			t.Fatalf("decoded %+v, want type %s job %s", got, want.Type, want.Job)
		}
		for k, v := range want.Detail {
			if got.Detail[k] != v {
				t.Fatalf("%s detail[%s] = %q, want %q", want.Type, k, got.Detail[k], v)
			}
		}
	}
	if _, err := dec.Next(); err == nil {
		t.Fatal("decoder produced an event past the end of the stream")
	}
}
