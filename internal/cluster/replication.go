package cluster

// Gateway-side replication: the cluster tier's face of internal/replica.
// The gateway is the only process that sees both the ring and every
// backend, so it runs the replicator: it learns keys from the submissions
// it routes (and the job_done events it tails), copies sealed results
// across each key's replica chain over the backends' /v1/cache endpoints,
// and serves read-repair when a result's owner cannot answer.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"demandrace/internal/replica"
)

// defaultKeyIndexCap bounds the job-ID → cache-key index backing
// read-repair. FIFO eviction, like the trace store: results are polled
// shortly after submission, and replication itself converges through
// Track/Resync regardless of this index.
const defaultKeyIndexCap = 4096

// keyIndex maps gateway job IDs ("backend:j-n") to the content-addressed
// cache key the submission routed on. Read-repair needs the key, but a
// result poll only carries the job ID — this is the join between them.
type keyIndex struct {
	mu    sync.Mutex
	cap   int
	m     map[string]string
	order []string // insertion order, oldest first
}

func newKeyIndex(capacity int) *keyIndex {
	if capacity <= 0 {
		capacity = defaultKeyIndexCap
	}
	return &keyIndex{cap: capacity, m: make(map[string]string)}
}

func (k *keyIndex) put(id, key string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.m[id]; !ok {
		k.order = append(k.order, id)
	}
	k.m[id] = key
	for len(k.order) > k.cap {
		delete(k.m, k.order[0])
		k.order = k.order[1:]
	}
}

func (k *keyIndex) get(id string) (string, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	key, ok := k.m[id]
	return key, ok
}

// seedTimeout bounds the startup shard import from each backend.
const seedTimeout = 30 * time.Second

// peerFor resolves a ring member name to its replication surface.
func (g *Gateway) peerFor(name string) replica.Peer {
	b := g.byName[name]
	if b == nil {
		return nil
	}
	return &httpPeer{g: g, b: b}
}

// httpPeer implements replica.Peer over a backend's key-addressed result
// endpoints.
type httpPeer struct {
	g *Gateway
	b *backend
}

func (p *httpPeer) Get(ctx context.Context, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.b.URL+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s answered %d for replica key", p.b.Name, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, p.g.cfg.MaxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > p.g.cfg.MaxBodyBytes {
		return nil, fmt.Errorf("cluster: replica body from %s exceeds %d bytes", p.b.Name, p.g.cfg.MaxBodyBytes)
	}
	return data, nil
}

func (p *httpPeer) Put(ctx context.Context, key string, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		p.b.URL+"/v1/cache/"+key, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.g.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("cluster: %s answered %d to replica write", p.b.Name, resp.StatusCode)
	}
	return nil
}

func (p *httpPeer) Keys(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.b.URL+"/v1/cache", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s answered %d to key listing", p.b.Name, resp.StatusCode)
	}
	var doc struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, p.g.cfg.MaxBodyBytes)).Decode(&doc); err != nil {
		return nil, err
	}
	return doc.Keys, nil
}

// seedReplicas imports every backend's existing shard into tracking at
// startup, so results that predate this gateway process (ddserved
// -store-dir survivors) reach their replication factor too.
func (g *Gateway) seedReplicas() {
	ctx, cancel := context.WithTimeout(context.Background(), seedTimeout)
	defer cancel()
	for _, b := range g.backends {
		if err := g.replica.Seed(ctx, b.Name); err != nil {
			g.log.Debug("replica seed failed", "backend", b.Name, "error", err.Error())
		}
	}
}

// serveRepaired answers a result fetch from the replica chain after the
// owner failed: it maps the gateway job ID back to its cache key, pulls
// the sealed bytes off any holder except the failed owner, and back-fills
// the chain. Returns false when the key is unknown or no replica held the
// bytes (the caller falls back to its error path). Replicated results are
// sealed result documents, so the bytes served here are identical to what
// the owner would have answered.
func (g *Gateway) serveRepaired(w http.ResponseWriter, r *http.Request, gatewayJobID, owner string) bool {
	key, ok := g.jobKeys.get(gatewayJobID)
	if !ok {
		return false
	}
	data, source, ok := g.replica.Repair(r.Context(), key, owner)
	if !ok {
		return false
	}
	g.log.Info("result served from replica", "job_id", gatewayJobID,
		"owner", owner, "source", source)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
	return true
}
