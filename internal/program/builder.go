package program

import (
	"fmt"

	"demandrace/internal/mem"
	"demandrace/internal/vclock"
)

// Builder assembles a Program with a fluent per-thread DSL:
//
//	b := program.NewBuilder("kernel")
//	mu := b.Mutex()
//	t0, t1 := b.Thread(), b.Thread()
//	t0.Store(a).Lock(mu).Load(x).Unlock(mu)
//	t1.Lock(mu).Store(x).Unlock(mu)
//	p, err := b.Build()
//
// The builder also owns an address space so kernels can allocate shared and
// private data without clashing.
type Builder struct {
	name       string
	threads    []*ThreadBuilder
	mutexes    int
	barriers   []int // participant counts
	semaphores int
	labels     []string
	labelIdx   map[string]uint64
	space      *mem.Space
}

// NewBuilder returns an empty program builder.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, space: mem.NewSpace(0), labelIdx: map[string]uint64{}}
}

// label interns a region name and returns its index.
func (b *Builder) label(name string) uint64 {
	if i, ok := b.labelIdx[name]; ok {
		return i
	}
	i := uint64(len(b.labels))
	b.labels = append(b.labels, name)
	b.labelIdx[name] = i
	return i
}

// Space returns the builder's address space for data layout.
func (b *Builder) Space() *mem.Space { return b.space }

// Thread adds a new thread and returns its builder. Thread IDs are assigned
// in creation order.
func (b *Builder) Thread() *ThreadBuilder {
	tb := &ThreadBuilder{id: vclock.TID(len(b.threads)), owner: b}
	b.threads = append(b.threads, tb)
	return tb
}

// Mutex allocates a new mutex and returns its ID.
func (b *Builder) Mutex() SyncID {
	b.mutexes++
	return SyncID(b.mutexes - 1)
}

// Barrier allocates a new barrier for parties participants.
func (b *Builder) Barrier(parties int) SyncID {
	b.barriers = append(b.barriers, parties)
	return SyncID(len(b.barriers) - 1)
}

// Semaphore allocates a new semaphore (initially zero) and returns its ID.
func (b *Builder) Semaphore() SyncID {
	b.semaphores++
	return SyncID(b.semaphores - 1)
}

// Build assembles and validates the program.
func (b *Builder) Build() (*Program, error) {
	p := &Program{
		Name:           b.name,
		Threads:        make([]Thread, len(b.threads)),
		Mutexes:        b.mutexes,
		Barriers:       len(b.barriers),
		Semaphores:     b.semaphores,
		BarrierParties: append([]int(nil), b.barriers...),
		Labels:         append([]string(nil), b.labels...),
	}
	for i, tb := range b.threads {
		p.Threads[i] = Thread{ID: tb.id, Ops: tb.ops}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for workload kernels whose
// structure is fixed at compile time.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("program: %v", err))
	}
	return p
}

// ThreadBuilder appends ops to one thread. All methods return the receiver
// for chaining.
type ThreadBuilder struct {
	id    vclock.TID
	ops   []Op
	owner *Builder
}

// ID returns the thread's ID.
func (t *ThreadBuilder) ID() vclock.TID { return t.id }

// Len returns the number of ops appended so far.
func (t *ThreadBuilder) Len() int { return len(t.ops) }

// Load appends a read of addr.
func (t *ThreadBuilder) Load(addr mem.Addr) *ThreadBuilder {
	t.ops = append(t.ops, Op{Kind: OpLoad, Addr: addr})
	return t
}

// Store appends a write of addr.
func (t *ThreadBuilder) Store(addr mem.Addr) *ThreadBuilder {
	t.ops = append(t.ops, Op{Kind: OpStore, Addr: addr})
	return t
}

// AtomicLoad appends an acquire read of addr.
func (t *ThreadBuilder) AtomicLoad(addr mem.Addr) *ThreadBuilder {
	t.ops = append(t.ops, Op{Kind: OpAtomicLoad, Addr: addr})
	return t
}

// AtomicStore appends a release write of addr.
func (t *ThreadBuilder) AtomicStore(addr mem.Addr) *ThreadBuilder {
	t.ops = append(t.ops, Op{Kind: OpAtomicStore, Addr: addr})
	return t
}

// Lock appends a blocking acquire of mutex id.
func (t *ThreadBuilder) Lock(id SyncID) *ThreadBuilder {
	t.ops = append(t.ops, Op{Kind: OpLock, Sync: id})
	return t
}

// Unlock appends a release of mutex id.
func (t *ThreadBuilder) Unlock(id SyncID) *ThreadBuilder {
	t.ops = append(t.ops, Op{Kind: OpUnlock, Sync: id})
	return t
}

// Barrier appends an arrival at barrier id.
func (t *ThreadBuilder) Barrier(id SyncID) *ThreadBuilder {
	t.ops = append(t.ops, Op{Kind: OpBarrier, Sync: id})
	return t
}

// Signal appends a semaphore post on id.
func (t *ThreadBuilder) Signal(id SyncID) *ThreadBuilder {
	t.ops = append(t.ops, Op{Kind: OpSignal, Sync: id})
	return t
}

// Wait appends a blocking semaphore wait on id.
func (t *ThreadBuilder) Wait(id SyncID) *ThreadBuilder {
	t.ops = append(t.ops, Op{Kind: OpWait, Sync: id})
	return t
}

// Compute appends n cycles of thread-local work.
func (t *ThreadBuilder) Compute(n uint64) *ThreadBuilder {
	t.ops = append(t.ops, Op{Kind: OpCompute, N: n})
	return t
}

// Region appends a zero-cost mark: subsequent accesses by this thread are
// attributed to the named region in race reports.
func (t *ThreadBuilder) Region(name string) *ThreadBuilder {
	t.ops = append(t.ops, Op{Kind: OpMark, N: t.owner.label(name)})
	return t
}

// Op appends a raw op (used by the race injector).
func (t *ThreadBuilder) Op(op Op) *ThreadBuilder {
	t.ops = append(t.ops, op)
	return t
}
