package intern

import "testing"

func TestEmptyStringIsZero(t *testing.T) {
	tb := New()
	if tb.ID("") != 0 {
		t.Errorf("ID(\"\") = %d, want 0", tb.ID(""))
	}
	if tb.Str(0) != "" {
		t.Errorf("Str(0) = %q, want empty", tb.Str(0))
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
}

func TestRoundTripFirstSeenOrder(t *testing.T) {
	tb := New()
	a := tb.ID("alpha")
	b := tb.ID("beta")
	if a != 1 || b != 2 {
		t.Errorf("IDs = %d, %d, want 1, 2", a, b)
	}
	if tb.ID("alpha") != a {
		t.Error("re-interning changed the ID")
	}
	if tb.Str(a) != "alpha" || tb.Str(b) != "beta" {
		t.Errorf("Str round trip: %q, %q", tb.Str(a), tb.Str(b))
	}
	if tb.Len() != 3 {
		t.Errorf("Len = %d, want 3", tb.Len())
	}
}

func TestLookupDoesNotIntern(t *testing.T) {
	tb := New()
	if _, ok := tb.Lookup("ghost"); ok {
		t.Error("Lookup found an absent string")
	}
	if tb.Len() != 1 {
		t.Error("Lookup interned its argument")
	}
	id := tb.ID("real")
	got, ok := tb.Lookup("real")
	if !ok || got != id {
		t.Errorf("Lookup = %d, %v, want %d, true", got, ok, id)
	}
}

func TestUnknownIDResolvesEmpty(t *testing.T) {
	tb := New()
	if tb.Str(99) != "" {
		t.Errorf("Str(99) = %q, want empty", tb.Str(99))
	}
}

func TestSteadyStateLookupsDoNotAllocate(t *testing.T) {
	tb := New()
	tb.ID("hot-site")
	allocs := testing.AllocsPerRun(100, func() {
		if tb.ID("hot-site") != 1 {
			t.Fatal("wrong id")
		}
		_ = tb.Str(1)
	})
	if allocs != 0 {
		t.Errorf("steady-state ID/Str allocated %.1f per op", allocs)
	}
}
