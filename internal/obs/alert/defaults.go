package alert

import (
	"fmt"
	"time"

	"demandrace/internal/obs"
)

// ServiceDefaults is the compiled-in rule set for a ddserved instance,
// derived from its configuration: the latency SLO burn, queue and worker
// saturation, cache collapse, and stalled ingest sessions. Used when no
// -alert-rules file overrides it.
func ServiceDefaults(sloTarget float64, queueHighWater int) []Rule {
	if sloTarget <= 0 || sloTarget >= 1 {
		sloTarget = 0.99
	}
	if queueHighWater <= 0 {
		queueHighWater = 1
	}
	rules := []Rule{
		{
			// 14x is the classic fast-burn page threshold: at that rate a
			// month's error budget is gone in about two days.
			Name:        "slo-fast-burn",
			Kind:        KindBurnRate,
			Metric:      obs.SvcSLOBreaches,
			Denominator: []string{obs.SvcSLORequests},
			Value:       14,
			Target:      sloTarget,
			Window:      Duration(5 * time.Minute),
			ShortWindow: Duration(1 * time.Minute),
			For:         Duration(15 * time.Second),
			Severity:    SevCritical,
			Summary:     fmt.Sprintf("request latency SLO (target %.4g) burning error budget >14x too fast", sloTarget),
		},
		{
			Name:     "queue-high-water",
			Kind:     KindThreshold,
			Metric:   obs.SvcQueueDepth,
			Op:       ">=",
			Value:    float64(queueHighWater),
			For:      Duration(10 * time.Second),
			Severity: SevWarning,
			Summary:  fmt.Sprintf("job queue at or past its high-water mark (%d); /healthz reports degraded", queueHighWater),
		},
		{
			Name:     "worker-saturation",
			Kind:     KindThreshold,
			Metric:   obs.SvcWorkerUtilization,
			Op:       ">=",
			Value:    100,
			For:      Duration(30 * time.Second),
			Severity: SevWarning,
			Summary:  "every worker busy for a sustained period; queue wait is growing",
		},
		{
			Name:        "cache-hit-collapse",
			Kind:        KindRatio,
			Metric:      obs.SvcCacheHits,
			Denominator: []string{obs.SvcCacheHits, obs.SvcCacheMisses},
			Op:          "<",
			Value:       0.1,
			Window:      Duration(5 * time.Minute),
			For:         Duration(1 * time.Minute),
			MinCount:    20,
			Severity:    SevWarning,
			Summary:     "result-cache hit ratio collapsed below 10% under real lookup traffic",
		},
		{
			// The throttle counter only exists once -tenants is configured
			// and a budget is exceeded; a missing series reads as condition
			// not met, so the rule is inert on untenanted nodes.
			Name:     "tenant-budget-exhausted",
			Kind:     KindRate,
			Metric:   obs.TenantThrottledMetric("ddserved_"),
			Op:       ">",
			Value:    0,
			Window:   Duration(1 * time.Minute),
			For:      Duration(10 * time.Second),
			Severity: SevWarning,
			Summary:  "a tenant's admission budget is exhausted; its submissions are answering 429",
		},
		{
			Name:     "ingest-session-stall",
			Kind:     KindRate,
			Metric:   obs.IngestChunks,
			Op:       "==",
			Value:    0,
			Window:   Duration(1 * time.Minute),
			For:      Duration(30 * time.Second),
			When:     &Gate{Metric: obs.IngestSessionsOpen, Op: ">", Value: 0},
			Severity: SevWarning,
			Summary:  "open ingest sessions but no chunks applied for a full window; uploads are stalled",
		},
	}
	return mustNormalize(rules)
}

// GatewayDefaults is the compiled-in rule set for a ddgate instance:
// ring membership loss, per-backend probe degradation, and partial fleet
// stats views.
func GatewayDefaults(members int, backendNames []string) []Rule {
	if members <= 0 {
		members = len(backendNames)
	}
	rules := []Rule{
		{
			Name:     "ring-backend-evicted",
			Kind:     KindThreshold,
			Metric:   obs.GateRingMembers,
			Op:       "<",
			Value:    float64(members),
			Severity: SevCritical,
			Summary:  fmt.Sprintf("hash ring below full strength (%d members configured); traffic is failing over", members),
		},
		{
			Name:     "fleet-stats-partial",
			Kind:     KindThreshold,
			Metric:   obs.GateStatsErrors,
			Op:       ">",
			Value:    0,
			Severity: SevWarning,
			Summary:  "last fleet stats fan-out was partial: one or more backends failed to answer",
		},
		{
			// Mirrors the ddserved rule: inert until the gateway's own
			// admission edge throttles a tenant.
			Name:     "tenant-budget-exhausted",
			Kind:     KindRate,
			Metric:   obs.TenantThrottledMetric("ddgate_"),
			Op:       ">",
			Value:    0,
			Window:   Duration(1 * time.Minute),
			For:      Duration(10 * time.Second),
			Severity: SevWarning,
			Summary:  "a tenant's admission budget is exhausted at the gateway; its submissions are answering 429",
		},
	}
	for _, name := range backendNames {
		rules = append(rules, Rule{
			Name:     "backend-probe-degraded-" + obs.MetricName(name),
			Kind:     KindThreshold,
			Metric:   obs.GateBackendHealthPrefix + obs.MetricName(name),
			Op:       "<=",
			Value:    1, // health gauge: 0 down, 1 degraded, 2 ok
			For:      Duration(10 * time.Second),
			Severity: SevWarning,
			Summary:  "backend " + name + " degraded or failing its health probes",
		})
	}
	return mustNormalize(rules)
}

// mustNormalize validates compiled-in rules; a defect in the defaults is
// a programming error, not a runtime condition.
func mustNormalize(rules []Rule) []Rule {
	out := make([]Rule, 0, len(rules))
	for _, r := range rules {
		nr, err := r.normalized()
		if err != nil {
			panic(err)
		}
		out = append(out, nr)
	}
	return out
}
