package trace

import (
	"encoding/binary"
	"errors"
	"fmt"

	"demandrace/internal/cache"
	"demandrace/internal/mem"
	"demandrace/internal/program"
	"demandrace/internal/vclock"
)

// StreamDecoder is the incremental counterpart to DecodeBinaryLimited: it
// accepts the DRT1 byte stream in arbitrary fragments (down to one byte at
// a time) and yields events as soon as they are complete. The decoder
// enforces the same DecodeLimits with the same typed *LimitError values as
// the batch path, so the HTTP layer's 413 mapping works unchanged, and it
// assigns the same Seq numbering (i+1), so a trace reassembled from a
// stream is byte-identical to a batch decode of the same input.
//
// Errors are sticky: once Feed or Finish fails, every later call returns
// the same error. One deliberate divergence from the batch decoder: bytes
// past the declared event count are an error here (the batch decoder never
// reads them), because on an upload session trailing garbage means a
// client bug worth surfacing, not padding worth ignoring.
type StreamDecoder struct {
	lim DecodeLimits

	buf []byte // unconsumed bytes, compacted after each Feed
	fed int64  // total bytes accepted across all Feeds

	headerDone bool
	program    string
	declared   uint64 // event count from the header
	decoded    uint64

	err error
}

// NewStreamDecoder builds a decoder bounded by lim (zero fields mean
// unlimited, mirroring DecodeBinaryLimited).
func NewStreamDecoder(lim DecodeLimits) *StreamDecoder {
	return &StreamDecoder{lim: lim}
}

// Program returns the trace's program name ("" until the header parses).
func (d *StreamDecoder) Program() string { return d.program }

// Decoded returns how many events have been yielded so far.
func (d *StreamDecoder) Decoded() uint64 { return d.decoded }

// Declared returns the event count the header promised (0 until the
// header parses).
func (d *StreamDecoder) Declared() uint64 { return d.declared }

// BytesFed returns the total bytes accepted so far.
func (d *StreamDecoder) BytesFed() int64 { return d.fed }

// Err returns the sticky decode error, if any.
func (d *StreamDecoder) Err() error { return d.err }

// fail latches err and returns it.
func (d *StreamDecoder) fail(err error) error {
	d.err = err
	return err
}

// Feed appends p to the stream and returns every event completed by it.
// Events already returned are never re-returned; a fragment that ends
// mid-event is buffered until the rest arrives.
func (d *StreamDecoder) Feed(p []byte) ([]Event, error) {
	if d.err != nil {
		return nil, d.err
	}
	d.fed += int64(len(p))
	if d.lim.MaxBytes > 0 && d.fed > d.lim.MaxBytes {
		// Same error value the batch limitReader produces at its cap.
		return nil, d.fail(&LimitError{What: "bytes", Limit: uint64(d.lim.MaxBytes), Got: uint64(d.lim.MaxBytes)})
	}
	d.buf = append(d.buf, p...)

	var out []Event
	off := 0
	for {
		if !d.headerDone {
			n, err := d.parseHeader(d.buf[off:])
			if err != nil {
				return out, d.fail(err)
			}
			if n == 0 {
				break // need more bytes
			}
			off += n
			continue
		}
		if d.decoded == d.declared {
			if off < len(d.buf) {
				return out, d.fail(fmt.Errorf("trace: %d bytes past the declared %d events",
					len(d.buf)-off, d.declared))
			}
			break
		}
		ev, n, err := parseStreamEvent(d.buf[off:])
		if err != nil {
			return out, d.fail(err)
		}
		if n == 0 {
			break // need more bytes
		}
		off += n
		d.decoded++
		ev.Seq = d.decoded
		out = append(out, ev)
	}
	// Compact: drop the consumed prefix so the buffer only ever holds one
	// partial header or event.
	if off > 0 {
		d.buf = append(d.buf[:0], d.buf[off:]...)
	}
	return out, nil
}

// Finish declares the stream complete. It fails if the input ended inside
// the header, short of the declared event count, or had already failed.
func (d *StreamDecoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if !d.headerDone {
		return d.fail(fmt.Errorf("trace: stream ended inside the header (%d bytes)", d.fed))
	}
	if d.decoded < d.declared {
		return d.fail(fmt.Errorf("trace: stream ended after %d of %d declared events",
			d.decoded, d.declared))
	}
	return nil
}

// parseHeader tries to parse magic + program name + event count from b.
// Returns consumed == 0 when b is incomplete.
func (d *StreamDecoder) parseHeader(b []byte) (consumed int, err error) {
	if len(b) < len(magic) {
		return 0, nil
	}
	if [4]byte(b[:4]) != magic {
		return 0, errors.New("trace: bad magic (not a DRT1 trace)")
	}
	off := len(magic)
	nameLen, n := binary.Uvarint(b[off:])
	if n == 0 {
		return 0, nil
	}
	if n < 0 {
		return 0, errors.New("trace: malformed program-name length")
	}
	off += n
	if nameLen > maxNameLen {
		return 0, &LimitError{What: "program name", Limit: maxNameLen, Got: nameLen}
	}
	if uint64(len(b)-off) < nameLen {
		return 0, nil
	}
	name := string(b[off : off+int(nameLen)])
	off += int(nameLen)
	count, n := binary.Uvarint(b[off:])
	if n == 0 {
		return 0, nil
	}
	if n < 0 {
		return 0, errors.New("trace: malformed event count")
	}
	off += n
	if d.lim.MaxEvents > 0 && count > d.lim.MaxEvents {
		return 0, &LimitError{What: "events", Limit: d.lim.MaxEvents, Got: count}
	}
	d.program = name
	d.declared = count
	d.headerDone = true
	return off, nil
}

// parseStreamEvent tries to parse one encoded event from b. Returns
// consumed == 0 when b ends mid-event; errors are terminal.
func parseStreamEvent(b []byte) (Event, int, error) {
	if len(b) < 2 {
		return Event{}, 0, nil
	}
	flags, kind := b[0], b[1]
	off := 2
	var vals [5]uint64
	for j := range vals {
		v, n := binary.Uvarint(b[off:])
		if n == 0 {
			return Event{}, 0, nil
		}
		if n < 0 {
			return Event{}, 0, errors.New("trace: malformed event field")
		}
		vals[j] = v
		off += n
	}
	e := Event{
		Kind:     program.Kind(kind),
		HITM:     flags&flagHITM != 0,
		Analyzed: flags&flagAnalyzed != 0,
		TID:      vclock.TID(vals[0]),
		Ctx:      cache.Context(vals[1]),
		Addr:     mem.Addr(vals[2]),
		Sync:     program.SyncID(vals[3]),
		N:        vals[4],
	}
	if flags&flagBarrier != 0 {
		np, n := binary.Uvarint(b[off:])
		if n == 0 {
			return Event{}, 0, nil
		}
		if n < 0 {
			return Event{}, 0, errors.New("trace: malformed barrier party count")
		}
		off += n
		if np > maxParties {
			return Event{}, 0, &LimitError{What: "barrier parties", Limit: maxParties, Got: np}
		}
		e.Parties = make([]vclock.TID, np)
		for j := range e.Parties {
			v, n := binary.Uvarint(b[off:])
			if n == 0 {
				return Event{}, 0, nil
			}
			if n < 0 {
				return Event{}, 0, errors.New("trace: malformed barrier party")
			}
			e.Parties[j] = vclock.TID(v)
			off += n
		}
	}
	if flags&flagStr != 0 {
		sl, n := binary.Uvarint(b[off:])
		if n == 0 {
			return Event{}, 0, nil
		}
		if n < 0 {
			return Event{}, 0, errors.New("trace: malformed label length")
		}
		off += n
		if sl > maxStrLen {
			return Event{}, 0, &LimitError{What: "label", Limit: maxStrLen, Got: sl}
		}
		if uint64(len(b)-off) < sl {
			return Event{}, 0, nil
		}
		e.Str = string(b[off : off+int(sl)])
		off += int(sl)
	}
	return e, off, nil
}
