package obs

// Canonical metric names for the ddserved service layer. They live here —
// next to the Registry that exports them — so the daemon, its client, and
// the tests agree on one spelling, and so /metrics dashboards survive
// refactors of internal/service.
//
// Naming follows the Prometheus conventions the rest of the repository
// uses: `ddserved_` prefix, `_total` suffix on counters, bare names for
// gauges. Service gauges are single-writer (the daemon's own bookkeeping),
// which is the regime the Gauge type documents as safe.
const (
	// SvcJobsSubmitted counts accepted submissions (cache hits included).
	SvcJobsSubmitted = "ddserved_jobs_submitted_total"
	// SvcJobsCompleted counts jobs that finished with a result.
	SvcJobsCompleted = "ddserved_jobs_completed_total"
	// SvcJobsFailed counts jobs that ended in an execution error.
	SvcJobsFailed = "ddserved_jobs_failed_total"
	// SvcJobsCanceled counts jobs stopped by deadline or cancellation.
	SvcJobsCanceled = "ddserved_jobs_canceled_total"
	// SvcJobsRejected counts submissions bounced by backpressure (HTTP 429)
	// or refused during drain (HTTP 503).
	SvcJobsRejected = "ddserved_jobs_rejected_total"

	// SvcCacheHits / SvcCacheMisses / SvcCacheEvictions instrument the
	// content-addressed result cache.
	SvcCacheHits      = "ddserved_cache_hits_total"
	SvcCacheMisses    = "ddserved_cache_misses_total"
	SvcCacheEvictions = "ddserved_cache_evictions_total"

	// SvcHTTPRequests counts every request the API mux serves.
	SvcHTTPRequests = "ddserved_http_requests_total"

	// SvcQueueDepth is the current number of queued (not yet running) jobs.
	SvcQueueDepth = "ddserved_queue_depth"
	// SvcJobsInflight is the current number of running jobs.
	SvcJobsInflight = "ddserved_jobs_inflight"
	// SvcWorkerUtilization is the running-job share of the worker pool, in
	// whole percent (100 = every worker busy).
	SvcWorkerUtilization = "ddserved_worker_utilization_pct"

	// SvcHTTPLatencyPrefix prefixes the per-endpoint wall-clock latency
	// histograms (milliseconds); the route key is appended, e.g.
	// ddserved_http_latency_ms_post_jobs. Wall-clock values are fine here:
	// the service registry is a diagnostics surface, not a deterministic
	// export.
	SvcHTTPLatencyPrefix = "ddserved_http_latency_ms_"
	// SvcQueueWait is the queued-to-running wall-clock wait histogram
	// (milliseconds).
	SvcQueueWait = "ddserved_queue_wait_ms"
	// SvcJobDuration is the job execution wall-clock histogram
	// (milliseconds), cache hits excluded.
	SvcJobDuration = "ddserved_job_duration_ms"

	// SvcSLORequests / SvcSLOBreaches feed the latency SLO error budget:
	// every measured request, and those slower than the configured
	// threshold.
	SvcSLORequests = "ddserved_slo_requests_total"
	SvcSLOBreaches = "ddserved_slo_breaches_total"

	// SvcStoreHits counts result-cache lookups answered from the on-disk
	// store after an in-memory miss (only possible with -store-dir).
	SvcStoreHits = "ddserved_store_hits_total"
	// SvcStoreErrors counts failed store writes; the job still completes,
	// the result just isn't durable.
	SvcStoreErrors = "ddserved_store_errors_total"
	// SvcStoreEntries / SvcStoreBytes gauge the on-disk store's current
	// footprint.
	SvcStoreEntries = "ddserved_store_entries"
	SvcStoreBytes   = "ddserved_store_bytes"
)

// Tenant metric names are shared by both daemons — ddserved and ddgate
// each enforce admission at their own edge — so the constants here carry
// no daemon prefix; callers pass their prefix ("ddserved_" / "ddgate_")
// to the Tenant* helpers below. Per-tenant series encode the tenant name
// in the metric name via MetricName, like the per-backend gateway series.
const (
	// TenantThrottledSuffix counts admissions rejected because a tenant's
	// token budget or weighted queue share was exhausted (HTTP 429). The
	// aggregate (un-suffixed-by-tenant) series feeds the
	// tenant-budget-exhausted default alert rule.
	TenantThrottledSuffix = "tenant_throttled_total"
	// TenantJobsSuffix / TenantBytesSuffix / TenantCacheHitsSuffix are the
	// per-tenant usage accounting series (jobs admitted, payload bytes
	// accepted, submissions served from cache).
	TenantJobsSuffix      = "tenant_jobs_total_"
	TenantBytesSuffix     = "tenant_bytes_total_"
	TenantCacheHitsSuffix = "tenant_cache_hits_total_"
	// TenantThrottledPerSuffix prefixes the per-tenant throttle counters.
	TenantThrottledPerSuffix = "tenant_throttled_total_"
	// TenantActiveSuffix prefixes the per-tenant active-job gauges
	// (queued + running), the quantity weighted admission bounds.
	TenantActiveSuffix = "tenant_active_jobs_"
)

// TenantThrottledMetric names the aggregate throttle counter for a daemon
// prefix ("ddserved_" or "ddgate_").
func TenantThrottledMetric(prefix string) string { return prefix + TenantThrottledSuffix }

// TenantJobsMetric names the per-tenant admitted-jobs counter.
func TenantJobsMetric(prefix, tenant string) string {
	return prefix + TenantJobsSuffix + MetricName(tenant)
}

// TenantBytesMetric names the per-tenant accepted-bytes counter.
func TenantBytesMetric(prefix, tenant string) string {
	return prefix + TenantBytesSuffix + MetricName(tenant)
}

// TenantCacheHitsMetric names the per-tenant cache-hit counter.
func TenantCacheHitsMetric(prefix, tenant string) string {
	return prefix + TenantCacheHitsSuffix + MetricName(tenant)
}

// TenantThrottledPerMetric names the per-tenant throttle counter.
func TenantThrottledPerMetric(prefix, tenant string) string {
	return prefix + TenantThrottledPerSuffix + MetricName(tenant)
}

// TenantActiveMetric names the per-tenant active-jobs gauge.
func TenantActiveMetric(prefix, tenant string) string {
	return prefix + TenantActiveSuffix + MetricName(tenant)
}
