package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strconv"

	"demandrace/internal/obs"
	"demandrace/internal/trace"
)

// TraceContentType is the media type of a binary trace upload; raw
// application/octet-stream is accepted as a synonym.
const TraceContentType = "application/x-ddrace-trace"

// Handler returns the service API:
//
//	POST /v1/jobs          submit a job (JSON Request, or a binary trace
//	                       upload with ?fullvc=1&max_reports=N&timeout_ms=D)
//	GET  /v1/jobs/{id}     job status
//	GET  /v1/results/{id}  result JSON of a done job
//	GET  /healthz          liveness and drain state
//	GET  /metrics          Prometheus text exposition of the registry
//
// Submissions answer 202 (accepted), 200 (cache hit, already done), 400
// (malformed), 413 (upload over limits), 429 + Retry-After (queue full),
// or 503 (draining).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	counted := s.reg.Counter(obs.SvcHTTPRequests)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		counted.Inc()
		mux.ServeHTTP(w, r)
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	var (
		st  Status
		err error
	)
	switch ct {
	case TraceContentType, "application/octet-stream":
		q := r.URL.Query()
		opts := TraceOptions{FullVC: q.Get("fullvc") == "1" || q.Get("fullvc") == "true"}
		if v := q.Get("max_reports"); v != "" {
			opts.MaxReports, _ = strconv.Atoi(v)
		}
		if v := q.Get("timeout_ms"); v != "" {
			opts.TimeoutMS, _ = strconv.ParseInt(v, 10, 64)
		}
		st, err = s.SubmitTrace(r.Body, opts)
	default:
		var req Request
		if derr := json.NewDecoder(r.Body).Decode(&req); derr != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", derr))
			return
		}
		st, err = s.Submit(req)
	}
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	code := http.StatusAccepted
	if st.State == StateDone {
		code = http.StatusOK // cache hit: the result is already fetchable
	}
	writeJSON(w, code, st)
}

// writeSubmitError maps admission errors onto status codes.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	var lim *trace.LimitError
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.As(err, &lim):
		writeError(w, http.StatusRequestEntityTooLarge, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	data, st, err := s.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	switch st.State {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, st.Error)
	case StateCanceled:
		writeError(w, http.StatusGatewayTimeout, st.Error)
	default:
		// Not terminal yet: tell the poller to come back.
		writeJSON(w, http.StatusConflict, st)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := map[string]any{
		"status":   "ok",
		"queued":   len(s.queue),
		"inflight": s.inflight,
	}
	draining := s.closed
	s.mu.Unlock()
	code := http.StatusOK
	if draining {
		body["status"] = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteProm(w); err != nil {
		// Headers are gone; nothing useful left to do but note it.
		fmt.Fprintf(w, "# write error: %v\n", err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
