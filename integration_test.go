package demandrace_test

import (
	"bytes"
	"strings"
	"testing"

	"demandrace"
	"demandrace/internal/report"
	"demandrace/internal/trace"
)

// TestGrandTour chains the whole public workflow end to end: build a
// program, size up policies on it, inject extra races, record a trace,
// replay it offline, explore schedules, and render the HTML report — the
// complete session a downstream adopter would run.
func TestGrandTour(t *testing.T) {
	// 1. Build a mostly-clean program with one planted bug.
	b := demandrace.NewProgram("grand-tour")
	bug := b.Space().AllocLine(8)
	for ti := 0; ti < 4; ti++ {
		tb := b.Thread()
		priv := b.Space().AllocArray(300, 8)
		tb.Region("work")
		for i := 0; i < 300; i++ {
			a := priv + demandrace.Addr(i*8)
			tb.Load(a).Store(a).Compute(2)
			if i%75 == 30 {
				tb.Region("shared-stat")
				tb.Load(bug).Store(bug)
				tb.Region("work")
			}
		}
	}
	p := b.MustBuild()

	// 2. Policy comparison on the identical execution.
	reps, err := demandrace.RunPolicies(p, demandrace.DefaultConfig(),
		demandrace.Off, demandrace.Continuous, demandrace.HITMDemand)
	if err != nil {
		t.Fatal(err)
	}
	off, cont, dem := reps[0], reps[1], reps[2]
	if off.Slowdown != 1.0 {
		t.Fatalf("off slowdown = %g", off.Slowdown)
	}
	if len(cont.Races) == 0 || len(dem.Races) == 0 {
		t.Fatalf("planted bug missed: cont=%d dem=%d", len(cont.Races), len(dem.Races))
	}
	if dem.Slowdown >= cont.Slowdown {
		t.Errorf("demand %.2f× not faster than continuous %.2f×", dem.Slowdown, cont.Slowdown)
	}
	if dem.Races[0].CurRegion != "shared-stat" && dem.Races[0].PrevRegion != "shared-stat" {
		t.Errorf("race not attributed to region: %v", dem.Races[0])
	}

	// 3. Inject two more races and confirm continuous finds the planted
	// plus injected ones.
	injected, injs, err := demandrace.InjectRaces(p, demandrace.InjectionConfig{
		Seed: 5, Count: 2, Repeats: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := demandrace.DefaultConfig().WithPolicy(demandrace.Continuous)
	cfg.Tracer = demandrace.NewTraceRecorder(injected.Name)
	cfg.Lockset = true
	full, err := demandrace.Run(injected, cfg)
	if err != nil {
		t.Fatal(err)
	}
	racy := full.RacyAddrs()
	for _, in := range injs {
		if !racy[in.Addr.String()] {
			t.Errorf("injected race %v missed", in)
		}
	}
	if len(full.LocksetReports) == 0 {
		t.Error("lockset engine silent on injected races")
	}

	// 4. Offline replay reproduces the live reports; the binary codec
	// round-trips the trace.
	tr := cfg.Tracer.Trace()
	var bin bytes.Buffer
	if err := trace.EncodeBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.DecodeBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	det := demandrace.ReplayTrace(decoded, demandrace.DetectorOptions{})
	if len(det.Reports()) != len(full.Races) {
		t.Errorf("replay races %d != live %d", len(det.Reports()), len(full.Races))
	}

	// 5. Schedule exploration: the planted bug shows in every schedule.
	ex, err := demandrace.Explore(p, demandrace.DefaultConfig().WithPolicy(demandrace.Continuous), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Intersection) == 0 {
		t.Error("planted bug absent from some schedule")
	}

	// 6. The HTML report renders with all the pieces.
	var html bytes.Buffer
	if err := report.Write(&html, full, dem); err != nil {
		t.Fatal(err)
	}
	out := html.String()
	for _, want := range []string{"race report(s)", "shared-stat", "Lockset violations", "Policy comparison"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
