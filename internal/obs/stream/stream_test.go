package stream

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestPublishSubscribe(t *testing.T) {
	b := NewBus("n0")
	sub := b.Subscribe(0)
	defer sub.Close()

	b.Publish(Event{Type: TypeJobQueued, Job: "j-1", Trace: "abc"})
	b.Publish(Event{Type: TypeJobDone, Job: "j-1", Detail: map[string]string{"state": "done"}})

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	ev, ok := sub.Next(ctx)
	if !ok || ev.Type != TypeJobQueued || ev.Job != "j-1" || ev.Trace != "abc" {
		t.Fatalf("first event = %+v, %v", ev, ok)
	}
	if ev.Seq == 0 || ev.UnixMS == 0 || ev.Node != "n0" {
		t.Fatalf("bus did not stamp the event: %+v", ev)
	}
	ev2, ok := sub.Next(ctx)
	if !ok || ev2.Type != TypeJobDone || ev2.Detail["state"] != "done" {
		t.Fatalf("second event = %+v, %v", ev2, ok)
	}
	if ev2.Seq != ev.Seq+1 {
		t.Fatalf("sequence not contiguous: %d then %d", ev.Seq, ev2.Seq)
	}
}

func TestSlowSubscriberDropsOldest(t *testing.T) {
	b := NewBus("n0")
	sub := b.Subscribe(4)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		b.Publish(Event{Type: TypeJobQueued})
	}
	if got := sub.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	ev, ok := sub.Next(ctx)
	if !ok || ev.Seq != 7 {
		// Oldest dropped: the first retained event is seq 7 of 10.
		t.Fatalf("first retained seq = %d (%v), want 7", ev.Seq, ok)
	}
	for want := uint64(8); want <= 10; want++ {
		ev, ok := sub.Next(ctx)
		if !ok || ev.Seq != want {
			t.Fatalf("retained seq = %d (%v), want %d", ev.Seq, ok, want)
		}
	}
}

func TestNextUnblocksOnCtxAndClose(t *testing.T) {
	b := NewBus("n0")
	sub := b.Subscribe(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, ok := sub.Next(ctx); ok {
		t.Fatal("Next returned an event from an empty bus")
	}
	done := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(context.Background())
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	sub.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned an event after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not unblock on Close")
	}
	if b.Subscribers() != 0 {
		t.Fatalf("subscribers = %d after close", b.Subscribers())
	}
}

func TestNilBusIsNoOp(t *testing.T) {
	var b *Bus
	b.Publish(Event{Type: TypeJobQueued})
	if b.Subscribe(0) != nil || b.Subscribers() != 0 {
		t.Fatal("nil bus is not a no-op")
	}
}

func TestServeSSEAndDecoderRoundtrip(t *testing.T) {
	b := NewBus("n0")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ServeSSE(w, r, b)
	}))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	dec := NewDecoder(resp.Body)
	hello, err := dec.Next()
	if err != nil || hello.Type != TypeHello || hello.Node != "n0" {
		t.Fatalf("hello = %+v, %v", hello, err)
	}

	// The subscriber attaches inside ServeSSE; publish until the event
	// comes through rather than racing the handler's subscribe.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				b.Publish(Event{Type: TypeCacheHit, Job: "j-9"})
			}
		}
	}()
	ev, err := dec.Next()
	if err != nil || ev.Type != TypeCacheHit || ev.Job != "j-9" {
		t.Fatalf("streamed event = %+v, %v", ev, err)
	}
}

func TestDecoderSkipsCommentsAndBlankLines(t *testing.T) {
	in := ": keepalive\n\n" +
		"event: job_done\ndata: {\"seq\":3,\"t\":1,\"type\":\"job_done\",\"job\":\"j-2\"}\n\n"
	dec := NewDecoder(strings.NewReader(in))
	ev, err := dec.Next()
	if err != nil || ev.Type != TypeJobDone || ev.Job != "j-2" || ev.Seq != 3 {
		t.Fatalf("decoded = %+v, %v", ev, err)
	}
}

// TestIngestEventTypesRoundtrip wire-round-trips the streaming-ingest
// event types (trace_chunk, race_found) through the SSE encoder and
// Decoder, including the Detail payloads the ingest manager publishes.
func TestIngestEventTypesRoundtrip(t *testing.T) {
	events := []Event{
		{Type: TypeTraceChunk, Job: "s-1", Detail: map[string]string{
			"seq": "3", "bytes": "4096", "events": "120", "races": "0",
		}},
		{Type: TypeRaceFound, Job: "s-1", Detail: map[string]string{
			"addr": "0x40", "kind": "write-write", "cur": "2", "prev": "0",
		}},
	}
	var buf strings.Builder
	for _, ev := range events {
		ev.Seq, ev.UnixMS = 1, 1
		if err := writeSSE(&buf, ev); err != nil {
			t.Fatalf("writeSSE(%s): %v", ev.Type, err)
		}
	}
	// The event: field names the type so SSE-native consumers can filter
	// without parsing the JSON.
	for _, typ := range []string{TypeTraceChunk, TypeRaceFound} {
		if !strings.Contains(buf.String(), "event: "+typ+"\n") {
			t.Fatalf("encoded stream lacks event field for %s:\n%s", typ, buf.String())
		}
	}
	dec := NewDecoder(strings.NewReader(buf.String()))
	for _, want := range events {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("decoding %s: %v", want.Type, err)
		}
		if got.Type != want.Type || got.Job != want.Job {
			t.Fatalf("decoded %+v, want type %s job %s", got, want.Type, want.Job)
		}
		for k, v := range want.Detail {
			if got.Detail[k] != v {
				t.Fatalf("%s detail[%s] = %q, want %q", want.Type, k, got.Detail[k], v)
			}
		}
	}
	if _, err := dec.Next(); err == nil {
		t.Fatal("decoder produced an event past the end of the stream")
	}
}

func TestReplayAndGap(t *testing.T) {
	b := NewBus("n0")
	for i := 0; i < 5; i++ {
		b.Publish(Event{Type: TypeJobQueued})
	}

	evs, gap := b.Replay(2)
	if gap != 0 || len(evs) != 3 || evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("Replay(2) = %d events (gap %d): %+v", len(evs), gap, evs)
	}
	if evs, gap := b.Replay(0); gap != 0 || len(evs) != 5 {
		t.Fatalf("Replay(0) = %d events, gap %d", len(evs), gap)
	}
	// Caught up, or claiming a future sequence (restarted bus): nothing to
	// replay and no gap — the live stream takes over.
	if evs, gap := b.Replay(5); evs != nil || gap != 0 {
		t.Fatalf("Replay(5) = %+v, gap %d", evs, gap)
	}
	if evs, gap := b.Replay(99); evs != nil || gap != 0 {
		t.Fatalf("Replay(99) = %+v, gap %d", evs, gap)
	}
	var nilBus *Bus
	if evs, gap := nilBus.Replay(0); evs != nil || gap != 0 {
		t.Fatal("nil bus Replay not a no-op")
	}
}

func TestReplayReportsEvictedGap(t *testing.T) {
	b := NewBus("n0")
	// Overflow the retained ring so the oldest events are unresumable.
	for i := 0; i < DefaultRetained+10; i++ {
		b.Publish(Event{Type: TypeJobQueued})
	}
	evs, gap := b.Replay(0)
	if len(evs) != DefaultRetained {
		t.Fatalf("replayed %d events, want the full ring %d", len(evs), DefaultRetained)
	}
	if gap != 10 {
		t.Fatalf("gap = %d, want the 10 evicted events", gap)
	}
	if evs[0].Seq != 11 {
		t.Fatalf("oldest replayed seq = %d, want 11", evs[0].Seq)
	}
}

func TestServeSSEResume(t *testing.T) {
	b := NewBus("n0")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ServeSSE(w, r, b)
	}))
	defer ts.Close()

	for i := 0; i < 3; i++ {
		b.Publish(Event{Type: TypeJobQueued, Job: "j-1"})
	}

	// Reconnect claiming we saw seq 1: events 2 and 3 replay after the
	// hello, then the stream goes live.
	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	req.Header.Set("Last-Event-ID", "1")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	dec := NewDecoder(resp.Body)
	hello, err := dec.Next()
	if err != nil || hello.Type != TypeHello || hello.Gap != 0 {
		t.Fatalf("hello = %+v, %v", hello, err)
	}
	for _, want := range []uint64{2, 3} {
		ev, err := dec.Next()
		if err != nil || ev.Seq != want {
			t.Fatalf("replayed seq = %d (%v), want %d", ev.Seq, err, want)
		}
	}
	// Live events continue past the replay.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				b.Publish(Event{Type: TypeJobDone, Job: "j-1"})
			}
		}
	}()
	ev, err := dec.Next()
	if err != nil || ev.Type != TypeJobDone || ev.Seq <= 3 {
		t.Fatalf("live event after replay = %+v, %v", ev, err)
	}
}

func TestServeSSEResumeQueryParam(t *testing.T) {
	b := NewBus("n0")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ServeSSE(w, r, b)
	}))
	defer ts.Close()
	b.Publish(Event{Type: TypeJobQueued})
	b.Publish(Event{Type: TypeJobDone})

	resp, err := ts.Client().Get(ts.URL + "?last_event_id=0")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	dec := NewDecoder(resp.Body)
	if hello, err := dec.Next(); err != nil || hello.Type != TypeHello {
		t.Fatalf("hello = %+v, %v", hello, err)
	}
	for _, want := range []uint64{1, 2} {
		ev, err := dec.Next()
		if err != nil || ev.Seq != want {
			t.Fatalf("replayed seq = %d (%v), want %d", ev.Seq, err, want)
		}
	}
}

func TestWriteSSEIDLines(t *testing.T) {
	var buf strings.Builder
	if err := writeSSE(&buf, Event{Seq: 7, Type: TypeJobDone, UnixMS: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "id: 7\n") {
		t.Fatalf("stamped event lacks id line:\n%s", buf.String())
	}
	buf.Reset()
	if err := writeSSE(&buf, Event{Type: TypeHello, UnixMS: 1}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "id:") {
		t.Fatalf("unstamped hello carries an id line:\n%s", buf.String())
	}
}

func TestAlertEventTypesRoundtrip(t *testing.T) {
	b := NewBus("n0")
	sub := b.Subscribe(0)
	defer sub.Close()
	b.Publish(Event{Type: TypeAlertFiring, Detail: map[string]string{"rule": "r", "state": "firing"}})
	b.Publish(Event{Type: TypeAlertResolved, Detail: map[string]string{"rule": "r", "state": "resolved"}})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for _, want := range []string{TypeAlertFiring, TypeAlertResolved} {
		ev, ok := sub.Next(ctx)
		if !ok || ev.Type != want || ev.Detail["rule"] != "r" {
			t.Fatalf("event = %+v (%v), want type %s", ev, ok, want)
		}
	}
}
