package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"demandrace/internal/obs"
	"demandrace/internal/obs/stream"
	"demandrace/internal/obs/tracectx"
	"demandrace/internal/obs/tsdb"
	"demandrace/internal/service"
)

// route mirrors internal/service's route table: a mux pattern, the stable
// key naming its latency histogram and stats row, the quiet flag that
// demotes infrastructure-poll access logs to debug, and the stream flag
// marking SSE routes that bypass latency accounting.
type route struct {
	pattern string
	key     string
	quiet   bool
	stream  bool
	handler http.HandlerFunc
}

func (g *Gateway) routes() []route {
	return []route{
		{"POST /v1/jobs", "post_jobs", false, false, g.handleSubmit},
		{"POST /v1/traces", "post_traces", false, false, g.handleTraceOpen},
		{"PUT /v1/traces/{id}/chunks/{seq}", "put_trace_chunk", false, false, g.handleTraceChunk},
		{"GET /v1/traces/{id}", "get_trace_session", false, false, g.handleTraceSession},
		{"POST /v1/traces/{id}/commit", "post_trace_commit", false, false, g.handleTraceCommit},
		{"GET /v1/jobs/{id}", "get_job", false, false, g.handleJob},
		{"GET /v1/jobs/{id}/trace", "get_job_trace", false, false, g.handleJobTrace},
		{"GET /v1/jobs/{id}/partial", "get_job_partial", false, false, g.handlePartial},
		{"GET /v1/results/{id}", "get_result", false, false, g.handleResult},
		{"GET /v1/timeseries", "get_timeseries", true, false, g.handleTimeseries},
		{"GET /v1/events", "get_events", true, true, g.handleEvents},
		{"GET /v1/alerts", "get_alerts", true, false, g.handleAlerts},
		{"GET /v1/dashboard", "get_dashboard", true, false, g.handleDashboard},
		{"GET /v1/stats", "get_stats", true, false, g.handleStats},
		{"GET /healthz", "healthz", true, false, g.handleHealth},
		{"GET /metrics", "metrics", true, false, g.handleMetrics},
	}
}

// Handler returns the gateway API — the same surface a single ddserved
// node exposes, so service.Client and `ddrace -submit` work unchanged:
//
//	POST /v1/jobs          route by content hash, failover + hedging
//	GET  /v1/jobs/{id}     forwarded to the owning backend (id prefix)
//	GET  /v1/results/{id}  forwarded to the owning backend, bytes untouched
//	GET  /v1/stats         gateway + per-backend aggregated stats
//	GET  /healthz          ring capacity (503 only when no backend routable)
//	GET  /metrics          Prometheus text exposition of the gateway registry
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range g.routes() {
		mux.Handle(rt.pattern, g.instrument(rt))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.cRequests.Inc()
		mux.ServeHTTP(w, r)
	})
}

// statusRecorder captures what a handler wrote, for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += n
	return n, err
}

// instrument wraps one route with the span/latency/access-log stack,
// mirroring the ddserved middleware so per-route dashboards read the same
// on either tier.
func (g *Gateway) instrument(rt route) http.Handler {
	hist := g.reg.Histogram(obs.GateHTTPLatencyPrefix+rt.key, obs.LatencyBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tc, _ := tracectx.FromHeader(r.Header.Get)
		ctx := tracectx.Into(r.Context(), tc)
		if rt.stream {
			// SSE: raw writer (the recorder would hide http.Flusher), no
			// latency histogram — a long tail is not a slow request.
			g.log.Debug("event stream open", "path", r.URL.Path, "trace_id", tc.TraceID())
			rt.handler(w, r.WithContext(ctx))
			g.log.Debug("event stream closed", "path", r.URL.Path, "trace_id", tc.TraceID())
			return
		}
		ctx, span := obs.StartSpan(ctx, "gate:"+rt.key)
		span.SetAttr("trace_id", tc.TraceID())
		span.ObserveInto(hist)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		rt.handler(rec, r.WithContext(ctx))
		dur := span.End()
		logf := g.log.Info
		if rt.quiet {
			logf = g.log.Debug
		}
		logf("http request",
			"method", r.Method,
			"path", r.URL.Path,
			"route", rt.key,
			"status", rec.status,
			"bytes", rec.bytes,
			"dur_ms", float64(dur)/float64(time.Millisecond),
			"trace_id", tc.TraceID(),
		)
	})
}

// handleSubmit routes a submission by content hash. The body is buffered
// (bounded) so retries and hedges can replay it, the routing key is
// computed with the same hashes the backends use for caching, and the
// winning backend's job ID comes back namespaced as "<backend>:<id>".
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Record this request's gateway-side spans (the request envelope plus
	// every forward/hedge attempt) so the job's trace waterfall can show
	// the gateway hop above the backend's stages.
	grec := obs.NewSpanRecorder(g.cfg.Node, 0)
	obs.SpanFrom(r.Context()).RecordInto(grec)

	// Edge admission first: a throttled tenant is answered before its body
	// is even read, let alone forwarded.
	tn, admitted := g.admitTenant(w, r)
	if !admitted {
		return
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, g.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err))
		return
	}
	if int64(len(body)) > g.cfg.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("cluster: request body exceeds %d bytes", g.cfg.MaxBodyBytes))
		return
	}

	var key string
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	switch ct {
	case service.TraceContentType, "application/octet-stream":
		q := r.URL.Query()
		opts := service.TraceOptions{FullVC: q.Get("fullvc") == "1" || q.Get("fullvc") == "true"}
		if v := q.Get("max_reports"); v != "" {
			opts.MaxReports, _ = strconv.Atoi(v)
		}
		key = service.TraceCacheKey(body, opts)
	default:
		var req service.Request
		if derr := json.Unmarshal(body, &req); derr != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", derr))
			return
		}
		if verr := req.Validate(); verr != nil {
			// Reject at the edge: no reason to burn a backend round trip
			// on a request every backend would 400.
			writeError(w, http.StatusBadRequest, verr.Error())
			return
		}
		key = req.CacheKey()
	}

	candidates := g.candidates(key)
	if len(candidates) == 0 {
		g.cErrors.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "cluster: no healthy backends")
		return
	}
	up, err := g.forward(r.Context(), candidates, func(base string) (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs?"+r.URL.RawQuery, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
		forwardAPIKey(req, r)
		return req, nil
	})
	if err != nil {
		g.cErrors.Inc()
		g.log.Error("submission failed on every candidate", "key", key[:16], "error", err.Error())
		writeError(w, http.StatusBadGateway, fmt.Sprintf("cluster: all backends failed: %v", err))
		return
	}
	tc, _ := tracectx.From(r.Context())
	g.log.Info("job routed", "key", key[:16], "backend", up.backend, "status", up.status,
		"trace_id", tc.TraceID())
	g.tenants.Account(tn, int64(len(body)), up.status == http.StatusOK)
	var st service.Status
	if json.Unmarshal(up.body, &st) == nil && st.ID != "" {
		gid := joinJobID(up.backend, st.ID)
		g.traces.put(gid, grec)
		// Remember which key this job answers for (read-repair joins on it),
		// and start replication right away for born-done cache hits — queued
		// jobs are tracked when their job_done event is tailed.
		g.jobKeys.put(gid, key)
		if st.State == service.StateDone {
			g.replica.Track(key, up.backend)
		}
	}
	g.relay(w, up, true)
}

// handleJob forwards a status poll to the backend encoded in the ID. The
// returned status is re-namespaced so clients that feed a polled status's
// ID back into /v1/results keep working.
func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	g.forwardToOwner(w, r, "/v1/jobs/", true)
}

// handleResult forwards a result fetch to the owning backend. The 200
// body is relayed byte-for-byte: result bytes through the gateway are
// identical to result bytes fetched directly. When the owner is
// unreachable (or restarted without the result), the fetch falls through
// to the key's replica chain: read-repair serves the identical sealed
// bytes from a successor and queues the owner for back-fill.
func (g *Gateway) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	name, remoteID, ok := splitJobID(id)
	b := g.byName[name]
	if !ok || b == nil {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("cluster: no such job %q (gateway ids look like backend:j-n)", id))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.Retry.Timeout)
	defer cancel()
	up, err := g.attemptOne(ctx, b, func(base string) (*http.Request, error) {
		return http.NewRequest(http.MethodGet, base+"/v1/results/"+remoteID, nil)
	})
	if err == nil && up.status != http.StatusNotFound {
		g.relay(w, up, false)
		return
	}
	// Owner gone (or a restarted owner that no longer knows the job): the
	// result may still be alive on a replica.
	if g.serveRepaired(w, r, id, name) {
		return
	}
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Sprintf("cluster: backend %s unreachable: %v", name, err))
		return
	}
	g.relay(w, up, false)
}

// forwardToOwner routes a per-job GET to the backend that owns the job.
// No failover here — job state is node-local, so a different replica can
// only answer 404.
func (g *Gateway) forwardToOwner(w http.ResponseWriter, r *http.Request, path string, rewriteID bool) {
	name, remoteID, ok := splitJobID(r.PathValue("id"))
	b := g.byName[name]
	if !ok || b == nil {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("cluster: no such job %q (gateway ids look like backend:j-n)", r.PathValue("id")))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.Retry.Timeout)
	defer cancel()
	up, err := g.attemptOne(ctx, b, func(base string) (*http.Request, error) {
		return http.NewRequest(http.MethodGet, base+path+remoteID, nil)
	})
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Sprintf("cluster: backend %s unreachable: %v", name, err))
		return
	}
	g.relay(w, up, rewriteID)
}

// relay writes an upstream answer to the client. When rewriteID is set
// and the body is a Status document, the job ID is re-namespaced into the
// gateway's "<backend>:<id>" form; everything else passes through
// untouched (headers worth keeping included).
func (g *Gateway) relay(w http.ResponseWriter, up upstream, rewriteID bool) {
	for _, h := range []string{"Content-Type", "Retry-After", "X-DD-Tenant"} {
		if v := up.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	body := up.body
	if rewriteID {
		if rewritten, ok := rewriteStatusID(body, up.backend); ok {
			body = rewritten
		}
	}
	w.WriteHeader(up.status)
	w.Write(body)
}

// rewriteStatusID namespaces the "id" field of a Status JSON document.
func rewriteStatusID(body []byte, backendName string) ([]byte, bool) {
	var st service.Status
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		return nil, false
	}
	st.ID = joinJobID(backendName, st.ID)
	out, err := json.Marshal(st)
	if err != nil {
		return nil, false
	}
	return append(out, '\n'), true
}

// handleHealth reports ring capacity. The gateway stays 200 while at
// least one backend is routable — shedding the whole cluster because one
// replica died would turn a partial failure into a total one; only an
// empty ring answers 503.
func (g *Gateway) handleHealth(w http.ResponseWriter, _ *http.Request) {
	perBackend := make(map[string]string, len(g.backends))
	ok, degraded := 0, 0
	for _, b := range g.backends {
		h := b.Health()
		perBackend[b.Name] = h.String()
		switch h {
		case HealthOK:
			ok++
		case HealthDegraded:
			degraded++
		}
	}
	status := service.HealthOK
	code := http.StatusOK
	rs := g.replica.StatsSnapshot()
	switch {
	case ok+degraded == 0:
		status = "down"
		code = http.StatusServiceUnavailable
	case ok < len(g.backends):
		status = service.HealthDegraded
	case rs.Degraded:
		// Handoff missed its deadline: every backend answers, but some
		// sealed results are still below their replication factor.
		status = service.HealthDegraded
	}
	body := map[string]any{
		"status":    status,
		"ring_size": g.ring.Size(),
		"backends":  perBackend,
	}
	if rs.Factor > 1 {
		body["replication"] = map[string]any{
			"factor":           rs.Factor,
			"tracked":          rs.Tracked,
			"under_replicated": rs.UnderReplicated,
			"queue":            rs.Queue,
			"degraded":         rs.Degraded,
		}
	}
	writeJSON(w, code, body)
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Stats(r.Context()))
}

// handleJobTrace merges two waterfalls onto one timeline: the gateway's
// recorded forwarding spans for the job (if still retained) and the
// owning backend's stage spans, fetched live. Both documents carry their
// absolute base time, so re-encoding the concatenated records lines the
// gateway hop up above the backend stages exactly as they happened.
func (g *Gateway) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	name, remoteID, ok := splitJobID(id)
	b := g.byName[name]
	if !ok || b == nil {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("cluster: no such job %q (gateway ids look like backend:j-n)", id))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.Retry.Timeout)
	defer cancel()
	up, err := g.attemptOne(ctx, b, func(base string) (*http.Request, error) {
		return http.NewRequest(http.MethodGet, base+"/v1/jobs/"+remoteID+"/trace", nil)
	})

	extra := map[string]string{"job_id": id, "node": g.cfg.Node}
	var backendRecs []obs.SpanRecord
	if err == nil && up.status == http.StatusOK {
		recs, other, derr := obs.DecodeSpanTrace(up.body)
		if derr != nil {
			writeError(w, http.StatusBadGateway,
				fmt.Sprintf("cluster: backend %s returned an unreadable trace: %v", name, derr))
			return
		}
		backendRecs = recs
		for _, k := range []string{"trace_id", "state"} {
			if v := other[k]; v != "" {
				extra[k] = v
			}
		}
	}
	gwRecs := g.traces.records(id)
	if len(backendRecs) == 0 && len(gwRecs) == 0 {
		// Nothing to merge: pass the backend's answer (or failure) through.
		if err != nil {
			writeError(w, http.StatusBadGateway,
				fmt.Sprintf("cluster: backend %s unreachable: %v", name, err))
			return
		}
		g.relay(w, up, false)
		return
	}
	data, eerr := obs.EncodeSpanTrace("job "+id, append(gwRecs, backendRecs...), extra)
	if eerr != nil {
		writeError(w, http.StatusInternalServerError, eerr.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// maxTSBodyBytes bounds a backend's /v1/timeseries response during
// aggregation; 8 MiB is orders of magnitude above a full retention window.
const maxTSBodyBytes = 8 << 20

// handleTimeseries serves the fleet view: the gateway's own sampled
// history plus every reachable backend's, concurrently fetched under the
// stats timeout. Per-series Node fields keep the merged document
// attributable; an unreachable backend just contributes nothing.
func (g *Gateway) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	since, err := tsdb.ParseSince(r.URL.Query().Get("since"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	doc := g.ts.Doc(r.URL.Query().Get("metric"), since)

	perBackend := make([][]tsdb.Series, len(g.backends))
	var wg sync.WaitGroup
	for i, b := range g.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(r.Context(), g.cfg.StatsTimeout)
			defer cancel()
			req, rerr := http.NewRequestWithContext(sctx, http.MethodGet,
				b.URL+"/v1/timeseries?"+r.URL.RawQuery, nil)
			if rerr != nil {
				return
			}
			resp, derr := g.client.Do(req)
			if derr != nil {
				g.log.Debug("backend timeseries unavailable", "backend", b.Name, "error", derr.Error())
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var bdoc tsdb.Doc
			if json.NewDecoder(io.LimitReader(resp.Body, maxTSBodyBytes)).Decode(&bdoc) == nil {
				perBackend[i] = bdoc.Series
			}
		}(i, b)
	}
	wg.Wait()
	for _, series := range perBackend {
		doc.Series = append(doc.Series, series...)
	}
	sort.Slice(doc.Series, func(i, j int) bool {
		if doc.Series[i].Node != doc.Series[j].Node {
			return doc.Series[i].Node < doc.Series[j].Node
		}
		return doc.Series[i].Metric < doc.Series[j].Metric
	})
	writeJSON(w, http.StatusOK, doc)
}

func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	stream.ServeSSE(w, r, g.bus)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	obs.UpdateProcessGauges(g.reg)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := g.reg.WriteProm(w); err != nil {
		fmt.Fprintf(w, "# write error: %v\n", err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
