package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"demandrace/internal/obs"
	"demandrace/internal/obs/stream"
)

// Health is a backend's observed state.
type Health int

const (
	// HealthDown: the backend failed FailAfter consecutive probes (or has
	// not yet passed one after starting down) and is evicted from the ring.
	HealthDown Health = iota
	// HealthDegraded: the backend answers /healthz 503-with-body (queue
	// past its high-water mark, or draining). It stays routable — it is
	// still completing jobs — but operators see the pressure.
	HealthDegraded
	// HealthOK: the backend answers /healthz 200.
	HealthOK
)

// String renders the state the way /v1/stats and logs spell it.
func (h Health) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded"
	default:
		return "down"
	}
}

// Backend names one ddserved node.
type Backend struct {
	// Name is the ring identity. Stable names matter: ring placement is a
	// pure function of the name, so renaming a backend remaps its share of
	// the keyspace.
	Name string
	// URL is the node's base URL, without a trailing slash.
	URL string
}

// ParseBackends parses a comma-separated backend spec: each element is
// either "url" or "name=url". An omitted name derives from the URL's
// host:port with ':' replaced by '-' (e.g. "127.0.0.1-8318"), which is
// stable under reordering of the spec — listing the same set in any order
// yields the same ring.
func ParseBackends(spec string) ([]Backend, error) {
	var out []Backend
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var b Backend
		if name, rest, ok := strings.Cut(part, "="); ok && !strings.Contains(name, "/") {
			b = Backend{Name: name, URL: rest}
		} else {
			b = Backend{URL: part}
		}
		b.URL = strings.TrimRight(b.URL, "/")
		u, err := url.Parse(b.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: backend %q: want http://host:port", part)
		}
		if b.Name == "" {
			b.Name = strings.ReplaceAll(u.Host, ":", "-")
		}
		if seen[b.Name] {
			return nil, fmt.Errorf("cluster: duplicate backend name %q", b.Name)
		}
		seen[b.Name] = true
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no backends in spec %q", spec)
	}
	return out, nil
}

// backend is the gateway's per-node state: configuration plus the health
// machine the prober drives.
type backend struct {
	Backend

	mu     sync.Mutex
	health Health
	fails  int // consecutive probe failures

	cForward *obs.Counter
	gHealth  *obs.Gauge
}

// setHealth records a state and mirrors it into the gauge.
func (b *backend) setHealth(h Health) {
	b.mu.Lock()
	b.health = h
	b.mu.Unlock()
	b.gHealth.Set(int64(h))
}

// Health returns the backend's current state.
func (b *backend) Health() Health {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.health
}

// probe checks one backend's /healthz once and classifies the answer.
func (g *Gateway) probe(ctx context.Context, b *backend) (Health, error) {
	pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.URL+"/healthz", nil)
	if err != nil {
		return HealthDown, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return HealthDown, err
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body)
	switch {
	case resp.StatusCode == http.StatusOK:
		return HealthOK, nil
	case body.Status == "degraded" || body.Status == "draining":
		// Degraded-aware: the node is shedding load but still serving
		// admitted work; keep routing to it rather than stampeding the
		// healthy remainder.
		return HealthDegraded, nil
	default:
		return HealthDown, fmt.Errorf("cluster: %s /healthz answered %d", b.Name, resp.StatusCode)
	}
}

// ProbeNow probes every backend once, applying ring evictions and
// readmissions. The probe loop calls this on a ticker; tests and startup
// call it directly.
func (g *Gateway) ProbeNow(ctx context.Context) {
	for _, b := range g.backends {
		h, err := g.probe(ctx, b)
		b.mu.Lock()
		prev := b.health
		if h == HealthDown {
			b.fails++
		} else {
			b.fails = 0
			b.health = h
		}
		evict := b.fails >= g.cfg.FailAfter
		if evict {
			b.health = HealthDown
		}
		now := b.health
		fails := b.fails
		b.mu.Unlock()
		b.gHealth.Set(int64(now))

		switch {
		case evict && prev != HealthDown:
			g.ring.Evict(b.Name)
			g.replica.OnEvict(b.Name)
			g.log.Warn("backend evicted from ring", "backend", b.Name, "url", b.URL,
				"consecutive_failures", fails, "error", errString(err))
			g.publishRingChange(b, "evicted", now)
		case !evict && h != HealthDown && prev == HealthDown:
			g.ring.Readmit(b.Name)
			g.replica.OnReadmit(b.Name)
			g.log.Info("backend readmitted to ring", "backend", b.Name, "url", b.URL,
				"health", now.String())
			g.publishRingChange(b, "readmitted", now)
		case h == HealthDegraded && prev == HealthOK:
			g.log.Warn("backend degraded", "backend", b.Name, "url", b.URL)
			g.publishRingChange(b, "degraded", now)
		}
	}
	g.gRing.Set(int64(g.ring.Size()))
}

// publishRingChange emits one membership transition onto the event bus.
func (g *Gateway) publishRingChange(b *backend, change string, h Health) {
	g.bus.Publish(stream.Event{
		Type: stream.TypeRingChange,
		Detail: map[string]string{
			"backend": b.Name,
			"change":  change,
			"health":  h.String(),
		},
	})
}

// probeLoop drives ProbeNow on the configured interval until Stop.
func (g *Gateway) probeLoop() {
	defer close(g.stopped)
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			g.ProbeNow(context.Background())
		case <-g.stop:
			return
		}
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
