package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"demandrace/internal/obs/alert"
)

// maxAlertBodyBytes bounds a backend's /v1/alerts response during
// aggregation.
const maxAlertBodyBytes = 1 << 20

// BackendAlertStats is one backend's row in the fleet alert document.
type BackendAlertStats struct {
	Name string `json:"name"`
	// Error is set when the backend's alert document could not be fetched
	// (its own alerts are then missing from the merged view).
	Error string `json:"error,omitempty"`
	// Active and Firing count the backend's current alerts.
	Active int `json:"active"`
	Firing int `json:"firing"`
}

// FleetAlerts is the gateway's GET /v1/alerts document: its own
// ring-level alerts merged with every reachable backend's, each entry
// attributable through its node field.
type FleetAlerts struct {
	Node string `json:"node"`
	// Active holds gateway + backend pending/firing alerts, most urgent
	// first; History the merged resolved alerts, newest first.
	Active  []alert.Alert `json:"active"`
	History []alert.Alert `json:"history"`
	// Rules is the gateway's own rule set (backends serve their own).
	Rules []alert.Rule `json:"rules"`
	// AlertErrors counts backends whose alert fetch failed — nonzero
	// means this is a partial fleet view.
	AlertErrors int `json:"alert_errors"`
	// Backends summarizes per-backend alert state in configured order.
	Backends []BackendAlertStats `json:"backends"`
}

// FleetAlerts fans out to every backend's /v1/alerts under the stats
// timeout and merges the answers with the gateway's own engine state.
func (g *Gateway) FleetAlerts(ctx context.Context) FleetAlerts {
	doc := FleetAlerts{
		Node:    g.cfg.Node,
		Active:  g.alerts.Active(),
		History: g.alerts.History(),
		Rules:   g.alerts.Rules(),
	}

	type answer struct {
		doc alert.Doc
		err error
	}
	answers := make([]answer, len(g.backends))
	var wg sync.WaitGroup
	for i, b := range g.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, g.cfg.StatsTimeout)
			defer cancel()
			doc, err := fetchAlerts(sctx, g.client, b.URL)
			answers[i] = answer{doc, err}
		}(i, b)
	}
	wg.Wait()

	for i, b := range g.backends {
		row := BackendAlertStats{Name: b.Name}
		if err := answers[i].err; err != nil {
			row.Error = err.Error()
			doc.AlertErrors++
			g.log.Debug("backend alerts unavailable", "backend", b.Name, "error", err.Error())
		} else {
			for _, a := range answers[i].doc.Active {
				row.Active++
				if a.State == alert.StateFiring {
					row.Firing++
				}
			}
			doc.Active = append(doc.Active, answers[i].doc.Active...)
			doc.History = append(doc.History, answers[i].doc.History...)
		}
		doc.Backends = append(doc.Backends, row)
	}

	sort.SliceStable(doc.Active, func(i, j int) bool {
		a, b := doc.Active[i], doc.Active[j]
		if (a.State == alert.StateFiring) != (b.State == alert.StateFiring) {
			return a.State == alert.StateFiring
		}
		return a.SinceMS < b.SinceMS
	})
	sort.SliceStable(doc.History, func(i, j int) bool {
		return doc.History[i].ResolvedMS > doc.History[j].ResolvedMS
	})
	return doc
}

// fetchAlerts reads one backend's alert document.
func fetchAlerts(ctx context.Context, client *http.Client, base string) (alert.Doc, error) {
	var doc alert.Doc
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/alerts", nil)
	if err != nil {
		return doc, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("cluster: backend alerts answered HTTP %d", resp.StatusCode)
	}
	err = json.NewDecoder(io.LimitReader(resp.Body, maxAlertBodyBytes)).Decode(&doc)
	return doc, err
}

func (g *Gateway) handleAlerts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.FleetAlerts(r.Context()))
}

func (g *Gateway) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	alert.ServeConsole(w, g.cfg.Node)
}
