// Package demand implements the paper's contribution: the demand-driven
// analysis controller that decides, per thread and per operation, whether
// the software race detector observes a memory access.
//
// Each thread is in one of two execution modes:
//
//   - fast: memory accesses run uninstrumented; only synchronization
//     operations are analyzed (they are rare, and losing them would corrupt
//     the detector's happens-before state);
//   - analysis: every access is analyzed, as in a continuous-analysis tool.
//
// Threads start in fast mode. A PMU overflow sample (a HITM, under the
// default programming) flips the sample's scope of threads into analysis
// mode; a thread drops back to fast mode after executing QuietOps memory
// operations without any fresh sharing signal. Mode transitions model the
// cost of patching instrumentation in and out, which the cost model charges.
//
// The controller never inspects detector state and the detector never sees
// the controller: the paper's accuracy loss is exactly the set of accesses
// the controller withheld.
package demand

import (
	"fmt"
	"math/rand"

	"demandrace/internal/cache"
	"demandrace/internal/mem"
	"demandrace/internal/obs"
	"demandrace/internal/pageprot"
	"demandrace/internal/perf"
	"demandrace/internal/program"
	"demandrace/internal/vclock"
	"demandrace/internal/watchpoint"
)

// PolicyKind selects the gating strategy.
type PolicyKind uint8

const (
	// Off disables all analysis, including synchronization tracking. The
	// native-execution baseline.
	Off PolicyKind = iota
	// Continuous analyzes every operation: the Inspector-XE-style
	// always-on tool the paper compares against.
	Continuous
	// SyncOnly analyzes synchronization but never data accesses: the lower
	// bound on any demand-driven tool's overhead.
	SyncOnly
	// HITMDemand is the paper's design: data-access analysis is enabled by
	// HITM samples and decays after a quiet period.
	HITMDemand
	// Hybrid triggers on the broader sharing signal (HITM plus received
	// invalidations), trading extra enables for fewer missed first events.
	Hybrid
	// Sampling analyzes each data access independently with probability
	// SampleRate (LiteRace/Pacer-style blind sampling): the software-only
	// baseline the paper's hardware-triggered design is an answer to. It
	// needs no PMU, but catching a race requires sampling *both* sides of
	// the pair, so its recall falls quadratically with the rate while the
	// demand policy concentrates its budget exactly where sharing happens.
	Sampling
	// WatchDemand is the finer-grained mechanism from the same research
	// line: a HITM sample arms a hardware watchpoint (debug register) on
	// the shared *line* instead of flipping whole threads into analysis
	// mode, and only accesses to watched lines are analyzed. Near-zero
	// overhead when the active shared set fits the register file
	// (WatchCapacity, default 4), capacity thrash and lost coverage when
	// it does not.
	WatchDemand
	// PageDemand replaces the PMU signal with page-protection faults: the
	// pre-perf-counter software mechanism. A cross-thread touch of a
	// protected 4 KiB page faults (expensive), enables analysis like a
	// HITM sample would, and unprotects the page until the next periodic
	// re-protection sweep. Coarse granularity makes co-located private
	// data look shared; the fault and sweep costs are the price of not
	// having hardware events.
	PageDemand
)

func (k PolicyKind) String() string {
	switch k {
	case Off:
		return "off"
	case Continuous:
		return "continuous"
	case SyncOnly:
		return "sync-only"
	case HITMDemand:
		return "hitm-demand"
	case Hybrid:
		return "hybrid"
	case Sampling:
		return "sampling"
	case WatchDemand:
		return "watch-demand"
	case PageDemand:
		return "page-demand"
	}
	return fmt.Sprintf("PolicyKind(%d)", uint8(k))
}

// Demand reports whether the policy gates analysis on PMU samples.
func (k PolicyKind) Demand() bool {
	return k == HITMDemand || k == Hybrid || k == WatchDemand
}

// Selector returns the PMU event programming the policy needs.
func (k PolicyKind) Selector() perf.Selector {
	if k == Hybrid {
		return perf.SelSharing
	}
	return perf.SelHITM
}

// Policies lists every PolicyKind in definition order, for CLI/API surfaces
// that enumerate or parse them.
func Policies() []PolicyKind {
	return []PolicyKind{Off, Continuous, SyncOnly, HITMDemand, Hybrid, Sampling, WatchDemand, PageDemand}
}

// ParsePolicy inverts PolicyKind.String.
func ParsePolicy(s string) (PolicyKind, error) {
	for _, k := range Policies() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q (off|continuous|sync-only|hitm-demand|hybrid|sampling|watch-demand|page-demand)", s)
}

// Scope chooses which threads a sample flips into analysis mode.
type Scope uint8

const (
	// ScopeGlobal enables analysis on every thread (the default: sharing
	// phases tend to be program-wide, and the *first* racy access was by
	// some other thread that must start observing too).
	ScopeGlobal Scope = iota
	// ScopePair enables the sampled thread and the threads on the peer
	// core that supplied the line.
	ScopePair
	// ScopeSelf enables only the thread that received the sample.
	ScopeSelf
)

func (s Scope) String() string {
	switch s {
	case ScopeGlobal:
		return "global"
	case ScopePair:
		return "pair"
	case ScopeSelf:
		return "self"
	}
	return fmt.Sprintf("Scope(%d)", uint8(s))
}

// ParseScope inverts Scope.String.
func ParseScope(s string) (Scope, error) {
	for _, sc := range []Scope{ScopeGlobal, ScopePair, ScopeSelf} {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("unknown scope %q (global|pair|self)", s)
}

// Config parameterizes the controller.
type Config struct {
	Kind  PolicyKind
	Scope Scope
	// QuietOps is the number of memory operations a thread executes
	// without a fresh sharing sample before dropping back to fast mode.
	// Zero selects DefaultQuietOps.
	QuietOps uint64
	// SampleRate is the per-access analysis probability for the Sampling
	// policy, in (0,1]. Ignored by other policies.
	SampleRate float64
	// Seed drives the Sampling policy's random choices.
	Seed int64
	// WatchCapacity is the per-context watchpoint register count for the
	// WatchDemand policy. Zero selects watchpoint.DefaultCapacity.
	WatchCapacity int
	// Adaptive lets HITMDemand/Hybrid tune each thread's quiet window at
	// run time: a re-enable arriving soon after a decay means the window
	// was too short (double it, up to 32× the base); a long stretch of
	// fast execution before the next enable shrinks it back toward the
	// base. This removes the one hand-tuned constant of the design.
	Adaptive bool
	// ReprotectEvery is the PageDemand policy's re-protection sweep
	// interval in accesses. Zero selects pageprot.DefaultReprotectEvery.
	ReprotectEvery uint64
	// SyncTrigger additionally enables analysis (for HITMDemand/Hybrid)
	// whenever a thread executes a synchronization operation: the
	// heuristic that races cluster around critical sections and
	// handoffs. It buys recall on sharing the cache misses (evicted, SMT,
	// prefetched) at the cost of analysis windows after every sync op.
	SyncTrigger bool
}

// DefaultQuietOps balances staying enabled across a sharing phase against
// reverting promptly when a phase ends. The value is proportioned to this
// simulator's kernel sizes (tens of thousands of ops); the paper's
// equivalent knob is proportionally larger because its programs run
// billions of instructions.
const DefaultQuietOps = 250

// DefaultConfig is the paper's design at its default operating point.
func DefaultConfig() Config {
	return Config{Kind: HITMDemand, Scope: ScopeGlobal, QuietOps: DefaultQuietOps}
}

// Stats describes controller activity over one run.
type Stats struct {
	// Samples is the number of PMU samples the controller received.
	Samples uint64
	// EnableTransitions counts fast→analysis flips (per thread).
	EnableTransitions uint64
	// DisableTransitions counts analysis→fast flips.
	DisableTransitions uint64
	// MemAnalyzed / MemSkipped partition data accesses.
	MemAnalyzed uint64
	MemSkipped  uint64
	// SyncAnalyzed counts analyzed synchronization ops.
	SyncAnalyzed uint64
	// QuietGrow / QuietShrink count adaptive quiet-window adjustments.
	QuietGrow   uint64
	QuietShrink uint64
}

// AnalyzedFraction is the fraction of data accesses that were analyzed.
func (s Stats) AnalyzedFraction() float64 {
	total := s.MemAnalyzed + s.MemSkipped
	if total == 0 {
		return 0
	}
	return float64(s.MemAnalyzed) / float64(total)
}

type threadState struct {
	analyzing bool
	// memAnalyzed / memSkipped count this thread's data accesses by
	// outcome, for per-thread residency reporting.
	memAnalyzed uint64
	memSkipped  uint64
	// quiet counts memory ops executed since the last sharing signal while
	// in analysis mode.
	quiet uint64
	// quietLimit is the thread's current decay window (== Config.QuietOps
	// unless Adaptive).
	quietLimit uint64
	// fastOps counts memory ops executed in fast mode since the last
	// decay, for the adaptive controller's feedback.
	fastOps uint64
}

// Controller gates the detector. Not safe for concurrent use.
type Controller struct {
	cfg     Config
	threads []threadState
	// threadsOfCtx maps a hardware context to the threads placed on it.
	threadsOfCtx map[cache.Context][]vclock.TID
	// threadsOfCore maps a core to its threads, for ScopePair.
	threadsOfCore map[int][]vclock.TID
	coreOf        func(cache.Context) int
	ctxOf         func(vclock.TID) cache.Context
	// counterCtl toggles a hardware context's PMU counter. While every
	// thread of a context is in analysis mode its counter is disabled —
	// the signal is redundant there and interrupts are pure overhead — and
	// it is re-armed when a thread decays back to fast mode. This mirrors
	// the paper's design.
	counterCtl func(ctx cache.Context, enabled bool)
	// rng drives the Sampling policy's per-access coin flips.
	rng *rand.Rand
	// watch holds the per-context watchpoint units for WatchDemand.
	watch map[cache.Context]*watchpoint.Unit
	// pages is the protection tracker for PageDemand.
	pages *pageprot.Tracker
	// trace records mode transitions and counter toggles; nil disables
	// recording.
	trace *obs.Tracer
	stats Stats
}

// New builds a controller for numThreads threads, where ctxOf gives each
// thread's hardware context and coreOf maps contexts to cores.
func New(cfg Config, numThreads int, ctxOf func(vclock.TID) cache.Context, coreOf func(cache.Context) int) *Controller {
	if cfg.QuietOps == 0 {
		cfg.QuietOps = DefaultQuietOps
	}
	if cfg.Kind == Sampling && (cfg.SampleRate <= 0 || cfg.SampleRate > 1) {
		panic(fmt.Sprintf("demand: Sampling policy needs SampleRate in (0,1], got %g", cfg.SampleRate))
	}
	c := &Controller{
		cfg:           cfg,
		threads:       make([]threadState, numThreads),
		threadsOfCtx:  make(map[cache.Context][]vclock.TID),
		threadsOfCore: make(map[int][]vclock.TID),
		coreOf:        coreOf,
		ctxOf:         ctxOf,
	}
	for i := 0; i < numThreads; i++ {
		t := vclock.TID(i)
		ctx := ctxOf(t)
		c.threadsOfCtx[ctx] = append(c.threadsOfCtx[ctx], t)
		core := coreOf(ctx)
		c.threadsOfCore[core] = append(c.threadsOfCore[core], t)
	}
	for i := range c.threads {
		c.threads[i].quietLimit = cfg.QuietOps
	}
	// Continuous analysis is permanently on.
	if cfg.Kind == Continuous {
		for i := range c.threads {
			c.threads[i].analyzing = true
		}
	}
	if cfg.Kind == Sampling {
		c.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	if cfg.Kind == WatchDemand {
		c.watch = make(map[cache.Context]*watchpoint.Unit, len(c.threadsOfCtx))
		for ctx := range c.threadsOfCtx {
			c.watch[ctx] = watchpoint.New(cfg.WatchCapacity)
		}
	}
	if cfg.Kind == PageDemand {
		c.pages = pageprot.New(pageprot.Config{ReprotectEvery: cfg.ReprotectEvery})
	}
	return c
}

// PageTracker exposes the page-protection machinery (nil unless the policy
// is PageDemand), for tests and reports.
func (c *Controller) PageTracker() *pageprot.Tracker { return c.pages }

// WatchUnit exposes a context's watchpoint register file (nil unless the
// policy is WatchDemand), for tests and reports.
func (c *Controller) WatchUnit(ctx cache.Context) *watchpoint.Unit {
	return c.watch[ctx]
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// SetCounterControl installs the callback that arms/disarms a context's
// PMU counter (typically perf.PMU.SetEnabled). Optional.
func (c *Controller) SetCounterControl(fn func(ctx cache.Context, enabled bool)) {
	c.counterCtl = fn
}

// SetTracer installs the telemetry tracer (nil disables tracing).
func (c *Controller) SetTracer(t *obs.Tracer) { c.trace = t }

// syncCounter updates the PMU arming of thread t's context after a mode
// change: disabled iff every thread on the context is analyzing.
func (c *Controller) syncCounter(t vclock.TID) {
	if c.counterCtl == nil {
		return
	}
	ctx := c.ctxOf(t)
	allAnalyzing := true
	for _, peer := range c.threadsOfCtx[ctx] {
		if !c.threads[peer].analyzing {
			allAnalyzing = false
			break
		}
	}
	enabled := int64(0)
	if !allAnalyzing {
		enabled = 1
	}
	c.trace.Emit(obs.KindCounterToggle, int(t), int(ctx), 0, enabled, "")
	c.counterCtl(ctx, !allAnalyzing)
}

// NoteSharing informs the controller that thread t's analyzed access was
// itself cache-visible sharing (a HITM observed by the instrumented code,
// not the PMU). It refreshes t's quiet timer, keeping analysis alive
// through a sharing phase even though the context's counter is disarmed.
func (c *Controller) NoteSharing(t vclock.TID) {
	if !c.cfg.Kind.Demand() {
		return
	}
	st := &c.threads[t]
	if st.analyzing {
		st.quiet = 0
	}
}

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// Analyzing reports thread t's current mode.
func (c *Controller) Analyzing(t vclock.TID) bool { return c.threads[t].analyzing }

// OnSample handles a PMU overflow: install as the PMU handler. It flips the
// configured scope of threads into analysis mode and refreshes their quiet
// timers.
func (c *Controller) OnSample(s perf.Sample) {
	if !c.cfg.Kind.Demand() {
		return
	}
	c.stats.Samples++
	if c.cfg.Kind == WatchDemand {
		c.armWatch(s)
		return
	}
	switch c.cfg.Scope {
	case ScopeGlobal:
		for i := range c.threads {
			c.enable(vclock.TID(i))
		}
	case ScopePair:
		for _, t := range c.threadsOfCtx[s.Ctx] {
			c.enable(t)
		}
		if s.SrcCore >= 0 {
			for _, t := range c.threadsOfCore[s.SrcCore] {
				c.enable(t)
			}
		}
	case ScopeSelf:
		for _, t := range c.threadsOfCtx[s.Ctx] {
			c.enable(t)
		}
	}
}

// armWatch points the scope's watchpoint units at the sampled line.
func (c *Controller) armWatch(s perf.Sample) {
	arm := func(ctx cache.Context) {
		u := c.watch[ctx]
		if u == nil {
			return
		}
		if !u.Watching(s.Line) {
			c.stats.EnableTransitions++
			c.trace.Emit(obs.KindWatchArm, -1, int(ctx), uint64(s.Line), 0, "")
		}
		u.Watch(s.Line)
	}
	switch c.cfg.Scope {
	case ScopeGlobal:
		for ctx := range c.watch {
			arm(ctx)
		}
	case ScopePair:
		arm(s.Ctx)
		if s.SrcCore >= 0 {
			for ctx := range c.watch {
				if c.coreOf(ctx) == s.SrcCore {
					arm(ctx)
				}
			}
		}
	case ScopeSelf:
		arm(s.Ctx)
	}
}

func (c *Controller) enable(t vclock.TID) {
	st := &c.threads[t]
	st.quiet = 0
	if !st.analyzing {
		if c.cfg.Adaptive {
			c.adapt(st)
		}
		st.analyzing = true
		st.fastOps = 0
		c.stats.EnableTransitions++
		c.trace.Emit(obs.KindModeEnable, int(t), int(c.ctxOf(t)), 0, 0, "")
		c.syncCounter(t)
	}
}

// adapt retunes a thread's quiet window at the moment it re-enters
// analysis mode, using how long it ran fast as the feedback signal.
func (c *Controller) adapt(st *threadState) {
	const maxFactor = 32
	if st.fastOps == 0 {
		// First enable of the run: nothing to learn from yet.
		return
	}
	if st.fastOps < st.quietLimit {
		// Sharing resumed before a full quiet window elapsed in fast mode:
		// the previous decay was premature.
		if st.quietLimit < c.cfg.QuietOps*maxFactor {
			st.quietLimit *= 2
			c.stats.QuietGrow++
		}
		return
	}
	if st.quietLimit > c.cfg.QuietOps {
		st.quietLimit /= 2
		c.stats.QuietShrink++
	}
}

// ShouldAnalyze decides whether the detector observes op executed by t, and
// accounts the decision. Call exactly once per executed op.
func (c *Controller) ShouldAnalyze(t vclock.TID, op program.Op) bool {
	if c.cfg.Kind == Off {
		return false
	}
	if op.Kind.IsSync() {
		c.stats.SyncAnalyzed++
		if c.cfg.SyncTrigger && (c.cfg.Kind == HITMDemand || c.cfg.Kind == Hybrid) {
			c.enable(t)
		}
		return true
	}
	if !op.Kind.IsMemory() {
		// Compute ops are never analyzed; they only advance time.
		return false
	}
	st := &c.threads[t]
	analyze := false
	switch c.cfg.Kind {
	case Continuous:
		analyze = true
	case SyncOnly:
		analyze = false
	case Sampling:
		analyze = c.rng.Float64() < c.cfg.SampleRate
	case WatchDemand:
		u := c.watch[c.ctxOf(t)]
		analyze = u != nil && u.Check(mem.LineOf(op.Addr))
		if u != nil {
			u.Tick(c.cfg.QuietOps)
		}
	case PageDemand:
		if c.pages.Access(t, op.Addr) {
			// Protection fault: a sharing indication, handled like a PMU
			// sample under the configured scope.
			c.stats.Samples++
			c.trace.Emit(obs.KindPageFault, int(t), int(c.ctxOf(t)), uint64(op.Addr), 0, "")
			switch c.cfg.Scope {
			case ScopeGlobal:
				for i := range c.threads {
					c.enable(vclock.TID(i))
				}
			default:
				c.enable(t)
			}
		}
		analyze = st.analyzing
		if st.analyzing {
			if c.pages.Shared(op.Addr) {
				// Touching a known-shared page keeps analysis alive, the
				// page analogue of observing a HITM while instrumented.
				st.quiet = 0
			}
			st.quiet++
			if st.quiet > st.quietLimit {
				st.analyzing = false
				st.quiet = 0
				c.stats.DisableTransitions++
				c.trace.Emit(obs.KindModeDecay, int(t), int(c.ctxOf(t)), 0, 0, "")
			}
		}
	case HITMDemand, Hybrid:
		analyze = st.analyzing
		if st.analyzing {
			st.quiet++
			if st.quiet > st.quietLimit {
				st.analyzing = false
				st.quiet = 0
				st.fastOps = 0
				c.stats.DisableTransitions++
				c.trace.Emit(obs.KindModeDecay, int(t), int(c.ctxOf(t)), 0, 0, "")
				c.syncCounter(t)
			}
		} else {
			st.fastOps++
		}
	}
	if analyze {
		c.stats.MemAnalyzed++
		st.memAnalyzed++
	} else {
		c.stats.MemSkipped++
		st.memSkipped++
	}
	return analyze
}

// ThreadResidency describes one thread's analysis-mode residency.
type ThreadResidency struct {
	TID vclock.TID
	// MemAnalyzed and MemSkipped partition the thread's data accesses.
	MemAnalyzed uint64
	MemSkipped  uint64
}

// AnalyzedFraction is the fraction of this thread's accesses analyzed.
func (t ThreadResidency) AnalyzedFraction() float64 {
	total := t.MemAnalyzed + t.MemSkipped
	if total == 0 {
		return 0
	}
	return float64(t.MemAnalyzed) / float64(total)
}

// Residency returns per-thread analysis residency, indexed by thread ID.
func (c *Controller) Residency() []ThreadResidency {
	out := make([]ThreadResidency, len(c.threads))
	for i := range c.threads {
		out[i] = ThreadResidency{
			TID:         vclock.TID(i),
			MemAnalyzed: c.threads[i].memAnalyzed,
			MemSkipped:  c.threads[i].memSkipped,
		}
	}
	return out
}
