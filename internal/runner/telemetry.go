package runner

import (
	"demandrace/internal/detector"
	"demandrace/internal/obs"
)

// slowdownBuckets bands per-run slowdowns into the ranges the paper talks
// about: near-native, sync-only territory, demand-driven territory, and
// the continuous-analysis tail.
var slowdownBuckets = []float64{1.1, 1.5, 2, 3, 5, 10, 30, 100}

// analyzedBuckets bands the fraction of accesses analyzed per run.
var analyzedBuckets = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9}

// publishMetrics records one finished run into reg under ddrace_* metric
// names. Only counters and histograms are used — their updates commute —
// so a single registry may be shared by many concurrent runs (a -batch or
// -compare fan-out) and still export byte-identical totals for any worker
// count. Gauges are deliberately absent: last-writer-wins would reintroduce
// scheduling order into the exposition. A nil registry is a no-op.
func publishMetrics(reg *obs.Registry, rep *Report) {
	if reg == nil {
		return
	}
	reg.Counter("ddrace_runs_total").Inc()

	// Cost model: the two cycle totals; slowdown is their ratio, banded.
	// The breakdown answers "where do the tool cycles go" per source.
	reg.Counter("ddrace_cycles_native_total").Add(rep.NativeCycles)
	reg.Counter("ddrace_cycles_tool_total").Add(rep.ToolCycles)
	for _, c := range rep.Cost.Components() {
		reg.Counter("ddrace_cost_" + c.Name + "_cycles_total").Add(c.Cycles)
	}
	reg.Histogram("ddrace_run_slowdown", slowdownBuckets).Observe(rep.Slowdown)
	reg.Histogram("ddrace_run_analyzed_fraction", analyzedBuckets).Observe(rep.Demand.AnalyzedFraction())

	// Cache hierarchy.
	cs := rep.Cache
	reg.Counter("ddrace_cache_accesses_total").Add(cs.Accesses)
	reg.Counter("ddrace_cache_l1_hits_total").Add(cs.L1Hits)
	reg.Counter("ddrace_cache_l1_misses_total").Add(cs.L1Misses)
	reg.Counter("ddrace_cache_llc_hits_total").Add(cs.LLCHits)
	reg.Counter("ddrace_cache_memory_fills_total").Add(cs.MemoryFills)
	reg.Counter("ddrace_cache_hitm_total").Add(cs.HITM)
	reg.Counter("ddrace_cache_invalidations_total").Add(cs.Invalidations)
	reg.Counter("ddrace_cache_writebacks_total").Add(cs.Writebacks)
	reg.Counter("ddrace_cache_prefetched_hitm_total").Add(cs.PrefetchedHITM)

	// PMU.
	ps := rep.PMU
	reg.Counter("ddrace_pmu_events_seen_total").Add(ps.Seen)
	reg.Counter("ddrace_pmu_events_counted_total").Add(ps.Counted)
	reg.Counter("ddrace_pmu_events_dropped_total").Add(ps.Dropped)
	reg.Counter("ddrace_pmu_overflows_total").Add(ps.Overflows)
	reg.Counter("ddrace_pmu_samples_delivered_total").Add(ps.Delivered)

	// Demand controller.
	ds := rep.Demand
	reg.Counter("ddrace_demand_samples_total").Add(ds.Samples)
	reg.Counter("ddrace_demand_enables_total").Add(ds.EnableTransitions)
	reg.Counter("ddrace_demand_decays_total").Add(ds.DisableTransitions)
	reg.Counter("ddrace_demand_mem_analyzed_total").Add(ds.MemAnalyzed)
	reg.Counter("ddrace_demand_mem_skipped_total").Add(ds.MemSkipped)
	reg.Counter("ddrace_demand_sync_analyzed_total").Add(ds.SyncAnalyzed)

	// Detector.
	PublishDetectorStats(reg, rep.Detector)
	reg.Counter("ddrace_race_reports_total").Add(uint64(len(rep.Races)))

	// Scheduler.
	reg.Counter("ddrace_sched_steps_total").Add(rep.Steps)
}

// PublishDetectorStats adds one detector's work counters to reg under the
// ddrace_detector_* names — the same names publishMetrics uses, so callers
// that run a detector outside a full runner.Run (the service's trace-replay
// jobs) land in the same exposition series. A nil registry is a no-op.
func PublishDetectorStats(reg *obs.Registry, dt detector.Stats) {
	if reg == nil {
		return
	}
	reg.Counter("ddrace_detector_reads_total").Add(dt.Reads)
	reg.Counter("ddrace_detector_writes_total").Add(dt.Writes)
	reg.Counter("ddrace_detector_same_epoch_hits_total").Add(dt.SameEpochHits)
	reg.Counter("ddrace_detector_owned_hits_total").Add(dt.OwnedHits)
	reg.Counter("ddrace_detector_epoch_fallbacks_total").Add(dt.EpochFallbacks)
	reg.Counter("ddrace_detector_vc_fallbacks_total").Add(dt.VCFallbacks)
	reg.Counter("ddrace_detector_read_inflations_total").Add(dt.ReadInflations)
	reg.Counter("ddrace_detector_read_spills_total").Add(dt.ReadSpills)
	reg.Counter("ddrace_detector_sync_ops_total").Add(dt.SyncOps)
	reg.Counter("ddrace_detector_races_total").Add(dt.Races)
	reg.Counter("ddrace_detector_suppressed_total").Add(dt.Suppressed)
}
