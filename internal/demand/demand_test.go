package demand

import (
	"testing"

	"demandrace/internal/cache"
	"demandrace/internal/mem"
	"demandrace/internal/perf"
	"demandrace/internal/program"
	"demandrace/internal/vclock"
)

// newCtl builds a controller with 4 threads pinned one per context on a
// 4-core (no SMT) machine.
func newCtl(cfg Config) *Controller {
	return New(cfg, 4,
		func(t vclock.TID) cache.Context { return cache.Context(t) },
		func(c cache.Context) int { return int(c) })
}

var (
	loadOp  = program.Op{Kind: program.OpLoad, Addr: 0x100}
	storeOp = program.Op{Kind: program.OpStore, Addr: 0x100}
	lockOp  = program.Op{Kind: program.OpLock, Sync: 0}
	compOp  = program.Op{Kind: program.OpCompute, N: 1}
)

func sample(ctx cache.Context, src int) perf.Sample {
	return perf.Sample{Ctx: ctx, Sel: perf.SelHITM, Line: mem.Line(1), SrcCore: src}
}

func TestOffAnalyzesNothing(t *testing.T) {
	c := newCtl(Config{Kind: Off})
	if c.ShouldAnalyze(0, loadOp) || c.ShouldAnalyze(0, lockOp) {
		t.Error("Off policy analyzed an op")
	}
}

func TestContinuousAnalyzesEverything(t *testing.T) {
	c := newCtl(Config{Kind: Continuous})
	if !c.ShouldAnalyze(0, loadOp) || !c.ShouldAnalyze(1, storeOp) || !c.ShouldAnalyze(2, lockOp) {
		t.Error("Continuous policy skipped an op")
	}
	if c.ShouldAnalyze(0, compOp) {
		t.Error("compute ops are never analyzed")
	}
	st := c.Stats()
	if st.MemAnalyzed != 2 || st.MemSkipped != 0 || st.SyncAnalyzed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSyncOnlySkipsMemory(t *testing.T) {
	c := newCtl(Config{Kind: SyncOnly})
	if c.ShouldAnalyze(0, loadOp) {
		t.Error("SyncOnly analyzed a load")
	}
	if !c.ShouldAnalyze(0, lockOp) {
		t.Error("SyncOnly skipped a lock")
	}
}

func TestDemandStartsFast(t *testing.T) {
	c := newCtl(DefaultConfig())
	if c.Analyzing(0) {
		t.Error("threads must start in fast mode")
	}
	if c.ShouldAnalyze(0, loadOp) {
		t.Error("fast-mode load analyzed")
	}
	if !c.ShouldAnalyze(0, lockOp) {
		t.Error("sync ops must always be analyzed")
	}
}

func TestSampleEnablesGlobal(t *testing.T) {
	c := newCtl(DefaultConfig())
	c.OnSample(sample(1, 0))
	for i := 0; i < 4; i++ {
		if !c.Analyzing(vclock.TID(i)) {
			t.Errorf("thread %d not enabled under global scope", i)
		}
	}
	if !c.ShouldAnalyze(3, loadOp) {
		t.Error("enabled thread's load not analyzed")
	}
	if c.Stats().EnableTransitions != 4 {
		t.Errorf("enable transitions = %d", c.Stats().EnableTransitions)
	}
}

func TestSampleEnablesSelf(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scope = ScopeSelf
	c := newCtl(cfg)
	c.OnSample(sample(1, 0))
	if !c.Analyzing(1) {
		t.Error("sampled thread not enabled")
	}
	for _, i := range []vclock.TID{0, 2, 3} {
		if c.Analyzing(i) {
			t.Errorf("thread %d enabled under self scope", i)
		}
	}
}

func TestSampleEnablesPair(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scope = ScopePair
	c := newCtl(cfg)
	c.OnSample(sample(1, 3)) // requester ctx1, supplier core 3
	if !c.Analyzing(1) || !c.Analyzing(3) {
		t.Error("pair scope should enable both sides")
	}
	if c.Analyzing(0) || c.Analyzing(2) {
		t.Error("pair scope enabled a bystander")
	}
}

func TestPairScopeNoSource(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scope = ScopePair
	c := newCtl(cfg)
	c.OnSample(sample(2, -1))
	if !c.Analyzing(2) {
		t.Error("sampled thread not enabled")
	}
	if c.Analyzing(0) || c.Analyzing(1) || c.Analyzing(3) {
		t.Error("unexpected thread enabled")
	}
}

func TestQuietPeriodDisables(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QuietOps = 3
	c := newCtl(cfg)
	c.OnSample(sample(0, 1))
	// 3 quiet loads stay analyzed; the 4th flips the thread off.
	for i := 0; i < 3; i++ {
		if !c.ShouldAnalyze(0, loadOp) {
			t.Fatalf("load %d should be analyzed", i)
		}
	}
	if !c.ShouldAnalyze(0, loadOp) {
		t.Fatal("the op crossing the threshold is still analyzed")
	}
	if c.Analyzing(0) {
		t.Error("thread should have dropped to fast mode")
	}
	if c.ShouldAnalyze(0, loadOp) {
		t.Error("post-decay load analyzed")
	}
	if c.Stats().DisableTransitions != 1 {
		t.Errorf("disable transitions = %d", c.Stats().DisableTransitions)
	}
}

func TestSampleRefreshesQuietTimer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QuietOps = 3
	c := newCtl(cfg)
	c.OnSample(sample(0, 1))
	c.ShouldAnalyze(0, loadOp)
	c.ShouldAnalyze(0, loadOp)
	c.OnSample(sample(0, 1)) // fresh sharing: reset timer
	for i := 0; i < 3; i++ {
		if !c.ShouldAnalyze(0, loadOp) {
			t.Fatalf("load %d after refresh should be analyzed", i)
		}
	}
	if !c.Analyzing(0) {
		t.Error("thread disabled too early after refresh")
	}
}

func TestReenableAfterDecay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QuietOps = 1
	c := newCtl(cfg)
	c.OnSample(sample(0, 1))
	c.ShouldAnalyze(0, loadOp)
	c.ShouldAnalyze(0, loadOp) // decays
	if c.Analyzing(0) {
		t.Fatal("should have decayed")
	}
	c.OnSample(sample(0, 1))
	if !c.Analyzing(0) {
		t.Error("sample after decay should re-enable")
	}
	// First sample enabled all 4 threads; only thread 0 decayed, so the
	// second sample re-enables just it.
	if c.Stats().EnableTransitions != 5 {
		t.Errorf("enable transitions = %d", c.Stats().EnableTransitions)
	}
}

func TestSamplesIgnoredByNonDemandPolicies(t *testing.T) {
	for _, k := range []PolicyKind{Off, Continuous, SyncOnly} {
		c := newCtl(Config{Kind: k})
		c.OnSample(sample(0, 1))
		if c.Stats().Samples != 0 {
			t.Errorf("%v policy counted a sample", k)
		}
	}
}

func TestAnalyzedFraction(t *testing.T) {
	c := newCtl(Config{Kind: Continuous})
	c.ShouldAnalyze(0, loadOp)
	c.ShouldAnalyze(0, storeOp)
	if f := c.Stats().AnalyzedFraction(); f != 1.0 {
		t.Errorf("fraction = %g", f)
	}
	c2 := newCtl(Config{Kind: SyncOnly})
	c2.ShouldAnalyze(0, loadOp)
	if f := c2.Stats().AnalyzedFraction(); f != 0 {
		t.Errorf("fraction = %g", f)
	}
	var empty Stats
	if empty.AnalyzedFraction() != 0 {
		t.Error("empty stats fraction should be 0")
	}
}

func TestThreadsSharingAContext(t *testing.T) {
	// 8 threads on 4 contexts: a sample on ctx 1 under self scope enables
	// both threads placed there.
	cfg := DefaultConfig()
	cfg.Scope = ScopeSelf
	c := New(cfg, 8,
		func(t vclock.TID) cache.Context { return cache.Context(int(t) % 4) },
		func(ctx cache.Context) int { return int(ctx) })
	c.OnSample(sample(1, -1))
	if !c.Analyzing(1) || !c.Analyzing(5) {
		t.Error("both threads on ctx 1 should be enabled")
	}
	if c.Analyzing(0) || c.Analyzing(2) {
		t.Error("bystander enabled")
	}
}

func TestPolicySelector(t *testing.T) {
	if HITMDemand.Selector() != perf.SelHITM {
		t.Error("HITMDemand should program the HITM event")
	}
	if Hybrid.Selector() != perf.SelSharing {
		t.Error("Hybrid should program the broad sharing event")
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[PolicyKind]string{
		Off: "off", Continuous: "continuous", SyncOnly: "sync-only",
		HITMDemand: "hitm-demand", Hybrid: "hybrid",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q", uint8(k), k.String())
		}
	}
	if ScopeGlobal.String() != "global" || ScopePair.String() != "pair" || ScopeSelf.String() != "self" {
		t.Error("scope strings wrong")
	}
}

func TestDefaultQuietOpsApplied(t *testing.T) {
	c := newCtl(Config{Kind: HITMDemand})
	if c.Config().QuietOps != DefaultQuietOps {
		t.Errorf("QuietOps = %d", c.Config().QuietOps)
	}
}

func TestCounterControlDisarmsWhileAnalyzing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QuietOps = 2
	c := newCtl(cfg)
	armed := map[cache.Context]bool{0: true, 1: true, 2: true, 3: true}
	c.SetCounterControl(func(ctx cache.Context, on bool) { armed[ctx] = on })
	c.OnSample(sample(0, 1))
	for ctx, on := range armed {
		if on {
			t.Errorf("ctx %d still armed while all threads analyze", ctx)
		}
	}
	// Decay thread 2: its context re-arms, others stay disarmed.
	c.ShouldAnalyze(2, loadOp)
	c.ShouldAnalyze(2, loadOp)
	c.ShouldAnalyze(2, loadOp)
	if c.Analyzing(2) {
		t.Fatal("thread 2 should have decayed")
	}
	if !armed[2] {
		t.Error("ctx 2 should re-arm after decay")
	}
	if armed[0] || armed[1] || armed[3] {
		t.Error("other contexts should remain disarmed")
	}
}

func TestCounterControlSharedContext(t *testing.T) {
	// Two threads per context: the counter disarms only when both analyze.
	cfg := DefaultConfig()
	cfg.Scope = ScopeSelf
	armed := map[cache.Context]bool{}
	c := New(cfg, 4,
		func(t vclock.TID) cache.Context { return cache.Context(int(t) / 2) },
		func(ctx cache.Context) int { return int(ctx) })
	c.SetCounterControl(func(ctx cache.Context, on bool) { armed[ctx] = on })
	c.OnSample(sample(0, -1)) // enables threads 0 and 1 (both on ctx 0)
	if on, ok := armed[0]; !ok || on {
		t.Errorf("ctx 0 should be disarmed once both its threads analyze: %v %v", on, ok)
	}
	if _, ok := armed[1]; ok && !armed[1] {
		t.Error("ctx 1 should not be disarmed")
	}
}

func TestNoteSharingRefreshesQuiet(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QuietOps = 2
	c := newCtl(cfg)
	c.OnSample(sample(0, 1))
	c.ShouldAnalyze(0, loadOp)
	c.NoteSharing(0) // observed sharing inside analysis mode
	c.ShouldAnalyze(0, loadOp)
	c.ShouldAnalyze(0, loadOp)
	if !c.Analyzing(0) {
		t.Error("NoteSharing should have reset the quiet timer")
	}
}

func TestNoteSharingIgnoredInFastModeAndNonDemand(t *testing.T) {
	c := newCtl(DefaultConfig())
	c.NoteSharing(0) // fast mode: no effect, must not panic or enable
	if c.Analyzing(0) {
		t.Error("NoteSharing must not enable analysis")
	}
	c2 := newCtl(Config{Kind: Continuous})
	c2.NoteSharing(0)
	if !c2.Analyzing(0) {
		t.Error("continuous threads are always analyzing")
	}
}

func TestSamplingPolicyRate(t *testing.T) {
	c := New(Config{Kind: Sampling, SampleRate: 0.3, Seed: 1}, 4,
		func(t vclock.TID) cache.Context { return cache.Context(t) },
		func(ctx cache.Context) int { return int(ctx) })
	n := 0
	for i := 0; i < 10000; i++ {
		if c.ShouldAnalyze(0, loadOp) {
			n++
		}
	}
	frac := float64(n) / 10000
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("sampling fraction = %.3f, want ≈0.3", frac)
	}
	if !c.ShouldAnalyze(0, lockOp) {
		t.Error("sampling must still analyze all sync ops")
	}
}

func TestSamplingDeterministicUnderSeed(t *testing.T) {
	mk := func(seed int64) []bool {
		c := New(Config{Kind: Sampling, SampleRate: 0.5, Seed: seed}, 1,
			func(t vclock.TID) cache.Context { return 0 },
			func(ctx cache.Context) int { return 0 })
		out := make([]bool, 100)
		for i := range out {
			out[i] = c.ShouldAnalyze(0, loadOp)
		}
		return out
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSamplingInvalidRatePanics(t *testing.T) {
	for _, rate := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %g accepted", rate)
				}
			}()
			New(Config{Kind: Sampling, SampleRate: rate}, 1,
				func(t vclock.TID) cache.Context { return 0 },
				func(ctx cache.Context) int { return 0 })
		}()
	}
}

func TestSamplingIgnoresPMUSamples(t *testing.T) {
	c := New(Config{Kind: Sampling, SampleRate: 0.5}, 4,
		func(t vclock.TID) cache.Context { return cache.Context(t) },
		func(ctx cache.Context) int { return int(ctx) })
	c.OnSample(sample(0, 1))
	if c.Stats().Samples != 0 {
		t.Error("sampling policy should not consume PMU samples")
	}
}

func watchCtl(cfg Config) *Controller {
	cfg.Kind = WatchDemand
	return newCtl(cfg)
}

func TestWatchDemandArmsOnSample(t *testing.T) {
	c := watchCtl(Config{Scope: ScopeGlobal})
	if c.ShouldAnalyze(0, loadOp) {
		t.Fatal("unwatched line analyzed")
	}
	c.OnSample(perf.Sample{Ctx: 1, Line: mem.LineOf(loadOp.Addr), SrcCore: 0})
	for i := vclock.TID(0); i < 4; i++ {
		if !c.ShouldAnalyze(i, loadOp) {
			t.Errorf("thread %d: watched line not analyzed", i)
		}
	}
	// A different line stays unanalyzed.
	other := program.Op{Kind: program.OpLoad, Addr: 0x9000}
	if c.ShouldAnalyze(0, other) {
		t.Error("unwatched line analyzed")
	}
}

func TestWatchDemandScopeSelf(t *testing.T) {
	c := watchCtl(Config{Scope: ScopeSelf})
	c.OnSample(perf.Sample{Ctx: 2, Line: mem.LineOf(loadOp.Addr), SrcCore: 0})
	if !c.ShouldAnalyze(2, loadOp) {
		t.Error("sampled context's thread not covered")
	}
	if c.ShouldAnalyze(0, loadOp) {
		t.Error("bystander context covered under self scope")
	}
}

func TestWatchDemandScopePair(t *testing.T) {
	c := watchCtl(Config{Scope: ScopePair})
	c.OnSample(perf.Sample{Ctx: 1, Line: mem.LineOf(loadOp.Addr), SrcCore: 3})
	if !c.ShouldAnalyze(1, loadOp) || !c.ShouldAnalyze(3, loadOp) {
		t.Error("pair scope should cover both sides")
	}
	if c.ShouldAnalyze(0, loadOp) {
		t.Error("bystander covered")
	}
}

func TestWatchDemandExpiry(t *testing.T) {
	c := watchCtl(Config{Scope: ScopeSelf, QuietOps: 2})
	c.OnSample(perf.Sample{Ctx: 0, Line: mem.LineOf(loadOp.Addr), SrcCore: 1})
	cold := program.Op{Kind: program.OpLoad, Addr: 0x9000}
	// Three cold accesses age the watchpoint past the quiet window.
	c.ShouldAnalyze(0, cold)
	c.ShouldAnalyze(0, cold)
	c.ShouldAnalyze(0, cold)
	if c.ShouldAnalyze(0, loadOp) {
		t.Error("expired watchpoint still analyzed")
	}
}

func TestWatchDemandHotLineStaysWatched(t *testing.T) {
	c := watchCtl(Config{Scope: ScopeSelf, QuietOps: 2})
	c.OnSample(perf.Sample{Ctx: 0, Line: mem.LineOf(loadOp.Addr), SrcCore: 1})
	for i := 0; i < 20; i++ {
		if !c.ShouldAnalyze(0, loadOp) {
			t.Fatalf("hot watched line dropped at access %d", i)
		}
	}
}

func TestWatchDemandSyncAlwaysAnalyzed(t *testing.T) {
	c := watchCtl(Config{})
	if !c.ShouldAnalyze(0, lockOp) {
		t.Error("sync op skipped under watch-demand")
	}
}

func TestWatchDemandEnableTransitionsCountNewArms(t *testing.T) {
	c := watchCtl(Config{Scope: ScopeGlobal})
	s := perf.Sample{Ctx: 0, Line: 5, SrcCore: 1}
	c.OnSample(s)
	c.OnSample(s) // refresh: no new transitions
	if got := c.Stats().EnableTransitions; got != 4 {
		t.Errorf("enable transitions = %d, want 4 (one per context)", got)
	}
	if c.WatchUnit(0) == nil || c.WatchUnit(0).Len() != 1 {
		t.Error("watch unit state wrong")
	}
}

func TestAdaptiveQuietGrows(t *testing.T) {
	cfg := Config{Kind: HITMDemand, Scope: ScopeSelf, QuietOps: 2, Adaptive: true}
	c := newCtl(cfg)
	s0 := sample(0, 1)
	// Enable, decay, then re-enable after only one fast op: premature
	// decay, window must double.
	c.OnSample(s0)
	c.ShouldAnalyze(0, loadOp)
	c.ShouldAnalyze(0, loadOp)
	c.ShouldAnalyze(0, loadOp) // decays (quiet 3 > 2)
	if c.Analyzing(0) {
		t.Fatal("expected decay")
	}
	c.ShouldAnalyze(0, loadOp) // one fast op
	c.OnSample(s0)             // re-enable quickly
	if c.Stats().QuietGrow != 1 {
		t.Errorf("QuietGrow = %d, want 1", c.Stats().QuietGrow)
	}
	// The window is now 4: five analyzed ops decay, four do not.
	for i := 0; i < 4; i++ {
		if !c.ShouldAnalyze(0, loadOp) {
			t.Fatalf("op %d should be analyzed under grown window", i)
		}
	}
	if !c.Analyzing(0) {
		t.Error("grown window decayed too early")
	}
}

func TestAdaptiveQuietShrinks(t *testing.T) {
	cfg := Config{Kind: HITMDemand, Scope: ScopeSelf, QuietOps: 2, Adaptive: true}
	c := newCtl(cfg)
	s0 := sample(0, 1)
	// Grow once.
	c.OnSample(s0)
	c.ShouldAnalyze(0, loadOp)
	c.ShouldAnalyze(0, loadOp)
	c.ShouldAnalyze(0, loadOp) // decay
	c.ShouldAnalyze(0, loadOp) // 1 fast op
	c.OnSample(s0)             // grow → 4
	// Decay again, then run fast for a long stretch before the next
	// sample: window shrinks back.
	for i := 0; i < 5; i++ {
		c.ShouldAnalyze(0, loadOp)
	}
	if c.Analyzing(0) {
		t.Fatal("expected decay under window 4")
	}
	for i := 0; i < 10; i++ { // fastOps 10 ≥ window 4
		c.ShouldAnalyze(0, loadOp)
	}
	c.OnSample(s0)
	if c.Stats().QuietShrink != 1 {
		t.Errorf("QuietShrink = %d, want 1", c.Stats().QuietShrink)
	}
}

func TestAdaptiveNeverBelowBase(t *testing.T) {
	cfg := Config{Kind: HITMDemand, Scope: ScopeSelf, QuietOps: 2, Adaptive: true}
	c := newCtl(cfg)
	s0 := sample(0, 1)
	for round := 0; round < 5; round++ {
		c.OnSample(s0)
		for i := 0; i < 3; i++ {
			c.ShouldAnalyze(0, loadOp)
		}
		for i := 0; i < 50; i++ { // long fast stretch each round
			c.ShouldAnalyze(0, loadOp)
		}
	}
	// Only grows/shrinks between base and cap; base window still works.
	c.OnSample(s0)
	c.ShouldAnalyze(0, loadOp)
	c.ShouldAnalyze(0, loadOp)
	c.ShouldAnalyze(0, loadOp)
	if c.Analyzing(0) {
		t.Error("window shrank below the configured base")
	}
}

func TestNonAdaptiveWindowFixed(t *testing.T) {
	cfg := Config{Kind: HITMDemand, Scope: ScopeSelf, QuietOps: 2}
	c := newCtl(cfg)
	s0 := sample(0, 1)
	for round := 0; round < 3; round++ {
		c.OnSample(s0)
		c.ShouldAnalyze(0, loadOp)
		c.ShouldAnalyze(0, loadOp)
		c.ShouldAnalyze(0, loadOp) // decays every round at exactly base
		if c.Analyzing(0) {
			t.Fatalf("round %d: fixed window failed to decay", round)
		}
		c.ShouldAnalyze(0, loadOp)
	}
	st := c.Stats()
	if st.QuietGrow != 0 || st.QuietShrink != 0 {
		t.Errorf("non-adaptive controller adjusted windows: %+v", st)
	}
}

func TestPageDemandFaultEnables(t *testing.T) {
	cfg := Config{Kind: PageDemand, Scope: ScopeGlobal, QuietOps: 100}
	c := newCtl(cfg)
	// First touch by thread 0 claims the page silently.
	if c.ShouldAnalyze(0, loadOp) {
		t.Fatal("first touch analyzed")
	}
	if c.Analyzing(0) {
		t.Fatal("no analysis before a fault")
	}
	// Thread 1 touches the same page: protection fault → global enable.
	c.ShouldAnalyze(1, loadOp)
	for i := vclock.TID(0); i < 4; i++ {
		if !c.Analyzing(i) {
			t.Errorf("thread %d not enabled after fault", i)
		}
	}
	if c.PageTracker().Stats().Faults != 1 {
		t.Errorf("faults = %d", c.PageTracker().Stats().Faults)
	}
	if c.Stats().Samples != 1 {
		t.Errorf("samples = %d", c.Stats().Samples)
	}
}

func TestPageDemandScopeSelf(t *testing.T) {
	cfg := Config{Kind: PageDemand, Scope: ScopeSelf, QuietOps: 100}
	c := newCtl(cfg)
	c.ShouldAnalyze(0, loadOp)
	c.ShouldAnalyze(1, loadOp) // fault on thread 1
	if !c.Analyzing(1) {
		t.Error("faulting thread not enabled")
	}
	if c.Analyzing(0) || c.Analyzing(2) {
		t.Error("bystander enabled under self scope")
	}
}

func TestPageDemandSharedPageKeepsAnalysisAlive(t *testing.T) {
	cfg := Config{Kind: PageDemand, Scope: ScopeSelf, QuietOps: 2}
	c := newCtl(cfg)
	c.ShouldAnalyze(0, loadOp)
	c.ShouldAnalyze(1, loadOp) // fault, thread 1 analyzing
	// Repeated touches of the shared page never decay.
	for i := 0; i < 20; i++ {
		if !c.ShouldAnalyze(1, loadOp) {
			t.Fatalf("shared-page access %d not analyzed", i)
		}
	}
	// Touching only private pages decays after the quiet window.
	cold := program.Op{Kind: program.OpLoad, Addr: 0x90000}
	c.ShouldAnalyze(1, cold)
	c.ShouldAnalyze(1, cold)
	c.ShouldAnalyze(1, cold)
	if c.Analyzing(1) {
		t.Error("analysis did not decay on private pages")
	}
}

func TestPageDemandIgnoresPMU(t *testing.T) {
	c := newCtl(Config{Kind: PageDemand})
	c.OnSample(sample(0, 1))
	if c.Stats().Samples != 0 || c.Analyzing(0) {
		t.Error("page policy consumed a PMU sample")
	}
}

func TestResidencyPerThread(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scope = ScopeSelf
	c := newCtl(cfg)
	c.OnSample(sample(1, 0)) // only thread 1 analyzing
	c.ShouldAnalyze(0, loadOp)
	c.ShouldAnalyze(1, loadOp)
	c.ShouldAnalyze(1, storeOp)
	res := c.Residency()
	if len(res) != 4 {
		t.Fatalf("residency entries = %d", len(res))
	}
	if res[0].MemAnalyzed != 0 || res[0].MemSkipped != 1 {
		t.Errorf("t0 residency = %+v", res[0])
	}
	if res[1].MemAnalyzed != 2 || res[1].MemSkipped != 0 {
		t.Errorf("t1 residency = %+v", res[1])
	}
	if res[1].AnalyzedFraction() != 1.0 || res[0].AnalyzedFraction() != 0.0 {
		t.Error("fractions wrong")
	}
	if (ThreadResidency{}).AnalyzedFraction() != 0 {
		t.Error("empty residency fraction should be 0")
	}
}

func TestSyncTriggerEnables(t *testing.T) {
	cfg := Config{Kind: HITMDemand, Scope: ScopeSelf, QuietOps: 5, SyncTrigger: true}
	c := newCtl(cfg)
	if c.Analyzing(0) {
		t.Fatal("threads start fast")
	}
	c.ShouldAnalyze(0, lockOp)
	if !c.Analyzing(0) {
		t.Error("sync op should trigger analysis under SyncTrigger")
	}
	if c.Analyzing(1) {
		t.Error("other threads unaffected by a sync trigger")
	}
	// Without the knob, sync ops never enable.
	c2 := newCtl(Config{Kind: HITMDemand, Scope: ScopeSelf, QuietOps: 5})
	c2.ShouldAnalyze(0, lockOp)
	if c2.Analyzing(0) {
		t.Error("sync op enabled analysis without SyncTrigger")
	}
}

func TestSyncTriggerIgnoredByOtherPolicies(t *testing.T) {
	c := newCtl(Config{Kind: SyncOnly, SyncTrigger: true})
	c.ShouldAnalyze(0, lockOp)
	if c.ShouldAnalyze(0, loadOp) {
		t.Error("SyncOnly must not analyze data accesses even with SyncTrigger")
	}
}

// TestPolicyMatrix pins the full decision table: which op classes each
// policy analyzes in its initial state (before any sharing signal).
func TestPolicyMatrix(t *testing.T) {
	atomicOp := program.Op{Kind: program.OpAtomicStore, Addr: 0x100}
	cases := []struct {
		kind                   PolicyKind
		mem, sync, atomic, cmp bool
	}{
		{Off, false, false, false, false},
		{Continuous, true, true, true, false},
		{SyncOnly, false, true, true, false},
		{HITMDemand, false, true, true, false},
		{Hybrid, false, true, true, false},
		{WatchDemand, false, true, true, false},
		{PageDemand, false, true, true, false},
	}
	for _, c := range cases {
		cfg := Config{Kind: c.kind}
		ctl := newCtl(cfg)
		if got := ctl.ShouldAnalyze(0, loadOp); got != c.mem {
			t.Errorf("%v: mem analyzed = %v, want %v", c.kind, got, c.mem)
		}
		if got := ctl.ShouldAnalyze(0, lockOp); got != c.sync {
			t.Errorf("%v: sync analyzed = %v, want %v", c.kind, got, c.sync)
		}
		if got := ctl.ShouldAnalyze(0, atomicOp); got != c.atomic {
			t.Errorf("%v: atomic analyzed = %v, want %v", c.kind, got, c.atomic)
		}
		if got := ctl.ShouldAnalyze(0, compOp); got != c.cmp {
			t.Errorf("%v: compute analyzed = %v, want %v", c.kind, got, c.cmp)
		}
	}
	// Sampling at rate 1.0 is not allowed (open interval cap at 1 is
	// allowed); rate exactly 1 behaves like continuous for memory.
	ctl := New(Config{Kind: Sampling, SampleRate: 1.0}, 4,
		func(t vclock.TID) cache.Context { return cache.Context(t) },
		func(c cache.Context) int { return int(c) })
	if !ctl.ShouldAnalyze(0, loadOp) {
		t.Error("sampling at rate 1.0 should analyze every access")
	}
}
