package cluster

// Streaming-ingest routing: the gateway face of internal/ingest's
// resumable upload sessions. A session is stateful and node-local —
// detector shadow state, the incremental decoder, and the chunk ledger all
// live on one backend — so the routing rule is the session-ID namespace:
// POST /v1/traces picks a backend (rotating over the ring so concurrent
// uploads spread) and returns its session ID namespaced "<backend>:<id>";
// every later chunk, status, commit, and partial call splits that prefix
// and goes to the owner with no failover. Retry-After and the typed
// 409/413 protocol errors relay untouched, so a client streaming through
// ddgate sees exactly the single-node protocol.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"demandrace/internal/service"
)

// handleTraceOpen opens a session on a ring-chosen backend. The rotation
// key spreads concurrent uploads; failover is safe here because no state
// exists until some backend answers 201.
func (g *Gateway) handleTraceOpen(w http.ResponseWriter, r *http.Request) {
	// A session spends one edge admission token up front, same as a batch
	// POST; chunks then stream inside the already-admitted session.
	if _, ok := g.admitTenant(w, r); !ok {
		return
	}
	key := fmt.Sprintf("ingest-session-%d", g.sessionSeq.Add(1))
	candidates := g.candidates(key)
	if len(candidates) == 0 {
		g.cErrors.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "cluster: no healthy backends")
		return
	}
	up, err := g.forward(r.Context(), candidates, func(base string) (*http.Request, error) {
		u := base + "/v1/traces"
		if r.URL.RawQuery != "" {
			u += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequest(http.MethodPost, u, nil)
		if err != nil {
			return nil, err
		}
		forwardAPIKey(req, r)
		return req, nil
	})
	if err != nil {
		g.cErrors.Inc()
		writeError(w, http.StatusBadGateway, fmt.Sprintf("cluster: all backends failed: %v", err))
		return
	}
	g.log.Info("ingest session routed", "backend", up.backend, "status", up.status)
	g.relayWith(w, up, rewriteSessionDoc)
}

// handleTraceChunk forwards one chunk to the session's owner. No failover:
// the session exists on exactly one node, and a replayed body elsewhere
// could only 404.
func (g *Gateway) handleTraceChunk(w http.ResponseWriter, r *http.Request) {
	name, remoteID, ok := g.sessionOwner(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, g.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading chunk: %v", err))
		return
	}
	if int64(len(body)) > g.cfg.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("cluster: chunk exceeds %d bytes", g.cfg.MaxBodyBytes))
		return
	}
	g.forwardSession(w, r, name, rewriteAckDoc, func(base string) (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPut,
			base+"/v1/traces/"+remoteID+"/chunks/"+r.PathValue("seq"), bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		if v := r.Header.Get(service.ChunkCRCHeader); v != "" {
			req.Header.Set(service.ChunkCRCHeader, v)
		}
		return req, nil
	})
}

// handleTraceSession forwards a session status poll — the client's resume
// handle after a dropped connection — to the owner.
func (g *Gateway) handleTraceSession(w http.ResponseWriter, r *http.Request) {
	name, remoteID, ok := g.sessionOwner(w, r)
	if !ok {
		return
	}
	g.forwardSession(w, r, name, rewriteSessionDoc, func(base string) (*http.Request, error) {
		return http.NewRequest(http.MethodGet, base+"/v1/traces/"+remoteID, nil)
	})
}

// handleTraceCommit forwards the seal to the owner; the answer is a Status
// document whose job ID re-namespaces like any other.
func (g *Gateway) handleTraceCommit(w http.ResponseWriter, r *http.Request) {
	name, remoteID, ok := g.sessionOwner(w, r)
	if !ok {
		return
	}
	g.forwardSession(w, r, name, nil, func(base string) (*http.Request, error) {
		return http.NewRequest(http.MethodPost, base+"/v1/traces/"+remoteID+"/commit", nil)
	})
}

// handlePartial forwards a partial-races poll. The id is a namespaced
// session ID mid-stream or a namespaced job ID after commit — both carry
// the owner in their prefix.
func (g *Gateway) handlePartial(w http.ResponseWriter, r *http.Request) {
	name, remoteID, ok := g.sessionOwner(w, r)
	if !ok {
		return
	}
	g.forwardSession(w, r, name, rewritePartialDoc, func(base string) (*http.Request, error) {
		return http.NewRequest(http.MethodGet, base+"/v1/jobs/"+remoteID+"/partial", nil)
	})
}

// sessionOwner decodes the namespaced {id} path segment and resolves its
// backend, answering 404 itself when the prefix is unroutable.
func (g *Gateway) sessionOwner(w http.ResponseWriter, r *http.Request) (name, remoteID string, ok bool) {
	name, remoteID, ok = splitJobID(r.PathValue("id"))
	if !ok || g.byName[name] == nil {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("cluster: no such session %q (gateway ids look like backend:s-n)", r.PathValue("id")))
		return "", "", false
	}
	return name, remoteID, true
}

// forwardSession sends one no-failover request to the named owner and
// relays the answer through rewrite (nil means Status-document rewriting).
func (g *Gateway) forwardSession(w http.ResponseWriter, r *http.Request, name string, rewrite rewriteFunc, build func(base string) (*http.Request, error)) {
	b := g.byName[name]
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.Retry.Timeout)
	defer cancel()
	up, err := g.attemptOne(ctx, b, build)
	if err != nil {
		g.cErrors.Inc()
		writeError(w, http.StatusBadGateway, fmt.Sprintf("cluster: backend %s unreachable: %v", name, err))
		return
	}
	if rewrite == nil {
		g.relay(w, up, true)
		return
	}
	g.relayWith(w, up, rewrite)
}

// rewriteFunc re-namespaces backend-local IDs in a response document.
type rewriteFunc func(body []byte, backendName string) ([]byte, bool)

// relayWith is relay with a document-specific ID rewriter.
func (g *Gateway) relayWith(w http.ResponseWriter, up upstream, rewrite rewriteFunc) {
	for _, h := range []string{"Content-Type", "Retry-After", "X-DD-Tenant"} {
		if v := up.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	body := up.body
	if rewritten, ok := rewrite(body, up.backend); ok {
		body = rewritten
	}
	w.WriteHeader(up.status)
	w.Write(body)
}

// rewriteSessionDoc namespaces the session (and bound job) IDs of a
// TraceSession document.
func rewriteSessionDoc(body []byte, backendName string) ([]byte, bool) {
	var st service.TraceSession
	if err := json.Unmarshal(body, &st); err != nil || st.Session == "" {
		return nil, false
	}
	st.Session = joinJobID(backendName, st.Session)
	if st.Job != "" {
		st.Job = joinJobID(backendName, st.Job)
	}
	out, err := json.Marshal(st)
	if err != nil {
		return nil, false
	}
	return append(out, '\n'), true
}

// rewriteAckDoc namespaces the session ID of a ChunkAck document.
func rewriteAckDoc(body []byte, backendName string) ([]byte, bool) {
	var ack service.ChunkAck
	if err := json.Unmarshal(body, &ack); err != nil || ack.Session == "" {
		return nil, false
	}
	ack.Session = joinJobID(backendName, ack.Session)
	out, err := json.Marshal(ack)
	if err != nil {
		return nil, false
	}
	return append(out, '\n'), true
}

// rewritePartialDoc namespaces the session and job IDs of a PartialReport.
func rewritePartialDoc(body []byte, backendName string) ([]byte, bool) {
	var p service.PartialReport
	if err := json.Unmarshal(body, &p); err != nil || p.Session == "" {
		return nil, false
	}
	p.Session = joinJobID(backendName, p.Session)
	if p.Job != "" {
		p.Job = joinJobID(backendName, p.Job)
	}
	out, err := json.Marshal(p)
	if err != nil {
		return nil, false
	}
	return append(out, '\n'), true
}
