// Package perf simulates the per-thread performance monitoring unit (PMU)
// the paper programs to watch for inter-thread sharing.
//
// On the paper's hardware, each thread context owns programmable counters
// that can count precise memory events (Intel PEBS); the tool programs a
// counter to count HITM coherence events with a "sample-after value" (SAV)
// so that every SAV-th event overflows the counter and raises an interrupt
// carrying a precise record of the triggering access. The interesting
// real-world warts are reproduced as knobs:
//
//   - SampleAfter > 1 means the first SAV-1 sharing events in a burst are
//     silent — a race in that window can be missed;
//   - Skid delays interrupt delivery by a number of retired operations, so
//     the handler runs after the racy access already retired;
//   - DropRate models non-precise counting losses (events the PMU misses
//     entirely), deterministic under a seed.
//
// The PMU subscribes to the cache hierarchy's event stream and delivers
// Samples to a handler installed by the demand-driven controller.
package perf

import (
	"fmt"
	"math/rand"

	"demandrace/internal/cache"
	"demandrace/internal/mem"
	"demandrace/internal/obs"
)

// Selector chooses which coherence events a counter counts.
type Selector uint8

const (
	// SelHITM counts all accesses served by a remote Modified line
	// (the paper's MEM_UNCORE_RETIRED...HITM-class event).
	SelHITM Selector = iota
	// SelHITMLoad counts only loads served by a remote Modified line.
	SelHITMLoad
	// SelHITMStore counts only stores served by a remote Modified line.
	SelHITMStore
	// SelInvalidation counts invalidations received by this context's core.
	SelInvalidation
	// SelWriteback counts dirty evictions by this context's core.
	SelWriteback
	// SelSharing counts HITM events plus received invalidations: the
	// broader (noisier, harder to miss) sharing signal used by the hybrid
	// trigger ablation.
	SelSharing
)

func (s Selector) String() string {
	switch s {
	case SelHITM:
		return "HITM"
	case SelHITMLoad:
		return "HITM_LOAD"
	case SelHITMStore:
		return "HITM_STORE"
	case SelInvalidation:
		return "INVALIDATION"
	case SelWriteback:
		return "WRITEBACK"
	case SelSharing:
		return "SHARING"
	}
	return fmt.Sprintf("Selector(%d)", uint8(s))
}

// matches reports whether a cache event is counted under the selector.
func (s Selector) matches(ev cache.Event) bool {
	switch s {
	case SelHITM:
		return ev.Kind == cache.EvHITM
	case SelHITMLoad:
		return ev.Kind == cache.EvHITM && !ev.Write
	case SelHITMStore:
		return ev.Kind == cache.EvHITM && ev.Write
	case SelInvalidation:
		return ev.Kind == cache.EvInvalidation
	case SelWriteback:
		return ev.Kind == cache.EvWriteback
	case SelSharing:
		return ev.Kind == cache.EvHITM || ev.Kind == cache.EvInvalidation
	}
	return false
}

// Sample is the PEBS-like precise record delivered on counter overflow.
type Sample struct {
	// Ctx is the hardware context whose counter overflowed.
	Ctx cache.Context
	// Counter is the index of the overflowing counter (0 is the primary
	// counter; extras follow Config.Extra order at index 1+).
	Counter int
	// Sel is the programmed event.
	Sel Selector
	// Line is the cache line of the event that caused the overflow.
	Line mem.Line
	// Write reports whether that event's access was a store.
	Write bool
	// SrcCore is the peer core that supplied/requested the line (-1 none).
	SrcCore int
	// Skidded reports whether delivery was delayed past the triggering op.
	Skidded bool
}

// Handler receives overflow samples.
type Handler func(Sample)

// CounterConfig programs one additional hardware counter.
type CounterConfig struct {
	// Sel is the counted event.
	Sel Selector
	// SampleAfter is this counter's overflow threshold (≥ 1).
	SampleAfter uint64
}

// MaxCounters matches the four programmable counters of the hardware the
// paper measured (one primary plus up to three extras).
const MaxCounters = 4

// Config programs the PMU identically on every context, mirroring how the
// tool programs the same event on every thread.
type Config struct {
	// Contexts is the number of hardware contexts to monitor.
	Contexts int
	// Sel is the programmed event selector.
	Sel Selector
	// SampleAfter is the overflow threshold: every SampleAfter-th counted
	// event raises an interrupt. 1 means interrupt on every event.
	SampleAfter uint64
	// Extra programs additional counters (counter indices 1..len(Extra)),
	// each with its own selector and threshold; all share the context's
	// enable bit, skid, and drop behavior.
	Extra []CounterConfig
	// Skid is the number of subsequently retired operations on the same
	// context before the interrupt is delivered. 0 means precise delivery.
	Skid int
	// DropRate ∈ [0,1) is the probability an event escapes counting.
	DropRate float64
	// Seed makes event dropping deterministic.
	Seed int64
}

// DefaultConfig programs HITM counting with interrupt-per-event, no skid,
// no drops — the idealized indicator.
func DefaultConfig(contexts int) Config {
	return Config{Contexts: contexts, Sel: SelHITM, SampleAfter: 1}
}

func (c Config) validate() error {
	if c.Contexts < 1 {
		return fmt.Errorf("perf: Contexts must be ≥ 1, got %d", c.Contexts)
	}
	if c.SampleAfter < 1 {
		return fmt.Errorf("perf: SampleAfter must be ≥ 1, got %d", c.SampleAfter)
	}
	if c.Skid < 0 {
		return fmt.Errorf("perf: Skid must be ≥ 0, got %d", c.Skid)
	}
	if c.DropRate < 0 || c.DropRate >= 1 {
		return fmt.Errorf("perf: DropRate must be in [0,1), got %g", c.DropRate)
	}
	if 1+len(c.Extra) > MaxCounters {
		return fmt.Errorf("perf: %d counters programmed, hardware has %d", 1+len(c.Extra), MaxCounters)
	}
	for i, ec := range c.Extra {
		if ec.SampleAfter < 1 {
			return fmt.Errorf("perf: extra counter %d: SampleAfter must be ≥ 1", i)
		}
	}
	return nil
}

// counters flattens the programming into an indexed list.
func (c Config) counters() []CounterConfig {
	out := make([]CounterConfig, 0, 1+len(c.Extra))
	out = append(out, CounterConfig{Sel: c.Sel, SampleAfter: c.SampleAfter})
	return append(out, c.Extra...)
}

// Stats aggregates PMU counters across contexts.
type Stats struct {
	// Seen is the number of events matching the selector that reached the
	// PMU (before drops).
	Seen uint64
	// Counted is Seen minus dropped events.
	Counted uint64
	// Dropped is the number of matching events lost to imprecise counting.
	Dropped uint64
	// Overflows is the number of counter overflows (== interrupts queued).
	Overflows uint64
	// Delivered is the number of interrupts actually delivered to the
	// handler (equals Overflows once skid queues drain).
	Delivered uint64
}

type pending struct {
	sample    Sample
	remaining int
}

type ctxState struct {
	// counts holds each programmed counter's partial count.
	counts  []uint64
	pending []pending
}

// PMU is the simulated performance monitoring unit. Not safe for concurrent
// use; the deterministic scheduler serializes all activity.
type PMU struct {
	cfg      Config
	counters []CounterConfig
	ctxs     []ctxState
	handler  Handler
	enabled  []bool
	rng      *rand.Rand
	stats    Stats
	// trace records overflow/skid/drop telemetry; nil disables recording.
	trace *obs.Tracer
}

// New constructs a PMU. It panics on invalid configuration.
func New(cfg Config) *PMU {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	p := &PMU{
		cfg:      cfg,
		counters: cfg.counters(),
		ctxs:     make([]ctxState, cfg.Contexts),
		enabled:  make([]bool, cfg.Contexts),
	}
	for i := range p.enabled {
		p.enabled[i] = true
		p.ctxs[i].counts = make([]uint64, len(p.counters))
	}
	if cfg.DropRate > 0 {
		p.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return p
}

// Config returns the PMU's programming.
func (p *PMU) Config() Config { return p.cfg }

// SetHandler installs the overflow interrupt handler.
func (p *PMU) SetHandler(h Handler) { p.handler = h }

// SetTracer installs the telemetry tracer (nil disables tracing).
func (p *PMU) SetTracer(t *obs.Tracer) { p.trace = t }

// SetEnabled turns counting on or off for one context. Disabled contexts
// neither count nor deliver; the demand controller disables the counter
// while a thread is already in analysis mode (it no longer needs the
// signal there).
func (p *PMU) SetEnabled(ctx cache.Context, on bool) {
	for i := range p.ctxs[ctx].counts {
		p.ctxs[ctx].counts[i] = 0
	}
	if !on {
		p.ctxs[ctx].pending = p.ctxs[ctx].pending[:0]
	}
	p.enabled[ctx] = on
}

// Enabled reports whether ctx's counter is armed.
func (p *PMU) Enabled(ctx cache.Context) bool { return p.enabled[ctx] }

// Stats returns a snapshot of the PMU counters.
func (p *PMU) Stats() Stats { return p.stats }

// Observe feeds one coherence event into the PMU. Install it as the cache
// hierarchy's event sink. Events are attributed to ev.Ctx, matching how the
// hardware attributes HITM to the requesting thread and invalidations to
// the victim.
func (p *PMU) Observe(ev cache.Event) {
	ctx := ev.Ctx
	if int(ctx) >= len(p.ctxs) || !p.enabled[ctx] {
		return
	}
	for ci, cc := range p.counters {
		if !cc.Sel.matches(ev) {
			continue
		}
		p.stats.Seen++
		if p.rng != nil && p.rng.Float64() < p.cfg.DropRate {
			p.stats.Dropped++
			p.trace.Emit(obs.KindSampleDropped, -1, int(ctx), uint64(ev.Line), int64(ci), "")
			continue
		}
		p.stats.Counted++
		st := &p.ctxs[ctx]
		st.counts[ci]++
		if st.counts[ci] < cc.SampleAfter {
			continue
		}
		st.counts[ci] = 0
		p.stats.Overflows++
		p.trace.Emit(obs.KindOverflow, -1, int(ctx), uint64(ev.Line), int64(ci), cc.Sel.String())
		s := Sample{
			Ctx:     ctx,
			Counter: ci,
			Sel:     cc.Sel,
			Line:    ev.Line,
			Write:   ev.Write,
			SrcCore: ev.Src,
			Skidded: p.cfg.Skid > 0,
		}
		if p.cfg.Skid == 0 {
			p.deliver(s)
			continue
		}
		st.pending = append(st.pending, pending{sample: s, remaining: p.cfg.Skid})
	}
}

// Retire advances ctx by one retired operation, draining any pending
// skidded interrupts whose delay has elapsed. The runner calls this once
// per executed op.
func (p *PMU) Retire(ctx cache.Context) {
	st := &p.ctxs[ctx]
	if len(st.pending) == 0 {
		return
	}
	out := st.pending[:0]
	for _, pd := range st.pending {
		pd.remaining--
		if pd.remaining <= 0 {
			p.deliver(pd.sample)
			continue
		}
		out = append(out, pd)
	}
	st.pending = out
}

// DrainAll delivers every pending interrupt regardless of remaining skid,
// used at thread exit so no queued sample is lost silently.
func (p *PMU) DrainAll() {
	for i := range p.ctxs {
		for _, pd := range p.ctxs[i].pending {
			p.deliver(pd.sample)
		}
		p.ctxs[i].pending = p.ctxs[i].pending[:0]
	}
}

func (p *PMU) deliver(s Sample) {
	p.stats.Delivered++
	skidded := int64(0)
	if s.Skidded {
		skidded = 1
	}
	p.trace.Emit(obs.KindSampleDelivered, -1, int(s.Ctx), uint64(s.Line), skidded, s.Sel.String())
	if p.handler != nil {
		p.handler(s)
	}
}
