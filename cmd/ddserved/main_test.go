package main

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"demandrace/internal/service"
	"demandrace/internal/version"
)

// TestServeSubmitShutdown boots the daemon on a random port, runs one job
// end to end over HTTP, and exercises the graceful-shutdown path.
func TestServeSubmitShutdown(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "127.0.0.1:0", addrFile, service.Config{Workers: 1}, 30*time.Second)
	}()

	var addr string
	for i := 0; i < 200; i++ {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("daemon never wrote -addr-file")
	}

	cl := &service.Client{BaseURL: "http://" + addr, PollInterval: 5 * time.Millisecond}
	data, st, err := cl.Run(context.Background(), service.Request{Kernel: "racy_flag"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.State != service.StateDone || len(data) == 0 {
		t.Fatalf("job ended %q with %d result bytes", st.State, len(data))
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestVersionBanner(t *testing.T) {
	got := version.String("ddserved")
	if !strings.HasPrefix(got, "ddserved version ") || strings.ContainsRune(got, '\n') {
		t.Fatalf("banner %q is not a single 'ddserved version X' line", got)
	}
}
