package trace_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"demandrace/internal/demand"
	"demandrace/internal/detector"
	"demandrace/internal/program"
	"demandrace/internal/trace"
	"demandrace/internal/vclock"
)

// encodeTrace renders tr to its binary form.
func encodeTrace(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// feedAll pushes raw through a StreamDecoder in chunks of the given size
// and returns the reassembled trace.
func feedAll(t *testing.T, raw []byte, chunk int, lim trace.DecodeLimits) *trace.Trace {
	t.Helper()
	dec := trace.NewStreamDecoder(lim)
	var events []trace.Event
	for off := 0; off < len(raw); off += chunk {
		end := off + chunk
		if end > len(raw) {
			end = len(raw)
		}
		evs, err := dec.Feed(raw[off:end])
		if err != nil {
			t.Fatalf("Feed at offset %d: %v", off, err)
		}
		events = append(events, evs...)
	}
	if err := dec.Finish(); err != nil {
		t.Fatal(err)
	}
	return &trace.Trace{Program: dec.Program(), Events: events}
}

func TestStreamDecoderMatchesBatch(t *testing.T) {
	tr := recordedTrace(t, "racy_counter", demand.Continuous)
	raw := encodeTrace(t, tr)
	want, err := trace.DecodeBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	// Chunk sizes crossing every boundary class: single bytes (every event
	// split mid-field), primes, and one-shot.
	for _, chunk := range []int{1, 3, 7, 64, 1 << 20} {
		got := feedAll(t, raw, chunk, trace.DecodeLimits{})
		if got.Program != want.Program {
			t.Fatalf("chunk %d: program %q, want %q", chunk, got.Program, want.Program)
		}
		if !reflect.DeepEqual(got.Events, want.Events) {
			t.Fatalf("chunk %d: events differ from batch decode", chunk)
		}
	}
}

func TestStreamDecoderBarrierAndMarks(t *testing.T) {
	// Hand-built trace exercising parties and labels, which have their own
	// variable-length encodings.
	rec := trace.NewRecorder("synthetic")
	rec.RecordMark(0, 0, "init")
	rec.RecordOp(1, 1, program.Op{Kind: program.OpStore, Addr: 64}, true, true)
	rec.RecordBarrier(0, []vclock.TID{0, 1, 2}, true)
	rec.RecordMark(2, 0, "teardown phase with a longer label")
	raw := encodeTrace(t, rec.Trace())
	want, err := trace.DecodeBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got := feedAll(t, raw, 1, trace.DecodeLimits{})
	if !reflect.DeepEqual(got.Events, want.Events) {
		t.Fatalf("1-byte stream decode differs from batch:\n got %+v\nwant %+v", got.Events, want.Events)
	}
}

func TestStreamDecoderLimits(t *testing.T) {
	tr := recordedTrace(t, "racy_flag", demand.Continuous)
	raw := encodeTrace(t, tr)

	t.Run("bytes", func(t *testing.T) {
		cap := int64(len(raw) - 1)
		dec := trace.NewStreamDecoder(trace.DecodeLimits{MaxBytes: cap})
		var lastErr error
		for off := 0; off < len(raw) && lastErr == nil; off += 100 {
			end := off + 100
			if end > len(raw) {
				end = len(raw)
			}
			_, lastErr = dec.Feed(raw[off:end])
		}
		var lim *trace.LimitError
		if !errors.As(lastErr, &lim) || lim.What != "bytes" {
			t.Fatalf("want bytes LimitError, got %v", lastErr)
		}
		if lim.Limit != uint64(cap) || lim.Got != uint64(cap) {
			t.Fatalf("limit error fields %+v want Limit=Got=%d (batch parity)", lim, cap)
		}
		// Sticky: a later feed repeats the error.
		if _, err := dec.Feed([]byte{0}); !errors.As(err, &lim) {
			t.Fatalf("error not sticky: %v", err)
		}
	})

	t.Run("events", func(t *testing.T) {
		dec := trace.NewStreamDecoder(trace.DecodeLimits{MaxEvents: 1})
		_, err := dec.Feed(raw)
		var lim *trace.LimitError
		if !errors.As(err, &lim) || lim.What != "events" {
			t.Fatalf("want events LimitError, got %v", err)
		}
	})

	t.Run("badmagic", func(t *testing.T) {
		dec := trace.NewStreamDecoder(trace.DecodeLimits{})
		if _, err := dec.Feed([]byte("NOPE....")); err == nil {
			t.Fatal("bad magic accepted")
		}
	})

	t.Run("truncated", func(t *testing.T) {
		dec := trace.NewStreamDecoder(trace.DecodeLimits{})
		if _, err := dec.Feed(raw[:len(raw)/2]); err != nil {
			t.Fatalf("prefix feed failed: %v", err)
		}
		if err := dec.Finish(); err == nil {
			t.Fatal("Finish accepted a truncated stream")
		}
	})

	t.Run("trailing", func(t *testing.T) {
		dec := trace.NewStreamDecoder(trace.DecodeLimits{})
		if _, err := dec.Feed(raw); err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Feed([]byte{0xFF}); err == nil {
			t.Fatal("trailing bytes accepted")
		}
	})
}

func TestLiveReplayMatchesBatch(t *testing.T) {
	for _, kernel := range []string{"racy_counter", "racy_flag", "histogram", "micro_false_sharing"} {
		for _, opt := range []detector.Options{
			{MaxReportsPerAddr: 1},
			{MaxReportsPerAddr: -1, FullVC: true},
		} {
			tr := recordedTrace(t, kernel, demand.Continuous)
			want := trace.Replay(tr, opt)

			live := trace.NewLiveReplay(opt)
			for _, e := range tr.Events {
				live.Apply(e)
			}
			got := live.Detector()
			if !reflect.DeepEqual(got.Reports(), want.Reports()) {
				t.Fatalf("%s %+v: live reports differ from batch", kernel, opt)
			}
			if got.Stats() != want.Stats() {
				t.Fatalf("%s %+v: live stats %+v, want %+v", kernel, opt, got.Stats(), want.Stats())
			}
		}
	}
}

func TestLiveReplayRebuildsOnLateDims(t *testing.T) {
	// Threads and sync objects appear in increasing order, forcing a
	// rebuild per growth step; the result must still match batch replay.
	rec := trace.NewRecorder("late-dims")
	rec.RecordOp(0, 0, program.Op{Kind: program.OpStore, Addr: 64}, true, true)  // store t0
	rec.RecordOp(1, 1, program.Op{Kind: program.OpLoad, Addr: 64}, true, true)   // load t1 → race
	rec.RecordOp(2, 0, program.Op{Kind: program.OpStore, Addr: 128}, true, true) // t2 appears
	rec.RecordBarrier(0, []vclock.TID{0, 1, 2, 3}, true)                         // t3 via parties
	rec.RecordOp(3, 1, program.Op{Kind: program.OpLoad, Addr: 128}, false, true) // post-barrier
	tr := rec.Trace()

	opt := detector.Options{MaxReportsPerAddr: -1}
	want := trace.Replay(tr, opt)
	live := trace.NewLiveReplay(opt)
	for _, e := range tr.Events {
		live.Apply(e)
	}
	if live.Rebuilds() < 2 {
		t.Fatalf("expected multiple rebuilds, got %d", live.Rebuilds())
	}
	if !reflect.DeepEqual(live.Detector().Reports(), want.Reports()) {
		t.Fatalf("reports differ:\n live %+v\nbatch %+v", live.Detector().Reports(), want.Reports())
	}
	if live.Detector().Stats() != want.Stats() {
		t.Fatalf("stats differ: live %+v batch %+v", live.Detector().Stats(), want.Stats())
	}
	threads, _, _ := live.Dims()
	if wt, _, _ := tr.Dims(); threads != wt {
		t.Fatalf("live threads %d, trace dims %d", threads, wt)
	}
}

func TestLiveReplayEmptyDetector(t *testing.T) {
	live := trace.NewLiveReplay(detector.Options{})
	if live.Races() != nil {
		t.Fatal("empty replay has races")
	}
	if live.Detector() == nil {
		t.Fatal("empty replay returned nil detector")
	}
}
