package alert

import (
	"log/slog"
	"sort"
	"sync"
	"time"

	"demandrace/internal/obs"
	olog "demandrace/internal/obs/log"
	"demandrace/internal/obs/stream"
	"demandrace/internal/obs/tsdb"
)

// Engine metric names, registered alongside the metrics the rules watch
// so alerting health is itself observable.
const (
	// MetricActive gauges currently pending + firing alerts.
	MetricActive = "ddalert_active"
	// MetricFiring gauges currently firing alerts.
	MetricFiring = "ddalert_firing"
	// MetricFired counts pending→firing transitions.
	MetricFired = "ddalert_fired_total"
	// MetricResolved counts firing→resolved transitions.
	MetricResolved = "ddalert_resolved_total"
)

// Alert states.
const (
	StatePending  = "pending"
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// Source is where the engine reads samples — satisfied by *tsdb.DB, and
// by fakes in tests.
type Source interface {
	// Samples returns a series' kind and retained samples at or after
	// since, oldest first; ok is false for a never-sampled metric.
	Samples(metric string, since time.Time) (kind string, samples []tsdb.Sample, ok bool)
}

// Alert is one rule episode, as served by GET /v1/alerts.
type Alert struct {
	// Rule names the rule that produced this alert.
	Rule string `json:"rule"`
	// Severity is the rule's severity.
	Severity string `json:"severity"`
	// State is pending, firing, or resolved.
	State string `json:"state"`
	// Node names the process whose engine evaluated the rule.
	Node string `json:"node,omitempty"`
	// Value is the last evaluated observation; Threshold the rule's bound.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Summary is the rule's operator explanation.
	Summary string `json:"summary,omitempty"`
	// SinceMS is when the condition first held (unix milliseconds);
	// FiringSinceMS when the alert fired; ResolvedMS when it cleared.
	SinceMS       int64 `json:"since_ms"`
	FiringSinceMS int64 `json:"firing_since_ms,omitempty"`
	ResolvedMS    int64 `json:"resolved_ms,omitempty"`
}

// Doc is the GET /v1/alerts response for a single engine.
type Doc struct {
	// Node names the responding process.
	Node string `json:"node"`
	// Active holds pending and firing alerts, most urgent first.
	Active []Alert `json:"active"`
	// History holds recently resolved alerts, newest first, bounded.
	History []Alert `json:"history"`
	// Rules is the evaluated rule set (normalized).
	Rules []Rule `json:"rules"`
}

// DefaultHistory bounds the resolved-alert history ring.
const DefaultHistory = 64

// Config shapes an Engine.
type Config struct {
	// Node names this process on alerts and events.
	Node string
	// Rules is the validated rule set (see ParseRules / the *Defaults
	// constructors).
	Rules []Rule
	// Source is the sample store rules evaluate against. Required.
	Source Source
	// Bus, when set, receives alert_firing / alert_resolved events.
	Bus *stream.Bus
	// Registry, when set, receives the Metric* engine metrics.
	Registry *obs.Registry
	// Log, when set, records transitions.
	Log *slog.Logger
	// History bounds the resolved-alert ring (default DefaultHistory).
	History int
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

// episode is one rule's live lifecycle state.
type episode struct {
	state       string // "" (inactive), StatePending, or StateFiring
	since       time.Time
	firingSince time.Time
	value       float64
}

// Engine evaluates rules against a Source once per EvalNow and owns the
// alert lifecycle state.
type Engine struct {
	cfg   Config
	rules []Rule

	mu       sync.Mutex
	episodes map[string]*episode
	history  []Alert // newest last; served newest first
}

// New validates the rule set and builds an engine. No goroutine is
// started: hang EvalNow on a tsdb tick via (*tsdb.DB).SetOnTick.
func New(cfg Config) (*Engine, error) {
	rules := make([]Rule, 0, len(cfg.Rules))
	seen := make(map[string]bool, len(cfg.Rules))
	for _, r := range cfg.Rules {
		nr, err := r.normalized()
		if err != nil {
			return nil, err
		}
		if seen[nr.Name] {
			return nil, &duplicateRuleError{nr.Name}
		}
		seen[nr.Name] = true
		rules = append(rules, nr)
	}
	if cfg.History <= 0 {
		cfg.History = DefaultHistory
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Log == nil {
		cfg.Log = olog.Discard()
	}
	return &Engine{
		cfg:      cfg,
		rules:    rules,
		episodes: make(map[string]*episode, len(rules)),
	}, nil
}

type duplicateRuleError struct{ name string }

func (e *duplicateRuleError) Error() string { return "alert: duplicate rule name " + e.name }

// Rules returns the normalized rule set.
func (e *Engine) Rules() []Rule {
	out := make([]Rule, len(e.rules))
	copy(out, e.rules)
	return out
}

// EvalNow evaluates every rule once against the source's current samples
// and advances the lifecycle state machine. Transition events publish to
// the bus exactly once per edge.
func (e *Engine) EvalNow() {
	now := e.cfg.Now()
	type edge struct {
		typ   string
		alert Alert
	}
	var edges []edge

	e.mu.Lock()
	for i := range e.rules {
		r := &e.rules[i]
		value, condTrue := e.evalRule(r, now)
		ep := e.episodes[r.Name]
		if ep == nil {
			ep = &episode{}
			e.episodes[r.Name] = ep
		}
		ep.value = value
		switch {
		case condTrue && ep.state == "":
			ep.since = now
			if r.For <= 0 {
				ep.state = StateFiring
				ep.firingSince = now
				edges = append(edges, edge{stream.TypeAlertFiring, e.alertLocked(r, ep, StateFiring)})
			} else {
				ep.state = StatePending
			}
		case condTrue && ep.state == StatePending:
			if now.Sub(ep.since) >= time.Duration(r.For) {
				ep.state = StateFiring
				ep.firingSince = now
				edges = append(edges, edge{stream.TypeAlertFiring, e.alertLocked(r, ep, StateFiring)})
			}
		case !condTrue && ep.state == StatePending:
			// Never fired: quietly reset, no event.
			*ep = episode{}
		case !condTrue && ep.state == StateFiring:
			resolved := e.alertLocked(r, ep, StateResolved)
			resolved.ResolvedMS = now.UnixMilli()
			e.history = append(e.history, resolved)
			if excess := len(e.history) - e.cfg.History; excess > 0 {
				e.history = append(e.history[:0], e.history[excess:]...)
			}
			edges = append(edges, edge{stream.TypeAlertResolved, resolved})
			*ep = episode{}
		}
	}
	var pending, firing int
	for _, ep := range e.episodes {
		switch ep.state {
		case StatePending:
			pending++
		case StateFiring:
			firing++
		}
	}
	e.mu.Unlock()

	if reg := e.cfg.Registry; reg != nil {
		reg.Gauge(MetricActive).Set(int64(pending + firing))
		reg.Gauge(MetricFiring).Set(int64(firing))
	}
	for _, ed := range edges {
		if reg := e.cfg.Registry; reg != nil {
			switch ed.typ {
			case stream.TypeAlertFiring:
				reg.Counter(MetricFired).Add(1)
			case stream.TypeAlertResolved:
				reg.Counter(MetricResolved).Add(1)
			}
		}
		e.cfg.Log.Warn("alert transition",
			"rule", ed.alert.Rule,
			"state", ed.alert.State,
			"severity", ed.alert.Severity,
			"value", ed.alert.Value,
			"threshold", ed.alert.Threshold)
		e.cfg.Bus.Publish(stream.Event{
			Type: ed.typ,
			Detail: map[string]string{
				"rule":      ed.alert.Rule,
				"severity":  ed.alert.Severity,
				"state":     ed.alert.State,
				"value":     fmtFloat(ed.alert.Value),
				"threshold": fmtFloat(ed.alert.Threshold),
				"summary":   ed.alert.Summary,
			},
		})
	}
}

// alertLocked snapshots an episode as an Alert. Caller holds e.mu.
func (e *Engine) alertLocked(r *Rule, ep *episode, state string) Alert {
	a := Alert{
		Rule:      r.Name,
		Severity:  r.Severity,
		State:     state,
		Node:      e.cfg.Node,
		Value:     ep.value,
		Threshold: r.Value,
		Summary:   r.Summary,
		SinceMS:   ep.since.UnixMilli(),
	}
	if !ep.firingSince.IsZero() {
		a.FiringSinceMS = ep.firingSince.UnixMilli()
	}
	return a
}

// evalRule computes one rule's current observation and whether the
// condition holds. Missing data reads as "condition not met". Caller
// holds e.mu (the source has its own lock; no lock ordering cycle — the
// source never calls back into the engine).
func (e *Engine) evalRule(r *Rule, now time.Time) (float64, bool) {
	src := e.cfg.Source
	if r.When != nil {
		_, gs, ok := src.Samples(r.When.Metric, time.Time{})
		if !ok || len(gs) == 0 || !compare(r.When.Op, gs[len(gs)-1].Value, r.When.Value) {
			return 0, false
		}
	}
	switch r.Kind {
	case KindThreshold:
		_, ss, ok := src.Samples(r.Metric, time.Time{})
		if !ok || len(ss) == 0 {
			return 0, false
		}
		v := ss[len(ss)-1].Value
		return v, compare(r.Op, v, r.Value)
	case KindRate:
		since := now.Add(-time.Duration(r.Window))
		kind, ss, ok := src.Samples(r.Metric, since)
		if !ok {
			return 0, false
		}
		var v float64
		if kind == tsdb.KindCounter {
			// Counter series are per-tick deltas: the windowed increase is
			// their sum; an empty window is a legitimate zero.
			for _, s := range ss {
				v += s.Value
			}
		} else {
			if len(ss) < 2 {
				return 0, false
			}
			v = ss[len(ss)-1].Value - ss[0].Value
		}
		return v, compare(r.Op, v, r.Value)
	case KindRatio:
		since := now.Add(-time.Duration(r.Window))
		num, numOK := sumSince(src, r.Metric, since)
		den := 0.0
		for _, m := range r.Denominator {
			s, _ := sumSince(src, m, since)
			den += s
		}
		if !numOK || den < r.MinCount {
			return 0, false
		}
		v := num / den
		return v, compare(r.Op, v, r.Value)
	case KindBurnRate:
		budget := 1 - r.Target
		longSince := now.Add(-time.Duration(r.Window))
		shortSince := now.Add(-time.Duration(r.ShortWindow))
		burn := func(since time.Time) (float64, float64) {
			bad, _ := sumSince(src, r.Metric, since)
			total := 0.0
			for _, m := range r.Denominator {
				s, _ := sumSince(src, m, since)
				total += s
			}
			return bad, total
		}
		badL, totalL := burn(longSince)
		badS, totalS := burn(shortSince)
		if totalL < r.MinCount || totalS <= 0 {
			return 0, false
		}
		burnL := (badL / totalL) / budget
		burnS := (badS / totalS) / budget
		// Both windows must burn too fast: the long window proves it is
		// sustained, the short window proves it is still happening.
		return burnL, burnL > r.Value && burnS > r.Value
	}
	return 0, false
}

// sumSince totals a series' samples in the window; ok is false for a
// never-sampled metric.
func sumSince(src Source, metric string, since time.Time) (float64, bool) {
	_, ss, ok := src.Samples(metric, since)
	if !ok {
		return 0, false
	}
	var v float64
	for _, s := range ss {
		v += s.Value
	}
	return v, true
}

// Active returns pending and firing alerts, firing first, then by
// severity (critical first), then by rule name.
func (e *Engine) Active() []Alert {
	e.mu.Lock()
	out := make([]Alert, 0, len(e.episodes))
	for i := range e.rules {
		r := &e.rules[i]
		ep := e.episodes[r.Name]
		if ep == nil || ep.state == "" {
			continue
		}
		out = append(out, e.alertLocked(r, ep, ep.state))
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].State != out[j].State {
			return out[i].State == StateFiring
		}
		if a, b := sevRank(out[i].Severity), sevRank(out[j].Severity); a != b {
			return a > b
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

func sevRank(s string) int {
	switch s {
	case SevCritical:
		return 2
	case SevWarning:
		return 1
	}
	return 0
}

// History returns resolved alerts, newest first.
func (e *Engine) History() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, 0, len(e.history))
	for i := len(e.history) - 1; i >= 0; i-- {
		out = append(out, e.history[i])
	}
	return out
}

// Counts returns the current pending and firing alert counts — the
// /healthz subsystem summary.
func (e *Engine) Counts() (pending, firing int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ep := range e.episodes {
		switch ep.state {
		case StatePending:
			pending++
		case StateFiring:
			firing++
		}
	}
	return pending, firing
}

// Doc assembles the GET /v1/alerts response.
func (e *Engine) Doc() Doc {
	return Doc{
		Node:    e.cfg.Node,
		Active:  e.Active(),
		History: e.History(),
		Rules:   e.Rules(),
	}
}
