// Command ddreplay analyzes a recorded execution trace offline: print its
// summary, replay it through a fresh detector (optionally the full-VC
// variant), and list the races — the execute-once / analyze-many-times
// workflow.
//
// Usage:
//
//	ddrace -kernel racy_flag -policy continuous -record run.drt
//	ddreplay run.drt
//	ddreplay -fullvc -reports 5 run.drt
//	ddreplay -json run.json        # JSON-encoded traces
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"time"

	"demandrace/internal/detector"
	olog "demandrace/internal/obs/log"
	"demandrace/internal/trace"
	"demandrace/internal/version"
)

func main() {
	var (
		fullvc   = flag.Bool("fullvc", false, "replay through the full-vector-clock detector variant")
		reports  = flag.Int("reports", 1, "max race reports per address (-1 = unlimited)")
		asJSON   = flag.Bool("json", false, "decode the trace as JSON instead of binary")
		timeline = flag.Int("timeline", 0, "render a per-thread activity timeline this many columns wide")
		verFlag  = flag.Bool("version", false, "print the version and exit")
	)
	logFlags := olog.Register(flag.CommandLine, olog.FormatText)
	flag.Parse()
	if *verFlag {
		fmt.Println(version.String("ddreplay"))
		return
	}
	lg, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddreplay:", err)
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ddreplay [-fullvc] [-reports N] [-json] <trace-file>")
		os.Exit(2)
	}
	if err := run(os.Stdout, lg, flag.Arg(0), *fullvc, *reports, *asJSON, *timeline); err != nil {
		fmt.Fprintln(os.Stderr, "ddreplay:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, lg *slog.Logger, path string, fullvc bool, reports int, asJSON bool, timeline int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	decodeStart := time.Now()
	var tr *trace.Trace
	if asJSON {
		tr, err = trace.DecodeJSON(f)
	} else {
		tr, err = trace.DecodeBinary(f)
	}
	if err != nil {
		return err
	}
	// Wall-clock decode/replay timings are diagnostics: they go through the
	// leveled logger (stderr), never the comparable stdout stream.
	lg.Debug("trace decoded", "path", path, "events", len(tr.Events),
		"dur_ms", float64(time.Since(decodeStart))/float64(time.Millisecond))

	s := trace.Summarize(tr)
	fmt.Fprintf(out, "trace:    %s (%d events, %d threads)\n", s.Program, s.Events, s.Threads)
	fmt.Fprintf(out, "sharing:  %d HITM events\n", s.HITM)
	fmt.Fprintf(out, "analyzed: %d events reached the detector when recorded\n", s.Analyzed)
	kinds := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(out, "  %-14s %d\n", k, s.ByKind[k])
	}

	if timeline > 0 {
		fmt.Fprintln(out)
		fmt.Fprint(out, trace.Timeline(tr, timeline))
	}

	det := trace.Replay(tr, detector.Options{FullVC: fullvc, MaxReportsPerAddr: reports})
	engine := "FastTrack"
	if fullvc {
		engine = "full-VC (DJIT+)"
	}
	fmt.Fprintf(out, "\nreplay (%s): %d race report(s)\n", engine, len(det.Reports()))
	for _, r := range det.Reports() {
		fmt.Fprintf(out, "  %v\n", r)
	}
	st := det.Stats()
	fmt.Fprintf(out, "detector work: %d reads, %d writes, %d sync ops, %d same-epoch fast paths\n",
		st.Reads, st.Writes, st.SyncOps, st.SameEpochHits)
	fmt.Fprintf(out, "detector paths: %d owned fast paths, %d epoch fallbacks, %d VC fallbacks, %d read inflations, %d read spills\n",
		st.OwnedHits, st.EpochFallbacks, st.VCFallbacks, st.ReadInflations, st.ReadSpills)
	return nil
}
