package trace

import (
	"fmt"
	"strings"
)

// Timeline renders a trace as per-thread ASCII strips, the at-a-glance
// view of where analysis was on and where sharing happened:
//
//	t0 ▕····████████··║··▏
//	t1 ▕······█!██····║··▏
//
// Each column aggregates a window of the trace's events. Per cell, the
// strongest signal wins: '!' a HITM inside an analyzed window (the demand
// mechanism catching sharing), '█' analyzed execution, '~' a HITM that ran
// unanalyzed (sharing the tool did not see), '║' synchronization, '·' fast
// uninstrumented execution, ' ' no activity.
func Timeline(tr *Trace, width int) string {
	if width < 8 {
		width = 8
	}
	threads, _, _ := tr.Dims()
	if threads == 0 || len(tr.Events) == 0 {
		return "(empty trace)\n"
	}
	per := (len(tr.Events) + width - 1) / width
	type cell uint8
	const (
		cEmpty cell = iota
		cFast
		cSync
		cMissedHITM
		cAnalyzed
		cCaughtHITM
	)
	grid := make([][]cell, threads)
	for i := range grid {
		grid[i] = make([]cell, width)
	}
	bump := func(t int, col int, c cell) {
		if c > grid[t][col] {
			grid[t][col] = c
		}
	}
	for i, e := range tr.Events {
		col := i / per
		if col >= width {
			col = width - 1
		}
		switch {
		case e.Kind.IsSync() && len(e.Parties) > 0:
			for _, p := range e.Parties {
				bump(int(p), col, cSync)
			}
		case e.Kind.IsSync():
			bump(int(e.TID), col, cSync)
		case e.Kind.IsMemory():
			c := cFast
			switch {
			case e.HITM && e.Analyzed:
				c = cCaughtHITM
			case e.HITM:
				c = cMissedHITM
			case e.Analyzed:
				c = cAnalyzed
			}
			bump(int(e.TID), col, c)
		default:
			bump(int(e.TID), col, cFast)
		}
	}
	glyph := map[cell]rune{
		cEmpty: ' ', cFast: '·', cSync: '║',
		cMissedHITM: '~', cAnalyzed: '█', cCaughtHITM: '!',
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline of %s (%d events, %d events/col)\n", tr.Program, len(tr.Events), per)
	for t := 0; t < threads; t++ {
		fmt.Fprintf(&b, "t%-2d ▕", t)
		for _, c := range grid[t] {
			b.WriteRune(glyph[c])
		}
		b.WriteString("▏\n")
	}
	b.WriteString("     · fast   █ analyzed   ║ sync   ! HITM caught   ~ HITM unobserved\n")
	return b.String()
}
