package runner

import (
	"context"
	"errors"
	"testing"
	"time"

	"demandrace/internal/workloads"
)

func TestRunContextAlreadyCanceled(t *testing.T) {
	k, _ := workloads.ByName("racy_flag")
	p := k.Build(workloads.Config{Threads: 4, Scale: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunContext(ctx, p, DefaultConfig())
	if rep != nil {
		t.Fatal("canceled run produced a report")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextDeadlineAbortsLongRun(t *testing.T) {
	// A scaled-up kernel runs far beyond the 1 ms budget; the quantum-
	// boundary check must stop it long before completion.
	k, _ := workloads.ByName("histogram")
	p := k.Build(workloads.Config{Threads: 4, Scale: 200})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, p, DefaultConfig())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Generous bound: aborting must not take anywhere near a full run.
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("cancellation took %v; quantum-boundary check not effective", d)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	k, _ := workloads.ByName("racy_flag")
	p := k.Build(workloads.Config{Threads: 4, Scale: 1})
	cfg := DefaultConfig()
	r1, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2, err := RunContext(context.Background(), p, cfg)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if r1.ToolCycles != r2.ToolCycles || r1.Steps != r2.Steps || len(r1.Races) != len(r2.Races) {
		t.Fatalf("RunContext diverged from Run: %v vs %v", r1, r2)
	}
}
