// Command ddgate fronts a fleet of ddserved backends as one service: a
// sharded analysis cluster with consistent-hash routing, health-checked
// failover, and optional hedged requests. It exposes the exact ddserved
// API surface, so clients (service.Client, `ddrace -submit`, plain curl)
// point at the gateway instead of a node and nothing else changes.
//
// Jobs route by content hash — the same SHA-256 the service layer uses
// for result caching — so each backend's cache and on-disk store converge
// on its own shard of the keyspace. Backends that fail consecutive health
// probes are evicted from the ring and readmitted when they recover.
//
// Endpoints:
//
//	POST /v1/jobs               submit; routed by content hash with failover
//	GET  /v1/jobs/{id}          poll status (id is "<backend>:<remote id>")
//	GET  /v1/jobs/{id}/trace    merged gateway+backend waterfall for one job
//	GET  /v1/results/{id}       fetch a report, byte-identical to the backend's
//	GET  /v1/timeseries         fleet-wide metric history (gateway + backends)
//	GET  /v1/events             live SSE stream, tailed from every backend
//	                            (resumable: send Last-Event-ID to replay)
//	GET  /v1/alerts             fleet alerts: ring-level rules + every backend's
//	GET  /v1/dashboard          self-contained HTML ops console
//	GET  /v1/stats              gateway counters + per-backend aggregation
//	GET  /healthz               ring capacity (503 only when no backend is routable)
//	GET  /metrics               Prometheus text exposition
//
// Usage:
//
//	ddserved -addr 127.0.0.1:8318 &
//	ddserved -addr 127.0.0.1:8319 &
//	ddgate -addr 127.0.0.1:8418 -backends http://127.0.0.1:8318,http://127.0.0.1:8319
//	ddrace -kernel histogram -submit http://127.0.0.1:8418
//	ddgate -backends a=http://...,b=http://... -hedge-after 500ms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"demandrace/internal/cluster"
	"demandrace/internal/obs"
	"demandrace/internal/obs/alert"
	olog "demandrace/internal/obs/log"
	"demandrace/internal/service"
	"demandrace/internal/tenant"
	"demandrace/internal/version"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8418", "listen address (port 0 picks a free port; see -addr-file)")
		addrFile      = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		backendsSpec  = flag.String("backends", "", "comma-separated backend list: url or name=url (required)")
		vnodes        = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per backend on the hash ring")
		replicas      = flag.Int("replicas", 1, "copies of each sealed result kept on the ring (1 = replication off)")
		tenantsFile   = flag.String("tenants", "", "JSON file of tenant configs; enables API-key admission control at the edge")
		retries       = flag.Int("retries", 2, "extra replicas a failed submission tries")
		retryBackoff  = flag.Duration("retry-backoff", 100*time.Millisecond, "base failover backoff (exponential with jitter)")
		attemptTO     = flag.Duration("attempt-timeout", 2*time.Minute, "per-backend attempt timeout")
		hedgeAfter    = flag.Duration("hedge-after", 0, "duplicate a slow submission to the next replica after this long (0 = off)")
		probeInterval = flag.Duration("probe-interval", time.Second, "backend health-probe period")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
		failAfter     = flag.Int("fail-after", 2, "consecutive probe failures before ring eviction")
		maxBody       = flag.Int64("max-body", 64<<20, "max request body buffered for replay, in bytes")
		node          = flag.String("node", "ddgate", "node name reported in /v1/stats")
		statsTimeout  = flag.Duration("stats-timeout", 0, "per-backend /v1/stats and /v1/timeseries fetch timeout (0 = 2s default)")
		tsInterval    = flag.Duration("ts-interval", 0, "time-series sampling period for /v1/timeseries (0 = 5s default)")
		tsRetention   = flag.Duration("ts-retention", 0, "time-series history kept per metric (0 = 1h default)")
		alertRules    = flag.String("alert-rules", "", "JSON file of alert rules evaluated each ts-interval tick (empty = compiled-in ring rules)")
		versionFlag   = flag.Bool("version", false, "print the version and exit")
	)
	logFlags := olog.Register(flag.CommandLine, olog.FormatJSON)
	flag.Parse()
	if *versionFlag {
		fmt.Println(version.String("ddgate"))
		return
	}
	lg, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddgate:", err)
		os.Exit(2)
	}
	backends, err := cluster.ParseBackends(*backendsSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddgate: -backends:", err)
		os.Exit(2)
	}
	var rules []alert.Rule
	if *alertRules != "" {
		rules, err = alert.LoadRulesFile(*alertRules)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddgate:", err)
			os.Exit(2)
		}
	}
	var tenants []tenant.Config
	if *tenantsFile != "" {
		tenants, err = tenant.LoadFile(*tenantsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddgate: -tenants:", err)
			os.Exit(2)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, options{
		addr:     *addr,
		addrFile: *addrFile,
		cfg: cluster.Config{
			Backends:      backends,
			VNodes:        *vnodes,
			Replicas:      *replicas,
			Tenants:       tenants,
			Retry:         service.Options{Timeout: *attemptTO, Retries: *retries, Backoff: *retryBackoff},
			HedgeAfter:    *hedgeAfter,
			ProbeInterval: *probeInterval,
			ProbeTimeout:  *probeTimeout,
			FailAfter:     *failAfter,
			MaxBodyBytes:  *maxBody,
			Node:          *node,
			StatsTimeout:  *statsTimeout,
			TSInterval:    *tsInterval,
			TSRetention:   *tsRetention,
			AlertRules:    rules,
			Registry:      obs.NewRegistry(),
			Log:           lg,
		},
	}); err != nil {
		lg.Error("ddgate exiting", "error", err.Error())
		os.Exit(1)
	}
}

type options struct {
	addr     string
	addrFile string
	cfg      cluster.Config
}

// run serves until ctx is canceled (main wires ctx to SIGINT/SIGTERM).
func run(ctx context.Context, opts options) error {
	if opts.cfg.Log == nil {
		opts.cfg.Log = olog.Discard()
	}
	lg := opts.cfg.Log

	g, err := cluster.NewGateway(opts.cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if opts.addrFile != "" {
		if err := os.WriteFile(opts.addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}

	// Probe once before serving so a backend that is already down is out
	// of the ring for the very first request, then keep probing.
	g.ProbeNow(ctx)
	g.Start()
	defer g.Stop()

	httpSrv := &http.Server{Handler: g.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	n := g.Config()
	lg.Info("ddgate listening",
		"version", version.Version,
		"addr", bound,
		"backends", len(n.Backends),
		"active", g.Ring().Size(),
		"vnodes", n.VNodes,
		"retries", n.Retry.Retries,
		"hedge_after_ms", n.HedgeAfter.Milliseconds(),
	)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	lg.Info("ddgate stopped")
	return nil
}
