// Package obs is the deterministic telemetry layer: a structured event
// tracer and a metrics registry shared by every stage of the pipeline
// (cache → perf → demand → detector → runner) and surfaced by both CLIs.
//
// The paper's argument is temporal — hardware notices sharing and the
// analysis must wake up *in time* — so end-of-run aggregates cannot answer
// the questions that matter when a race is missed: was the thread still in
// fast mode when the second access retired? did the sample skid past it?
// had the quiet timer already decayed analysis away? The tracer records
// exactly those pipeline events, each timestamped in **simulated cycles**
// from the cost model's tool clock, never wall-clock time. Simulated
// timestamps make traces a pure function of (program, config, seed): the
// same run produces byte-identical telemetry at any -workers width, so the
// repository's determinism contract (see ARCHITECTURE.md) extends to every
// exported artifact.
//
// Both halves are built to be left on:
//
//   - a nil *Tracer or *Registry is a valid no-op receiver, so
//     instrumentation sites cost one pointer test when telemetry is off;
//   - event emission is an append to a preallocated slice;
//   - counters and histograms use atomic updates, so a registry may be
//     shared across the parallel engine's workers and still export
//     deterministic totals (integer addition commutes; the registry
//     deliberately stores no floats on concurrent paths).
//
// Exporters live in export.go: Chrome trace-event JSON (per-thread
// fast/analysis spans plus instant events, loadable in Perfetto or
// chrome://tracing), Prometheus-style text exposition, and NDJSON event
// logs. The package depends only on the standard library.
package obs

import "fmt"

// Clock returns the current time in simulated cycles. The runner installs
// the cost accumulator's tool-cycle counter; wall clocks must never be
// used here (they would break the determinism contract).
type Clock func() uint64

// Kind classifies one pipeline event.
type Kind uint8

const (
	// KindHITM marks an access served by a remote Modified line — the
	// paper's demand signal, emitted by the cache hierarchy.
	KindHITM Kind = iota
	// KindInvalidation marks a line invalidated by a remote store.
	KindInvalidation
	// KindWriteback marks a dirty eviction (the indicator's blind spot).
	KindWriteback
	// KindOverflow marks a PMU counter overflow (an interrupt queued).
	KindOverflow
	// KindSampleDelivered marks an overflow interrupt reaching the demand
	// controller; Aux is 1 when delivery was delayed by skid.
	KindSampleDelivered
	// KindSampleDropped marks a matching event that escaped counting
	// (imprecise-counter loss).
	KindSampleDropped
	// KindModeEnable marks one thread flipping fast → analysis.
	KindModeEnable
	// KindModeDecay marks one thread's quiet timer expiring: analysis →
	// fast.
	KindModeDecay
	// KindCounterToggle marks a context's PMU counter being armed (Aux=1)
	// or disarmed (Aux=0) by the controller.
	KindCounterToggle
	// KindWatchArm marks a watchpoint register pointed at a shared line.
	KindWatchArm
	// KindPageFault marks a page-protection fault taken by PageDemand.
	KindPageFault
	// KindRace marks a race report leaving the happens-before detector;
	// Aux is the prior thread, TID the current one.
	KindRace
)

func (k Kind) String() string {
	switch k {
	case KindHITM:
		return "hitm"
	case KindInvalidation:
		return "invalidation"
	case KindWriteback:
		return "writeback"
	case KindOverflow:
		return "pmu-overflow"
	case KindSampleDelivered:
		return "sample-delivered"
	case KindSampleDropped:
		return "sample-dropped"
	case KindModeEnable:
		return "mode-enable"
	case KindModeDecay:
		return "mode-decay"
	case KindCounterToggle:
		return "counter-toggle"
	case KindWatchArm:
		return "watch-arm"
	case KindPageFault:
		return "page-fault"
	case KindRace:
		return "race"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one cycle-timestamped pipeline event. Fields not meaningful for
// a kind hold their documented sentinel (-1 for TID/Ctx, 0 for Line/Aux).
type Event struct {
	// TS is the event time in simulated cycles (the cost model's tool
	// clock at emission).
	TS uint64
	// Kind classifies the event.
	Kind Kind
	// TID is the software thread involved, -1 when not thread-scoped.
	TID int
	// Ctx is the hardware context involved, -1 when not context-scoped.
	Ctx int
	// Line is the cache line or word address involved, 0 when none.
	Line uint64
	// Aux is kind-specific: the peer core for HITM, the counter index for
	// overflows, 1/0 for toggles and skidded deliveries, the prior thread
	// for races.
	Aux int64
	// Detail is an optional short human label (race kind, policy note).
	Detail string
}

// Tracer records pipeline events in emission order. The zero value is not
// usable; build one with NewTracer. A nil *Tracer is a valid no-op: every
// method checks the receiver, which is the fast path when tracing is off.
// Tracers are not safe for concurrent use — each simulated run owns one,
// exactly like its cache hierarchy and PMU.
type Tracer struct {
	clock   Clock
	events  []Event
	limit   int
	dropped uint64
}

// NewTracer returns an empty tracer with no event cap. Until SetClock is
// called, events are stamped 0.
func NewTracer() *Tracer {
	return &Tracer{events: make([]Event, 0, 1024)}
}

// SetClock installs the simulated-cycle clock used to stamp events.
func (t *Tracer) SetClock(c Clock) {
	if t == nil {
		return
	}
	t.clock = c
}

// SetLimit caps the number of recorded events (0 = unlimited). Events past
// the cap are counted in Dropped but not stored.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	t.limit = n
}

// Emit records one event, stamping it with the current simulated time.
// Safe to call on a nil tracer.
func (t *Tracer) Emit(kind Kind, tid, ctx int, line uint64, aux int64, detail string) {
	if t == nil {
		return
	}
	if t.limit > 0 && len(t.events) >= t.limit {
		t.dropped++
		return
	}
	var ts uint64
	if t.clock != nil {
		ts = t.clock()
	}
	t.events = append(t.events, Event{
		TS: ts, Kind: kind, TID: tid, Ctx: ctx, Line: line, Aux: aux, Detail: detail,
	})
}

// Events returns the recorded events in emission order. The slice is the
// tracer's backing store; callers must not mutate it. Nil-safe.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Len returns the number of recorded events. Nil-safe.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Dropped returns how many events the cap discarded. Nil-safe.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// CountByKind tallies recorded events per kind. Nil-safe.
func (t *Tracer) CountByKind() map[Kind]uint64 {
	if t == nil {
		return nil
	}
	m := make(map[Kind]uint64)
	for _, ev := range t.events {
		m[ev.Kind]++
	}
	return m
}

// Span is one contiguous stretch of a thread's execution in a single mode.
type Span struct {
	// TID is the thread.
	TID int
	// Start and End bound the span in simulated cycles, half-open.
	Start, End uint64
	// Analyzing reports the mode: true = analysis, false = fast.
	Analyzing bool
}

// Dur returns the span length in cycles.
func (s Span) Dur() uint64 { return s.End - s.Start }

// ThreadSpans folds a run's mode-transition events into per-thread
// fast/analysis spans covering [0, end). startAnalyzing gives the mode
// every thread begins in (true under the continuous policy, false
// otherwise). Zero-length spans are elided. The result is ordered by
// thread, then by start time — deterministic for a deterministic event
// stream.
func ThreadSpans(events []Event, end uint64, numThreads int, startAnalyzing bool) []Span {
	type cursor struct {
		start     uint64
		analyzing bool
	}
	cur := make([]cursor, numThreads)
	for i := range cur {
		cur[i].analyzing = startAnalyzing
	}
	spans := make([][]Span, numThreads)
	flip := func(tid int, ts uint64, to bool) {
		c := &cur[tid]
		if c.analyzing == to {
			return
		}
		if ts > c.start {
			spans[tid] = append(spans[tid], Span{TID: tid, Start: c.start, End: ts, Analyzing: c.analyzing})
		}
		c.start = ts
		c.analyzing = to
	}
	for _, ev := range events {
		if ev.TID < 0 || ev.TID >= numThreads {
			continue
		}
		switch ev.Kind {
		case KindModeEnable:
			flip(ev.TID, ev.TS, true)
		case KindModeDecay:
			flip(ev.TID, ev.TS, false)
		}
	}
	var out []Span
	for tid := 0; tid < numThreads; tid++ {
		c := cur[tid]
		if end > c.start {
			spans[tid] = append(spans[tid], Span{TID: tid, Start: c.start, End: end, Analyzing: c.analyzing})
		}
		out = append(out, spans[tid]...)
	}
	return out
}
