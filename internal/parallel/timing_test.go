package parallel

import (
	"strings"
	"testing"
	"time"

	"demandrace/internal/obs"
)

func TestStatsPublish(t *testing.T) {
	reg := obs.NewRegistry()
	s := Stats{Jobs: 3, Busy: 2 * time.Second, Wall: time.Second}
	s.Publish(reg, "batch")
	for name, want := range map[string]uint64{
		"ddrace_parallel_batch_jobs_total":    3,
		"ddrace_parallel_batch_busy_ns_total": uint64(2 * time.Second),
		"ddrace_parallel_batch_wall_ns_total": uint64(time.Second),
	} {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// Nil registry: a no-op, not a panic.
	s.Publish(nil, "batch")
}

func TestTimingTable(t *testing.T) {
	rows := []TimingRow{
		{Name: "fig1", Wall: time.Second, Delta: Stats{Jobs: 4, Busy: 2 * time.Second, Wall: time.Second}},
		{Name: "fig2", Wall: 2 * time.Second, Delta: Stats{Jobs: 6, Busy: 3 * time.Second, Wall: 2 * time.Second}},
	}
	total := Stats{Jobs: 10, Busy: 5 * time.Second, Wall: 3 * time.Second}
	out := TimingTable(4, rows, total, 3*time.Second).String()
	for _, want := range []string{
		"Harness timing — 4 workers",
		"fig1", "fig2", "TOTAL",
		"speedup", "runs/s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timing table missing %q:\n%s", want, out)
		}
	}
	// TOTAL speedup = 5s busy / 3s wall.
	if !strings.Contains(out, "1.67") {
		t.Errorf("suite speedup missing:\n%s", out)
	}
}

func TestTimingTableZeroWall(t *testing.T) {
	out := TimingTable(1, nil, Stats{}, 0).String()
	if !strings.Contains(out, "TOTAL") || !strings.Contains(out, "0.00") {
		t.Errorf("zero-wall table malformed:\n%s", out)
	}
}
