package service

import (
	"testing"

	"demandrace/internal/obs"
)

func TestResultCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := newResultCache(2, reg)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	// Touch "a" so "b" becomes the eviction victim.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.put("c", []byte("C"))
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction; LRU order wrong")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being most recently used")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing after insert")
	}
	if got := reg.CounterValue(obs.SvcCacheEvictions); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	// hits: a, a, c = 3; misses: b = 1
	if got := reg.CounterValue(obs.SvcCacheHits); got != 3 {
		t.Fatalf("hits = %d, want 3", got)
	}
	if got := reg.CounterValue(obs.SvcCacheMisses); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1, obs.NewRegistry())
	c.put("a", []byte("A"))
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestRequestCacheKeyCanonical(t *testing.T) {
	// Explicit defaults and zero values must share a cache entry.
	a := Request{Kernel: "racy_flag"}
	b := Request{Kernel: "racy_flag", Threads: 4, Scale: 1, Policy: "hitm-demand", Scope: "global", Cores: 4, SMT: 1, SampleAfter: 1, SampleRate: 0.1}
	if a.cacheKey() != b.cacheKey() {
		t.Fatal("normalized-equal requests hash differently")
	}
	// The deadline must not split the cache.
	c := Request{Kernel: "racy_flag", TimeoutMS: 1234}
	if a.cacheKey() != c.cacheKey() {
		t.Fatal("timeout_ms perturbed the cache key")
	}
	// Anything semantic must.
	d := Request{Kernel: "racy_flag", Seed: 1}
	if a.cacheKey() == d.cacheKey() {
		t.Fatal("different seeds share a cache key")
	}
	e := Request{Kernel: "histogram"}
	if a.cacheKey() == e.cacheKey() {
		t.Fatal("different kernels share a cache key")
	}
}

func TestRequestValidate(t *testing.T) {
	if err := (Request{Kernel: "racy_flag"}).Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	for _, r := range []Request{
		{},
		{Kernel: "nope"},
		{Kernel: "racy_flag", Policy: "bogus"},
		{Kernel: "racy_flag", Scope: "bogus"},
	} {
		if err := r.Validate(); err == nil {
			t.Fatalf("request %+v validated", r)
		}
	}
}
