// Command experiments regenerates the tables and figures of the paper's
// evaluation (reconstructed per DESIGN.md).
//
// Independent simulation runs fan out across a worker pool (one worker per
// CPU by default; bound it with -workers). Tables are byte-identical for
// every worker count; a timing summary — per-experiment wall clock, run
// throughput, and realized parallel speedup — goes to stderr so it never
// perturbs the comparable stdout stream.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig4 -threads 8 -scale 2
//	experiments -exp fig1 -csv
//	experiments -quick               # seconds-long smoke run of every experiment
//	experiments -workers 1           # serial baseline (identical output)
//	experiments -quick -bench-json BENCH.json   # bench regression snapshot
//	experiments -quick -bench-check BENCH.json  # fail if throughput drifted
//	experiments -quick -metrics      # engine counters to stderr, Prometheus text
//
// Stderr diagnostics are gated by a leveled logger: -log-level=error
// silences the timing summary, -log-format=json makes progress lines
// machine-readable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"time"

	"demandrace/internal/experiments"
	"demandrace/internal/obs"
	olog "demandrace/internal/obs/log"
	"demandrace/internal/parallel"
	"demandrace/internal/stats"
	"demandrace/internal/version"
)

type tabler interface{ Table() *stats.Table }

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run executes the selected experiments, rendering tables to out and the
// timing/throughput summary to diag. Keeping the two streams separate is
// what lets `-workers N` output be byte-compared against `-workers 1`.
func run(args []string, out, diag io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment: scorecard|tab1|fig1|fig2|fig3|fig4|fig5|fig6|fig7|tab3|tab4|tab5|tab6|all")
		threads  = fs.Int("threads", 4, "worker thread count")
		scale    = fs.Int("scale", 1, "workload scale factor")
		csv      = fs.Bool("csv", false, "emit CSV instead of text tables")
		workers  = fs.Int("workers", 0, "parallel simulation runs (0 = one per CPU, 1 = serial)")
		quick    = fs.Bool("quick", false, "smoke mode: trimmed kernels and seeds, runs in seconds")
		timing   = fs.Bool("timing", true, "print wall-clock/throughput stats to stderr")
		benchF   = fs.String("bench-json", "", "write per-experiment wall time and throughput to this JSON file")
		checkF   = fs.String("bench-check", "", "compare throughput against this baseline bench JSON; exit nonzero when outside the tolerance band")
		checkTol = fs.Float64("bench-tol", 0.30, "relative runs-per-second tolerance for -bench-check (0.30 = ±30%)")
		diffF    = fs.String("bench-diff", "", "also write the -bench-check diff table to this file (for CI artifacts)")
		repeat   = fs.Int("bench-repeat", 1, "repeat the suite N times and keep each experiment's best throughput (noise only slows runs down, so best-of-N filters machine contention)")
		metrics  = fs.Bool("metrics", false, "print per-experiment engine counters to stderr as a Prometheus-style exposition")
		verFlag  = fs.Bool("version", false, "print the version and exit")
	)
	logFlags := olog.Register(fs, olog.FormatText)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *verFlag {
		fmt.Fprintln(out, version.String("experiments"))
		return nil
	}
	lg, err := logFlags.Logger(diag)
	if err != nil {
		return err
	}
	// All stderr diagnostics flow through the logger's level gate, so
	// -log-level=error leaves the stream silent for scripted callers.
	if !lg.Enabled(context.Background(), slog.LevelInfo) {
		diag = io.Discard
	}
	eng := parallel.New(*workers)
	o := experiments.Options{
		Threads: *threads,
		Scale:   *scale,
		Workers: *workers,
		Quick:   *quick,
		Engine:  eng,
	}

	runners := map[string]func(experiments.Options) (tabler, error){
		"tab1":      func(o experiments.Options) (tabler, error) { return experiments.Tab1(o) },
		"fig1":      func(o experiments.Options) (tabler, error) { return experiments.Fig1(o) },
		"fig2":      func(o experiments.Options) (tabler, error) { return experiments.Fig2(o) },
		"fig3":      func(o experiments.Options) (tabler, error) { return experiments.Fig3(o) },
		"fig4":      func(o experiments.Options) (tabler, error) { return experiments.Fig4(o) },
		"fig5":      func(o experiments.Options) (tabler, error) { return experiments.Fig5(o) },
		"fig6":      func(o experiments.Options) (tabler, error) { return experiments.Fig6(o) },
		"tab3":      func(o experiments.Options) (tabler, error) { return experiments.Tab3(o) },
		"tab4":      func(o experiments.Options) (tabler, error) { return experiments.Tab4(o) },
		"tab5":      func(o experiments.Options) (tabler, error) { return experiments.Tab5(o) },
		"fig7":      func(o experiments.Options) (tabler, error) { return experiments.Fig7(o) },
		"tab6":      func(o experiments.Options) (tabler, error) { return experiments.Tab6(o) },
		"scorecard": func(o experiments.Options) (tabler, error) { return experiments.Scorecard(o) },
	}
	order := []string{"scorecard", "tab1", "fig1", "fig2", "fig3", "fig4", "tab3", "fig5", "fig6", "fig7", "tab4", "tab5", "tab6"}

	var names []string
	if *exp == "all" {
		names = order
	} else if _, ok := runners[*exp]; ok {
		names = []string{*exp}
	} else {
		return fmt.Errorf("unknown experiment %q", *exp)
	}

	runSuite := func(tables io.Writer) ([]parallel.TimingRow, parallel.Stats, time.Duration, error) {
		var rows []parallel.TimingRow
		repStart := eng.Stats()
		suiteStart := time.Now()
		for _, name := range names {
			prev := eng.Stats()
			expStart := time.Now()
			res, err := runners[name](o)
			if err != nil {
				return nil, parallel.Stats{}, 0, fmt.Errorf("%s: %w", name, err)
			}
			rows = append(rows, parallel.TimingRow{
				Name: name, Wall: time.Since(expStart), Delta: eng.Stats().Sub(prev),
			})
			tb := res.Table()
			if *csv {
				fmt.Fprint(tables, tb.CSV())
			} else {
				fmt.Fprintln(tables, tb)
			}
		}
		return rows, eng.Stats().Sub(repStart), time.Since(suiteStart), nil
	}

	rows, total, suiteWall, err := runSuite(out)
	if err != nil {
		return err
	}
	// Extra repetitions are timing-only: their tables are byte-identical to
	// the first pass (determinism contract), so they are discarded, and each
	// experiment keeps its best-throughput repetition.
	for rep := 1; rep < *repeat; rep++ {
		again, reTotal, reWall, err := runSuite(io.Discard)
		if err != nil {
			return err
		}
		for i := range rows {
			if again[i].Delta.Throughput() > rows[i].Delta.Throughput() {
				rows[i] = again[i]
			}
		}
		if reWall < suiteWall {
			total, suiteWall = reTotal, reWall
		}
		lg.Debug("bench repetition done", "rep", rep+1, "wall_ms", reWall.Milliseconds())
	}

	if *timing {
		fmt.Fprintln(diag, parallel.TimingTable(eng.Workers(), rows, total, suiteWall))
	}
	if *metrics {
		// Wall-clock-derived engine counters are diagnostics: they go to
		// diag only, through their own registry, never the comparable
		// stdout stream.
		reg := obs.NewRegistry()
		for _, r := range rows {
			r.Delta.Publish(reg, r.Name)
		}
		total.Publish(reg, "suite")
		if err := reg.WriteProm(diag); err != nil {
			return err
		}
	}
	if *benchF != "" || *checkF != "" {
		doc := buildBenchDoc(eng.Workers(), *threads, *scale, *quick, rows, total, suiteWall)
		if *benchF != "" {
			if err := writeBenchJSON(*benchF, doc); err != nil {
				return err
			}
			lg.Info("bench snapshot written", "path", *benchF)
		}
		if *checkF != "" {
			// The diff table always lands on diag; -bench-diff tees it into a
			// file so CI can upload it as an artifact even when the check
			// fails (the file is written before the violation error returns).
			checkOut := diag
			if *diffF != "" {
				f, err := os.Create(*diffF)
				if err != nil {
					return err
				}
				defer f.Close()
				checkOut = io.MultiWriter(diag, f)
			}
			if err := checkBench(checkOut, *checkF, doc, *checkTol); err != nil {
				return err
			}
			lg.Info("bench check passed", "baseline", *checkF, "tolerance", *checkTol)
		}
	}
	return nil
}

// benchEntry is one experiment's timing in the bench-regression snapshot.
type benchEntry struct {
	Name       string  `json:"name"`
	Runs       int     `json:"runs"`
	BusyNS     int64   `json:"busy_ns"`
	WallNS     int64   `json:"wall_ns"`
	Speedup    float64 `json:"speedup"`
	RunsPerSec float64 `json:"runs_per_sec"`
}

// benchDoc is the -bench-json file layout: enough metadata to tell whether
// two snapshots are comparable, then one entry per experiment plus a total.
type benchDoc struct {
	Schema      int          `json:"schema"`
	Workers     int          `json:"workers"`
	Threads     int          `json:"threads"`
	Scale       int          `json:"scale"`
	Quick       bool         `json:"quick"`
	Experiments []benchEntry `json:"experiments"`
	Total       benchEntry   `json:"total"`
}

// buildBenchDoc assembles the bench snapshot from the suite's timing rows.
// The numbers are wall-clock-derived by nature — the document is a bench
// artifact, not a deterministic export, and lives outside the stdout
// byte-equality contract.
func buildBenchDoc(workers, threads, scale int, quick bool,
	rows []parallel.TimingRow, total parallel.Stats, suiteWall time.Duration) benchDoc {
	doc := benchDoc{Schema: 1, Workers: workers, Threads: threads, Scale: scale, Quick: quick}
	for _, r := range rows {
		doc.Experiments = append(doc.Experiments, benchEntry{
			Name:       r.Name,
			Runs:       r.Delta.Jobs,
			BusyNS:     int64(r.Delta.Busy),
			WallNS:     int64(r.Wall),
			Speedup:    r.Delta.Speedup(),
			RunsPerSec: r.Delta.Throughput(),
		})
	}
	doc.Total = benchEntry{
		Name:   "total",
		Runs:   total.Jobs,
		BusyNS: int64(total.Busy),
		WallNS: int64(suiteWall),
	}
	if suiteWall > 0 {
		doc.Total.Speedup = float64(total.Busy) / float64(suiteWall)
		doc.Total.RunsPerSec = float64(total.Jobs) / suiteWall.Seconds()
	}
	return doc
}

// writeBenchJSON saves the snapshot with stable indentation.
func writeBenchJSON(path string, doc benchDoc) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// loadBenchDoc reads a previously written -bench-json snapshot.
func loadBenchDoc(path string) (benchDoc, error) {
	var doc benchDoc
	b, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return doc, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return doc, nil
}

// checkBench compares the current run's throughput against a committed
// baseline. Each experiment's runs_per_sec must land within ±tol of the
// baseline's; a readable diff table always goes to diag, and violations
// are summarized in the returned error so CI logs stay useful even when
// stderr is filtered.
func checkBench(diag io.Writer, baselinePath string, cur benchDoc, tol float64) error {
	base, err := loadBenchDoc(baselinePath)
	if err != nil {
		return err
	}
	if base.Workers != cur.Workers || base.Threads != cur.Threads ||
		base.Scale != cur.Scale || base.Quick != cur.Quick {
		return fmt.Errorf("bench-check: baseline %s (workers=%d threads=%d scale=%d quick=%v) is not comparable to this run (workers=%d threads=%d scale=%d quick=%v)",
			baselinePath, base.Workers, base.Threads, base.Scale, base.Quick,
			cur.Workers, cur.Threads, cur.Scale, cur.Quick)
	}
	baseByName := make(map[string]benchEntry, len(base.Experiments))
	for _, e := range base.Experiments {
		baseByName[e.Name] = e
	}

	tb := stats.NewTable(
		fmt.Sprintf("bench check vs %s (tolerance ±%.0f%%)", baselinePath, 100*tol),
		"experiment", "baseline runs/s", "current runs/s", "delta", "status")
	var violations []string
	compare := func(name string, b, c benchEntry) {
		if b.RunsPerSec <= 0 {
			tb.AddRow(name, "-", fmt.Sprintf("%.1f", c.RunsPerSec), "-", "skipped (no baseline rate)")
			return
		}
		delta := c.RunsPerSec/b.RunsPerSec - 1
		status := "ok"
		if math.Abs(delta) > tol {
			if delta < 0 {
				status = "SLOW"
			} else {
				status = "FAST"
			}
			violations = append(violations,
				fmt.Sprintf("%s: %.1f -> %.1f runs/s (%+.0f%%)", name, b.RunsPerSec, c.RunsPerSec, 100*delta))
		}
		tb.AddRow(name,
			fmt.Sprintf("%.1f", b.RunsPerSec),
			fmt.Sprintf("%.1f", c.RunsPerSec),
			fmt.Sprintf("%+.0f%%", 100*delta),
			status)
	}
	for _, c := range cur.Experiments {
		b, ok := baseByName[c.Name]
		if !ok {
			tb.AddRow(c.Name, "-", fmt.Sprintf("%.1f", c.RunsPerSec), "-", "new (not in baseline)")
			continue
		}
		compare(c.Name, b, c)
	}
	compare("total", base.Total, cur.Total)
	fmt.Fprintln(diag, tb)

	if len(violations) > 0 {
		return fmt.Errorf("bench-check: %d experiment(s) outside the ±%.0f%% band:\n  %s",
			len(violations), 100*tol, joinLines(violations))
	}
	return nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}
