package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig2"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig.2") || !strings.Contains(out, "swaptions") {
		t.Errorf("output:\n%s", out)
	}
}

func TestCSVMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig2", "-csv"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.Contains(first, ",") || strings.Contains(first, "==") {
		t.Errorf("not CSV: %q", first)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig99"}, &buf, io.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestThreadsAndScaleFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig2", "-threads", "2", "-scale", "1"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
}

// TestWorkersByteIdentical is the CLI-level determinism check: the tables a
// parallel run renders must match the serial run byte for byte.
func TestWorkersByteIdentical(t *testing.T) {
	var serial, wide bytes.Buffer
	if err := run([]string{"-exp", "fig4", "-workers", "1"}, &serial, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "fig4", "-workers", "8"}, &wide, io.Discard); err != nil {
		t.Fatal(err)
	}
	if serial.String() != wide.String() {
		t.Errorf("-workers 8 output differs from -workers 1:\n--- serial ---\n%s\n--- workers=8 ---\n%s",
			serial.String(), wide.String())
	}
}

// TestQuickSmokeMode runs the full -quick suite: every experiment's code
// path in a few seconds.
func TestQuickSmokeMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Scorecard", "Tab.1", "Fig.1", "Fig.4", "Tab.3", "Fig.7", "Tab.6"} {
		if !strings.Contains(out, want) {
			t.Errorf("quick output missing %s", want)
		}
	}
}

// TestTimingGoesToDiag checks the timing summary lands on the diagnostic
// stream, never the comparable table stream.
func TestTimingGoesToDiag(t *testing.T) {
	var out, diag bytes.Buffer
	if err := run([]string{"-exp", "fig2"}, &out, &diag); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Harness timing") {
		t.Error("timing summary leaked into table stream")
	}
	d := diag.String()
	if !strings.Contains(d, "Harness timing") || !strings.Contains(d, "TOTAL") {
		t.Errorf("diag stream missing timing summary:\n%s", d)
	}
	var silent bytes.Buffer
	if err := run([]string{"-exp", "fig2", "-timing=false"}, io.Discard, &silent); err != nil {
		t.Fatal(err)
	}
	if silent.Len() != 0 {
		t.Errorf("-timing=false still wrote diagnostics:\n%s", silent.String())
	}
}
