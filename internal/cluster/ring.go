// Package cluster is the horizontal-scale tier in front of N ddserved
// backends: a consistent-hash ring that maps a job's content hash to the
// backend that owns it, health checking that evicts and readmits backends,
// and a forwarding gateway (served by cmd/ddgate) with bounded failover
// retries and optional hedged requests.
//
// Routing is deterministic by design: the ring is seeded purely from
// backend names (SHA-256 of name#vnode), and the routing key is the same
// content hash the service layer uses for result caching. Same key + same
// ring membership ⇒ same backend, which is what makes each backend's
// result cache (and on-disk store) converge on its own shard of the
// keyspace instead of every node caching everything.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
)

// DefaultVNodes is the virtual-node count per backend. 128 points per
// member keeps the keyspace share per backend within a few percent of
// even for small clusters.
const DefaultVNodes = 128

// point is one virtual node on the ring.
type point struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring over named members with virtual nodes.
// Members can be evicted (unroutable, but remembered) and readmitted;
// point positions depend only on member names, so readmission restores
// exactly the keyspace a member owned before eviction.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	known  map[string]bool // member -> active?
	points []point         // active members only, sorted by (hash, member)
}

// NewRing builds an empty ring with the given virtual-node count per
// member (<= 0 means DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, known: make(map[string]bool)}
}

// pointHash places vnode i of a member: the first 8 bytes of
// SHA-256("name#i"), big-endian. Deterministic across processes and
// insertion orders.
func pointHash(member string, i int) uint64 {
	sum := sha256.Sum256([]byte(member + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash places a routing key on the ring. Keys are already content
// hashes (hex SHA-256), but hashing again decouples ring position from
// the key encoding.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts member as active. Re-adding an existing member readmits it.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if active, ok := r.known[member]; ok && active {
		return
	}
	r.known[member] = true
	r.rebuildLocked()
}

// Evict marks member unroutable; its keys redistribute to the surviving
// members until Readmit.
func (r *Ring) Evict(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if active, ok := r.known[member]; !ok || !active {
		return
	}
	r.known[member] = false
	r.rebuildLocked()
}

// Readmit restores an evicted member to exactly its former keyspace.
func (r *Ring) Readmit(member string) { r.Add(member) }

// rebuildLocked regenerates the sorted point list from active members.
// Membership changes are rare (health transitions), so a full rebuild
// keeps Lookup allocation-free and simple.
func (r *Ring) rebuildLocked() {
	r.points = r.points[:0]
	for member, active := range r.known {
		if !active {
			continue
		}
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, point{hash: pointHash(member, i), member: member})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
}

// Lookup returns up to n distinct active members in ring order starting
// clockwise from key's position: the owner first, then the failover
// candidates in the order retries should try them.
func (r *Ring) Lookup(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// Successors returns up to n distinct active members that follow key's
// owner in ring order — the replica set for a replication factor of n+1.
// The owner itself is excluded. Because vnode positions depend only on
// member names (and ties break on member name), a key's successor set is
// stable under unrelated membership changes: adding or removing member X
// never reorders the surviving members relative to each other, it only
// inserts or removes X itself from the walk.
func (r *Ring) Successors(key string, n int) []string {
	m := r.Lookup(key, n+1)
	if len(m) <= 1 {
		return nil
	}
	return m[1:]
}

// Owner returns the single member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if m := r.Lookup(key, 1); len(m) == 1 {
		return m[0]
	}
	return ""
}

// Active returns the sorted active member names.
func (r *Ring) Active() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.known))
	for member, active := range r.known {
		if active {
			out = append(out, member)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns the number of active members.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, active := range r.known {
		if active {
			n++
		}
	}
	return n
}
