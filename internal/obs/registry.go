package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value is
// unusable; obtain one from a Registry. A nil *Counter is a valid no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value integer metric. Because last-writer-wins
// is order-dependent, gauges are for single-writer (per-run or CLI-level)
// use only; the runner publishes counters and histograms exclusively so a
// registry shared across parallel workers stays deterministic. A nil
// *Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's value. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current value. Nil-safe.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution metric. Observations and the
// running sum are held as integers (the sum in millionths), so concurrent
// observation from the parallel engine's workers commutes and exports are
// byte-deterministic — the reason this histogram deliberately stores no
// floats. A nil *Histogram is a valid no-op.
type Histogram struct {
	// bounds are inclusive upper bucket bounds, ascending; an implicit
	// +Inf bucket follows.
	bounds []float64
	// counts has len(bounds)+1 entries; counts[i] tallies observations in
	// (bounds[i-1], bounds[i]], the final entry tallies the +Inf bucket.
	counts []atomic.Uint64
	count  atomic.Uint64
	// sumMicro accumulates observations in integer millionths.
	sumMicro atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample. Negative samples clamp to zero. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMicro.Add(uint64(v * 1e6))
}

// Count returns the number of observations. Nil-safe.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the observation total (rounded to millionths). Nil-safe.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumMicro.Load()) / 1e6
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation inside the containing bucket — the
// same estimator Prometheus's histogram_quantile uses. The first bucket
// interpolates from zero; a rank landing in the +Inf bucket clamps to the
// highest finite bound. Returns 0 when the histogram is empty. Nil-safe.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i, b := range h.bounds {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (b-lo)*frac
		}
		cum += n
	}
	// Rank fell into the +Inf bucket: the best bounded answer is the top
	// finite bound (or the sum/count mean when there are no finite bounds).
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return h.Sum() / float64(total)
}

// Bounds returns the bucket upper bounds. Nil-safe.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCount returns the tally of bucket i (the final index is the +Inf
// bucket). Nil-safe.
func (h *Histogram) BucketCount(i int) uint64 {
	if h == nil {
		return 0
	}
	return h.counts[i].Load()
}

// Registry is a named collection of metrics. Handle lookup (Counter,
// Gauge, Histogram) is get-or-create and mutex-guarded; the returned
// handles update lock-free, cheap enough to leave on in the hot pipeline.
// A nil *Registry is a valid no-op that hands out nil handles, so
// instrumented code never branches on "is telemetry enabled".
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe
// (returns a nil handle).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls may pass nil bounds). Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Merge folds o into r: counters and histogram buckets add, gauges take
// o's value. Call it from a single goroutine, in a deterministic order
// (e.g. submission order of a batch), to keep merged output deterministic.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for name, c := range o.counters {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range o.gauges {
		r.Gauge(name).Set(g.Value())
	}
	for name, h := range o.hists {
		dst := r.Histogram(name, h.bounds)
		for i := range h.counts {
			dst.counts[i].Add(h.counts[i].Load())
		}
		dst.count.Add(h.count.Load())
		dst.sumMicro.Add(h.sumMicro.Load())
	}
}

// HistogramSnapshot condenses one histogram into the numbers a
// time-series sampler keeps per tick: the running count/sum and the
// bucket-interpolated quantiles an operator plots.
type HistogramSnapshot struct {
	Count         uint64
	Sum           float64
	P50, P90, P99 float64
}

// Snapshot is a point-in-time copy of every metric in a registry, the
// input one internal/obs/tsdb tick works from.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies the registry's current values. The copy is not an
// atomic cut across metrics — counters keep moving while it is taken —
// which is fine for its consumer: trend sampling, not invariant checking.
// Nil-safe (returns empty maps).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
	}
	return s
}

// CounterValue returns the named counter's value without creating it.
// Nil-safe.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name].Value()
}

// formatBound renders a histogram bound the same way every time ("g"
// shortest form), keeping exposition byte-stable.
func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

// WriteProm writes the registry in Prometheus text exposition format,
// sorted by metric name so output is byte-deterministic. Values are
// integers (or fixed-precision sums), never wall-clock derived unless the
// caller put wall-clock values in — the runner never does. Nil-safe.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	kind := make(map[string]byte, cap(names))
	for name := range r.counters {
		names = append(names, name)
		kind[name] = 'c'
	}
	for name := range r.gauges {
		names = append(names, name)
		kind[name] = 'g'
	}
	for name := range r.hists {
		names = append(names, name)
		kind[name] = 'h'
	}
	sort.Strings(names)

	for _, name := range names {
		switch kind[name] {
		case 'c':
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, r.counters[name].Value()); err != nil {
				return err
			}
		case 'g':
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, r.gauges[name].Value()); err != nil {
				return err
			}
		case 'h':
			h := r.hists[name]
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
				name, strconv.FormatFloat(h.Sum(), 'f', 6, 64), name, h.count.Load()); err != nil {
				return err
			}
		}
	}
	return nil
}
