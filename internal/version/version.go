// Package version holds the build version stamped into every binary.
//
// Version defaults to "dev" and is overridden at build time:
//
//	go build -ldflags "-X demandrace/internal/version.Version=v1.2.3" ./cmd/...
//
// Every command exposes it through a -version flag. The banner also
// appends whatever the toolchain embedded on its own — the Go runtime
// version and, for builds made inside a git checkout, the VCS revision —
// so a bug report's one-line banner identifies the exact build without
// anyone having to remember -ldflags.
package version

import (
	"runtime/debug"
	"strings"
)

// Version is the build version, overridden via -ldflags.
var Version = "dev"

// String renders the canonical one-line version banner for a binary:
//
//	ddserved version dev (go1.24.0, rev 9c9a3cb0d1e2+dirty)
//
// The parenthetical comes from debug.ReadBuildInfo and is omitted
// entirely when the runtime provides none (e.g. a stripped binary).
func String(binary string) string {
	bi, ok := debug.ReadBuildInfo()
	return binary + " version " + Version + buildSuffix(bi, ok)
}

// buildSuffix renders the "(go…, rev …)" tail from embedded build info.
// Split out so tests can feed synthetic BuildInfo values.
func buildSuffix(bi *debug.BuildInfo, ok bool) string {
	if !ok || bi == nil {
		return ""
	}
	var parts []string
	if v := strings.TrimSpace(bi.GoVersion); v != "" {
		parts = append(parts, v)
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		parts = append(parts, "rev "+rev+dirty)
	}
	if len(parts) == 0 {
		return ""
	}
	return " (" + strings.Join(parts, ", ") + ")"
}
