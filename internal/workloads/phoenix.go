package workloads

import (
	"demandrace/internal/mem"
	"demandrace/internal/program"
)

// The Phoenix suite (Ranger et al., HPCA 2007) is map-reduce on shared
// memory: workers process disjoint input slices with thread-private
// intermediate state, and inter-thread sharing happens almost exclusively
// in short, locked merge phases. That near-zero sharing fraction is why the
// paper's demand-driven detector gains an order of magnitude on this suite.

func init() {
	register(Kernel{Name: "histogram", Suite: "phoenix",
		Sharing: "private bins, one locked merge at end", Build: Histogram})
	register(Kernel{Name: "kmeans", Suite: "phoenix",
		Sharing: "private assignment, locked centroid update per iteration", Build: Kmeans})
	register(Kernel{Name: "linear_regression", Suite: "phoenix",
		Sharing: "private accumulation, tiny locked reduction", Build: LinearRegression})
	register(Kernel{Name: "matrix_multiply", Suite: "phoenix",
		Sharing: "read-shared inputs, private outputs (no write sharing)", Build: MatrixMultiply})
	register(Kernel{Name: "pca", Suite: "phoenix",
		Sharing: "barrier-phased, locked mean/cov accumulation", Build: PCA})
	register(Kernel{Name: "string_match", Suite: "phoenix",
		Sharing: "private scan, rare locked match counter", Build: StringMatch})
	register(Kernel{Name: "word_count", Suite: "phoenix",
		Sharing: "private tables, locked merge of shared table", Build: WordCount})
	register(Kernel{Name: "reverse_index", Suite: "phoenix",
		Sharing: "private extraction, locked shared-index appends", Build: ReverseIndex})
}

// Histogram counts pixel values into thread-private bins and merges them
// into the shared histogram under one lock at the end.
func Histogram(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("histogram")
	elems := 400 * cfg.Scale
	const bins = 32
	inputs := workerArrays(b, cfg.Threads, elems)
	privBins := workerArrays(b, cfg.Threads, bins)
	sharedBins := b.Space().AllocArray(bins, mem.WordSize)
	mu := b.Mutex()
	for t := 0; t < cfg.Threads; t++ {
		tb := b.Thread()
		// Map: read input, bump a private bin.
		tb.Region("map")
		for i := 0; i < elems; i++ {
			tb.Load(inputs[t] + mem.Addr(i*mem.WordSize))
			bin := privBins[t] + mem.Addr((i%bins)*mem.WordSize)
			tb.Load(bin).Store(bin)
		}
		// Reduce: merge private bins into the shared histogram.
		tb.Region("reduce")
		lockedMerge(tb, mu, sharedBins, bins)
	}
	return b.MustBuild()
}

// Kmeans alternates a private assignment phase with a locked centroid
// update, separated by barriers, for a few iterations.
func Kmeans(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("kmeans")
	const iters = 3
	const clusters = 8
	points := 600 * cfg.Scale
	inputs := workerArrays(b, cfg.Threads, points)
	sums := workerArrays(b, cfg.Threads, clusters)
	centroids := b.Space().AllocArray(clusters, mem.WordSize)
	mu := b.Mutex()
	bar := b.Barrier(cfg.Threads)
	tbs := make([]*program.ThreadBuilder, cfg.Threads)
	for t := range tbs {
		tbs[t] = b.Thread()
	}
	for it := 0; it < iters; it++ {
		for t, tb := range tbs {
			// Assignment: read centroids (read-shared), accumulate private
			// sums.
			readSweep(tb, centroids, clusters, 0)
			for i := 0; i < points; i++ {
				tb.Load(inputs[t] + mem.Addr(i*mem.WordSize))
				s := sums[t] + mem.Addr((i%clusters)*mem.WordSize)
				tb.Load(s).Store(s)
				tb.Compute(3)
			}
			tb.Barrier(bar)
			// Update: fold private sums into shared centroids under lock.
			lockedMerge(tb, mu, centroids, clusters)
			tb.Barrier(bar)
		}
	}
	return b.MustBuild()
}

// LinearRegression accumulates five statistics privately over the input and
// folds them into shared accumulators once.
func LinearRegression(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("linear_regression")
	elems := 500 * cfg.Scale
	inputs := workerArrays(b, cfg.Threads, elems)
	acc := workerArrays(b, cfg.Threads, 5)
	shared := b.Space().AllocArray(5, mem.WordSize)
	mu := b.Mutex()
	for t := 0; t < cfg.Threads; t++ {
		tb := b.Thread()
		for i := 0; i < elems; i++ {
			tb.Load(inputs[t] + mem.Addr(i*mem.WordSize))
			a := acc[t] + mem.Addr((i%5)*mem.WordSize)
			tb.Load(a).Store(a)
			tb.Compute(2)
		}
		lockedMerge(tb, mu, shared, 5)
	}
	return b.MustBuild()
}

// MatrixMultiply reads two shared input matrices and writes private output
// rows: all cross-thread sharing is read-only, which the HITM indicator
// correctly ignores.
func MatrixMultiply(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("matrix_multiply")
	n := 8 * cfg.Scale // rows per thread
	const dim = 12
	matA := b.Space().AllocArray(uint64(dim*dim), mem.WordSize)
	matB := b.Space().AllocArray(uint64(dim*dim), mem.WordSize)
	outRows := workerArrays(b, cfg.Threads, n*dim)
	for t := 0; t < cfg.Threads; t++ {
		tb := b.Thread()
		for r := 0; r < n; r++ {
			for c := 0; c < dim; c++ {
				// Dot product: row of A, column of B.
				tb.Load(matA + mem.Addr(((r*dim+c)%(dim*dim))*mem.WordSize))
				tb.Load(matB + mem.Addr(((c*dim+r)%(dim*dim))*mem.WordSize))
				tb.Compute(4)
				tb.Store(outRows[t] + mem.Addr((r*dim+c)*mem.WordSize))
			}
		}
	}
	return b.MustBuild()
}

// PCA computes column means then covariances in two barrier-separated
// phases, folding into shared accumulators under a lock after each phase.
func PCA(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("pca")
	rows := 600 * cfg.Scale
	const cols = 8
	inputs := workerArrays(b, cfg.Threads, rows)
	means := b.Space().AllocArray(cols, mem.WordSize)
	cov := b.Space().AllocArray(cols, mem.WordSize)
	mu := b.Mutex()
	bar := b.Barrier(cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		tb := b.Thread()
		// Phase 1: private row sums → shared means.
		privateSweep(tb, inputs[t], rows, 1)
		lockedMerge(tb, mu, means, cols)
		tb.Barrier(bar)
		// Phase 2: covariance uses the (now read-shared) means.
		readSweep(tb, means, cols, 0)
		privateSweep(tb, inputs[t], rows, 2)
		lockedMerge(tb, mu, cov, cols)
	}
	return b.MustBuild()
}

// StringMatch scans private key chunks and bumps a shared match counter
// under a lock only on (rare) hits.
func StringMatch(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("string_match")
	elems := 2000 * cfg.Scale
	inputs := workerArrays(b, cfg.Threads, elems)
	counter := b.Space().AllocLine(8)
	mu := b.Mutex()
	for t := 0; t < cfg.Threads; t++ {
		tb := b.Thread()
		for i := 0; i < elems; i++ {
			tb.Load(inputs[t] + mem.Addr(i*mem.WordSize))
			tb.Compute(3)
			if i%650 == 649 { // a hit
				lockedUpdate(tb, mu, counter)
			}
		}
	}
	return b.MustBuild()
}

// WordCount builds private count tables and merges them into a shared table
// in a locked reduce phase; the merge is larger than histogram's, so the
// sharing phase is longer.
func WordCount(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("word_count")
	elems := 350 * cfg.Scale
	const table = 64
	inputs := workerArrays(b, cfg.Threads, elems)
	privTables := workerArrays(b, cfg.Threads, table)
	sharedTable := b.Space().AllocArray(table, mem.WordSize)
	mu := b.Mutex()
	for t := 0; t < cfg.Threads; t++ {
		tb := b.Thread()
		for i := 0; i < elems; i++ {
			tb.Load(inputs[t] + mem.Addr(i*mem.WordSize))
			e := privTables[t] + mem.Addr((i%table)*mem.WordSize)
			tb.Load(e).Store(e)
			tb.Compute(1)
		}
		lockedMerge(tb, mu, sharedTable, table)
	}
	return b.MustBuild()
}

// ReverseIndex extracts links from private documents into private link
// lists, then appends each thread's batch to the shared index under a lock
// in one merge phase at the end — the map-reduce phasing of the original.
func ReverseIndex(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("reverse_index")
	docs := 40 * cfg.Scale
	const scanPerDoc = 40
	const linksPerThread = 20
	inputs := workerArrays(b, cfg.Threads, docs*scanPerDoc)
	links := workerArrays(b, cfg.Threads, linksPerThread)
	index := b.Space().AllocArray(256, mem.WordSize)
	tail := b.Space().AllocLine(8)
	mu := b.Mutex()
	for t := 0; t < cfg.Threads; t++ {
		tb := b.Thread()
		// Map: scan documents, record extracted links privately.
		for d := 0; d < docs; d++ {
			for s := 0; s < scanPerDoc; s++ {
				tb.Load(inputs[t] + mem.Addr((d*scanPerDoc+s)*mem.WordSize))
				tb.Compute(2)
			}
			l := links[t] + mem.Addr((d%linksPerThread)*mem.WordSize)
			tb.Store(l)
		}
		// Reduce: append the batch to the shared index.
		tb.Lock(mu)
		for i := 0; i < linksPerThread; i++ {
			tb.Load(tail).Store(tail)
			tb.Store(index + mem.Addr(((t*linksPerThread+i)%256)*mem.WordSize))
		}
		tb.Unlock(mu)
	}
	return b.MustBuild()
}
