package main

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	olog "demandrace/internal/obs/log"
	"demandrace/internal/service"
	"demandrace/internal/version"
)

// logBuffer collects daemon log output for inspection while goroutines
// still write to it.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeSubmitShutdown boots the daemon on a random port, runs one job
// end to end over HTTP, checks the operational surfaces (structured logs,
// /v1/stats percentiles), and exercises the graceful-shutdown path.
func TestServeSubmitShutdown(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	var logs logBuffer
	lg := olog.New(olog.Options{Level: slog.LevelInfo, Format: olog.FormatJSON, Output: &logs})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, options{
			addr:     "127.0.0.1:0",
			addrFile: addrFile,
			drain:    30 * time.Second,
			cfg:      service.Config{Workers: 1, Log: lg},
		})
	}()

	var addr string
	for i := 0; i < 200; i++ {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("daemon never wrote -addr-file")
	}

	cl := &service.Client{BaseURL: "http://" + addr, PollInterval: 5 * time.Millisecond}
	data, st, err := cl.Run(context.Background(), service.Request{Kernel: "racy_flag"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.State != service.StateDone || len(data) == 0 {
		t.Fatalf("job ended %q with %d result bytes", st.State, len(data))
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}

	// /v1/stats must report real percentiles once a job has flowed through.
	sresp, err := http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	var sum service.StatsSummary
	err = json.NewDecoder(sresp.Body).Decode(&sum)
	sresp.Body.Close()
	if err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if sum.Jobs.Completed != 1 || sum.Health != service.HealthOK {
		t.Fatalf("stats jobs/health = %+v / %q", sum.Jobs, sum.Health)
	}
	if len(sum.Endpoints) == 0 || sum.Endpoints[0].Route != "post_jobs" ||
		sum.Endpoints[0].P50MS <= 0 || sum.Endpoints[0].P99MS <= 0 {
		t.Fatalf("post_jobs percentiles not populated: %+v", sum.Endpoints)
	}
	if sum.JobDuration.Count != 1 || sum.JobDuration.P50MS <= 0 {
		t.Fatalf("job duration summary = %+v", sum.JobDuration)
	}

	// Every log line is structured JSON; the startup banner and at least one
	// access line must be present with their key fields.
	var sawBanner, sawAccess bool
	for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		switch rec["msg"] {
		case "ddserved listening":
			sawBanner = rec["addr"] == addr && rec["workers"] == float64(1)
		case "http request":
			if rec["route"] == "post_jobs" {
				sawAccess = rec["method"] == "POST" && rec["status"] == float64(202)
			}
		}
	}
	if !sawBanner || !sawAccess {
		t.Fatalf("banner=%v access=%v in logs:\n%s", sawBanner, sawAccess, logs.String())
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDebugMux checks the opt-in diagnostics surface: pprof's index and the
// expvar JSON dump, wired explicitly rather than via DefaultServeMux.
func TestDebugMux(t *testing.T) {
	ts := httptest.NewServer(debugMux())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET pprof index: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatalf("GET expvar: %v", err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Errorf("expvar dump missing memstats: %v", vars)
	}
}

func TestVersionBanner(t *testing.T) {
	got := version.String("ddserved")
	if !strings.HasPrefix(got, "ddserved version ") || strings.ContainsRune(got, '\n') {
		t.Fatalf("banner %q is not a single 'ddserved version X' line", got)
	}
}
