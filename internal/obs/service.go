package obs

// Canonical metric names for the ddserved service layer. They live here —
// next to the Registry that exports them — so the daemon, its client, and
// the tests agree on one spelling, and so /metrics dashboards survive
// refactors of internal/service.
//
// Naming follows the Prometheus conventions the rest of the repository
// uses: `ddserved_` prefix, `_total` suffix on counters, bare names for
// gauges. Service gauges are single-writer (the daemon's own bookkeeping),
// which is the regime the Gauge type documents as safe.
const (
	// SvcJobsSubmitted counts accepted submissions (cache hits included).
	SvcJobsSubmitted = "ddserved_jobs_submitted_total"
	// SvcJobsCompleted counts jobs that finished with a result.
	SvcJobsCompleted = "ddserved_jobs_completed_total"
	// SvcJobsFailed counts jobs that ended in an execution error.
	SvcJobsFailed = "ddserved_jobs_failed_total"
	// SvcJobsCanceled counts jobs stopped by deadline or cancellation.
	SvcJobsCanceled = "ddserved_jobs_canceled_total"
	// SvcJobsRejected counts submissions bounced by backpressure (HTTP 429)
	// or refused during drain (HTTP 503).
	SvcJobsRejected = "ddserved_jobs_rejected_total"

	// SvcCacheHits / SvcCacheMisses / SvcCacheEvictions instrument the
	// content-addressed result cache.
	SvcCacheHits      = "ddserved_cache_hits_total"
	SvcCacheMisses    = "ddserved_cache_misses_total"
	SvcCacheEvictions = "ddserved_cache_evictions_total"

	// SvcHTTPRequests counts every request the API mux serves.
	SvcHTTPRequests = "ddserved_http_requests_total"

	// SvcQueueDepth is the current number of queued (not yet running) jobs.
	SvcQueueDepth = "ddserved_queue_depth"
	// SvcJobsInflight is the current number of running jobs.
	SvcJobsInflight = "ddserved_jobs_inflight"
)
