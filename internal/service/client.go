package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"demandrace/internal/obs/tracectx"
)

// Options is the client-side timeout/retry policy, shared by everything
// that calls a ddserved node over HTTP: `ddrace -submit`, the ddgate
// gateway's per-backend forwards, and the gateway's stats aggregation.
// It lives here — next to the Client — so retry behavior has exactly one
// implementation.
//
// The zero value means "one attempt, no per-attempt deadline", which is
// the pre-Options behavior.
type Options struct {
	// Timeout bounds each individual attempt (0 = no per-attempt bound;
	// the caller's context still applies).
	Timeout time.Duration
	// Retries is the number of extra attempts after the first when an
	// attempt fails transiently (0 = fail fast).
	Retries int
	// Backoff is the delay before the first retry, doubling per retry
	// with ±50% jitter (default 100ms when Retries > 0).
	Backoff time.Duration
}

// BackoffFor returns the jittered delay before retry attempt (0-based):
// base<<attempt, scaled by a random factor in [0.5, 1.5). Jitter is
// wall-clock operational behavior, so math/rand is fine here — nothing in
// the retry path feeds deterministic exports.
func (o Options) BackoffFor(attempt int) time.Duration {
	base := o.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if attempt > 10 {
		attempt = 10 // cap the doubling well short of overflow
	}
	d := base << uint(attempt)
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Sleep waits out BackoffFor(attempt), honoring a floor (e.g. an upstream
// Retry-After) and ctx cancellation.
func (o Options) Sleep(ctx context.Context, attempt int, floor time.Duration) error {
	d := o.BackoffFor(attempt)
	if floor > d {
		d = floor
	}
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Retryable reports whether an attempt outcome warrants another try:
// transport errors (when the caller's context is still live) and the
// upstream-overload status codes. 429 is retryable from a client's point
// of view — the queue will drain — which is why the returned APIError
// carries Retry-After for Sleep's floor.
func (o Options) Retryable(ctx context.Context, err error, status int) bool {
	if err != nil {
		return ctx.Err() == nil
	}
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Client talks to a ddserved daemon or a ddgate gateway — the API surface
// is identical, so the same client works against either. The zero value
// is not usable; set BaseURL (e.g. "http://127.0.0.1:8318").
type Client struct {
	// BaseURL is the daemon's root URL, without a trailing slash.
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval paces Wait's status polling (default 50ms).
	PollInterval time.Duration
	// Options is the timeout/retry policy for every call this client
	// makes. Retrying a submission is safe: jobs are content-addressed
	// and pure, so a duplicate submit is at worst a cache hit.
	Options Options
	// APIKey, when set, is sent as X-API-Key on every request. Required
	// against daemons running with -tenants; ignored otherwise.
	APIKey string
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Code    int
	Message string
	// RetryAfter echoes the Retry-After header on 429/503 (seconds, 0 if
	// absent), so callers can implement backoff.
	RetryAfter int
	// Tenant echoes the X-DD-Tenant header a multi-tenant daemon stamps
	// on its answers — on a 429 it names whose admission budget ran out.
	Tenant string
}

func (e *APIError) Error() string {
	// Surface the server's pacing hint in the message itself: when a 413
	// or 429 bubbles all the way to a user, "retry after Ns" is the
	// actionable part — and under -tenants, whose budget it was.
	if e.Code == http.StatusTooManyRequests && e.Tenant != "" {
		return fmt.Sprintf("service: daemon returned %d for tenant %q: %s (retry after %ds)",
			e.Code, e.Tenant, e.Message, e.RetryAfter)
	}
	if e.RetryAfter > 0 {
		return fmt.Sprintf("service: daemon returned %d: %s (retry after %ds)",
			e.Code, e.Message, e.RetryAfter)
	}
	return fmt.Sprintf("service: daemon returned %d: %s", e.Code, e.Message)
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// reply is one fully-read HTTP response.
type reply struct {
	status int
	header http.Header
	body   []byte
}

// err maps a non-2xx reply onto an *APIError.
func (r reply) err() error {
	var body struct {
		Error string `json:"error"`
	}
	json.Unmarshal(r.body, &body)
	if body.Error == "" {
		body.Error = http.StatusText(r.status)
	}
	return &APIError{
		Code:       r.status,
		Message:    body.Error,
		RetryAfter: retryAfterSeconds(r.header),
		Tenant:     r.header.Get("X-DD-Tenant"),
	}
}

// retryAfterSeconds parses a Retry-After header, which HTTP allows in two
// forms: delta-seconds ("2") or an HTTP-date ("Mon, 02 Jan 2006 15:04:05
// GMT"). Dates become the whole seconds remaining until that instant,
// rounded up so a sub-second wait still registers; past dates and
// unparseable values yield 0.
func retryAfterSeconds(h http.Header) int {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if n, err := strconv.Atoi(v); err == nil {
		if n < 0 {
			return 0
		}
		return n
	}
	if t, err := http.ParseTime(v); err == nil {
		d := time.Until(t)
		if d <= 0 {
			return 0
		}
		return int((d + time.Second - 1) / time.Second)
	}
	return 0
}

// roundTrip issues build's request under the client's Options: each
// attempt gets its own per-attempt deadline, transient failures back off
// (honoring Retry-After) and retry, and the final response is returned
// fully read. build is called once per attempt so request bodies replay.
func (c *Client) roundTrip(ctx context.Context, build func(ctx context.Context) (*http.Request, error)) (reply, error) {
	var (
		last    reply
		lastErr error
	)
	for attempt := 0; ; attempt++ {
		last, lastErr = c.attempt(ctx, build)
		if lastErr == nil && last.status < 300 {
			return last, nil
		}
		if attempt >= c.Options.Retries || !c.Options.Retryable(ctx, lastErr, last.status) {
			break
		}
		floor := time.Duration(retryAfterSeconds(last.header)) * time.Second
		if err := c.Options.Sleep(ctx, attempt, floor); err != nil {
			break
		}
	}
	if lastErr != nil {
		return reply{}, lastErr
	}
	return last, last.err()
}

// attempt performs one request/response cycle, reading the body in full.
func (c *Client) attempt(ctx context.Context, build func(ctx context.Context) (*http.Request, error)) (reply, error) {
	actx := ctx
	cancel := func() {}
	if c.Options.Timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, c.Options.Timeout)
	}
	defer cancel()
	req, err := build(actx)
	if err != nil {
		return reply{}, err
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	// Propagate the caller's trace context, one child span per attempt, so
	// retries are distinguishable hops under the same trace ID.
	if tc, ok := tracectx.From(ctx); ok {
		req.Header.Set(tracectx.Header, tc.Child().String())
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return reply{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return reply{}, fmt.Errorf("service: reading daemon response: %w", err)
	}
	return reply{status: resp.StatusCode, header: resp.Header, body: body}, nil
}

// doStatus runs a request whose success body is a Status document.
func (c *Client) doStatus(ctx context.Context, build func(ctx context.Context) (*http.Request, error)) (Status, error) {
	r, err := c.roundTrip(ctx, build)
	if err != nil {
		return Status{}, err
	}
	var st Status
	if err := json.Unmarshal(r.body, &st); err != nil {
		return Status{}, fmt.Errorf("service: decoding daemon response: %w", err)
	}
	return st, nil
}

// Submit posts a kernel-analysis request.
func (c *Client) Submit(ctx context.Context, r Request) (Status, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return Status{}, err
	}
	return c.doStatus(ctx, func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.BaseURL+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
}

// SubmitTrace posts a binary trace for offline replay. The trace is read
// into memory up front so retries can replay the body.
func (c *Client) SubmitTrace(ctx context.Context, tr io.Reader, opts TraceOptions) (Status, error) {
	raw, err := io.ReadAll(tr)
	if err != nil {
		return Status{}, fmt.Errorf("service: reading trace: %w", err)
	}
	u := c.BaseURL + "/v1/jobs"
	if q := traceOptionsQuery(opts); q != "" {
		u += "?" + q
	}
	return c.doStatus(ctx, func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", TraceContentType)
		return req, nil
	})
}

// get builds a plain GET against path (already escaped).
func (c *Client) get(path string) func(ctx context.Context) (*http.Request, error) {
	return func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	}
}

// Status fetches a job's current state.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	return c.doStatus(ctx, c.get("/v1/jobs/"+url.PathEscape(id)))
}

// Result fetches a done job's result JSON.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	r, err := c.roundTrip(ctx, c.get("/v1/results/"+url.PathEscape(id)))
	if err != nil {
		return nil, err
	}
	if r.status != http.StatusOK {
		return nil, r.err()
	}
	return r.body, nil
}

// JobTrace fetches a job's recorded waterfall — the Chrome trace-event
// JSON served at GET /v1/jobs/{id}/trace — as raw bytes, ready to save
// for chrome://tracing or Perfetto.
func (c *Client) JobTrace(ctx context.Context, id string) ([]byte, error) {
	r, err := c.roundTrip(ctx, c.get("/v1/jobs/"+url.PathEscape(id)+"/trace"))
	if err != nil {
		return nil, err
	}
	return r.body, nil
}

// Stats fetches the node's GET /v1/stats document.
func (c *Client) Stats(ctx context.Context) (StatsSummary, error) {
	r, err := c.roundTrip(ctx, c.get("/v1/stats"))
	if err != nil {
		return StatsSummary{}, err
	}
	var sum StatsSummary
	if err := json.Unmarshal(r.body, &sum); err != nil {
		return StatsSummary{}, fmt.Errorf("service: decoding stats: %w", err)
	}
	return sum, nil
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string) (Status, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return Status{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Run submits a request, waits for completion, and fetches the result —
// the whole ddrace -submit round trip. A failed or canceled job returns
// its terminal Status alongside the error.
func (c *Client) Run(ctx context.Context, r Request) ([]byte, Status, error) {
	st, err := c.Submit(ctx, r)
	if err != nil {
		return nil, st, err
	}
	if st, err = c.Wait(ctx, st.ID); err != nil {
		return nil, st, err
	}
	if st.State != StateDone {
		return nil, st, fmt.Errorf("service: job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	data, err := c.Result(ctx, st.ID)
	return data, st, err
}
