package watchpoint

import (
	"testing"
	"testing/quick"

	"demandrace/internal/mem"
)

func TestWatchAndCheck(t *testing.T) {
	u := New(4)
	u.Watch(1)
	if !u.Check(1) {
		t.Error("armed line not covered")
	}
	if u.Check(2) {
		t.Error("unarmed line covered")
	}
	st := u.Stats()
	if st.Sets != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDefaultCapacity(t *testing.T) {
	u := New(0)
	if u.Capacity() != DefaultCapacity {
		t.Errorf("capacity = %d", u.Capacity())
	}
}

func TestWatchRefreshesExisting(t *testing.T) {
	u := New(2)
	u.Watch(1)
	u.Watch(1)
	if u.Len() != 1 {
		t.Errorf("len = %d", u.Len())
	}
	st := u.Stats()
	if st.Sets != 1 || st.Refreshes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCapacityEvictsStalest(t *testing.T) {
	u := New(2)
	u.Watch(1)
	u.Tick(100) // line 1 ages
	u.Watch(2)  // fresh
	u.Watch(3)  // full: evicts line 1 (stalest)
	if u.Watching(1) {
		t.Error("stalest entry survived eviction")
	}
	if !u.Watching(2) || !u.Watching(3) {
		t.Error("fresh entries lost")
	}
	if u.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", u.Stats().Evictions)
	}
}

func TestTickExpires(t *testing.T) {
	u := New(4)
	u.Watch(1)
	u.Watch(2)
	u.Tick(2)
	u.Check(2) // refresh line 2
	u.Tick(2)
	u.Tick(2) // line 1 age 3 > 2 → expire; line 2 age 2 survives
	if u.Watching(1) {
		t.Error("line 1 should have expired")
	}
	if !u.Watching(2) {
		t.Error("line 2 expired despite refresh")
	}
	if u.Stats().Expirations != 1 {
		t.Errorf("expirations = %d", u.Stats().Expirations)
	}
}

func TestCheckRefreshesAge(t *testing.T) {
	u := New(4)
	u.Watch(1)
	for i := 0; i < 10; i++ {
		u.Tick(3)
		if !u.Check(1) {
			t.Fatal("hot line expired")
		}
	}
}

func TestClear(t *testing.T) {
	u := New(4)
	u.Watch(1)
	u.Watch(2)
	u.Clear()
	if u.Len() != 0 {
		t.Error("clear left entries")
	}
}

func TestNeverExceedsCapacity(t *testing.T) {
	f := func(lines []uint8, capacity uint8) bool {
		c := int(capacity%6) + 1
		u := New(c)
		for _, l := range lines {
			u.Watch(mem.Line(l % 32))
			if u.Len() > c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWatchingDoesNotRefresh(t *testing.T) {
	u := New(4)
	u.Watch(1)
	u.Tick(2)
	u.Tick(2)
	if !u.Watching(1) {
		t.Fatal("entry missing")
	}
	u.Tick(2) // age 3 > 2 → expires even though Watching was called
	if u.Watching(1) {
		t.Error("Watching should not have refreshed the entry")
	}
}

func TestString(t *testing.T) {
	u := New(4)
	u.Watch(9)
	if got := u.String(); got != "watchpoints 1/4 armed" {
		t.Errorf("String = %q", got)
	}
}
