// Package experiments regenerates every table and figure of the paper's
// evaluation (as reconstructed in DESIGN.md). Each experiment is a function
// returning a structured result with a Table() renderer; cmd/experiments
// prints them and bench_test.go wraps each in a testing.B benchmark.
//
// Every experiment is a fan-out of independent simulation runs — each run
// owns its program, scheduler seed, and cache hierarchy — so all of them
// execute their runs through internal/parallel's worker pool. Results are
// merged in submission order, which keeps every rendered table byte-for-byte
// identical to a serial execution regardless of Options.Workers (the
// determinism regression test in determinism_test.go pins this down).
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Fig1  – motivation: slowdown of continuous happens-before analysis
//	Fig2  – fraction of memory accesses that are cache-visible sharing
//	Fig3  – HITM-indicator fidelity microbenchmarks
//	Fig4  – headline: demand-driven speedup over continuous analysis
//	Tab3  – detection accuracy: injected races found, demand vs continuous
//	Fig5  – speedup scaling with thread count
//	Fig6  – trigger-policy and scope ablation
//	Tab4  – PMU parameter sensitivity (sample-after value, skid)
package experiments

import (
	"context"
	"fmt"

	"demandrace/internal/demand"
	"demandrace/internal/parallel"
	"demandrace/internal/program"
	"demandrace/internal/runner"
	"demandrace/internal/stats"
	"demandrace/internal/workloads"
)

// Options sizes all experiments.
type Options struct {
	// Threads is the worker count for kernels (default 4).
	Threads int
	// Scale is the workload scale factor (default 1).
	Scale int
	// Workers bounds the fan-out of independent simulation runs
	// (default runtime.NumCPU(); 1 forces a serial loop). Any value
	// produces byte-identical tables — see the package comment.
	Workers int
	// Quick trims kernel sets and seed counts to a smoke-test subset that
	// exercises every experiment's code path in seconds. Quick tables are
	// internally deterministic but not comparable to full-suite output.
	Quick bool
	// Engine, when non-nil, runs the fan-out and accumulates wall-clock /
	// throughput stats across experiments (cmd/experiments shares one
	// engine over the whole suite and reports it). When nil, a private
	// engine is built from Workers.
	Engine *parallel.Engine
}

func (o Options) normalized() Options {
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Engine == nil {
		o.Engine = parallel.New(o.Workers)
	}
	return o
}

func (o Options) kernelConfig() workloads.Config {
	return workloads.Config{Threads: o.Threads, Scale: o.Scale}
}

// fanOut runs fn(i) for i in [0,n) on the options' engine and returns the
// results in submission order — the deterministic-aggregation primitive
// every experiment builds on. Call on normalized Options only.
func fanOut[T any](o Options, n int, fn func(i int) (T, error)) ([]T, error) {
	return parallel.Map(nil, o.Engine, n, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}

// quickSuite is the Quick-mode kernel subset: two Phoenix-class and four
// PARSEC-class kernels spanning the sharing spectrum (including the
// headline best-speedup kernel and the high-sharing tail).
var quickSuite = []string{"histogram", "word_count", "blackscholes", "swaptions", "streamcluster", "canneal"}

// suiteKernels returns the evaluation kernels (phoenix + parsec suites),
// trimmed to quickSuite when o.Quick is set.
func suiteKernels(o Options) []workloads.Kernel {
	all := append(workloads.Suite("phoenix"), workloads.Suite("parsec")...)
	if !o.Quick {
		return all
	}
	want := map[string]bool{}
	for _, n := range quickSuite {
		want[n] = true
	}
	var out []workloads.Kernel
	for _, k := range all {
		if want[k.Name] {
			out = append(out, k)
		}
	}
	return out
}

// quickSeeds trims a seed count in Quick mode.
func (o Options) quickSeeds(full int) int {
	if o.Quick && full > 2 {
		return 2
	}
	return full
}

func runKernel(k workloads.Kernel, o Options, pol demand.PolicyKind) (*runner.Report, error) {
	p := k.Build(o.kernelConfig())
	r, err := runner.Run(p, runner.DefaultConfig().WithPolicy(pol))
	if err != nil {
		return nil, fmt.Errorf("experiments: %s under %v: %w", k.Name, pol, err)
	}
	return r, nil
}

// geoBySuite computes per-suite geometric means from parallel slices.
func geoBySuite(kernels []workloads.Kernel, vals []float64) map[string]float64 {
	bySuite := map[string][]float64{}
	for i, k := range kernels {
		bySuite[k.Suite] = append(bySuite[k.Suite], vals[i])
	}
	out := map[string]float64{}
	for s, xs := range bySuite {
		out[s] = stats.Geomean(xs)
	}
	return out
}

// Fig1 — motivation: per-kernel slowdown of continuous analysis relative to
// native execution. The paper's figure 1 equivalent: tens to hundreds of ×.
type Fig1Result struct {
	Kernels   []workloads.Kernel
	Slowdowns []float64
	// Geomean maps suite → geometric-mean slowdown.
	Geomean map[string]float64
}

// Fig1 runs every evaluation kernel under continuous analysis.
func Fig1(o Options) (*Fig1Result, error) {
	o = o.normalized()
	ks := suiteKernels(o)
	slowdowns, err := fanOut(o, len(ks), func(i int) (float64, error) {
		r, err := runKernel(ks[i], o, demand.Continuous)
		if err != nil {
			return 0, err
		}
		return r.Slowdown, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig1Result{Kernels: ks, Slowdowns: slowdowns, Geomean: geoBySuite(ks, slowdowns)}, nil
}

// Table renders the result.
func (r *Fig1Result) Table() *stats.Table {
	tb := stats.NewTable("Fig.1 — slowdown of continuous happens-before analysis",
		"kernel", "suite", "slowdown (×)")
	for i, k := range r.Kernels {
		tb.AddRowf(k.Name, k.Suite, r.Slowdowns[i])
	}
	tb.AddRowf("GEOMEAN phoenix", "phoenix", r.Geomean["phoenix"])
	tb.AddRowf("GEOMEAN parsec", "parsec", r.Geomean["parsec"])
	return tb
}

// Fig2 — how rare is sharing: fraction of data accesses served by a remote
// Modified line (HITM) and by any peer cache, per kernel.
type Fig2Result struct {
	Kernels  []workloads.Kernel
	HITMFrac []float64
	PeerFrac []float64
	MemOps   []uint64
}

// Fig2 profiles sharing with the tool disabled (native execution).
func Fig2(o Options) (*Fig2Result, error) {
	o = o.normalized()
	ks := suiteKernels(o)
	type profile struct {
		hitm, peer float64
		memOps     uint64
	}
	profiles, err := fanOut(o, len(ks), func(i int) (profile, error) {
		r, err := runKernel(ks[i], o, demand.Off)
		if err != nil {
			return profile{}, err
		}
		p := profile{hitm: r.SharingFraction(), memOps: r.MemOps}
		if r.MemOps > 0 {
			p.peer = float64(r.SharedPeer) / float64(r.MemOps)
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{Kernels: ks}
	for _, p := range profiles {
		res.HITMFrac = append(res.HITMFrac, p.hitm)
		res.PeerFrac = append(res.PeerFrac, p.peer)
		res.MemOps = append(res.MemOps, p.memOps)
	}
	return res, nil
}

// Table renders the result.
func (r *Fig2Result) Table() *stats.Table {
	tb := stats.NewTable("Fig.2 — fraction of memory accesses participating in sharing",
		"kernel", "suite", "mem ops", "HITM %", "any-peer %")
	for i, k := range r.Kernels {
		tb.AddRow(k.Name, k.Suite,
			fmt.Sprintf("%d", r.MemOps[i]),
			fmt.Sprintf("%.3f", 100*r.HITMFrac[i]),
			fmt.Sprintf("%.3f", 100*r.PeerFrac[i]))
	}
	return tb
}

// Fig4 — the headline result: slowdown under the demand-driven policy vs
// continuous analysis, and the speedup between them.
type Fig4Result struct {
	Kernels    []workloads.Kernel
	Continuous []float64
	Demand     []float64
	Speedup    []float64
	// GeomeanSpeedup maps suite → geometric-mean speedup.
	GeomeanSpeedup map[string]float64
	// Best is the kernel with the largest speedup (the paper's "51× for
	// one particular program").
	Best        string
	BestSpeedup float64
}

// Fig4 runs every evaluation kernel under both policies.
func Fig4(o Options) (*Fig4Result, error) {
	o = o.normalized()
	ks := suiteKernels(o)
	type pair struct{ cont, dem float64 }
	pairs, err := fanOut(o, len(ks), func(i int) (pair, error) {
		p := ks[i].Build(o.kernelConfig())
		reps, err := runner.RunPolicies(p, runner.DefaultConfig(),
			demand.Continuous, demand.HITMDemand)
		if err != nil {
			return pair{}, err
		}
		return pair{cont: reps[0].Slowdown, dem: reps[1].Slowdown}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Kernels: ks}
	for i, pr := range pairs {
		sp := pr.cont / pr.dem
		res.Continuous = append(res.Continuous, pr.cont)
		res.Demand = append(res.Demand, pr.dem)
		res.Speedup = append(res.Speedup, sp)
		if sp > res.BestSpeedup {
			res.BestSpeedup = sp
			res.Best = ks[i].Name
		}
	}
	res.GeomeanSpeedup = geoBySuite(ks, res.Speedup)
	return res, nil
}

// Table renders the result.
func (r *Fig4Result) Table() *stats.Table {
	tb := stats.NewTable("Fig.4/Tab.2 — demand-driven analysis vs continuous analysis",
		"kernel", "suite", "continuous (×)", "demand (×)", "speedup (×)")
	for i, k := range r.Kernels {
		tb.AddRowf(k.Name, k.Suite, r.Continuous[i], r.Demand[i], r.Speedup[i])
	}
	tb.AddRowf("GEOMEAN phoenix", "phoenix", "", "", r.GeomeanSpeedup["phoenix"])
	tb.AddRowf("GEOMEAN parsec", "parsec", "", "", r.GeomeanSpeedup["parsec"])
	tb.AddRowf("BEST ("+r.Best+")", "", "", "", r.BestSpeedup)
	return tb
}

// Fig5 — speedup scaling with thread count on representative kernels.
type Fig5Result struct {
	Kernels      []string
	ThreadCounts []int
	// Speedup[k][t] is kernel k's demand-vs-continuous speedup at
	// ThreadCounts[t].
	Speedup [][]float64
}

// Fig5 sweeps thread counts on a low-sharing, a moderate, and a
// high-sharing kernel. The (kernel × thread-count) grid is flattened into
// one fan-out so every cell runs concurrently.
func Fig5(o Options) (*Fig5Result, error) {
	o = o.normalized()
	res := &Fig5Result{
		Kernels:      []string{"swaptions", "histogram", "streamcluster", "canneal"},
		ThreadCounts: []int{1, 2, 4, 8, 16},
	}
	if o.Quick {
		res.Kernels = []string{"swaptions", "canneal"}
		res.ThreadCounts = []int{1, 4, 16}
	}
	nt := len(res.ThreadCounts)
	cells, err := fanOut(o, len(res.Kernels)*nt, func(i int) (float64, error) {
		name, th := res.Kernels[i/nt], res.ThreadCounts[i%nt]
		k, ok := workloads.ByName(name)
		if !ok {
			return 0, fmt.Errorf("experiments: kernel %q missing", name)
		}
		p := k.Build(workloads.Config{Threads: th, Scale: o.Scale})
		cfg := runner.DefaultConfig()
		// Give the machine enough contexts for the thread count.
		if th > cfg.Cache.Cores {
			cfg.Cache.Cores = th
		}
		reps, err := runner.RunPolicies(p, cfg, demand.Continuous, demand.HITMDemand)
		if err != nil {
			return 0, err
		}
		return reps[0].Slowdown / reps[1].Slowdown, nil
	})
	if err != nil {
		return nil, err
	}
	for i := range res.Kernels {
		res.Speedup = append(res.Speedup, cells[i*nt:(i+1)*nt])
	}
	return res, nil
}

// Table renders the result.
func (r *Fig5Result) Table() *stats.Table {
	headers := []string{"kernel"}
	for _, t := range r.ThreadCounts {
		headers = append(headers, fmt.Sprintf("%dT", t))
	}
	tb := stats.NewTable("Fig.5 — demand-driven speedup vs thread count", headers...)
	for i, k := range r.Kernels {
		cells := []string{k}
		for _, s := range r.Speedup[i] {
			cells = append(cells, fmt.Sprintf("%.2f", s))
		}
		tb.AddRow(cells...)
	}
	return tb
}

// buildProgram is a helper for experiments needing raw programs.
func buildProgram(name string, o Options) (*program.Program, error) {
	k, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: kernel %q missing", name)
	}
	return k.Build(o.kernelConfig()), nil
}
