package cluster

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"demandrace/internal/obs"
	"demandrace/internal/obs/alert"
	olog "demandrace/internal/obs/log"
	"demandrace/internal/obs/stream"
	"demandrace/internal/obs/tracectx"
	"demandrace/internal/obs/tsdb"
	"demandrace/internal/replica"
	"demandrace/internal/service"
	"demandrace/internal/tenant"
)

// Config shapes a Gateway. Zero fields take defaults.
type Config struct {
	// Backends is the cluster membership, in any order (ring placement
	// depends only on names). Required, non-empty, unique names.
	Backends []Backend
	// VNodes is the virtual-node count per backend (default DefaultVNodes).
	VNodes int
	// Retry is the forward policy: Retries bounds how many *additional*
	// replicas a failed submission tries, Backoff paces them (exponential
	// + jitter via Options.BackoffFor), and Timeout bounds each upstream
	// attempt. Defaults: 2 retries, 100ms backoff, 2m attempt timeout.
	Retry service.Options
	// HedgeAfter launches a hedged duplicate of a submission to the next
	// replica when the owner hasn't answered within this threshold; the
	// first response wins and the loser is canceled through its context
	// (0 disables hedging).
	HedgeAfter time.Duration
	// ProbeInterval paces the background health probes (default 1s);
	// ProbeTimeout bounds each probe (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailAfter is the consecutive probe failures before a backend is
	// evicted from the ring (default 2).
	FailAfter int
	// MaxBodyBytes bounds request bodies buffered for replay (default
	// 64 MiB, matching ddserved's trace cap).
	MaxBodyBytes int64
	// StatsTimeout bounds each per-backend fetch during /v1/stats and
	// /v1/timeseries aggregation, so one hung backend cannot hold the
	// fleet document hostage (default 2s). Unreachable backends are
	// reported as partial results with a stats_errors count.
	StatsTimeout time.Duration
	// TSInterval and TSRetention shape the gateway's own metrics history
	// behind GET /v1/timeseries (defaults 5s and 1h).
	TSInterval  time.Duration
	TSRetention time.Duration
	// AlertRules overrides the gateway's compiled-in ring-level alert
	// rules (ddgate -alert-rules). Nil takes alert.GatewayDefaults over
	// the configured backends. Invalid rule sets fail NewGateway.
	AlertRules []alert.Rule
	// AlertHistory bounds the resolved-alert history served by
	// GET /v1/alerts (default alert.DefaultHistory).
	AlertHistory int
	// Replicas is the replication factor R (ddgate -replicas): each sealed
	// result is kept on its ring owner plus R−1 successors, copied
	// asynchronously over the backends' /v1/cache endpoints. Values <= 1
	// disable replication.
	Replicas int
	// Tenants, when non-empty, turns on edge admission (ddgate -tenants):
	// every submission must carry a known X-API-Key and is held to its
	// tenant's token bucket before any backend round trip.
	Tenants []tenant.Config
	// Node names this gateway in /v1/stats (default "ddgate").
	Node string
	// Registry receives gateway metrics. Nil builds a private one.
	Registry *obs.Registry
	// Log receives operational logs. Nil discards them.
	Log *slog.Logger
	// HTTPClient is the upstream transport (default http.DefaultClient).
	HTTPClient *http.Client
}

func (c Config) normalized() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Retry.Retries == 0 {
		c.Retry.Retries = 2
	}
	if c.Retry.Backoff <= 0 {
		c.Retry.Backoff = 100 * time.Millisecond
	}
	if c.Retry.Timeout <= 0 {
		c.Retry.Timeout = 2 * time.Minute
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.StatsTimeout <= 0 {
		c.StatsTimeout = 2 * time.Second
	}
	if c.Node == "" {
		c.Node = "ddgate"
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Log == nil {
		c.Log = olog.Discard()
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	return c
}

// Gateway fronts a set of ddserved backends with the same API surface a
// single node exposes, so service.Client and `ddrace -submit` work
// unchanged against either. Submissions route by content hash on the
// consistent-hash ring; job polls route to the owning backend encoded in
// the job ID ("<backend>:<remote id>").
type Gateway struct {
	cfg      Config
	ring     *Ring
	backends []*backend // configured order, for stable stats rows
	byName   map[string]*backend
	client   *http.Client
	reg      *obs.Registry
	log      *slog.Logger
	start    time.Time
	bus      *stream.Bus
	ts       *tsdb.DB
	traces   *traceStore
	alerts   *alert.Engine
	replica  *replica.Replicator // nil when replication is off
	tenants  *tenant.Registry    // nil when tenancy is off
	jobKeys  *keyIndex

	stopOnce sync.Once
	stop     chan struct{}
	stopped  chan struct{}
	tailWG   sync.WaitGroup
	started  bool

	// sessionSeq rotates streaming-upload session placement over the ring
	// (see handleTraceOpen).
	sessionSeq atomic.Uint64

	cRequests  *obs.Counter
	cForwards  *obs.Counter
	cRetries   *obs.Counter
	cHedges    *obs.Counter
	cHedgeWins *obs.Counter
	cErrors    *obs.Counter
	gRing      *obs.Gauge
}

// NewGateway validates cfg and builds a stopped gateway; call Start to
// launch the health-probe loop (or drive ProbeNow manually). All backends
// start admitted and healthy — the first probes correct that within
// FailAfter intervals.
func NewGateway(cfg Config) (*Gateway, error) {
	cfg = cfg.normalized()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: gateway needs at least one backend")
	}
	g := &Gateway{
		cfg:    cfg,
		ring:   NewRing(cfg.VNodes),
		byName: make(map[string]*backend, len(cfg.Backends)),
		client: cfg.HTTPClient,
		reg:    cfg.Registry,
		log:    cfg.Log,
		start:  time.Now(),
		bus:    stream.NewBus(cfg.Node),
		traces: newTraceStore(defaultTraceStoreCap),
		ts: tsdb.New(tsdb.Options{
			Registry:  cfg.Registry,
			Node:      cfg.Node,
			Interval:  cfg.TSInterval,
			Retention: cfg.TSRetention,
			Runtime:   true,
		}),
		stop:       make(chan struct{}),
		stopped:    make(chan struct{}),
		cRequests:  cfg.Registry.Counter(obs.GateRequests),
		cForwards:  cfg.Registry.Counter(obs.GateForwards),
		cRetries:   cfg.Registry.Counter(obs.GateRetries),
		cHedges:    cfg.Registry.Counter(obs.GateHedges),
		cHedgeWins: cfg.Registry.Counter(obs.GateHedgeWins),
		cErrors:    cfg.Registry.Counter(obs.GateErrors),
		gRing:      cfg.Registry.Gauge(obs.GateRingMembers),
	}
	for _, b := range cfg.Backends {
		if b.Name == "" || b.URL == "" {
			return nil, fmt.Errorf("cluster: backend needs both name and URL (%+v)", b)
		}
		if _, dup := g.byName[b.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate backend name %q", b.Name)
		}
		nb := &backend{
			Backend:  b,
			health:   HealthOK,
			cForward: cfg.Registry.Counter(obs.GateBackendForwardPrefix + obs.MetricName(b.Name)),
			gHealth:  cfg.Registry.Gauge(obs.GateBackendHealthPrefix + obs.MetricName(b.Name)),
		}
		nb.gHealth.Set(int64(HealthOK))
		g.byName[b.Name] = nb
		g.backends = append(g.backends, nb)
		g.ring.Add(b.Name)
	}
	g.gRing.Set(int64(g.ring.Size()))
	// Replication plans against the live ring and copies bytes through the
	// same HTTP client the forwarders use; tenancy publishes throttle edges
	// onto the same bus the alert console tails. Both are nil-safe no-ops
	// when unconfigured.
	g.jobKeys = newKeyIndex(defaultKeyIndexCap)
	g.replica = replica.New(replica.Config{
		Factor:   cfg.Replicas,
		Ring:     g.ring,
		Peer:     g.peerFor,
		Registry: cfg.Registry,
		Bus:      g.bus,
		Log:      cfg.Log,
	})
	g.tenants = tenant.NewRegistry(cfg.Tenants, tenant.Options{
		Prefix:   "ddgate_",
		Capacity: 0, // no gateway queue: token buckets only at the edge
		Registry: cfg.Registry,
		Bus:      g.bus,
	})
	// The gateway's alert engine watches its own registry's history: ring
	// membership, per-backend probe health, partial fleet-stats views.
	rules := cfg.AlertRules
	if rules == nil {
		names := make([]string, 0, len(cfg.Backends))
		for _, b := range cfg.Backends {
			names = append(names, b.Name)
		}
		rules = alert.GatewayDefaults(len(cfg.Backends), names)
	}
	eng, err := alert.New(alert.Config{
		Node:     cfg.Node,
		Rules:    rules,
		Source:   g.ts,
		Bus:      g.bus,
		Registry: cfg.Registry,
		Log:      cfg.Log,
		History:  cfg.AlertHistory,
	})
	if err != nil {
		return nil, err
	}
	g.alerts = eng
	g.ts.SetOnTick(eng.EvalNow)
	return g, nil
}

// Ring exposes the gateway's ring (read-only use: tests, stats).
func (g *Gateway) Ring() *Ring { return g.ring }

// Config returns the normalized configuration.
func (g *Gateway) Config() Config { return g.cfg }

// Events returns the gateway's live event bus: its own routing events
// plus every backend event the tailers re-publish (GET /v1/events).
func (g *Gateway) Events() *stream.Bus { return g.bus }

// TimeSeries returns the gateway's own metrics history; the HTTP layer
// merges it with the backends' at GET /v1/timeseries.
func (g *Gateway) TimeSeries() *tsdb.DB { return g.ts }

// Alerts returns the gateway's own alert engine (ring-level rules); the
// HTTP layer merges it with the backends' at GET /v1/alerts.
func (g *Gateway) Alerts() *alert.Engine { return g.alerts }

// Replication returns the gateway's replicator (nil when -replicas <= 1).
func (g *Gateway) Replication() *replica.Replicator { return g.replica }

// Tenants returns the gateway's tenant registry (nil when tenancy is off).
func (g *Gateway) Tenants() *tenant.Registry { return g.tenants }

// Start launches the background loops: the health prober, the time-series
// sampler, and one event tailer per backend (each follows the backend's
// /v1/events stream and re-publishes into the gateway bus, making the
// gateway's stream a fleet-wide feed). Idempotent.
func (g *Gateway) Start() {
	if g.started {
		return
	}
	g.started = true
	g.ts.Start()
	for _, b := range g.backends {
		g.tailWG.Add(1)
		go g.tailLoop(b)
	}
	go g.probeLoop()
	if g.replica != nil {
		g.replica.Start()
		go g.seedReplicas()
	}
}

// Stop halts the probe loop, the sampler, and the tailers. Idempotent;
// safe if Start was never called.
func (g *Gateway) Stop() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.ts.Stop()
	g.replica.Stop()
	if g.started {
		<-g.stopped
		g.tailWG.Wait()
	}
}

// upstream is one fully-read backend response.
type upstream struct {
	status  int
	header  http.Header
	body    []byte
	backend string // who answered
}

// retryableStatus reports whether an upstream answer should fail over to
// a different replica. 429 is deliberately absent: it is backpressure
// from the key's owner, and the client — not the gateway — decides
// whether to wait it out (Retry-After is propagated untouched).
func retryableStatus(code int) bool {
	switch code {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// attemptOne sends build's request to one backend and reads the answer.
// The context is canceled as soon as the body is read — or by the caller,
// which is how hedge losers die. The caller's trace context propagates
// downstream as a fresh child span per attempt, and when the context
// carries a recording span (submissions do), each attempt lands in the
// job's waterfall as a "forward" slice on the gateway track.
func (g *Gateway) attemptOne(ctx context.Context, b *backend, build func(base string) (*http.Request, error)) (upstream, error) {
	req, err := build(b.URL)
	if err != nil {
		return upstream{}, err
	}
	if tc, ok := tracectx.From(ctx); ok {
		req.Header.Set(tracectx.Header, tc.Child().String())
	}
	_, span := obs.StartSpan(ctx, "forward")
	span.SetAttr("backend", b.Name)
	g.cForwards.Inc()
	b.cForward.Inc()
	resp, err := g.client.Do(req.WithContext(ctx))
	if err != nil {
		span.SetAttr("error", err.Error())
		span.End()
		return upstream{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		span.SetAttr("error", err.Error())
		span.End()
		return upstream{}, fmt.Errorf("cluster: reading %s response: %w", b.Name, err)
	}
	span.SetAttr("status", fmt.Sprint(resp.StatusCode))
	span.End()
	return upstream{status: resp.StatusCode, header: resp.Header, body: body, backend: b.Name}, nil
}

// attemptHedged races one attempt against a hedge: the primary goes out
// immediately, and if HedgeAfter elapses without an answer, the same
// request is duplicated to the hedge backend. First usable response wins;
// the loser's context is canceled. Safe because submissions are
// idempotent — jobs are content-addressed and pure, so the worst case of
// a double send is a duplicate cache entry on a non-owner.
func (g *Gateway) attemptHedged(ctx context.Context, primary, hedge *backend, build func(base string) (*http.Request, error)) (upstream, error) {
	type outcome struct {
		up  upstream
		err error
	}
	launch := func(b *backend, ch chan<- outcome) context.CancelFunc {
		actx, cancel := context.WithTimeout(ctx, g.cfg.Retry.Timeout)
		go func() {
			up, err := g.attemptOne(actx, b, build)
			ch <- outcome{up, err}
		}()
		return cancel
	}

	ch := make(chan outcome, 2) // buffered: losers never block
	cancels := []context.CancelFunc{launch(primary, ch)}
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	var hedgeTimer <-chan time.Time
	if hedge != nil && g.cfg.HedgeAfter > 0 {
		hedgeTimer = time.After(g.cfg.HedgeAfter)
	}

	inflight := 1
	var last outcome
	for inflight > 0 {
		select {
		case <-hedgeTimer:
			hedgeTimer = nil
			g.cHedges.Inc()
			g.log.Info("hedging request", "primary", primary.Name, "hedge", hedge.Name,
				"after_ms", g.cfg.HedgeAfter.Milliseconds())
			cancels = append(cancels, launch(hedge, ch))
			inflight++
		case out := <-ch:
			inflight--
			if out.err == nil && !retryableStatus(out.up.status) {
				if out.up.backend != primary.Name {
					g.cHedgeWins.Inc()
				}
				return out.up, nil
			}
			last = out // keep the failure; a sibling may still win
		case <-ctx.Done():
			return upstream{}, ctx.Err()
		}
	}
	return last.up, last.err
}

// forward tries candidates in ring order with the configured retry
// policy: attempt (possibly hedged), and on transient failure back off
// with jitter and fail over to the next replica.
func (g *Gateway) forward(ctx context.Context, candidates []string, build func(base string) (*http.Request, error)) (upstream, error) {
	if len(candidates) == 0 {
		return upstream{}, fmt.Errorf("cluster: no healthy backends in ring")
	}
	attempts := len(candidates)
	if max := g.cfg.Retry.Retries + 1; attempts > max {
		attempts = max
	}
	var (
		last    upstream
		lastErr error
	)
	for i := 0; i < attempts; i++ {
		if i > 0 {
			g.cRetries.Inc()
			if err := g.cfg.Retry.Sleep(ctx, i-1, 0); err != nil {
				return upstream{}, err
			}
		}
		primary := g.byName[candidates[i]]
		var hedge *backend
		if i+1 < len(candidates) {
			hedge = g.byName[candidates[i+1]]
		}
		last, lastErr = g.attemptHedged(ctx, primary, hedge, build)
		switch {
		case lastErr != nil:
			if ctx.Err() != nil {
				return upstream{}, lastErr
			}
			g.log.Warn("forward attempt failed", "backend", primary.Name, "error", lastErr.Error())
			continue
		case retryableStatus(last.status):
			g.log.Warn("forward attempt rejected", "backend", last.backend, "status", last.status)
			continue
		}
		return last, nil
	}
	if lastErr != nil {
		return upstream{}, lastErr
	}
	return last, nil // propagate the final retryable status as-is
}

// candidates returns the routable backends for a key in preference order.
func (g *Gateway) candidates(key string) []string {
	return g.ring.Lookup(key, len(g.backends))
}

// splitJobID decodes a gateway job ID "<backend>:<remote id>".
func splitJobID(id string) (backendName, remoteID string, ok bool) {
	return strings.Cut(id, ":")
}

// joinJobID encodes a backend-local job ID into the gateway namespace.
func joinJobID(backendName, remoteID string) string {
	return backendName + ":" + remoteID
}
