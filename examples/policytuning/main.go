// Policytuning: sweep the demand controller's operating point — quiet
// period, scope, and PMU sample-after value — on one kernel and print the
// overhead/coverage frontier, the tuning workflow a user of the real tool
// would follow.
//
//	go run ./examples/policytuning
//	go run ./examples/policytuning -kernel streamcluster
package main

import (
	"flag"
	"fmt"
	"log"

	"demandrace"
)

func main() {
	kernel := flag.String("kernel", "racy_mostly_clean", "kernel to tune on")
	flag.Parse()

	k, ok := demandrace.KernelByName(*kernel)
	if !ok {
		log.Fatalf("unknown kernel %q", *kernel)
	}
	p := k.Build(demandrace.KernelConfig{Threads: 4, Scale: 1})

	cont, err := demandrace.Run(p, demandrace.DefaultConfig().WithPolicy(demandrace.Continuous))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s: continuous slowdown %.2f×, %d racy words (reference)\n\n",
		p.Name, cont.Slowdown, len(cont.RacyAddrs()))

	fmt.Printf("%-8s %-7s %-5s %10s %9s %10s %7s\n",
		"quiet", "scope", "SAV", "slowdown", "speedup", "analyzed", "races")
	for _, quiet := range []uint64{50, 250, 1000} {
		for _, scope := range []demandrace.Scope{demandrace.ScopeSelf, demandrace.ScopeGlobal} {
			for _, sav := range []uint64{1, 4} {
				cfg := demandrace.DefaultConfig().WithPolicy(demandrace.HITMDemand)
				cfg.Demand.QuietOps = quiet
				cfg.Demand.Scope = scope
				cfg.PMU.SampleAfter = sav
				r, err := demandrace.Run(p, cfg)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-8d %-7s %-5d %9.2f× %8.1f× %9.1f%% %7d\n",
					quiet, scope, sav, r.Slowdown, cont.Slowdown/r.Slowdown,
					100*r.Demand.AnalyzedFraction(), len(r.RacyAddrs()))
			}
		}
	}
	fmt.Println("\nreading the frontier: larger quiet windows and broader scopes raise")
	fmt.Println("coverage (races column) at the cost of a higher analyzed fraction;")
	fmt.Println("raising the sample-after value cuts interrupt overhead but can miss")
	fmt.Println("the first sharing events of a phase entirely.")
}
