package replica

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"demandrace/internal/obs"
	"demandrace/internal/obs/stream"
)

// fakeRing is a scriptable placement: a fixed member order walked from a
// per-key start offset, skipping down members — enough to model owner
// choice and successor promotion without real hashing.
type fakeRing struct {
	mu      sync.Mutex
	members []string
	down    map[string]bool
	startOf map[string]int // key -> index into members
}

func newFakeRing(members ...string) *fakeRing {
	return &fakeRing{members: members, down: map[string]bool{}, startOf: map[string]int{}}
}

func (f *fakeRing) place(key string, start int) {
	f.mu.Lock()
	f.startOf[key] = start
	f.mu.Unlock()
}

func (f *fakeRing) setDown(m string, down bool) {
	f.mu.Lock()
	f.down[m] = down
	f.mu.Unlock()
}

func (f *fakeRing) Lookup(key string, n int) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	start := f.startOf[key]
	var out []string
	for i := 0; i < len(f.members) && len(out) < n; i++ {
		m := f.members[(start+i)%len(f.members)]
		if !f.down[m] {
			out = append(out, m)
		}
	}
	return out
}

// fakePeer is an in-memory result store with a reachability switch.
type fakePeer struct {
	mu   sync.Mutex
	data map[string][]byte
	dead bool
}

func newFakePeer() *fakePeer { return &fakePeer{data: map[string][]byte{}} }

var errUnreachable = errors.New("peer unreachable")

func (p *fakePeer) Get(_ context.Context, key string) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return nil, errUnreachable
	}
	d, ok := p.data[key]
	if !ok {
		return nil, errors.New("not found")
	}
	return append([]byte(nil), d...), nil
}

func (p *fakePeer) Put(_ context.Context, key string, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return errUnreachable
	}
	p.data[key] = append([]byte(nil), data...)
	return nil
}

func (p *fakePeer) Keys(_ context.Context) ([]string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return nil, errUnreachable
	}
	out := make([]string, 0, len(p.data))
	for k := range p.data {
		out = append(out, k)
	}
	return out, nil
}

func (p *fakePeer) has(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.data[key]
	return ok
}

type fleet struct {
	ring  *fakeRing
	peers map[string]*fakePeer
}

func newFleet(members ...string) *fleet {
	f := &fleet{ring: newFakeRing(members...), peers: map[string]*fakePeer{}}
	for _, m := range members {
		f.peers[m] = newFakePeer()
	}
	return f
}

func (f *fleet) peer(name string) Peer {
	p := f.peers[name]
	if p == nil {
		return nil
	}
	return p
}

func (f *fleet) replicator(factor int, reg *obs.Registry, bus *stream.Bus) *Replicator {
	return New(Config{
		Factor:   factor,
		Ring:     f.ring,
		Peer:     f.peer,
		Registry: reg,
		Bus:      bus,
	})
}

// drain runs queued replication passes synchronously (the tests never
// Start the workers; they call replicate directly for determinism).
func drain(r *Replicator) {
	for {
		select {
		case key := <-r.queue:
			r.noteDequeued(key)
			r.replicate(context.Background(), key)
		default:
			return
		}
	}
}

func TestFactorOneDisables(t *testing.T) {
	if r := New(Config{Factor: 1}); r != nil {
		t.Fatal("factor 1 built a replicator")
	}
	var r *Replicator
	r.Track("k", "a") // all nil-safe
	r.OnEvict("a")
	r.OnReadmit("a")
	r.Resync()
	r.Start()
	r.Stop()
	if _, _, ok := r.Repair(context.Background(), "k", ""); ok {
		t.Fatal("nil replicator repaired")
	}
	if s := r.StatsSnapshot(); s.Factor != 0 {
		t.Fatalf("nil stats = %+v", s)
	}
}

// TestWriteThrough: tracking a sealed key copies it from the owner to its
// successor and the write counters move.
func TestWriteThrough(t *testing.T) {
	f := newFleet("a", "b", "c")
	f.ring.place("k1", 0) // chain a, b
	f.peers["a"].data["k1"] = []byte(`{"result":1}`)
	reg := obs.NewRegistry()
	r := f.replicator(2, reg, nil)

	r.Track("k1", "a")
	drain(r)

	if !f.peers["b"].has("k1") {
		t.Fatal("successor b did not receive the replica")
	}
	if f.peers["c"].has("k1") {
		t.Fatal("non-chain member c received a replica")
	}
	if got := string(f.peers["b"].data["k1"]); got != `{"result":1}` {
		t.Fatalf("replica bytes = %q", got)
	}
	if v := reg.CounterValue(obs.ReplicaWrites); v != 1 {
		t.Fatalf("writes = %d, want 1", v)
	}
	if s := r.StatsSnapshot(); s.Tracked != 1 || s.UnderReplicated != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestReadRepair: with the owner down, Repair serves the bytes from the
// successor, publishes one replica_repair event, and counts the repair.
func TestReadRepair(t *testing.T) {
	f := newFleet("a", "b", "c")
	f.ring.place("k1", 0)
	f.peers["a"].data["k1"] = []byte(`{"result":1}`)
	reg := obs.NewRegistry()
	bus := stream.NewBus("test")
	sub := bus.Subscribe(4)
	defer sub.Close()
	r := f.replicator(2, reg, bus)
	r.Track("k1", "a")
	drain(r)

	// Owner dies but the probe has not evicted it yet — the realistic
	// read-repair window.
	f.peers["a"].dead = true

	data, source, ok := r.Repair(context.Background(), "k1", "a")
	if !ok || source != "b" {
		t.Fatalf("Repair = %q ok=%v, want source b", source, ok)
	}
	if string(data) != `{"result":1}` {
		t.Fatalf("repaired bytes = %q", data)
	}
	if v := reg.CounterValue(obs.ReplicaReadRepairs); v != 1 {
		t.Fatalf("read repairs = %d, want 1", v)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	ev, okEv := sub.Next(ctx)
	if !okEv || ev.Type != stream.TypeReplicaRepair {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Detail["source"] != "b" || ev.Detail["owner"] != "a" {
		t.Fatalf("repair event detail = %v", ev.Detail)
	}

	// Post-eviction window: the ring has dropped a, so b leads the chain;
	// repairing a read that failed against a still finds b's copy.
	f.ring.setDown("a", true)
	if _, source, ok := r.Repair(context.Background(), "k1", "a"); !ok || source != "b" {
		t.Fatalf("post-eviction Repair = %q ok=%v, want source b", source, ok)
	}
}

// TestHandoff: eviction re-replicates the lost member's keys to the new
// chain from survivors; readmission streams the shard back, and the
// restarted owner ends up byte-identical.
func TestHandoff(t *testing.T) {
	f := newFleet("a", "b", "c")
	f.ring.place("k1", 0) // chain a, b — c is the standby
	f.peers["a"].data["k1"] = []byte(`{"result":1}`)
	r := f.replicator(2, nil, nil)
	r.Track("k1", "a")
	drain(r)

	// Owner a dies. The chain becomes b, c: c must be back-filled from b.
	f.peers["a"].dead = true
	f.ring.setDown("a", true)
	r.OnEvict("a")
	drain(r)
	if !f.peers["c"].has("k1") {
		t.Fatal("standby c not back-filled after owner eviction")
	}
	if s := r.StatsSnapshot(); s.UnderReplicated != 0 {
		t.Fatalf("still under-replicated after handoff: %+v", s)
	}

	// a restarts empty (fresh disk) and is readmitted: the shard streams
	// back and a holds its keys again.
	f.peers["a"] = newFakePeer()
	f.ring.setDown("a", false)
	r.OnReadmit("a")
	drain(r)
	if got := string(f.peers["a"].data["k1"]); got != `{"result":1}` {
		t.Fatalf("restarted owner holds %q, want the original bytes", got)
	}
}

// TestUnderReplicatedDegraded: when no survivor holds the bytes, the key
// stays under-replicated and the snapshot degrades after the handoff
// deadline.
func TestUnderReplicatedDegraded(t *testing.T) {
	f := newFleet("a", "b")
	f.ring.place("k1", 0)
	now := time.Unix(1000, 0)
	r := New(Config{
		Factor:          2,
		Ring:            f.ring,
		Peer:            f.peer,
		HandoffDeadline: 5 * time.Second,
		Now:             func() time.Time { return now },
	})
	// Track with no holder actually serving the bytes: replication cannot
	// converge.
	r.Track("k1", "a")
	f.peers["a"].dead = true
	drain(r)

	s := r.StatsSnapshot()
	if s.UnderReplicated != 1 {
		t.Fatalf("under-replicated = %d, want 1", s.UnderReplicated)
	}
	if s.Degraded {
		t.Fatal("degraded before the handoff deadline")
	}
	now = now.Add(6 * time.Second)
	if s := r.StatsSnapshot(); !s.Degraded {
		t.Fatal("not degraded past the handoff deadline")
	}

	// Recovery: the holder comes back, resync converges, degradation ends.
	f.peers["a"].dead = false
	f.peers["a"].data["k1"] = []byte("x")
	r.Resync()
	drain(r)
	if s := r.StatsSnapshot(); s.UnderReplicated != 0 || s.Degraded {
		t.Fatalf("stats after recovery = %+v", s)
	}
}

// TestQueueDrops: a full task queue drops (and counts) instead of
// blocking the caller.
func TestQueueDrops(t *testing.T) {
	f := newFleet("a", "b")
	reg := obs.NewRegistry()
	r := New(Config{Factor: 2, QueueDepth: 1, Ring: f.ring, Peer: f.peer, Registry: reg})
	r.Track("k1", "a")
	r.Track("k2", "a")
	r.Track("k3", "a")
	if v := reg.CounterValue(obs.ReplicaQueueDrops); v < 1 {
		t.Fatalf("drops = %d, want >= 1", v)
	}
}

// TestSeed imports a peer's existing keys into tracking.
func TestSeed(t *testing.T) {
	f := newFleet("a", "b")
	f.ring.place("k1", 0)
	f.peers["a"].data["k1"] = []byte("x")
	r := f.replicator(2, nil, nil)
	if err := r.Seed(context.Background(), "a"); err != nil {
		t.Fatalf("Seed: %v", err)
	}
	drain(r)
	if !f.peers["b"].has("k1") {
		t.Fatal("seeded key not replicated")
	}
}

// TestStartStop: the background workers drain tracked keys on their own.
func TestStartStop(t *testing.T) {
	f := newFleet("a", "b")
	f.ring.place("k1", 0)
	f.peers["a"].data["k1"] = []byte("x")
	r := New(Config{Factor: 2, Ring: f.ring, Peer: f.peer, ResyncInterval: 10 * time.Millisecond})
	r.Start()
	defer r.Stop()
	r.Track("k1", "a")
	deadline := time.Now().Add(2 * time.Second)
	for !f.peers["b"].has("k1") {
		if time.Now().After(deadline) {
			t.Fatal("worker never replicated the tracked key")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
