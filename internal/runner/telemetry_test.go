package runner

import (
	"bytes"
	"reflect"
	"testing"

	"demandrace/internal/demand"
	"demandrace/internal/obs"
)

func TestTelemetryTraceCoversPipeline(t *testing.T) {
	cfg := DefaultConfig().WithPolicy(demand.HITMDemand)
	cfg.Trace = obs.NewTracer()
	rep := mustRun(t, racyLoop(40), cfg)

	byKind := cfg.Trace.CountByKind()
	for _, k := range []obs.Kind{
		obs.KindHITM, obs.KindOverflow, obs.KindSampleDelivered,
		obs.KindModeEnable, obs.KindRace,
	} {
		if byKind[k] == 0 {
			t.Errorf("racy run emitted no %s events", k)
		}
	}
	// Timestamps come from the tool-cycle clock, which only moves forward.
	events := cfg.Trace.Events()
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			t.Fatalf("event %d goes backwards: %d after %d", i, events[i].TS, events[i-1].TS)
		}
	}
	if events[len(events)-1].TS > rep.ToolCycles {
		t.Errorf("event past end of run: %d > %d", events[len(events)-1].TS, rep.ToolCycles)
	}

	// The folded timeline must show a demand policy actually switching: at
	// least one fast span and one analysis span.
	var fast, analysis bool
	for _, s := range rep.Timeline {
		if s.Analyzing {
			analysis = true
		} else {
			fast = true
		}
	}
	if !fast || !analysis {
		t.Errorf("timeline missing a mode: fast=%v analysis=%v (%d spans)", fast, analysis, len(rep.Timeline))
	}
}

func TestTelemetryMetricsMatchReport(t *testing.T) {
	cfg := DefaultConfig().WithPolicy(demand.HITMDemand)
	cfg.Metrics = obs.NewRegistry()
	rep := mustRun(t, racyLoop(40), cfg)

	for name, want := range map[string]uint64{
		"ddrace_runs_total":           1,
		"ddrace_cycles_tool_total":    rep.ToolCycles,
		"ddrace_cycles_native_total":  rep.NativeCycles,
		"ddrace_cache_hitm_total":     rep.Cache.HITM,
		"ddrace_pmu_overflows_total":  rep.PMU.Overflows,
		"ddrace_detector_races_total": rep.Detector.Races,
		"ddrace_race_reports_total":   uint64(len(rep.Races)),
		"ddrace_demand_enables_total": rep.Demand.EnableTransitions,
		"ddrace_sched_steps_total":    rep.Steps,
	} {
		if got := cfg.Metrics.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := cfg.Metrics.Histogram("ddrace_run_slowdown", nil).Count(); got != 1 {
		t.Errorf("slowdown histogram count = %d", got)
	}
}

func TestTelemetrySharedRegistryAccumulates(t *testing.T) {
	cfg := DefaultConfig().WithPolicy(demand.Continuous)
	cfg.Metrics = obs.NewRegistry()
	mustRun(t, racyLoop(10), cfg)
	mustRun(t, cleanParallel(2, 10), cfg)
	if got := cfg.Metrics.CounterValue("ddrace_runs_total"); got != 2 {
		t.Errorf("runs_total = %d", got)
	}
}

// TestTelemetryDeterminism asserts the whole telemetry surface is a pure
// function of (program, config, seed): re-running yields identical event
// streams, timelines, and metric expositions.
func TestTelemetryDeterminism(t *testing.T) {
	capture := func() ([]obs.Event, []obs.Span, string) {
		cfg := DefaultConfig().WithPolicy(demand.HITMDemand)
		cfg.Trace = obs.NewTracer()
		cfg.Metrics = obs.NewRegistry()
		rep := mustRun(t, racyLoop(30), cfg)
		var buf bytes.Buffer
		if err := cfg.Metrics.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		return cfg.Trace.Events(), rep.Timeline, buf.String()
	}
	e1, s1, m1 := capture()
	e2, s2, m2 := capture()
	if !reflect.DeepEqual(e1, e2) {
		t.Error("event streams differ between identical runs")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("timelines differ between identical runs")
	}
	if m1 != m2 {
		t.Errorf("metric expositions differ:\n%s\nvs\n%s", m1, m2)
	}
}

func TestTelemetryContinuousTimelineIsAllAnalysis(t *testing.T) {
	cfg := DefaultConfig().WithPolicy(demand.Continuous)
	cfg.Trace = obs.NewTracer()
	rep := mustRun(t, racyLoop(10), cfg)
	if len(rep.Timeline) == 0 {
		t.Fatal("no timeline spans")
	}
	for _, s := range rep.Timeline {
		if !s.Analyzing {
			t.Errorf("continuous policy produced a fast span: %+v", s)
		}
	}
}
