package experiments

import (
	"fmt"

	"demandrace/internal/demand"
	"demandrace/internal/racefuzz"
	"demandrace/internal/runner"
	"demandrace/internal/stats"
)

// Tab5 — the software-only alternative: blind random sampling
// (LiteRace/Pacer-style) vs. the hardware-triggered demand policy. This is
// the comparison the paper's related-work positioning makes: sampling needs
// no hardware, but catching a race requires sampling *both* accesses of a
// pair, so at any overhead a program can afford, hardware-triggered
// analysis finds more.
type Tab5Row struct {
	// Policy labels the row ("sampling 5%", "hitm-demand", "continuous").
	Policy string
	// Recall is injected-race recall against the continuous oracle.
	Recall float64
	// Slowdown is the mean slowdown across seeds.
	Slowdown float64
	// Analyzed is the mean fraction of data accesses analyzed.
	Analyzed float64
}

// Tab5Result is the sampling-vs-demand frontier.
type Tab5Result struct {
	Rows  []Tab5Row
	Seeds int
}

// Tab5 scores each policy on the same injected-race workloads. The
// (policy × seed) grid is one fan-out; per-policy means are summed in seed
// order for bit-stable floating-point totals.
func Tab5(o Options) (*Tab5Result, error) {
	o = o.normalized()
	seeds := o.quickSeeds(8)
	const perSeed = 3
	host := "histogram"

	type policy struct {
		label string
		cfg   demand.Config
	}
	policies := []policy{
		{"sampling 1%", demand.Config{Kind: demand.Sampling, SampleRate: 0.01}},
		{"sampling 5%", demand.Config{Kind: demand.Sampling, SampleRate: 0.05}},
		{"sampling 10%", demand.Config{Kind: demand.Sampling, SampleRate: 0.10}},
		{"sampling 25%", demand.Config{Kind: demand.Sampling, SampleRate: 0.25}},
		{"page-demand", demand.Config{Kind: demand.PageDemand}},
		{"hitm-demand", demand.DefaultConfig()},
		{"continuous", demand.Config{Kind: demand.Continuous}},
	}

	type sample struct {
		contFound, found int
		slow, analyzed   float64
	}
	cells, err := fanOut(o, len(policies)*seeds, func(i int) (sample, error) {
		pol, seed := policies[i/seeds], i%seeds
		p, err := buildProgram(host, o)
		if err != nil {
			return sample{}, err
		}
		injected, injs, err := racefuzz.Inject(p, racefuzz.Config{
			Seed: int64(seed), Count: perSeed, Repeats: 4,
		})
		if err != nil {
			return sample{}, err
		}
		cfg := runner.DefaultConfig()
		cfg.Demand = pol.cfg
		cfg.Demand.Seed = int64(seed)
		r, err := runner.Run(injected, cfg)
		if err != nil {
			return sample{}, err
		}
		oracle, err := runner.Run(injected, runner.DefaultConfig().WithPolicy(demand.Continuous))
		if err != nil {
			return sample{}, err
		}
		s := sample{slow: r.Slowdown, analyzed: r.Demand.AnalyzedFraction()}
		oracleAddrs := racyAddrSet(oracle)
		gotAddrs := racyAddrSet(r)
		for _, in := range injs {
			if oracleAddrs[in.Addr] {
				s.contFound++
				if gotAddrs[in.Addr] {
					s.found++
				}
			}
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Tab5Result{Seeds: seeds}
	for pi, pol := range policies {
		var contFound, found int
		var slowSum, analyzedSum float64
		for seed := 0; seed < seeds; seed++ {
			s := cells[pi*seeds+seed]
			contFound += s.contFound
			found += s.found
			slowSum += s.slow
			analyzedSum += s.analyzed
		}
		row := Tab5Row{
			Policy:   pol.label,
			Slowdown: slowSum / float64(seeds),
			Analyzed: analyzedSum / float64(seeds),
		}
		if contFound > 0 {
			row.Recall = float64(found) / float64(contFound)
		} else {
			row.Recall = 1
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the result.
func (r *Tab5Result) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Tab.5 — blind sampling vs hardware-triggered demand (%d seeds)", r.Seeds),
		"policy", "recall", "mean slowdown (×)", "analyzed frac")
	for _, row := range r.Rows {
		tb.AddRow(row.Policy,
			fmt.Sprintf("%.2f", row.Recall),
			fmt.Sprintf("%.2f", row.Slowdown),
			fmt.Sprintf("%.3f", row.Analyzed))
	}
	return tb
}
