package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"demandrace/internal/cluster"
	"demandrace/internal/service"
	"demandrace/internal/version"
)

// TestGatewayEndToEnd boots the gateway binary's run() over two in-process
// ddserved backends, pushes one job through with the stock client, and
// checks the cluster surfaces (/v1/stats aggregation, /metrics, /healthz)
// plus graceful shutdown.
func TestGatewayEndToEnd(t *testing.T) {
	var urls []string
	for i := 0; i < 2; i++ {
		s := service.NewServer(service.Config{Workers: 1})
		s.Start()
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
		urls = append(urls, ts.URL)
	}
	backends, err := cluster.ParseBackends(strings.Join(urls, ","))
	if err != nil {
		t.Fatalf("ParseBackends: %v", err)
	}

	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, options{
			addr:     "127.0.0.1:0",
			addrFile: addrFile,
			cfg: cluster.Config{
				Backends:      backends,
				ProbeInterval: 50 * time.Millisecond,
				Retry:         service.Options{Backoff: time.Millisecond},
			},
		})
	}()

	var addr string
	for i := 0; i < 200; i++ {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("gateway never wrote -addr-file")
	}
	base := "http://" + addr

	cl := &service.Client{BaseURL: base, PollInterval: 5 * time.Millisecond}
	data, st, err := cl.Run(context.Background(), service.Request{Kernel: "racy_flag"})
	if err != nil {
		t.Fatalf("Run through gateway: %v", err)
	}
	if st.State != service.StateDone || len(data) == 0 {
		t.Fatalf("job ended %q with %d result bytes", st.State, len(data))
	}
	if name, _, ok := strings.Cut(st.ID, ":"); !ok || name == "" {
		t.Fatalf("job id %q is not backend-namespaced", st.ID)
	}

	// Same request again: must be the owning backend's cache hit.
	again, err := cl.Submit(context.Background(), service.Request{Kernel: "racy_flag"})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !again.CacheHit {
		t.Fatal("resubmission through the gateway missed the cache")
	}

	var cs cluster.ClusterStats
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&cs)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if cs.Node != "ddgate" || cs.Ring.Members != 2 || cs.Jobs.Completed < 1 {
		t.Fatalf("cluster stats = node %q ring %+v jobs %+v", cs.Node, cs.Ring, cs.Jobs)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("gateway did not shut down")
	}
}

func TestRunRejectsEmptyBackends(t *testing.T) {
	err := run(context.Background(), options{addr: "127.0.0.1:0"})
	if err == nil {
		t.Fatal("run accepted a config with no backends")
	}
}

func TestVersionBanner(t *testing.T) {
	got := version.String("ddgate")
	if !strings.HasPrefix(got, "ddgate version ") || strings.ContainsRune(got, '\n') {
		t.Fatalf("banner %q is not a single 'ddgate version X' line", got)
	}
}
