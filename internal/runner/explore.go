package runner

import (
	"context"
	"fmt"
	"sort"

	"demandrace/internal/mem"
	"demandrace/internal/parallel"
	"demandrace/internal/program"
	"demandrace/internal/sched"
)

// Exploration aggregates one program's race behavior across many seeded
// interleavings — the "run it until the bug shows" workflow commercial
// tools automate. Because the detector is happens-before (not lockset),
// a racy pair is flagged in *every* schedule where both accesses are
// observed; exploration mainly shakes out schedule-dependent observation
// (demand-mode windows, semaphore pairings) and conditional code paths.
type Exploration struct {
	// Seeds is the number of interleavings explored.
	Seeds int
	// Union holds every word flagged in at least one schedule, sorted.
	Union []mem.Addr
	// Intersection holds the words flagged in every schedule, sorted.
	Intersection []mem.Addr
	// HitRate maps each union word to the fraction of schedules that
	// flagged it.
	HitRate map[mem.Addr]float64
	// Reports holds the per-seed run reports, indexed by seed.
	Reports []*Report
}

// FlakyAddrs returns the words found in some but not all schedules — the
// reports a developer would call "flaky".
func (e *Exploration) FlakyAddrs() []mem.Addr {
	inAll := map[mem.Addr]bool{}
	for _, a := range e.Intersection {
		inAll[a] = true
	}
	var out []mem.Addr
	for _, a := range e.Union {
		if !inAll[a] {
			out = append(out, a)
		}
	}
	return out
}

// Explore runs p under cfg once per seed in [0, seeds), using seeded-random
// interleaving, and aggregates the racy-address sets. Seeds run across one
// worker per CPU; use ExploreWorkers to bound the fan-out.
func Explore(p *program.Program, cfg Config, seeds int) (*Exploration, error) {
	return ExploreWorkers(p, cfg, seeds, 0)
}

// ExploreWorkers is Explore with an explicit fan-out width (0 = one worker
// per CPU, 1 = serial). Every seed is an independent run; reports are
// aggregated in seed order, so the result is identical for any width.
func ExploreWorkers(p *program.Program, cfg Config, seeds, workers int) (*Exploration, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("runner: Explore needs ≥ 1 seed, got %d", seeds)
	}
	eng := parallel.New(workers)
	reports, err := parallel.Map(context.Background(), eng, seeds, func(_ context.Context, seed int) (*Report, error) {
		c := cfg
		c.Sched.Policy = sched.RandomInterleave
		c.Sched.Seed = int64(seed)
		r, err := Run(p, c)
		if err != nil {
			return nil, fmt.Errorf("runner: explore seed %d: %w", seed, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	ex := &Exploration{Seeds: seeds, HitRate: map[mem.Addr]float64{}, Reports: reports}
	counts := map[mem.Addr]int{}
	for _, r := range reports {
		seen := map[mem.Addr]bool{}
		for _, rc := range r.Races {
			if !seen[rc.Addr] {
				seen[rc.Addr] = true
				counts[rc.Addr]++
			}
		}
	}
	for a, n := range counts {
		ex.Union = append(ex.Union, a)
		ex.HitRate[a] = float64(n) / float64(seeds)
		if n == seeds {
			ex.Intersection = append(ex.Intersection, a)
		}
	}
	sort.Slice(ex.Union, func(i, j int) bool { return ex.Union[i] < ex.Union[j] })
	sort.Slice(ex.Intersection, func(i, j int) bool { return ex.Intersection[i] < ex.Intersection[j] })
	return ex, nil
}
