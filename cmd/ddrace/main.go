// Command ddrace runs bundled workload kernels under a chosen analysis
// policy and prints the race and performance report.
//
// Multi-run modes (-batch, -compare, -explore) fan their independent runs
// out across a worker pool (-workers, one per CPU by default); stdout is
// byte-identical for any worker count, and a timing table goes to stderr.
//
// Telemetry: -trace writes a Chrome trace-event JSON timeline (open in
// Perfetto or chrome://tracing), -events writes an NDJSON event log, and
// -metrics prints a Prometheus-style text exposition. All three are
// timestamped in simulated cycles, never wall clock, so they are
// byte-deterministic.
//
// Usage:
//
//	ddrace -kernel histogram -policy hitm-demand
//	ddrace -kernel racy_counter -policy continuous -threads 8 -lockset
//	ddrace -list
//	ddrace -kernel kmeans -compare             # all policies side by side
//	ddrace -kernel racy_flag -trace out.json   # Chrome trace-event timeline
//	ddrace -kernel racy_flag -metrics          # metrics exposition
//	ddrace -kernel racy_flag -record out.drt   # binary trace for ddreplay
//	ddrace -batch phoenix                      # whole suite, one row per kernel
//	ddrace -batch all -policy continuous       # every bundled kernel
//	ddrace -batch histogram,kmeans,x264        # explicit kernel list
//	ddrace -kernel kmeans -profile out.folded  # deterministic cycle profile
//	ddrace -kernel kmeans -submit http://localhost:8318 -save-trace wf.json
//	ddrace -stream out.drt -submit http://localhost:8318   # chunked resumable upload
//	ddrace -watch http://localhost:8418        # tail the live cluster event feed
//	ddrace -alerts http://localhost:8418       # tail only alert transitions as NDJSON
//
// The -watch and -alerts tails survive dropped connections: they reconnect
// with backoff and send Last-Event-ID so the server replays missed events
// from its retained ring.
//
// Wall-clock diagnostics (the batch timing table, structured progress
// lines) go to stderr through a leveled logger; -log-level=error silences
// them, -log-format=json makes them machine-readable. The -profile output
// is NOT wall clock: it samples the simulated-cycle clock, so the folded
// stacks are byte-identical across runs.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"demandrace"
	"demandrace/internal/cache"
	"demandrace/internal/demand"
	"demandrace/internal/obs"
	olog "demandrace/internal/obs/log"
	"demandrace/internal/obs/stream"
	"demandrace/internal/obs/tracectx"
	"demandrace/internal/parallel"
	"demandrace/internal/prof"
	"demandrace/internal/report"
	"demandrace/internal/sched"
	"demandrace/internal/service"
	"demandrace/internal/stats"
	"demandrace/internal/trace"
	"demandrace/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ddrace:", err)
		os.Exit(1)
	}
}

func parsePolicy(s string) (demandrace.Policy, error) { return demand.ParsePolicy(s) }

func parseScope(s string) (demandrace.Scope, error) { return demand.ParseScope(s) }

// run executes one CLI invocation, writing comparable output to out and
// wall-clock diagnostics (the batch timing table) to diag. The split keeps
// stdout byte-deterministic across worker counts.
func run(args []string, out, diag io.Writer) error {
	fs := flag.NewFlagSet("ddrace", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list bundled kernels and exit")
		kernel    = fs.String("kernel", "", "kernel to run (see -list)")
		batch     = fs.String("batch", "", "run many kernels under -policy: comma-separated names, a suite (phoenix|parsec|micro|racy), or \"all\"")
		workersF  = fs.Int("workers", 0, "parallel fan-out for -batch/-compare/-explore (0 = one per CPU, 1 = serial)")
		policy    = fs.String("policy", "hitm-demand", "analysis policy: off|continuous|sync-only|hitm-demand|hybrid|sampling|watch-demand|page-demand")
		rate      = fs.Float64("rate", 0.1, "per-access analysis probability for -policy sampling")
		watchcap  = fs.Int("watchcap", 0, "watchpoint registers per context for -policy watch-demand (0 = default 4)")
		scope     = fs.String("scope", "global", "demand scope: global|pair|self")
		threads   = fs.Int("threads", 4, "worker thread count")
		scale     = fs.Int("scale", 1, "workload scale factor")
		cores     = fs.Int("cores", 4, "simulated cores")
		smt       = fs.Int("smt", 1, "hardware contexts per core")
		prefetch  = fs.Bool("prefetch", false, "enable the next-line hardware prefetcher")
		moesi     = fs.Bool("moesi", false, "simulate an AMD-style MOESI machine instead of MESI")
		sav       = fs.Uint64("sav", 1, "PMU sample-after value")
		skid      = fs.Int("skid", 0, "PMU interrupt skid (retired ops)")
		quiet     = fs.Uint64("quiet", 0, "quiet ops before dropping to fast mode (0 = default)")
		adaptive  = fs.Bool("adaptive", false, "adapt the quiet window at run time")
		seed      = fs.Int64("seed", 0, "scheduler/PMU seed")
		random    = fs.Bool("random", false, "use seeded random interleaving instead of round-robin")
		lockset   = fs.Bool("lockset", false, "also run the Eraser lockset engine")
		deadlockF = fs.Bool("deadlock", false, "also run the lock-order (potential deadlock) engine")
		fullvc    = fs.Bool("fullvc", false, "use the full-vector-clock detector variant")
		compare   = fs.Bool("compare", false, "run all policies and print a comparison table")
		explore   = fs.Int("explore", 0, "explore N random interleavings and aggregate racy words")
		traceOut  = fs.String("trace", "", "write a Chrome trace-event JSON timeline (simulated-cycle timestamps) to this file")
		eventsOut = fs.String("events", "", "write the telemetry event log as NDJSON to this file")
		metricsF  = fs.Bool("metrics", false, "print a Prometheus-style metrics exposition after the report")
		recordOut = fs.String("record", "", "write a binary replay trace of the run to this file (see ddreplay)")
		injectN   = fs.Int("inject", 0, "inject N synthetic races before running")
		injectRep = fs.Int("inject-repeats", 3, "accesses per side of each injected race")
		verbose   = fs.Bool("v", false, "print every race report")
		asJSON    = fs.Bool("json", false, "emit the full report as JSON")
		htmlOut   = fs.String("html", "", "write a self-contained HTML report to this file")
		submitURL = fs.String("submit", "", "submit the run to a ddserved daemon at this base URL instead of running locally")
		apiKey    = fs.String("api-key", "", "with -submit/-stream: API key sent as X-API-Key (required against daemons running -tenants)")
		streamIn  = fs.String("stream", "", "with -submit: stream this recorded .drt trace to the daemon as a chunked resumable upload, printing race_found NDJSON lines as the server analyzes mid-stream")
		chunkSize = fs.Int("chunk-bytes", 1<<20, "with -stream: chunk split size in bytes (clamped to the server's advertised max)")
		streamFlt = fs.Int("stream-fault", 0, "with -stream: inject one simulated connection drop after N chunks to exercise the resume protocol")
		saveTrace = fs.String("save-trace", "", "with -submit: also fetch the job's server-side span waterfall and write the Chrome trace JSON to this file")
		watchURL  = fs.String("watch", "", "tail the live event stream of a ddserved or ddgate at this base URL, printing one JSON event per line")
		alertsURL = fs.String("alerts", "", "like -watch, but print only alert_firing/alert_resolved events")
		watchN    = fs.Int("watch-count", 0, "with -watch/-alerts: exit after N events (0 = tail until interrupted)")
		profOut   = fs.String("profile", "", "write a deterministic folded-stack cycle profile (flamegraph-ready) to this file and print the top sites")
		profEvery = fs.Uint64("profile-every", 0, "cycle-profiler sampling period in simulated cycles (0 = default 1024)")
		verFlag   = fs.Bool("version", false, "print the version and exit")
	)
	logFlags := olog.Register(fs, olog.FormatText)
	if err := fs.Parse(args); err != nil {
		return err
	}
	lg, err := logFlags.Logger(diag)
	if err != nil {
		return err
	}
	// The timing table and other wall-clock diagnostics flow through the
	// logger's level gate: -log-level=error leaves stderr silent.
	timingDiag := diag
	if !lg.Enabled(context.Background(), slog.LevelInfo) {
		timingDiag = io.Discard
	}
	if *verFlag {
		fmt.Fprintln(out, version.String("ddrace"))
		return nil
	}

	if *list {
		tb := stats.NewTable("bundled kernels", "name", "suite", "sharing profile")
		for _, k := range demandrace.Kernels() {
			tb.AddRow(k.Name, k.Suite, k.Sharing)
		}
		fmt.Fprint(out, tb)
		return nil
	}
	if *watchURL != "" && *alertsURL != "" {
		return fmt.Errorf("-watch and -alerts are exclusive modes")
	}
	if *watchURL != "" {
		return watchEvents(out, *watchURL, *watchN, nil)
	}
	if *alertsURL != "" {
		return watchEvents(out, *alertsURL, *watchN, func(ev stream.Event) bool {
			return ev.Type == stream.TypeAlertFiring || ev.Type == stream.TypeAlertResolved
		})
	}
	if *saveTrace != "" && *submitURL == "" {
		return fmt.Errorf("-save-trace needs -submit (local runs use -trace)")
	}
	if *streamIn != "" && *submitURL == "" {
		return fmt.Errorf("-stream needs -submit (local traces replay with ddreplay)")
	}
	if *submitURL != "" {
		if *streamIn != "" {
			opts := service.TraceOptions{FullVC: *fullvc, MaxReports: -1}
			return streamRemote(out, lg, *submitURL, *apiKey, *streamIn, opts, service.StreamOptions{
				ChunkBytes: *chunkSize,
				FaultAfter: *streamFlt,
			}, *asJSON, *verbose)
		}
		if *kernel == "" {
			return fmt.Errorf("-submit needs -kernel (batch submission is not supported)")
		}
		req := service.Request{
			Kernel: *kernel, Threads: *threads, Scale: *scale,
			Policy: *policy, Scope: *scope,
			Cores: *cores, SMT: *smt, Prefetch: *prefetch, MOESI: *moesi,
			SampleAfter: *sav, Skid: *skid,
			QuietOps: *quiet, Adaptive: *adaptive, SampleRate: *rate, WatchCap: *watchcap,
			Seed: *seed, Random: *random,
			Lockset: *lockset, Deadlock: *deadlockF, FullVC: *fullvc,
			Profile: *profOut != "", ProfileEvery: *profEvery,
		}
		return submitRemote(out, lg, *submitURL, *apiKey, req, *asJSON, *verbose, *profOut, *saveTrace)
	}

	cfg := demandrace.DefaultConfig()
	cfg.Cache.Cores = *cores
	cfg.Cache.SMT = *smt
	cfg.Cache.NextLinePrefetch = *prefetch
	if *moesi {
		cfg.Cache.Protocol = cache.MOESI
	}
	cfg.PMU.SampleAfter = *sav
	cfg.PMU.Skid = *skid
	cfg.PMU.Seed = *seed
	cfg.Demand.QuietOps = *quiet
	cfg.Demand.SampleRate = *rate
	cfg.Demand.Seed = *seed
	cfg.Demand.WatchCapacity = *watchcap
	cfg.Demand.Adaptive = *adaptive
	cfg.Lockset = *lockset
	cfg.Deadlock = *deadlockF
	cfg.Detector.FullVC = *fullvc
	cfg.Sched.Seed = *seed
	if *random {
		cfg.Sched.Policy = sched.RandomInterleave
	}
	sc, err := parseScope(*scope)
	if err != nil {
		return err
	}
	cfg.Demand.Scope = sc

	if *batch != "" {
		if *traceOut != "" || *eventsOut != "" || *recordOut != "" || *profOut != "" {
			return fmt.Errorf("-trace/-events/-record/-profile apply to single-kernel runs; drop them or use -kernel")
		}
		pol, err := parsePolicy(*policy)
		if err != nil {
			return err
		}
		return runBatch(out, timingDiag, *batch, cfg.WithPolicy(pol),
			demandrace.KernelConfig{Threads: *threads, Scale: *scale}, *workersF, *metricsF)
	}

	if *kernel == "" {
		return fmt.Errorf("missing -kernel (use -list to see choices)")
	}
	k, ok := demandrace.KernelByName(*kernel)
	if !ok {
		return fmt.Errorf("unknown kernel %q (use -list)", *kernel)
	}
	p := k.Build(demandrace.KernelConfig{Threads: *threads, Scale: *scale})

	var injections []demandrace.Injection
	if *injectN > 0 {
		p, injections, err = demandrace.InjectRaces(p, demandrace.InjectionConfig{
			Seed: *seed, Count: *injectN, Repeats: *injectRep,
		})
		if err != nil {
			return err
		}
		for _, in := range injections {
			fmt.Fprintln(out, in)
		}
	}

	if *compare {
		if *profOut != "" {
			return fmt.Errorf("-profile applies to a single run; drop -compare")
		}
		return comparePolicies(out, p, cfg, *workersF, *verbose, *metricsF)
	}

	pol, err := parsePolicy(*policy)
	if err != nil {
		return err
	}
	cfg = cfg.WithPolicy(pol)
	if *explore > 0 {
		if *profOut != "" {
			return fmt.Errorf("-profile applies to a single run; drop -explore")
		}
		return exploreSchedules(out, p, cfg, *explore, *workersF)
	}
	if *profOut != "" {
		cfg.Prof = prof.New(*profEvery)
	}
	if *recordOut != "" {
		cfg.Tracer = demandrace.NewTraceRecorder(p.Name)
	}
	// Telemetry rides along whenever any consumer wants it; the HTML page
	// needs the tracer too, for its mode-timeline section.
	if *traceOut != "" || *eventsOut != "" || *htmlOut != "" {
		cfg.Trace = obs.NewTracer()
	}
	if *metricsF {
		cfg.Metrics = obs.NewRegistry()
	}
	rep, err := demandrace.Run(p, cfg)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printReport(out, rep, *verbose)
	}
	if *metricsF {
		if err := cfg.Metrics.WriteProm(out); err != nil {
			return err
		}
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.Write(f, rep); err != nil {
			return err
		}
		fmt.Fprintf(out, "html report written to %s\n", *htmlOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obs.WriteChromeTrace(f, rep.Program, cfg.Trace.Events(), rep.Timeline); err != nil {
			return err
		}
		fmt.Fprintf(out, "chrome trace: %d events, %d spans written to %s\n",
			cfg.Trace.Len(), len(rep.Timeline), *traceOut)
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obs.WriteNDJSON(f, cfg.Trace.Events()); err != nil {
			return err
		}
		fmt.Fprintf(out, "event log: %d events written to %s\n", cfg.Trace.Len(), *eventsOut)
	}
	if *recordOut != "" {
		f, err := os.Create(*recordOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.EncodeBinary(f, cfg.Tracer.Trace()); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace: %d events written to %s\n",
			len(cfg.Tracer.Trace().Events), *recordOut)
	}
	if *profOut != "" {
		if err := writeProfile(out, *profOut, rep.Profile); err != nil {
			return err
		}
	}
	return nil
}

// writeProfile saves a folded-stack cycle profile (one line per
// thread/mode/site stack, flamegraph.pl-compatible) and prints the top
// sites. Everything here is keyed to simulated cycles, so both the file and
// the table are byte-deterministic.
func writeProfile(out io.Writer, path string, pr *prof.Profile) error {
	if pr == nil {
		return fmt.Errorf("-profile: run produced no profile")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pr.WriteFolded(f); err != nil {
		return err
	}
	fmt.Fprintf(out, "cycle profile: %d samples every %d cycles written to %s\n",
		pr.TotalSamples, pr.Every, path)
	fmt.Fprint(out, pr.Top(10))
	return nil
}

// submitRemote runs the job on a ddserved daemon (or a ddgate cluster
// front — the surfaces are identical): submit, poll to a terminal state,
// fetch the report, and print it like a local run. With profOut set the
// request asks the daemon for a cycle profile and the folded stacks land
// in the same file a local -profile run would write. Transient daemon
// errors (429 backpressure, 5xx, connection drops) are retried with
// exponential backoff before giving up.
//
// Every submission mints a root trace context; the client propagates it
// as a traceparent header on every hop, so the daemon's logs and the
// saveTrace waterfall are joinable by the trace ID logged here.
func submitRemote(out io.Writer, lg *slog.Logger, base, apiKey string, req service.Request, asJSON, verbose bool, profOut, saveTrace string) error {
	cl := &service.Client{
		BaseURL: strings.TrimRight(base, "/"),
		APIKey:  apiKey,
		Options: service.Options{
			Timeout: 30 * time.Second,
			Retries: 3,
			Backoff: 250 * time.Millisecond,
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	tc := tracectx.New()
	ctx = tracectx.Into(ctx, tc)
	lg.Info("submitting job", "url", base, "kernel", req.Kernel, "trace_id", tc.TraceID())
	data, st, err := cl.Run(ctx, req)
	if err != nil {
		return err
	}
	if saveTrace != "" {
		// Fetch after the job is terminal, so the waterfall covers queue
		// wait through render, not a snapshot of a half-run job.
		td, terr := cl.JobTrace(ctx, st.ID)
		if terr != nil {
			return fmt.Errorf("fetching job trace: %w", terr)
		}
		if werr := os.WriteFile(saveTrace, td, 0o644); werr != nil {
			return fmt.Errorf("writing -save-trace: %w", werr)
		}
	}
	if asJSON && profOut == "" {
		if _, err := out.Write(data); err != nil {
			return err
		}
		return nil
	}
	var rep demandrace.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("decoding daemon report: %w", err)
	}
	if asJSON {
		if _, err := out.Write(data); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "job:       %s on %s (cache hit: %v)\n", st.ID, base, st.CacheHit)
		printReport(out, &rep, verbose)
	}
	if saveTrace != "" && !asJSON {
		fmt.Fprintf(out, "job trace written to %s\n", saveTrace)
	}
	if profOut != "" {
		return writeProfile(out, profOut, rep.Profile)
	}
	return nil
}

// streamRemote pushes a recorded binary trace to a ddserved daemon (or a
// ddgate front) as a chunked resumable upload. The server analyzes each
// chunk as it lands, so races surface mid-upload: every new race prints
// immediately as one race_found NDJSON line, and the sealed report — byte
// identical to a batch upload of the same file — prints at the end.
// Transport drops (including the -stream-fault injected one) resume from
// the server's high-water mark instead of restarting the upload.
func streamRemote(out io.Writer, lg *slog.Logger, base, apiKey, path string, opts service.TraceOptions, sopts service.StreamOptions, asJSON, verbose bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-stream: %w", err)
	}
	cl := &service.Client{
		BaseURL: strings.TrimRight(base, "/"),
		APIKey:  apiKey,
		Options: service.Options{
			Timeout: 30 * time.Second,
			Retries: 3,
			Backoff: 250 * time.Millisecond,
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	tc := tracectx.New()
	ctx = tracectx.Into(ctx, tc)
	lg.Info("streaming trace", "url", base, "file", path,
		"bytes", len(raw), "chunk_bytes", sopts.ChunkBytes, "trace_id", tc.TraceID())

	// Mid-stream races print as they are found; the partial document is
	// cumulative, so only the unseen tail prints each time.
	enc := json.NewEncoder(out)
	seen := 0
	sopts.OnPartial = func(p service.PartialReport) {
		for _, r := range p.Races[seen:] {
			enc.Encode(map[string]any{
				"type": "race_found", "session": p.Session,
				"events": p.Events, "race": r,
			})
		}
		seen = len(p.Races)
	}
	st, err := cl.StreamTrace(ctx, raw, opts, sopts)
	if err != nil {
		return err
	}
	data, err := cl.Result(ctx, st.ID)
	if err != nil {
		return err
	}
	if asJSON {
		_, err := out.Write(data)
		return err
	}
	var rr service.ReplayResult
	if err := json.Unmarshal(data, &rr); err != nil {
		return fmt.Errorf("decoding daemon replay result: %w", err)
	}
	fmt.Fprintf(out, "job:       %s on %s (streamed %d bytes, cache hit: %v)\n",
		st.ID, base, len(raw), st.CacheHit)
	printReplayResult(out, &rr, verbose)
	return nil
}

// printReplayResult renders a trace-replay result the way printReport
// renders a simulation report.
func printReplayResult(out io.Writer, rr *service.ReplayResult, verbose bool) {
	fmt.Fprintf(out, "program:   %s (%d events, %d threads)\n", rr.Program, rr.Events, rr.Threads)
	fmt.Fprintf(out, "sharing:   %d HITM events, %d analyzed when recorded\n", rr.HITM, rr.Analyzed)
	fmt.Fprintf(out, "races:     %d report(s)\n", len(rr.Races))
	if verbose {
		for _, r := range rr.Races {
			fmt.Fprintf(out, "  %v\n", r)
		}
	}
	fmt.Fprintf(out, "detector:  %d reads, %d writes, %d sync ops, %d same-epoch fast paths\n",
		rr.Stats.Reads, rr.Stats.Writes, rr.Stats.SyncOps, rr.Stats.SameEpochHits)
}

// watchEvents tails a server's GET /v1/events SSE feed and prints one
// JSON object per event, skipping any that keep (when non-nil) rejects.
// This is an operator tail, inherently wall-clock: nothing printed here is
// deterministic, which is why it is a standalone mode that never mixes
// with report output. Ctrl-C (or reaching count) ends the tail cleanly.
//
// A dropped connection is not fatal: the tail reconnects with exponential
// backoff (500ms doubling to 5s, reset once events flow again), sending
// Last-Event-ID so the server replays what the outage missed from its
// retained ring. Only an HTTP error status — a server that is up but says
// no — ends the tail with an error.
func watchEvents(out io.Writer, base string, count int, keep func(stream.Event) bool) error {
	url := strings.TrimRight(base, "/") + "/v1/events"
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	const (
		backoffMin = 500 * time.Millisecond
		backoffMax = 5 * time.Second
	)
	var (
		enc     = json.NewEncoder(out)
		printed = 0
		lastSeq uint64 // highest stamped Seq seen, for resume
		resumed = false
		backoff = backoffMin
		conns   = 0
	)
	for {
		conns++
		err := func() error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				return err
			}
			if resumed {
				req.Header.Set("Last-Event-ID", fmt.Sprint(lastSeq))
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return &watchHTTPError{url: url, status: resp.StatusCode}
			}
			dec := stream.NewDecoder(resp.Body)
			for {
				ev, err := dec.Next()
				if err != nil {
					return err
				}
				backoff = backoffMin // events flow: the link is healthy
				if ev.Type == stream.TypeHello && conns > 1 {
					continue // one greeting per tail, not per reconnect
				}
				if ev.Seq > 0 {
					// A replayed event can arrive twice across a
					// reconnect race; the Seq watermark dedups it.
					if resumed && ev.Seq <= lastSeq {
						continue
					}
					lastSeq, resumed = ev.Seq, true
				}
				if keep != nil && !keep(ev) {
					continue
				}
				if err := enc.Encode(ev); err != nil {
					return err
				}
				if printed++; count > 0 && printed >= count {
					return errWatchDone
				}
			}
		}()
		switch {
		case ctx.Err() != nil:
			return nil // interrupted: a clean end to a tail
		case err == errWatchDone:
			return nil
		case errors.As(err, new(*watchHTTPError)):
			return err // the server answered and refused; retrying won't help
		}
		// Transport-level drop (dial failure, reset, EOF): wait and retry.
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > backoffMax {
			backoff = backoffMax
		}
	}
}

// errWatchDone ends the tail loop when -watch-count is satisfied.
var errWatchDone = errors.New("watch count reached")

// watchHTTPError is a server-side refusal (non-200), which unlike a
// transport drop is not worth retrying.
type watchHTTPError struct {
	url    string
	status int
}

func (e *watchHTTPError) Error() string {
	return fmt.Sprintf("event tail: %s answered %d", e.url, e.status)
}

func printReport(out io.Writer, rep *demandrace.Report, verbose bool) {
	fmt.Fprintf(out, "program:   %s\n", rep.Program)
	fmt.Fprintf(out, "policy:    %s\n", rep.Policy)
	fmt.Fprintf(out, "slowdown:  %.2f× (%d tool cycles / %d native cycles)\n",
		rep.Slowdown, rep.ToolCycles, rep.NativeCycles)
	fmt.Fprintf(out, "sharing:   %.4f of %d memory accesses HITM (%d peer transfers)\n",
		rep.SharingFraction(), rep.MemOps, rep.SharedPeer)
	fmt.Fprintf(out, "analysis:  %.4f of accesses analyzed, %d samples, %d/%d mode switches on/off\n",
		rep.Demand.AnalyzedFraction(), rep.Demand.Samples,
		rep.Demand.EnableTransitions, rep.Demand.DisableTransitions)
	fmt.Fprintf(out, "races:     %d distinct racy words, %d reports\n",
		len(rep.RacyAddrs()), len(rep.Races))
	if verbose {
		for _, tr := range rep.Threads {
			fmt.Fprintf(out, "  t%d: %.1f%% analyzed (%d/%d accesses)\n",
				tr.TID, 100*tr.AnalyzedFraction(), tr.MemAnalyzed, tr.MemAnalyzed+tr.MemSkipped)
		}
		for _, r := range rep.Races {
			fmt.Fprintf(out, "  %v\n", r)
		}
		for _, r := range rep.LocksetReports {
			fmt.Fprintf(out, "  %v\n", r)
		}
	} else if len(rep.LocksetReports) > 0 {
		fmt.Fprintf(out, "lockset:   %d violations\n", len(rep.LocksetReports))
	}
	for _, r := range rep.DeadlockReports {
		fmt.Fprintf(out, "  %v\n", r)
	}
}

// resolveBatch expands a -batch spec into kernels: "all", a suite name, or
// a comma-separated kernel list.
func resolveBatch(spec string) ([]demandrace.Kernel, error) {
	switch spec {
	case "all":
		return demandrace.Kernels(), nil
	case "phoenix", "parsec", "micro", "racy":
		ks := demandrace.KernelSuite(spec)
		if len(ks) == 0 {
			return nil, fmt.Errorf("suite %q is empty", spec)
		}
		return ks, nil
	}
	var ks []demandrace.Kernel
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		k, ok := demandrace.KernelByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q in -batch (use -list)", name)
		}
		ks = append(ks, k)
	}
	return ks, nil
}

// runBatch fans the kernels out across the worker pool — each run owns its
// own program and simulated machine — and prints one summary row per kernel
// in the order the batch named them. With metrics enabled, every run feeds
// one shared registry (counters and histograms commute, so the exposition on
// stdout is byte-identical for any worker count); the wall-clock timing
// table goes to diag only.
func runBatch(out, diag io.Writer, spec string, cfg demandrace.Config, kc demandrace.KernelConfig, workers int, metrics bool) error {
	ks, err := resolveBatch(spec)
	if err != nil {
		return err
	}
	if metrics {
		cfg.Metrics = obs.NewRegistry()
	}
	eng := parallel.New(workers)
	start := time.Now()
	reps, err := parallel.Map(context.Background(), eng, len(ks), func(_ context.Context, i int) (*demandrace.Report, error) {
		p := ks[i].Build(kc)
		r, err := demandrace.Run(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", ks[i].Name, err)
		}
		return r, nil
	})
	wall := time.Since(start)
	if err != nil {
		return err
	}
	tb := stats.NewTable(fmt.Sprintf("batch: %d kernels under %s", len(ks), cfg.Demand.Kind),
		"kernel", "suite", "slowdown (×)", "sharing frac", "analyzed frac", "racy words", "reports")
	for i, r := range reps {
		tb.AddRow(ks[i].Name, ks[i].Suite,
			fmt.Sprintf("%.2f", r.Slowdown),
			fmt.Sprintf("%.4f", r.SharingFraction()),
			fmt.Sprintf("%.4f", r.Demand.AnalyzedFraction()),
			fmt.Sprintf("%d", len(r.RacyAddrs())),
			fmt.Sprintf("%d", len(r.Races)))
	}
	fmt.Fprint(out, tb)
	if metrics {
		if err := cfg.Metrics.WriteProm(out); err != nil {
			return err
		}
	}
	es := eng.Stats()
	if metrics {
		// Engine timing is wall-clock-derived, so it goes through its own
		// registry straight to diag — never the deterministic stdout one.
		dreg := obs.NewRegistry()
		es.Publish(dreg, "batch")
		if err := dreg.WriteProm(diag); err != nil {
			return err
		}
	}
	fmt.Fprint(diag, parallel.TimingTable(eng.Workers(),
		[]parallel.TimingRow{{Name: "batch:" + spec, Wall: wall, Delta: es}}, es, wall))
	return nil
}

func exploreSchedules(out io.Writer, p *demandrace.Program, cfg demandrace.Config, seeds, workers int) error {
	ex, err := demandrace.ExploreParallel(p, cfg, seeds, workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "explored %d interleavings of %s under %s\n",
		ex.Seeds, p.Name, cfg.Demand.Kind)
	fmt.Fprintf(out, "racy words: %d in every schedule, %d flaky, %d total\n",
		len(ex.Intersection), len(ex.FlakyAddrs()), len(ex.Union))
	for _, a := range ex.Union {
		fmt.Fprintf(out, "  %v  hit in %.0f%% of schedules\n", a, 100*ex.HitRate[a])
	}
	return nil
}

func comparePolicies(out io.Writer, p *demandrace.Program, cfg demandrace.Config, workers int, verbose, metrics bool) error {
	kinds := []demandrace.Policy{
		demand.Off, demand.SyncOnly, demand.Sampling, demand.PageDemand, demand.WatchDemand,
		demand.HITMDemand, demand.Hybrid, demand.Continuous,
	}
	if metrics {
		cfg.Metrics = obs.NewRegistry()
	}
	reps, err := demandrace.RunPoliciesParallel(p, cfg, workers, kinds...)
	if err != nil {
		return err
	}
	var contSlow float64
	for _, r := range reps {
		if r.Policy == demand.Continuous {
			contSlow = r.Slowdown
		}
	}
	tb := stats.NewTable(fmt.Sprintf("policy comparison: %s", p.Name),
		"policy", "slowdown", "speedup vs continuous", "analyzed frac", "races")
	for _, r := range reps {
		tb.AddRowf(r.Policy.String(), r.Slowdown, contSlow/r.Slowdown,
			r.Demand.AnalyzedFraction(), len(r.Races))
	}
	fmt.Fprint(out, tb)
	if metrics {
		if err := cfg.Metrics.WriteProm(out); err != nil {
			return err
		}
	}
	if verbose {
		for _, r := range reps {
			for _, rc := range r.Races {
				fmt.Fprintf(out, "[%s] %v\n", r.Policy, rc)
			}
		}
	}
	return nil
}
