// Package racefuzz injects synthetic data races into clean workload
// programs, providing ground truth for the detection-accuracy experiment.
//
// Each injection allocates a fresh cache line and splices unsynchronized
// accesses to it into two victim threads at pseudo-random positions. The
// injector does not guarantee that the two sides end up concurrent — an
// injection can land entirely before a barrier on one side and after it on
// the other, making the pair ordered — so the accuracy experiment uses the
// continuous-analysis detector as the oracle: an injected address counts
// only if continuous analysis (which sees every access) reports it, and the
// demand-driven detector is scored against that oracle on the identical
// interleaving.
package racefuzz

import (
	"fmt"
	"math/rand"

	"demandrace/internal/mem"
	"demandrace/internal/program"
	"demandrace/internal/vclock"
)

// Injection records one injected race site.
type Injection struct {
	// Addr is the fresh word both sides access.
	Addr mem.Addr
	// Writer and Reader are the victim threads. The writer side injects
	// stores; the reader side injects loads (or stores for W→W pairs).
	Writer vclock.TID
	Reader vclock.TID
	// ReaderWrites marks a write-write injection.
	ReaderWrites bool
	// Repeats is the number of accesses injected on each side.
	Repeats int
}

func (in Injection) String() string {
	kind := "W→R"
	if in.ReaderWrites {
		kind = "W→W"
	}
	return fmt.Sprintf("injected %s race on %v between t%d and t%d (×%d)",
		kind, in.Addr, in.Writer, in.Reader, in.Repeats)
}

// Config controls injection.
type Config struct {
	// Seed drives all random choices.
	Seed int64
	// Count is the number of races to inject (default 1).
	Count int
	// Repeats is the number of accesses injected per side (default 3).
	// 1 produces one-shot races, the demand-driven detector's known blind
	// spot.
	Repeats int
}

func (c Config) normalized() Config {
	if c.Count <= 0 {
		c.Count = 1
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c
}

// Inject returns a copy of p with cfg.Count synthetic races spliced in,
// plus the injection records. The input program is not modified. Programs
// with fewer than two threads cannot host a race and return an error.
func Inject(p *program.Program, cfg Config) (*program.Program, []Injection, error) {
	cfg = cfg.normalized()
	if p.NumThreads() < 2 {
		return nil, nil, fmt.Errorf("racefuzz: program %q has %d thread(s); need ≥ 2",
			p.Name, p.NumThreads())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Copy thread bodies so splicing never aliases the input.
	out := &program.Program{
		Name:           p.Name + "+races",
		Threads:        make([]program.Thread, len(p.Threads)),
		Mutexes:        p.Mutexes,
		Barriers:       p.Barriers,
		Semaphores:     p.Semaphores,
		BarrierParties: append([]int(nil), p.BarrierParties...),
		Labels:         append([]string(nil), p.Labels...),
	}
	for i, th := range p.Threads {
		out.Threads[i] = program.Thread{ID: th.ID, Ops: append([]program.Op(nil), th.Ops...)}
	}

	// Fresh lines start past every address the program touches.
	next := maxAddr(p) + mem.LineSize
	next = mem.Addr((uint64(next) + mem.LineSize - 1) &^ (mem.LineSize - 1))

	injections := make([]Injection, 0, cfg.Count)
	for n := 0; n < cfg.Count; n++ {
		addr := next
		next += mem.LineSize
		w := vclock.TID(rng.Intn(p.NumThreads()))
		r := vclock.TID(rng.Intn(p.NumThreads() - 1))
		if r >= w {
			r++
		}
		readerWrites := rng.Intn(3) == 0 // one third W→W
		inj := Injection{Addr: addr, Writer: w, Reader: r,
			ReaderWrites: readerWrites, Repeats: cfg.Repeats}
		splice(rng, &out.Threads[w], program.Op{Kind: program.OpStore, Addr: addr}, cfg.Repeats)
		kind := program.OpLoad
		if readerWrites {
			kind = program.OpStore
		}
		splice(rng, &out.Threads[r], program.Op{Kind: kind, Addr: addr}, cfg.Repeats)
		injections = append(injections, inj)
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("racefuzz: injected program invalid: %w", err)
	}
	return out, injections, nil
}

// splice inserts op at n random positions in th's body, preserving the
// relative order of existing ops.
func splice(rng *rand.Rand, th *program.Thread, op program.Op, n int) {
	for i := 0; i < n; i++ {
		pos := rng.Intn(len(th.Ops) + 1)
		th.Ops = append(th.Ops, program.Op{})
		copy(th.Ops[pos+1:], th.Ops[pos:])
		th.Ops[pos] = op
	}
}

func maxAddr(p *program.Program) mem.Addr {
	var m mem.Addr
	for _, th := range p.Threads {
		for _, op := range th.Ops {
			if op.Kind.IsMemory() && op.Addr > m {
				m = op.Addr
			}
		}
	}
	return m
}
