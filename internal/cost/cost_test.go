package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNativeEqualsToolWithoutAnalysis(t *testing.T) {
	a := NewAccumulator(Default())
	a.Mem(1, false)
	a.Mem(60, false)
	a.Sync(false)
	a.Compute(100)
	if a.NativeCycles() != a.ToolCycles() {
		t.Errorf("native %d != tool %d with no analysis", a.NativeCycles(), a.ToolCycles())
	}
	if a.Slowdown() != 1.0 {
		t.Errorf("slowdown = %g", a.Slowdown())
	}
}

func TestAnalyzedMemAddsCost(t *testing.T) {
	m := Default()
	a := NewAccumulator(m)
	a.Mem(1, true)
	if a.NativeCycles() != 1 {
		t.Errorf("native = %d", a.NativeCycles())
	}
	if a.ToolCycles() != 1+m.AnalysisMem {
		t.Errorf("tool = %d", a.ToolCycles())
	}
}

func TestSyncCosts(t *testing.T) {
	m := Default()
	a := NewAccumulator(m)
	a.Sync(true)
	if a.NativeCycles() != m.SyncNative {
		t.Errorf("native = %d", a.NativeCycles())
	}
	if a.ToolCycles() != m.SyncNative+m.AnalysisSync {
		t.Errorf("tool = %d", a.ToolCycles())
	}
}

func TestInterruptAndModeSwitchToolOnly(t *testing.T) {
	m := Default()
	a := NewAccumulator(m)
	a.Interrupt()
	a.ModeSwitch(2)
	if a.NativeCycles() != 0 {
		t.Error("interrupts/switches must not charge native time")
	}
	if a.ToolCycles() != m.Interrupt+2*m.ModeSwitch {
		t.Errorf("tool = %d", a.ToolCycles())
	}
}

func TestSlowdownEmptyRun(t *testing.T) {
	a := NewAccumulator(Default())
	if a.Slowdown() != 1 {
		t.Errorf("empty-run slowdown = %g", a.Slowdown())
	}
}

func TestContinuousAnalysisLandsInPaperBand(t *testing.T) {
	// A memory-bound kernel: mostly L1-hit loads. Continuous analysis must
	// land in the tens-to-hundreds-× band the paper motivates with.
	a := NewAccumulator(Default())
	for i := 0; i < 100000; i++ {
		a.Mem(1, true)
		if i%16 == 0 {
			a.Compute(4)
		}
	}
	s := a.Slowdown()
	if s < 30 || s > 300 {
		t.Errorf("continuous slowdown = %g, want within [30,300]", s)
	}
}

func TestSyncOnlyCheap(t *testing.T) {
	// A kernel with sparse sync: sync-only instrumentation must cost little.
	a := NewAccumulator(Default())
	for i := 0; i < 10000; i++ {
		a.Mem(1, false)
		a.Compute(3)
		if i%500 == 0 {
			a.Sync(true)
		}
	}
	if s := a.Slowdown(); s > 1.5 {
		t.Errorf("sync-only slowdown = %g, want ≤ 1.5", s)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(60, 2); got != 30 {
		t.Errorf("Speedup = %g", got)
	}
	if got := Speedup(60, 0); got != 0 {
		t.Errorf("Speedup by zero = %g", got)
	}
}

func TestToolAtLeastNative(t *testing.T) {
	f := func(ops []uint8) bool {
		a := NewAccumulator(Default())
		for _, o := range ops {
			switch o % 5 {
			case 0:
				a.Mem(uint64(o%60)+1, o%2 == 0)
			case 1:
				a.Sync(o%2 == 0)
			case 2:
				a.Compute(uint64(o) + 1)
			case 3:
				a.Interrupt()
			case 4:
				a.ModeSwitch(uint64(o % 3))
			}
		}
		return a.ToolCycles() >= a.NativeCycles() && a.Slowdown() >= 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero AnalysisMem should panic")
		}
	}()
	NewAccumulator(Model{})
}

func TestSlowdownMonotoneInAnalyzedFraction(t *testing.T) {
	// More analyzed accesses can only increase slowdown.
	run := func(analyzedEvery int) float64 {
		a := NewAccumulator(Default())
		for i := 0; i < 10000; i++ {
			a.Mem(1, analyzedEvery > 0 && i%analyzedEvery == 0)
		}
		return a.Slowdown()
	}
	s0, s10, s1 := run(0), run(10), run(1)
	if !(s0 < s10 && s10 < s1) {
		t.Errorf("slowdowns not monotone: %g %g %g", s0, s10, s1)
	}
	if math.Abs(s0-1.0) > 1e-9 {
		t.Errorf("zero-analysis slowdown = %g", s0)
	}
}
