// Package report renders a run's results as a self-contained HTML page —
// the shareable artifact a race-detection tool hands to the developer who
// has to fix the bug.
//
// The page carries everything needed to act on a report without the tool:
// the run configuration (program, policy, machine shape), each detected
// race with both access sites and their stack-free op coordinates, the
// sharing profile that triggered analysis, and the cost summary (slowdown
// vs native, fraction of accesses analyzed). An optional set of comparison
// runs — typically the same program under other policies — renders as a
// side-by-side summary table, mirroring the paper's continuous-vs-demand
// presentation.
//
// Everything inlines into one file (styles included, no external assets),
// so the page survives being mailed around or attached to a bug tracker.
// cmd/ddrace writes it via the -html flag.
package report

import (
	"fmt"
	"html/template"
	"io"

	"demandrace/internal/detector"
	"demandrace/internal/intern"
	"demandrace/internal/obs"
	"demandrace/internal/runner"
)

// Page is the template's view model.
type Page struct {
	Rep *runner.Report
	// Extra holds optional comparison runs (e.g., other policies on the
	// same program), rendered as a summary table.
	Extra []*runner.Report
	// Timeline holds one row per thread of the mode timeline (built from
	// Rep.Timeline; empty when the run carried no telemetry tracer).
	Timeline []TimelineRow
	// RegionPairs aggregates races by (current, previous) region label —
	// the "which two code sites conflict" view. Empty when no race carries
	// region annotations.
	RegionPairs []RegionPairRow
}

// RegionPairRow is one (current region, previous region) conflict bucket.
type RegionPairRow struct {
	Cur, Prev string
	Count     int
}

// regionPairs folds race reports into per-region-pair counts, in first-seen
// order. Labels are keyed through an intern table so the fold compares
// uint32 pairs, the same trick the detector's shadow state uses; report
// order is deterministic, so so is the row order.
func regionPairs(races []detector.Report) []RegionPairRow {
	tab := intern.New()
	idx := map[[2]uint32]int{}
	var rows []RegionPairRow
	for _, r := range races {
		if r.CurRegion == "" && r.PrevRegion == "" {
			continue
		}
		k := [2]uint32{tab.ID(r.CurRegion), tab.ID(r.PrevRegion)}
		i, ok := idx[k]
		if !ok {
			i = len(rows)
			idx[k] = i
			rows = append(rows, RegionPairRow{Cur: r.CurRegion, Prev: r.PrevRegion})
		}
		rows[i].Count++
	}
	return rows
}

// TimelineSeg is one rendered span of a thread's mode timeline.
type TimelineSeg struct {
	// WidthPct is the span's share of the run, as a CSS percentage.
	WidthPct float64
	// Analyzing selects the span's color class.
	Analyzing bool
	// Cycles is the span length, for the tooltip.
	Cycles uint64
}

// TimelineRow is one thread's strip of fast/analysis segments.
type TimelineRow struct {
	TID  int
	Segs []TimelineSeg
	// AnalyzedPct is the thread's analysis-mode residency in cycles.
	AnalyzedPct float64
}

// buildTimeline folds the runner's spans into per-thread rendered rows.
func buildTimeline(spans []obs.Span, totalCycles uint64) []TimelineRow {
	if len(spans) == 0 || totalCycles == 0 {
		return nil
	}
	byTID := map[int]*TimelineRow{}
	var order []int
	var analyzed = map[int]uint64{}
	for _, s := range spans {
		row, ok := byTID[s.TID]
		if !ok {
			row = &TimelineRow{TID: s.TID}
			byTID[s.TID] = row
			order = append(order, s.TID)
		}
		row.Segs = append(row.Segs, TimelineSeg{
			WidthPct:  100 * float64(s.Dur()) / float64(totalCycles),
			Analyzing: s.Analyzing,
			Cycles:    s.Dur(),
		})
		if s.Analyzing {
			analyzed[s.TID] += s.Dur()
		}
	}
	out := make([]TimelineRow, 0, len(order))
	for _, tid := range order {
		row := byTID[tid]
		row.AnalyzedPct = 100 * float64(analyzed[tid]) / float64(totalCycles)
		out = append(out, *row)
	}
	return out
}

var tmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"pct": func(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) },
	"f2":  func(f float64) string { return fmt.Sprintf("%.2f", f) },
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>demandrace report — {{.Rep.Program}}</title>
<style>
body { font-family: -apple-system, "Segoe UI", sans-serif; margin: 2rem auto; max-width: 60rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; margin: .5rem 0; }
th, td { text-align: left; padding: .35rem .6rem; border-bottom: 1px solid #ddd; font-size: .9rem; }
th { background: #f5f5f5; }
.race { color: #b00020; font-weight: 600; }
.clean { color: #1b6e20; font-weight: 600; }
.bar { background: #eee; border-radius: 3px; height: .8rem; width: 12rem; display: inline-block; vertical-align: middle; }
.bar span { background: #4a6fa5; height: 100%; display: block; border-radius: 3px; }
code { background: #f2f2f2; padding: .1rem .3rem; border-radius: 3px; }
.strip { display: flex; height: 1rem; border-radius: 3px; overflow: hidden; background: #eee; }
.strip .fast { background: #cfd8dc; height: 100%; }
.strip .analysis { background: #e57373; height: 100%; }
.tl-label { font-family: ui-monospace, monospace; font-size: .85rem; width: 3rem; }
.legend { font-size: .8rem; color: #555; }
.legend .chip { display: inline-block; width: .8rem; height: .8rem; border-radius: 2px; vertical-align: middle; margin: 0 .3rem 0 .8rem; }
</style>
</head>
<body>
<h1>demandrace — <code>{{.Rep.Program}}</code> under <code>{{.Rep.Policy}}</code></h1>

<h2>Verdict</h2>
{{if .Rep.Races}}<p class="race">{{len .Rep.Races}} race report(s) on {{len .Rep.RacyAddrs}} word(s).</p>
{{else}}<p class="clean">No data races detected.</p>{{end}}
{{if .Rep.DeadlockReports}}<p class="race">{{len .Rep.DeadlockReports}} potential deadlock(s).</p>{{end}}

<h2>Performance</h2>
<table>
<tr><th>slowdown</th><td>{{f2 .Rep.Slowdown}}×</td></tr>
<tr><th>tool / native cycles</th><td>{{.Rep.ToolCycles}} / {{.Rep.NativeCycles}}</td></tr>
<tr><th>accesses analyzed</th><td>
  <div class="bar"><span style="width: {{pct .Rep.Demand.AnalyzedFraction}}"></span></div>
  {{pct .Rep.Demand.AnalyzedFraction}}
</td></tr>
<tr><th>sharing fraction (HITM)</th><td>{{pct .Rep.SharingFraction}} of {{.Rep.MemOps}} accesses</td></tr>
<tr><th>PMU samples / mode switches</th><td>{{.Rep.Demand.Samples}} / {{.Rep.Demand.EnableTransitions}} on, {{.Rep.Demand.DisableTransitions}} off</td></tr>
</table>

{{if .Timeline}}
<h2>Mode timeline</h2>
<p class="legend">Per-thread execution mode over simulated cycles:
<span class="chip" style="background:#cfd8dc"></span>fast (uninstrumented)
<span class="chip" style="background:#e57373"></span>analysis (instrumented)</p>
<table>
{{range .Timeline}}
<tr><td class="tl-label">t{{.TID}}</td>
<td><div class="strip">{{range .Segs}}<div class="{{if .Analyzing}}analysis{{else}}fast{{end}}" style="width:{{f2 .WidthPct}}%" title="{{.Cycles}} cycles"></div>{{end}}</div></td>
<td>{{f2 .AnalyzedPct}}% analyzed</td></tr>
{{end}}
</table>
{{end}}

{{if .Rep.Races}}
<h2>Data races</h2>
<table>
<tr><th>#</th><th>kind</th><th>word</th><th>threads</th><th>regions</th></tr>
{{range $i, $r := .Rep.Races}}
<tr><td>{{$i}}</td><td>{{$r.Kind}}</td><td><code>{{$r.Addr}}</code></td>
<td>t{{$r.Cur}} vs t{{$r.Prev}}</td>
<td>{{if $r.CurRegion}}<code>{{$r.CurRegion}}</code> vs <code>{{$r.PrevRegion}}</code>{{else}}—{{end}}</td></tr>
{{end}}
</table>
{{end}}

{{if .RegionPairs}}
<h2>Races by region</h2>
<table>
<tr><th>current region</th><th>previous region</th><th>reports</th></tr>
{{range .RegionPairs}}
<tr><td>{{if .Cur}}<code>{{.Cur}}</code>{{else}}—{{end}}</td>
<td>{{if .Prev}}<code>{{.Prev}}</code>{{else}}—{{end}}</td>
<td>{{.Count}}</td></tr>
{{end}}
</table>
{{end}}

{{if .Rep.LocksetReports}}
<h2>Lockset violations</h2>
<table><tr><th>word</th><th>unprotected access</th></tr>
{{range .Rep.LocksetReports}}<tr><td><code>{{.Addr}}</code></td><td>{{if .Write}}write{{else}}read{{end}} by t{{.Tid}}</td></tr>{{end}}
</table>
{{end}}

{{if .Rep.DeadlockReports}}
<h2>Potential deadlocks</h2>
<table><tr><th>lock cycle</th><th>witness threads</th></tr>
{{range .Rep.DeadlockReports}}<tr><td><code>{{.Cycle}}</code></td><td>{{.Threads}}</td></tr>{{end}}
</table>
{{end}}

{{if .Extra}}
<h2>Policy comparison</h2>
<table>
<tr><th>policy</th><th>slowdown</th><th>analyzed</th><th>races</th></tr>
{{range .Extra}}<tr><td>{{.Policy}}</td><td>{{f2 .Slowdown}}×</td><td>{{pct .Demand.AnalyzedFraction}}</td><td>{{len .Races}}</td></tr>{{end}}
</table>
{{end}}

<h2>Hardware counters</h2>
<table>
<tr><th>cache accesses</th><td>{{.Rep.Cache.Accesses}} ({{.Rep.Cache.L1Hits}} L1 hits, {{.Rep.Cache.LLCHits}} LLC hits, {{.Rep.Cache.MemoryFills}} memory fills)</td></tr>
<tr><th>HITM events</th><td>{{.Rep.Cache.HITM}} ({{.Rep.Cache.HITMLoad}} load / {{.Rep.Cache.HITMStore}} store)</td></tr>
<tr><th>invalidations / writebacks</th><td>{{.Rep.Cache.Invalidations}} / {{.Rep.Cache.Writebacks}}</td></tr>
<tr><th>PMU events seen / delivered</th><td>{{.Rep.PMU.Seen}} / {{.Rep.PMU.Delivered}}</td></tr>
</table>

<h2>Per-core profile</h2>
<table>
<tr><th>core</th><th>hits</th><th>misses</th><th>HITM received</th><th>HITM supplied</th></tr>
{{range $i, $c := .Rep.Cores}}<tr><td>{{$i}}</td><td>{{$c.Hits}}</td><td>{{$c.Misses}}</td><td>{{$c.HITMIn}}</td><td>{{$c.HITMOut}}</td></tr>{{end}}
</table>

<p><small>Generated by demandrace — a reproduction of Greathouse et al.,
"Demand-Driven Software Race Detection using Hardware Performance Counters" (ISCA 2011).</small></p>
</body>
</html>
`))

// Write renders the report for rep (plus optional comparison runs) to w.
// When the run carried a telemetry tracer (Config.Trace), the page includes
// a per-thread mode timeline built from rep.Timeline.
func Write(w io.Writer, rep *runner.Report, extra ...*runner.Report) error {
	return tmpl.Execute(w, Page{
		Rep:         rep,
		Extra:       extra,
		Timeline:    buildTimeline(rep.Timeline, rep.ToolCycles),
		RegionPairs: regionPairs(rep.Races),
	})
}
