package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"demandrace/internal/obs"
	"demandrace/internal/obs/stream"
	"demandrace/internal/obs/tracectx"
	"demandrace/internal/service"
)

// TestStatsErrorsCountsHungBackends: a backend that never answers
// /v1/stats costs its own row within StatsTimeout, never the document —
// and the partial view is flagged.
func TestStatsErrorsCountsHungBackends(t *testing.T) {
	_, good := startBackend(t)
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hold every request until the client gives up
	}))
	defer hung.Close()

	g, _ := newGateway(t, Config{
		Backends: []Backend{
			{Name: "good", URL: good.URL},
			{Name: "hung", URL: hung.URL},
		},
		StatsTimeout: 50 * time.Millisecond,
	})

	start := time.Now()
	cs := g.Stats(context.Background())
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("Stats took %v; the hung backend blocked the document", took)
	}
	if cs.StatsErrors != 1 {
		t.Fatalf("stats_errors = %d, want 1", cs.StatsErrors)
	}
	byName := map[string]BackendStats{}
	for _, b := range cs.Backends {
		byName[b.Name] = b
	}
	if byName["good"].Stats == nil {
		t.Fatal("reachable backend's stats row is empty")
	}
	if byName["hung"].Stats != nil {
		t.Fatal("hung backend produced a stats row")
	}

	// The flag also reaches the HTTP document.
	var doc struct {
		StatsErrors *int `json:"stats_errors"`
	}
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if doc.StatsErrors == nil || *doc.StatsErrors != 1 {
		t.Fatalf("serialized stats_errors = %v, want 1", doc.StatsErrors)
	}
}

// TestGatewayJobTraceMergesTiers: the waterfall served by the gateway
// carries both the gateway's forward span and the backend's stage spans,
// on one timeline, under the submitter's trace ID.
func TestGatewayJobTraceMergesTiers(t *testing.T) {
	_, backendTS := startBackend(t)
	g, cl := newGateway(t, Config{Backends: []Backend{{Name: "b0", URL: backendTS.URL}}})
	_ = g

	tc := tracectx.New()
	ctx := tracectx.Into(context.Background(), tc)
	st, err := cl.Submit(ctx, service.Request{Kernel: "racy_flag"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := cl.Wait(ctx, st.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	data, err := cl.JobTrace(ctx, st.ID)
	if err != nil {
		t.Fatalf("JobTrace: %v", err)
	}
	recs, extra, err := obs.DecodeSpanTrace(data)
	if err != nil {
		t.Fatalf("gateway trace undecodable: %v", err)
	}
	if extra["job_id"] != st.ID {
		t.Fatalf("trace job_id = %q, want %q", extra["job_id"], st.ID)
	}
	if extra["trace_id"] != tc.TraceID() {
		t.Fatalf("trace_id = %q, want the submitter's %q", extra["trace_id"], tc.TraceID())
	}
	tracks := map[string]bool{}
	names := map[string]bool{}
	for _, r := range recs {
		tracks[r.Track] = true
		names[r.Name] = true
	}
	if !tracks["ddgate"] || !tracks["ddserved"] {
		t.Fatalf("merged tracks = %v, want both tiers", tracks)
	}
	for _, want := range []string{"forward", "queue_wait", "analysis", "render"} {
		if !names[want] {
			t.Errorf("merged waterfall missing %q (have %v)", want, names)
		}
	}

	if _, err := cl.JobTrace(ctx, "nosuch:j-1"); err == nil {
		t.Fatal("JobTrace for an unknown backend did not error")
	}
}

// TestGatewayTimeseriesAggregatesFleet: the gateway document contains its
// own series plus every backend's, attributed per node.
func TestGatewayTimeseriesAggregatesFleet(t *testing.T) {
	svc := service.NewServer(service.Config{Workers: 1, Node: "b0", TSInterval: 10 * time.Millisecond})
	svc.Start()
	backendTS := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		backendTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})

	g, _ := newGateway(t, Config{
		Backends:     []Backend{{Name: "b0", URL: backendTS.URL}},
		TSInterval:   10 * time.Millisecond,
		StatsTimeout: 2 * time.Second,
	})
	g.Start()
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		var doc struct {
			Node   string `json:"node"`
			Series []struct {
				Node string `json:"node"`
			} `json:"series"`
		}
		resp, err := http.Get(ts.URL + "/v1/timeseries")
		if err != nil {
			t.Fatalf("GET /v1/timeseries: %v", err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("decoding timeseries: %v", err)
		}
		resp.Body.Close()
		if doc.Node != "ddgate" {
			t.Fatalf("doc node = %q", doc.Node)
		}
		nodes := map[string]bool{}
		for _, s := range doc.Series {
			nodes[s.Node] = true
		}
		if nodes["ddgate"] && nodes["b0"] {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet document never aggregated both nodes: %v", nodes)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGatewayEventStreamTailsBackends: a single subscription at the
// gateway sees backend job events, re-namespaced into gateway job IDs.
func TestGatewayEventStreamTailsBackends(t *testing.T) {
	_, backendTS := startBackend(t)
	g, cl := newGateway(t, Config{Backends: []Backend{{Name: "b0", URL: backendTS.URL}}})
	g.Start()
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatalf("GET /v1/events: %v", err)
	}
	defer resp.Body.Close()
	dec := stream.NewDecoder(resp.Body)
	hello, err := dec.Next()
	if err != nil || hello.Type != stream.TypeHello {
		t.Fatalf("hello = %+v, %v", hello, err)
	}

	// The tailer connects asynchronously; keep submitting fresh jobs until
	// one's lifecycle reaches the gateway bus.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for seed := int64(1); ; seed++ {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			cl.Submit(ctx, service.Request{Kernel: "racy_flag", Seed: seed})
			cancel()
		}
	}()

	deadline := time.After(10 * time.Second)
	got := make(chan stream.Event, 1)
	go func() {
		for {
			ev, err := dec.Next()
			if err != nil {
				return
			}
			if ev.Type == stream.TypeJobQueued || ev.Type == stream.TypeJobDone {
				select {
				case got <- ev:
				default:
				}
				return
			}
		}
	}()
	select {
	case ev := <-got:
		if name, _, ok := splitJobID(ev.Job); !ok || name != "b0" {
			t.Fatalf("tailed event job = %q, want b0-namespaced ID", ev.Job)
		}
		if ev.Node != "ddserved" {
			t.Fatalf("tailed event node = %q, want the backend's", ev.Node)
		}
	case <-deadline:
		t.Fatal("no backend job event reached the gateway stream in 10s")
	}
}
