package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"demandrace/internal/ingest"
	"demandrace/internal/obs"
	"demandrace/internal/obs/alert"
	olog "demandrace/internal/obs/log"
	"demandrace/internal/obs/stream"
	"demandrace/internal/obs/tracectx"
	"demandrace/internal/obs/tsdb"
	"demandrace/internal/parallel"
	"demandrace/internal/runner"
	"demandrace/internal/sched"
	"demandrace/internal/store"
	"demandrace/internal/tenant"
	"demandrace/internal/trace"
	"demandrace/internal/workloads"
)

// Config shapes a Server. Zero fields take defaults.
type Config struct {
	// Workers is the analysis worker-pool width (0 = one per CPU).
	Workers int
	// QueueDepth bounds the submission queue; a full queue rejects with
	// ErrQueueFull (default 64).
	QueueDepth int
	// CacheEntries bounds the result cache (default 256; negative disables
	// caching entirely).
	CacheEntries int
	// DefaultTimeout applies to jobs that request none (default 30s);
	// MaxTimeout caps what a request may ask for (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxTraceBytes / MaxTraceEvents bound uploaded traces (defaults
	// 64 MiB / 4 Mi events). Both the one-shot POST /v1/jobs upload and a
	// whole streamed session are held to the same limits.
	MaxTraceBytes  int64
	MaxTraceEvents uint64
	// IngestSessions bounds concurrently open streaming-upload sessions;
	// IngestChunkBytes bounds one chunk's payload; IngestIdle is how long
	// a session may sit idle before the GC reclaims it. Zero values take
	// the internal/ingest defaults (64 sessions, 4 MiB, 2m).
	IngestSessions   int
	IngestChunkBytes int64
	IngestIdle       time.Duration
	// Registry receives service metrics, and — because runner counters
	// commute — the aggregated ddrace_* counters of every executed job.
	// Nil builds a private one.
	Registry *obs.Registry
	// QueueHighWater is the queue depth at which /healthz starts answering
	// degraded (503-with-body), so load balancers shed before the queue
	// hard-rejects with 429 (0 = three quarters of QueueDepth).
	QueueHighWater int
	// SLOLatency and SLOTarget define the request-latency SLO reported by
	// GET /v1/stats: SLOTarget of requests must complete within SLOLatency
	// (defaults 500ms and 0.99).
	SLOLatency time.Duration
	SLOTarget  float64
	// Log receives operational logs — request access lines, job lifecycle
	// events, drain progress. Nil discards them.
	Log *slog.Logger
	// Store is an optional on-disk result store backing the LRU cache, so
	// cache contents survive restarts (ddserved -store-dir). The server
	// does not own it: the caller opens it before NewServer and closes it
	// after Shutdown.
	Store *store.Store
	// Node names this process in GET /v1/stats, so gateway-aggregated
	// stats stay distinguishable from single-node stats (default
	// "ddserved").
	Node string
	// TSInterval and TSRetention shape the in-memory metrics history
	// behind GET /v1/timeseries: one sample of every registry metric per
	// interval, retained for the window (defaults 5s and 1h; see
	// internal/obs/tsdb).
	TSInterval  time.Duration
	TSRetention time.Duration
	// AlertRules overrides the compiled-in alert rule set evaluated on
	// every timeseries tick (ddserved -alert-rules). Nil takes
	// alert.ServiceDefaults derived from this Config; rules that fail
	// validation are logged and replaced by the defaults — loading from a
	// file should validate first via alert.LoadRulesFile.
	AlertRules []alert.Rule
	// AlertHistory bounds the resolved-alert history served by
	// GET /v1/alerts (default alert.DefaultHistory).
	AlertHistory int
	// Tenants, when non-empty, turns on multi-tenant admission (ddserved
	// -tenants): every submission must carry a known X-API-Key, and each
	// tenant is held to its token bucket and weighted share of QueueDepth.
	// Empty means tenancy off — no key required, nothing throttled.
	Tenants []tenant.Config
}

func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = parallel.DefaultWorkers()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxTraceBytes <= 0 {
		c.MaxTraceBytes = 64 << 20
	}
	if c.MaxTraceEvents == 0 {
		c.MaxTraceEvents = 1 << 22
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.QueueHighWater <= 0 || c.QueueHighWater > c.QueueDepth {
		c.QueueHighWater = c.QueueDepth * 3 / 4
		if c.QueueHighWater < 1 {
			c.QueueHighWater = 1
		}
	}
	if c.SLOLatency <= 0 {
		c.SLOLatency = 500 * time.Millisecond
	}
	if c.SLOTarget <= 0 || c.SLOTarget >= 1 {
		c.SLOTarget = 0.99
	}
	if c.Log == nil {
		c.Log = olog.Discard()
	}
	if c.Node == "" {
		c.Node = "ddserved"
	}
	return c
}

// runFunc is a job body: pure work under a deadline context.
type runFunc func(ctx context.Context) ([]byte, error)

// Server is the race-analysis service: a bounded submission queue feeding a
// worker pool, a content-addressed result cache, and a job store. Build
// with NewServer, call Start to launch the workers, serve Handler over
// HTTP, and Shutdown to drain.
type Server struct {
	cfg Config
	reg *obs.Registry
	eng *parallel.Engine

	queue   chan *Job
	drained chan struct{}
	cache   *resultCache
	bus     *stream.Bus
	ts      *tsdb.DB
	ing     *ingest.Manager
	alerts  *alert.Engine
	tenants *tenant.Registry // nil when tenancy is off

	mu       sync.Mutex
	jobs     map[string]*Job
	seq      uint64
	closed   bool // intake stopped (draining)
	started  bool
	inflight int

	// baseCtx parents every job context; canceling it is the hard-stop
	// escape hatch when a drain deadline expires.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	log   *slog.Logger
	start time.Time

	gQueue    *obs.Gauge
	gInflight *obs.Gauge
	gUtil     *obs.Gauge
	cSubmit   *obs.Counter
	cComplete *obs.Counter
	cFail     *obs.Counter
	cCancel   *obs.Counter
	cReject   *obs.Counter
	hWait     *obs.Histogram
	hJobDur   *obs.Histogram
}

// NewServer builds a stopped server; call Start to launch the worker pool.
func NewServer(cfg Config) *Server {
	cfg = cfg.normalized()
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		eng:     parallel.New(cfg.Workers),
		queue:   make(chan *Job, cfg.QueueDepth),
		drained: make(chan struct{}),
		cache:   newResultCache(cfg.CacheEntries, cfg.Registry, cfg.Store),
		bus:     stream.NewBus(cfg.Node),
		ts: tsdb.New(tsdb.Options{
			Registry:  cfg.Registry,
			Node:      cfg.Node,
			Interval:  cfg.TSInterval,
			Retention: cfg.TSRetention,
			Runtime:   true,
		}),
		jobs:       make(map[string]*Job),
		baseCtx:    baseCtx,
		baseCancel: cancel,
		log:        cfg.Log,
		start:      time.Now(),
		gQueue:     cfg.Registry.Gauge(obs.SvcQueueDepth),
		gInflight:  cfg.Registry.Gauge(obs.SvcJobsInflight),
		gUtil:      cfg.Registry.Gauge(obs.SvcWorkerUtilization),
		cSubmit:    cfg.Registry.Counter(obs.SvcJobsSubmitted),
		cComplete:  cfg.Registry.Counter(obs.SvcJobsCompleted),
		cFail:      cfg.Registry.Counter(obs.SvcJobsFailed),
		cCancel:    cfg.Registry.Counter(obs.SvcJobsCanceled),
		cReject:    cfg.Registry.Counter(obs.SvcJobsRejected),
		hWait:      cfg.Registry.Histogram(obs.SvcQueueWait, obs.LatencyBuckets),
		hJobDur:    cfg.Registry.Histogram(obs.SvcJobDuration, obs.LatencyBuckets),
	}
	// The tenant registry shares the queue depth (its weighted shares
	// divide the same capacity the queue enforces) and the bus (throttle
	// edges surface on the same stream as job lifecycle events). Nil when
	// Config.Tenants is empty: every call site is nil-safe.
	s.tenants = tenant.NewRegistry(cfg.Tenants, tenant.Options{
		Prefix:   "ddserved_",
		Capacity: cfg.QueueDepth,
		Registry: cfg.Registry,
		Bus:      s.bus,
	})
	// The ingest manager shares the server's bus, registry, and trace
	// limits, so streamed sessions surface through the same event stream,
	// metrics exposition, and 413 thresholds as batch uploads.
	s.ing = ingest.NewManager(ingest.Config{
		MaxSessions:   cfg.IngestSessions,
		MaxChunkBytes: cfg.IngestChunkBytes,
		IdleTimeout:   cfg.IngestIdle,
		Limits: trace.DecodeLimits{
			MaxEvents: cfg.MaxTraceEvents,
			MaxBytes:  cfg.MaxTraceBytes,
		},
		Node:     cfg.Node,
		Registry: cfg.Registry,
		Log:      cfg.Log,
		Bus:      s.bus,
	})
	// The alert engine watches the same tsdb the operator reads, hanging
	// its evaluation on the sampling tick so every rule sees each tick's
	// samples exactly once. Invalid programmatic rule sets fall back to
	// the defaults rather than leaving the service unwatched (file-loaded
	// rules were already validated by alert.LoadRulesFile in main).
	rules := cfg.AlertRules
	if rules == nil {
		rules = alert.ServiceDefaults(cfg.SLOTarget, cfg.QueueHighWater)
	}
	acfg := alert.Config{
		Node:     cfg.Node,
		Rules:    rules,
		Source:   s.ts,
		Bus:      s.bus,
		Registry: cfg.Registry,
		Log:      cfg.Log,
		History:  cfg.AlertHistory,
	}
	eng, err := alert.New(acfg)
	if err != nil {
		cfg.Log.Error("invalid alert rules, using defaults", "error", err)
		acfg.Rules = alert.ServiceDefaults(cfg.SLOTarget, cfg.QueueHighWater)
		eng, _ = alert.New(acfg)
	}
	s.alerts = eng
	s.ts.SetOnTick(eng.EvalNow)
	return s
}

// Registry returns the server's metrics registry (served at /metrics).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Events returns the server's live event bus (served at GET /v1/events).
func (s *Server) Events() *stream.Bus { return s.bus }

// TimeSeries returns the server's metrics history (GET /v1/timeseries).
func (s *Server) TimeSeries() *tsdb.DB { return s.ts }

// Ingest returns the server's streaming-upload session manager.
func (s *Server) Ingest() *ingest.Manager { return s.ing }

// Alerts returns the server's alert engine (served at GET /v1/alerts).
func (s *Server) Alerts() *alert.Engine { return s.alerts }

// Tenants returns the server's tenant registry (nil when tenancy is off).
func (s *Server) Tenants() *tenant.Registry { return s.tenants }

// Config returns the server's normalized configuration.
func (s *Server) Config() Config { return s.cfg }

// Start launches the worker pool. The pool is Config.Workers loops over
// the shared queue, bounded by an internal/parallel Engine, so pool busy
// time shows up in the engine's stats like every other fan-out in the
// repository. Start is idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.ts.Start()
	s.ing.Start()
	go func() {
		defer close(s.drained)
		_ = parallel.ForEach(context.Background(), s.eng, s.cfg.Workers,
			func(context.Context, int) error {
				for job := range s.queue {
					s.execute(job)
				}
				return nil
			})
	}()
}

// Shutdown drains gracefully: intake stops (submissions get ErrDraining),
// queued and in-flight jobs run to completion, and the call returns once
// the pool exits. If ctx expires first, in-flight jobs are hard-canceled
// through their contexts and the ctx error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	defer s.ts.Stop()
	defer s.ing.Stop()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	started := s.started
	s.mu.Unlock()
	if !started {
		return nil
	}
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-s.drained
		return ctx.Err()
	}
}

// Draining reports whether intake has been stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// timeoutFor clamps a requested per-job deadline to server policy.
func (s *Server) timeoutFor(ms int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// Submit validates and admits a kernel-analysis job: a cache hit completes
// immediately, otherwise the job is enqueued. ErrQueueFull and ErrDraining
// are the backpressure signals. ctx scopes the admission only (span
// parentage, log correlation) — the job body runs under its own deadline
// context; context.Background is fine for non-HTTP callers.
func (s *Server) Submit(ctx context.Context, req Request) (Status, error) {
	if err := req.Validate(); err != nil {
		return Status{}, err
	}
	n := req.normalized()
	rcfg, kc, err := n.config()
	if err != nil {
		return Status{}, err
	}
	// Jobs publish their simulation counters into the shared registry;
	// counters commute, so totals are well-defined at any concurrency.
	rcfg.Metrics = s.reg
	kernel, _ := workloads.ByName(n.Kernel)
	j := &Job{
		kind:    "kernel",
		name:    n.Kernel,
		policy:  n.Policy,
		key:     n.CacheKey(),
		timeout: s.timeoutFor(n.TimeoutMS),
		done:    make(chan struct{}),
		run: func(ctx context.Context) ([]byte, error) {
			actx, span := obs.StartSpan(ctx, "analysis")
			rep, err := runner.RunContext(actx, kernel.Build(kc), rcfg)
			span.End()
			if err != nil {
				return nil, err
			}
			_, rspan := obs.StartSpan(ctx, "render")
			data, err := json.Marshal(rep)
			rspan.End()
			return data, err
		},
	}
	return s.admit(ctx, j)
}

// SubmitTrace decodes an uploaded binary trace under the server's limits
// and admits a replay job. Oversized or malformed uploads fail here, before
// anything is queued; a *trace.LimitError is returned as-is so the HTTP
// layer can answer 413.
func (s *Server) SubmitTrace(ctx context.Context, r io.Reader, opts TraceOptions) (Status, error) {
	rec := obs.NewSpanRecorder(s.cfg.Node, 0)
	decStart := time.Now()
	raw, err := readAllLimited(r, s.cfg.MaxTraceBytes)
	if err != nil {
		return Status{}, err
	}
	tr, err := trace.DecodeBinaryLimited(bytes.NewReader(raw), trace.DecodeLimits{
		MaxEvents: s.cfg.MaxTraceEvents,
		MaxBytes:  s.cfg.MaxTraceBytes,
	})
	if err != nil {
		return Status{}, fmt.Errorf("service: decoding uploaded trace: %w", err)
	}
	rec.Add(obs.SpanRecord{
		Name: "trace_decode", Start: decStart, Dur: time.Since(decStart),
		Attrs: []obs.SpanAttr{{Key: "events", Value: fmt.Sprint(len(tr.Events))}},
	})
	j := &Job{
		kind:    "trace",
		name:    tr.Program,
		key:     TraceCacheKey(raw, opts),
		timeout: s.timeoutFor(opts.TimeoutMS),
		done:    make(chan struct{}),
		rec:     rec,
		run: func(ctx context.Context) ([]byte, error) {
			// Replay cost is bounded by the decode limits; honor the
			// deadline between construction and the (fast) replay.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			_, span := obs.StartSpan(ctx, "analysis")
			res := replay(tr, opts, s.reg)
			span.End()
			_, rspan := obs.StartSpan(ctx, "render")
			data, err := json.Marshal(res)
			rspan.End()
			return data, err
		},
	}
	return s.admit(ctx, j)
}

// readAllLimited reads at most max bytes, failing with a typed
// *trace.LimitError when the input is larger.
func readAllLimited(r io.Reader, max int64) ([]byte, error) {
	raw, err := io.ReadAll(io.LimitReader(r, max+1))
	if err != nil {
		return nil, fmt.Errorf("service: reading upload: %w", err)
	}
	if int64(len(raw)) > max {
		return nil, &trace.LimitError{What: "bytes", Limit: uint64(max), Got: uint64(len(raw))}
	}
	return raw, nil
}

// admit registers j and either completes it from the cache or enqueues it.
// The job's span is parented to the span in ctx (the submitting HTTP
// request), so execution-side logs and metrics trace back to the request
// that caused them; the trace context in ctx (if any) becomes the job's
// trace ID, correlating client, gateway, and server views of one request.
func (s *Server) admit(ctx context.Context, j *Job) (Status, error) {
	if tc, ok := tracectx.From(ctx); ok {
		j.trace = tc.TraceID()
	}
	j.tenant = tenant.From(ctx)
	if j.rec == nil {
		j.rec = obs.NewSpanRecorder(s.cfg.Node, 0)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.cReject.Inc()
		s.log.Warn("job rejected", "reason", "draining", "kind", j.kind, "name", j.name)
		return Status{}, ErrDraining
	}
	lookupStart := time.Now()
	data, hit, source, diskDur := s.cache.lookup(j.key)
	attrs := []obs.SpanAttr{{Key: "hit", Value: fmt.Sprint(hit)}}
	if source != "" {
		attrs = append(attrs, obs.SpanAttr{Key: "source", Value: source})
	}
	j.rec.Add(obs.SpanRecord{
		Name: "cache_lookup", Start: lookupStart, Dur: time.Since(lookupStart), Attrs: attrs,
	})
	if source == "disk" {
		j.rec.Add(obs.SpanRecord{Name: "store_read", Start: lookupStart, Dur: diskDur})
	}
	if hit {
		s.seq++
		j.id = fmt.Sprintf("j-%d", s.seq)
		j.state = StateDone
		j.result = data
		j.cacheHit = true
		close(j.done)
		s.jobs[j.id] = j
		st := s.statusLocked(j)
		s.mu.Unlock()
		s.cSubmit.Inc()
		s.log.Info("job done", j.logAttrs("state", string(StateDone), "cache_hit", true)...)
		s.bus.Publish(stream.Event{
			Type: stream.TypeCacheHit, Job: j.id, Trace: j.trace,
			Detail: map[string]string{"kind": j.kind, "name": j.name, "source": source},
		})
		return st, nil
	}
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		s.cReject.Inc()
		s.log.Warn("job rejected", "reason", "queue full", "kind", j.kind, "name", j.name)
		return Status{}, ErrQueueFull
	}
	s.seq++
	j.id = fmt.Sprintf("j-%d", s.seq)
	j.state = StateQueued
	j.enqueued = time.Now()
	_, j.span = obs.StartSpan(ctx, "job")
	j.span.RecordInto(j.rec)
	j.span.SetAttr("job_id", j.id)
	if j.trace != "" {
		j.span.SetAttr("trace_id", j.trace)
	}
	// The queued event goes out before the job is visible to a worker, so
	// subscribers always see queued → started → done in causal order.
	// Publish never blocks (per-subscriber drop-oldest rings), so holding
	// s.mu across it is safe.
	s.bus.Publish(stream.Event{
		Type: stream.TypeJobQueued, Job: j.id, Trace: j.trace,
		Detail: map[string]string{"kind": j.kind, "name": j.name},
	})
	// The job must be fully initialized before it becomes visible to a
	// worker. The send cannot block: every send happens under s.mu and we
	// just saw spare capacity (receives only ever free it up).
	s.queue <- j
	s.jobs[j.id] = j
	s.gQueue.Set(int64(len(s.queue)))
	st := s.statusLocked(j)
	s.mu.Unlock()
	s.cSubmit.Inc()
	// The job now occupies queue capacity: it counts against its tenant's
	// weighted share until execute retires it.
	s.tenants.Begin(j.tenant)
	s.log.Info("job queued", j.logAttrs("policy", j.policy, "timeout_ms", j.timeout.Milliseconds())...)
	return st, nil
}

// logAttrs builds the common structured-log fields for a job, including
// the trace ID when the submission carried one.
func (j *Job) logAttrs(extra ...any) []any {
	attrs := []any{"job_id", j.id, "kind", j.kind, "name", j.name}
	if j.trace != "" {
		attrs = append(attrs, "trace_id", j.trace)
	}
	return append(attrs, extra...)
}

// execute runs one dequeued job to a terminal state. Panics in the job
// body are contained: the job fails, the worker survives.
func (s *Server) execute(j *Job) {
	wait := time.Since(j.enqueued)
	s.hWait.Observe(float64(wait) / float64(time.Millisecond))
	j.rec.Add(obs.SpanRecord{Name: "queue_wait", Start: j.enqueued, Dur: wait})

	s.mu.Lock()
	j.state = StateRunning
	s.inflight++
	s.gInflight.Set(int64(s.inflight))
	s.gUtil.Set(int64(100 * s.inflight / s.cfg.Workers))
	s.gQueue.Set(int64(len(s.queue)))
	s.mu.Unlock()

	s.log.Info("job start", j.logAttrs("queue_wait_ms", float64(wait)/float64(time.Millisecond))...)
	s.bus.Publish(stream.Event{
		Type: stream.TypeJobStarted, Job: j.id, Trace: j.trace,
		Detail: map[string]string{"kind": j.kind, "name": j.name},
	})

	jobLog := s.log.With("job_id", j.id)
	if j.trace != "" {
		jobLog = jobLog.With("trace_id", j.trace)
	}
	runStart := time.Now()
	ctx, cancel := context.WithTimeout(s.baseCtx, j.timeout)
	// Re-attach the job's span so stage spans started inside the body
	// (analysis, render) parent under it and land in the job's recorder.
	ctx = obs.WithSpan(ctx, j.span)
	ctx = olog.WithJobID(ctx, j.id)
	ctx = olog.Into(ctx, jobLog)
	data, err := func() (data []byte, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("service: job panicked: %v", p)
			}
		}()
		return j.run(ctx)
	}()
	cancel()
	// The histogram and log line report the execution slice a worker spent;
	// the span, ended here, covers the job end-to-end (wait + execution)
	// under its submitting request's lineage.
	runDur := time.Since(runStart)
	s.hJobDur.Observe(float64(runDur) / float64(time.Millisecond))
	j.span.End()

	s.mu.Lock()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = data
		s.cache.put(j.key, data)
		s.cComplete.Inc()
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.errMsg = err.Error()
		s.cCancel.Inc()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.cFail.Inc()
	}
	state := j.state
	s.inflight--
	s.gInflight.Set(int64(s.inflight))
	s.gUtil.Set(int64(100 * s.inflight / s.cfg.Workers))
	s.mu.Unlock()
	close(j.done)
	s.tenants.End(j.tenant)

	attrs := j.logAttrs("state", string(state),
		"dur_ms", float64(runDur)/float64(time.Millisecond))
	var interrupted *sched.InterruptedError
	if errors.As(err, &interrupted) {
		attrs = append(attrs, "steps_at_interrupt", interrupted.Steps)
	}
	switch state {
	case StateDone:
		s.log.Info("job done", attrs...)
	default:
		s.log.Warn("job done", append(attrs, "error", j.errMsg)...)
	}
	s.bus.Publish(stream.Event{
		Type: stream.TypeJobDone, Job: j.id, Trace: j.trace,
		Detail: map[string]string{"kind": j.kind, "name": j.name, "state": string(state)},
	})
}

// Status returns the snapshot of a job.
func (s *Server) Status(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return s.statusLocked(j), nil
}

// Result returns a done job's marshaled result. The boolean distinguishes
// "no result yet" (false, with the current status) from done.
func (s *Server) Result(id string) ([]byte, Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, Status{}, ErrNotFound
	}
	return j.result, s.statusLocked(j), nil
}

// JobTrace renders a job's recorded stage spans as a Chrome trace-event
// waterfall (the GET /v1/jobs/{id}/trace body). The document is complete
// once the job is terminal; fetched earlier it shows the stages finished
// so far.
func (s *Server) JobTrace(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	state := j.state
	traceID := j.trace
	s.mu.Unlock()
	extra := map[string]string{
		"job_id": id,
		"node":   s.cfg.Node,
		"state":  string(state),
	}
	if traceID != "" {
		extra["trace_id"] = traceID
	}
	return obs.EncodeSpanTrace("job "+id, j.rec.Records(), extra)
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (s *Server) Wait(ctx context.Context, id string) (Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	select {
	case <-j.done:
		return s.Status(id)
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// QueueLen returns the number of queued (not yet running) jobs.
func (s *Server) QueueLen() int { return len(s.queue) }

func (s *Server) statusLocked(j *Job) Status {
	return Status{
		ID:       j.id,
		Kind:     j.kind,
		Name:     j.name,
		Policy:   j.policy,
		State:    j.state,
		CacheHit: j.cacheHit,
		Error:    j.errMsg,
	}
}
