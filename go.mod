module demandrace

go 1.22
