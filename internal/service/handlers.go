package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"time"

	"demandrace/internal/obs"
	"demandrace/internal/obs/alert"
	"demandrace/internal/obs/stream"
	"demandrace/internal/obs/tracectx"
	"demandrace/internal/obs/tsdb"
	"demandrace/internal/tenant"
	"demandrace/internal/trace"
)

// TraceContentType is the media type of a binary trace upload; raw
// application/octet-stream is accepted as a synonym.
const TraceContentType = "application/x-ddrace-trace"

// route pairs a mux pattern with the stable key used for its latency
// histogram (obs.SvcHTTPLatencyPrefix + key) and the /v1/stats row. quiet
// routes are polled by infrastructure, so their access logs emit at debug.
// stream routes hold their connection open indefinitely (SSE), so they
// bypass the latency histogram and SLO accounting — an hour-long tail is
// not an hour-long request.
type route struct {
	pattern string
	key     string
	quiet   bool
	stream  bool
	handler http.HandlerFunc
}

// routes returns the API surface in a fixed order — the same order
// /v1/stats reports endpoints in.
func (s *Server) routes() []route {
	return []route{
		{"POST /v1/jobs", "post_jobs", false, false, s.handleSubmit},
		{"POST /v1/traces", "post_traces", false, false, s.handleTraceOpen},
		{"PUT /v1/traces/{id}/chunks/{seq}", "put_trace_chunk", false, false, s.handleTraceChunk},
		{"GET /v1/traces/{id}", "get_trace_session", false, false, s.handleTraceSession},
		{"POST /v1/traces/{id}/commit", "post_trace_commit", false, false, s.handleTraceCommit},
		{"GET /v1/jobs/{id}", "get_job", false, false, s.handleStatus},
		{"GET /v1/jobs/{id}/trace", "get_job_trace", false, false, s.handleJobTrace},
		{"GET /v1/jobs/{id}/partial", "get_job_partial", false, false, s.handlePartial},
		{"GET /v1/results/{id}", "get_result", false, false, s.handleResult},
		{"GET /v1/cache", "get_cache_keys", true, false, s.handleCacheKeys},
		{"GET /v1/cache/{key}", "get_cache_entry", true, false, s.handleCacheGet},
		{"PUT /v1/cache/{key}", "put_cache_entry", true, false, s.handleCachePut},
		{"GET /v1/timeseries", "get_timeseries", true, false, s.handleTimeseries},
		{"GET /v1/events", "get_events", true, true, s.handleEvents},
		{"GET /v1/alerts", "get_alerts", true, false, s.handleAlerts},
		{"GET /v1/dashboard", "get_dashboard", true, false, s.handleDashboard},
		{"GET /v1/stats", "get_stats", true, false, s.handleStats},
		{"GET /healthz", "healthz", true, false, s.handleHealth},
		{"GET /metrics", "metrics", true, false, s.handleMetrics},
	}
}

// Handler returns the service API:
//
//	POST /v1/jobs          submit a job (JSON Request, or a binary trace
//	                       upload with ?fullvc=1&max_reports=N&timeout_ms=D)
//	GET  /v1/jobs/{id}     job status
//	GET  /v1/results/{id}  result JSON of a done job
//	GET  /v1/stats         latency percentiles, SLO budget, pool state
//	GET  /healthz          liveness, drain state, queue-pressure degradation
//	GET  /metrics          Prometheus text exposition of the registry
//
// Submissions answer 202 (accepted), 200 (cache hit, already done), 400
// (malformed), 413 (upload over limits), 429 + Retry-After (queue full),
// or 503 (draining).
//
// Every route is wrapped in the observability middleware: a wall-clock
// span, a per-endpoint latency histogram, the SLO breach counters, and a
// structured access-log line (method, path, status, bytes, dur_ms).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		mux.Handle(rt.pattern, s.instrument(rt))
	}
	counted := s.reg.Counter(obs.SvcHTTPRequests)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		counted.Inc()
		mux.ServeHTTP(w, r)
	})
}

// statusRecorder captures the status code and body bytes a handler wrote,
// for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += n
	return n, err
}

// instrument wraps one route with the request-scoped observability stack.
// Incoming traceparent headers are parsed (or a fresh root trace minted)
// before anything else, so the span, the access log, and whatever the
// handler admits all share one trace ID.
func (s *Server) instrument(rt route) http.Handler {
	hist := s.reg.Histogram(obs.SvcHTTPLatencyPrefix+rt.key, obs.LatencyBuckets)
	sloReq := s.reg.Counter(obs.SvcSLORequests)
	sloBreach := s.reg.Counter(obs.SvcSLOBreaches)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tc, _ := tracectx.FromHeader(r.Header.Get)
		ctx := tracectx.Into(r.Context(), tc)
		if rt.stream {
			// SSE: hand the raw writer through (the recorder would hide
			// http.Flusher) and log open/close instead of a latency line.
			s.log.Debug("event stream open", "path", r.URL.Path, "trace_id", tc.TraceID())
			rt.handler(w, r.WithContext(ctx))
			s.log.Debug("event stream closed", "path", r.URL.Path, "trace_id", tc.TraceID())
			return
		}
		ctx, span := obs.StartSpan(ctx, "http:"+rt.key)
		span.SetAttr("trace_id", tc.TraceID())
		span.ObserveInto(hist)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		rt.handler(rec, r.WithContext(ctx))
		dur := span.End()

		sloReq.Inc()
		if dur > s.cfg.SLOLatency {
			sloBreach.Inc()
		}
		logf := s.log.Info
		if rt.quiet {
			logf = s.log.Debug
		}
		logf("http request",
			"method", r.Method,
			"path", r.URL.Path,
			"route", rt.key,
			"status", rec.status,
			"bytes", rec.bytes,
			"dur_ms", float64(dur)/float64(time.Millisecond),
			"trace_id", tc.TraceID(),
		)
	})
}

// admitTenant runs the tenant gate for one submission: resolve the API
// key (401 on an unknown key while tenancy is on), stamp the resolved
// tenant name into the response header, and spend an admission token
// (429 + the tenant's own Retry-After horizon on exhaustion). ok=false
// means the response has been written. With tenancy off it admits with a
// nil tenant.
func (s *Server) admitTenant(w http.ResponseWriter, r *http.Request) (*tenant.Tenant, bool) {
	tn, err := s.tenants.Resolve(r.Header.Get(tenant.HeaderAPIKey))
	if err != nil {
		writeError(w, http.StatusUnauthorized, err.Error())
		return nil, false
	}
	if tn != nil {
		w.Header().Set(tenant.HeaderTenant, tn.Name())
	}
	if ra, ok := s.tenants.Admit(tn); !ok {
		s.cReject.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(ra))
		s.log.Warn("job rejected", "reason", "tenant throttled", "tenant", tn.Name(), "retry_after_s", ra)
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q: admission budget exhausted, retry in %ds", tn.Name(), ra))
		return nil, false
	}
	return tn, true
}

// countingReader counts the bytes a submission actually consumed, for
// per-tenant usage accounting.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tn, admitted := s.admitTenant(w, r)
	if !admitted {
		return
	}
	ctx := tenant.Into(r.Context(), tn)
	body := &countingReader{r: r.Body}
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	var (
		st  Status
		err error
	)
	switch ct {
	case TraceContentType, "application/octet-stream":
		st, err = s.SubmitTrace(ctx, body, parseTraceOptions(r.URL.Query()))
	default:
		var req Request
		if derr := json.NewDecoder(body).Decode(&req); derr != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", derr))
			return
		}
		st, err = s.Submit(ctx, req)
	}
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	s.tenants.Account(tn, body.n, st.CacheHit)
	code := http.StatusAccepted
	if st.State == StateDone {
		code = http.StatusOK // cache hit: the result is already fetchable
	}
	writeJSON(w, code, st)
}

// writeSubmitError maps admission errors onto status codes.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	var lim *trace.LimitError
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.As(err, &lim):
		writeError(w, http.StatusRequestEntityTooLarge, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	data, st, err := s.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	switch st.State {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, st.Error)
	case StateCanceled:
		writeError(w, http.StatusGatewayTimeout, st.Error)
	default:
		// Not terminal yet: tell the poller to come back.
		writeJSON(w, http.StatusConflict, st)
	}
}

// Health states, in degradation order. Load balancers should route traffic
// only to "ok" backends; "degraded" (queue past the high-water mark) and
// "draining" both answer 503 so shedding starts before hard 429 rejections.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
	HealthDraining = "draining"
)

// Health reports the server's current health state and queue occupancy.
func (s *Server) Health() (state string, queued, inflight int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	queued = len(s.queue)
	inflight = s.inflight
	switch {
	case s.closed:
		state = HealthDraining
	case queued > s.cfg.QueueHighWater:
		state = HealthDegraded
	default:
		state = HealthOK
	}
	return state, queued, inflight
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	state, queued, inflight := s.Health()
	pending, firing := s.alerts.Counts()
	// Per-subsystem detail makes the degraded→503 transition explainable
	// from the response alone: which gauge crossed which bound.
	subsystems := map[string]any{
		"queue": map[string]any{
			"depth":      queued,
			"capacity":   s.cfg.QueueDepth,
			"high_water": s.cfg.QueueHighWater,
			"degraded":   queued > s.cfg.QueueHighWater,
		},
		"workers": map[string]any{
			"width":           s.cfg.Workers,
			"inflight":        inflight,
			"utilization_pct": s.gUtil.Value(),
		},
		"ingest": map[string]any{
			"open_sessions": s.ing.Len(),
			"max_sessions":  s.ing.Config().MaxSessions,
		},
		"alerts": map[string]any{
			"pending": pending,
			"firing":  firing,
		},
	}
	if s.cfg.Store != nil {
		subsystems["store"] = map[string]any{
			"dir":     s.cfg.Store.Dir(),
			"entries": s.cfg.Store.Len(),
			"bytes":   s.cfg.Store.Size(),
		}
	}
	if s.tenants.Enabled() {
		ts := s.tenants.StatsSnapshot()
		var throttled uint64
		for _, t := range ts {
			throttled += t.Throttled
		}
		subsystems["tenants"] = map[string]any{
			"count":     len(ts),
			"throttled": throttled,
		}
	}
	body := map[string]any{
		"status":     state,
		"queued":     queued,
		"inflight":   inflight,
		"high_water": s.cfg.QueueHighWater,
		"subsystems": subsystems,
	}
	code := http.StatusOK
	if state != HealthOK {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Server) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.alerts.Doc())
}

func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	alert.ServeConsole(w, s.cfg.Node)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	data, err := s.JobTrace(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	since, err := tsdb.ParseSince(r.URL.Query().Get("since"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.ts.Doc(r.URL.Query().Get("metric"), since))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	stream.ServeSSE(w, r, s.bus)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Scrape time is an observation point: refresh the process-level
	// runtime gauges so goroutine/heap/GC numbers are current.
	obs.UpdateProcessGauges(s.reg)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteProm(w); err != nil {
		// Headers are gone; nothing useful left to do but note it.
		fmt.Fprintf(w, "# write error: %v\n", err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
