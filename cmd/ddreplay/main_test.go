package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"demandrace"
	olog "demandrace/internal/obs/log"
	"demandrace/internal/trace"
)

// record produces a trace file of a racy kernel run under continuous
// analysis, in binary or JSON form.
func record(t *testing.T, asJSON bool) string {
	t.Helper()
	k, _ := demandrace.KernelByName("racy_flag")
	p := k.Build(demandrace.KernelConfig{Threads: 2, Scale: 1})
	cfg := demandrace.DefaultConfig().WithPolicy(demandrace.Continuous)
	cfg.Tracer = demandrace.NewTraceRecorder(p.Name)
	if _, err := demandrace.Run(p, cfg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.drt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if asJSON {
		err = trace.EncodeJSON(f, cfg.Tracer.Trace())
	} else {
		err = trace.EncodeBinary(f, cfg.Tracer.Trace())
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReplayBinary(t *testing.T) {
	path := record(t, false)
	var buf bytes.Buffer
	if err := run(&buf, olog.Discard(), path, false, 1, false, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "trace:    racy_flag") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "race report(s)") || strings.Contains(out, "0 race report(s)") {
		t.Errorf("replay found no races:\n%s", out)
	}
	if !strings.Contains(out, "FastTrack") {
		t.Errorf("missing engine name:\n%s", out)
	}
}

func TestReplayJSONAndFullVC(t *testing.T) {
	path := record(t, true)
	var buf bytes.Buffer
	if err := run(&buf, olog.Discard(), path, true, -1, true, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "full-VC") {
		t.Errorf("missing engine name:\n%s", buf.String())
	}
}

func TestReplayErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, olog.Discard(), "/nonexistent/file", false, 1, false, 0); err == nil {
		t.Error("missing file accepted")
	}
	// Binary decoder on a JSON file must fail cleanly.
	path := record(t, true)
	if err := run(&buf, olog.Discard(), path, false, 1, false, 0); err == nil {
		t.Error("JSON trace accepted by binary decoder")
	}
}
