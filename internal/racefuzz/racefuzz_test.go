package racefuzz

import (
	"reflect"
	"testing"

	"demandrace/internal/demand"
	"demandrace/internal/mem"
	"demandrace/internal/program"
	"demandrace/internal/runner"
	"demandrace/internal/workloads"
)

func cleanProgram() *program.Program {
	return workloads.MicroPrivate(workloads.Config{Threads: 4, Scale: 1})
}

func TestInjectPreservesInput(t *testing.T) {
	p := cleanProgram()
	before := make([]int, len(p.Threads))
	for i, th := range p.Threads {
		before[i] = len(th.Ops)
	}
	_, _, err := Inject(p, Config{Seed: 1, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, th := range p.Threads {
		if len(th.Ops) != before[i] {
			t.Errorf("input thread %d mutated: %d → %d ops", i, before[i], len(th.Ops))
		}
	}
}

func TestInjectAddsExpectedOps(t *testing.T) {
	p := cleanProgram()
	out, injs, err := Inject(p, Config{Seed: 2, Count: 2, Repeats: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(injs) != 2 {
		t.Fatalf("injections = %v", injs)
	}
	added := out.TotalOps() - p.TotalOps()
	if added != 2*2*4 {
		t.Errorf("added %d ops, want 16", added)
	}
	for _, in := range injs {
		if in.Writer == in.Reader {
			t.Errorf("injection pairs a thread with itself: %v", in)
		}
		// Fresh addresses must be line-aligned and beyond the original
		// program's footprint.
		if mem.Offset(in.Addr) != 0 {
			t.Errorf("injected address %v not line-aligned", in.Addr)
		}
	}
	if injs[0].Addr == injs[1].Addr {
		t.Error("injections share an address")
	}
}

func TestInjectedProgramValidates(t *testing.T) {
	for _, k := range workloads.All() {
		p := k.Build(workloads.Config{Threads: 4, Scale: 1})
		if p.NumThreads() < 2 {
			continue
		}
		out, _, err := Inject(p, Config{Seed: 3, Count: 2})
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		if err := out.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestInjectedRacesDetectedByContinuous(t *testing.T) {
	p := cleanProgram()
	out, injs, err := Inject(p, Config{Seed: 4, Count: 3, Repeats: 5})
	if err != nil {
		t.Fatal(err)
	}
	r, err := runner.Run(out, runner.DefaultConfig().WithPolicy(demand.Continuous))
	if err != nil {
		t.Fatal(err)
	}
	racy := map[mem.Addr]bool{}
	for _, rc := range r.Races {
		racy[rc.Addr] = true
	}
	found := 0
	for _, in := range injs {
		if racy[in.Addr] {
			found++
		}
	}
	// With 5 repeats per side in an unsynchronized kernel, essentially all
	// injections are concurrent.
	if found < 2 {
		t.Errorf("continuous found %d/%d injected races", found, len(injs))
	}
	// No race outside the injected set: the host kernel is clean.
	for a := range racy {
		ok := false
		for _, in := range injs {
			if in.Addr == a {
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected race at %v", a)
		}
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	p := cleanProgram()
	a, ia, err := Inject(p, Config{Seed: 7, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, ib, err := Inject(p, Config{Seed: 7, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(ia, ib) {
		t.Error("same seed produced different injections")
	}
	c, _, err := Inject(p, Config{Seed: 8, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical programs (suspicious)")
	}
}

func TestRejectsSingleThread(t *testing.T) {
	b := program.NewBuilder("solo")
	a := b.Space().AllocLine(8)
	b.Thread().Load(a)
	p := b.MustBuild()
	if _, _, err := Inject(p, Config{}); err == nil {
		t.Error("single-thread program accepted")
	}
}

func TestDefaults(t *testing.T) {
	p := cleanProgram()
	out, injs, err := Inject(p, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(injs) != 1 || injs[0].Repeats != 3 {
		t.Errorf("defaults: %v", injs)
	}
	if out.TotalOps()-p.TotalOps() != 6 {
		t.Errorf("default splice added %d ops", out.TotalOps()-p.TotalOps())
	}
}

func TestInjectionString(t *testing.T) {
	in := Injection{Addr: 0x1000, Writer: 0, Reader: 2, Repeats: 3}
	if in.String() != "injected W→R race on 0x1000 between t0 and t2 (×3)" {
		t.Errorf("String = %q", in.String())
	}
	in.ReaderWrites = true
	if in.String() != "injected W→W race on 0x1000 between t0 and t2 (×3)" {
		t.Errorf("String = %q", in.String())
	}
}

func TestOneShotInjectionOftenMissedByDemand(t *testing.T) {
	// Statistical regression of the paper's accuracy loss: one-shot races
	// injected into a clean kernel are found by continuous analysis but
	// frequently missed by the demand-driven detector (the HITM arrives
	// with the second access, after the first went unobserved). Repeated
	// races are mostly caught. Aggregated over seeds to stay robust.
	contOne, demOne, contRep, demRep := 0, 0, 0, 0
	for seed := int64(0); seed < 20; seed++ {
		for _, repeats := range []int{1, 6} {
			p := cleanProgram()
			out, injs, err := Inject(p, Config{Seed: seed, Count: 1, Repeats: repeats})
			if err != nil {
				t.Fatal(err)
			}
			reps, err := runner.RunPolicies(out, runner.DefaultConfig(),
				demand.Continuous, demand.HITMDemand)
			if err != nil {
				t.Fatal(err)
			}
			hit := func(r *runner.Report) bool {
				for _, rc := range r.Races {
					if rc.Addr == injs[0].Addr {
						return true
					}
				}
				return false
			}
			if repeats == 1 {
				if hit(reps[0]) {
					contOne++
				}
				if hit(reps[1]) {
					demOne++
				}
			} else {
				if hit(reps[0]) {
					contRep++
				}
				if hit(reps[1]) {
					demRep++
				}
			}
		}
	}
	if contOne < 15 {
		t.Errorf("continuous found only %d/20 one-shot injections", contOne)
	}
	if demOne >= contOne {
		t.Errorf("demand (%d) should trail continuous (%d) on one-shot races", demOne, contOne)
	}
	if demRep < contRep-4 {
		t.Errorf("demand (%d) should nearly match continuous (%d) on repeated races", demRep, contRep)
	}
}
