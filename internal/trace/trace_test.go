package trace_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"demandrace/internal/demand"
	"demandrace/internal/detector"
	"demandrace/internal/runner"
	"demandrace/internal/trace"
	"demandrace/internal/workloads"
)

func recordedTrace(t *testing.T, kernel string, policy demand.PolicyKind) *trace.Trace {
	t.Helper()
	k, ok := workloads.ByName(kernel)
	if !ok {
		t.Fatalf("kernel %q not found", kernel)
	}
	p := k.Build(workloads.Config{Threads: 4, Scale: 1})
	cfg := runner.DefaultConfig().WithPolicy(policy)
	rec := trace.NewRecorder(p.Name)
	cfg.Tracer = rec
	if _, err := runner.Run(p, cfg); err != nil {
		t.Fatal(err)
	}
	return rec.Trace()
}

func TestRecorderCapturesAllOps(t *testing.T) {
	k, _ := workloads.ByName("racy_counter")
	p := k.Build(workloads.Config{Threads: 2, Scale: 1})
	cfg := runner.DefaultConfig().WithPolicy(demand.Continuous)
	rec := trace.NewRecorder(p.Name)
	cfg.Tracer = rec
	rep, err := runner.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	if uint64(len(tr.Events)) != rep.Steps {
		t.Errorf("trace has %d events, scheduler ran %d steps", len(tr.Events), rep.Steps)
	}
	// Sequence numbers are dense and ascending.
	for i, e := range tr.Events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestReplayMatchesLiveContinuous(t *testing.T) {
	for _, kernel := range []string{"racy_counter", "racy_flag", "histogram"} {
		k, _ := workloads.ByName(kernel)
		p := k.Build(workloads.Config{Threads: 4, Scale: 1})
		cfg := runner.DefaultConfig().WithPolicy(demand.Continuous)
		rec := trace.NewRecorder(p.Name)
		cfg.Tracer = rec
		rep, err := runner.Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		det := trace.Replay(rec.Trace(), detector.Options{})
		if !reflect.DeepEqual(det.Reports(), rep.Races) {
			t.Errorf("%s: replay races %v != live races %v", kernel, det.Reports(), rep.Races)
		}
	}
}

func TestReplayMatchesLiveDemand(t *testing.T) {
	// Replay must also reproduce the *gated* analysis: only analyzed
	// events reach the detector.
	k, _ := workloads.ByName("racy_counter")
	p := k.Build(workloads.Config{Threads: 4, Scale: 2})
	cfg := runner.DefaultConfig().WithPolicy(demand.HITMDemand)
	rec := trace.NewRecorder(p.Name)
	cfg.Tracer = rec
	rep, err := runner.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	det := trace.Replay(rec.Trace(), detector.Options{})
	if !reflect.DeepEqual(det.Reports(), rep.Races) {
		t.Errorf("replay races %v != live races %v", det.Reports(), rep.Races)
	}
}

func TestReplayWithDifferentOptions(t *testing.T) {
	tr := recordedTrace(t, "racy_counter", demand.Continuous)
	ft := trace.Replay(tr, detector.Options{})
	fv := trace.Replay(tr, detector.Options{FullVC: true})
	ftAddrs := map[string]bool{}
	for _, r := range ft.Reports() {
		ftAddrs[r.Addr.String()] = true
	}
	for _, r := range fv.Reports() {
		if !ftAddrs[r.Addr.String()] {
			t.Errorf("full-VC replay found %v that FastTrack did not", r)
		}
	}
	if len(fv.Reports()) == 0 {
		t.Error("full-VC replay found nothing")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := recordedTrace(t, "kmeans", demand.Continuous)
	var buf bytes.Buffer
	if err := trace.EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := trace.DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Error("binary round trip changed the trace")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := recordedTrace(t, "micro_producer_consumer", demand.HITMDemand)
	var buf bytes.Buffer
	if err := trace.EncodeJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := trace.DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Error("JSON round trip changed the trace")
	}
}

func TestBinaryCompactness(t *testing.T) {
	tr := recordedTrace(t, "histogram", demand.Continuous)
	var bin, js bytes.Buffer
	if err := trace.EncodeBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeJSON(&js, tr); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= js.Len() {
		t.Errorf("binary (%d bytes) not smaller than JSON (%d bytes)", bin.Len(), js.Len())
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := trace.DecodeBinary(strings.NewReader("NOPE....")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := trace.DecodeBinary(strings.NewReader("DR")); err == nil {
		t.Error("truncated magic accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	tr := recordedTrace(t, "micro_private", demand.Off)
	var buf bytes.Buffer
	if err := trace.EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := trace.DecodeBinary(bytes.NewReader(b[:len(b)/2])); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestHITMEventsMarked(t *testing.T) {
	tr := recordedTrace(t, "micro_producer_consumer", demand.Off)
	n := 0
	for _, e := range tr.Events {
		if e.HITM {
			n++
		}
	}
	if n < 90 {
		t.Errorf("trace marked %d HITM events, want ≈100", n)
	}
}

func TestDimsInference(t *testing.T) {
	tr := recordedTrace(t, "kmeans", demand.Continuous)
	threads, mutexes, _ := tr.Dims()
	if threads != 4 {
		t.Errorf("inferred %d threads", threads)
	}
	if mutexes != 1 {
		t.Errorf("inferred %d mutexes", mutexes)
	}
}

func TestOffPolicyTraceHasNoAnalyzedEvents(t *testing.T) {
	tr := recordedTrace(t, "racy_counter", demand.Off)
	for _, e := range tr.Events {
		if e.Analyzed {
			t.Fatal("Off-policy trace contains analyzed events")
		}
	}
	det := trace.Replay(tr, detector.Options{})
	if len(det.Reports()) != 0 {
		t.Error("replaying an Off trace found races")
	}
}

func TestSummarize(t *testing.T) {
	tr := recordedTrace(t, "racy_flag", demand.Continuous)
	s := trace.Summarize(tr)
	if s.Program != "racy_flag" || s.Threads != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.Events != len(tr.Events) {
		t.Errorf("events = %d", s.Events)
	}
	total := 0
	for _, n := range s.ByKind {
		total += n
	}
	if total != s.Events {
		t.Errorf("kind counts sum to %d, want %d", total, s.Events)
	}
	if s.HITM == 0 {
		t.Error("racy_flag trace should record HITM events")
	}
	if s.Analyzed == 0 {
		t.Error("continuous trace should mark analyzed events")
	}
}

func TestDecodeBinaryRejectsHugeLengths(t *testing.T) {
	// A crafted header claiming a multi-gigabyte program name must fail
	// cleanly instead of allocating.
	crafted := append([]byte("DRT1"), 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := trace.DecodeBinary(bytes.NewReader(crafted)); err == nil {
		t.Error("oversized name length accepted")
	}
}

// stripsOnly drops the header and legend lines so glyph assertions only
// see the per-thread strips.
func stripsOnly(out string) string {
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) <= 2 {
		return ""
	}
	return strings.Join(lines[1:len(lines)-1], "\n")
}

func TestTimelineRendering(t *testing.T) {
	tr := recordedTrace(t, "racy_mostly_clean", demand.HITMDemand)
	out := trace.Timeline(tr, 60)
	if !strings.Contains(out, "t0 ") || !strings.Contains(out, "t3 ") {
		t.Errorf("missing thread strips:\n%s", out)
	}
	// A demand-policy run of this kernel has fast spans, analyzed spans,
	// and caught HITMs (checked against the strips, not the legend).
	strips := stripsOnly(out)
	for _, glyph := range []string{"·", "█", "!"} {
		if !strings.Contains(strips, glyph) {
			t.Errorf("timeline missing %q:\n%s", glyph, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 4 threads + legend
	if len(lines) != 6 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTimelineOffPolicyShowsUnobservedSharing(t *testing.T) {
	tr := recordedTrace(t, "micro_producer_consumer", demand.Off)
	strips := stripsOnly(trace.Timeline(tr, 40))
	if !strings.Contains(strips, "~") {
		t.Errorf("Off-policy HITMs should render as unobserved:\n%s", strips)
	}
	if strings.Contains(strips, "!") || strings.Contains(strips, "█") {
		t.Errorf("Off policy cannot analyze anything:\n%s", strips)
	}
}

func TestTimelineEmptyAndTinyWidth(t *testing.T) {
	if got := trace.Timeline(&trace.Trace{Program: "x"}, 40); got != "(empty trace)\n" {
		t.Errorf("empty = %q", got)
	}
	tr := recordedTrace(t, "micro_private", demand.Off)
	out := trace.Timeline(tr, 1) // clamped to minimum width
	if !strings.Contains(out, "t0 ") {
		t.Errorf("tiny width broke rendering:\n%s", out)
	}
}
