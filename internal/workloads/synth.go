package workloads

import (
	"fmt"

	"demandrace/internal/mem"
	"demandrace/internal/program"
)

// SynthSpec parameterizes a synthetic kernel whose single controlled
// variable is its sharing profile — the knob the paper's results pivot on.
// The sharing-fraction sweep experiment uses it to trace the demand-driven
// detector's speedup as a continuous function of sharing, rather than at
// the benchmark suites' fixed points.
type SynthSpec struct {
	// Threads is the worker count (default 4).
	Threads int
	// Iters is the per-thread iteration count (default 500). Each
	// iteration is one private load+store plus compute.
	Iters int
	// ShareEvery makes every k-th iteration also perform a shared-data
	// update; 0 disables sharing entirely.
	ShareEvery int
	// SharedWords sizes the shared region touched per sharing burst
	// (default 4).
	SharedWords int
	// ComputeDensity is the compute cycles per iteration (default 3).
	ComputeDensity uint64
	// Unlocked leaves the shared updates unsynchronized, turning every
	// sharing burst into a data race (for accuracy sweeps).
	Unlocked bool
}

func (s SynthSpec) normalized() SynthSpec {
	if s.Threads <= 0 {
		s.Threads = 4
	}
	if s.Iters <= 0 {
		s.Iters = 500
	}
	if s.SharedWords <= 0 {
		s.SharedWords = 4
	}
	if s.ComputeDensity == 0 {
		s.ComputeDensity = 3
	}
	return s
}

// Name renders a descriptive program name for the spec.
func (s SynthSpec) Name() string {
	lock := "locked"
	if s.Unlocked {
		lock = "racy"
	}
	return fmt.Sprintf("synth_t%d_i%d_s%d_%s", s.Threads, s.Iters, s.ShareEvery, lock)
}

// Synth builds the kernel described by spec.
func Synth(spec SynthSpec) *program.Program {
	spec = spec.normalized()
	b := program.NewBuilder(spec.Name())
	work := workerArrays(b, spec.Threads, spec.Iters)
	shared := b.Space().AllocArray(uint64(spec.SharedWords), mem.WordSize)
	mu := b.Mutex()
	for t := 0; t < spec.Threads; t++ {
		tb := b.Thread()
		tb.Region("private")
		for i := 0; i < spec.Iters; i++ {
			a := work[t] + mem.Addr(i*mem.WordSize)
			tb.Load(a).Store(a).Compute(spec.ComputeDensity)
			if spec.ShareEvery > 0 && i%spec.ShareEvery == spec.ShareEvery-1 {
				tb.Region("shared-burst")
				if !spec.Unlocked {
					tb.Lock(mu)
				}
				for w := 0; w < spec.SharedWords; w++ {
					sa := shared + mem.Addr(w*mem.WordSize)
					tb.Load(sa).Store(sa)
				}
				if !spec.Unlocked {
					tb.Unlock(mu)
				}
				tb.Region("private")
			}
		}
	}
	return b.MustBuild()
}
