// Package mem defines the memory primitives shared by the cache simulator,
// the race detectors, and the workload programs: byte addresses, cache-line
// geometry, and simple address-space allocation.
//
// Everything in the reproduction operates on a flat 64-bit address space.
// The cache hierarchy works at line granularity (mem.Line), while the race
// detectors work at word granularity (mem.Addr), which is exactly the split
// that produces the paper's false-sharing behavior: two distinct variables
// that map to the same line look like sharing to the hardware indicator but
// not to the software detector.
package mem

import "fmt"

// Addr is a byte address in the simulated flat address space.
type Addr uint64

// LineSize is the cache line size in bytes. 64 matches the Intel parts the
// paper's HITM events were measured on.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// WordSize is the access granularity the detectors track, in bytes.
const WordSize = 8

// WordShift is log2(WordSize): the shift that turns a byte address into a
// word index, which the shadow table uses to derive page coordinates.
const WordShift = 3

// Line identifies a cache line: the address with the low offset bits dropped.
type Line uint64

// LineOf returns the cache line containing addr.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// Base returns the first byte address of the line.
func (l Line) Base() Addr { return Addr(l) << LineShift }

// Contains reports whether addr falls inside the line.
func (l Line) Contains(a Addr) bool { return LineOf(a) == l }

// WordOf returns the word-aligned address containing a. The detectors index
// shadow memory by word, so unaligned accesses collapse onto their word.
func WordOf(a Addr) Addr { return a &^ (WordSize - 1) }

// Offset returns the byte offset of a within its cache line.
func Offset(a Addr) uint { return uint(a) & (LineSize - 1) }

// SameLine reports whether two addresses share a cache line. This is the
// hardware's notion of "the same location"; the detector's notion is
// SameWord.
func SameLine(a, b Addr) bool { return LineOf(a) == LineOf(b) }

// SameWord reports whether two addresses fall in the same detector word.
func SameWord(a, b Addr) bool { return WordOf(a) == WordOf(b) }

func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

func (l Line) String() string { return fmt.Sprintf("line:0x%x", uint64(l)) }

// Space is a bump allocator over the simulated address space. Workloads use
// it to lay out their arrays and shared variables; its only job is to hand
// out non-overlapping regions with controlled alignment so that tests can
// force or forbid false sharing deliberately.
type Space struct {
	next Addr
}

// NewSpace returns an address space whose first allocation begins at base.
// A non-zero base keeps address 0 invalid, which catches uninitialized Addr
// values in tests.
func NewSpace(base Addr) *Space {
	if base == 0 {
		base = Addr(LineSize)
	}
	return &Space{next: base}
}

// Alloc reserves size bytes aligned to align (which must be a power of two,
// or 0/1 for byte alignment) and returns the base address.
func (s *Space) Alloc(size uint64, align uint64) Addr {
	if align <= 1 {
		align = 1
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	a := (uint64(s.next) + align - 1) &^ (align - 1)
	s.next = Addr(a + size)
	return Addr(a)
}

// AllocLine reserves size bytes starting on a fresh cache line, padding the
// tail so the next allocation cannot share the final line. Workloads use it
// to rule out accidental false sharing.
func (s *Space) AllocLine(size uint64) Addr {
	a := s.Alloc(size, LineSize)
	// Pad to the end of the last line touched.
	end := (uint64(a) + size + LineSize - 1) &^ (LineSize - 1)
	s.next = Addr(end)
	return a
}

// AllocArray reserves count elements of elemSize bytes, line-aligned, and
// returns the base. Element i lives at Base + i*elemSize.
func (s *Space) AllocArray(count, elemSize uint64) Addr {
	return s.AllocLine(count * elemSize)
}

// Next returns the next unallocated address (useful for sizing reports).
func (s *Space) Next() Addr { return s.next }
