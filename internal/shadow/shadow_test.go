package shadow

import (
	"testing"

	"demandrace/internal/mem"
	"demandrace/internal/vclock"
)

func TestRefNormalizesToWord(t *testing.T) {
	tb := NewTable()
	a := tb.Ref(0x101)
	b := tb.Ref(0x107)
	if a != b {
		t.Error("addresses in one word got distinct states")
	}
	c := tb.Ref(0x108)
	if a == c {
		t.Error("addresses in different words share a state")
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d, want 2", tb.Len())
	}
}

func TestGetWithoutRef(t *testing.T) {
	tb := NewTable()
	if tb.Get(0x100) != nil {
		t.Error("Get on untouched word should be nil")
	}
	s := tb.Ref(0x100)
	if tb.Get(0x103) != s {
		t.Error("Get should find the created state via any byte of the word")
	}
	// A neighbor on the same (now cached) page is still untouched.
	if tb.Get(0x100+mem.WordSize) != nil {
		t.Error("untouched word on a touched page should be nil")
	}
}

func TestRefStableAcrossPages(t *testing.T) {
	tb := NewTable()
	// Far-apart addresses land on distinct pages; revisiting the first page
	// after touching the second must return the same slot.
	a1 := tb.Ref(0x100)
	a1.W = vclock.MakeEpoch(1, 7)
	far := mem.Addr(64 * PageWords * mem.WordSize)
	tb.Ref(far)
	if got := tb.Ref(0x100); got != a1 || got.W != vclock.MakeEpoch(1, 7) {
		t.Errorf("slot moved or lost state across page switches: %p vs %p", got, a1)
	}
	if tb.Pages() != 2 {
		t.Errorf("Pages = %d, want 2", tb.Pages())
	}
}

func TestInflateReadSeedsPriorEpoch(t *testing.T) {
	s := &State{R: vclock.MakeEpoch(2, 7)}
	s.InflateRead()
	if s.R != vclock.ReadShared {
		t.Errorf("R = %v, want SHARED", s.R)
	}
	if s.ReaderTime(2) != 7 {
		t.Errorf("ReaderTime(2) = %d, want 7", s.ReaderTime(2))
	}
	if s.Spilled() {
		t.Error("single-reader inflation should stay inline")
	}
}

func TestInflateReadFromNone(t *testing.T) {
	s := &State{}
	s.InflateRead()
	if s.R != vclock.ReadShared || s.nread != 0 || s.RVC != nil {
		t.Errorf("state = %+v", s)
	}
}

func TestInflateReadIdempotentOnShared(t *testing.T) {
	var pool vclock.Pool
	s := &State{}
	s.InflateRead()
	s.SetReader(1, 5, &pool)
	s.InflateRead()
	if s.ReaderTime(1) != 5 {
		t.Error("re-inflation lost read history")
	}
}

func TestSetReaderUpdatesInPlace(t *testing.T) {
	var pool vclock.Pool
	s := &State{R: vclock.MakeEpoch(0, 1)}
	s.InflateRead()
	s.SetReader(1, 3, &pool)
	s.SetReader(1, 9, &pool)
	if s.ReaderTime(1) != 9 {
		t.Errorf("ReaderTime(1) = %d, want 9", s.ReaderTime(1))
	}
	if s.nread != 2 {
		t.Errorf("nread = %d, want 2 (same thread must not burn a slot)", s.nread)
	}
}

func TestSetReaderSpillsPastInlineSlots(t *testing.T) {
	var pool vclock.Pool
	s := &State{}
	s.InflateRead()
	for i := 0; i <= InlineReaders; i++ {
		s.SetReader(vclock.TID(i), vclock.Time(i+1), &pool)
	}
	if !s.Spilled() {
		t.Fatalf("%d distinct readers should spill", InlineReaders+1)
	}
	for i := 0; i <= InlineReaders; i++ {
		if got := s.ReaderTime(vclock.TID(i)); got != vclock.Time(i+1) {
			t.Errorf("ReaderTime(%d) = %d, want %d", i, got, i+1)
		}
	}
}

func TestReadersLEQAndFirstConcurrent(t *testing.T) {
	var pool vclock.Pool
	run := func(name string, spill bool) {
		s := &State{}
		s.InflateRead()
		s.SetReader(1, 4, &pool)
		s.SetReader(3, 2, &pool)
		if spill {
			for i := 0; i <= InlineReaders; i++ {
				s.SetReader(vclock.TID(10+i), 1, &pool)
			}
		}
		ct := vclock.New(4)
		ct.Set(1, 4)
		ct.Set(3, 2)
		for i := 0; i <= InlineReaders; i++ {
			ct.Set(vclock.TID(10+i), 1)
		}
		if !s.ReadersLEQ(ct) {
			t.Errorf("%s: covered read set not LEQ", name)
		}
		ct.Set(1, 3) // reader 1@4 now concurrent
		if s.ReadersLEQ(ct) {
			t.Errorf("%s: uncovered read set reported LEQ", name)
		}
		tid, tm := s.FirstConcurrentReader(ct)
		if tid != 1 || tm != 4 {
			t.Errorf("%s: FirstConcurrentReader = %d@%d, want 4@1", name, tm, tid)
		}
	}
	run("inline", false)
	run("spilled", true)
}

func TestDropReadersReturnsSpillToPool(t *testing.T) {
	var pool vclock.Pool
	s := &State{}
	s.InflateRead()
	for i := 0; i <= InlineReaders; i++ {
		s.SetReader(vclock.TID(i), 1, &pool)
	}
	spilled := s.RVC
	if spilled == nil {
		t.Fatal("expected spill")
	}
	s.DropReaders(&pool)
	if s.RVC != nil || s.nread != 0 || s.R != vclock.None || s.RRegion != 0 {
		t.Errorf("DropReaders left state %+v", s)
	}
	if got := pool.Get(); got != spilled {
		t.Error("spilled clock did not return to the pool")
	} else if got.Len() != 0 {
		t.Error("pooled clock not reset")
	}
}

func TestRangeAndReset(t *testing.T) {
	tb := NewTable()
	tb.Ref(0x100)
	tb.Ref(0x200)
	n := 0
	tb.Range(func(w mem.Addr, s *State) bool {
		if w != mem.WordOf(w) {
			t.Errorf("Range key %v not word-aligned", w)
		}
		n++
		return true
	})
	if n != 2 {
		t.Errorf("ranged over %d words", n)
	}
	// Early stop.
	n = 0
	tb.Range(func(mem.Addr, *State) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop ranged %d", n)
	}
	tb.Reset()
	if tb.Len() != 0 {
		t.Error("Reset did not clear")
	}
	if tb.Get(0x100) != nil {
		t.Error("Reset left a stale cached page visible")
	}
}

func TestRangeReportsWordAddresses(t *testing.T) {
	tb := NewTable()
	far := mem.Addr(3*PageWords*mem.WordSize) + 0x48
	tb.Ref(far)
	tb.Ref(0x105)
	var got []mem.Addr
	tb.Range(func(w mem.Addr, _ *State) bool {
		got = append(got, w)
		return true
	})
	want := []mem.Addr{mem.WordOf(0x105), mem.WordOf(far)}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Range words = %v, want %v", got, want)
	}
}

func TestSteadyStateRefDoesNotAllocate(t *testing.T) {
	tb := NewTable()
	tb.Ref(0x100)
	tb.Ref(0x100 + PageWords*mem.WordSize) // two live pages
	allocs := testing.AllocsPerRun(200, func() {
		tb.Ref(0x100)
		tb.Ref(0x100 + PageWords*mem.WordSize)
		tb.Ref(0x108)
	})
	if allocs != 0 {
		t.Errorf("steady-state Ref allocated %.1f per round", allocs)
	}
}
