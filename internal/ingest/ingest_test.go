package ingest_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"demandrace/internal/detector"
	"demandrace/internal/ingest"
	"demandrace/internal/obs"
	"demandrace/internal/obs/stream"
	"demandrace/internal/program"
	"demandrace/internal/trace"
	"demandrace/internal/vclock"
)

// racyTrace builds a small trace with one guaranteed write-read race and a
// barrier, then returns it with its binary encoding.
func racyTrace(t *testing.T) (*trace.Trace, []byte) {
	t.Helper()
	rec := trace.NewRecorder("ingest-test")
	rec.RecordMark(0, 0, "phase:init")
	rec.RecordOp(0, 0, program.Op{Kind: program.OpStore, Addr: 64}, true, true)
	rec.RecordOp(1, 1, program.Op{Kind: program.OpLoad, Addr: 64}, true, true)
	rec.RecordBarrier(0, []vclock.TID{0, 1}, true)
	rec.RecordOp(1, 0, program.Op{Kind: program.OpStore, Addr: 128}, false, true)
	tr := rec.Trace()
	var buf bytes.Buffer
	if err := trace.EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return tr, buf.Bytes()
}

// chunksOf splits raw into size-byte chunks.
func chunksOf(raw []byte, size int) [][]byte {
	var out [][]byte
	for off := 0; off < len(raw); off += size {
		end := off + size
		if end > len(raw) {
			end = len(raw)
		}
		out = append(out, raw[off:end])
	}
	return out
}

func newManager(t *testing.T, cfg ingest.Config) *ingest.Manager {
	t.Helper()
	m := ingest.NewManager(cfg)
	t.Cleanup(m.Stop)
	return m
}

// streamIn pushes every chunk through the session in order.
func streamIn(t *testing.T, m *ingest.Manager, id string, chunks [][]byte) ingest.Ack {
	t.Helper()
	var ack ingest.Ack
	for i, c := range chunks {
		crc := ingest.Checksum(c)
		var err error
		ack, err = m.Append(id, uint64(i), c, &crc)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
	}
	return ack
}

func TestStreamedCommitMatchesBatch(t *testing.T) {
	tr, raw := racyTrace(t)
	opt := detector.Options{MaxReportsPerAddr: 1}
	want := trace.Replay(tr, opt)

	for _, size := range []int{1, 5, len(raw)} {
		m := newManager(t, ingest.Config{})
		st, err := m.Open(ingest.OpenOptions{Detector: opt, Hash: sha256.New()})
		if err != nil {
			t.Fatal(err)
		}
		ack := streamIn(t, m, st.Session, chunksOf(raw, size))
		if ack.Events != uint64(len(tr.Events)) {
			t.Fatalf("size %d: acked %d events, trace has %d", size, ack.Events, len(tr.Events))
		}
		com, err := m.Commit(st.Session)
		if err != nil {
			t.Fatal(err)
		}
		if com.JobID != "" {
			t.Fatalf("fresh commit carried a job ID %q", com.JobID)
		}
		if !reflect.DeepEqual(com.Detector.Reports(), want.Reports()) {
			t.Fatalf("size %d: streamed reports differ from batch replay", size)
		}
		if com.Detector.Stats() != want.Stats() {
			t.Fatalf("size %d: streamed stats %+v, batch %+v", size, com.Detector.Stats(), want.Stats())
		}
		if com.Trace.Program != tr.Program {
			t.Fatalf("program %q, want %q", com.Trace.Program, tr.Program)
		}
		if !reflect.DeepEqual(com.Trace.Events, tr.Events) {
			t.Fatalf("size %d: reassembled events differ", size)
		}
		wantKey := fmt.Sprintf("%x", sha256.Sum256(raw))
		if com.Key != wantKey {
			t.Fatalf("key %s, want %s", com.Key, wantKey)
		}
	}
}

func TestDuplicateChunkIsIdempotent(t *testing.T) {
	_, raw := racyTrace(t)
	m := newManager(t, ingest.Config{})
	st, _ := m.Open(ingest.OpenOptions{})
	chunks := chunksOf(raw, 7)
	streamIn(t, m, st.Session, chunks)

	before, err := m.Status(st.Session)
	if err != nil {
		t.Fatal(err)
	}
	// Replay an old chunk: same payload must ack as duplicate without
	// changing anything.
	crc := ingest.Checksum(chunks[1])
	ack, err := m.Append(st.Session, 1, chunks[1], &crc)
	if err != nil {
		t.Fatalf("duplicate rejected: %v", err)
	}
	if !ack.Duplicate {
		t.Fatal("duplicate not flagged")
	}
	if ack.HighWater != uint64(len(chunks)) || ack.Events != before.Events || ack.Bytes != before.Bytes {
		t.Fatalf("duplicate mutated session: ack %+v, status before %+v", ack, before)
	}
	// A *different* payload under an old seq is corruption, not a retry.
	bogus := append([]byte(nil), chunks[1]...)
	bogus[0] ^= 0xFF
	bcrc := ingest.Checksum(bogus)
	var ce *ingest.CRCError
	if _, err := m.Append(st.Session, 1, bogus, &bcrc); !errors.As(err, &ce) {
		t.Fatalf("want CRCError for divergent duplicate, got %v", err)
	}
	// Session still healthy.
	if _, err := m.Commit(st.Session); err != nil {
		t.Fatalf("commit after duplicate handling: %v", err)
	}
}

func TestChunkGapAndCRC(t *testing.T) {
	_, raw := racyTrace(t)
	m := newManager(t, ingest.Config{})
	st, _ := m.Open(ingest.OpenOptions{})
	chunks := chunksOf(raw, 7)

	// Skipping ahead is a gap naming the resume point.
	crc := ingest.Checksum(chunks[0])
	var ge *ingest.GapError
	if _, err := m.Append(st.Session, 3, chunks[0], &crc); !errors.As(err, &ge) {
		t.Fatalf("want GapError, got %v", err)
	} else if ge.Want != 0 {
		t.Fatalf("gap resume point %d, want 0", ge.Want)
	}

	// Declared CRC that doesn't match the payload is rejected before apply.
	bad := crc + 1
	var ce *ingest.CRCError
	if _, err := m.Append(st.Session, 0, chunks[0], &bad); !errors.As(err, &ce) {
		t.Fatalf("want CRCError, got %v", err)
	}
	// Neither rejection advanced the session.
	status, _ := m.Status(st.Session)
	if status.HighWater != 0 || status.Bytes != 0 {
		t.Fatalf("rejections advanced the session: %+v", status)
	}
	// Nil CRC skips verification.
	if _, err := m.Append(st.Session, 0, chunks[0], nil); err != nil {
		t.Fatalf("nil-crc append: %v", err)
	}
}

func TestQuotasAndLimits(t *testing.T) {
	t.Run("sessions", func(t *testing.T) {
		m := newManager(t, ingest.Config{MaxSessions: 2})
		for i := 0; i < 2; i++ {
			if _, err := m.Open(ingest.OpenOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.Open(ingest.OpenOptions{}); !errors.Is(err, ingest.ErrSessionQuota) {
			t.Fatalf("want ErrSessionQuota, got %v", err)
		}
	})

	t.Run("chunkbytes", func(t *testing.T) {
		m := newManager(t, ingest.Config{MaxChunkBytes: 8})
		st, _ := m.Open(ingest.OpenOptions{})
		var lim *trace.LimitError
		if _, err := m.Append(st.Session, 0, make([]byte, 9), nil); !errors.As(err, &lim) {
			t.Fatalf("want LimitError, got %v", err)
		} else if lim.What != "chunk bytes" {
			t.Fatalf("LimitError.What = %q", lim.What)
		}
	})

	t.Run("streambytes", func(t *testing.T) {
		_, raw := racyTrace(t)
		m := newManager(t, ingest.Config{Limits: trace.DecodeLimits{MaxBytes: int64(len(raw) - 1)}})
		st, _ := m.Open(ingest.OpenOptions{})
		var lastErr error
		for i, c := range chunksOf(raw, 7) {
			if _, lastErr = m.Append(st.Session, uint64(i), c, nil); lastErr != nil {
				break
			}
		}
		var lim *trace.LimitError
		if !errors.As(lastErr, &lim) || lim.What != "bytes" {
			t.Fatalf("want stream bytes LimitError, got %v", lastErr)
		}
		// The decode failure kills the session.
		var fe *ingest.FailedError
		if _, err := m.Commit(st.Session); !errors.As(err, &fe) {
			t.Fatalf("commit of failed session: got %v", err)
		}
	})
}

func TestCommitIncompleteAndReplay(t *testing.T) {
	_, raw := racyTrace(t)
	m := newManager(t, ingest.Config{})
	st, _ := m.Open(ingest.OpenOptions{})
	chunks := chunksOf(raw, 7)
	streamIn(t, m, st.Session, chunks[:len(chunks)-1]) // hold back the tail

	var ie *ingest.IncompleteError
	if _, err := m.Commit(st.Session); !errors.As(err, &ie) {
		t.Fatalf("want IncompleteError, got %v", err)
	}

	// Fresh session: commit, bind a job, then replay the commit.
	st2, _ := m.Open(ingest.OpenOptions{})
	streamIn(t, m, st2.Session, chunks)
	if _, err := m.Commit(st2.Session); err != nil {
		t.Fatal(err)
	}
	// Before SetJob, a replayed commit is pending.
	if _, err := m.Commit(st2.Session); !errors.Is(err, ingest.ErrCommitPending) {
		t.Fatalf("want ErrCommitPending, got %v", err)
	}
	m.SetJob(st2.Session, "j-42")
	com, err := m.Commit(st2.Session)
	if err != nil {
		t.Fatal(err)
	}
	if com.JobID != "j-42" {
		t.Fatalf("replayed commit job %q, want j-42", com.JobID)
	}
	// Chunks to a sealed session bounce.
	crc := ingest.Checksum(chunks[0])
	if _, err := m.Append(st2.Session, uint64(len(chunks)), chunks[0], &crc); !errors.Is(err, ingest.ErrSealed) {
		t.Fatalf("want ErrSealed, got %v", err)
	}
}

func TestPartialAndBusEvents(t *testing.T) {
	_, raw := racyTrace(t)
	bus := stream.NewBus("test")
	sub := bus.Subscribe(64)
	defer sub.Close()
	reg := obs.NewRegistry()
	m := newManager(t, ingest.Config{Bus: bus, Registry: reg})
	st, _ := m.Open(ingest.OpenOptions{Detector: detector.Options{MaxReportsPerAddr: 1}})
	streamIn(t, m, st.Session, chunksOf(raw, 5))

	// Mid-stream (pre-commit) partial shows the race.
	p, err := m.Partial(st.Session)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != ingest.StateReceiving {
		t.Fatalf("state %q before commit", p.State)
	}
	if len(p.Races) != 1 {
		t.Fatalf("partial races %d, want 1", len(p.Races))
	}
	if p.Races[0].Kind.String() != "write-read" {
		t.Fatalf("race kind %s", p.Races[0].Kind)
	}

	if _, err := m.Commit(st.Session); err != nil {
		t.Fatal(err)
	}
	m.SetJob(st.Session, "j-7")
	// Partial is reachable by job ID after commit.
	p2, err := m.Partial("j-7")
	if err != nil {
		t.Fatal(err)
	}
	if p2.State != ingest.StateCommitted || len(p2.Races) != 1 {
		t.Fatalf("post-commit partial %+v", p2)
	}

	// The bus saw chunk events and exactly one race_found.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	var chunks, races int
	for races == 0 {
		ev, ok := sub.Next(ctx)
		if !ok {
			t.Fatal("bus closed early")
		}
		switch ev.Type {
		case stream.TypeTraceChunk:
			chunks++
			if ev.Job != st.Session {
				t.Fatalf("chunk event job %q, want %q", ev.Job, st.Session)
			}
		case stream.TypeRaceFound:
			races++
			if ev.Detail["kind"] != "write-read" {
				t.Fatalf("race event detail %+v", ev.Detail)
			}
		}
	}
	if chunks == 0 {
		t.Fatal("no trace_chunk events before the race")
	}
	if got := reg.CounterValue(obs.IngestRaces); got != 1 {
		t.Fatalf("ingest races counter %d", got)
	}
}

func TestIdleGC(t *testing.T) {
	m := newManager(t, ingest.Config{IdleTimeout: time.Millisecond})
	reg := m.Config().Registry
	st, _ := m.Open(ingest.OpenOptions{})
	time.Sleep(5 * time.Millisecond)
	m.SweepNow()
	if _, err := m.Status(st.Session); !errors.Is(err, ingest.ErrNoSession) {
		t.Fatalf("expired session still visible: %v", err)
	}
	if m.Len() != 0 {
		t.Fatalf("sessions live after sweep: %d", m.Len())
	}
	if got := reg.CounterValue(obs.IngestSessionsExpired); got != 1 {
		t.Fatalf("expired counter %d, want 1", got)
	}

	// A committed session idles out without counting as expired.
	_, raw := racyTrace(t)
	st2, _ := m.Open(ingest.OpenOptions{})
	streamIn(t, m, st2.Session, chunksOf(raw, len(raw)))
	if _, err := m.Commit(st2.Session); err != nil {
		t.Fatal(err)
	}
	m.SetJob(st2.Session, "j-9")
	time.Sleep(5 * time.Millisecond)
	m.SweepNow()
	if _, err := m.Partial("j-9"); !errors.Is(err, ingest.ErrNoSession) {
		t.Fatal("committed session not reclaimed")
	}
	if got := reg.CounterValue(obs.IngestSessionsExpired); got != 1 {
		t.Fatalf("committed idle-out counted as expired: %d", got)
	}
}

func TestUnknownSession(t *testing.T) {
	m := newManager(t, ingest.Config{})
	if _, err := m.Append("s-404", 0, []byte("x"), nil); !errors.Is(err, ingest.ErrNoSession) {
		t.Fatalf("append: %v", err)
	}
	if _, err := m.Commit("s-404"); !errors.Is(err, ingest.ErrNoSession) {
		t.Fatalf("commit: %v", err)
	}
	if _, err := m.Partial("s-404"); !errors.Is(err, ingest.ErrNoSession) {
		t.Fatalf("partial: %v", err)
	}
}
