package trace

import (
	"demandrace/internal/detector"
	"demandrace/internal/program"
)

// LiveReplay advances detector shadow state incrementally as events arrive,
// without knowing the trace's final dimensions up front. The detector is
// fixed-size, so when an event references a thread or sync object beyond
// the current dimensions the replay rebuilds: a fresh detector at the
// grown dimensions re-applies every retained event through the same
// ApplyEvent the batch path uses. Dimensions only ever grow, so after the
// last event the final rebuild has replayed the full prefix at the final
// dimensions and every later event applied incrementally — exactly the
// sequence Replay performs — which makes the final reports AND stats
// identical to the batch path on the same events.
//
// Rebuild cost is bounded by the number of dimension increases (at most
// threads+mutexes+sems, and in practice a handful at the front of a trace
// where threads first appear), not by chunk count.
type LiveReplay struct {
	opt    detector.Options
	det    *detector.Detector
	events []Event

	threads, mutexes, sems int
	rebuilds               int
}

// NewLiveReplay starts an empty live replay with the given detector options.
func NewLiveReplay(opt detector.Options) *LiveReplay {
	return &LiveReplay{opt: opt}
}

// Apply feeds one event. Events must arrive in trace order.
func (l *LiveReplay) Apply(e Event) {
	grew := false
	if need := int(e.TID) + 1; need > l.threads {
		l.threads = need
		grew = true
	}
	for _, p := range e.Parties {
		if need := int(p) + 1; need > l.threads {
			l.threads = need
			grew = true
		}
	}
	switch e.Kind {
	case program.OpLock, program.OpUnlock:
		if need := int(e.Sync) + 1; need > l.mutexes {
			l.mutexes = need
			grew = true
		}
	case program.OpSignal, program.OpWait:
		if need := int(e.Sync) + 1; need > l.sems {
			l.sems = need
			grew = true
		}
	}
	l.events = append(l.events, e)
	if l.det == nil || grew {
		l.det = detector.New(l.threads, l.mutexes, l.sems, l.opt)
		l.rebuilds++
		for _, ev := range l.events {
			ApplyEvent(l.det, ev)
		}
		return
	}
	ApplyEvent(l.det, e)
}

// Detector returns the current detector. With no events applied yet it
// returns an empty zero-dimension detector — the same thing Replay builds
// for an empty trace.
func (l *LiveReplay) Detector() *detector.Detector {
	if l.det == nil {
		l.det = detector.New(0, 0, 0, l.opt)
	}
	return l.det
}

// Races returns the reports found so far. The slice grows monotonically
// between calls (rebuilds re-derive the same prefix reports in order).
func (l *LiveReplay) Races() []detector.Report {
	if l.det == nil {
		return nil
	}
	return l.det.Reports()
}

// Events returns the retained event sequence (not a copy).
func (l *LiveReplay) Events() []Event { return l.events }

// Dims returns the dimensions inferred so far.
func (l *LiveReplay) Dims() (threads, mutexes, sems int) {
	return l.threads, l.mutexes, l.sems
}

// Rebuilds returns how many times the detector was rebuilt for dimension
// growth (observability: a pathological trace interleaving new threads
// late would show up here).
func (l *LiveReplay) Rebuilds() int { return l.rebuilds }
