package cache

import (
	"fmt"

	"demandrace/internal/mem"
)

// The shared last-level cache (LLC). The paper's HITM event is specifically
// a transfer from *another core's* cache; a dirty line that was evicted
// from a private L1 into the shared LLC is served as an ordinary LLC hit
// with no HITM — the eviction blind spot persists even though the data
// never reached memory, exactly as on the Nehalem-class parts the paper
// measured. The LLC is inclusive: every line held by any L1 is present in
// the LLC, and evicting an LLC line back-invalidates the L1 copies.

type llcLine struct {
	line  mem.Line
	valid bool
	// dirty marks data newer than memory (written back from an L1, or
	// recalled from a Modified L1 copy on LLC eviction).
	dirty bool
	lru   uint64
}

type llc struct {
	sets [][]llcLine
}

func newLLC(sets, ways int) *llc {
	l := &llc{sets: make([][]llcLine, sets)}
	for i := range l.sets {
		l.sets[i] = make([]llcLine, 0, ways)
	}
	return l
}

func (h *Hierarchy) llcSetIndex(l mem.Line) int {
	return int(uint64(l) % uint64(h.cfg.L2Sets))
}

// llcLookup returns the LLC slot holding line, or nil.
func (h *Hierarchy) llcLookup(l mem.Line) *llcLine {
	set := h.llc.sets[h.llcSetIndex(l)]
	for i := range set {
		if set[i].valid && set[i].line == l {
			return &set[i]
		}
	}
	return nil
}

// llcInstall places line into the LLC, evicting an LRU victim if the set is
// full. Eviction enforces inclusion: every L1 copy of the victim is
// dropped, recalling dirty data, and dirty victims write back to memory.
func (h *Hierarchy) llcInstall(l mem.Line, dirty bool, ctx Context, res *Result) {
	idx := h.llcSetIndex(l)
	set := h.llc.sets[idx]
	for i := range set {
		if !set[i].valid {
			set[i] = llcLine{line: l, valid: true, dirty: dirty, lru: h.tick}
			return
		}
	}
	if len(set) < h.cfg.L2Ways {
		h.llc.sets[idx] = append(set, llcLine{line: l, valid: true, dirty: dirty, lru: h.tick})
		return
	}
	victim := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	h.evictLLCLine(&set[victim], ctx, res)
	set[victim] = llcLine{line: l, valid: true, dirty: dirty, lru: h.tick}
}

// evictLLCLine removes one LLC line: back-invalidates all L1 copies
// (recalling Modified data), and writes dirty data back to memory.
func (h *Hierarchy) evictLLCLine(v *llcLine, ctx Context, res *Result) {
	h.stats.L2Evictions++
	dirty := v.dirty
	for c := range h.cores {
		if w := h.lookup(c, v.line); w != nil {
			if w.state == Modified || w.state == Owned {
				dirty = true
			}
			w.state = Invalid
			h.stats.Invalidations++
			if res != nil {
				h.emit(Event{Kind: EvInvalidation, Ctx: h.anyCtxOf(c), Src: -1, Line: v.line, Write: false}, res)
			}
		}
	}
	if dirty {
		h.stats.L2Writebacks++
		if res != nil {
			h.emit(Event{Kind: EvWriteback, Ctx: ctx, Src: -1, Line: v.line}, res)
		}
	}
	v.valid = false
}

// llcTouch refreshes LRU state on an LLC hit.
func (h *Hierarchy) llcTouch(l *llcLine) { l.lru = h.tick }

// llcWriteback absorbs a dirty line evicted from an L1. Inclusion
// guarantees the line is present; a defensive install covers the
// LLC-disabled-mid-run case that cannot happen in practice.
func (h *Hierarchy) llcWriteback(l mem.Line, ctx Context, res *Result) {
	if s := h.llcLookup(l); s != nil {
		s.dirty = true
		return
	}
	h.llcInstall(l, true, ctx, res)
}

// checkInclusion verifies that every valid L1 line is present in the LLC.
func (h *Hierarchy) checkInclusion() error {
	if h.llc == nil {
		return nil
	}
	for c := range h.cores {
		for _, set := range h.cores[c].sets {
			for _, w := range set {
				if w.state == Invalid {
					continue
				}
				if h.llcLookup(w.line) == nil {
					return fmt.Errorf("cache: inclusion violated: core %d holds %v absent from LLC", c, w.line)
				}
			}
		}
	}
	return nil
}
