package workloads

import (
	"demandrace/internal/mem"
	"demandrace/internal/program"
)

// Racy regression kernels contain known races with known addresses, used to
// check that both engines find what they should and by the accuracy
// experiment as ground truth alongside fuzz-injected races.

func init() {
	register(Kernel{Name: "racy_counter", Suite: "racy", Racy: true,
		Sharing: "unlocked shared counter (repeated W→W race)", Build: RacyCounter})
	register(Kernel{Name: "racy_flag", Suite: "racy", Racy: true,
		Sharing: "plain-store flag handoff (W→R race on flag and data)", Build: RacyFlag})
	register(Kernel{Name: "racy_overlap", Suite: "racy", Racy: true,
		Sharing: "off-by-one partitioning (boundary element races)", Build: RacyOverlap})
	register(Kernel{Name: "racy_mostly_clean", Suite: "racy", Racy: true,
		Sharing: "clean parallel kernel with one racy word", Build: RacyMostlyClean})
	register(Kernel{Name: "racy_lock_inversion", Suite: "racy",
		Sharing: "ABBA lock-order hazard (no data race, no manifested deadlock)", Build: RacyLockInversion})
}

// RacyCounter increments one shared counter from every thread with no lock:
// the canonical repeated write-write race.
func RacyCounter(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("racy_counter")
	c := b.Space().AllocLine(8)
	iters := 50 * cfg.Scale
	for t := 0; t < cfg.Threads; t++ {
		tb := b.Thread()
		tb.Region("counter-increment")
		for i := 0; i < iters; i++ {
			tb.Load(c).Store(c).Compute(3)
		}
	}
	return b.MustBuild()
}

// RacyFlag publishes data through a plain (non-atomic) flag: both the flag
// and the data race, repeatedly.
func RacyFlag(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("racy_flag")
	data := b.Space().AllocLine(8)
	flag := b.Space().AllocLine(8)
	iters := 40 * cfg.Scale
	t0, t1 := b.Thread(), b.Thread()
	t0.Region("publish")
	t1.Region("consume")
	for i := 0; i < iters; i++ {
		t0.Store(data).Store(flag).Compute(2)
		t1.Load(flag).Load(data).Compute(2)
	}
	return b.MustBuild()
}

// RacyOverlap partitions an array with an off-by-one bug: each thread also
// writes the first element of its right neighbor's slice.
func RacyOverlap(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("racy_overlap")
	per := 30 * cfg.Scale
	arr := b.Space().AllocArray(uint64(per*cfg.Threads+1), mem.WordSize)
	for t := 0; t < cfg.Threads; t++ {
		tb := b.Thread()
		lo := t * per
		hi := lo + per // off-by-one: hi belongs to the neighbor
		for rep := 0; rep < 3; rep++ {
			for i := lo; i <= hi; i++ {
				a := arr + mem.Addr(i*mem.WordSize)
				tb.Load(a).Store(a)
			}
			tb.Compute(5)
		}
	}
	return b.MustBuild()
}

// RacyMostlyClean is a large clean data-parallel kernel with a single
// racy shared word touched occasionally: the needle-in-haystack case where
// demand-driven analysis shines (fast everywhere, enabled around the
// sharing bursts).
func RacyMostlyClean(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("racy_mostly_clean")
	elems := 300 * cfg.Scale
	work := workerArrays(b, cfg.Threads, elems)
	bad := b.Space().AllocLine(8)
	for t := 0; t < cfg.Threads; t++ {
		tb := b.Thread()
		tb.Region("private-sweep")
		for i := 0; i < elems; i++ {
			a := work[t] + mem.Addr(i*mem.WordSize)
			tb.Load(a).Store(a).Compute(2)
			if i%100 == 50 {
				tb.Region("stats-update")
				tb.Load(bad).Store(bad) // the bug
				tb.Region("private-sweep")
			}
		}
	}
	return b.MustBuild()
}

// RacyLockInversion acquires two locks in opposite orders from two threads
// at temporally disjoint points: the run completes, no data race exists,
// but the lock-order graph carries the ABBA hazard the deadlock engine
// must flag.
func RacyLockInversion(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("racy_lock_inversion")
	a, bb := b.Mutex(), b.Mutex()
	x := b.Space().AllocLine(8)
	iters := 10 * cfg.Scale
	t0 := b.Thread()
	for i := 0; i < iters; i++ {
		t0.Lock(a).Lock(bb).Load(x).Store(x).Unlock(bb).Unlock(a).Compute(4)
	}
	// The second thread runs its inverted sections only after a compute
	// prologue longer (in ops, the scheduling unit) than thread 0's whole
	// body, so the hazard never manifests under the deterministic
	// scheduler — exactly the case that needs a lock-order engine rather
	// than luck.
	t1 := b.Thread()
	for i := 0; i < iters*8+16; i++ {
		t1.Compute(25)
	}
	for i := 0; i < iters; i++ {
		t1.Lock(bb).Lock(a).Load(x).Store(x).Unlock(a).Unlock(bb).Compute(4)
	}
	return b.MustBuild()
}
