// Package lockset implements an Eraser-style lockset race detector
// (Savage et al., SOSP 1997), the secondary analysis engine used by the
// hybrid-policy ablation.
//
// Where the happens-before detector asks "were these two accesses ordered?",
// the lockset detector asks "is there a lock that consistently protects this
// variable?". It is cheaper (no vector clocks) and schedule-insensitive, but
// reports false positives on programs ordered by fork/join, barriers, or
// signal/wait rather than locks. The classic Eraser state machine limits
// those: a variable starts Virgin, stays benign while Exclusive to one
// thread, becomes Shared on a cross-thread read (reported only if its
// candidate set empties on a write).
package lockset

import (
	"fmt"

	"demandrace/internal/mem"
	"demandrace/internal/program"
	"demandrace/internal/vclock"
)

// VarState is the Eraser per-variable state machine.
type VarState uint8

const (
	// Virgin means never accessed.
	Virgin VarState = iota
	// Exclusive means accessed by exactly one thread so far.
	Exclusive
	// Shared means read by multiple threads (reads only since sharing).
	Shared
	// SharedModified means written after becoming shared; candidate-set
	// violations here are reported.
	SharedModified
	// Reported means a violation was already reported for this variable.
	Reported
)

func (s VarState) String() string {
	switch s {
	case Virgin:
		return "virgin"
	case Exclusive:
		return "exclusive"
	case Shared:
		return "shared"
	case SharedModified:
		return "shared-modified"
	case Reported:
		return "reported"
	}
	return fmt.Sprintf("VarState(%d)", uint8(s))
}

// Set is an immutable small set of mutex IDs. Sets are kept sorted.
type Set []program.SyncID

// Intersect returns the intersection of two sorted sets.
func (s Set) Intersect(o Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < o[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Contains reports membership.
func (s Set) Contains(id program.SyncID) bool {
	for _, m := range s {
		if m == id {
			return true
		}
	}
	return false
}

// insert returns s with id added in order (no-op if present).
func (s Set) insert(id program.SyncID) Set {
	for i, m := range s {
		if m == id {
			return s
		}
		if m > id {
			out := make(Set, 0, len(s)+1)
			out = append(out, s[:i]...)
			out = append(out, id)
			return append(out, s[i:]...)
		}
	}
	return append(append(Set{}, s...), id)
}

// remove returns s without id.
func (s Set) remove(id program.SyncID) Set {
	for i, m := range s {
		if m == id {
			out := make(Set, 0, len(s)-1)
			out = append(out, s[:i]...)
			return append(out, s[i+1:]...)
		}
	}
	return s
}

// Report is one lockset violation.
type Report struct {
	Addr mem.Addr
	// Tid is the thread whose access emptied the candidate set.
	Tid vclock.TID
	// Write reports whether the violating access was a write.
	Write bool
}

func (r Report) String() string {
	k := "read"
	if r.Write {
		k = "write"
	}
	return fmt.Sprintf("lockset violation on %v: unprotected %s by t%d", r.Addr, k, r.Tid)
}

type varInfo struct {
	state     VarState
	owner     vclock.TID
	candidate Set
}

// Stats counts detector work.
type Stats struct {
	Reads      uint64
	Writes     uint64
	SyncOps    uint64
	Violations uint64
}

// Detector is the lockset engine. Not safe for concurrent use.
type Detector struct {
	held    []Set // per-thread currently held mutexes
	vars    map[mem.Addr]*varInfo
	reports []Report
	stats   Stats
}

// New builds a detector for numThreads threads.
func New(numThreads int) *Detector {
	return &Detector{
		held: make([]Set, numThreads),
		vars: make(map[mem.Addr]*varInfo),
	}
}

// Reports returns the violations found so far.
func (d *Detector) Reports() []Report { return d.reports }

// Stats returns the work counters.
func (d *Detector) Stats() Stats { return d.stats }

// Held returns the lockset thread t currently holds (for tests).
func (d *Detector) Held(t vclock.TID) Set { return d.held[t] }

// OnLock records t acquiring mutex id.
func (d *Detector) OnLock(t vclock.TID, id program.SyncID) {
	d.stats.SyncOps++
	d.held[t] = d.held[t].insert(id)
}

// OnUnlock records t releasing mutex id.
func (d *Detector) OnUnlock(t vclock.TID, id program.SyncID) {
	d.stats.SyncOps++
	d.held[t] = d.held[t].remove(id)
}

func (d *Detector) info(addr mem.Addr) *varInfo {
	w := mem.WordOf(addr)
	v, ok := d.vars[w]
	if !ok {
		v = &varInfo{state: Virgin}
		d.vars[w] = v
	}
	return v
}

// OnRead analyzes a read of addr by t.
func (d *Detector) OnRead(t vclock.TID, addr mem.Addr) {
	d.stats.Reads++
	d.access(t, addr, false)
}

// OnWrite analyzes a write of addr by t.
func (d *Detector) OnWrite(t vclock.TID, addr mem.Addr) {
	d.stats.Writes++
	d.access(t, addr, true)
}

func (d *Detector) access(t vclock.TID, addr mem.Addr, write bool) {
	v := d.info(addr)
	switch v.state {
	case Virgin:
		v.state = Exclusive
		v.owner = t
		v.candidate = append(Set{}, d.held[t]...)
	case Exclusive:
		if v.owner == t {
			// Still single-threaded: refine the candidate set but do not
			// report — initialization patterns are benign.
			v.candidate = v.candidate.Intersect(d.held[t])
			return
		}
		v.candidate = v.candidate.Intersect(d.held[t])
		if write {
			v.state = SharedModified
			d.check(v, t, addr, write)
		} else {
			v.state = Shared
		}
	case Shared:
		v.candidate = v.candidate.Intersect(d.held[t])
		if write {
			v.state = SharedModified
			d.check(v, t, addr, write)
		}
	case SharedModified:
		v.candidate = v.candidate.Intersect(d.held[t])
		d.check(v, t, addr, write)
	case Reported:
		// One report per variable.
	}
}

func (d *Detector) check(v *varInfo, t vclock.TID, addr mem.Addr, write bool) {
	if len(v.candidate) > 0 {
		return
	}
	d.stats.Violations++
	v.state = Reported
	d.reports = append(d.reports, Report{Addr: mem.WordOf(addr), Tid: t, Write: write})
}

// StateOf exposes the Eraser state of addr's word (Virgin if untouched).
func (d *Detector) StateOf(addr mem.Addr) VarState {
	if v, ok := d.vars[mem.WordOf(addr)]; ok {
		return v.state
	}
	return Virgin
}
