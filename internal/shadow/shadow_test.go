package shadow

import (
	"testing"

	"demandrace/internal/mem"
	"demandrace/internal/vclock"
)

func TestGetOrCreateNormalizesToWord(t *testing.T) {
	tb := NewTable()
	a := tb.GetOrCreate(0x101)
	b := tb.GetOrCreate(0x107)
	if a != b {
		t.Error("addresses in one word got distinct states")
	}
	c := tb.GetOrCreate(0x108)
	if a == c {
		t.Error("addresses in different words share a state")
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d, want 2", tb.Len())
	}
}

func TestGetWithoutCreate(t *testing.T) {
	tb := NewTable()
	if tb.Get(0x100) != nil {
		t.Error("Get on untouched word should be nil")
	}
	s := tb.GetOrCreate(0x100)
	if tb.Get(0x103) != s {
		t.Error("Get should find the created state via any byte of the word")
	}
}

func TestInflateReadSeedsPriorEpoch(t *testing.T) {
	s := &State{R: vclock.MakeEpoch(2, 7)}
	s.InflateRead()
	if s.R != vclock.ReadShared {
		t.Errorf("R = %v, want SHARED", s.R)
	}
	if s.RVC.Get(2) != 7 {
		t.Errorf("RVC[2] = %d, want 7", s.RVC.Get(2))
	}
}

func TestInflateReadFromNone(t *testing.T) {
	s := &State{}
	s.InflateRead()
	if s.R != vclock.ReadShared || s.RVC == nil || s.RVC.Len() != 0 {
		t.Errorf("state = %+v", s)
	}
}

func TestInflateReadIdempotentOnShared(t *testing.T) {
	s := &State{}
	s.InflateRead()
	s.RVC.Set(1, 5)
	s.InflateRead()
	if s.RVC.Get(1) != 5 {
		t.Error("re-inflation lost read history")
	}
}

func TestRangeAndReset(t *testing.T) {
	tb := NewTable()
	tb.GetOrCreate(0x100)
	tb.GetOrCreate(0x200)
	n := 0
	tb.Range(func(w mem.Addr, s *State) bool {
		if w != mem.WordOf(w) {
			t.Errorf("Range key %v not word-aligned", w)
		}
		n++
		return true
	})
	if n != 2 {
		t.Errorf("ranged over %d words", n)
	}
	// Early stop.
	n = 0
	tb.Range(func(mem.Addr, *State) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop ranged %d", n)
	}
	tb.Reset()
	if tb.Len() != 0 {
		t.Error("Reset did not clear")
	}
}
