package alert

import (
	"context"
	"testing"
	"time"

	"demandrace/internal/obs"
	"demandrace/internal/obs/stream"
	"demandrace/internal/obs/tsdb"
)

// fakeSource is a hand-fed Source: tests set exactly the samples a rule
// should see, with full control of timestamps.
type fakeSource struct {
	series map[string]fakeSeries
}

type fakeSeries struct {
	kind    string
	samples []tsdb.Sample
}

func newFakeSource() *fakeSource {
	return &fakeSource{series: make(map[string]fakeSeries)}
}

func (f *fakeSource) set(metric, kind string, samples ...tsdb.Sample) {
	f.series[metric] = fakeSeries{kind: kind, samples: samples}
}

func (f *fakeSource) Samples(metric string, since time.Time) (string, []tsdb.Sample, bool) {
	s, ok := f.series[metric]
	if !ok {
		return "", nil, false
	}
	var cutoff int64
	if !since.IsZero() {
		cutoff = since.UnixMilli()
	}
	out := make([]tsdb.Sample, 0, len(s.samples))
	for _, sm := range s.samples {
		if sm.UnixMS >= cutoff {
			out = append(out, sm)
		}
	}
	return s.kind, out, true
}

// clock is a manually advanced test clock.
type clock struct{ t time.Time }

func newClock() *clock { return &clock{t: time.UnixMilli(1_700_000_000_000)} }

func (c *clock) now() time.Time              { return c.t }
func (c *clock) advance(d time.Duration)     { c.t = c.t.Add(d) }
func (c *clock) ms() int64                   { return c.t.UnixMilli() }
func (c *clock) sample(v float64) tsdb.Sample { return tsdb.Sample{UnixMS: c.ms(), Value: v} }

// drainEvents collects every event currently queued on the subscriber.
func drainEvents(t *testing.T, sub *stream.Sub, n int) []stream.Event {
	t.Helper()
	out := make([]stream.Event, 0, n)
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		ev, ok := sub.Next(ctx)
		cancel()
		if !ok {
			t.Fatalf("wanted %d events, got %d", n, len(out))
		}
		out = append(out, ev)
	}
	return out
}

func TestThresholdLifecycle(t *testing.T) {
	src := newFakeSource()
	clk := newClock()
	bus := stream.NewBus("n0")
	sub := bus.Subscribe(16)
	defer sub.Close()
	reg := obs.NewRegistry()

	eng, err := New(Config{
		Node: "n0",
		Rules: []Rule{{
			Name: "queue-deep", Kind: KindThreshold, Metric: "queue_depth",
			Op: ">=", Value: 10, For: Duration(10 * time.Second),
			Severity: SevCritical, Summary: "queue too deep",
		}},
		Source: src, Bus: bus, Registry: reg, Now: clk.now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Below threshold: inactive.
	src.set("queue_depth", tsdb.KindGauge, clk.sample(3))
	eng.EvalNow()
	if got := eng.Active(); len(got) != 0 {
		t.Fatalf("active below threshold = %+v", got)
	}

	// Breach: pending, no event yet (For has not elapsed).
	src.set("queue_depth", tsdb.KindGauge, clk.sample(12))
	eng.EvalNow()
	active := eng.Active()
	if len(active) != 1 || active[0].State != StatePending {
		t.Fatalf("active after breach = %+v, want one pending", active)
	}
	if p, f := eng.Counts(); p != 1 || f != 0 {
		t.Fatalf("counts = %d pending %d firing, want 1/0", p, f)
	}
	if v := reg.CounterValue(MetricFired); v != 0 {
		t.Fatalf("fired counter = %d before For elapsed", v)
	}

	// Still breaching past For: fires exactly once, stays firing on
	// subsequent ticks (deduplication).
	clk.advance(11 * time.Second)
	src.set("queue_depth", tsdb.KindGauge, clk.sample(15))
	eng.EvalNow()
	eng.EvalNow()
	eng.EvalNow()
	active = eng.Active()
	if len(active) != 1 || active[0].State != StateFiring {
		t.Fatalf("active past For = %+v, want one firing", active)
	}
	if active[0].Value != 15 || active[0].Threshold != 10 || active[0].Node != "n0" {
		t.Fatalf("alert payload = %+v", active[0])
	}
	if active[0].FiringSinceMS == 0 || active[0].SinceMS == 0 {
		t.Fatalf("alert timestamps missing: %+v", active[0])
	}
	if v := reg.CounterValue(MetricFired); v != 1 {
		t.Fatalf("fired counter = %d, want exactly 1", v)
	}
	if g := reg.Gauge(MetricFiring).Value(); g != 1 {
		t.Fatalf("firing gauge = %d, want 1", g)
	}

	// Recovery: resolves exactly once, moves to history.
	clk.advance(time.Second)
	src.set("queue_depth", tsdb.KindGauge, clk.sample(2))
	eng.EvalNow()
	eng.EvalNow()
	if got := eng.Active(); len(got) != 0 {
		t.Fatalf("active after recovery = %+v", got)
	}
	hist := eng.History()
	if len(hist) != 1 || hist[0].State != StateResolved || hist[0].ResolvedMS == 0 {
		t.Fatalf("history = %+v, want one resolved", hist)
	}
	if v := reg.CounterValue(MetricResolved); v != 1 {
		t.Fatalf("resolved counter = %d, want exactly 1", v)
	}

	// Exactly one firing and one resolved event on the bus, in order.
	evs := drainEvents(t, sub, 2)
	if evs[0].Type != stream.TypeAlertFiring || evs[1].Type != stream.TypeAlertResolved {
		t.Fatalf("bus events = %s, %s", evs[0].Type, evs[1].Type)
	}
	for _, ev := range evs {
		if ev.Detail["rule"] != "queue-deep" || ev.Detail["severity"] != SevCritical {
			t.Fatalf("event detail = %+v", ev.Detail)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if ev, ok := sub.Next(ctx); ok {
		t.Fatalf("unexpected extra event %+v", ev)
	}
}

func TestPendingClearsSilently(t *testing.T) {
	src := newFakeSource()
	clk := newClock()
	bus := stream.NewBus("n0")
	sub := bus.Subscribe(16)
	defer sub.Close()

	eng, err := New(Config{
		Rules: []Rule{{
			Name: "r", Kind: KindThreshold, Metric: "g", Value: 1,
			For: Duration(time.Minute),
		}},
		Source: src, Bus: bus, Now: clk.now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src.set("g", tsdb.KindGauge, clk.sample(5))
	eng.EvalNow() // pending
	clk.advance(10 * time.Second)
	src.set("g", tsdb.KindGauge, clk.sample(0))
	eng.EvalNow() // clears before For: silent reset
	if got := eng.Active(); len(got) != 0 {
		t.Fatalf("active = %+v", got)
	}
	if got := eng.History(); len(got) != 0 {
		t.Fatalf("history = %+v; a never-fired episode must not resolve", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if ev, ok := sub.Next(ctx); ok {
		t.Fatalf("pending reset published %+v", ev)
	}
}

func TestForZeroFiresImmediately(t *testing.T) {
	src := newFakeSource()
	clk := newClock()
	eng, err := New(Config{
		Rules:  []Rule{{Name: "r", Kind: KindThreshold, Metric: "g", Value: 1}},
		Source: src, Now: clk.now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src.set("g", tsdb.KindGauge, clk.sample(2))
	eng.EvalNow()
	active := eng.Active()
	if len(active) != 1 || active[0].State != StateFiring {
		t.Fatalf("active = %+v, want immediate firing", active)
	}
}

func TestMissingMetricResolvesFiring(t *testing.T) {
	src := newFakeSource()
	clk := newClock()
	eng, err := New(Config{
		Rules:  []Rule{{Name: "r", Kind: KindThreshold, Metric: "g", Value: 1}},
		Source: src, Now: clk.now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src.set("g", tsdb.KindGauge, clk.sample(2))
	eng.EvalNow()
	// The series disappears (restart, retention): missing data is not a
	// breach, so the episode resolves rather than firing forever.
	delete(src.series, "g")
	clk.advance(time.Second)
	eng.EvalNow()
	if got := eng.Active(); len(got) != 0 {
		t.Fatalf("active = %+v after metric vanished", got)
	}
	if got := eng.History(); len(got) != 1 {
		t.Fatalf("history = %+v, want the resolved episode", got)
	}
}

func TestRateCounterSumsWindowDeltas(t *testing.T) {
	src := newFakeSource()
	clk := newClock()
	eng, err := New(Config{
		Rules: []Rule{{
			Name: "hot", Kind: KindRate, Metric: "c",
			Op: ">=", Value: 10, Window: Duration(time.Minute),
		}},
		Source: src, Now: clk.now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Two in-window deltas plus one stale sample outside the window.
	src.set("c", tsdb.KindCounter,
		tsdb.Sample{UnixMS: clk.ms() - 2*60_000, Value: 100},
		tsdb.Sample{UnixMS: clk.ms() - 30_000, Value: 6},
		tsdb.Sample{UnixMS: clk.ms() - 5_000, Value: 5},
	)
	eng.EvalNow()
	active := eng.Active()
	if len(active) != 1 || active[0].Value != 11 {
		t.Fatalf("active = %+v, want windowed sum 11", active)
	}
}

func TestRateCounterEmptyWindowIsZero(t *testing.T) {
	src := newFakeSource()
	clk := newClock()
	eng, err := New(Config{
		Rules: []Rule{{
			// The ingest-stall shape: a known counter with nothing in the
			// window means a legitimate rate of zero, which == 0 matches.
			Name: "stalled", Kind: KindRate, Metric: "c",
			Op: "==", Value: 0, Window: Duration(time.Minute),
		}},
		Source: src, Now: clk.now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src.set("c", tsdb.KindCounter, tsdb.Sample{UnixMS: clk.ms() - 10*60_000, Value: 50})
	eng.EvalNow()
	if got := eng.Active(); len(got) != 1 {
		t.Fatalf("active = %+v, want empty-window zero to match == 0", got)
	}
}

func TestRateGaugeNeedsTwoSamples(t *testing.T) {
	src := newFakeSource()
	clk := newClock()
	eng, err := New(Config{
		Rules: []Rule{{
			Name: "growth", Kind: KindRate, Metric: "g",
			Op: ">", Value: 5, Window: Duration(time.Minute),
		}},
		Source: src, Now: clk.now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src.set("g", tsdb.KindGauge, clk.sample(100))
	eng.EvalNow()
	if got := eng.Active(); len(got) != 0 {
		t.Fatalf("one gauge sample has no rate, got %+v", got)
	}
	src.set("g", tsdb.KindGauge,
		tsdb.Sample{UnixMS: clk.ms() - 30_000, Value: 100},
		clk.sample(110),
	)
	eng.EvalNow()
	active := eng.Active()
	if len(active) != 1 || active[0].Value != 10 {
		t.Fatalf("active = %+v, want last-minus-first 10", active)
	}
}

func TestWhenGateSuspendsRule(t *testing.T) {
	src := newFakeSource()
	clk := newClock()
	eng, err := New(Config{
		Rules: []Rule{{
			Name: "r", Kind: KindThreshold, Metric: "g", Value: 1,
			When: &Gate{Metric: "sessions", Op: ">", Value: 0},
		}},
		Source: src, Now: clk.now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src.set("g", tsdb.KindGauge, clk.sample(5))
	src.set("sessions", tsdb.KindGauge, clk.sample(0))
	eng.EvalNow()
	if got := eng.Active(); len(got) != 0 {
		t.Fatalf("gated rule fired while gate false: %+v", got)
	}
	src.set("sessions", tsdb.KindGauge, clk.sample(2))
	eng.EvalNow()
	if got := eng.Active(); len(got) != 1 {
		t.Fatalf("gated rule inactive while gate true: %+v", got)
	}
	// Gate drops again: the episode resolves.
	src.set("sessions", tsdb.KindGauge, clk.sample(0))
	clk.advance(time.Second)
	eng.EvalNow()
	if got := eng.Active(); len(got) != 0 {
		t.Fatalf("gated rule stayed active after gate closed: %+v", got)
	}
}

func TestRatioMinCountGate(t *testing.T) {
	src := newFakeSource()
	clk := newClock()
	eng, err := New(Config{
		Rules: []Rule{{
			Name: "collapse", Kind: KindRatio, Metric: "hits",
			Denominator: []string{"hits", "misses"},
			Op:          "<", Value: 0.5, Window: Duration(time.Minute), MinCount: 20,
		}},
		Source: src, Now: clk.now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// 1 hit, 9 misses: ratio 0.1 < 0.5, but only 10 lookups — under the
	// traffic gate, no alert.
	src.set("hits", tsdb.KindCounter, clk.sample(1))
	src.set("misses", tsdb.KindCounter, clk.sample(9))
	eng.EvalNow()
	if got := eng.Active(); len(got) != 0 {
		t.Fatalf("ratio fired under min_count: %+v", got)
	}
	src.set("hits", tsdb.KindCounter, clk.sample(2))
	src.set("misses", tsdb.KindCounter, clk.sample(38))
	eng.EvalNow()
	active := eng.Active()
	if len(active) != 1 || active[0].Value != 0.05 {
		t.Fatalf("active = %+v, want ratio 0.05", active)
	}
}

func TestBurnRateNeedsBothWindows(t *testing.T) {
	src := newFakeSource()
	clk := newClock()
	rule := Rule{
		Name: "burn", Kind: KindBurnRate,
		Metric: "breaches", Denominator: []string{"requests"},
		Value: 14, Target: 0.99,
		Window: Duration(5 * time.Minute), ShortWindow: Duration(time.Minute),
	}
	eng, err := New(Config{Rules: []Rule{rule}, Source: src, Now: clk.now})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Sustained breaching in both windows: 50% breach rate against a 1%
	// budget is a 50x burn — well past 14x.
	longAgo := clk.ms() - 3*60_000 // in long window, outside short
	recent := clk.ms() - 10_000    // in both
	src.set("breaches", tsdb.KindCounter,
		tsdb.Sample{UnixMS: longAgo, Value: 50},
		tsdb.Sample{UnixMS: recent, Value: 50},
	)
	src.set("requests", tsdb.KindCounter,
		tsdb.Sample{UnixMS: longAgo, Value: 100},
		tsdb.Sample{UnixMS: recent, Value: 100},
	)
	eng.EvalNow()
	active := eng.Active()
	if len(active) != 1 {
		t.Fatalf("sustained burn did not alert: %+v", active)
	}
	if v := active[0].Value; v < 49 || v > 51 {
		t.Fatalf("reported burn = %v, want ~50", v)
	}

	// The spike ages out of the short window while traffic continues
	// clean: the short window vetoes and the alert resolves.
	src.set("breaches", tsdb.KindCounter,
		tsdb.Sample{UnixMS: longAgo, Value: 100},
	)
	src.set("requests", tsdb.KindCounter,
		tsdb.Sample{UnixMS: longAgo, Value: 100},
		tsdb.Sample{UnixMS: recent, Value: 100},
	)
	clk.advance(time.Second)
	eng.EvalNow()
	if got := eng.Active(); len(got) != 0 {
		t.Fatalf("expired spike still alerting: %+v", got)
	}
}

func TestBurnRateMinCountGate(t *testing.T) {
	src := newFakeSource()
	clk := newClock()
	rule := Rule{
		Name: "burn", Kind: KindBurnRate,
		Metric: "breaches", Denominator: []string{"requests"},
		Value: 14, Target: 0.99, MinCount: 100,
		Window: Duration(5 * time.Minute), ShortWindow: Duration(time.Minute),
	}
	eng, err := New(Config{Rules: []Rule{rule}, Source: src, Now: clk.now})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// 2 of 3 requests breached — a 67x burn, but 3 requests is noise.
	src.set("breaches", tsdb.KindCounter, clk.sample(2))
	src.set("requests", tsdb.KindCounter, clk.sample(3))
	eng.EvalNow()
	if got := eng.Active(); len(got) != 0 {
		t.Fatalf("burn rule fired under min_count traffic: %+v", got)
	}
}

func TestHistoryBound(t *testing.T) {
	src := newFakeSource()
	clk := newClock()
	eng, err := New(Config{
		Rules:   []Rule{{Name: "r", Kind: KindThreshold, Metric: "g", Value: 1}},
		Source:  src, Now: clk.now,
		History: 2,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 4; i++ {
		src.set("g", tsdb.KindGauge, clk.sample(5))
		eng.EvalNow()
		clk.advance(time.Second)
		src.set("g", tsdb.KindGauge, clk.sample(0))
		eng.EvalNow()
		clk.advance(time.Second)
	}
	hist := eng.History()
	if len(hist) != 2 {
		t.Fatalf("history kept %d entries, want bound 2", len(hist))
	}
	if hist[0].ResolvedMS < hist[1].ResolvedMS {
		t.Fatalf("history not newest-first: %+v", hist)
	}
}

func TestActiveOrdering(t *testing.T) {
	src := newFakeSource()
	clk := newClock()
	eng, err := New(Config{
		Rules: []Rule{
			{Name: "warn-pending", Kind: KindThreshold, Metric: "a", Value: 1, For: Duration(time.Hour)},
			{Name: "crit-firing", Kind: KindThreshold, Metric: "b", Value: 1, Severity: SevCritical},
			{Name: "warn-firing", Kind: KindThreshold, Metric: "c", Value: 1},
		},
		Source: src, Now: clk.now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, m := range []string{"a", "b", "c"} {
		src.set(m, tsdb.KindGauge, clk.sample(5))
	}
	eng.EvalNow()
	active := eng.Active()
	if len(active) != 3 {
		t.Fatalf("active = %+v", active)
	}
	want := []string{"crit-firing", "warn-firing", "warn-pending"}
	for i, name := range want {
		if active[i].Rule != name {
			t.Fatalf("active[%d] = %s, want %s (full: %+v)", i, active[i].Rule, name, active)
		}
	}
}

func TestDuplicateRuleNamesRejected(t *testing.T) {
	_, err := New(Config{
		Rules: []Rule{
			{Name: "r", Kind: KindThreshold, Metric: "a", Value: 1},
			{Name: "r", Kind: KindThreshold, Metric: "b", Value: 2},
		},
		Source: newFakeSource(),
	})
	if err == nil {
		t.Fatal("duplicate rule names accepted")
	}
}

// TestServiceDefaultsBurnRule drives the real compiled-in slo-fast-burn
// rule through its full lifecycle with synthetic SLO traffic.
func TestServiceDefaultsBurnRule(t *testing.T) {
	src := newFakeSource()
	clk := newClock()
	bus := stream.NewBus("svc")
	sub := bus.Subscribe(16)
	defer sub.Close()
	reg := obs.NewRegistry()

	eng, err := New(Config{
		Node:   "svc",
		Rules:  ServiceDefaults(0.99, 48),
		Source: src, Bus: bus, Registry: reg, Now: clk.now,
	})
	if err != nil {
		t.Fatalf("New with ServiceDefaults: %v", err)
	}

	// Healthy traffic: nothing alerts.
	src.set(obs.SvcSLORequests, tsdb.KindCounter, clk.sample(100))
	src.set(obs.SvcSLOBreaches, tsdb.KindCounter, clk.sample(0))
	eng.EvalNow()
	if got := eng.Active(); len(got) != 0 {
		t.Fatalf("healthy traffic alerted: %+v", got)
	}

	// Every request breaching: burn = (1.0)/(0.01) = 100x > 14x, in both
	// windows. Pending first (For 15s), then firing.
	src.set(obs.SvcSLOBreaches, tsdb.KindCounter, clk.sample(100))
	eng.EvalNow()
	active := eng.Active()
	if len(active) != 1 || active[0].Rule != "slo-fast-burn" || active[0].State != StatePending {
		t.Fatalf("active = %+v, want pending slo-fast-burn", active)
	}
	clk.advance(20 * time.Second)
	src.set(obs.SvcSLORequests, tsdb.KindCounter,
		tsdb.Sample{UnixMS: clk.ms() - 20_000, Value: 100}, clk.sample(100))
	src.set(obs.SvcSLOBreaches, tsdb.KindCounter,
		tsdb.Sample{UnixMS: clk.ms() - 20_000, Value: 100}, clk.sample(100))
	eng.EvalNow()
	active = eng.Active()
	if len(active) != 1 || active[0].State != StateFiring || active[0].Severity != SevCritical {
		t.Fatalf("active = %+v, want firing critical slo-fast-burn", active)
	}

	// Recovery: breaches age out of both windows.
	clk.advance(6 * time.Minute)
	src.set(obs.SvcSLORequests, tsdb.KindCounter, clk.sample(100))
	src.set(obs.SvcSLOBreaches, tsdb.KindCounter, clk.sample(0))
	eng.EvalNow()
	if got := eng.Active(); len(got) != 0 {
		t.Fatalf("recovered traffic still alerting: %+v", got)
	}
	evs := drainEvents(t, sub, 2)
	if evs[0].Type != stream.TypeAlertFiring || evs[1].Type != stream.TypeAlertResolved {
		t.Fatalf("events = %s, %s", evs[0].Type, evs[1].Type)
	}
}

// TestGatewayDefaultsRingRule drives the compiled-in ring-backend-evicted
// rule off a synthetic membership gauge.
func TestGatewayDefaultsRingRule(t *testing.T) {
	src := newFakeSource()
	clk := newClock()
	eng, err := New(Config{
		Node:   "gate",
		Rules:  GatewayDefaults(2, []string{"b0", "b1"}),
		Source: src, Now: clk.now,
	})
	if err != nil {
		t.Fatalf("New with GatewayDefaults: %v", err)
	}
	src.set(obs.GateRingMembers, tsdb.KindGauge, clk.sample(2))
	eng.EvalNow()
	if got := eng.Active(); len(got) != 0 {
		t.Fatalf("full ring alerted: %+v", got)
	}
	src.set(obs.GateRingMembers, tsdb.KindGauge, clk.sample(1))
	eng.EvalNow()
	active := eng.Active()
	if len(active) != 1 || active[0].Rule != "ring-backend-evicted" || active[0].State != StateFiring {
		t.Fatalf("active = %+v, want firing ring-backend-evicted", active)
	}
	src.set(obs.GateRingMembers, tsdb.KindGauge, clk.sample(2))
	clk.advance(time.Second)
	eng.EvalNow()
	if got := eng.Active(); len(got) != 0 {
		t.Fatalf("readmitted ring still alerting: %+v", got)
	}
	if got := eng.History(); len(got) != 1 || got[0].Rule != "ring-backend-evicted" {
		t.Fatalf("history = %+v", got)
	}
}

func TestEngineAgainstRealTSDB(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("depth").Set(50)
	db := tsdb.New(tsdb.Options{Registry: reg, Node: "n0", Interval: time.Second})
	eng, err := New(Config{
		Rules:  []Rule{{Name: "deep", Kind: KindThreshold, Metric: "depth", Op: ">=", Value: 10}},
		Source: db,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	db.SetOnTick(eng.EvalNow)
	db.CollectNow()
	active := eng.Active()
	if len(active) != 1 || active[0].Value != 50 {
		t.Fatalf("active = %+v, want firing off the tsdb tick", active)
	}
	reg.Gauge("depth").Set(0)
	db.CollectNow()
	if got := eng.Active(); len(got) != 0 {
		t.Fatalf("active = %+v after gauge dropped", got)
	}
}

func TestDocShape(t *testing.T) {
	src := newFakeSource()
	eng, err := New(Config{
		Node:   "n0",
		Rules:  []Rule{{Name: "r", Kind: KindThreshold, Metric: "g", Value: 1}},
		Source: src,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	doc := eng.Doc()
	if doc.Node != "n0" || len(doc.Rules) != 1 || len(doc.Active) != 0 || len(doc.History) != 0 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Rules[0].Op != ">" || doc.Rules[0].Severity != SevWarning {
		t.Fatalf("served rules not normalized: %+v", doc.Rules[0])
	}
}
