package tracectx

import (
	"context"
	"strings"
	"testing"
)

func TestNewMintsValidDistinctContexts(t *testing.T) {
	a, b := New(), New()
	if !a.Valid() || !b.Valid() {
		t.Fatalf("New minted invalid contexts: %v %v", a, b)
	}
	if a.TraceID() == b.TraceID() {
		t.Fatalf("two roots share trace ID %s", a.TraceID())
	}
}

func TestChildKeepsTraceChangesSpan(t *testing.T) {
	root := New()
	child := root.Child()
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %s != root trace %s", child.TraceID(), root.TraceID())
	}
	if child.SpanID() == root.SpanID() {
		t.Fatalf("child span ID %s did not change", child.SpanID())
	}
	if !child.Valid() {
		t.Fatal("child context invalid")
	}
}

func TestStringParseRoundtrip(t *testing.T) {
	c := New()
	s := c.String()
	if !strings.HasPrefix(s, "00-") || !strings.HasSuffix(s, "-01") || len(s) != 55 {
		t.Fatalf("serialized form %q is not a 55-char 00-…-01 traceparent", s)
	}
	got, ok := Parse(s)
	if !ok {
		t.Fatalf("Parse rejected own output %q", s)
	}
	if got != c {
		t.Fatalf("roundtrip changed context: %v != %v", got, c)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"not-a-traceparent",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",        // 3 parts
		"0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",      // short version
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",     // non-hex version
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",     // reserved version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",     // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",     // zero span
		"00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01",      // short trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736x-00f067aa0ba902b7-01",    // long trace
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",     // non-hex trace
	}
	for _, s := range bad {
		if c, ok := Parse(s); ok {
			t.Errorf("Parse(%q) accepted as %v", s, c)
		}
	}
}

func TestParseAcceptsUnknownVersionAndExtraParts(t *testing.T) {
	// Per the spec, unknown (non-ff) versions parse by the 00 layout, and
	// future versions may append more dash-separated fields.
	s := "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extrafield"
	c, ok := Parse(s)
	if !ok {
		t.Fatalf("Parse rejected forward-compatible form %q", s)
	}
	if c.TraceID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID = %s", c.TraceID())
	}
}

func TestContextCarriage(t *testing.T) {
	if _, ok := From(context.Background()); ok {
		t.Fatal("empty context reported a trace")
	}
	tc := New()
	ctx := Into(context.Background(), tc)
	got, ok := From(ctx)
	if !ok || got != tc {
		t.Fatalf("From = %v, %v; want %v, true", got, ok, tc)
	}

	ctx2, same, joined := Ensure(ctx)
	if !joined || same != tc || ctx2 != ctx {
		t.Fatal("Ensure minted a new root despite an existing trace")
	}
	_, minted, joined := Ensure(context.Background())
	if joined || !minted.Valid() {
		t.Fatalf("Ensure on empty context: joined=%v minted=%v", joined, minted)
	}
}

func TestFromHeader(t *testing.T) {
	tc := New()
	hdr := map[string]string{Header: tc.String()}
	got, joined := FromHeader(func(k string) string { return hdr[k] })
	if !joined || got != tc {
		t.Fatalf("FromHeader = %v, %v; want %v, true", got, joined, tc)
	}
	got, joined = FromHeader(func(string) string { return "garbage" })
	if joined {
		t.Fatal("FromHeader claimed to join a garbage header")
	}
	if !got.Valid() {
		t.Fatal("FromHeader fallback root is invalid")
	}
}
