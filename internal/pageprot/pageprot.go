// Package pageprot models page-protection-based sharing detection: the
// software-only mechanism (in the style of MultiRace and DSM systems) that
// demand-driven tools used before precise hardware events existed, and the
// foil the paper's performance-counter approach is measured against.
//
// Every virtual page starts owned by its first toucher. An access by any
// other thread takes a protection fault — an expensive kernel round trip —
// which both signals sharing and unprotects the page, so subsequent
// cross-thread accesses are silent until a periodic re-protection sweep
// re-arms detection. Compared to HITM counters the mechanism is:
//
//   - coarse: a 4 KiB page spans 64 cache lines, so unrelated private data
//     co-located on a page looks shared (page-level false sharing);
//   - expensive: each detection costs a fault (thousands of cycles) and
//     each re-arm a sweep;
//   - blind between sweeps: sharing that starts after the page was
//     unprotected goes unseen until the next sweep.
package pageprot

import (
	"fmt"

	"demandrace/internal/mem"
	"demandrace/internal/vclock"
)

// PageSize is the protection granularity in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Page identifies a virtual page.
type Page uint64

// PageOf returns the page containing addr.
func PageOf(a mem.Addr) Page { return Page(a >> PageShift) }

// DefaultReprotectEvery is the default op interval between re-protection
// sweeps, proportioned to this simulator's kernel sizes the same way the
// demand controller's quiet window is.
const DefaultReprotectEvery = 2000

// Stats counts tracker activity.
type Stats struct {
	// Faults counts protection faults (cross-thread first touches).
	Faults uint64
	// Sweeps counts re-protection passes.
	Sweeps uint64
	// Pages is the number of pages ever touched.
	Pages uint64
}

type pageState struct {
	owner vclock.TID
	// shared marks the page as unprotected after a cross-thread fault;
	// cleared by the sweep.
	shared bool
}

// Config parameterizes the tracker.
type Config struct {
	// ReprotectEvery is the access count between re-protection sweeps.
	// Zero selects DefaultReprotectEvery.
	ReprotectEvery uint64
}

// Tracker is the simulated page-protection machinery. Not safe for
// concurrent use.
type Tracker struct {
	cfg   Config
	pages map[Page]*pageState
	ops   uint64
	stats Stats
}

// New builds a tracker.
func New(cfg Config) *Tracker {
	if cfg.ReprotectEvery == 0 {
		cfg.ReprotectEvery = DefaultReprotectEvery
	}
	return &Tracker{cfg: cfg, pages: make(map[Page]*pageState)}
}

// Stats returns a snapshot of the counters.
func (t *Tracker) Stats() Stats { return t.stats }

// Access records one memory access and reports whether it took a
// protection fault (= a sharing indication). Call once per data access.
func (t *Tracker) Access(tid vclock.TID, addr mem.Addr) (fault bool) {
	t.ops++
	if t.ops%t.cfg.ReprotectEvery == 0 {
		t.sweep()
	}
	pg := PageOf(addr)
	st, ok := t.pages[pg]
	if !ok {
		t.stats.Pages++
		t.pages[pg] = &pageState{owner: tid}
		return false
	}
	if st.shared || st.owner == tid {
		return false
	}
	// Cross-thread touch of a protected page: fault, then unprotect.
	st.shared = true
	t.stats.Faults++
	return true
}

// Shared reports whether addr's page is currently marked shared
// (unprotected).
func (t *Tracker) Shared(addr mem.Addr) bool {
	if st, ok := t.pages[PageOf(addr)]; ok {
		return st.shared
	}
	return false
}

// sweep re-protects every page, re-arming sharing detection. Ownership is
// reset so the next toucher re-claims each page — phase changes migrate
// pages to their new owners without faulting.
func (t *Tracker) sweep() {
	t.stats.Sweeps++
	for pg, st := range t.pages {
		if st.shared {
			// Drop the entry entirely: the next toucher becomes the owner.
			delete(t.pages, pg)
			t.stats.Pages--
		}
	}
}

func (t *Tracker) String() string {
	return fmt.Sprintf("pageprot: %d pages tracked, %d faults, %d sweeps",
		len(t.pages), t.stats.Faults, t.stats.Sweeps)
}
