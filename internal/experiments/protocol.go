package experiments

import (
	"fmt"

	"demandrace/internal/cache"
	"demandrace/internal/demand"
	"demandrace/internal/runner"
	"demandrace/internal/stats"
)

// Tab6 — coherence-protocol ablation: the paper measured Intel MESI(F)
// parts, where a remote read of a Modified line demotes it (writing back),
// so each producer write is visible to the HITM indicator at most once. An
// AMD-style MOESI machine keeps the dirty line Owned in the producer's
// cache and serves every later consumer with a dirty intervention — the
// indicator sees strictly more sharing, which changes both the demand
// policy's trigger rate and, on multi-consumer patterns, its recall.
type Tab6Row struct {
	Kernel   string
	Protocol string
	// HITM is the cache's dirty-intervention count under the Off policy.
	HITM uint64
	// Demand and Continuous are the policies' slowdowns.
	Demand     float64
	Continuous float64
	// Races is the demand policy's distinct racy-word count.
	Races int
}

// Tab6Result is the protocol comparison.
type Tab6Result struct {
	Rows []Tab6Row
}

// Tab6 runs multi-consumer and suite kernels under both protocols; the
// (kernel × protocol) grid runs as one fan-out.
func Tab6(o Options) (*Tab6Result, error) {
	o = o.normalized()
	kernels := []string{"micro_read_sharing", "x264", "streamcluster", "racy_mostly_clean"}
	if o.Quick {
		kernels = []string{"micro_read_sharing", "racy_mostly_clean"}
	}
	protos := []cache.Protocol{cache.MESI, cache.MOESI}
	rows, err := fanOut(o, len(kernels)*len(protos), func(i int) (Tab6Row, error) {
		name, proto := kernels[i/len(protos)], protos[i%len(protos)]
		p, err := buildProgram(name, o)
		if err != nil {
			return Tab6Row{}, err
		}
		cfg := runner.DefaultConfig()
		cfg.Cache.Protocol = proto
		reps, err := runner.RunPolicies(p, cfg,
			demand.Off, demand.Continuous, demand.HITMDemand)
		if err != nil {
			return Tab6Row{}, fmt.Errorf("experiments: tab6 %s/%v: %w", name, proto, err)
		}
		off, cont, dem := reps[0], reps[1], reps[2]
		return Tab6Row{
			Kernel:     name,
			Protocol:   proto.String(),
			HITM:       off.SharedHITM,
			Continuous: cont.Slowdown,
			Demand:     dem.Slowdown,
			Races:      len(dem.RacyAddrs()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Tab6Result{Rows: rows}, nil
}

// Table renders the result.
func (r *Tab6Result) Table() *stats.Table {
	tb := stats.NewTable("Tab.6 — coherence protocol ablation (MESI vs MOESI)",
		"kernel", "protocol", "HITM events", "continuous (×)", "demand (×)", "racy words")
	for _, row := range r.Rows {
		tb.AddRow(row.Kernel, row.Protocol,
			fmt.Sprintf("%d", row.HITM),
			fmt.Sprintf("%.2f", row.Continuous),
			fmt.Sprintf("%.2f", row.Demand),
			fmt.Sprintf("%d", row.Races))
	}
	return tb
}
