// Package store is a crash-safe on-disk result store: an append-only log
// of (key, value) records split across size-bounded segment files, with an
// in-memory index rebuilt by a recovery scan on every open.
//
// It backs ddserved's content-addressed result cache (-store-dir), so
// cache contents survive restarts. The design leans on the same purity
// property as the rest of the service layer: keys are content hashes and
// values are immutable, so there are no overwrites, no tombstones, and no
// compaction-time merging — a key is written at most once, and "compaction"
// reduces to evicting whole segments oldest-first once the configured size
// cap is exceeded.
//
// Crash safety is by construction rather than by fsync discipline: every
// record carries a CRC32 over its header and payload, and Open scans each
// segment sequentially, truncating at the first torn or corrupt record.
// Only the damaged tail is lost; every record before it stays readable.
package store

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Record layout, little-endian, packed back to back inside a segment:
//
//	uint32 keyLen | uint32 dataLen | key | data | uint32 crc
//
// crc is CRC32 (IEEE) over the 8 header bytes, the key, and the data, so
// a torn length field is caught the same way a torn payload is.
const (
	recHeaderLen  = 8
	recTrailerLen = 4
	// maxKeyLen bounds keys during recovery: anything larger is treated as
	// a corrupt length field, not a real record. Content-hash keys are 64
	// bytes; 4 KiB leaves generous headroom.
	maxKeyLen = 4096
	// maxDataLen bounds a single value at 1 GiB for the same reason.
	maxDataLen = 1 << 30
)

// Options shape a Store. Zero fields take defaults.
type Options struct {
	// SegmentBytes rolls the active segment once it reaches this size
	// (default 4 MiB). Smaller segments mean finer-grained eviction.
	SegmentBytes int64
	// MaxBytes caps the store's total on-disk size (default 256 MiB).
	// When an append pushes the total past the cap, whole segments are
	// evicted oldest-first until the store fits again (the active segment
	// is never evicted). Negative disables the cap.
	MaxBytes int64
	// Log receives recovery and eviction notices. Nil discards them.
	Log *slog.Logger
}

func (o Options) normalized() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = 256 << 20
	}
	if o.Log == nil {
		o.Log = slog.New(discardHandler{})
	}
	return o
}

// entryRef locates one record's payload inside a segment.
type entryRef struct {
	seg     *segment
	off     int64 // offset of the record start
	keyLen  uint32
	dataLen uint32
}

// segment is one append-only log file.
type segment struct {
	id   uint64
	path string
	f    *os.File
	size int64
	keys int // live records (for eviction logging)
}

// Store is the on-disk result store. All methods are safe for concurrent
// use.
type Store struct {
	dir  string
	opts Options
	log  *slog.Logger

	mu     sync.Mutex
	segs   []*segment // ascending id; the last one is the active segment
	index  map[string]entryRef
	size   int64 // total bytes across all segments
	closed bool
}

// Open opens (or creates) the store rooted at dir and runs the recovery
// scan: every segment is read sequentially, records with valid CRCs are
// indexed (later duplicates win, though duplicates never arise from this
// package's own writes), and the first torn or corrupt record truncates
// its segment — dropping only the damaged tail.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.normalized()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		log:   opts.Log,
		index: make(map[string]entryRef),
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names) // zero-padded ids sort numerically
	for _, path := range names {
		seg, err := s.openSegment(path)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.segs = append(s.segs, seg)
		s.size += seg.size
	}
	if len(s.segs) == 0 {
		if err := s.rollLocked(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// openSegment opens one existing segment and scans it into the index,
// truncating at the first bad record.
func (s *Store) openSegment(path string) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening segment: %w", err)
	}
	var id uint64
	fmt.Sscanf(filepath.Base(path), "seg-%d.log", &id)
	seg := &segment{id: id, path: path, f: f}

	var off int64
	hdr := make([]byte, recHeaderLen)
	for {
		if _, err := io.ReadFull(io.NewSectionReader(f, off, recHeaderLen), hdr); err != nil {
			break // clean EOF or torn header: everything from off on is dropped
		}
		keyLen := binary.LittleEndian.Uint32(hdr[0:4])
		dataLen := binary.LittleEndian.Uint32(hdr[4:8])
		if keyLen == 0 || keyLen > maxKeyLen || dataLen > maxDataLen {
			break // corrupt lengths
		}
		recLen := int64(recHeaderLen) + int64(keyLen) + int64(dataLen) + recTrailerLen
		buf := make([]byte, recLen-recHeaderLen)
		if _, err := io.ReadFull(io.NewSectionReader(f, off+recHeaderLen, recLen-recHeaderLen), buf); err != nil {
			break // torn payload
		}
		body, trailer := buf[:len(buf)-recTrailerLen], buf[len(buf)-recTrailerLen:]
		crc := crc32.NewIEEE()
		crc.Write(hdr)
		crc.Write(body)
		if crc.Sum32() != binary.LittleEndian.Uint32(trailer) {
			break // corrupt record
		}
		key := string(body[:keyLen])
		s.index[key] = entryRef{seg: seg, off: off, keyLen: keyLen, dataLen: dataLen}
		seg.keys++
		off += recLen
	}
	if st, err := f.Stat(); err == nil && st.Size() > off {
		s.log.Warn("store: truncating torn segment tail",
			"segment", filepath.Base(path), "good_bytes", off, "file_bytes", st.Size())
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating %s: %w", path, err)
		}
	}
	seg.size = off
	return seg, nil
}

// rollLocked starts a fresh active segment. Caller holds s.mu (or is the
// constructor).
func (s *Store) rollLocked() error {
	var id uint64 = 1
	if n := len(s.segs); n > 0 {
		id = s.segs[n-1].id + 1
	}
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.log", id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating segment: %w", err)
	}
	s.segs = append(s.segs, &segment{id: id, path: path, f: f})
	return nil
}

// Put appends one record. Keys are content hashes of immutable results,
// so writing an already-present key is a no-op, not an update.
func (s *Store) Put(key string, data []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d out of range", len(key))
	}
	if int64(len(data)) > maxDataLen {
		return fmt.Errorf("store: value of %d bytes exceeds the %d-byte record cap", len(data), maxDataLen)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if _, ok := s.index[key]; ok {
		return nil
	}

	rec := make([]byte, recHeaderLen+len(key)+len(data)+recTrailerLen)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(data)))
	copy(rec[recHeaderLen:], key)
	copy(rec[recHeaderLen+len(key):], data)
	crc := crc32.ChecksumIEEE(rec[:recHeaderLen+len(key)+len(data)])
	binary.LittleEndian.PutUint32(rec[len(rec)-recTrailerLen:], crc)

	active := s.segs[len(s.segs)-1]
	if active.size > 0 && active.size+int64(len(rec)) > s.opts.SegmentBytes {
		if err := s.rollLocked(); err != nil {
			return err
		}
		active = s.segs[len(s.segs)-1]
	}
	if _, err := active.f.WriteAt(rec, active.size); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	s.index[key] = entryRef{seg: active, off: active.size, keyLen: uint32(len(key)), dataLen: uint32(len(data))}
	active.size += int64(len(rec))
	active.keys++
	s.size += int64(len(rec))
	s.compactLocked()
	return nil
}

// compactLocked enforces the size cap by evicting whole segments
// oldest-first. The active segment is never evicted, so a store with a
// single oversized segment stays intact until the next roll.
func (s *Store) compactLocked() {
	if s.opts.MaxBytes < 0 {
		return
	}
	for s.size > s.opts.MaxBytes && len(s.segs) > 1 {
		victim := s.segs[0]
		s.segs = s.segs[1:]
		for key, ref := range s.index {
			if ref.seg == victim {
				delete(s.index, key)
			}
		}
		s.size -= victim.size
		victim.f.Close()
		if err := os.Remove(victim.path); err != nil {
			s.log.Warn("store: removing compacted segment", "error", err.Error())
		}
		s.log.Info("store: evicted segment past size cap",
			"segment", filepath.Base(victim.path), "records", victim.keys,
			"bytes", victim.size, "cap", s.opts.MaxBytes)
	}
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	ref, ok := s.index[key]
	if !ok {
		return nil, false
	}
	data := make([]byte, ref.dataLen)
	if _, err := ref.seg.f.ReadAt(data, ref.off+recHeaderLen+int64(ref.keyLen)); err != nil {
		s.log.Warn("store: reading record", "error", err.Error())
		return nil, false
	}
	return data, true
}

// Each calls fn for every stored record in write order (oldest first), the
// order that makes repopulating an LRU leave the newest entries most
// recent. Iteration stops at the first error, which is returned.
func (s *Store) Each(fn func(key string, data []byte) error) error {
	s.mu.Lock()
	refs := make([]struct {
		key string
		ref entryRef
	}, 0, len(s.index))
	for key, ref := range s.index {
		refs = append(refs, struct {
			key string
			ref entryRef
		}{key, ref})
	}
	s.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i].ref, refs[j].ref
		if a.seg.id != b.seg.id {
			return a.seg.id < b.seg.id
		}
		return a.off < b.off
	})
	for _, r := range refs {
		data, ok := s.Get(r.key)
		if !ok {
			continue // evicted between snapshot and read
		}
		if err := fn(r.key, data); err != nil {
			return err
		}
	}
	return nil
}

// Keys returns every stored key in write order (oldest first) without
// reading any values — the shard listing replication peers use to plan
// copies.
func (s *Store) Keys() []string {
	s.mu.Lock()
	type keyRef struct {
		key string
		ref entryRef
	}
	refs := make([]keyRef, 0, len(s.index))
	for key, ref := range s.index {
		refs = append(refs, keyRef{key, ref})
	}
	s.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i].ref, refs[j].ref
		if a.seg.id != b.seg.id {
			return a.seg.id < b.seg.id
		}
		return a.off < b.off
	})
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = r.key
	}
	return out
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Size returns the store's total on-disk size in bytes.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close closes every segment file. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, seg := range s.segs {
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// discardHandler mirrors olog.Discard without importing it (the store
// sits below the obs layer).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
