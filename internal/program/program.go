// Package program defines the op-level intermediate representation of the
// parallel programs the simulator executes.
//
// A Program is a set of threads, each a straight-line sequence of ops:
// memory accesses (Load/Store/atomics), synchronization (Lock/Unlock,
// Barrier, Signal/Wait), and Compute blocks standing in for the
// non-memory work between accesses. The workload kernels in
// internal/workloads build these programs; the scheduler in internal/sched
// interleaves them deterministically; the runner feeds every executed op
// through the cache, PMU, and race-detection pipeline.
//
// The representation is deliberately loop-free: kernels unroll their loops
// when building, which keeps execution, replay, and trace encoding trivial
// and makes every run exactly reproducible.
package program

import (
	"fmt"
	"io"

	"demandrace/internal/mem"
	"demandrace/internal/vclock"
)

// Kind discriminates op types.
type Kind uint8

const (
	// OpLoad reads Addr.
	OpLoad Kind = iota
	// OpStore writes Addr.
	OpStore
	// OpAtomicLoad reads Addr with acquire semantics (synchronizes with a
	// prior OpAtomicStore to the same address).
	OpAtomicLoad
	// OpAtomicStore writes Addr with release semantics.
	OpAtomicStore
	// OpLock acquires mutex Sync (blocking).
	OpLock
	// OpUnlock releases mutex Sync.
	OpUnlock
	// OpBarrier arrives at barrier Sync and blocks until all participants
	// arrive.
	OpBarrier
	// OpSignal increments semaphore Sync (release edge).
	OpSignal
	// OpWait decrements semaphore Sync, blocking while zero (acquire edge).
	OpWait
	// OpCompute burns N cycles of thread-local work touching no shared
	// memory.
	OpCompute
	// OpMark is a zero-cost annotation: it sets the executing thread's
	// current region label to Program.Labels[N]. Race reports carry the
	// region of each access, standing in for the source locations a
	// binary-instrumentation tool would record.
	OpMark
)

func (k Kind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpAtomicLoad:
		return "atomic-load"
	case OpAtomicStore:
		return "atomic-store"
	case OpLock:
		return "lock"
	case OpUnlock:
		return "unlock"
	case OpBarrier:
		return "barrier"
	case OpSignal:
		return "signal"
	case OpWait:
		return "wait"
	case OpCompute:
		return "compute"
	case OpMark:
		return "mark"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsMemory reports whether the op is a data memory access (the ops the
// demand-driven controller can skip analyzing).
func (k Kind) IsMemory() bool {
	switch k {
	case OpLoad, OpStore, OpAtomicLoad, OpAtomicStore:
		return true
	}
	return false
}

// IsSync reports whether the op is a synchronization operation (always
// instrumented, per the paper).
func (k Kind) IsSync() bool {
	switch k {
	case OpLock, OpUnlock, OpBarrier, OpSignal, OpWait, OpAtomicLoad, OpAtomicStore:
		return true
	}
	return false
}

// IsWrite reports whether the op writes memory.
func (k Kind) IsWrite() bool { return k == OpStore || k == OpAtomicStore }

// SyncID names a synchronization object (mutex, barrier, or semaphore).
// The ID spaces of the three classes are disjoint.
type SyncID int32

// Op is one executable operation.
type Op struct {
	Kind Kind
	// Addr is the target of memory ops.
	Addr mem.Addr
	// Sync is the target of synchronization ops.
	Sync SyncID
	// N is the cycle count for OpCompute.
	N uint64
}

func (o Op) String() string {
	switch {
	case o.Kind.IsMemory():
		return fmt.Sprintf("%s %v", o.Kind, o.Addr)
	case o.Kind == OpCompute:
		return fmt.Sprintf("compute %d", o.N)
	case o.Kind == OpMark:
		return fmt.Sprintf("mark #%d", o.N)
	default:
		return fmt.Sprintf("%s #%d", o.Kind, o.Sync)
	}
}

// Thread is one thread's straight-line body.
type Thread struct {
	ID  vclock.TID
	Ops []Op
}

// Program is a complete multithreaded workload.
type Program struct {
	Name    string
	Threads []Thread
	// Mutexes, Barriers, Semaphores are the number of sync objects of each
	// class; valid Sync IDs are [0, count).
	Mutexes    int
	Barriers   int
	Semaphores int
	// BarrierParties[b] is the participant count of barrier b.
	BarrierParties []int
	// Labels holds the region names referenced by OpMark ops.
	Labels []string
}

// LabelOf resolves an OpMark op's region name.
func (p *Program) LabelOf(op Op) string {
	if op.Kind != OpMark || op.N >= uint64(len(p.Labels)) {
		return ""
	}
	return p.Labels[op.N]
}

// NumThreads returns the thread count.
func (p *Program) NumThreads() int { return len(p.Threads) }

// TotalOps returns the total op count across threads.
func (p *Program) TotalOps() int {
	n := 0
	for _, t := range p.Threads {
		n += len(t.Ops)
	}
	return n
}

// MemOps returns the total count of data memory accesses.
func (p *Program) MemOps() int {
	n := 0
	for _, t := range p.Threads {
		for _, op := range t.Ops {
			if op.Kind.IsMemory() {
				n++
			}
		}
	}
	return n
}

// Validate checks structural well-formedness: sync IDs in range, lock/unlock
// discipline per thread (no unlock of a lock the thread does not hold, no
// lock still held at thread exit), barrier participant counts consistent
// with use, and memory ops with nonzero addresses.
func (p *Program) Validate() error {
	if len(p.Threads) == 0 {
		return fmt.Errorf("program %q: no threads", p.Name)
	}
	if len(p.BarrierParties) != p.Barriers {
		return fmt.Errorf("program %q: BarrierParties has %d entries for %d barriers",
			p.Name, len(p.BarrierParties), p.Barriers)
	}
	barrierUsers := make([]map[vclock.TID]bool, p.Barriers)
	for i := range barrierUsers {
		barrierUsers[i] = map[vclock.TID]bool{}
	}
	for ti, th := range p.Threads {
		if th.ID != vclock.TID(ti) {
			return fmt.Errorf("program %q: thread %d has ID %d; IDs must be dense and ordered",
				p.Name, ti, th.ID)
		}
		held := map[SyncID]int{}
		for oi, op := range th.Ops {
			where := func() string {
				return fmt.Sprintf("program %q thread %d op %d (%v)", p.Name, ti, oi, op)
			}
			switch op.Kind {
			case OpLoad, OpStore, OpAtomicLoad, OpAtomicStore:
				if op.Addr == 0 {
					return fmt.Errorf("%s: zero address", where())
				}
			case OpLock:
				if int(op.Sync) < 0 || int(op.Sync) >= p.Mutexes {
					return fmt.Errorf("%s: mutex out of range", where())
				}
				if held[op.Sync] > 0 {
					return fmt.Errorf("%s: recursive lock", where())
				}
				held[op.Sync]++
			case OpUnlock:
				if int(op.Sync) < 0 || int(op.Sync) >= p.Mutexes {
					return fmt.Errorf("%s: mutex out of range", where())
				}
				if held[op.Sync] == 0 {
					return fmt.Errorf("%s: unlock of unheld mutex", where())
				}
				held[op.Sync]--
			case OpBarrier:
				if int(op.Sync) < 0 || int(op.Sync) >= p.Barriers {
					return fmt.Errorf("%s: barrier out of range", where())
				}
				barrierUsers[op.Sync][th.ID] = true
			case OpSignal, OpWait:
				if int(op.Sync) < 0 || int(op.Sync) >= p.Semaphores {
					return fmt.Errorf("%s: semaphore out of range", where())
				}
			case OpCompute:
				if op.N == 0 {
					return fmt.Errorf("%s: zero-cycle compute", where())
				}
			case OpMark:
				if op.N >= uint64(len(p.Labels)) {
					return fmt.Errorf("%s: label index out of range", where())
				}
			default:
				return fmt.Errorf("%s: unknown op kind", where())
			}
		}
		for id, n := range held {
			if n > 0 {
				return fmt.Errorf("program %q thread %d: mutex #%d still held at exit",
					p.Name, ti, id)
			}
		}
	}
	for b, users := range barrierUsers {
		if len(users) > 0 && len(users) != p.BarrierParties[b] {
			return fmt.Errorf("program %q: barrier #%d used by %d threads but declares %d parties",
				p.Name, b, len(users), p.BarrierParties[b])
		}
	}
	return nil
}

// Dump writes a human-readable listing of the program — name, sync-object
// inventory, and each thread's ops — for debugging workload builders.
func (p *Program) Dump(w io.Writer) {
	fmt.Fprintf(w, "program %q: %d threads, %d ops (%d mem), %d mutexes, %d barriers, %d semaphores\n",
		p.Name, p.NumThreads(), p.TotalOps(), p.MemOps(), p.Mutexes, p.Barriers, p.Semaphores)
	for _, th := range p.Threads {
		fmt.Fprintf(w, "  t%d (%d ops):\n", th.ID, len(th.Ops))
		for i, op := range th.Ops {
			if op.Kind == OpMark {
				fmt.Fprintf(w, "    %4d: region %q\n", i, p.LabelOf(op))
				continue
			}
			fmt.Fprintf(w, "    %4d: %v\n", i, op)
		}
	}
}
