package experiments

import (
	"fmt"

	"demandrace/internal/demand"
	"demandrace/internal/program"
	"demandrace/internal/runner"
	"demandrace/internal/stats"
)

// Tab1 — benchmark characteristics: the static and dynamic profile of
// every evaluation kernel, the table a paper presents before any results
// so readers can sanity-check the workload population.
type Tab1Row struct {
	Kernel  string
	Suite   string
	Threads int
	// Static shape.
	TotalOps int
	MemOps   int
	Mutexes  int
	Barriers int
	Sems     int
	// Dynamic profile (Off policy).
	SyncOpsExecuted uint64
	SharingPct      float64
}

// Tab1Result is the characterization table.
type Tab1Result struct {
	Rows []Tab1Row
}

// Tab1 profiles every evaluation kernel, one fan-out job per kernel.
func Tab1(o Options) (*Tab1Result, error) {
	o = o.normalized()
	ks := suiteKernels(o)
	rows, err := fanOut(o, len(ks), func(i int) (Tab1Row, error) {
		k := ks[i]
		p := k.Build(o.kernelConfig())
		r, err := runner.Run(p, runner.DefaultConfig().WithPolicy(demand.Off))
		if err != nil {
			return Tab1Row{}, fmt.Errorf("experiments: tab1 %s: %w", k.Name, err)
		}
		return Tab1Row{
			Kernel:          k.Name,
			Suite:           k.Suite,
			Threads:         p.NumThreads(),
			TotalOps:        p.TotalOps(),
			MemOps:          p.MemOps(),
			Mutexes:         p.Mutexes,
			Barriers:        p.Barriers,
			Sems:            p.Semaphores,
			SyncOpsExecuted: countSync(p),
			SharingPct:      100 * r.SharingFraction(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Tab1Result{Rows: rows}, nil
}

func countSync(p *program.Program) uint64 {
	var n uint64
	for _, th := range p.Threads {
		for _, op := range th.Ops {
			if op.Kind.IsSync() {
				n++
			}
		}
	}
	return n
}

// Table renders the result.
func (r *Tab1Result) Table() *stats.Table {
	tb := stats.NewTable("Tab.1 — benchmark characteristics",
		"kernel", "suite", "threads", "ops", "mem ops", "sync ops", "mutexes", "barriers", "sems", "sharing %")
	for _, row := range r.Rows {
		tb.AddRow(row.Kernel, row.Suite,
			fmt.Sprintf("%d", row.Threads),
			fmt.Sprintf("%d", row.TotalOps),
			fmt.Sprintf("%d", row.MemOps),
			fmt.Sprintf("%d", row.SyncOpsExecuted),
			fmt.Sprintf("%d", row.Mutexes),
			fmt.Sprintf("%d", row.Barriers),
			fmt.Sprintf("%d", row.Sems),
			fmt.Sprintf("%.3f", row.SharingPct))
	}
	return tb
}
