package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func key(i int) string { return fmt.Sprintf("%064d", i) }
func val(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 32+i%7) }
func put(t *testing.T, s *Store, i int) {
	t.Helper()
	if err := s.Put(key(i), val(i)); err != nil {
		t.Fatalf("Put(%d): %v", i, err)
	}
}

func TestPutGetSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	const n = 20
	for i := 0; i < n; i++ {
		put(t, s, i)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := open(t, dir, Options{})
	if r.Len() != n {
		t.Fatalf("after reopen Len = %d, want %d", r.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, ok := r.Get(key(i))
		if !ok {
			t.Fatalf("key %d missing after reopen", i)
		}
		if !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d: bytes differ after reopen", i)
		}
	}
}

func TestPutExistingKeyIsNoop(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	put(t, s, 1)
	size := s.Size()
	if err := s.Put(key(1), []byte("different")); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	if s.Size() != size {
		t.Fatalf("re-Put grew the store (%d -> %d bytes)", size, s.Size())
	}
	got, _ := s.Get(key(1))
	if !bytes.Equal(got, val(1)) {
		t.Fatal("re-Put changed the stored value")
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	sort.Strings(names)
	return names[len(names)-1]
}

// TestRecoveryDropsOnlyTornTailRecord is the crash test from the issue:
// write N results, tear the tail record mid-write, reopen, and the index
// must drop only the torn record.
func TestRecoveryDropsOnlyTornTailRecord(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	const n = 10
	for i := 0; i < n; i++ {
		put(t, s, i)
	}
	s.Close()

	// Simulate a crash mid-append: chop a few bytes off the last record.
	path := lastSegment(t, dir)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, Options{})
	if r.Len() != n-1 {
		t.Fatalf("after torn-tail recovery Len = %d, want %d", r.Len(), n-1)
	}
	if _, ok := r.Get(key(n - 1)); ok {
		t.Fatal("torn record still resolvable")
	}
	for i := 0; i < n-1; i++ {
		got, ok := r.Get(key(i))
		if !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("intact record %d lost or corrupted by recovery", i)
		}
	}
	// The store must stay writable, and the torn key is re-insertable.
	put(t, r, n-1)
	if got, ok := r.Get(key(n - 1)); !ok || !bytes.Equal(got, val(n-1)) {
		t.Fatal("re-insert after recovery failed")
	}
}

// TestRecoveryDropsCorruptTail flips a payload byte in the final record;
// the CRC must reject it while earlier records survive.
func TestRecoveryDropsCorruptTail(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 5; i++ {
		put(t, s, i)
	}
	s.Close()

	path := lastSegment(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 0xff // inside the last record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, Options{})
	if r.Len() != 4 {
		t.Fatalf("after corrupt-tail recovery Len = %d, want 4", r.Len())
	}
	if _, ok := r.Get(key(4)); ok {
		t.Fatal("corrupt record still resolvable")
	}
}

// TestCompactionHoldsSizeCap writes far past the cap and asserts both the
// store's accounting and the real on-disk footprint stay under it, with
// the newest records retained and the oldest evicted.
func TestCompactionHoldsSizeCap(t *testing.T) {
	dir := t.TempDir()
	const capBytes = 2048
	s := open(t, dir, Options{SegmentBytes: 512, MaxBytes: capBytes})
	const n = 200
	for i := 0; i < n; i++ {
		put(t, s, i)
	}
	if s.Size() > capBytes {
		t.Fatalf("store size %d exceeds cap %d", s.Size(), capBytes)
	}
	var onDisk int64
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	for _, p := range names {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		onDisk += st.Size()
	}
	if onDisk > capBytes {
		t.Fatalf("on-disk size %d exceeds cap %d", onDisk, capBytes)
	}
	if _, ok := s.Get(key(n - 1)); !ok {
		t.Fatal("newest record was evicted")
	}
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("oldest record survived a cap 100x smaller than the write volume")
	}
	// The cap also holds across a reopen (recovery must not resurrect
	// evicted segments).
	s.Close()
	r := open(t, dir, Options{SegmentBytes: 512, MaxBytes: capBytes})
	if r.Size() > capBytes {
		t.Fatalf("reopened store size %d exceeds cap %d", r.Size(), capBytes)
	}
	if _, ok := r.Get(key(n - 1)); !ok {
		t.Fatal("newest record lost across reopen")
	}
}

// TestEachVisitsInWriteOrder guards the LRU-repopulation contract.
func TestEachVisitsInWriteOrder(t *testing.T) {
	s := open(t, t.TempDir(), Options{SegmentBytes: 256})
	const n = 20
	for i := 0; i < n; i++ {
		put(t, s, i)
	}
	var seen []string
	err := s.Each(func(k string, data []byte) error {
		seen = append(seen, k)
		return nil
	})
	if err != nil {
		t.Fatalf("Each: %v", err)
	}
	if len(seen) != n {
		t.Fatalf("Each visited %d records, want %d", len(seen), n)
	}
	for i, k := range seen {
		if k != key(i) {
			t.Fatalf("Each order[%d] = %q, want %q", i, k, key(i))
		}
	}
}

// TestKeysReturnsWriteOrder: Keys mirrors Each's ordering contract without
// touching record bodies.
func TestKeysReturnsWriteOrder(t *testing.T) {
	s := open(t, t.TempDir(), Options{SegmentBytes: 256})
	const n = 12
	for i := 0; i < n; i++ {
		put(t, s, i)
	}
	keys := s.Keys()
	if len(keys) != n {
		t.Fatalf("Keys = %d entries, want %d", len(keys), n)
	}
	for i, k := range keys {
		if k != key(i) {
			t.Fatalf("Keys[%d] = %q, want %q", i, k, key(i))
		}
	}
}

// TestIterationUnderConcurrentAppends: Each and Keys run against a store
// that is being appended to, rolled, and compacted underneath them. Every
// value an iterator observes must be internally consistent (a record's
// bytes are a pure function of its key here, so any torn read is
// detectable), and the store must reopen CRC-clean afterwards — proving
// the concurrent compactions never corrupted a surviving segment.
func TestIterationUnderConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	// Small segments and a tight cap force rolls and whole-segment
	// compactions to land mid-iteration, not between tests.
	s := open(t, dir, Options{SegmentBytes: 1 << 10, MaxBytes: 8 << 10})

	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				n := w*perWriter + i
				if err := s.Put(key(n), val(n)); err != nil {
					t.Errorf("Put(%d): %v", n, err)
					return
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Iterate continuously until the writers finish, then once more so at
	// least one full pass sees the final population.
	for pass := 0; ; pass++ {
		err := s.Each(func(k string, data []byte) error {
			var n int
			if _, err := fmt.Sscanf(k, "%d", &n); err != nil {
				return fmt.Errorf("foreign key %q", k)
			}
			if !bytes.Equal(data, val(n)) {
				return fmt.Errorf("torn read for key %d: %d bytes", n, len(data))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Each pass %d: %v", pass, err)
		}
		for _, k := range s.Keys() {
			if len(k) != 64 {
				t.Fatalf("Keys pass %d: malformed key %q", pass, k)
			}
		}
		select {
		case <-done:
		default:
			continue
		}
		break
	}

	if s.Len() == 0 {
		t.Fatal("compaction evicted everything; cap too small for the workload")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Reopen runs the recovery CRC scan over every surviving segment: a
	// torn or misordered write anywhere would truncate records here.
	r := open(t, dir, Options{SegmentBytes: 1 << 10, MaxBytes: 8 << 10})
	if r.Len() != s.Len() {
		t.Fatalf("reopen Len = %d, want %d (recovery dropped records)", r.Len(), s.Len())
	}
	if err := r.Each(func(k string, data []byte) error {
		var n int
		fmt.Sscanf(k, "%d", &n)
		if !bytes.Equal(data, val(n)) {
			return fmt.Errorf("key %d corrupt after reopen", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
