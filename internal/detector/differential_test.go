// Differential test: the flat-page / interned / pooled detector must report
// exactly what the seed detector reported.
//
// refDetector below is a self-contained transcription of the detector as it
// stood before the shadow-layout rewrite: map-of-pointers shadow table,
// string regions, a heap vector clock from first inflation. It is the
// executable spec of the old behavior. Every workload kernel is run once
// through the real simulator with a trace recorder attached; the trace is
// then replayed through both the production detector and the reference, and
// the two report streams must match string-for-string, in order. Stats are
// compared only where the seed had counters (the rewrite added more).
package detector_test

import (
	"testing"

	"demandrace/internal/demand"
	"demandrace/internal/detector"
	"demandrace/internal/mem"
	"demandrace/internal/program"
	"demandrace/internal/runner"
	"demandrace/internal/syncmodel"
	"demandrace/internal/trace"
	"demandrace/internal/vclock"
	"demandrace/internal/workloads"
)

// refState is the seed's per-word shadow state: one heap object per word,
// string regions, read history inflating straight to a vector clock.
type refState struct {
	W, R     vclock.Epoch
	RVC, WVC *vclock.VC
	WRegion  string
	RRegion  string
}

func (s *refState) inflateRead() {
	if s.RVC == nil {
		s.RVC = vclock.New(0)
	}
	if s.R != vclock.None && s.R != vclock.ReadShared {
		s.RVC.Set(s.R.TIDOf(), s.R.TimeOf())
	}
	s.R = vclock.ReadShared
}

// refDetector replicates the seed detector's algorithm over the seed's data
// layout. Reports reuse detector.Report so both sides render identically.
type refDetector struct {
	opt     detector.Options
	threads []*vclock.VC
	regions []string
	sync    *syncmodel.Table
	words   map[mem.Addr]*refState
	reports []detector.Report
	perAddr map[mem.Addr]int
	races   uint64
}

func newRef(threads, mutexes, sems int, opt detector.Options) *refDetector {
	d := &refDetector{
		opt:     opt,
		threads: make([]*vclock.VC, threads),
		regions: make([]string, threads),
		sync:    syncmodel.NewTable(mutexes, sems),
		words:   make(map[mem.Addr]*refState),
		perAddr: make(map[mem.Addr]int),
	}
	for i := range d.threads {
		c := vclock.New(threads)
		c.Set(vclock.TID(i), 1)
		d.threads[i] = c
	}
	return d
}

func (d *refDetector) state(addr mem.Addr) *refState {
	w := mem.WordOf(addr)
	s, ok := d.words[w]
	if !ok {
		s = &refState{}
		d.words[w] = s
	}
	return s
}

func (d *refDetector) epoch(t vclock.TID) vclock.Epoch {
	return vclock.MakeEpoch(t, d.threads[t].Get(t))
}

func (d *refDetector) report(r detector.Report) {
	d.races++
	limit := d.opt.MaxReportsPerAddr
	if limit == 0 {
		limit = 1
	}
	if limit > 0 && d.perAddr[r.Addr] >= limit {
		return
	}
	d.perAddr[r.Addr]++
	d.reports = append(d.reports, r)
}

func refFirstConcurrent(rvc, ct *vclock.VC) (vclock.TID, vclock.Time) {
	for i := 0; i < rvc.Len(); i++ {
		t := vclock.TID(i)
		if rvc.Get(t) > ct.Get(t) {
			return t, rvc.Get(t)
		}
	}
	return -1, 0
}

func (d *refDetector) onRead(t vclock.TID, addr mem.Addr) {
	addr = mem.WordOf(addr)
	s := d.state(addr)
	ct := d.threads[t]
	if d.opt.FullVC {
		d.fullVCRead(t, addr, s, ct)
		return
	}
	e := d.epoch(t)
	if s.R == e {
		return
	}
	if !s.W.LEQ(ct) {
		d.report(detector.Report{Addr: addr, Kind: detector.WriteRead, Cur: t,
			Prev: s.W.TIDOf(), PrevTime: s.W.TimeOf(),
			CurRegion: d.regions[t], PrevRegion: s.WRegion})
	}
	if s.R == vclock.ReadShared {
		s.RVC.Set(t, e.TimeOf())
		s.RRegion = d.regions[t]
		return
	}
	if s.R == vclock.None || s.R.LEQ(ct) {
		s.R = e
		s.RRegion = d.regions[t]
		return
	}
	s.inflateRead()
	s.RVC.Set(t, e.TimeOf())
	s.RRegion = d.regions[t]
}

func (d *refDetector) onWrite(t vclock.TID, addr mem.Addr) {
	addr = mem.WordOf(addr)
	s := d.state(addr)
	ct := d.threads[t]
	if d.opt.FullVC {
		d.fullVCWrite(t, addr, s, ct)
		return
	}
	e := d.epoch(t)
	if s.W == e {
		return
	}
	if !s.W.LEQ(ct) {
		d.report(detector.Report{Addr: addr, Kind: detector.WriteWrite, Cur: t,
			Prev: s.W.TIDOf(), PrevTime: s.W.TimeOf(),
			CurRegion: d.regions[t], PrevRegion: s.WRegion})
	}
	switch {
	case s.R == vclock.ReadShared:
		if !s.RVC.LEQ(ct) {
			prev, ptime := refFirstConcurrent(s.RVC, ct)
			d.report(detector.Report{Addr: addr, Kind: detector.ReadWrite, Cur: t,
				Prev: prev, PrevTime: ptime,
				CurRegion: d.regions[t], PrevRegion: s.RRegion})
		}
		s.R = vclock.None
		s.RVC = nil
		s.RRegion = ""
	case s.R != vclock.None && !s.R.LEQ(ct):
		d.report(detector.Report{Addr: addr, Kind: detector.ReadWrite, Cur: t,
			Prev: s.R.TIDOf(), PrevTime: s.R.TimeOf(),
			CurRegion: d.regions[t], PrevRegion: s.RRegion})
	}
	s.W = e
	s.WRegion = d.regions[t]
}

func (d *refDetector) fullVCRead(t vclock.TID, addr mem.Addr, s *refState, ct *vclock.VC) {
	if s.WVC == nil {
		s.WVC = vclock.New(0)
	}
	if !s.WVC.LEQ(ct) {
		prev, ptime := refFirstConcurrent(s.WVC, ct)
		d.report(detector.Report{Addr: addr, Kind: detector.WriteRead, Cur: t,
			Prev: prev, PrevTime: ptime,
			CurRegion: d.regions[t], PrevRegion: s.WRegion})
	}
	if s.RVC == nil {
		s.RVC = vclock.New(0)
	}
	s.R = vclock.ReadShared
	s.RVC.Set(t, ct.Get(t))
	s.RRegion = d.regions[t]
}

func (d *refDetector) fullVCWrite(t vclock.TID, addr mem.Addr, s *refState, ct *vclock.VC) {
	if s.WVC == nil {
		s.WVC = vclock.New(0)
	}
	if !s.WVC.LEQ(ct) {
		prev, ptime := refFirstConcurrent(s.WVC, ct)
		d.report(detector.Report{Addr: addr, Kind: detector.WriteWrite, Cur: t,
			Prev: prev, PrevTime: ptime,
			CurRegion: d.regions[t], PrevRegion: s.WRegion})
	}
	if s.RVC != nil && !s.RVC.LEQ(ct) {
		prev, ptime := refFirstConcurrent(s.RVC, ct)
		d.report(detector.Report{Addr: addr, Kind: detector.ReadWrite, Cur: t,
			Prev: prev, PrevTime: ptime,
			CurRegion: d.regions[t], PrevRegion: s.RRegion})
	}
	s.WVC.Set(t, ct.Get(t))
	s.WRegion = d.regions[t]
}

// replayRef drives the reference through a trace exactly the way
// trace.Replay drives the production detector.
func replayRef(tr *trace.Trace, opt detector.Options) *refDetector {
	threads, mutexes, sems := tr.Dims()
	d := newRef(threads, mutexes, sems, opt)
	for _, e := range tr.Events {
		if e.Kind == program.OpMark {
			d.regions[e.TID] = e.Str
			continue
		}
		if !e.Analyzed {
			continue
		}
		switch e.Kind {
		case program.OpLoad:
			d.onRead(e.TID, e.Addr)
		case program.OpStore:
			d.onWrite(e.TID, e.Addr)
		case program.OpAtomicLoad:
			d.threads[e.TID].Join(d.sync.Atomic(e.Addr))
		case program.OpAtomicStore:
			d.sync.Atomic(e.Addr).Join(d.threads[e.TID])
			d.threads[e.TID].Tick(e.TID)
		case program.OpLock:
			d.threads[e.TID].Join(d.sync.Mutex(e.Sync))
		case program.OpUnlock:
			d.sync.Mutex(e.Sync).Assign(d.threads[e.TID])
			d.threads[e.TID].Tick(e.TID)
		case program.OpSignal:
			d.sync.Sem(e.Sync).Join(d.threads[e.TID])
			d.threads[e.TID].Tick(e.TID)
		case program.OpWait:
			d.threads[e.TID].Join(d.sync.Sem(e.Sync))
		case program.OpBarrier:
			joined := vclock.New(len(d.threads))
			for _, p := range e.Parties {
				joined.Join(d.threads[p])
			}
			for _, p := range e.Parties {
				d.threads[p].Assign(joined)
				d.threads[p].Tick(p)
			}
		}
	}
	return d
}

// recordKernel executes one kernel under the given policy with a trace
// recorder attached and returns the recorded op stream.
func recordKernel(t *testing.T, k workloads.Kernel, pol demand.PolicyKind) *trace.Trace {
	t.Helper()
	p := k.Build(workloads.Config{Threads: 4, Scale: 1})
	cfg := runner.DefaultConfig().WithPolicy(pol)
	rec := trace.NewRecorder(p.Name)
	cfg.Tracer = rec
	if _, err := runner.Run(p, cfg); err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	return rec.Trace()
}

func diffReports(t *testing.T, label string, got []detector.Report, want []detector.Report) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d reports, reference produced %d", label, len(got), len(want))
	}
	for i := 0; i < len(got) && i < len(want); i++ {
		if got[i].String() != want[i].String() {
			t.Errorf("%s: report %d diverged:\n  new: %s\n  ref: %s",
				label, i, got[i].String(), want[i].String())
		}
	}
}

// TestDifferentialAgainstSeedDetector replays every workload kernel through
// the production detector and the embedded seed reference, under both the
// continuous policy (every access analyzed — maximal shadow churn) and the
// demand policy (sparse analysis — exercises cold/partial shadow state),
// with both the capped and uncapped report limits and both engines.
func TestDifferentialAgainstSeedDetector(t *testing.T) {
	for _, k := range workloads.All() {
		for _, pol := range []demand.PolicyKind{demand.Continuous, demand.HITMDemand} {
			tr := recordKernel(t, k, pol)
			for _, opt := range []detector.Options{
				{},
				{MaxReportsPerAddr: -1},
				{FullVC: true, MaxReportsPerAddr: -1},
			} {
				label := k.Name + "/" + string(pol)
				if opt.FullVC {
					label += "/fullvc"
				}
				if opt.MaxReportsPerAddr == -1 {
					label += "/uncapped"
				}
				det := trace.Replay(tr, opt)
				ref := replayRef(tr, opt)
				diffReports(t, label, det.Reports(), ref.reports)
				if st := det.Stats(); st.Races != ref.races {
					t.Errorf("%s: Races = %d, reference counted %d", label, st.Races, ref.races)
				}
			}
		}
	}
}
