package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilReceiversAreNoOps(t *testing.T) {
	var tr *Tracer
	tr.SetClock(func() uint64 { return 1 })
	tr.SetLimit(10)
	tr.Emit(KindHITM, 0, 0, 0, 0, "")
	if tr.Events() != nil || tr.Len() != 0 || tr.Dropped() != 0 || tr.CountByKind() != nil {
		t.Error("nil tracer is not a no-op")
	}

	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(3)
	reg.Histogram("z", []float64{1}).Observe(2)
	if reg.CounterValue("x") != 0 {
		t.Error("nil registry is not a no-op")
	}
	if err := reg.WriteProm(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
	reg.Merge(NewRegistry())
}

func TestTracerStampsWithClock(t *testing.T) {
	tr := NewTracer()
	now := uint64(0)
	tr.SetClock(func() uint64 { return now })
	tr.Emit(KindHITM, -1, 2, 64, 1, "")
	now = 100
	tr.Emit(KindModeEnable, 0, 2, 0, 0, "")
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].TS != 0 || evs[1].TS != 100 {
		t.Errorf("timestamps = %d, %d", evs[0].TS, evs[1].TS)
	}
	if evs[0].Ctx != 2 || evs[0].TID != -1 || evs[0].Line != 64 {
		t.Errorf("event fields: %+v", evs[0])
	}
	if got := tr.CountByKind()[KindHITM]; got != 1 {
		t.Errorf("CountByKind[hitm] = %d", got)
	}
}

func TestTracerLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(2)
	for i := 0; i < 5; i++ {
		tr.Emit(KindOverflow, -1, 0, 0, 0, "")
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Errorf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindHITM; k <= KindRace; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestThreadSpans(t *testing.T) {
	events := []Event{
		{TS: 10, Kind: KindModeEnable, TID: 0},
		{TS: 30, Kind: KindModeDecay, TID: 0},
		{TS: 20, Kind: KindModeEnable, TID: 1},
		// Redundant enable must not split the span.
		{TS: 25, Kind: KindModeEnable, TID: 1},
		// Thread-unscoped events are ignored.
		{TS: 5, Kind: KindHITM, TID: -1},
	}
	spans := ThreadSpans(events, 40, 2, false)
	want := []Span{
		{TID: 0, Start: 0, End: 10, Analyzing: false},
		{TID: 0, Start: 10, End: 30, Analyzing: true},
		{TID: 0, Start: 30, End: 40, Analyzing: false},
		{TID: 1, Start: 0, End: 20, Analyzing: false},
		{TID: 1, Start: 20, End: 40, Analyzing: true},
	}
	if len(spans) != len(want) {
		t.Fatalf("got %d spans: %+v", len(spans), spans)
	}
	for i, s := range spans {
		if s != want[i] {
			t.Errorf("span %d = %+v, want %+v", i, s, want[i])
		}
	}
}

func TestThreadSpansContinuousStart(t *testing.T) {
	// Under continuous analysis there are no transitions: each thread is one
	// full-length analysis span.
	spans := ThreadSpans(nil, 100, 2, true)
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	for _, s := range spans {
		if !s.Analyzing || s.Start != 0 || s.End != 100 {
			t.Errorf("span %+v", s)
		}
	}
}

func TestThreadSpansElidesZeroLength(t *testing.T) {
	events := []Event{
		{TS: 0, Kind: KindModeEnable, TID: 0},  // at t=0: no fast prefix
		{TS: 50, Kind: KindModeDecay, TID: 0},  // back to fast
		{TS: 50, Kind: KindModeEnable, TID: 0}, // re-enable at same cycle
	}
	spans := ThreadSpans(events, 50, 1, false)
	// [0,50) analysis only: the trailing span would be zero-length.
	if len(spans) != 1 || !spans[0].Analyzing || spans[0].Dur() != 50 {
		t.Errorf("spans = %+v", spans)
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(3)
	reg.Counter("c").Inc()
	if got := reg.CounterValue("c"); got != 4 {
		t.Errorf("counter = %d", got)
	}
	if got := reg.CounterValue("absent"); got != 0 {
		t.Errorf("absent counter = %d", got)
	}
	reg.Gauge("g").Set(-7)
	if got := reg.Gauge("g").Value(); got != -7 {
		t.Errorf("gauge = %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("h", []float64{1, 10})
	for _, v := range []float64{0.5, 1.0, 5, 100, -3} {
		h.Observe(v)
	}
	// -3 clamps to 0. Buckets: (..,1]=3  (1,10]=1  +Inf=1.
	if got := h.BucketCount(0); got != 3 {
		t.Errorf("bucket 0 = %d", got)
	}
	if got := h.BucketCount(1); got != 1 {
		t.Errorf("bucket 1 = %d", got)
	}
	if got := h.BucketCount(2); got != 1 {
		t.Errorf("+Inf bucket = %d", got)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 106.5 {
		t.Errorf("sum = %v", h.Sum())
	}
}

func TestRegistryConcurrentDeterminism(t *testing.T) {
	// The property the -batch path leans on: concurrent counter/histogram
	// updates from many goroutines must still render identical expositions.
	render := func() string {
		reg := NewRegistry()
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < 1000; j++ {
					reg.Counter("ops_total").Inc()
					reg.Histogram("lat", []float64{1, 2, 5}).Observe(float64(i%3) + 0.5)
				}
			}(i)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("concurrent expositions differ:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "ops_total 8000") {
		t.Errorf("missing total:\n%s", a)
	}
}

func TestWritePromFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total").Add(2)
	reg.Gauge("a_gauge").Set(5)
	h := reg.Histogram("c_hist", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# TYPE a_gauge gauge
a_gauge 5
# TYPE b_total counter
b_total 2
# TYPE c_hist histogram
c_hist_bucket{le="0.5"} 1
c_hist_bucket{le="2"} 2
c_hist_bucket{le="+Inf"} 2
c_hist_sum 1.250000
c_hist_count 2
`
	if got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c").Add(1)
	b.Counter("c").Add(2)
	b.Gauge("g").Set(9)
	b.Histogram("h", []float64{1}).Observe(0.5)
	a.Merge(b)
	if got := a.CounterValue("c"); got != 3 {
		t.Errorf("merged counter = %d", got)
	}
	if got := a.Gauge("g").Value(); got != 9 {
		t.Errorf("merged gauge = %d", got)
	}
	if got := a.Histogram("h", nil).Count(); got != 1 {
		t.Errorf("merged histogram count = %d", got)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	events := []Event{
		{TS: 5, Kind: KindHITM, TID: -1, Ctx: 1, Line: 128},
		{TS: 7, Kind: KindRace, TID: 1, Ctx: -1, Detail: "write-write"},
	}
	spans := []Span{
		{TID: 0, Start: 0, End: 10, Analyzing: false},
		{TID: 0, Start: 10, End: 20, Analyzing: true},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, "prog", events, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string            `json:"name"`
			Cat   string            `json:"cat"`
			Ph    string            `json:"ph"`
			TS    uint64            `json:"ts"`
			Dur   uint64            `json:"dur"`
			PID   int               `json:"pid"`
			TID   int               `json:"tid"`
			Scope string            `json:"s"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.OtherData["program"] != "prog" || doc.OtherData["clock"] != "simulated-cycles" {
		t.Errorf("otherData = %v", doc.OtherData)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d trace events", len(doc.TraceEvents))
	}
	if e := doc.TraceEvents[0]; e.Name != "fast" || e.Ph != "X" || e.Dur != 10 {
		t.Errorf("fast span = %+v", e)
	}
	if e := doc.TraceEvents[1]; e.Name != "analysis" || e.TS != 10 {
		t.Errorf("analysis span = %+v", e)
	}
	// HITM has no TID; it renders on its hardware context's row.
	if e := doc.TraceEvents[2]; e.Name != "hitm" || e.Ph != "i" || e.TID != 1 {
		t.Errorf("hitm instant = %+v", e)
	}
	if e := doc.TraceEvents[3]; e.Args["detail"] != "write-write" {
		t.Errorf("race instant = %+v", e)
	}
}

func TestWriteNDJSON(t *testing.T) {
	events := []Event{
		{TS: 1, Kind: KindHITM, TID: -1, Ctx: 2, Line: 64, Aux: 3},
		{TS: 9, Kind: KindModeEnable, TID: 0, Ctx: 1},
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var first map[string]interface{}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["kind"] != "hitm" || first["ctx"] != float64(2) {
		t.Errorf("first = %v", first)
	}
	if _, ok := first["tid"]; ok {
		t.Error("tid sentinel (-1) must be omitted")
	}
	var second map[string]interface{}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["tid"] != float64(0) {
		t.Errorf("second = %v", second)
	}
}
