package alert

import (
	"net/http"
	"strings"
)

// ServeConsole serves the GET /v1/dashboard ops console: one
// self-contained HTML page (inline CSS and JS, zero external assets) that
// polls the tier's own /v1/stats, /v1/alerts, and /v1/timeseries routes
// and renders the active-alert panel, ring membership or queue state, and
// metric sparklines. The same page serves both tiers — it shows whichever
// panels the stats document supports.
func ServeConsole(w http.ResponseWriter, node string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	page := strings.Replace(consoleHTML, "__NODE__", htmlEscape(node), 1)
	_, _ = w.Write([]byte(page))
}

// htmlEscape covers the node name interpolated into the page title.
func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

const consoleHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>ddrace ops &middot; __NODE__</title>
<style>
  :root {
    --bg: #0d1117; --panel: #161b22; --line: #30363d; --fg: #e6edf3;
    --dim: #8b949e; --ok: #3fb950; --warn: #d29922; --crit: #f85149;
    --accent: #58a6ff;
  }
  * { box-sizing: border-box; }
  body { margin: 0; background: var(--bg); color: var(--fg);
         font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace; }
  header { display: flex; align-items: baseline; gap: 12px; padding: 12px 16px;
           border-bottom: 1px solid var(--line); }
  header h1 { font-size: 15px; margin: 0; font-weight: 600; }
  header .node { color: var(--accent); }
  header .meta { color: var(--dim); margin-left: auto; }
  .badge { display: inline-block; padding: 0 8px; border-radius: 10px;
           font-size: 11px; border: 1px solid var(--line); }
  .badge.ok { color: var(--ok); border-color: var(--ok); }
  .badge.warn { color: var(--warn); border-color: var(--warn); }
  .badge.crit { color: var(--crit); border-color: var(--crit); }
  main { display: grid; grid-template-columns: repeat(auto-fit, minmax(340px, 1fr));
         gap: 12px; padding: 12px 16px; }
  section { background: var(--panel); border: 1px solid var(--line);
            border-radius: 6px; padding: 10px 12px; }
  section h2 { font-size: 12px; margin: 0 0 8px; color: var(--dim);
               text-transform: uppercase; letter-spacing: .08em; }
  section.wide { grid-column: 1 / -1; }
  table { width: 100%; border-collapse: collapse; }
  th, td { text-align: left; padding: 3px 8px 3px 0; vertical-align: top; }
  th { color: var(--dim); font-weight: 400; border-bottom: 1px solid var(--line); }
  td.num, th.num { text-align: right; }
  .empty { color: var(--dim); font-style: italic; }
  .bar { height: 8px; background: var(--bg); border: 1px solid var(--line);
         border-radius: 4px; overflow: hidden; margin-top: 2px; }
  .bar i { display: block; height: 100%; background: var(--accent); }
  .bar i.warn { background: var(--warn); }
  .bar i.crit { background: var(--crit); }
  .sparks { display: grid; grid-template-columns: repeat(auto-fill, minmax(250px, 1fr));
            gap: 8px; }
  .spark { border: 1px solid var(--line); border-radius: 4px; padding: 6px 8px;
           background: var(--bg); }
  .spark .name { color: var(--dim); font-size: 11px; overflow: hidden;
                 text-overflow: ellipsis; white-space: nowrap; }
  .spark .last { font-size: 14px; }
  .spark svg { width: 100%; height: 34px; display: block; }
  .spark path { fill: none; stroke: var(--accent); stroke-width: 1.5; }
  .hist { color: var(--dim); }
  footer { color: var(--dim); padding: 4px 16px 14px; }
  #err { color: var(--crit); padding: 0 16px; }
</style>
</head>
<body>
<header>
  <h1>ddrace ops &middot; <span class="node" id="node">__NODE__</span></h1>
  <span class="badge" id="health">&hellip;</span>
  <span class="meta" id="meta"></span>
</header>
<div id="err"></div>
<main>
  <section class="wide"><h2>Alerts</h2><div id="alerts" class="empty">loading&hellip;</div></section>
  <section id="ringSec" hidden><h2>Ring membership</h2><div id="ring"></div></section>
  <section id="queueSec" hidden><h2>Job queue</h2><div id="queue"></div></section>
  <section id="sloSec" hidden><h2>SLO budget</h2><div id="slo"></div></section>
  <section id="replSec" hidden><h2>Replication</h2><div id="repl"></div></section>
  <section id="tenantSec" hidden><h2>Tenants</h2><div id="tenants"></div></section>
  <section class="wide"><h2>Timeseries (last 15m)</h2><div id="sparks" class="sparks empty">loading&hellip;</div></section>
</main>
<footer>self-contained console &mdash; polls /v1/stats, /v1/alerts, /v1/timeseries on this node; tail transitions with <code>ddrace -alerts</code></footer>
<script>
"use strict";
const $ = id => document.getElementById(id);
const esc = s => String(s).replace(/[&<>"]/g, c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
const fmt = v => Math.abs(v) >= 100 ? v.toFixed(0) : +v.toPrecision(3);
const ago = ms => { const s = Math.max(0, (Date.now() - ms) / 1000);
  return s < 90 ? s.toFixed(0) + "s" : s < 5400 ? (s/60).toFixed(0) + "m" : (s/3600).toFixed(1) + "h"; };

async function getJSON(url) {
  const r = await fetch(url, {cache: "no-store"});
  if (!r.ok) throw new Error(url + ": HTTP " + r.status);
  return r.json();
}

function sevClass(sev) { return sev === "critical" ? "crit" : sev === "warning" ? "warn" : "ok"; }

function renderAlerts(doc) {
  const active = doc.active || [], hist = doc.history || [];
  let h = "";
  if (!active.length) {
    h += '<div class="empty">no active alerts &mdash; ' + (doc.rules || []).length + " rules watching</div>";
  } else {
    h += "<table><tr><th>severity</th><th>rule</th><th>state</th><th class=num>value</th><th class=num>threshold</th><th>since</th><th>summary</th></tr>";
    for (const a of active) {
      h += "<tr><td><span class='badge " + sevClass(a.severity) + "'>" + esc(a.severity) + "</span></td>" +
        "<td>" + esc(a.rule) + (a.node ? " <span class=hist>@" + esc(a.node) + "</span>" : "") + "</td>" +
        "<td>" + esc(a.state) + "</td><td class=num>" + fmt(a.value) + "</td><td class=num>" + fmt(a.threshold) + "</td>" +
        "<td>" + ago(a.since_ms) + "</td><td class=hist>" + esc(a.summary || "") + "</td></tr>";
    }
    h += "</table>";
  }
  if (hist.length) {
    h += '<div class="hist" style="margin-top:8px">recently resolved: ' +
      hist.slice(0, 8).map(a => esc(a.rule) + " (" + ago(a.resolved_ms) + " ago)").join(", ") + "</div>";
  }
  $("alerts").className = "";
  $("alerts").innerHTML = h;
}

function bar(frac, warnAt, critAt) {
  const pct = Math.max(0, Math.min(100, frac * 100));
  const cls = frac >= critAt ? "crit" : frac >= warnAt ? "warn" : "";
  return '<div class="bar"><i class="' + cls + '" style="width:' + pct + '%"></i></div>';
}

function renderStats(s) {
  const healthy = s.health ? s.health === "ok" : (s.ring ? (s.ring.active || []).length === s.ring.members : true);
  $("health").textContent = s.health || (healthy ? "ok" : "degraded");
  $("health").className = "badge " + (healthy ? "ok" : "crit");
  $("meta").textContent = "up " + ago(Date.now() - (s.uptime_seconds || 0) * 1000);
  if (s.node) $("node").textContent = s.node;
  if (s.ring) {
    $("ringSec").hidden = false;
    const act = s.ring.active || [];
    let h = act.length + "/" + s.ring.members + " members routable &middot; " + s.ring.vnodes + " vnodes each";
    h += bar(s.ring.members ? act.length / s.ring.members : 0, 2, 2).replace("bar\"", "bar\" title=\"ring\"");
    if (s.backends) {
      h += "<table><tr><th>backend</th><th>health</th><th class=num>forwarded</th></tr>";
      for (const b of s.backends) {
        h += "<tr><td>" + esc(b.name) + "</td><td><span class='badge " +
          (b.health === "ok" ? "ok" : b.health === "degraded" ? "warn" : "crit") + "'>" + esc(b.health) + "</span></td>" +
          "<td class=num>" + (b.forwarded || 0) + "</td></tr>";
      }
      h += "</table>";
      if (s.stats_errors) h += '<div class="hist">partial fleet view: ' + s.stats_errors + " backend(s) unreachable</div>";
    }
    $("ring").innerHTML = h;
  }
  if (s.queue) {
    $("queueSec").hidden = false;
    const q = s.queue, j = s.jobs || {};
    $("queue").innerHTML =
      "depth " + q.depth + "/" + q.capacity + " (high water " + q.high_water + ")" +
      bar(q.capacity ? q.depth / q.capacity : 0, q.capacity ? q.high_water / q.capacity : 1, 1) +
      "<div style='margin-top:6px'>inflight " + (j.inflight || 0) + " &middot; util " + (j.utilization_pct || 0) + "%" +
      " &middot; done " + (j.completed || 0) + " &middot; failed " + (j.failed || 0) + " &middot; rejected " + (j.rejected || 0) + "</div>";
  }
  if (s.slo) {
    $("sloSec").hidden = false;
    $("slo").innerHTML =
      "compliance " + (s.slo.compliance * 100).toFixed(3) + "% (target " + (s.slo.target * 100).toFixed(2) + "%, " +
      fmt(s.slo.threshold_ms) + "ms)" + bar(s.slo.budget_used, 0.5, 1) +
      "<div style='margin-top:6px'>budget used " + (s.slo.budget_used * 100).toFixed(1) + "% &middot; " +
      s.slo.breaches + "/" + s.slo.requests + " breaches</div>";
  }
  if (s.replication) {
    $("replSec").hidden = false;
    const r = s.replication;
    $("repl").innerHTML =
      "factor " + r.factor + " &middot; " + r.tracked + " keys tracked" +
      bar(r.tracked ? 1 - r.under_replicated / r.tracked : 1, 2, 2) +
      "<div style='margin-top:6px'>under-replicated " + r.under_replicated +
      " &middot; queue " + r.queue +
      (r.degraded ? " &middot; <span class='badge crit'>degraded</span>" : "") + "</div>";
  }
  if (s.tenants && s.tenants.length) {
    $("tenantSec").hidden = false;
    let h = "<table><tr><th>tenant</th><th class=num>weight</th><th class=num>tokens</th>" +
      "<th class=num>active</th><th class=num>jobs</th><th class=num>cache hits</th><th class=num>throttled</th></tr>";
    for (const t of s.tenants) {
      h += "<tr><td>" + esc(t.name) + "</td><td class=num>" + fmt(t.weight) + "</td>" +
        "<td class=num>" + fmt(t.tokens) + "/" + fmt(t.burst) + "</td>" +
        "<td class=num>" + (t.active || 0) + "</td><td class=num>" + (t.jobs || 0) + "</td>" +
        "<td class=num>" + (t.cache_hits || 0) + "</td>" +
        "<td class=num>" + (t.throttled ? "<span class='badge warn'>" + t.throttled + "</span>" : 0) + "</td></tr>";
    }
    $("tenants").innerHTML = h + "</table>";
  }
}

// Preferred sparkline metrics, by substring, in display order; anything
// else fills remaining slots alphabetically.
const preferred = ["queue_depth", "worker_utilization", "slo_breaches", "slo_requests",
  "jobs_inflight", "cache_hits", "ring_members", "forwards_total", "ingest_chunks",
  "replica_under_replicated", "replica_read_repair", "tenant_throttled",
  "http_latency_ms_post_jobs:p99", "ddalert_active"];
const MAX_SPARKS = 18;

function sparkline(series) {
  const ss = series.samples || [];
  if (!ss.length) return "";
  const vs = ss.map(p => p.v);
  let lo = Math.min(...vs), hi = Math.max(...vs);
  if (hi === lo) { hi += 1; lo -= lo ? Math.abs(lo) * 0.05 : 1; }
  const W = 240, H = 30;
  const t0 = ss[0].t, t1 = ss[ss.length - 1].t || t0 + 1;
  const pts = ss.map(p => {
    const x = t1 === t0 ? W : ((p.t - t0) / (t1 - t0)) * W;
    const y = H - ((p.v - lo) / (hi - lo)) * (H - 2) - 1;
    return x.toFixed(1) + "," + y.toFixed(1);
  });
  const name = series.node ? series.node + " &middot; " + esc(series.metric) : esc(series.metric);
  return '<div class="spark"><div class="name" title="' + esc(series.metric) + '">' + name + "</div>" +
    '<span class="last">' + fmt(vs[vs.length - 1]) + "</span>" +
    '<svg viewBox="0 0 ' + W + " " + H + '" preserveAspectRatio="none"><path d="M' + pts.join(" L") + '"/></svg></div>';
}

function renderSparks(doc) {
  let series = (doc.series || []).filter(s => (s.samples || []).length > 1);
  series.sort((a, b) => {
    const ra = preferred.findIndex(p => a.metric.includes(p));
    const rb = preferred.findIndex(p => b.metric.includes(p));
    if ((ra < 0) !== (rb < 0)) return ra < 0 ? 1 : -1;
    if (ra !== rb) return ra - rb;
    return (a.node + a.metric).localeCompare(b.node + b.metric);
  });
  series = series.slice(0, MAX_SPARKS);
  $("sparks").className = "sparks";
  $("sparks").innerHTML = series.length ? series.map(sparkline).join("") :
    '<div class="empty">no samples yet &mdash; the tsdb fills on its next ticks</div>';
}

async function tickFast() {
  try {
    const [stats, alerts] = await Promise.all([getJSON("/v1/stats"), getJSON("/v1/alerts")]);
    renderStats(stats); renderAlerts(alerts);
    $("err").textContent = "";
  } catch (e) { $("err").textContent = String(e); }
}
async function tickSlow() {
  try { renderSparks(await getJSON("/v1/timeseries?since=15m")); }
  catch (e) { $("err").textContent = String(e); }
}
tickFast(); tickSlow();
setInterval(tickFast, 2000);
setInterval(tickSlow, 5000);
</script>
</body>
</html>
`
