// Package cost models execution time as simulated cycles, which is how the
// reproduction turns "fraction of accesses analyzed" into the slowdown and
// speedup numbers the paper reports.
//
// Every executed op has a native cost (its latency on bare hardware: the
// cache-model latency for memory ops, the declared cycle count for compute,
// a fixed cost for synchronization). Running under a tool adds analysis
// costs: a per-access charge while instrumentation is on, a per-sync-op
// charge, a charge per PMU interrupt, and a charge per instrumentation mode
// switch. A run accumulates both the native total and the tool total in one
// pass; slowdown is their ratio, and the speedup of policy A over policy B
// is slowdownB / slowdownA.
//
// The default constants are calibrated so a memory-bound kernel under
// continuous analysis lands in the 30–100× slowdown band the paper reports
// for commercial happens-before tools (with 300× as the pathological tail),
// and so sync-only instrumentation costs a few percent. Absolute cycle
// counts are not the reproduction target; ordering and ratios are.
package cost

import "fmt"

// Model holds the per-op cost constants, all in cycles.
type Model struct {
	// SyncNative is the native cost of one synchronization op.
	SyncNative uint64
	// AnalysisMem is the added cost of analyzing one memory access
	// (shadow-memory lookup, vector-clock comparison, instrumented
	// execution). This is the dominant term of continuous analysis.
	AnalysisMem uint64
	// AnalysisSync is the added cost of analyzing one synchronization op.
	AnalysisSync uint64
	// Interrupt is the cost of taking one PMU overflow interrupt.
	Interrupt uint64
	// ModeSwitch is the cost of one instrumentation toggle on one thread
	// (patching analysis in or out).
	ModeSwitch uint64
	// WatchArm is the cost of programming one hardware watchpoint
	// register (cheaper than re-patching instrumentation, but not free:
	// remote contexts need an IPI).
	WatchArm uint64
	// PageFault is the cost of one protection fault plus its handler (a
	// kernel round trip), paid by the PageDemand mechanism per sharing
	// detection.
	PageFault uint64
	// ProtSweep is the cost of one page re-protection sweep (mprotect
	// batch plus TLB shootdowns).
	ProtSweep uint64
}

// Default returns the calibrated model.
func Default() Model {
	return Model{
		SyncNative:   40,
		AnalysisMem:  240,
		AnalysisSync: 400,
		Interrupt:    1500,
		ModeSwitch:   3000,
		WatchArm:     300,
		PageFault:    4500,
		ProtSweep:    2500,
	}
}

func (m Model) validate() error {
	if m.AnalysisMem == 0 {
		return fmt.Errorf("cost: AnalysisMem must be nonzero")
	}
	return nil
}

// Breakdown attributes the accumulated cycles to their sources — the
// "where does the time go" answer behind a run's slowdown number. The first
// three components are native work (charged to both clocks); the rest are
// tool-side additions only. ToolCycles = MemLatency + SyncNative + Compute
// + the tool components.
type Breakdown struct {
	// MemLatency is hardware memory-access latency.
	MemLatency uint64 `json:"mem_latency"`
	// SyncNative is the native cost of synchronization ops.
	SyncNative uint64 `json:"sync_native"`
	// Compute is uninstrumented computation.
	Compute uint64 `json:"compute"`
	// AnalysisMem is per-access analysis (shadow lookups, VC compares) —
	// the dominant term of continuous analysis.
	AnalysisMem uint64 `json:"analysis_mem"`
	// AnalysisSync is per-sync-op analysis.
	AnalysisSync uint64 `json:"analysis_sync"`
	// Interrupts is PMU overflow interrupt handling.
	Interrupts uint64 `json:"interrupts"`
	// ModeSwitch is instrumentation patching (fast ↔ analysis toggles).
	ModeSwitch uint64 `json:"mode_switch"`
	// WatchArm is watchpoint-register programming.
	WatchArm uint64 `json:"watch_arm"`
	// PageFault and ProtSweep are the PageDemand mechanism's costs.
	PageFault uint64 `json:"page_fault"`
	ProtSweep uint64 `json:"prot_sweep"`
}

// Components returns the breakdown as (name, cycles) pairs in a fixed
// order, for tables and metric export.
func (b Breakdown) Components() []struct {
	Name   string
	Cycles uint64
} {
	return []struct {
		Name   string
		Cycles uint64
	}{
		{"mem_latency", b.MemLatency},
		{"sync_native", b.SyncNative},
		{"compute", b.Compute},
		{"analysis_mem", b.AnalysisMem},
		{"analysis_sync", b.AnalysisSync},
		{"interrupts", b.Interrupts},
		{"mode_switch", b.ModeSwitch},
		{"watch_arm", b.WatchArm},
		{"page_fault", b.PageFault},
		{"prot_sweep", b.ProtSweep},
	}
}

// Accumulator tallies native and tool cycles for one run.
type Accumulator struct {
	model Model
	// native is what the program would cost with no tool attached.
	native uint64
	// tool is the cost under the attached tool.
	tool uint64
	// bd attributes tool cycles by source.
	bd Breakdown
}

// NewAccumulator builds an accumulator over model. It panics on an invalid
// model, since models are build-time constants.
func NewAccumulator(model Model) *Accumulator {
	if err := model.validate(); err != nil {
		panic(err)
	}
	return &Accumulator{model: model}
}

// Model returns the accumulator's cost constants.
func (a *Accumulator) Model() Model { return a.model }

// Mem charges a memory access with the given hardware latency, analyzed or
// not.
func (a *Accumulator) Mem(latency uint64, analyzed bool) {
	a.native += latency
	a.tool += latency
	a.bd.MemLatency += latency
	if analyzed {
		a.tool += a.model.AnalysisMem
		a.bd.AnalysisMem += a.model.AnalysisMem
	}
}

// Sync charges a synchronization op.
func (a *Accumulator) Sync(analyzed bool) {
	a.native += a.model.SyncNative
	a.tool += a.model.SyncNative
	a.bd.SyncNative += a.model.SyncNative
	if analyzed {
		a.tool += a.model.AnalysisSync
		a.bd.AnalysisSync += a.model.AnalysisSync
	}
}

// Compute charges n cycles of uninstrumented computation.
func (a *Accumulator) Compute(n uint64) {
	a.native += n
	a.tool += n
	a.bd.Compute += n
}

// Interrupt charges one PMU overflow interrupt (tool side only).
func (a *Accumulator) Interrupt() {
	a.tool += a.model.Interrupt
	a.bd.Interrupts += a.model.Interrupt
}

// ModeSwitch charges n instrumentation toggles (tool side only).
func (a *Accumulator) ModeSwitch(n uint64) {
	a.tool += n * a.model.ModeSwitch
	a.bd.ModeSwitch += n * a.model.ModeSwitch
}

// WatchArm charges n watchpoint-register programmings (tool side only).
func (a *Accumulator) WatchArm(n uint64) {
	a.tool += n * a.model.WatchArm
	a.bd.WatchArm += n * a.model.WatchArm
}

// PageFaults charges n protection faults (tool side only).
func (a *Accumulator) PageFaults(n uint64) {
	a.tool += n * a.model.PageFault
	a.bd.PageFault += n * a.model.PageFault
}

// ProtSweeps charges n re-protection sweeps (tool side only).
func (a *Accumulator) ProtSweeps(n uint64) {
	a.tool += n * a.model.ProtSweep
	a.bd.ProtSweep += n * a.model.ProtSweep
}

// Breakdown returns the per-source attribution of the accumulated cycles.
func (a *Accumulator) Breakdown() Breakdown { return a.bd }

// NativeCycles returns the accumulated native time.
func (a *Accumulator) NativeCycles() uint64 { return a.native }

// ToolCycles returns the accumulated tool time.
func (a *Accumulator) ToolCycles() uint64 { return a.tool }

// Slowdown returns tool time over native time (1.0 for a costless tool).
func (a *Accumulator) Slowdown() float64 {
	if a.native == 0 {
		return 1
	}
	return float64(a.tool) / float64(a.native)
}

// Speedup returns how much faster this run is than other (other's tool
// cycles divided by ours), the headline metric of the paper.
func Speedup(baseline, improved float64) float64 {
	if improved == 0 {
		return 0
	}
	return baseline / improved
}
