// Package parallel is the experiment fan-out engine: it runs independent
// simulation jobs across a bounded pool of goroutines and merges their
// results in deterministic submission order.
//
// Every simulation run in this repository is a pure function of
// (program, config, seed) — the scheduler is deterministic and the PMU's
// only nondeterminism is seeded — so the experiment harness is
// embarrassingly parallel: regenerating a figure is N independent runs
// whose results are aggregated afterward. This package exploits that shape
// while preserving the repository's determinism contract:
//
//   - Map returns results indexed by submission order, never completion
//     order. Aggregation code observes the exact sequence a serial loop
//     would have produced, so every rendered table is byte-identical
//     regardless of worker count (see ARCHITECTURE.md, "Determinism
//     contract").
//   - On failure the error reported is the one with the lowest job index,
//     even if a later job failed first in wall-clock time, and its message
//     contains nothing timing-dependent.
//   - A failing job cancels the shared Context so idle workers stop picking
//     up new jobs; in-flight jobs run to completion and their results are
//     still returned (partial-result reporting).
//
// The Engine also accumulates Stats — job count, summed per-job busy time,
// and fan-out wall time — so the speedup delivered by parallelism is itself
// a measurable, reportable quantity (cmd/experiments prints it after every
// suite regeneration).
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// DefaultWorkers is the default fan-out width: one worker per logical CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// Engine is a bounded fan-out executor. The zero value is not usable; build
// one with New. An Engine is safe for concurrent use and may be shared
// across many Map/ForEach calls; its Stats accumulate over all of them.
type Engine struct {
	workers int

	mu    sync.Mutex
	stats Stats
}

// New returns an engine that fans out across at most workers goroutines.
// workers <= 0 selects DefaultWorkers; workers == 1 degrades to a serial
// loop (useful both as the determinism baseline and under `go test -race`
// bisection).
func New(workers int) *Engine {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Engine{workers: workers}
}

// Workers returns the configured fan-out width.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a snapshot of the engine's cumulative counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Stats aggregates the engine's work. Busy sums the wall-clock duration of
// every completed job; Wall sums the duration of every Map/ForEach call.
// Busy/Wall therefore measures the realized parallel speedup: ≈1 when
// serial, approaching the worker count when the fan-out keeps every worker
// fed.
type Stats struct {
	// Jobs is the number of jobs that ran to completion.
	Jobs int
	// Busy is the summed duration of completed jobs — the serial-equivalent
	// execution time.
	Busy time.Duration
	// Wall is the summed duration of the fan-out calls themselves.
	Wall time.Duration
}

// Sub returns the difference s − prev, for windowed (per-experiment)
// accounting against a shared engine.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{Jobs: s.Jobs - prev.Jobs, Busy: s.Busy - prev.Busy, Wall: s.Wall - prev.Wall}
}

// Speedup is the realized parallel speedup Busy/Wall (0 when no work ran).
func (s Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Busy) / float64(s.Wall)
}

// Throughput is the completed-job rate in jobs per wall-clock second
// (0 when no work ran).
func (s Stats) Throughput() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Jobs) / s.Wall.Seconds()
}

func (s Stats) String() string {
	return fmt.Sprintf("%d jobs, busy %v / wall %v, speedup %.2f×, %.1f jobs/s",
		s.Jobs, s.Busy.Round(time.Millisecond), s.Wall.Round(time.Millisecond),
		s.Speedup(), s.Throughput())
}

// Error reports a failed job. The message deliberately names only the job
// index and underlying error — never anything timing-dependent — so failure
// output is as deterministic as success output.
type Error struct {
	// Index is the submission index of the failed job. When several jobs
	// fail, Map reports the lowest index.
	Index int
	// Err is the job's error.
	Err error
	// Completed is the number of jobs that ran to completion before the
	// fan-out drained. It depends on scheduling and is for programmatic
	// inspection only; Error() omits it.
	Completed int
}

func (e *Error) Error() string { return fmt.Sprintf("parallel: job %d: %v", e.Index, e.Err) }

// Unwrap exposes the job's error to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Map runs fn(ctx, i) for every i in [0, n) on e's worker pool and returns
// the results in index order. A nil ctx means context.Background().
//
// The first failure (lowest index among failures) cancels the context
// passed to outstanding jobs and stops idle workers from starting new ones;
// results of jobs that completed anyway are returned alongside the *Error.
// Entries for jobs that never ran (or failed) are left as T's zero value.
func Map[T any](ctx context.Context, e *Engine, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	defer func() { e.addWall(time.Since(start)) }()

	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return out, mapSerial(ctx, e, out, fn)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	errs := make([]error, n)
	done := make([]bool, n)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				t0 := time.Now()
				v, err := fn(ctx, i)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				out[i] = v
				done[i] = true
				e.addJob(time.Since(t0))
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		// Check first so an already-cancelled context feeds no jobs at all;
		// the select alone could still randomly pick the send branch.
		if ctx.Err() != nil {
			break feed
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	completed := 0
	for _, d := range done {
		if d {
			completed++
		}
	}
	for i, err := range errs {
		if err != nil {
			return out, &Error{Index: i, Err: err, Completed: completed}
		}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// mapSerial is the workers==1 path: an inline loop with identical
// cancellation and error semantics, no goroutines involved.
func mapSerial[T any](ctx context.Context, e *Engine, out []T, fn func(ctx context.Context, i int) (T, error)) error {
	completed := 0
	for i := range out {
		if err := ctx.Err(); err != nil {
			return err
		}
		t0 := time.Now()
		v, err := fn(ctx, i)
		if err != nil {
			return &Error{Index: i, Err: err, Completed: completed}
		}
		out[i] = v
		completed++
		e.addJob(time.Since(t0))
	}
	return nil
}

// ForEach is Map for jobs with no result value.
func ForEach(ctx context.Context, e *Engine, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, e, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

func (e *Engine) addJob(d time.Duration) {
	e.mu.Lock()
	e.stats.Jobs++
	e.stats.Busy += d
	e.mu.Unlock()
}

func (e *Engine) addWall(d time.Duration) {
	e.mu.Lock()
	e.stats.Wall += d
	e.mu.Unlock()
}
