package runner

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"demandrace/internal/demand"
	"demandrace/internal/mem"
	"demandrace/internal/program"
	"demandrace/internal/sched"
)

// racyLoop builds a producer/consumer pair that races on one word every
// iteration: the repeated-sharing pattern demand-driven analysis relies on.
func racyLoop(iters int) *program.Program {
	b := program.NewBuilder("racy-loop")
	x := b.Space().AllocLine(8)
	t0, t1 := b.Thread(), b.Thread()
	for i := 0; i < iters; i++ {
		t0.Store(x).Compute(5)
		t1.Load(x).Compute(5)
	}
	return b.MustBuild()
}

// cleanParallel builds a fully independent data-parallel kernel: each
// thread owns its lines, zero sharing.
func cleanParallel(threads, iters int) *program.Program {
	b := program.NewBuilder("clean-parallel")
	bases := make([]mem.Addr, threads)
	for i := range bases {
		bases[i] = b.Space().AllocArray(uint64(iters), 8)
	}
	for i := 0; i < threads; i++ {
		tb := b.Thread()
		for j := 0; j < iters; j++ {
			a := bases[i] + mem.Addr(j*8)
			tb.Load(a).Store(a).Compute(2)
		}
	}
	return b.MustBuild()
}

// lockedCounter builds a properly locked shared counter: sharing without
// races.
func lockedCounter(threads, iters int) *program.Program {
	b := program.NewBuilder("locked-counter")
	c := b.Space().AllocLine(8)
	mu := b.Mutex()
	for i := 0; i < threads; i++ {
		tb := b.Thread()
		for j := 0; j < iters; j++ {
			tb.Lock(mu).Load(c).Store(c).Unlock(mu).Compute(10)
		}
	}
	return b.MustBuild()
}

func mustRun(t *testing.T, p *program.Program, cfg Config) *Report {
	t.Helper()
	r, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestOffPolicyIsNativeSpeed(t *testing.T) {
	r := mustRun(t, racyLoop(50), DefaultConfig().WithPolicy(demand.Off))
	if r.Slowdown != 1.0 {
		t.Errorf("Off slowdown = %g", r.Slowdown)
	}
	if len(r.Races) != 0 {
		t.Errorf("Off policy reported races: %v", r.Races)
	}
}

func TestContinuousFindsRace(t *testing.T) {
	r := mustRun(t, racyLoop(10), DefaultConfig().WithPolicy(demand.Continuous))
	if len(r.Races) == 0 {
		t.Fatal("continuous analysis missed the race")
	}
	if r.Slowdown <= 1.0 {
		t.Errorf("continuous slowdown = %g, want > 1", r.Slowdown)
	}
}

func TestDemandFindsRepeatedRace(t *testing.T) {
	r := mustRun(t, racyLoop(50), DefaultConfig().WithPolicy(demand.HITMDemand))
	if len(r.Races) == 0 {
		t.Fatal("demand-driven analysis missed a repeated race")
	}
	if r.Demand.Samples == 0 {
		t.Error("no PMU samples despite repeated sharing")
	}
	if r.Demand.EnableTransitions == 0 {
		t.Error("no enable transitions")
	}
}

func TestDemandMissesOneShotFirstRace(t *testing.T) {
	// A single racy pair with no repetition: the HITM fires *on* the racy
	// read, too late to have analyzed the write. This pins the paper's
	// documented accuracy loss.
	b := program.NewBuilder("one-shot")
	x := b.Space().AllocLine(8)
	b.Thread().Store(x).Compute(5)
	b.Thread().Compute(3).Load(x)
	p := b.MustBuild()
	cont := mustRun(t, p, DefaultConfig().WithPolicy(demand.Continuous))
	dem := mustRun(t, p, DefaultConfig().WithPolicy(demand.HITMDemand))
	if len(cont.Races) != 1 {
		t.Fatalf("continuous races = %v", cont.Races)
	}
	if len(dem.Races) != 0 {
		t.Errorf("demand-driven should miss the one-shot race, got %v", dem.Races)
	}
}

func TestCleanParallelNoRacesNoSharing(t *testing.T) {
	for _, k := range []demand.PolicyKind{demand.Continuous, demand.HITMDemand} {
		r := mustRun(t, cleanParallel(4, 100), DefaultConfig().WithPolicy(k))
		if len(r.Races) != 0 {
			t.Errorf("%v: false positive on clean kernel: %v", k, r.Races)
		}
		if r.SharedHITM != 0 {
			t.Errorf("%v: HITM on independent data: %d", k, r.SharedHITM)
		}
	}
}

func TestLockedCounterNoRaces(t *testing.T) {
	for _, k := range []demand.PolicyKind{demand.Continuous, demand.HITMDemand, demand.Hybrid} {
		r := mustRun(t, lockedCounter(4, 30), DefaultConfig().WithPolicy(k))
		if len(r.Races) != 0 {
			t.Errorf("%v: false positive on locked counter: %v", k, r.Races)
		}
	}
}

func TestSlowdownOrderingAcrossPolicies(t *testing.T) {
	// On a low-sharing kernel: Off ≤ SyncOnly ≤ HITMDemand ≪ Continuous.
	p := cleanParallel(4, 200)
	cfg := DefaultConfig()
	reps, err := RunPolicies(p, cfg, demand.Off, demand.SyncOnly, demand.HITMDemand, demand.Continuous)
	if err != nil {
		t.Fatal(err)
	}
	off, sync, dem, cont := reps[0], reps[1], reps[2], reps[3]
	if !(off.Slowdown <= sync.Slowdown && sync.Slowdown <= dem.Slowdown && dem.Slowdown < cont.Slowdown) {
		t.Errorf("slowdowns: off=%.2f sync=%.2f demand=%.2f cont=%.2f",
			off.Slowdown, sync.Slowdown, dem.Slowdown, cont.Slowdown)
	}
	// The headline effect: demand-driven is several times faster than
	// continuous on a no-sharing kernel.
	if cont.Slowdown/dem.Slowdown < 3 {
		t.Errorf("speedup = %.2f, want ≥ 3", cont.Slowdown/dem.Slowdown)
	}
}

func TestDemandRacySubsetOfContinuous(t *testing.T) {
	// Demand-driven analysis must never report a race continuous analysis
	// does not (it sees a subset of accesses on the same interleaving).
	progs := []*program.Program{racyLoop(20), lockedCounter(3, 10), cleanParallel(2, 50)}
	for _, p := range progs {
		cont := mustRun(t, p, DefaultConfig().WithPolicy(demand.Continuous))
		dem := mustRun(t, p, DefaultConfig().WithPolicy(demand.HITMDemand))
		contAddrs := cont.RacyAddrs()
		for a := range dem.RacyAddrs() {
			if !contAddrs[a] {
				t.Errorf("%s: demand reported %s that continuous did not", p.Name, a)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := racyLoop(30)
	cfg := DefaultConfig().WithPolicy(demand.HITMDemand)
	a := mustRun(t, p, cfg)
	b := mustRun(t, p, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("identical runs produced different reports")
	}
}

func TestSharingFraction(t *testing.T) {
	r := mustRun(t, racyLoop(50), DefaultConfig().WithPolicy(demand.Off))
	if r.SharingFraction() <= 0 {
		t.Error("racy loop should show nonzero sharing")
	}
	r2 := mustRun(t, cleanParallel(4, 50), DefaultConfig().WithPolicy(demand.Off))
	if r2.SharingFraction() != 0 {
		t.Errorf("clean kernel sharing = %g", r2.SharingFraction())
	}
}

func TestLocksetEngineRuns(t *testing.T) {
	cfg := DefaultConfig().WithPolicy(demand.Continuous)
	cfg.Lockset = true
	r := mustRun(t, racyLoop(10), cfg)
	if len(r.LocksetReports) == 0 {
		t.Error("lockset engine found nothing on a racy loop")
	}
	r2 := mustRun(t, lockedCounter(2, 10), cfg)
	if len(r2.LocksetReports) != 0 {
		t.Errorf("lockset false positive on locked counter: %v", r2.LocksetReports)
	}
}

func TestModeSwitchesCharged(t *testing.T) {
	p := racyLoop(50)
	cfg := DefaultConfig().WithPolicy(demand.HITMDemand)
	r := mustRun(t, p, cfg)
	if r.Demand.EnableTransitions == 0 {
		t.Skip("no transitions to charge")
	}
	// Tool cycles must exceed native by at least the transition charges.
	minOverhead := (r.Demand.EnableTransitions + r.Demand.DisableTransitions) * cfg.Cost.ModeSwitch
	if r.ToolCycles-r.NativeCycles < minOverhead {
		t.Errorf("tool-native = %d, want ≥ %d", r.ToolCycles-r.NativeCycles, minOverhead)
	}
}

func TestAtomicSyncThroughCache(t *testing.T) {
	// Flag synchronization: producer writes data then releases a flag;
	// consumer spins (modeled as one acquire) then reads. No race, but the
	// flag itself generates HITM traffic.
	b := program.NewBuilder("flag-sync")
	data := b.Space().AllocLine(8)
	flag := b.Space().AllocLine(8)
	b.Thread().Store(data).AtomicStore(flag)
	b.Thread().Compute(50).AtomicLoad(flag).Load(data)
	p := b.MustBuild()
	r := mustRun(t, p, DefaultConfig().WithPolicy(demand.Continuous))
	if len(r.Races) != 0 {
		t.Errorf("flag-synchronized program reported races: %v", r.Races)
	}
	if r.SharedHITM == 0 {
		t.Error("flag handoff should produce HITM traffic")
	}
}

func TestRunPoliciesPreservesOrder(t *testing.T) {
	reps, err := RunPolicies(racyLoop(5), DefaultConfig(),
		demand.Off, demand.Continuous)
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].Policy != demand.Off || reps[1].Policy != demand.Continuous {
		t.Errorf("order: %v %v", reps[0].Policy, reps[1].Policy)
	}
}

func TestInvalidProgramRejected(t *testing.T) {
	p := &program.Program{Name: "empty"}
	if _, err := Run(p, DefaultConfig()); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestReportString(t *testing.T) {
	r := mustRun(t, racyLoop(5), DefaultConfig().WithPolicy(demand.Continuous))
	if r.String() == "" {
		t.Error("empty report string")
	}
}

func TestWatchDemandEndToEnd(t *testing.T) {
	// The needle-in-haystack kernel: one racy word in a sea of private
	// work. Watch-demand must find the race while analyzing almost
	// nothing and beating the thread-granular policy on cost.
	b := program.NewBuilder("watch-e2e")
	bad := b.Space().AllocLine(8)
	privs := make([]mem.Addr, 2)
	for i := range privs {
		privs[i] = b.Space().AllocArray(400, 8)
	}
	for ti := 0; ti < 2; ti++ {
		tb := b.Thread()
		for i := 0; i < 400; i++ {
			a := privs[ti] + mem.Addr(i*8)
			tb.Load(a).Store(a).Compute(2)
			if i%50 == 25 {
				tb.Load(bad).Store(bad)
			}
		}
	}
	p := b.MustBuild()
	reps, err := RunPolicies(p, DefaultConfig(),
		demand.WatchDemand, demand.HITMDemand, demand.Continuous)
	if err != nil {
		t.Fatal(err)
	}
	watch, hitm, cont := reps[0], reps[1], reps[2]
	if len(watch.Races) == 0 {
		t.Fatal("watch-demand missed the repeated race")
	}
	if watch.Demand.AnalyzedFraction() >= hitm.Demand.AnalyzedFraction() {
		t.Errorf("watch analyzed %.3f, should be below hitm %.3f",
			watch.Demand.AnalyzedFraction(), hitm.Demand.AnalyzedFraction())
	}
	if watch.Slowdown >= cont.Slowdown {
		t.Errorf("watch slowdown %.2f should beat continuous %.2f",
			watch.Slowdown, cont.Slowdown)
	}
}

func TestSamplingEndToEnd(t *testing.T) {
	p := racyLoop(100)
	cfg := DefaultConfig()
	cfg.Demand = demand.Config{Kind: demand.Sampling, SampleRate: 0.5, Seed: 3}
	r, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := r.Demand.AnalyzedFraction()
	if f < 0.35 || f > 0.65 {
		t.Errorf("sampling analyzed fraction = %.2f, want ≈0.5", f)
	}
	// 50% sampling on a 100-iteration race almost surely observes some
	// racing pair.
	if len(r.Races) == 0 {
		t.Error("sampling at 50% missed a 100× repeated race")
	}
}

func TestPageDemandEndToEnd(t *testing.T) {
	// Repeated race: page faults detect the sharing and the detector
	// catches later occurrences, with the fault/sweep costs charged.
	p := racyLoop(100)
	cfg := DefaultConfig().WithPolicy(demand.PageDemand)
	r, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Races) == 0 {
		t.Fatal("page-demand missed a repeated race")
	}
	// The fault cost must show up on the tool side.
	off, err := Run(p, DefaultConfig().WithPolicy(demand.Off))
	if err != nil {
		t.Fatal(err)
	}
	if r.ToolCycles <= off.NativeCycles {
		t.Error("page faults not charged")
	}
}

func TestPageDemandFalseSharingOverhead(t *testing.T) {
	// Thread-private arrays co-located on the same pages: the page
	// mechanism sees sharing everywhere and analysis stays on, while the
	// line-granular HITM policy correctly stays off.
	p := cleanParallel(4, 150)
	reps, err := RunPolicies(p, DefaultConfig(), demand.PageDemand, demand.HITMDemand)
	if err != nil {
		t.Fatal(err)
	}
	page, hitm := reps[0], reps[1]
	if page.Demand.AnalyzedFraction() < 0.3 {
		t.Errorf("page-level false sharing should force high analyzed fraction, got %.2f",
			page.Demand.AnalyzedFraction())
	}
	if hitm.Demand.AnalyzedFraction() != 0 {
		t.Errorf("HITM policy analyzed %.2f of a private kernel",
			hitm.Demand.AnalyzedFraction())
	}
	if page.Slowdown <= hitm.Slowdown {
		t.Error("page mechanism should cost more than HITM on private data")
	}
}

func TestDeadlockEngineFlagsInversion(t *testing.T) {
	b := program.NewBuilder("abba")
	a, bb := b.Mutex(), b.Mutex()
	t0 := b.Thread()
	t0.Lock(a).Lock(bb).Compute(1).Unlock(bb).Unlock(a)
	t1 := b.Thread()
	t1.Compute(500) // keep the hazard latent
	t1.Lock(bb).Lock(a).Compute(1).Unlock(a).Unlock(bb)
	p := b.MustBuild()
	cfg := DefaultConfig().WithPolicy(demand.Continuous)
	cfg.Deadlock = true
	r := mustRun(t, p, cfg)
	if len(r.DeadlockReports) != 1 {
		t.Fatalf("deadlock reports = %v", r.DeadlockReports)
	}
	// And a consistent hierarchy stays clean.
	r2 := mustRun(t, lockedCounter(4, 10), cfg)
	if len(r2.DeadlockReports) != 0 {
		t.Errorf("clean program flagged: %v", r2.DeadlockReports)
	}
}

func TestDeadlockEngineWorksUnderDemandPolicy(t *testing.T) {
	// Lock ops are always analyzed, so the lock-order engine has full
	// visibility even in fast mode.
	k := func() *program.Program {
		b := program.NewBuilder("abba-demand")
		a, bb := b.Mutex(), b.Mutex()
		t0 := b.Thread()
		t0.Lock(a).Lock(bb).Compute(1).Unlock(bb).Unlock(a)
		t1 := b.Thread()
		t1.Compute(500)
		t1.Lock(bb).Lock(a).Compute(1).Unlock(a).Unlock(bb)
		return b.MustBuild()
	}()
	cfg := DefaultConfig().WithPolicy(demand.HITMDemand)
	cfg.Deadlock = true
	r := mustRun(t, k, cfg)
	if len(r.DeadlockReports) != 1 {
		t.Errorf("demand-mode deadlock reports = %v", r.DeadlockReports)
	}
}

// TestMetamorphicAddressTranslation: shifting every address by a
// page-aligned constant must leave races, sharing, and slowdown identical —
// the pipeline must depend only on relative layout.
func TestMetamorphicAddressTranslation(t *testing.T) {
	const shift = mem.Addr(1 << 21)
	translate := func(p *program.Program) *program.Program {
		out := &program.Program{
			Name: p.Name + "+shifted", Threads: make([]program.Thread, len(p.Threads)),
			Mutexes: p.Mutexes, Barriers: p.Barriers, Semaphores: p.Semaphores,
			BarrierParties: append([]int(nil), p.BarrierParties...),
			Labels:         append([]string(nil), p.Labels...),
		}
		for i, th := range p.Threads {
			ops := make([]program.Op, len(th.Ops))
			copy(ops, th.Ops)
			for j := range ops {
				if ops[j].Kind.IsMemory() {
					ops[j].Addr += shift
				}
			}
			out.Threads[i] = program.Thread{ID: th.ID, Ops: ops}
		}
		return out
	}
	for _, build := range []func() *program.Program{
		func() *program.Program { return racyLoop(40) },
		func() *program.Program { return lockedCounter(4, 20) },
	} {
		p := build()
		shifted := translate(p)
		for _, pol := range []demand.PolicyKind{demand.Continuous, demand.HITMDemand} {
			a := mustRun(t, p, DefaultConfig().WithPolicy(pol))
			b := mustRun(t, shifted, DefaultConfig().WithPolicy(pol))
			if len(a.Races) != len(b.Races) || a.SharedHITM != b.SharedHITM ||
				a.Slowdown != b.Slowdown {
				t.Errorf("%s under %v: translation changed behavior: races %d→%d HITM %d→%d slow %.3f→%.3f",
					p.Name, pol, len(a.Races), len(b.Races), a.SharedHITM, b.SharedHITM,
					a.Slowdown, b.Slowdown)
			}
		}
	}
}

// TestMetamorphicRacySetScheduleInvariant: for mutex/barrier programs, the
// set of racy addresses under continuous analysis must not depend on the
// interleaving — a racy pair is unordered in every schedule.
func TestMetamorphicRacySetScheduleInvariant(t *testing.T) {
	build := func() *program.Program {
		b := program.NewBuilder("sched-invariant")
		racy := b.Space().AllocLine(8)
		safe := b.Space().AllocLine(8)
		mu := b.Mutex()
		for ti := 0; ti < 3; ti++ {
			tb := b.Thread()
			for i := 0; i < 20; i++ {
				tb.Load(racy).Store(racy) // the race
				tb.Lock(mu).Load(safe).Store(safe).Unlock(mu)
				tb.Compute(uint64(ti + 1))
			}
		}
		return b.MustBuild()
	}
	want := ""
	for seed := int64(0); seed < 8; seed++ {
		p := build()
		cfg := DefaultConfig().WithPolicy(demand.Continuous)
		cfg.Sched.Policy = sched.RandomInterleave
		cfg.Sched.Seed = seed
		cfg.Sched.Quantum = int(seed%3) + 1
		r := mustRun(t, p, cfg)
		addrs := fmt.Sprintf("%v", sortedKeys(r.RacyAddrs()))
		if want == "" {
			want = addrs
		} else if addrs != want {
			t.Errorf("seed %d: racy set %s != %s", seed, addrs, want)
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestMetamorphicComputePadding: inserting compute ops (which touch nothing)
// into a single-lock program must not change the racy-address set under
// continuous analysis.
func TestMetamorphicComputePadding(t *testing.T) {
	base := racyLoop(30)
	padded := &program.Program{
		Name: "padded", Threads: make([]program.Thread, len(base.Threads)),
		Mutexes: base.Mutexes, Barriers: base.Barriers, Semaphores: base.Semaphores,
		BarrierParties: append([]int(nil), base.BarrierParties...),
		Labels:         append([]string(nil), base.Labels...),
	}
	for i, th := range base.Threads {
		var ops []program.Op
		for j, op := range th.Ops {
			ops = append(ops, op)
			if j%2 == i%2 {
				ops = append(ops, program.Op{Kind: program.OpCompute, N: uint64(i + j + 1)})
			}
		}
		padded.Threads[i] = program.Thread{ID: th.ID, Ops: ops}
	}
	a := mustRun(t, base, DefaultConfig().WithPolicy(demand.Continuous))
	b := mustRun(t, padded, DefaultConfig().WithPolicy(demand.Continuous))
	if fmt.Sprint(sortedKeys(a.RacyAddrs())) != fmt.Sprint(sortedKeys(b.RacyAddrs())) {
		t.Errorf("padding changed racy set: %v vs %v", a.RacyAddrs(), b.RacyAddrs())
	}
}

func TestExploreAggregatesSchedules(t *testing.T) {
	// A solid race (every schedule) plus a window-dependent one under the
	// demand policy.
	ex, err := Explore(racyLoop(40), DefaultConfig().WithPolicy(demand.Continuous), 6)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Seeds != 6 || len(ex.Reports) != 6 {
		t.Fatalf("exploration = %+v", ex)
	}
	if len(ex.Union) == 0 || len(ex.Intersection) == 0 {
		t.Fatal("solid race not found in every schedule")
	}
	for _, a := range ex.Intersection {
		if ex.HitRate[a] != 1.0 {
			t.Errorf("intersection word %v hit rate %.2f", a, ex.HitRate[a])
		}
	}
	if len(ex.FlakyAddrs()) != len(ex.Union)-len(ex.Intersection) {
		t.Error("flaky partition inconsistent")
	}
}

func TestExploreCleanProgram(t *testing.T) {
	ex, err := Explore(lockedCounter(3, 10), DefaultConfig().WithPolicy(demand.Continuous), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Union) != 0 {
		t.Errorf("clean program flagged: %v", ex.Union)
	}
}

func TestExploreValidation(t *testing.T) {
	if _, err := Explore(racyLoop(5), DefaultConfig(), 0); err == nil {
		t.Error("zero seeds accepted")
	}
}

func TestCalibrateContinuousHitsTarget(t *testing.T) {
	p := cleanParallel(4, 150)
	for _, target := range []float64{20, 100, 250} {
		model, err := CalibrateContinuous(p, DefaultConfig(), target)
		if err != nil {
			t.Fatalf("target %.0f: %v", target, err)
		}
		cfg := DefaultConfig().WithPolicy(demand.Continuous)
		cfg.Cost = model
		r := mustRun(t, p, cfg)
		if r.Slowdown < target*0.95 || r.Slowdown > target*1.05 {
			t.Errorf("target %.0f×: calibrated run measured %.2f×", target, r.Slowdown)
		}
	}
}

func TestCalibrateContinuousErrors(t *testing.T) {
	p := cleanParallel(2, 20)
	if _, err := CalibrateContinuous(p, DefaultConfig(), 1.0); err == nil {
		t.Error("target ≤ 1 accepted")
	}
	// A compute-only program has no data accesses to charge.
	b := program.NewBuilder("compute-only")
	b.Thread().Compute(100)
	if _, err := CalibrateContinuous(b.MustBuild(), DefaultConfig(), 10); err == nil {
		t.Error("program without data accesses accepted")
	}
}
