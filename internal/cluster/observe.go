package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"demandrace/internal/obs"
	"demandrace/internal/obs/stream"
)

// defaultTraceStoreCap bounds how many recent submissions keep their
// gateway-side forwarding spans for GET /v1/jobs/{id}/trace merging. FIFO
// eviction: job traces are fetched shortly after submission, so recency is
// the right retention policy.
const defaultTraceStoreCap = 256

// traceStore maps gateway job IDs ("backend:j-n") to the recorder that
// captured the request's gateway-side spans (request envelope, forward
// attempts, hedges). Recorders are stored live — the request's root span
// ends after the handler returns, and Records() picks it up at read time.
type traceStore struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*obs.SpanRecorder
	order []string // insertion order, oldest first
}

func newTraceStore(capacity int) *traceStore {
	if capacity <= 0 {
		capacity = defaultTraceStoreCap
	}
	return &traceStore{cap: capacity, m: make(map[string]*obs.SpanRecorder)}
}

// put stores a recorder under id, evicting the oldest entry past cap.
func (t *traceStore) put(id string, rec *obs.SpanRecorder) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[id]; !ok {
		t.order = append(t.order, id)
	}
	t.m[id] = rec
	for len(t.order) > t.cap {
		delete(t.m, t.order[0])
		t.order = t.order[1:]
	}
}

// records returns the recorded spans for id (nil when unknown or evicted).
func (t *traceStore) records(id string) []obs.SpanRecord {
	t.mu.Lock()
	rec := t.m[id]
	t.mu.Unlock()
	return rec.Records()
}

// tailLoop follows one backend's GET /v1/events stream for the gateway's
// lifetime, re-publishing every event into the gateway bus so a single
// subscription at the gateway sees the whole fleet. Connection failures
// back off and reconnect — an unreachable backend costs a retry loop,
// never a crash — and job IDs are rewritten into the gateway namespace so
// anything a watcher sees can be fetched back through the gateway.
func (g *Gateway) tailLoop(b *backend) {
	defer g.tailWG.Done()
	backoff := 500 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for {
		select {
		case <-g.stop:
			return
		default:
		}
		err := g.tailOnce(b)
		select {
		case <-g.stop:
			return
		case <-time.After(backoff):
		}
		if err != nil {
			g.log.Debug("event tail reconnecting", "backend", b.Name, "error", err.Error())
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// tailOnce holds one streaming connection to a backend's /v1/events until
// it breaks or the gateway stops.
func (g *Gateway) tailOnce(b *backend) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-g.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/v1/events", nil)
	if err != nil {
		return err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s answered %d to /v1/events", b.Name, resp.StatusCode)
	}
	dec := stream.NewDecoder(resp.Body)
	for {
		ev, err := dec.Next()
		if err != nil {
			return err
		}
		if ev.Type == stream.TypeHello {
			// Connection artifact of our own subscription, not fleet news.
			continue
		}
		if ev.Job != "" {
			ev.Job = joinJobID(b.Name, ev.Job)
		}
		if ev.Type == stream.TypeJobDone && ev.Detail["state"] == "done" {
			// A sealed result just landed on this backend: enroll its key
			// for replication. Submissions the gateway routed are already
			// tracked; this catches jobs that finished asynchronously.
			if key, ok := g.jobKeys.get(ev.Job); ok {
				g.replica.Track(key, b.Name)
			}
		}
		g.bus.Publish(ev)
	}
}
