package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"demandrace/internal/obs"
	"demandrace/internal/replica"
	"demandrace/internal/service"
	"demandrace/internal/tenant"
)

// RingStats describes the routing layer.
type RingStats struct {
	Members int      `json:"members"` // configured
	Active  []string `json:"active"`  // currently routable, sorted
	VNodes  int      `json:"vnodes"`  // per member
}

// GatewayCounters is the forwarding ledger.
type GatewayCounters struct {
	Requests  uint64 `json:"requests"`
	Forwards  uint64 `json:"forwards"`
	Retries   uint64 `json:"retries"`
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
	Errors    uint64 `json:"errors"`
}

// BackendStats is one backend's row in the gateway stats document: the
// gateway's view of it (health, forwards) plus the backend's own /v1/stats
// snapshot when it was reachable (nil otherwise). The nested summary keeps
// its own node field, so aggregated numbers stay attributable.
type BackendStats struct {
	Name      string                `json:"name"`
	URL       string                `json:"url"`
	Health    string                `json:"health"`
	Forwarded uint64                `json:"forwarded"`
	Stats     *service.StatsSummary `json:"stats,omitempty"`
}

// ClusterStats is ddgate's GET /v1/stats document. Jobs sums the job
// lifecycle counters across every reachable backend — a cluster total —
// while Backends keeps the per-node breakdown. StatsErrors counts the
// backends whose /v1/stats fetch failed or timed out this aggregation:
// non-zero means the document is a partial view, not a fleet total.
type ClusterStats struct {
	Node          string           `json:"node"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	Ring          RingStats        `json:"ring"`
	Gateway       GatewayCounters  `json:"gateway"`
	Jobs          service.JobStats `json:"jobs"`
	StatsErrors   int              `json:"stats_errors"`
	Replication   *replica.Stats   `json:"replication,omitempty"`
	Tenants       []tenant.Stats   `json:"tenants,omitempty"`
	Backends      []BackendStats   `json:"backends"`
}

// Stats assembles the aggregated operational snapshot: gateway-local
// counters plus a concurrent fan-out to every backend's /v1/stats, each
// fetch bounded by Config.StatsTimeout so one hung backend costs its own
// row, never the whole document.
func (g *Gateway) Stats(ctx context.Context) ClusterStats {
	cs := ClusterStats{
		Node:          g.cfg.Node,
		UptimeSeconds: time.Since(g.start).Seconds(),
		Ring: RingStats{
			Members: len(g.backends),
			Active:  g.ring.Active(),
			VNodes:  g.cfg.VNodes,
		},
		Gateway: GatewayCounters{
			Requests:  g.reg.CounterValue(obs.GateRequests),
			Forwards:  g.reg.CounterValue(obs.GateForwards),
			Retries:   g.reg.CounterValue(obs.GateRetries),
			Hedges:    g.reg.CounterValue(obs.GateHedges),
			HedgeWins: g.reg.CounterValue(obs.GateHedgeWins),
			Errors:    g.reg.CounterValue(obs.GateErrors),
		},
		Backends: make([]BackendStats, len(g.backends)),
	}
	if rs := g.replica.StatsSnapshot(); rs.Factor > 1 {
		cs.Replication = &rs
	}
	cs.Tenants = g.tenants.StatsSnapshot()

	var (
		wg       sync.WaitGroup
		errCount atomic.Int64
	)
	for i, b := range g.backends {
		cs.Backends[i] = BackendStats{
			Name:      b.Name,
			URL:       b.URL,
			Health:    b.Health().String(),
			Forwarded: b.cForward.Value(),
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, g.cfg.StatsTimeout)
			defer cancel()
			cl := &service.Client{BaseURL: b.URL, HTTPClient: g.client}
			sum, err := cl.Stats(sctx)
			if err != nil {
				errCount.Add(1)
				g.log.Debug("backend stats unavailable", "backend", b.Name, "error", err.Error())
				return
			}
			cs.Backends[i].Stats = &sum
		}(i, b)
	}
	wg.Wait()
	cs.StatsErrors = int(errCount.Load())
	// Record the partial-view count as a gauge so the fleet-stats-partial
	// alert rule (and the tsdb) can see it; it reflects the most recent
	// fan-out, refreshed on every stats poll.
	g.reg.Gauge(obs.GateStatsErrors).Set(errCount.Load())

	for _, bs := range cs.Backends {
		if bs.Stats == nil {
			continue
		}
		cs.Jobs.Submitted += bs.Stats.Jobs.Submitted
		cs.Jobs.Completed += bs.Stats.Jobs.Completed
		cs.Jobs.Failed += bs.Stats.Jobs.Failed
		cs.Jobs.Canceled += bs.Stats.Jobs.Canceled
		cs.Jobs.Rejected += bs.Stats.Jobs.Rejected
		cs.Jobs.Inflight += bs.Stats.Jobs.Inflight
	}
	return cs
}
