// Package olog is the repository's structured-logging layer: a thin,
// opinionated wrapper over log/slog shared by the daemon and the CLIs.
//
// It exists for three reasons:
//
//   - One spelling of the knobs. Every binary exposes the same -log-level
//     and -log-format flags (Register), parsed the same way, so "make the
//     tool quiet for scripting" is `-log-level=error` everywhere.
//   - Diagnostics stay off stdout. Loggers write to the diagnostic stream
//     (stderr by convention), never the comparable stdout stream, so the
//     repository's byte-determinism contract is untouched by logging.
//   - Request-scoped context. A job ID minted at admission travels through
//     context.Context (WithJobID / JobID), and a logger carrying that ID
//     travels alongside it (Into / From), so every layer that logs about a
//     job tags the same id without threading parameters.
//
// Wall-clock timestamps are inherent to operational logs; that is fine
// because logs are diagnostics, not exported artifacts. Nothing in this
// package may be used to produce deterministic output.
package olog

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Format selects the handler encoding.
const (
	// FormatText is slog's logfmt-style text handler — the human default
	// for interactive CLI use.
	FormatText = "text"
	// FormatJSON is one JSON object per line — the machine default for the
	// daemon, parseable by log shippers and the CI smoke test.
	FormatJSON = "json"
)

// ParseLevel maps a flag string onto a slog.Level. Accepted values are
// debug, info, warn, and error (case-insensitive).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("olog: unknown log level %q (want debug|info|warn|error)", s)
}

// Options shape a logger.
type Options struct {
	// Level is the minimum level emitted (default info).
	Level slog.Level
	// Format is FormatText or FormatJSON (default text).
	Format string
	// Output receives the records. Nil discards everything.
	Output io.Writer
}

// New builds a logger from opts. A nil Output yields a logger whose every
// record is discarded (but which still answers Enabled truthfully, so
// callers can gate expensive rendering on it).
func New(opts Options) *slog.Logger {
	w := opts.Output
	if w == nil {
		w = io.Discard
	}
	hopts := &slog.HandlerOptions{Level: opts.Level}
	var h slog.Handler
	if opts.Format == FormatJSON {
		h = slog.NewJSONHandler(w, hopts)
	} else {
		h = slog.NewTextHandler(w, hopts)
	}
	return slog.New(h)
}

// Discard returns a logger that drops every record and reports every level
// disabled — the nil-object for APIs that take a *slog.Logger.
func Discard() *slog.Logger {
	return slog.New(discardHandler{})
}

// discardHandler is an slog.Handler that is disabled at every level, so
// callers gating work on Enabled skip it entirely.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Flags holds the values of the shared logging flags after parsing.
type Flags struct {
	level  *string
	format *string
}

// Register installs the shared -log-level and -log-format flags on fs.
// defFormat is the binary's default encoding: FormatText for interactive
// CLIs, FormatJSON for the daemon.
func Register(fs *flag.FlagSet, defFormat string) *Flags {
	if defFormat == "" {
		defFormat = FormatText
	}
	return &Flags{
		level:  fs.String("log-level", "info", "minimum log level: debug|info|warn|error"),
		format: fs.String("log-format", defFormat, "log encoding: text|json"),
	}
}

// Logger builds the logger the parsed flags describe, writing to w.
func (f *Flags) Logger(w io.Writer) (*slog.Logger, error) {
	lvl, err := ParseLevel(*f.level)
	if err != nil {
		return nil, err
	}
	switch *f.format {
	case FormatText, FormatJSON:
	default:
		return nil, fmt.Errorf("olog: unknown log format %q (want text|json)", *f.format)
	}
	return New(Options{Level: lvl, Format: *f.format, Output: w}), nil
}

// ctxKey namespaces this package's context values.
type ctxKey int

const (
	jobIDKey ctxKey = iota
	loggerKey
)

// WithJobID returns a context carrying the job ID, the correlation key for
// every log record about one unit of work.
func WithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, jobIDKey, id)
}

// JobID returns the job ID carried by ctx, if any.
func JobID(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(jobIDKey).(string)
	return id, ok
}

// Into returns a context carrying l, so deeper layers can log with the
// caller's attributes (job ID, request route) without plumbing a parameter.
func Into(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// From returns the logger carried by ctx, or a Discard logger when none is
// present — never nil, so call sites do not branch.
func From(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
		return l
	}
	return Discard()
}
