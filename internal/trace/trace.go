// Package trace records the op-level event stream of a run and replays it
// through a detector offline.
//
// Tracing separates "execute once" from "analyze many times": a trace
// recorded under any policy replays through fresh detectors with different
// options (FastTrack vs full-VC, different report caps) without re-running
// the simulator, mirroring how commercial tools support post-mortem
// analysis of collected logs. Traces encode to a compact varint binary
// format and to JSON.
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"demandrace/internal/cache"
	"demandrace/internal/detector"
	"demandrace/internal/mem"
	"demandrace/internal/program"
	"demandrace/internal/vclock"
)

// Event is one recorded execution event. Ordinary ops carry TID/Ctx/Op;
// barrier releases carry Parties instead (Op.Kind == OpBarrier).
type Event struct {
	// Seq is the global order of the event.
	Seq uint64 `json:"seq"`
	// TID is the executing thread (unused for barrier releases).
	TID vclock.TID `json:"tid"`
	// Ctx is the hardware context.
	Ctx cache.Context `json:"ctx"`
	// Kind, Addr, Sync, N mirror program.Op.
	Kind program.Kind   `json:"kind"`
	Addr mem.Addr       `json:"addr,omitempty"`
	Sync program.SyncID `json:"sync,omitempty"`
	N    uint64         `json:"n,omitempty"`
	// Parties lists barrier participants (barrier releases only).
	Parties []vclock.TID `json:"parties,omitempty"`
	// Str carries the region label of mark events.
	Str string `json:"str,omitempty"`
	// HITM marks memory events served by a remote Modified line.
	HITM bool `json:"hitm,omitempty"`
	// Analyzed marks events the demand controller let the detector see.
	Analyzed bool `json:"analyzed,omitempty"`
}

// Op reconstructs the program op of an ordinary event.
func (e Event) Op() program.Op {
	return program.Op{Kind: e.Kind, Addr: e.Addr, Sync: e.Sync, N: e.N}
}

// Trace is a recorded run.
type Trace struct {
	Program string  `json:"program"`
	Events  []Event `json:"events"`
}

// Recorder accumulates events; install it in the runner configuration.
type Recorder struct {
	tr  Trace
	seq uint64
}

// NewRecorder starts an empty recorder for the named program.
func NewRecorder(name string) *Recorder {
	return &Recorder{tr: Trace{Program: name}}
}

// RecordOp appends an ordinary op event.
func (r *Recorder) RecordOp(t vclock.TID, ctx cache.Context, op program.Op, hitm, analyzed bool) {
	r.seq++
	r.tr.Events = append(r.tr.Events, Event{
		Seq: r.seq, TID: t, Ctx: ctx,
		Kind: op.Kind, Addr: op.Addr, Sync: op.Sync, N: op.N,
		HITM: hitm, Analyzed: analyzed,
	})
}

// RecordMark appends a region-annotation event.
func (r *Recorder) RecordMark(t vclock.TID, ctx cache.Context, label string) {
	r.seq++
	r.tr.Events = append(r.tr.Events, Event{
		Seq: r.seq, TID: t, Ctx: ctx, Kind: program.OpMark, Str: label,
	})
}

// RecordBarrier appends a barrier-release event.
func (r *Recorder) RecordBarrier(id program.SyncID, parties []vclock.TID, analyzed bool) {
	r.seq++
	r.tr.Events = append(r.tr.Events, Event{
		Seq: r.seq, Kind: program.OpBarrier, Sync: id,
		Parties: append([]vclock.TID(nil), parties...), Analyzed: analyzed,
	})
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Trace { return &r.tr }

// Replay feeds a trace's analyzed events through a fresh detector built
// with opt and returns it. Thread and sync-object counts are inferred from
// the trace.
func Replay(tr *Trace, opt detector.Options) *detector.Detector {
	threads, mutexes, sems := tr.Dims()
	det := detector.New(threads, mutexes, sems, opt)
	for _, e := range tr.Events {
		ApplyEvent(det, e)
	}
	return det
}

// ApplyEvent feeds one event into det: mark events always set the region,
// everything else is gated on the event having been analyzed. This is the
// single event→detector mapping — batch Replay and the streaming
// LiveReplay both go through it, which is what makes their final detector
// states identical on the same event sequence.
func ApplyEvent(det *detector.Detector, e Event) {
	if e.Kind == program.OpMark {
		det.SetRegion(e.TID, e.Str)
		return
	}
	if !e.Analyzed {
		return
	}
	switch e.Kind {
	case program.OpLoad:
		det.OnRead(e.TID, e.Addr)
	case program.OpStore:
		det.OnWrite(e.TID, e.Addr)
	case program.OpAtomicLoad:
		det.OnAtomicLoad(e.TID, e.Addr)
	case program.OpAtomicStore:
		det.OnAtomicStore(e.TID, e.Addr)
	case program.OpLock:
		det.OnLock(e.TID, e.Sync)
	case program.OpUnlock:
		det.OnUnlock(e.TID, e.Sync)
	case program.OpSignal:
		det.OnSignal(e.TID, e.Sync)
	case program.OpWait:
		det.OnWait(e.TID, e.Sync)
	case program.OpBarrier:
		det.OnBarrierRelease(e.Parties)
	}
}

// Summary aggregates a trace's event population.
type Summary struct {
	Program  string
	Events   int
	Threads  int
	ByKind   map[string]int
	HITM     int
	Analyzed int
}

// Summarize computes a trace's Summary.
func Summarize(tr *Trace) Summary {
	threads, _, _ := tr.Dims()
	s := Summary{Program: tr.Program, Events: len(tr.Events), Threads: threads,
		ByKind: map[string]int{}}
	for _, e := range tr.Events {
		s.ByKind[e.Kind.String()]++
		if e.HITM {
			s.HITM++
		}
		if e.Analyzed {
			s.Analyzed++
		}
	}
	return s
}

// Dims infers (threads, mutexes, semaphores) from the event stream.
func (tr *Trace) Dims() (threads, mutexes, sems int) {
	for _, e := range tr.Events {
		if int(e.TID) >= threads {
			threads = int(e.TID) + 1
		}
		for _, p := range e.Parties {
			if int(p) >= threads {
				threads = int(p) + 1
			}
		}
		switch e.Kind {
		case program.OpLock, program.OpUnlock:
			if int(e.Sync) >= mutexes {
				mutexes = int(e.Sync) + 1
			}
		case program.OpSignal, program.OpWait:
			if int(e.Sync) >= sems {
				sems = int(e.Sync) + 1
			}
		}
	}
	return threads, mutexes, sems
}

// ---- binary encoding ----

// magic and version guard the binary format.
var magic = [4]byte{'D', 'R', 'T', '1'}

const (
	flagHITM     = 1 << 0
	flagAnalyzed = 1 << 1
	flagBarrier  = 1 << 2
	flagStr      = 1 << 3
)

// EncodeBinary writes the trace in the compact varint format.
func EncodeBinary(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(tr.Program)))
	if _, err := bw.WriteString(tr.Program); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(tr.Events)))
	for _, e := range tr.Events {
		var flags byte
		if e.HITM {
			flags |= flagHITM
		}
		if e.Analyzed {
			flags |= flagAnalyzed
		}
		if len(e.Parties) > 0 {
			flags |= flagBarrier
		}
		if e.Str != "" {
			flags |= flagStr
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		writeUvarint(bw, uint64(e.TID))
		writeUvarint(bw, uint64(e.Ctx))
		writeUvarint(bw, uint64(e.Addr))
		writeUvarint(bw, uint64(e.Sync))
		writeUvarint(bw, e.N)
		if flags&flagBarrier != 0 {
			writeUvarint(bw, uint64(len(e.Parties)))
			for _, p := range e.Parties {
				writeUvarint(bw, uint64(p))
			}
		}
		if flags&flagStr != 0 {
			writeUvarint(bw, uint64(len(e.Str)))
			if _, err := bw.WriteString(e.Str); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Decode limits: length fields in the input are untrusted, so buffers are
// never pre-allocated beyond these caps (a count larger than the remaining
// input fails at read time instead of exhausting memory).
const (
	maxNameLen  = 1 << 12
	maxStrLen   = 1 << 16
	maxParties  = 1 << 16
	preallocCap = 1 << 12
)

// DecodeLimits bounds what DecodeBinaryLimited will accept from an
// untrusted trace. Zero fields mean "no bound for this dimension".
type DecodeLimits struct {
	// MaxEvents caps the event count a trace may declare (and decode).
	MaxEvents uint64
	// MaxBytes caps the total bytes consumed from the reader. Enforcement
	// is within one bufio read-ahead (4 KiB) of exact.
	MaxBytes int64
}

// DefaultDecodeLimits bounds decoding at 16 Mi events / 1 GiB of input —
// far above any trace the simulator produces, low enough that a malformed
// or hostile stream cannot exhaust memory.
var DefaultDecodeLimits = DecodeLimits{MaxEvents: 1 << 24, MaxBytes: 1 << 30}

// LimitError reports an input that exceeds a decode limit. It is the typed
// signal service-layer callers (the ddserved upload path) turn into an
// HTTP 413 instead of a generic parse failure.
type LimitError struct {
	// What names the exceeded dimension ("events", "bytes", "program name",
	// "barrier parties", "label").
	What string
	// Limit is the configured cap; Got is the offending value (for the
	// bytes dimension, Got is the limit at which reading stopped).
	Limit, Got uint64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("trace: %s %d exceeds decode limit %d", e.What, e.Got, e.Limit)
}

// limitReader fails with a typed *LimitError once more than cap bytes have
// been consumed (cap <= 0 disables the bound).
type limitReader struct {
	r         io.Reader
	cap       int64 // configured bound, for the error message
	remaining int64 // budget left; <0 means unlimited
}

func (l *limitReader) Read(p []byte) (int, error) {
	if l.remaining >= 0 {
		if l.remaining == 0 {
			return 0, &LimitError{What: "bytes", Limit: uint64(l.cap), Got: uint64(l.cap)}
		}
		if int64(len(p)) > l.remaining {
			p = p[:l.remaining]
		}
	}
	n, err := l.r.Read(p)
	if l.remaining >= 0 {
		l.remaining -= int64(n)
	}
	return n, err
}

// DecodeBinary reads a trace written by EncodeBinary, bounded by
// DefaultDecodeLimits.
func DecodeBinary(r io.Reader) (*Trace, error) {
	return DecodeBinaryLimited(r, DefaultDecodeLimits)
}

// DecodeBinaryLimited reads a trace written by EncodeBinary, refusing input
// that exceeds lim with a *LimitError. The limits guard allocation, not just
// parsing: a declared event count beyond MaxEvents fails before any event is
// decoded, and the reader stops consuming at MaxBytes.
func DecodeBinaryLimited(r io.Reader, lim DecodeLimits) (*Trace, error) {
	lr := &limitReader{r: r, cap: lim.MaxBytes, remaining: lim.MaxBytes}
	if lim.MaxBytes <= 0 {
		lr.remaining = -1
	}
	br := bufio.NewReader(lr)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: bad magic (not a DRT1 trace)")
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > maxNameLen {
		return nil, &LimitError{What: "program name", Limit: maxNameLen, Got: nameLen}
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if lim.MaxEvents > 0 && count > lim.MaxEvents {
		return nil, &LimitError{What: "events", Limit: lim.MaxEvents, Got: count}
	}
	// Do not trust count for allocation; events append as they decode.
	tr := &Trace{Program: string(name), Events: make([]Event, 0, min(count, preallocCap))}
	for i := uint64(0); i < count; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		kind, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		e := Event{
			Seq:      i + 1,
			Kind:     program.Kind(kind),
			HITM:     flags&flagHITM != 0,
			Analyzed: flags&flagAnalyzed != 0,
		}
		vals := make([]uint64, 5)
		for j := range vals {
			if vals[j], err = binary.ReadUvarint(br); err != nil {
				return nil, err
			}
		}
		e.TID = vclock.TID(vals[0])
		e.Ctx = cache.Context(vals[1])
		e.Addr = mem.Addr(vals[2])
		e.Sync = program.SyncID(vals[3])
		e.N = vals[4]
		if flags&flagBarrier != 0 {
			np, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if np > maxParties {
				return nil, &LimitError{What: "barrier parties", Limit: maxParties, Got: np}
			}
			e.Parties = make([]vclock.TID, np)
			for j := range e.Parties {
				v, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				e.Parties[j] = vclock.TID(v)
			}
		}
		if flags&flagStr != 0 {
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if n > maxStrLen {
				return nil, &LimitError{What: "label", Limit: maxStrLen, Got: n}
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, err
			}
			e.Str = string(buf)
		}
		tr.Events = append(tr.Events, e)
	}
	return tr, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) // bufio.Writer errors surface at Flush
}

// EncodeJSON writes the trace as JSON.
func EncodeJSON(w io.Writer, tr *Trace) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// DecodeJSON reads a JSON trace.
func DecodeJSON(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, err
	}
	return &tr, nil
}
