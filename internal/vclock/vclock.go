// Package vclock implements vector clocks and FastTrack-style epochs, the
// timestamps from which the happens-before race detector is built.
//
// A vector clock maps each thread to the count of that thread's completed
// "operations" (in the detector's sense: increments happen at release-style
// synchronization events). Clock C1 happens-before C2 when C1 ≤ C2 pointwise
// and C1 ≠ C2. An Epoch c@t is the FastTrack compression of "the last access
// was by thread t at its local time c"; most variables only ever need an
// epoch, which is what makes FastTrack's common case O(1).
//
// Two pieces exist purely for the detector's allocation-free hot path:
// Epoch.TIDIs answers "is this epoch mine?" with a single integer compare
// (the SmartTrack-style ownership shortcut), and Pool recycles the full
// clocks that shadow read sets spill into, so inflating and collapsing a
// read-shared word costs no steady-state allocation.
package vclock

import (
	"fmt"
	"strings"
)

// TID identifies a simulated thread. Thread IDs are small dense integers
// assigned in spawn order by the scheduler.
type TID int32

// Time is a single thread-local logical clock value.
type Time uint32

// VC is a vector clock. The zero value is usable and represents the clock
// that is ≤ every other clock. Index i holds the component for TID(i);
// missing tail entries are implicitly zero.
type VC struct {
	c []Time
}

// New returns a vector clock with capacity for n threads (all zero).
func New(n int) *VC {
	return &VC{c: make([]Time, n)}
}

// Get returns the component for thread t (zero if beyond the stored tail).
func (v *VC) Get(t TID) Time {
	if int(t) >= len(v.c) {
		return 0
	}
	return v.c[t]
}

// Set assigns the component for thread t, growing the vector as needed.
func (v *VC) Set(t TID, val Time) {
	v.grow(int(t) + 1)
	v.c[t] = val
}

// Tick increments thread t's own component and returns the new value.
func (v *VC) Tick(t TID) Time {
	v.grow(int(t) + 1)
	v.c[t]++
	return v.c[t]
}

func (v *VC) grow(n int) {
	if n <= len(v.c) {
		return
	}
	if n <= cap(v.c) {
		v.c = v.c[:n]
		return
	}
	nc := make([]Time, n, n*2)
	copy(nc, v.c)
	v.c = nc
}

// Join merges other into v pointwise (v := v ⊔ other).
func (v *VC) Join(other *VC) {
	v.grow(len(other.c))
	for i, t := range other.c {
		if t > v.c[i] {
			v.c[i] = t
		}
	}
}

// Copy returns an independent deep copy of v.
func (v *VC) Copy() *VC {
	nc := make([]Time, len(v.c))
	copy(nc, v.c)
	return &VC{c: nc}
}

// Reset returns v to the zero clock while keeping its backing capacity, so
// a pooled clock can be reused without reallocating. The stored components
// are zeroed before truncation because grow assumes the region between the
// length and the capacity is zero.
func (v *VC) Reset() {
	for i := range v.c {
		v.c[i] = 0
	}
	v.c = v.c[:0]
}

// Assign overwrites v with the contents of other.
func (v *VC) Assign(other *VC) {
	v.grow(len(other.c))
	copy(v.c, other.c)
	for i := len(other.c); i < len(v.c); i++ {
		v.c[i] = 0
	}
}

// LEQ reports whether v ≤ other pointwise (v happens-before-or-equals other).
func (v *VC) LEQ(other *VC) bool {
	for i, t := range v.c {
		if t > other.Get(TID(i)) {
			return false
		}
	}
	return true
}

// Equal reports pointwise equality (treating missing tails as zero).
func (v *VC) Equal(other *VC) bool {
	return v.LEQ(other) && other.LEQ(v)
}

// HappensBefore reports the strict order: v ≤ other and v ≠ other.
func (v *VC) HappensBefore(other *VC) bool {
	return v.LEQ(other) && !other.LEQ(v)
}

// Concurrent reports that neither clock happens-before the other.
func (v *VC) Concurrent(other *VC) bool {
	return !v.LEQ(other) && !other.LEQ(v)
}

// FirstConcurrent returns the lowest-TID component of a not ≤ b, or (-1, 0)
// when a ≤ b pointwise. Race reports use it to pick a deterministic
// representative from an access history that conflicts with the current
// thread's clock.
func FirstConcurrent(a, b *VC) (TID, Time) {
	for i := 0; i < a.Len(); i++ {
		t := TID(i)
		if a.Get(t) > b.Get(t) {
			return t, a.Get(t)
		}
	}
	return -1, 0
}

// Len returns the number of stored components (threads seen so far).
func (v *VC) Len() int { return len(v.c) }

// String renders the clock as <t0,t1,...>.
func (v *VC) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, t := range v.c {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", t)
	}
	b.WriteByte('>')
	return b.String()
}

// Epoch is FastTrack's scalar timestamp c@t: thread t at local time c.
// It is packed into a single word so shadow memory stays compact.
// The zero Epoch (None) means "no access recorded".
type Epoch uint64

// None is the empty epoch: no access has been recorded.
const None Epoch = 0

// ReadShared is a sentinel epoch stored in shadow read slots whose read
// history has inflated to a full vector clock.
const ReadShared Epoch = ^Epoch(0)

// MakeEpoch packs thread t at time c into an epoch. Times start at 1 in the
// detector, so a packed epoch is never zero.
func MakeEpoch(t TID, c Time) Epoch {
	return Epoch(uint64(c)<<16 | uint64(uint16(t)) + 1)
}

// TIDOf unpacks the thread component.
func (e Epoch) TIDOf() TID { return TID(uint16(e) - 1) }

// TIDIs reports whether e's thread component is t, without unpacking —
// one compare on the detector's ownership fast path. None never matches
// (its packed TID field is 0, and packed TIDs start at 1). The caller must
// exclude ReadShared, whose TID field aliases thread 65534.
func (e Epoch) TIDIs(t TID) bool { return uint16(e) == uint16(t)+1 }

// TimeOf unpacks the time component.
func (e Epoch) TimeOf() Time { return Time(e >> 16) }

// LEQ reports whether epoch e happens-before-or-equals clock v:
// c@t ≤ V iff c ≤ V[t].
func (e Epoch) LEQ(v *VC) bool {
	if e == None {
		return true
	}
	return e.TimeOf() <= v.Get(e.TIDOf())
}

func (e Epoch) String() string {
	switch e {
	case None:
		return "⊥"
	case ReadShared:
		return "SHARED"
	default:
		return fmt.Sprintf("%d@%d", e.TimeOf(), e.TIDOf())
	}
}

// Pool recycles vector clocks so the detector's steady state allocates
// nothing: a read set that spills past the shadow state's inline slots
// takes a clock from the pool, and the next write to that word returns it.
// The zero Pool is ready to use. Not safe for concurrent use — a pool
// belongs to one detector, which is itself single-threaded.
type Pool struct {
	free []*VC
}

// Get returns a zeroed clock, reusing a returned one when available.
func (p *Pool) Get() *VC {
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free = p.free[:n-1]
		return v
	}
	return New(0)
}

// Put resets v and makes it available to the next Get. Putting nil is a
// no-op.
func (p *Pool) Put(v *VC) {
	if v == nil {
		return
	}
	v.Reset()
	p.free = append(p.free, v)
}
