package cache

import (
	"math/rand"
	"testing"

	"demandrace/internal/mem"
)

func llcConfig() Config {
	return Config{Cores: 2, SMT: 1, L1Sets: 2, L1Ways: 2, L2Sets: 8, L2Ways: 4}
}

func TestLLCConfigValidation(t *testing.T) {
	bad := []Config{
		{Cores: 2, SMT: 1, L1Sets: 2, L1Ways: 2, L2Sets: 8},             // ways missing
		{Cores: 2, SMT: 1, L1Sets: 2, L1Ways: 2, L2Ways: 4},             // sets missing
		{Cores: 2, SMT: 1, L1Sets: 2, L1Ways: 2, L2Sets: 6, L2Ways: 4},  // not power of two
		{Cores: 2, SMT: 1, L1Sets: 64, L1Ways: 8, L2Sets: 2, L2Ways: 2}, // smaller than L1s
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestLLCHitAfterMemoryFill(t *testing.T) {
	h := New(llcConfig())
	h.Access(0, addr(1, 0), false) // memory fill → LLC + L1
	if p, _ := h.LLCStateOf(1); !p {
		t.Fatal("fill did not install into LLC")
	}
	// Evict the line from core 0's L1 (set 1: odd lines 1,3,5 map to set 1).
	h.Access(0, addr(3, 0), false)
	h.Access(0, addr(5, 0), false)
	if h.StateOf(0, 1) != Invalid {
		t.Fatal("line 1 should have left the L1")
	}
	// Core 1's read now hits the LLC, not memory.
	res := h.Access(1, addr(1, 0), false)
	if res.Latency != LatLLC {
		t.Errorf("latency = %d, want LLC hit %d", res.Latency, LatLLC)
	}
	if h.Stats().LLCHits != 1 {
		t.Errorf("LLC hits = %d", h.Stats().LLCHits)
	}
}

func TestDirtyL1EvictionLandsInLLCNoHITM(t *testing.T) {
	// The more faithful eviction blind spot: producer's dirty line is
	// evicted into the LLC; the consumer gets an ordinary LLC hit, real
	// sharing, zero HITM — and the data never reached memory.
	h := New(llcConfig())
	h.Access(0, addr(1, 0), true)  // dirty in core 0
	h.Access(0, addr(3, 0), false) // same set
	h.Access(0, addr(5, 0), false) // evicts line 1
	if p, d := h.LLCStateOf(1); !p || !d {
		t.Fatalf("LLC state of line 1 = present %v dirty %v, want dirty copy", p, d)
	}
	if h.Stats().L2Writebacks != 0 {
		t.Error("dirty line should not have reached memory yet")
	}
	res := h.Access(1, addr(1, 0), false)
	if res.HITM {
		t.Error("LLC-served sharing must not HITM")
	}
	if res.Latency != LatLLC {
		t.Errorf("latency = %d, want %d", res.Latency, LatLLC)
	}
}

func TestHITMReadWritesBackIntoLLC(t *testing.T) {
	// MESI M→S demotion on a remote read deposits the dirty data in the
	// LLC.
	h := New(llcConfig())
	h.Access(0, addr(1, 0), true)
	h.Access(1, addr(1, 0), false) // HITM; both now Shared
	if p, d := h.LLCStateOf(1); !p || !d {
		t.Errorf("LLC after HITM read: present %v dirty %v, want dirty", p, d)
	}
}

func TestLLCEvictionBackInvalidatesL1(t *testing.T) {
	// Fill one LLC set past its associativity; inclusion forces the victim
	// out of every L1.
	cfg := Config{Cores: 1, SMT: 1, L1Sets: 1, L1Ways: 2, L2Sets: 1, L2Ways: 2}
	h := New(cfg)
	h.Access(0, addr(1, 0), true)  // dirty, will be victim
	h.Access(0, addr(2, 0), false) // LLC set 0 (single set)
	h.Access(0, addr(3, 0), false) // evicts line 1 from LLC → back-invalidate
	if h.StateOf(0, 1) != Invalid {
		t.Error("inclusion victim still in L1")
	}
	st := h.Stats()
	if st.L2Evictions != 1 {
		t.Errorf("L2 evictions = %d", st.L2Evictions)
	}
	if st.L2Writebacks != 1 {
		t.Errorf("L2 writebacks = %d (Modified victim must reach memory)", st.L2Writebacks)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInclusionInvariantRandom(t *testing.T) {
	cfgs := []Config{
		llcConfig(),
		{Cores: 4, SMT: 1, L1Sets: 2, L1Ways: 2, L2Sets: 16, L2Ways: 2},
		{Cores: 2, SMT: 2, L1Sets: 4, L1Ways: 1, L2Sets: 4, L2Ways: 4},
	}
	for _, cfg := range cfgs {
		r := rand.New(rand.NewSource(11))
		h := New(cfg)
		for i := 0; i < 20000; i++ {
			ctx := Context(r.Intn(cfg.Contexts()))
			a := addr(uint64(r.Intn(48)), uint64(r.Intn(8)*8))
			h.Access(ctx, a, r.Intn(2) == 0)
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("cfg %+v step %d: %v", cfg, i, err)
			}
		}
	}
}

func TestHITMIffRemoteModifiedWithLLC(t *testing.T) {
	// The defining property must survive the extra level.
	cfg := Config{Cores: 4, SMT: 1, L1Sets: 2, L1Ways: 2, L2Sets: 8, L2Ways: 4}
	r := rand.New(rand.NewSource(5))
	h := New(cfg)
	for i := 0; i < 20000; i++ {
		ctx := Context(r.Intn(cfg.Contexts()))
		a := addr(uint64(r.Intn(24)), 0)
		l := mem.LineOf(a)
		core := h.CoreOf(ctx)
		remoteM := false
		for c := 0; c < cfg.Cores; c++ {
			if c != core && h.StateOf(c, l) == Modified {
				remoteM = true
			}
		}
		localHit := h.StateOf(core, l) != Invalid
		res := h.Access(ctx, a, r.Intn(2) == 0)
		if res.HITM != (remoteM && !localHit) {
			t.Fatalf("step %d: HITM=%v want %v", i, res.HITM, remoteM && !localHit)
		}
	}
}

func TestFlushDrainsLLC(t *testing.T) {
	h := New(llcConfig())
	h.Access(0, addr(1, 0), true)
	h.Flush()
	if p, _ := h.LLCStateOf(1); p {
		t.Error("flush left a line in the LLC")
	}
	st := h.Stats()
	if st.Writebacks != 1 || st.L2Writebacks != 1 {
		t.Errorf("writebacks = %d/%d, want 1/1", st.Writebacks, st.L2Writebacks)
	}
	res := h.Access(1, addr(1, 0), false)
	if res.Latency != LatMemory || res.HITM {
		t.Errorf("post-flush access: %+v", res)
	}
}

func TestNoLLCBehaviorUnchanged(t *testing.T) {
	// L2Sets=0 configurations keep the two-level-free semantics.
	cfg := Config{Cores: 2, SMT: 1, L1Sets: 2, L1Ways: 2}
	h := New(cfg)
	h.Access(0, addr(1, 0), true)
	h.Access(0, addr(3, 0), false)
	h.Access(0, addr(5, 0), false) // evicts dirty line 1 straight to memory
	res := h.Access(1, addr(1, 0), false)
	if res.Latency != LatMemory {
		t.Errorf("latency = %d, want memory (no LLC)", res.Latency)
	}
	if p, _ := h.LLCStateOf(1); p {
		t.Error("LLCStateOf reported presence without an LLC")
	}
}
