package syncmodel

import (
	"testing"

	"demandrace/internal/vclock"
)

func TestMutexAndSemClocksIndependent(t *testing.T) {
	tb := NewTable(2, 2)
	tb.Mutex(0).Set(1, 5)
	if tb.Mutex(1).Get(1) != 0 {
		t.Error("mutex clocks aliased")
	}
	if tb.Sem(0).Get(1) != 0 {
		t.Error("mutex and sem clocks aliased")
	}
	tb.Sem(1).Set(0, 3)
	if tb.Sem(0).Get(0) != 0 {
		t.Error("sem clocks aliased")
	}
}

func TestAtomicWordNormalization(t *testing.T) {
	tb := NewTable(0, 0)
	a := tb.Atomic(0x101)
	b := tb.Atomic(0x106)
	if a != b {
		t.Error("same-word atomics got distinct clocks")
	}
	c := tb.Atomic(0x108)
	if a == c {
		t.Error("different-word atomics share a clock")
	}
}

func TestAtomicClockPersists(t *testing.T) {
	tb := NewTable(0, 0)
	tb.Atomic(0x100).Set(vclock.TID(2), 9)
	if tb.Atomic(0x100).Get(2) != 9 {
		t.Error("atomic clock lost state between lookups")
	}
}
