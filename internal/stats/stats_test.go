package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); !almost(g, 4) {
		t.Errorf("Geomean(2,8) = %g", g)
	}
	if g := Geomean([]float64{3}); !almost(g, 3) {
		t.Errorf("Geomean(3) = %g", g)
	}
	if !math.IsNaN(Geomean(nil)) {
		t.Error("empty geomean should be NaN")
	}
	if !math.IsNaN(Geomean([]float64{1, -1})) {
		t.Error("negative geomean should be NaN")
	}
	if !math.IsNaN(Geomean([]float64{0, 2})) {
		t.Error("zero geomean should be NaN")
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
		}
		g := Geomean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9 && g <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeomeanScaleInvariance(t *testing.T) {
	// Geomean(k*xs) = k*Geomean(xs).
	xs := []float64{1.5, 3.7, 12, 0.2}
	if !almost(Geomean([]float64{3, 7.4, 24, 0.4}), 2*Geomean(xs)) {
		t.Error("geomean not scale-invariant")
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{4, 1, 7}
	if !almost(Mean(xs), 4) || !almost(Min(xs), 1) || !almost(Max(xs), 7) {
		t.Errorf("mean/min/max = %g/%g/%g", Mean(xs), Min(xs), Max(xs))
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty summaries should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if p := Percentile(xs, 50); !almost(p, 3) {
		t.Errorf("p50 = %g", p)
	}
	if p := Percentile(xs, 0); !almost(p, 1) {
		t.Errorf("p0 = %g", p)
	}
	if p := Percentile(xs, 100); !almost(p, 5) {
		t.Errorf("p100 = %g", p)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.50") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + rule + 2 rows
	if len(lines) != 5 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("1")                // short row pads
	tb.AddRow("1", "2", "3", "4") // long row truncates
	out := tb.String()
	if strings.Contains(out, "4") {
		t.Errorf("extra cell leaked:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "name", "note")
	tb.AddRow("x", `has "quotes", commas`)
	csv := tb.CSV()
	want := "name,note\nx,\"has \"\"quotes\"\", commas\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}
