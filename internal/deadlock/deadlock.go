// Package deadlock implements lock-order (potential-deadlock) detection,
// the second analysis engine of the Inspector-XE-class tool the paper
// modified: it reports lock hierarchies that *could* deadlock even when the
// observed run completed.
//
// The detector builds a lock-order graph: acquiring lock B while holding
// lock A adds edge A→B. A cycle in the graph means two threads can acquire
// the same locks in opposite orders — the classic ABBA hazard — regardless
// of whether the scheduler happened to interleave them fatally this run.
// Like the race detector, this engine is gated by the demand controller in
// the runner: its events are lock operations, which are always analyzed, so
// it costs the same under every policy.
package deadlock

import (
	"fmt"
	"sort"

	"demandrace/internal/program"
	"demandrace/internal/vclock"
)

// Report describes one potential deadlock: a cycle in the lock-order graph.
type Report struct {
	// Cycle lists the locks in acquisition-order cycle, starting from the
	// smallest ID (canonical form); Cycle[i] was held while acquiring
	// Cycle[(i+1) % len].
	Cycle []program.SyncID
	// Threads lists one witness thread per edge of the cycle.
	Threads []vclock.TID
}

func (r Report) String() string {
	return fmt.Sprintf("potential deadlock: lock cycle %v (witnesses %v)", r.Cycle, r.Threads)
}

// edge is one observed held→acquired pair.
type edge struct {
	from, to program.SyncID
}

// Stats counts detector work.
type Stats struct {
	Acquires uint64
	Releases uint64
	Edges    uint64
	Cycles   uint64
}

// Detector accumulates the lock-order graph. Not safe for concurrent use.
type Detector struct {
	held [][]program.SyncID
	// succ[a] is the set of locks acquired while a was held, with a
	// witness thread per edge.
	succ map[program.SyncID]map[program.SyncID]vclock.TID
	// reported de-duplicates cycles by canonical key.
	reported map[string]bool
	reports  []Report
	stats    Stats
}

// New builds a detector for numThreads threads.
func New(numThreads int) *Detector {
	return &Detector{
		held:     make([][]program.SyncID, numThreads),
		succ:     make(map[program.SyncID]map[program.SyncID]vclock.TID),
		reported: make(map[string]bool),
	}
}

// Reports returns the potential deadlocks found so far.
func (d *Detector) Reports() []Report { return d.reports }

// Stats returns the work counters.
func (d *Detector) Stats() Stats { return d.stats }

// OnLock records thread t acquiring mutex id; new lock-order edges are
// added and checked for cycles.
func (d *Detector) OnLock(t vclock.TID, id program.SyncID) {
	d.stats.Acquires++
	for _, h := range d.held[t] {
		d.addEdge(t, h, id)
	}
	d.held[t] = append(d.held[t], id)
}

// OnUnlock records thread t releasing mutex id.
func (d *Detector) OnUnlock(t vclock.TID, id program.SyncID) {
	d.stats.Releases++
	hs := d.held[t]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i] == id {
			d.held[t] = append(hs[:i], hs[i+1:]...)
			return
		}
	}
}

func (d *Detector) addEdge(t vclock.TID, from, to program.SyncID) {
	if from == to {
		return
	}
	m, ok := d.succ[from]
	if !ok {
		m = make(map[program.SyncID]vclock.TID)
		d.succ[from] = m
	}
	if _, exists := m[to]; exists {
		return
	}
	m[to] = t
	d.stats.Edges++
	// A new edge can only create cycles through itself: a path
	// to → … → from plus the new from→to edge is a full cycle, so the
	// path already lists every node exactly once.
	if path := d.findPath(to, from); path != nil {
		d.report(path)
	}
}

// findPath returns the node sequence from src to dst (inclusive of both)
// if one exists in the lock-order graph.
func (d *Detector) findPath(src, dst program.SyncID) []program.SyncID {
	visited := map[program.SyncID]bool{}
	var dfs func(n program.SyncID) []program.SyncID
	dfs = func(n program.SyncID) []program.SyncID {
		if n == dst {
			return []program.SyncID{n}
		}
		visited[n] = true
		// Deterministic exploration order.
		next := make([]program.SyncID, 0, len(d.succ[n]))
		for s := range d.succ[n] {
			next = append(next, s)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, s := range next {
			if visited[s] {
				continue
			}
			if p := dfs(s); p != nil {
				return append([]program.SyncID{n}, p...)
			}
		}
		return nil
	}
	return dfs(src)
}

// report canonicalizes (rotate so the smallest lock leads) and
// de-duplicates a cycle. nodes holds the cycle without the closing
// repetition: n0 → n1 → … → nk → n0.
func (d *Detector) report(nodes []program.SyncID) {
	min := 0
	for i, n := range nodes {
		if n < nodes[min] {
			min = i
		}
	}
	canon := append(append([]program.SyncID{}, nodes[min:]...), nodes[:min]...)
	key := fmt.Sprint(canon)
	if d.reported[key] {
		return
	}
	d.reported[key] = true
	d.stats.Cycles++
	witnesses := make([]vclock.TID, len(canon))
	for i := range canon {
		from := canon[i]
		to := canon[(i+1)%len(canon)]
		witnesses[i] = d.succ[from][to]
	}
	d.reports = append(d.reports, Report{Cycle: canon, Threads: witnesses})
}
