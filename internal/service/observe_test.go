package service

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"demandrace/internal/obs"
	"demandrace/internal/obs/stream"
	"demandrace/internal/obs/tracectx"
)

func TestRetryAfterSeconds(t *testing.T) {
	mk := func(v string) http.Header {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return h
	}
	cases := []struct {
		value string
		want  int
	}{
		{"", 0},
		{"2", 2},
		{"0", 0},
		{"-3", 0},
		{"garbage", 0},
		// Past HTTP-dates mean "retry now", not a negative wait.
		{time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat), 0},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(mk(c.value)); got != c.want {
			t.Errorf("retryAfterSeconds(%q) = %d, want %d", c.value, got, c.want)
		}
	}
	// A future HTTP-date becomes the whole seconds remaining, rounded up.
	future := time.Now().Add(2500 * time.Millisecond).UTC().Format(http.TimeFormat)
	got := retryAfterSeconds(mk(future))
	if got < 1 || got > 4 {
		t.Errorf("retryAfterSeconds(future date) = %d, want a small positive ceil", got)
	}
}

// TestJobTraceEndpoint drives a traced submission end to end and asserts
// the served waterfall has the advertised stages on one timeline.
func TestJobTraceEndpoint(t *testing.T) {
	_, _, cl := newTestServer(t, Config{Workers: 1, Node: "n0"})
	tc := tracectx.New()
	ctx := tracectx.Into(context.Background(), tc)

	st, err := cl.Submit(ctx, Request{Kernel: "racy_flag"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := cl.Wait(ctx, st.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	data, err := cl.JobTrace(ctx, st.ID)
	if err != nil {
		t.Fatalf("JobTrace: %v", err)
	}
	recs, extra, err := obs.DecodeSpanTrace(data)
	if err != nil {
		t.Fatalf("trace endpoint served undecodable JSON: %v", err)
	}
	if extra["job_id"] != st.ID || extra["node"] != "n0" || extra["state"] != string(StateDone) {
		t.Fatalf("trace otherData = %v", extra)
	}
	if extra["trace_id"] != tc.TraceID() {
		t.Fatalf("trace_id = %q, want the submitted trace %q", extra["trace_id"], tc.TraceID())
	}
	got := map[string]bool{}
	for _, r := range recs {
		got[r.Name] = true
		if r.Track != "n0" {
			t.Errorf("span %q track = %q, want n0", r.Name, r.Track)
		}
	}
	for _, want := range []string{"cache_lookup", "queue_wait", "analysis", "render", "job"} {
		if !got[want] {
			t.Errorf("waterfall missing stage %q (have %v)", want, got)
		}
	}

	if _, err := cl.JobTrace(ctx, "nope"); err == nil {
		t.Fatal("JobTrace for an unknown job did not error")
	}
}

func TestTimeseriesEndpoint(t *testing.T) {
	_, ts, cl := newTestServer(t, Config{Workers: 1, Node: "n0", TSInterval: 10 * time.Millisecond})
	ctx := context.Background()
	if _, err := cl.Submit(ctx, Request{Kernel: "racy_flag"}); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	var doc struct {
		Node       string `json:"node"`
		IntervalMS int64  `json:"interval_ms"`
		Series     []struct {
			Metric  string `json:"metric"`
			Samples []struct {
				T int64   `json:"t"`
				V float64 `json:"v"`
			} `json:"samples"`
		} `json:"series"`
	}
	for {
		getJSON(t, ts.URL+"/v1/timeseries", &doc)
		ok := false
		for _, s := range doc.Series {
			if len(s.Samples) >= 2 {
				ok = true
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no series reached 2 samples: %+v", doc)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if doc.Node != "n0" || doc.IntervalMS != 10 {
		t.Fatalf("doc meta = %q/%d", doc.Node, doc.IntervalMS)
	}

	// metric= filters by substring; since=bad is a 400.
	var filtered struct {
		Series []struct {
			Metric string `json:"metric"`
		} `json:"series"`
	}
	getJSON(t, ts.URL+"/v1/timeseries?metric=ddrace_process_goroutines", &filtered)
	for _, s := range filtered.Series {
		if s.Metric != obs.ProcGoroutines {
			t.Fatalf("filter leaked series %q", s.Metric)
		}
	}
	if len(filtered.Series) == 0 {
		t.Fatal("runtime gauge series missing from timeseries")
	}
	resp, err := http.Get(ts.URL + "/v1/timeseries?since=bogus")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("since=bogus status = %d, want 400", resp.StatusCode)
	}
}

// TestEventsEndpoint tails /v1/events while a job runs and asserts the
// lifecycle events stream out in order.
func TestEventsEndpoint(t *testing.T) {
	_, ts, cl := newTestServer(t, Config{Workers: 1, Node: "n0"})

	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatalf("GET /v1/events: %v", err)
	}
	defer resp.Body.Close()
	dec := stream.NewDecoder(resp.Body)
	hello, err := dec.Next()
	if err != nil || hello.Type != stream.TypeHello || hello.Node != "n0" {
		t.Fatalf("hello = %+v, %v", hello, err)
	}

	ctx := context.Background()
	st, err := cl.Submit(ctx, Request{Kernel: "racy_flag"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	want := []string{stream.TypeJobQueued, stream.TypeJobStarted, stream.TypeJobDone}
	for _, wantType := range want {
		ev, err := dec.Next()
		if err != nil {
			t.Fatalf("reading %s: %v", wantType, err)
		}
		if ev.Type != wantType || ev.Job != st.ID {
			t.Fatalf("event = %+v, want type %s for job %s", ev, wantType, st.ID)
		}
	}

	// A second identical submit is a cache hit and must say so on the bus.
	if _, err := cl.Submit(ctx, Request{Kernel: "racy_flag"}); err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	ev, err := dec.Next()
	if err != nil || ev.Type != stream.TypeCacheHit {
		t.Fatalf("cache event = %+v, %v", ev, err)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}
