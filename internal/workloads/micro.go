package workloads

import (
	"demandrace/internal/mem"
	"demandrace/internal/program"
)

// Microbenchmarks isolate single behaviors of the HITM indicator for the
// fidelity experiment (E3): each one either must or must not produce HITM
// events, and the experiment checks the PMU sees exactly what the paper's
// characterization predicts.

func init() {
	register(Kernel{Name: "micro_producer_consumer", Suite: "micro",
		Sharing: "W→R handoff every iteration (HITM each time)", Build: MicroProducerConsumer})
	register(Kernel{Name: "micro_write_write", Suite: "micro",
		Sharing: "W→W ping-pong (HITM each handoff)", Build: MicroWriteWrite})
	register(Kernel{Name: "micro_read_sharing", Suite: "micro",
		Sharing: "read-only sharing (no HITM expected)", Build: MicroReadSharing})
	register(Kernel{Name: "micro_false_sharing", Suite: "micro",
		Sharing: "distinct words on one line (HITM without a race)", Build: MicroFalseSharing})
	register(Kernel{Name: "micro_eviction", Suite: "micro",
		Sharing: "producer evicts dirty line before consumer reads (HITM hidden)", Build: MicroEviction})
	register(Kernel{Name: "micro_private", Suite: "micro",
		Sharing: "no cross-thread contact at all", Build: MicroPrivate})
	register(Kernel{Name: "micro_streaming", Suite: "micro",
		Sharing: "sequential multi-line handoffs (prefetcher hides most HITMs)", Build: MicroStreaming})
}

// MicroProducerConsumer hands one word from thread 0 to thread 1 through a
// semaphore ping-pong: race-free, but every consumer load hits the
// producer's Modified line and must HITM. The semaphores are invisible to
// the cache, so the hardware signal is isolated from synchronization.
func MicroProducerConsumer(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("micro_producer_consumer")
	x := b.Space().AllocLine(8)
	full, empty := b.Semaphore(), b.Semaphore()
	iters := 100 * cfg.Scale
	t0, t1 := b.Thread(), b.Thread()
	for i := 0; i < iters; i++ {
		if i > 0 {
			t0.Wait(empty)
		}
		t0.Store(x).Compute(2).Signal(full)
		t1.Wait(full)
		t1.Load(x).Compute(2).Signal(empty)
	}
	return b.MustBuild()
}

// MicroWriteWrite ping-pongs stores between two threads on one word,
// ordered by semaphores: every handoff store is a W→W HITM.
func MicroWriteWrite(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("micro_write_write")
	x := b.Space().AllocLine(8)
	s01, s10 := b.Semaphore(), b.Semaphore()
	iters := 100 * cfg.Scale
	t0, t1 := b.Thread(), b.Thread()
	for i := 0; i < iters; i++ {
		if i > 0 {
			t0.Wait(s10)
		}
		t0.Store(x).Compute(2).Signal(s01)
		t1.Wait(s01)
		t1.Store(x).Compute(2).Signal(s10)
	}
	return b.MustBuild()
}

// MicroReadSharing has every thread read one shared word repeatedly after a
// single semaphore-published initializing write: read sharing raises no
// HITM after the first handoff.
func MicroReadSharing(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("micro_read_sharing")
	x := b.Space().AllocLine(8)
	ready := b.Semaphore()
	iters := 100 * cfg.Scale
	init := b.Thread()
	init.Store(x)
	for t := 1; t < cfg.Threads; t++ {
		init.Signal(ready)
	}
	for t := 1; t < cfg.Threads; t++ {
		tb := b.Thread()
		tb.Wait(ready)
		for i := 0; i < iters; i++ {
			tb.Load(x).Compute(2)
		}
	}
	return b.MustBuild()
}

// MicroFalseSharing has two threads write *different* words on the same
// cache line: the hardware sees sharing (HITM on every handoff), the
// detector correctly sees none.
func MicroFalseSharing(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("micro_false_sharing")
	line := b.Space().AllocLine(mem.LineSize)
	iters := 100 * cfg.Scale
	t0, t1 := b.Thread(), b.Thread()
	for i := 0; i < iters; i++ {
		t0.Store(line).Compute(2)
		t1.Store(line + mem.WordSize).Compute(2)
	}
	return b.MustBuild()
}

// MicroEviction makes the producer churn through a large private buffer
// after each store so the dirty shared line is evicted (written back)
// before the consumer reads it: the sharing is real but the HITM indicator
// stays silent. Built for a small L1 (the experiment runs it on
// cache.Config{L1Sets:2, L1Ways:2}-class hierarchies; on the default cache
// the churn must exceed 32 KiB to evict, which Scale controls).
func MicroEviction(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("micro_eviction")
	x := b.Space().AllocLine(8)
	iters := 20 * cfg.Scale
	// Churn buffer: enough lines to overflow a small L1 set-associative
	// cache between handoffs.
	const churnLines = 64
	churn := b.Space().AllocArray(churnLines, mem.LineSize)
	full, empty := b.Semaphore(), b.Semaphore()
	t0, t1 := b.Thread(), b.Thread()
	for i := 0; i < iters; i++ {
		if i > 0 {
			t0.Wait(empty)
		}
		t0.Store(x)
		for c := 0; c < churnLines; c++ {
			t0.Store(churn + mem.Addr(c*mem.LineSize))
		}
		t0.Signal(full)
		t1.Wait(full)
		t1.Load(x).Compute(2).Signal(empty)
	}
	return b.MustBuild()
}

// MicroPrivate is the control: every thread sweeps its own array.
func MicroPrivate(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("micro_private")
	elems := 100 * cfg.Scale
	work := workerArrays(b, cfg.Threads, elems)
	for t := 0; t < cfg.Threads; t++ {
		tb := b.Thread()
		privateSweep(tb, work[t], elems, 2)
	}
	return b.MustBuild()
}

// MicroStreaming hands whole buffers of consecutive cache lines from
// producer to consumer: with the next-line prefetcher enabled, only the
// first line of each sequential run raises a visible HITM — the prefetcher
// silently drains the rest, hiding most of the sharing from the indicator.
func MicroStreaming(cfg Config) *program.Program {
	cfg = cfg.normalized()
	b := program.NewBuilder("micro_streaming")
	const linesPerBuf = 8
	bufs := 12 * cfg.Scale
	buf := b.Space().AllocArray(uint64(bufs*linesPerBuf), mem.LineSize)
	full, empty := b.Semaphore(), b.Semaphore()
	lineAt := func(i, l int) mem.Addr {
		return buf + mem.Addr((i*linesPerBuf+l)*mem.LineSize)
	}
	t0, t1 := b.Thread(), b.Thread()
	for i := 0; i < bufs; i++ {
		if i > 0 {
			t0.Wait(empty)
		}
		for l := 0; l < linesPerBuf; l++ {
			t0.Store(lineAt(i, l))
		}
		t0.Signal(full)
		t1.Wait(full)
		for l := 0; l < linesPerBuf; l++ {
			t1.Load(lineAt(i, l)).Compute(2)
		}
		t1.Signal(empty)
	}
	return b.MustBuild()
}
