package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// schema chrome://tracing and Perfetto load). Timestamps are nominally
// microseconds; we write simulated cycles — the viewer renders them as a
// unitless timeline, which is exactly what a deterministic trace wants.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    uint64            `json:"ts"`
	Dur   uint64            `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData,omitempty"`
}

// chromeTID maps an event onto a viewer row: the thread when the event is
// thread-scoped, otherwise the hardware context.
func chromeTID(ev Event) int {
	if ev.TID >= 0 {
		return ev.TID
	}
	if ev.Ctx >= 0 {
		return ev.Ctx
	}
	return 0
}

// WriteChromeTrace renders spans and events as Chrome trace-event JSON.
// Spans become complete ("X") slices named "analysis"/"fast" on their
// thread's row; every tracer event becomes a thread-scoped instant ("i").
// The program name lands in otherData. Output bytes are a pure function of
// the inputs: no clocks, no map-ordered iteration.
func WriteChromeTrace(w io.Writer, program string, events []Event, spans []Span) error {
	out := chromeTrace{
		TraceEvents: make([]chromeEvent, 0, len(spans)+len(events)),
		OtherData:   map[string]string{"program": program, "clock": "simulated-cycles"},
	}
	for _, s := range spans {
		name := "fast"
		if s.Analyzing {
			name = "analysis"
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Cat: "mode", Phase: "X",
			TS: s.Start, Dur: s.Dur(), PID: 1, TID: s.TID,
		})
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Kind.String(), Cat: "pipeline", Phase: "i", Scope: "t",
			TS: ev.TS, PID: 1, TID: chromeTID(ev),
		}
		if ev.Detail != "" {
			ce.Args = map[string]string{"detail": ev.Detail}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ndjsonEvent is the NDJSON export schema for one event: snake_case keys,
// the kind spelled out, sentinels omitted.
type ndjsonEvent struct {
	TS     uint64 `json:"ts"`
	Kind   string `json:"kind"`
	TID    *int   `json:"tid,omitempty"`
	Ctx    *int   `json:"ctx,omitempty"`
	Line   uint64 `json:"line,omitempty"`
	Aux    int64  `json:"aux,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// WriteNDJSON writes one JSON object per event, newline-delimited — the
// log-shipper-friendly form of the trace. Deterministic byte output.
func WriteNDJSON(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		ev := &events[i]
		ne := ndjsonEvent{
			TS: ev.TS, Kind: ev.Kind.String(),
			Line: ev.Line, Aux: ev.Aux, Detail: ev.Detail,
		}
		if ev.TID >= 0 {
			tid := ev.TID
			ne.TID = &tid
		}
		if ev.Ctx >= 0 {
			ctx := ev.Ctx
			ne.Ctx = &ctx
		}
		if err := enc.Encode(ne); err != nil {
			return err
		}
	}
	return bw.Flush()
}
