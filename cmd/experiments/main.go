// Command experiments regenerates the tables and figures of the paper's
// evaluation (reconstructed per DESIGN.md).
//
// Independent simulation runs fan out across a worker pool (one worker per
// CPU by default; bound it with -workers). Tables are byte-identical for
// every worker count; a timing summary — per-experiment wall clock, run
// throughput, and realized parallel speedup — goes to stderr so it never
// perturbs the comparable stdout stream.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig4 -threads 8 -scale 2
//	experiments -exp fig1 -csv
//	experiments -quick               # seconds-long smoke run of every experiment
//	experiments -workers 1           # serial baseline (identical output)
//	experiments -quick -bench-json BENCH.json   # bench regression snapshot
//	experiments -quick -metrics      # engine counters to stderr, Prometheus text
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"demandrace/internal/experiments"
	"demandrace/internal/obs"
	"demandrace/internal/parallel"
	"demandrace/internal/stats"
	"demandrace/internal/version"
)

type tabler interface{ Table() *stats.Table }

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run executes the selected experiments, rendering tables to out and the
// timing/throughput summary to diag. Keeping the two streams separate is
// what lets `-workers N` output be byte-compared against `-workers 1`.
func run(args []string, out, diag io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment: scorecard|tab1|fig1|fig2|fig3|fig4|fig5|fig6|fig7|tab3|tab4|tab5|tab6|all")
		threads = fs.Int("threads", 4, "worker thread count")
		scale   = fs.Int("scale", 1, "workload scale factor")
		csv     = fs.Bool("csv", false, "emit CSV instead of text tables")
		workers = fs.Int("workers", 0, "parallel simulation runs (0 = one per CPU, 1 = serial)")
		quick   = fs.Bool("quick", false, "smoke mode: trimmed kernels and seeds, runs in seconds")
		timing  = fs.Bool("timing", true, "print wall-clock/throughput stats to stderr")
		benchF  = fs.String("bench-json", "", "write per-experiment wall time and throughput to this JSON file")
		metrics = fs.Bool("metrics", false, "print per-experiment engine counters to stderr as a Prometheus-style exposition")
		verFlag = fs.Bool("version", false, "print the version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *verFlag {
		fmt.Fprintln(out, version.String("experiments"))
		return nil
	}
	eng := parallel.New(*workers)
	o := experiments.Options{
		Threads: *threads,
		Scale:   *scale,
		Workers: *workers,
		Quick:   *quick,
		Engine:  eng,
	}

	runners := map[string]func(experiments.Options) (tabler, error){
		"tab1":      func(o experiments.Options) (tabler, error) { return experiments.Tab1(o) },
		"fig1":      func(o experiments.Options) (tabler, error) { return experiments.Fig1(o) },
		"fig2":      func(o experiments.Options) (tabler, error) { return experiments.Fig2(o) },
		"fig3":      func(o experiments.Options) (tabler, error) { return experiments.Fig3(o) },
		"fig4":      func(o experiments.Options) (tabler, error) { return experiments.Fig4(o) },
		"fig5":      func(o experiments.Options) (tabler, error) { return experiments.Fig5(o) },
		"fig6":      func(o experiments.Options) (tabler, error) { return experiments.Fig6(o) },
		"tab3":      func(o experiments.Options) (tabler, error) { return experiments.Tab3(o) },
		"tab4":      func(o experiments.Options) (tabler, error) { return experiments.Tab4(o) },
		"tab5":      func(o experiments.Options) (tabler, error) { return experiments.Tab5(o) },
		"fig7":      func(o experiments.Options) (tabler, error) { return experiments.Fig7(o) },
		"tab6":      func(o experiments.Options) (tabler, error) { return experiments.Tab6(o) },
		"scorecard": func(o experiments.Options) (tabler, error) { return experiments.Scorecard(o) },
	}
	order := []string{"scorecard", "tab1", "fig1", "fig2", "fig3", "fig4", "tab3", "fig5", "fig6", "fig7", "tab4", "tab5", "tab6"}

	var names []string
	if *exp == "all" {
		names = order
	} else if _, ok := runners[*exp]; ok {
		names = []string{*exp}
	} else {
		return fmt.Errorf("unknown experiment %q", *exp)
	}

	var rows []parallel.TimingRow
	suiteStart := time.Now()
	for _, name := range names {
		prev := eng.Stats()
		expStart := time.Now()
		res, err := runners[name](o)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, parallel.TimingRow{
			Name: name, Wall: time.Since(expStart), Delta: eng.Stats().Sub(prev),
		})
		tb := res.Table()
		if *csv {
			fmt.Fprint(out, tb.CSV())
		} else {
			fmt.Fprintln(out, tb)
		}
	}
	suiteWall := time.Since(suiteStart)
	total := eng.Stats()

	if *timing {
		fmt.Fprintln(diag, parallel.TimingTable(eng.Workers(), rows, total, suiteWall))
	}
	if *metrics {
		// Wall-clock-derived engine counters are diagnostics: they go to
		// diag only, through their own registry, never the comparable
		// stdout stream.
		reg := obs.NewRegistry()
		for _, r := range rows {
			r.Delta.Publish(reg, r.Name)
		}
		total.Publish(reg, "suite")
		if err := reg.WriteProm(diag); err != nil {
			return err
		}
	}
	if *benchF != "" {
		if err := writeBenchJSON(*benchF, eng.Workers(), *threads, *scale, *quick, rows, total, suiteWall); err != nil {
			return err
		}
		fmt.Fprintf(diag, "bench snapshot written to %s\n", *benchF)
	}
	return nil
}

// benchEntry is one experiment's timing in the bench-regression snapshot.
type benchEntry struct {
	Name       string  `json:"name"`
	Runs       int     `json:"runs"`
	BusyNS     int64   `json:"busy_ns"`
	WallNS     int64   `json:"wall_ns"`
	Speedup    float64 `json:"speedup"`
	RunsPerSec float64 `json:"runs_per_sec"`
}

// benchDoc is the -bench-json file layout: enough metadata to tell whether
// two snapshots are comparable, then one entry per experiment plus a total.
type benchDoc struct {
	Schema      int          `json:"schema"`
	Workers     int          `json:"workers"`
	Threads     int          `json:"threads"`
	Scale       int          `json:"scale"`
	Quick       bool         `json:"quick"`
	Experiments []benchEntry `json:"experiments"`
	Total       benchEntry   `json:"total"`
}

// writeBenchJSON snapshots per-experiment wall time and throughput. The
// numbers are wall-clock-derived by nature — the file is a bench artifact,
// not a deterministic export, and lives outside the stdout byte-equality
// contract.
func writeBenchJSON(path string, workers, threads, scale int, quick bool,
	rows []parallel.TimingRow, total parallel.Stats, suiteWall time.Duration) error {
	doc := benchDoc{Schema: 1, Workers: workers, Threads: threads, Scale: scale, Quick: quick}
	for _, r := range rows {
		doc.Experiments = append(doc.Experiments, benchEntry{
			Name:       r.Name,
			Runs:       r.Delta.Jobs,
			BusyNS:     int64(r.Delta.Busy),
			WallNS:     int64(r.Wall),
			Speedup:    r.Delta.Speedup(),
			RunsPerSec: r.Delta.Throughput(),
		})
	}
	doc.Total = benchEntry{
		Name:   "total",
		Runs:   total.Jobs,
		BusyNS: int64(total.Busy),
		WallNS: int64(suiteWall),
	}
	if suiteWall > 0 {
		doc.Total.Speedup = float64(total.Busy) / float64(suiteWall)
		doc.Total.RunsPerSec = float64(total.Jobs) / suiteWall.Seconds()
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
