// Package watchpoint models per-context hardware address watchpoints
// (x86-style debug registers): a small fixed set of cache lines whose
// accesses trap.
//
// The paper's research line explores these as the finer-grained demand
// mechanism: instead of flipping a whole thread into full instrumentation
// when the PMU reports sharing, set a watchpoint on the shared line and
// analyze only accesses that touch it. The defining constraint is
// *capacity* — real hardware has ~4 registers per context — so programs
// whose active shared set exceeds the register file thrash the watchpoints
// and lose coverage. The WatchDemand policy in internal/demand builds on
// this unit, and the Fig.6 ablation shows both the win (near-zero overhead
// on small shared sets) and the loss (capacity misses).
package watchpoint

import (
	"fmt"

	"demandrace/internal/mem"
)

// DefaultCapacity matches the four debug registers of x86.
const DefaultCapacity = 4

// Stats counts watchpoint-unit activity.
type Stats struct {
	// Sets counts Watch insertions of lines not already present.
	Sets uint64
	// Refreshes counts Watch calls on already-present lines.
	Refreshes uint64
	// Hits counts Check calls that matched a watched line.
	Hits uint64
	// Misses counts Check calls that matched nothing.
	Misses uint64
	// Evictions counts entries displaced by capacity.
	Evictions uint64
	// Expirations counts entries aged out by quiet decay.
	Expirations uint64
}

type entry struct {
	line mem.Line
	// age counts Tick calls since the entry was last set, hit, or
	// refreshed.
	age uint64
}

// Unit is one context's watchpoint register file. Not safe for concurrent
// use.
type Unit struct {
	capacity int
	entries  []entry
	stats    Stats
}

// New builds a unit with the given register count (≤ 0 selects
// DefaultCapacity).
func New(capacity int) *Unit {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Unit{capacity: capacity, entries: make([]entry, 0, capacity)}
}

// Capacity returns the register count.
func (u *Unit) Capacity() int { return u.capacity }

// Len returns the number of armed watchpoints.
func (u *Unit) Len() int { return len(u.entries) }

// Stats returns a snapshot of the counters.
func (u *Unit) Stats() Stats { return u.stats }

// Watch arms a watchpoint on line, refreshing it if already armed. When the
// register file is full the stalest entry (largest age) is evicted.
func (u *Unit) Watch(l mem.Line) {
	for i := range u.entries {
		if u.entries[i].line == l {
			u.entries[i].age = 0
			u.stats.Refreshes++
			return
		}
	}
	u.stats.Sets++
	if len(u.entries) < u.capacity {
		u.entries = append(u.entries, entry{line: l})
		return
	}
	victim := 0
	for i := 1; i < len(u.entries); i++ {
		if u.entries[i].age > u.entries[victim].age {
			victim = i
		}
	}
	u.stats.Evictions++
	u.entries[victim] = entry{line: l}
}

// Check reports whether line is watched, refreshing the entry's age on a
// hit (a trapping access is evidence the line is still hot).
func (u *Unit) Check(l mem.Line) bool {
	for i := range u.entries {
		if u.entries[i].line == l {
			u.entries[i].age = 0
			u.stats.Hits++
			return true
		}
	}
	u.stats.Misses++
	return false
}

// Watching reports whether line is armed without refreshing it.
func (u *Unit) Watching(l mem.Line) bool {
	for i := range u.entries {
		if u.entries[i].line == l {
			return true
		}
	}
	return false
}

// Tick ages every entry by one executed operation and disarms entries whose
// age exceeds quiet — the watchpoint analogue of the demand controller's
// quiet-period decay.
func (u *Unit) Tick(quiet uint64) {
	out := u.entries[:0]
	for _, e := range u.entries {
		e.age++
		if e.age > quiet {
			u.stats.Expirations++
			continue
		}
		out = append(out, e)
	}
	u.entries = out
}

// Clear disarms everything.
func (u *Unit) Clear() { u.entries = u.entries[:0] }

func (u *Unit) String() string {
	return fmt.Sprintf("watchpoints %d/%d armed", len(u.entries), u.capacity)
}
