package experiments

import (
	"fmt"

	"demandrace/internal/stats"
)

// Scorecard computes the headline paper-vs-measured table from the
// underlying experiments — the summary EXPERIMENTS.md leads with. It reruns
// Fig.1 (continuous cost), Fig.4 (suite speedups and best program), and
// Tab.3 (repeated-race recall) and condenses them to the abstract's claims.
type ScorecardResult struct {
	ContinuousMin, ContinuousMax float64
	PhoenixGeomean               float64
	ParsecGeomean                float64
	Best                         string
	BestSpeedup                  float64
	RepeatedRecall               float64
}

// Scorecard runs the three source experiments and aggregates. The three
// run back-to-back (each fans its own runs out across o's engine), so the
// condensed numbers are exactly the ones the underlying tables report.
func Scorecard(o Options) (*ScorecardResult, error) {
	o = o.normalized()
	f1, err := Fig1(o)
	if err != nil {
		return nil, err
	}
	f4, err := Fig4(o)
	if err != nil {
		return nil, err
	}
	t3, err := Tab3(o)
	if err != nil {
		return nil, err
	}
	res := &ScorecardResult{
		ContinuousMin:  stats.Min(f1.Slowdowns),
		ContinuousMax:  stats.Max(f1.Slowdowns),
		PhoenixGeomean: f4.GeomeanSpeedup["phoenix"],
		ParsecGeomean:  f4.GeomeanSpeedup["parsec"],
		Best:           f4.Best,
		BestSpeedup:    f4.BestSpeedup,
	}
	var cont, dem int
	for _, row := range t3.Rows {
		if row.Repeats > 1 {
			cont += row.ContFound
			dem += row.DemandFound
		}
	}
	if cont > 0 {
		res.RepeatedRecall = float64(dem) / float64(cont)
	}
	return res, nil
}

// Table renders the paper-vs-measured scorecard.
func (r *ScorecardResult) Table() *stats.Table {
	tb := stats.NewTable("Scorecard — paper (abstract) vs measured",
		"quantity", "paper", "measured")
	tb.AddRow("continuous-analysis slowdown", "10–300×",
		fmt.Sprintf("%.0f–%.0f× per kernel", r.ContinuousMin, r.ContinuousMax))
	tb.AddRow("Phoenix-suite geomean speedup", "≈10×", fmt.Sprintf("%.1f×", r.PhoenixGeomean))
	tb.AddRow("PARSEC-suite geomean speedup", "≈3×", fmt.Sprintf("%.1f×", r.ParsecGeomean))
	tb.AddRow("best single program", "51×",
		fmt.Sprintf("%.1f× (%s)", r.BestSpeedup, r.Best))
	tb.AddRow("repeated-race recall", `"without a large loss"`,
		fmt.Sprintf("%.2f vs continuous oracle", r.RepeatedRecall))
	return tb
}
