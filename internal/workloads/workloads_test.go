package workloads

import (
	"testing"

	"demandrace/internal/cache"
	"demandrace/internal/demand"
	"demandrace/internal/runner"
)

func TestRegistryComplete(t *testing.T) {
	counts := map[string]int{}
	for _, k := range All() {
		counts[k.Suite]++
	}
	if counts["phoenix"] != 8 {
		t.Errorf("phoenix kernels = %d, want 8", counts["phoenix"])
	}
	if counts["parsec"] != 13 {
		t.Errorf("parsec kernels = %d, want 13 (the full suite)", counts["parsec"])
	}
	if counts["micro"] != 7 {
		t.Errorf("micro kernels = %d, want 7", counts["micro"])
	}
	if counts["racy"] != 5 {
		t.Errorf("racy kernels = %d, want 5", counts["racy"])
	}
}

func TestByName(t *testing.T) {
	k, ok := ByName("histogram")
	if !ok || k.Suite != "phoenix" {
		t.Errorf("ByName(histogram) = %+v, %v", k, ok)
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("found a kernel that should not exist")
	}
	if len(Names()) != len(All()) {
		t.Error("Names and All disagree")
	}
}

func TestSuiteFiltering(t *testing.T) {
	for _, k := range Suite("phoenix") {
		if k.Suite != "phoenix" {
			t.Errorf("Suite(phoenix) returned %s kernel %s", k.Suite, k.Name)
		}
	}
	prev := ""
	for _, k := range Suite("parsec") {
		if k.Name < prev {
			t.Error("suite not sorted by name")
		}
		prev = k.Name
	}
}

// TestAllKernelsBuildAndValidate builds every kernel at several
// configurations; MustBuild panics on any validation failure.
func TestAllKernelsBuildAndValidate(t *testing.T) {
	cfgs := []Config{
		{}, // defaults
		{Threads: 1, Scale: 1},
		{Threads: 2, Scale: 1},
		{Threads: 8, Scale: 2},
	}
	for _, k := range All() {
		for _, cfg := range cfgs {
			p := k.Build(cfg)
			if err := p.Validate(); err != nil {
				t.Errorf("%s %+v: %v", k.Name, cfg, err)
			}
			if p.TotalOps() == 0 {
				t.Errorf("%s %+v: empty program", k.Name, cfg)
			}
		}
	}
}

// TestAllKernelsRunToCompletion is the big smoke test: every kernel under
// every policy must terminate without deadlock.
func TestAllKernelsRunToCompletion(t *testing.T) {
	policies := []demand.PolicyKind{demand.Off, demand.Continuous, demand.HITMDemand}
	for _, k := range All() {
		p := k.Build(Config{Threads: 4, Scale: 1})
		for _, pol := range policies {
			if _, err := runner.Run(p, runner.DefaultConfig().WithPolicy(pol)); err != nil {
				t.Errorf("%s under %v: %v", k.Name, pol, err)
			}
		}
	}
}

func TestPhoenixSuiteLowSharing(t *testing.T) {
	// The suite's defining property: well under a few percent of accesses
	// are cache-visible sharing.
	for _, k := range Suite("phoenix") {
		p := k.Build(DefaultConfig())
		r, err := runner.Run(p, runner.DefaultConfig().WithPolicy(demand.Off))
		if err != nil {
			t.Fatal(err)
		}
		if f := r.SharingFraction(); f > 0.05 {
			t.Errorf("%s sharing fraction = %.4f, want ≤ 0.05", k.Name, f)
		}
	}
}

func TestCleanKernelsReportNoRaces(t *testing.T) {
	// Every kernel not marked Racy — including micro_false_sharing, whose
	// threads touch distinct words — must be race-free under continuous
	// analysis.
	for _, k := range All() {
		if k.Racy || k.Suite == "racy" {
			continue
		}
		p := k.Build(Config{Threads: 4, Scale: 1})
		r, err := runner.Run(p, runner.DefaultConfig().WithPolicy(demand.Continuous))
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Races) != 0 {
			t.Errorf("%s: false positives: %v", k.Name, r.Races)
		}
	}
}

func TestFalseSharingKernelCleanToDetector(t *testing.T) {
	// Hardware sees sharing, detector must not report: the words differ.
	p := MicroFalseSharing(DefaultConfig())
	r, err := runner.Run(p, runner.DefaultConfig().WithPolicy(demand.Continuous))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Races) != 0 {
		t.Errorf("false sharing misreported as race: %v", r.Races)
	}
	if r.SharedHITM == 0 {
		t.Error("false sharing produced no HITM")
	}
}

func TestRacyKernelsReportRaces(t *testing.T) {
	for _, k := range Suite("racy") {
		if k.Name == "racy_lock_inversion" {
			// A lock-order hazard, not a data race: covered by
			// TestLockInversionFlaggedByDeadlockEngine.
			continue
		}
		p := k.Build(Config{Threads: 4, Scale: 1})
		r, err := runner.Run(p, runner.DefaultConfig().WithPolicy(demand.Continuous))
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Races) == 0 {
			t.Errorf("%s: continuous analysis found no races", k.Name)
		}
	}
}

func TestRacyKernelsFoundByDemand(t *testing.T) {
	// All racy kernels race repeatedly, so the demand-driven detector must
	// find at least one race in each.
	for _, k := range Suite("racy") {
		if k.Name == "racy_lock_inversion" {
			continue // no data race to find
		}
		p := k.Build(Config{Threads: 4, Scale: 2})
		cfg := runner.DefaultConfig().WithPolicy(demand.HITMDemand)
		r, err := runner.Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Races) == 0 {
			t.Errorf("%s: demand-driven analysis found no races", k.Name)
		}
	}
}

func TestMicroProducerConsumerHITMRate(t *testing.T) {
	p := MicroProducerConsumer(Config{Threads: 2, Scale: 1})
	r, err := runner.Run(p, runner.DefaultConfig().WithPolicy(demand.Off))
	if err != nil {
		t.Fatal(err)
	}
	// 100 iterations: the producer's store after the first iteration also
	// HITMs (consumer holds it Shared → store is clean-upgrade... no: after
	// consumer's load both are Shared, producer's next store is an S→M
	// upgrade, no HITM). Expect ≈1 HITM per iteration from the consumer.
	if r.SharedHITM < 95 {
		t.Errorf("HITM count = %d, want ≈100", r.SharedHITM)
	}
}

func TestMicroReadSharingNoSteadyHITM(t *testing.T) {
	p := MicroReadSharing(Config{Threads: 4, Scale: 1})
	r, err := runner.Run(p, runner.DefaultConfig().WithPolicy(demand.Off))
	if err != nil {
		t.Fatal(err)
	}
	// At most the initial dirty handoff(s) can HITM; steady-state reads
	// must not.
	if r.SharedHITM > 3 {
		t.Errorf("read sharing produced %d HITMs", r.SharedHITM)
	}
}

func TestMicroPrivateZeroSharing(t *testing.T) {
	p := MicroPrivate(DefaultConfig())
	r, err := runner.Run(p, runner.DefaultConfig().WithPolicy(demand.Off))
	if err != nil {
		t.Fatal(err)
	}
	if r.SharedHITM != 0 || r.SharedPeer != 0 {
		t.Errorf("private kernel shared: HITM=%d peer=%d", r.SharedHITM, r.SharedPeer)
	}
}

func TestMicroEvictionHidesSharingOnSmallCache(t *testing.T) {
	p := MicroEviction(Config{Threads: 2, Scale: 1})
	cfg := runner.DefaultConfig().WithPolicy(demand.Off)
	// A small L1 guarantees the churn evicts the shared line.
	cfg.Cache = cache.Config{Cores: 2, SMT: 1, L1Sets: 4, L1Ways: 2}
	r, err := runner.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The consumer's 20 loads of genuinely-shared data should mostly miss
	// to memory with no HITM.
	if r.SharedHITM > 2 {
		t.Errorf("eviction churn still produced %d HITMs", r.SharedHITM)
	}
	if r.Cache.Writebacks == 0 {
		t.Error("no writebacks despite churn")
	}
}

func TestSwaptionsIsBestCase(t *testing.T) {
	// The 51×-class program: essentially zero sharing and memory-bound.
	p := Swaptions(DefaultConfig())
	reps, err := runner.RunPolicies(p, runner.DefaultConfig(),
		demand.Continuous, demand.HITMDemand)
	if err != nil {
		t.Fatal(err)
	}
	speedup := reps[0].Slowdown / reps[1].Slowdown
	if speedup < 20 {
		t.Errorf("swaptions speedup = %.1f, want ≫ (≥20)", speedup)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	register(Kernel{Name: "histogram", Suite: "phoenix", Build: Histogram})
}

func TestLockInversionFlaggedByDeadlockEngine(t *testing.T) {
	p := RacyLockInversion(Config{Threads: 2, Scale: 2})
	cfg := runner.DefaultConfig().WithPolicy(demand.Continuous)
	cfg.Deadlock = true
	r, err := runner.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Races) != 0 {
		t.Errorf("lock-inversion kernel has no data race, got %v", r.Races)
	}
	if len(r.DeadlockReports) != 1 {
		t.Errorf("deadlock reports = %v", r.DeadlockReports)
	}
}

func TestAppsSuite(t *testing.T) {
	apps := Suite("apps")
	if len(apps) != 4 {
		t.Fatalf("apps suite = %d kernels", len(apps))
	}
	// All run to completion under demand analysis.
	for _, k := range apps {
		p := k.Build(Config{Threads: 4, Scale: 1})
		if _, err := runner.Run(p, runner.DefaultConfig().WithPolicy(demand.HITMDemand)); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestAppWebserverFindsOnlyTheHitCounterRace(t *testing.T) {
	p := AppWebserver(Config{Threads: 4, Scale: 1})
	r, err := runner.Run(p, runner.DefaultConfig().WithPolicy(demand.Continuous))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.RacyAddrs()); got != 1 {
		t.Fatalf("racy words = %d (%v), want exactly the hit counter", got, r.Races)
	}
	// The report carries the annotated region.
	if r.Races[0].CurRegion != "stats" && r.Races[0].PrevRegion != "stats" {
		t.Errorf("race not attributed to the stats region: %v", r.Races[0])
	}
}

func TestAppDCLPRaces(t *testing.T) {
	p := AppDCLP(Config{Threads: 4, Scale: 1})
	r, err := runner.Run(p, runner.DefaultConfig().WithPolicy(demand.Continuous))
	if err != nil {
		t.Fatal(err)
	}
	// Both the flag and payload words race.
	if len(r.RacyAddrs()) < 2 {
		t.Errorf("DCLP racy words = %v", r.RacyAddrs())
	}
}

func TestAppRingBufferCleanButHot(t *testing.T) {
	p := AppRingBuffer(Config{Threads: 2, Scale: 1})
	r, err := runner.Run(p, runner.DefaultConfig().WithPolicy(demand.Continuous))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Races) != 0 {
		t.Errorf("ring buffer races: %v", r.Races)
	}
	if r.SharingFraction() < 0.2 {
		t.Errorf("ring buffer sharing = %.3f, expected communication-heavy", r.SharingFraction())
	}
}

func TestAppWorkStealingClean(t *testing.T) {
	p := AppWorkStealing(Config{Threads: 4, Scale: 1})
	r, err := runner.Run(p, runner.DefaultConfig().WithPolicy(demand.Continuous))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Races) != 0 {
		t.Errorf("work stealing races: %v", r.Races)
	}
}

func TestSynthSpec(t *testing.T) {
	// Zero-sharing spec produces no HITM; unlocked sharing produces races;
	// locked sharing produces none.
	clean := Synth(SynthSpec{Threads: 4, Iters: 100})
	r, err := runner.Run(clean, runner.DefaultConfig().WithPolicy(demand.Continuous))
	if err != nil {
		t.Fatal(err)
	}
	if r.SharedHITM != 0 || len(r.Races) != 0 {
		t.Errorf("no-sharing synth: HITM=%d races=%d", r.SharedHITM, len(r.Races))
	}

	locked := Synth(SynthSpec{Threads: 4, Iters: 100, ShareEvery: 10})
	r, err = runner.Run(locked, runner.DefaultConfig().WithPolicy(demand.Continuous))
	if err != nil {
		t.Fatal(err)
	}
	if r.SharedHITM == 0 {
		t.Error("locked synth produced no sharing")
	}
	if len(r.Races) != 0 {
		t.Errorf("locked synth races: %v", r.Races)
	}

	racy := Synth(SynthSpec{Threads: 4, Iters: 100, ShareEvery: 10, Unlocked: true})
	r, err = runner.Run(racy, runner.DefaultConfig().WithPolicy(demand.Continuous))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Races) == 0 {
		t.Error("unlocked synth produced no races")
	}
}

func TestSynthName(t *testing.T) {
	s := SynthSpec{Threads: 2, Iters: 10, ShareEvery: 5}
	if s.Name() != "synth_t2_i10_s5_locked" {
		t.Errorf("Name = %q", s.Name())
	}
	s.Unlocked = true
	if s.Name() != "synth_t2_i10_s5_racy" {
		t.Errorf("Name = %q", s.Name())
	}
}
