// Package ingest is the streaming upload layer of the race-analysis
// service: resumable chunked trace uploads with analyze-while-receiving.
//
// A session is opened (POST /v1/traces), fed CRC-checked chunks in
// sequence (PUT /v1/traces/{id}/chunks/{seq}), and sealed with a commit
// (POST /v1/traces/{id}/commit). Three properties shape the protocol:
//
//   - Chunks are idempotent. A sequence number at the session's high-water
//     mark applies; one below it is a duplicate (a client retrying after a
//     lost ack) and is acknowledged without re-applying, verified against
//     the stored CRC so a *different* payload under an old seq is caught;
//     one above it is a gap the client must resync from (the status
//     endpoint reports the high-water mark to resume at).
//   - Analysis rides the stream. Each applied chunk feeds an incremental
//     decoder (trace.StreamDecoder) whose completed events advance a live
//     detector (trace.LiveReplay), so races surface while the upload is
//     still in flight — as partial reports and race_found bus events —
//     instead of after a post-hoc batch replay. The commit-time result is
//     byte-identical to the batch path on the same bytes.
//   - Backpressure is explicit. Session quota and concurrent-apply bounds
//     reject with typed errors the HTTP layer maps to 429 + Retry-After;
//     per-chunk and whole-stream size caps map to 413 via the same
//     *trace.LimitError the batch decoder uses.
//
// Idle sessions are garbage-collected: an upload abandoned mid-stream
// cannot pin detector shadow state forever.
package ingest

import (
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"log/slog"
	"sync"
	"time"

	"demandrace/internal/detector"
	"demandrace/internal/obs"
	olog "demandrace/internal/obs/log"
	"demandrace/internal/obs/stream"
	"demandrace/internal/trace"
)

// Session states, reported in SessionStatus.State.
const (
	StateReceiving = "receiving"
	StateCommitted = "committed"
	StateFailed    = "failed"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrNoSession reports an unknown (or GC-reclaimed) session ID (404).
	ErrNoSession = errors.New("ingest: no such session")
	// ErrSessionQuota rejects an open because too many sessions are live
	// (429 + Retry-After).
	ErrSessionQuota = errors.New("ingest: session quota exceeded")
	// ErrBusy rejects a chunk write because too many applies are in
	// flight (429 + Retry-After).
	ErrBusy = errors.New("ingest: too many chunk writes in flight")
	// ErrSealed rejects a chunk write to a committed session (409).
	ErrSealed = errors.New("ingest: session already committed")
	// ErrCommitPending rejects a concurrent duplicate commit (409; the
	// first commit is still registering its job).
	ErrCommitPending = errors.New("ingest: commit in progress")
)

// GapError rejects a chunk whose sequence number skips ahead of the
// session's high-water mark; the client should resync from Want (409).
type GapError struct {
	Seq, Want uint64
}

func (e *GapError) Error() string {
	return fmt.Sprintf("ingest: chunk seq %d skips ahead (next expected %d)", e.Seq, e.Want)
}

// CRCError rejects a chunk whose payload does not match its declared or
// previously-stored CRC — transport corruption or a client replaying a
// different payload under an old sequence number.
type CRCError struct {
	Seq       uint64
	Want, Got uint32
}

func (e *CRCError) Error() string {
	return fmt.Sprintf("ingest: chunk %d crc mismatch (want %08x, got %08x)", e.Seq, e.Want, e.Got)
}

// FailedError reports an operation on a session that already failed
// (decode error on an earlier chunk); Reason is the original failure.
type FailedError struct {
	Reason string
}

func (e *FailedError) Error() string {
	return "ingest: session failed: " + e.Reason
}

// IncompleteError rejects a commit of a stream that ended short of its
// declared event count.
type IncompleteError struct {
	Decoded, Declared uint64
	Cause             error
}

func (e *IncompleteError) Error() string {
	return fmt.Sprintf("ingest: commit of incomplete stream (%d of %d events): %v",
		e.Decoded, e.Declared, e.Cause)
}

// castagnoli is the chunk-checksum polynomial (CRC-32C, the one storage
// systems use; distinct from the IEEE polynomial internal/store uses for
// its on-disk records, so a cross-wired checksum cannot accidentally pass).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC-32C a client should declare for a chunk (the
// X-Chunk-Crc32c request header).
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// Config shapes a Manager. Zero fields take defaults.
type Config struct {
	// MaxSessions bounds concurrently live sessions (default 64).
	MaxSessions int
	// MaxInflight bounds concurrent chunk applies across all sessions
	// (default 2× MaxSessions); excess writes get ErrBusy.
	MaxInflight int
	// MaxChunkBytes bounds one chunk's payload (default 4 MiB).
	MaxChunkBytes int64
	// Limits bound the whole decoded stream, mirroring the batch upload
	// path (byte cap enforced on total fed bytes, event cap on the
	// declared count).
	Limits trace.DecodeLimits
	// IdleTimeout is how long a session may sit without a write before
	// the GC reclaims it (default 2m). Committed sessions idle out too —
	// their sealed result lives in the job store, the session only backs
	// the partial endpoint.
	IdleTimeout time.Duration
	// GCInterval paces the idle sweep (default IdleTimeout/4, floored at
	// 1s).
	GCInterval time.Duration
	// Node names the process in span tracks and bus events.
	Node string
	// Registry receives ingest metrics. Nil builds a private one.
	Registry *obs.Registry
	// Log receives operational logs. Nil discards them.
	Log *slog.Logger
	// Bus receives trace_chunk and race_found events. Nil is a no-op.
	Bus *stream.Bus
}

func (c Config) normalized() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * c.MaxSessions
	}
	if c.MaxChunkBytes <= 0 {
		c.MaxChunkBytes = 4 << 20
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.GCInterval <= 0 {
		c.GCInterval = c.IdleTimeout / 4
		if c.GCInterval < time.Second {
			c.GCInterval = time.Second
		}
	}
	if c.Node == "" {
		c.Node = "ddserved"
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Log == nil {
		c.Log = olog.Discard()
	}
	return c
}

// OpenOptions parameterize one session.
type OpenOptions struct {
	// Detector configures the live detector. The caller normalizes report
	// caps (the service maps MaxReports 0 → 1 exactly like its batch
	// replay), so commit-time results match the batch path.
	Detector detector.Options
	// Hash accumulates the session's raw bytes into the result's cache
	// key. The service seeds it with the same option prefix
	// TraceCacheKey uses, so a streamed upload and a batch upload of the
	// same bytes share one content address. Nil skips key computation.
	Hash hash.Hash
}

// chunkMeta remembers an applied chunk for duplicate verification without
// retaining its payload.
type chunkMeta struct {
	crc uint32
	len int
}

// Session is one resumable upload. All fields are guarded by mu; the
// manager holds its own lock only for the session map, so slow decodes on
// one session never block chunks of another.
type Session struct {
	ID string

	mu         sync.Mutex
	state      string
	failReason string
	dec        *trace.StreamDecoder
	live       *trace.LiveReplay
	hash       hash.Hash
	chunks     []chunkMeta
	bytes      int64
	lastActive time.Time
	rec        *obs.SpanRecorder
	jobID      string
	key        string
	// commitsnap holds the sealed result between Commit and SetJob so a
	// repeated commit after the job registered can answer idempotently.
	committedAt time.Time
}

// touchLocked refreshes the idle clock; callers hold s.mu.
func (s *Session) touchLocked() { s.lastActive = time.Now() }

// Commit is the sealed outcome of a session, everything the service needs
// to register the job: the reassembled trace, the final detector, the
// content key, and the session's span recorder (chunk_receive /
// incremental_decode stages) for the job's waterfall.
type Commit struct {
	Trace    *trace.Trace
	Detector *detector.Detector
	Key      string
	Bytes    int64
	Rec      *obs.SpanRecorder
	// JobID is non-empty when the session was already sealed: the commit
	// is an idempotent replay and the caller should serve the existing
	// job instead of registering a new one.
	JobID string
}

// SessionStatus is the external snapshot of a session, served as JSON at
// GET /v1/traces/{id} and (with high_water) the client's resume handle.
type SessionStatus struct {
	Session   string `json:"session"`
	State     string `json:"state"`
	HighWater uint64 `json:"high_water"`
	Bytes     int64  `json:"bytes"`
	Events    uint64 `json:"events"`
	Races     int    `json:"races"`
	Program   string `json:"program,omitempty"`
	Job       string `json:"job,omitempty"`
	// MaxChunkBytes tells the client the largest chunk the server will
	// accept, so it can size its splits without a 413 round trip.
	MaxChunkBytes int64  `json:"max_chunk_bytes,omitempty"`
	Error         string `json:"error,omitempty"`
}

// Ack acknowledges one chunk write. HighWater is the next expected
// sequence number — after a duplicate it simply repeats the current mark,
// so a client can always continue from HighWater regardless of which
// branch the server took.
type Ack struct {
	Session   string `json:"session"`
	Seq       uint64 `json:"seq"`
	Duplicate bool   `json:"duplicate,omitempty"`
	HighWater uint64 `json:"high_water"`
	Bytes     int64  `json:"bytes"`
	Events    uint64 `json:"events"`
	Races     int    `json:"races"`
}

// Partial is the mid-stream race report served at GET /v1/jobs/{id}/partial.
type Partial struct {
	Session   string            `json:"session"`
	State     string            `json:"state"`
	Job       string            `json:"job,omitempty"`
	Program   string            `json:"program,omitempty"`
	HighWater uint64            `json:"high_water"`
	Bytes     int64             `json:"bytes"`
	Events    uint64            `json:"events"`
	Races     []detector.Report `json:"races"`
}

// Manager owns the session table: open/append/commit, quotas, and the
// idle GC.
type Manager struct {
	cfg Config
	log *slog.Logger
	bus *stream.Bus

	mu       sync.Mutex
	sessions map[string]*Session
	byJob    map[string]string // job ID → session ID, for partial-by-job
	seq      uint64
	inflight int

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	started  bool

	gOpen      *obs.Gauge
	cOpened    *obs.Counter
	cCommitted *obs.Counter
	cExpired   *obs.Counter
	cFailed    *obs.Counter
	cChunks    *obs.Counter
	cDupes     *obs.Counter
	cBytes     *obs.Counter
	cEvents    *obs.Counter
	cRaces     *obs.Counter
	cRejected  *obs.Counter
}

// NewManager builds a stopped manager; call Start to launch the idle GC.
func NewManager(cfg Config) *Manager {
	cfg = cfg.normalized()
	return &Manager{
		cfg:        cfg,
		log:        cfg.Log,
		bus:        cfg.Bus,
		sessions:   make(map[string]*Session),
		byJob:      make(map[string]string),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		gOpen:      cfg.Registry.Gauge(obs.IngestSessionsOpen),
		cOpened:    cfg.Registry.Counter(obs.IngestSessionsOpened),
		cCommitted: cfg.Registry.Counter(obs.IngestSessionsCommitted),
		cExpired:   cfg.Registry.Counter(obs.IngestSessionsExpired),
		cFailed:    cfg.Registry.Counter(obs.IngestSessionsFailed),
		cChunks:    cfg.Registry.Counter(obs.IngestChunks),
		cDupes:     cfg.Registry.Counter(obs.IngestChunkDupes),
		cBytes:     cfg.Registry.Counter(obs.IngestChunkBytes),
		cEvents:    cfg.Registry.Counter(obs.IngestEvents),
		cRaces:     cfg.Registry.Counter(obs.IngestRaces),
		cRejected:  cfg.Registry.Counter(obs.IngestRejected),
	}
}

// Config returns the manager's normalized configuration.
func (m *Manager) Config() Config { return m.cfg }

// Start launches the idle-session GC. Idempotent.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	go m.gcLoop()
}

// Stop halts the GC loop. Safe if Start was never called.
func (m *Manager) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.mu.Lock()
	started := m.started
	m.mu.Unlock()
	if started {
		<-m.done
	}
}

// Open creates a session, enforcing the session quota.
func (m *Manager) Open(opts OpenOptions) (SessionStatus, error) {
	m.mu.Lock()
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		m.cRejected.Inc()
		return SessionStatus{}, ErrSessionQuota
	}
	m.seq++
	s := &Session{
		ID:         fmt.Sprintf("s-%d", m.seq),
		state:      StateReceiving,
		dec:        trace.NewStreamDecoder(m.cfg.Limits),
		live:       trace.NewLiveReplay(opts.Detector),
		hash:       opts.Hash,
		lastActive: time.Now(),
		rec:        obs.NewSpanRecorder(m.cfg.Node, 0),
	}
	m.sessions[s.ID] = s
	m.gOpen.Set(int64(len(m.sessions)))
	m.mu.Unlock()
	m.cOpened.Inc()
	m.log.Info("ingest session open", "session", s.ID)
	return m.statusOf(s), nil
}

// lookup returns the session or ErrNoSession.
func (m *Manager) lookup(id string) (*Session, error) {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return nil, ErrNoSession
	}
	return s, nil
}

// Append applies one chunk. declaredCRC, when non-nil, is the client's
// CRC-32C for the payload (the X-Chunk-Crc32c header) and is verified
// before anything is applied. See the package comment for the
// duplicate/gap protocol.
func (m *Manager) Append(id string, seq uint64, data []byte, declaredCRC *uint32) (Ack, error) {
	// Inflight bound first: it protects the decode/analyze work, so it is
	// checked before any of that work starts.
	m.mu.Lock()
	if m.inflight >= m.cfg.MaxInflight {
		m.mu.Unlock()
		m.cRejected.Inc()
		return Ack{}, ErrBusy
	}
	m.inflight++
	s := m.sessions[id]
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.inflight--
		m.mu.Unlock()
	}()
	if s == nil {
		return Ack{}, ErrNoSession
	}

	if int64(len(data)) > m.cfg.MaxChunkBytes {
		m.cRejected.Inc()
		return Ack{}, &trace.LimitError{
			What: "chunk bytes", Limit: uint64(m.cfg.MaxChunkBytes), Got: uint64(len(data)),
		}
	}
	crc := Checksum(data)
	if declaredCRC != nil && *declaredCRC != crc {
		m.cRejected.Inc()
		return Ack{}, &CRCError{Seq: seq, Want: *declaredCRC, Got: crc}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.touchLocked()
	switch s.state {
	case StateCommitted:
		return Ack{}, ErrSealed
	case StateFailed:
		return Ack{}, &FailedError{Reason: s.failReason}
	}
	high := uint64(len(s.chunks))
	if seq < high {
		// Duplicate: the client never saw our ack. Verify it really is the
		// same chunk, then acknowledge without re-applying.
		prev := s.chunks[seq]
		if prev.crc != crc || prev.len != len(data) {
			m.cRejected.Inc()
			return Ack{}, &CRCError{Seq: seq, Want: prev.crc, Got: crc}
		}
		m.cDupes.Inc()
		m.log.Debug("ingest duplicate chunk", "session", s.ID, "seq", seq)
		return m.ackLocked(s, seq, true), nil
	}
	if seq > high {
		m.cRejected.Inc()
		return Ack{}, &GapError{Seq: seq, Want: high}
	}

	recvStart := time.Now()
	decStart := recvStart
	events, err := s.dec.Feed(data)
	if err != nil {
		m.failLocked(s, err)
		return Ack{}, err
	}
	prevRaces := len(s.live.Races())
	for _, e := range events {
		s.live.Apply(e)
	}
	decDur := time.Since(decStart)
	if s.hash != nil {
		s.hash.Write(data)
	}
	s.chunks = append(s.chunks, chunkMeta{crc: crc, len: len(data)})
	s.bytes += int64(len(data))

	s.rec.Add(obs.SpanRecord{
		Name: "incremental_decode", Start: decStart, Dur: decDur,
		Attrs: []obs.SpanAttr{
			{Key: "seq", Value: fmt.Sprint(seq)},
			{Key: "events", Value: fmt.Sprint(len(events))},
		},
	})
	s.rec.Add(obs.SpanRecord{
		Name: "chunk_receive", Start: recvStart, Dur: time.Since(recvStart),
		Attrs: []obs.SpanAttr{
			{Key: "seq", Value: fmt.Sprint(seq)},
			{Key: "bytes", Value: fmt.Sprint(len(data))},
		},
	})

	m.cChunks.Inc()
	m.cBytes.Add(uint64(len(data)))
	m.cEvents.Add(uint64(len(events)))

	races := s.live.Races()
	m.bus.Publish(stream.Event{
		Type: stream.TypeTraceChunk, Job: s.ID,
		Detail: map[string]string{
			"seq":    fmt.Sprint(seq),
			"bytes":  fmt.Sprint(len(data)),
			"events": fmt.Sprint(s.dec.Decoded()),
			"races":  fmt.Sprint(len(races)),
		},
	})
	for _, r := range races[prevRaces:] {
		m.cRaces.Inc()
		m.log.Info("race found mid-stream", "session", s.ID,
			"addr", fmt.Sprint(r.Addr), "kind", r.Kind.String())
		m.bus.Publish(stream.Event{
			Type: stream.TypeRaceFound, Job: s.ID,
			Detail: map[string]string{
				"addr": fmt.Sprint(r.Addr),
				"kind": r.Kind.String(),
				"cur":  fmt.Sprint(r.Cur),
				"prev": fmt.Sprint(r.Prev),
			},
		})
	}
	return m.ackLocked(s, seq, false), nil
}

// ackLocked snapshots an Ack; callers hold s.mu.
func (m *Manager) ackLocked(s *Session, seq uint64, dup bool) Ack {
	return Ack{
		Session:   s.ID,
		Seq:       seq,
		Duplicate: dup,
		HighWater: uint64(len(s.chunks)),
		Bytes:     s.bytes,
		Events:    s.dec.Decoded(),
		Races:     len(s.live.Races()),
	}
}

// failLocked moves the session to the failed state; callers hold s.mu.
func (m *Manager) failLocked(s *Session, err error) {
	s.state = StateFailed
	s.failReason = err.Error()
	m.cFailed.Inc()
	m.log.Warn("ingest session failed", "session", s.ID, "error", err.Error())
}

// Commit seals the session: the decoder must have seen the full declared
// stream, and the returned Commit carries everything needed to register
// the sealed job. A commit replayed after the job registered returns a
// Commit with only JobID set.
func (m *Manager) Commit(id string) (*Commit, error) {
	s, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touchLocked()
	switch s.state {
	case StateFailed:
		return nil, &FailedError{Reason: s.failReason}
	case StateCommitted:
		if s.jobID == "" {
			return nil, ErrCommitPending
		}
		return &Commit{JobID: s.jobID, Key: s.key, Bytes: s.bytes, Rec: s.rec}, nil
	}
	if err := s.dec.Finish(); err != nil {
		ie := &IncompleteError{Decoded: s.dec.Decoded(), Declared: s.dec.Declared(), Cause: err}
		m.failLocked(s, ie)
		return nil, ie
	}
	s.state = StateCommitted
	s.committedAt = time.Now()
	if s.hash != nil {
		s.key = fmt.Sprintf("%x", s.hash.Sum(nil))
	}
	m.cCommitted.Inc()
	m.log.Info("ingest session committed", "session", s.ID,
		"chunks", len(s.chunks), "bytes", s.bytes, "events", s.dec.Decoded(),
		"races", len(s.live.Races()), "rebuilds", s.live.Rebuilds())
	return &Commit{
		Trace:    &trace.Trace{Program: s.dec.Program(), Events: s.live.Events()},
		Detector: s.live.Detector(),
		Key:      s.key,
		Bytes:    s.bytes,
		Rec:      s.rec,
	}, nil
}

// SetJob binds the registered job ID to a committed session, completing
// the commit handshake: later Status/Partial calls (by session or job ID)
// carry it, and a replayed commit answers with it.
func (m *Manager) SetJob(id, jobID string) {
	s, err := m.lookup(id)
	if err != nil {
		return
	}
	s.mu.Lock()
	s.jobID = jobID
	s.mu.Unlock()
	m.mu.Lock()
	m.byJob[jobID] = id
	m.mu.Unlock()
}

// Status snapshots a session.
func (m *Manager) Status(id string) (SessionStatus, error) {
	s, err := m.lookup(id)
	if err != nil {
		return SessionStatus{}, err
	}
	return m.statusOf(s), nil
}

func (m *Manager) statusOf(s *Session) SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStatus{
		Session:       s.ID,
		State:         s.state,
		HighWater:     uint64(len(s.chunks)),
		Bytes:         s.bytes,
		Events:        s.dec.Decoded(),
		Races:         len(s.live.Races()),
		Program:       s.dec.Program(),
		Job:           s.jobID,
		MaxChunkBytes: m.cfg.MaxChunkBytes,
		Error:         s.failReason,
	}
}

// Partial returns the races found so far. id may be a session ID or the
// job ID of a committed session (after commit, the partial view is simply
// the complete race list).
func (m *Manager) Partial(id string) (Partial, error) {
	m.mu.Lock()
	if sid, ok := m.byJob[id]; ok {
		id = sid
	}
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return Partial{}, ErrNoSession
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Copy: the live slice grows (and is re-derived on rebuilds) while
	// other chunks apply.
	races := append([]detector.Report(nil), s.live.Races()...)
	return Partial{
		Session:   s.ID,
		State:     s.state,
		Job:       s.jobID,
		Program:   s.dec.Program(),
		HighWater: uint64(len(s.chunks)),
		Bytes:     s.bytes,
		Events:    s.dec.Decoded(),
		Races:     races,
	}, nil
}

// Len returns the live session count.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// gcLoop sweeps idle sessions until Stop.
func (m *Manager) gcLoop() {
	defer close(m.done)
	tick := time.NewTicker(m.cfg.GCInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.sweep(time.Now())
		}
	}
}

// sweep reclaims sessions idle past the timeout. Exported indirectly via
// SweepNow for tests and deterministic drains.
func (m *Manager) sweep(now time.Time) {
	cutoff := now.Add(-m.cfg.IdleTimeout)
	m.mu.Lock()
	var expired []*Session
	for id, s := range m.sessions {
		s.mu.Lock()
		idle := s.lastActive.Before(cutoff)
		state := s.state
		jobID := s.jobID
		s.mu.Unlock()
		if !idle {
			continue
		}
		delete(m.sessions, id)
		if jobID != "" {
			delete(m.byJob, jobID)
		}
		if state == StateReceiving {
			expired = append(expired, s)
		}
	}
	m.gOpen.Set(int64(len(m.sessions)))
	m.mu.Unlock()
	for _, s := range expired {
		m.cExpired.Inc()
		m.log.Warn("ingest session expired", "session", s.ID)
	}
}

// SweepNow runs one idle sweep immediately (tests, drain paths).
func (m *Manager) SweepNow() { m.sweep(time.Now()) }
