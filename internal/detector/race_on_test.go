//go:build race

package detector_test

// raceEnabled reports whether the Go race detector instruments this build.
// The allocation-regression tests skip under -race: its runtime allocates
// shadow bookkeeping on paths that are allocation-free in a plain build.
const raceEnabled = true
