// Package runner wires one program through the whole reproduction pipeline:
// deterministic scheduler → cache hierarchy → PMU → demand controller →
// race detectors → cost model, and collects everything the experiments
// report into a single Report.
//
// A Run is a pure function of (program, config): the scheduler is
// deterministic, the PMU's only nondeterminism is seeded, and the analysis
// policy does not perturb the interleaving. Comparing two policies on the
// same program therefore compares them on the *identical* execution, which
// is the property that makes the accuracy experiments meaningful.
//
// Purity also makes Run safe to call from many goroutines at once, on the
// same or different programs: every piece of mutable state (caches, PMU,
// detectors, accumulators) is built inside the call, and the Program is
// never written after construction. RunPoliciesParallel and ExploreWorkers
// exploit this through internal/parallel's bounded worker pool; their
// results are merged in submission order, so they are drop-in replacements
// for the serial loops with byte-identical output.
package runner

import (
	"context"
	"fmt"

	"demandrace/internal/cache"
	"demandrace/internal/cost"
	"demandrace/internal/deadlock"
	"demandrace/internal/demand"
	"demandrace/internal/detector"
	"demandrace/internal/lockset"
	"demandrace/internal/obs"
	"demandrace/internal/parallel"
	"demandrace/internal/perf"
	"demandrace/internal/prof"
	"demandrace/internal/program"
	"demandrace/internal/sched"
	"demandrace/internal/trace"
	"demandrace/internal/vclock"
)

// Config assembles one run. Zero fields take defaults.
type Config struct {
	// Cache sizes the simulated hierarchy (default cache.DefaultConfig).
	Cache cache.Config
	// Sched controls interleaving; Contexts is forced to the cache's
	// context count.
	Sched sched.Config
	// PMU programs the counters; Contexts and Sel are forced from the
	// cache configuration and the policy.
	PMU perf.Config
	// Demand selects the analysis policy.
	Demand demand.Config
	// Detector configures the happens-before engine.
	Detector detector.Options
	// Cost is the cycle model (default cost.Default).
	Cost cost.Model
	// Lockset additionally runs the Eraser engine over the same gated
	// access stream.
	Lockset bool
	// Tracer, when non-nil, records every executed op for offline replay.
	Tracer *trace.Recorder
	// Deadlock additionally runs the lock-order (potential-deadlock)
	// engine over the analyzed lock operations.
	Deadlock bool
	// Trace, when non-nil, records cycle-timestamped pipeline telemetry
	// (HITMs, PMU overflows and skidded deliveries, mode transitions,
	// race reports) across every stage. Timestamps come from the cost
	// model's tool clock, so traces are deterministic.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives the run's counters at completion.
	// Only counters and histograms are published, so one registry may be
	// shared across parallel runs and still export deterministic totals.
	Metrics *obs.Registry
	// Prof, when non-nil, samples (thread, analysis-mode, kernel-site)
	// every N simulated cycles against the cost model's tool clock. The
	// resulting profile is deterministic and lands in Report.Profile.
	Prof *prof.Profiler
}

// DefaultConfig is a 4-core machine running the paper's demand-driven
// policy at its default operating point.
func DefaultConfig() Config {
	cc := cache.DefaultConfig()
	return Config{
		Cache:  cc,
		Sched:  sched.DefaultConfig(cc.Contexts()),
		PMU:    perf.DefaultConfig(cc.Contexts()),
		Demand: demand.DefaultConfig(),
		Cost:   cost.Default(),
	}
}

// WithPolicy returns a copy of c running under kind.
func (c Config) WithPolicy(kind demand.PolicyKind) Config {
	c.Demand.Kind = kind
	return c
}

func (c Config) normalized() Config {
	if c.Cache.Cores == 0 {
		c.Cache = cache.DefaultConfig()
	}
	if c.Sched.Quantum == 0 {
		c.Sched = sched.DefaultConfig(c.Cache.Contexts())
	}
	c.Sched.Contexts = c.Cache.Contexts()
	if c.PMU.SampleAfter == 0 {
		c.PMU = perf.DefaultConfig(c.Cache.Contexts())
	}
	c.PMU.Contexts = c.Cache.Contexts()
	if c.Demand.Kind == demand.Hybrid {
		// The hybrid trigger uses two real hardware counters — HITM and
		// received invalidations — each with its own overflow threshold,
		// as the four-counter PMU allows.
		c.PMU.Sel = perf.SelHITM
		c.PMU.Extra = []perf.CounterConfig{{Sel: perf.SelInvalidation, SampleAfter: c.PMU.SampleAfter}}
	} else {
		c.PMU.Sel = c.Demand.Kind.Selector()
		c.PMU.Extra = nil
	}
	if c.Cost.AnalysisMem == 0 {
		c.Cost = cost.Default()
	}
	return c
}

// Report is the complete result of one run.
type Report struct {
	Program string
	Policy  demand.PolicyKind

	// NativeCycles and ToolCycles are the cost model's totals; Slowdown is
	// their ratio. Cost attributes the tool cycles by source.
	NativeCycles uint64
	ToolCycles   uint64
	Slowdown     float64
	Cost         cost.Breakdown

	// Races are the happens-before reports.
	Races []detector.Report
	// LocksetReports are the Eraser engine's findings (when enabled).
	LocksetReports []lockset.Report
	// DeadlockReports are the lock-order engine's findings (when enabled).
	DeadlockReports []deadlock.Report

	// MemOps is the number of executed data accesses; SharedHITM of those
	// were served by a remote Modified line, SharedPeer by any peer cache.
	MemOps     uint64
	SharedHITM uint64
	SharedPeer uint64

	Cache cache.Stats
	// Cores holds each simulated core's access profile.
	Cores  []cache.CoreStats
	PMU    perf.Stats
	Demand demand.Stats
	// Threads holds per-thread analysis residency.
	Threads  []demand.ThreadResidency
	Detector detector.Stats
	// Steps is the scheduler's executed-op count.
	Steps uint64
	// Timeline holds each thread's fast/analysis spans in simulated
	// cycles, derived from the telemetry trace (nil unless Config.Trace
	// was set). The report package renders it as the mode-timeline
	// section.
	Timeline []obs.Span
	// Profile is the deterministic cycle profile (nil unless Config.Prof
	// was set): sample counts by (thread, mode, kernel site), ready for
	// folded-stack export.
	Profile *prof.Profile `json:",omitempty"`
}

// SharingFraction is the fraction of data accesses that hit a remote
// Modified line — the paper's "how rare is sharing" statistic.
func (r *Report) SharingFraction() float64 {
	if r.MemOps == 0 {
		return 0
	}
	return float64(r.SharedHITM) / float64(r.MemOps)
}

// RacyAddrs returns the distinct racy words.
func (r *Report) RacyAddrs() map[string]bool {
	m := map[string]bool{}
	for _, rc := range r.Races {
		m[rc.Addr.String()] = true
	}
	return m
}

func (r *Report) String() string {
	return fmt.Sprintf("%s[%s]: slowdown %.2f×, %d races, %.4f shared",
		r.Program, r.Policy, r.Slowdown, len(r.Races), r.SharingFraction())
}

// executor is the sched.Executor gluing the pipeline together.
type executor struct {
	cfg   Config
	prog  *program.Program
	hier  *cache.Hierarchy
	pmu   *perf.PMU
	ctl   *demand.Controller
	det   *detector.Detector
	ls    *lockset.Detector
	dl    *deadlock.Detector
	acc   *cost.Accumulator
	rep   *Report
	track bool // policy != Off: detector active at all
}

func (e *executor) Exec(t vclock.TID, ctx cache.Context, op program.Op) {
	switch op.Kind {
	case program.OpLoad, program.OpStore, program.OpAtomicLoad, program.OpAtomicStore:
		// The instrumentation decision reflects the thread's mode at the
		// op's start; the access's own HITM (if any) can only influence
		// later ops, as on real hardware.
		analyzed := e.ctl.ShouldAnalyze(t, op)
		res := e.hier.Access(ctx, op.Addr, op.Kind.IsWrite())
		e.pmu.Retire(ctx)
		if e.cfg.Tracer != nil {
			e.cfg.Tracer.RecordOp(t, ctx, op, res.HITM, analyzed && e.track)
		}
		e.rep.MemOps++
		if res.HITM {
			e.rep.SharedHITM++
			// Instrumented code observes its own sharing; the controller
			// uses it to keep analysis alive while the PMU is disarmed.
			e.ctl.NoteSharing(t)
		}
		if res.SrcCore >= 0 {
			e.rep.SharedPeer++
		}
		switch op.Kind {
		case program.OpLoad:
			e.acc.Mem(res.Latency, analyzed)
			if analyzed && e.track {
				e.det.OnRead(t, op.Addr)
				if e.ls != nil {
					e.ls.OnRead(t, op.Addr)
				}
			}
		case program.OpStore:
			e.acc.Mem(res.Latency, analyzed)
			if analyzed && e.track {
				e.det.OnWrite(t, op.Addr)
				if e.ls != nil {
					e.ls.OnWrite(t, op.Addr)
				}
			}
		case program.OpAtomicLoad:
			// Atomics are synchronization: the access itself runs on the
			// hardware (and can HITM) while the detector takes the
			// happens-before edge.
			e.acc.Mem(res.Latency, false)
			e.acc.Sync(analyzed)
			if analyzed && e.track {
				e.det.OnAtomicLoad(t, op.Addr)
			}
		case program.OpAtomicStore:
			e.acc.Mem(res.Latency, false)
			e.acc.Sync(analyzed)
			if analyzed && e.track {
				e.det.OnAtomicStore(t, op.Addr)
			}
		}
	case program.OpLock:
		analyzed := e.ctl.ShouldAnalyze(t, op)
		e.acc.Sync(analyzed)
		e.pmu.Retire(ctx)
		e.traceSync(t, ctx, op, analyzed)
		if analyzed && e.track {
			e.det.OnLock(t, op.Sync)
			if e.ls != nil {
				e.ls.OnLock(t, op.Sync)
			}
			if e.dl != nil {
				e.dl.OnLock(t, op.Sync)
			}
		}
	case program.OpUnlock:
		analyzed := e.ctl.ShouldAnalyze(t, op)
		e.acc.Sync(analyzed)
		e.pmu.Retire(ctx)
		e.traceSync(t, ctx, op, analyzed)
		if analyzed && e.track {
			e.det.OnUnlock(t, op.Sync)
			if e.ls != nil {
				e.ls.OnUnlock(t, op.Sync)
			}
			if e.dl != nil {
				e.dl.OnUnlock(t, op.Sync)
			}
		}
	case program.OpSignal:
		analyzed := e.ctl.ShouldAnalyze(t, op)
		e.acc.Sync(analyzed)
		e.pmu.Retire(ctx)
		e.traceSync(t, ctx, op, analyzed)
		if analyzed && e.track {
			e.det.OnSignal(t, op.Sync)
		}
	case program.OpWait:
		analyzed := e.ctl.ShouldAnalyze(t, op)
		e.acc.Sync(analyzed)
		e.pmu.Retire(ctx)
		e.traceSync(t, ctx, op, analyzed)
		if analyzed && e.track {
			e.det.OnWait(t, op.Sync)
		}
	case program.OpCompute:
		e.acc.Compute(op.N)
		e.pmu.Retire(ctx)
		if e.cfg.Tracer != nil {
			e.cfg.Tracer.RecordOp(t, ctx, op, false, false)
		}
	case program.OpMark:
		// Region annotations are free metadata: they retag the thread for
		// subsequent race reports under every policy that tracks at all.
		label := e.prog.LabelOf(op)
		if e.track {
			e.det.SetRegion(t, label)
		}
		if e.cfg.Tracer != nil {
			e.cfg.Tracer.RecordMark(t, ctx, label)
		}
		e.cfg.Prof.Mark(int(t), label)
	}
	if e.cfg.Prof != nil {
		// The op above advanced the tool clock; attribute any sampling
		// boundaries it crossed to the thread that was executing.
		e.cfg.Prof.Tick(int(t), e.ctl.Analyzing(t))
	}
}

func (e *executor) traceSync(t vclock.TID, ctx cache.Context, op program.Op, analyzed bool) {
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.RecordOp(t, ctx, op, false, analyzed && e.track)
	}
}

func (e *executor) BarrierRelease(id program.SyncID, parties []vclock.TID) {
	analyzedAny := false
	for _, p := range parties {
		if e.ctl.ShouldAnalyze(p, program.Op{Kind: program.OpBarrier, Sync: id}) {
			analyzedAny = true
			e.acc.Sync(true)
		} else {
			e.acc.Sync(false)
		}
		if e.cfg.Prof != nil {
			e.cfg.Prof.Tick(int(p), e.ctl.Analyzing(p))
		}
	}
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.RecordBarrier(id, parties, analyzedAny && e.track)
	}
	if analyzedAny && e.track {
		e.det.OnBarrierRelease(parties)
	}
}

// Run executes p under cfg and returns the full report.
func Run(p *program.Program, cfg Config) (*Report, error) {
	return RunContext(context.Background(), p, cfg)
}

// RunContext is Run with a deadline/cancellation context. The context is
// checked at scheduler-quantum boundaries — the finest point at which the
// simulation can stop without tearing an operation — so even multi-second
// runs abort promptly. A canceled run returns an error satisfying
// errors.Is(err, ctx.Err()); no partial Report is produced, because every
// statistic in a Report is defined over a completed execution.
func RunContext(ctx context.Context, p *program.Program, cfg Config) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()

	hier := cache.New(cfg.Cache)
	pmu := perf.New(cfg.PMU)
	hier.SetEventSink(pmu.Observe)

	sc, err := sched.New(p, cfg.Sched)
	if err != nil {
		return nil, err
	}
	ctl := demand.New(cfg.Demand, p.NumThreads(), sc.CtxOf, hier.CoreOf)
	det := detector.ForProgram(p, cfg.Detector)
	acc := cost.NewAccumulator(cfg.Cost)

	if cfg.Trace != nil {
		// Telemetry timestamps are the tool clock: simulated cycles under
		// the attached tool, advancing deterministically with the run.
		cfg.Trace.SetClock(acc.ToolCycles)
		hier.SetTracer(cfg.Trace)
		pmu.SetTracer(cfg.Trace)
		ctl.SetTracer(cfg.Trace)
		det.SetTracer(cfg.Trace)
	}
	if cfg.Prof != nil {
		// The profiler samples against the same tool clock the telemetry
		// uses, so profiles inherit the determinism contract. It also shares
		// the detector's region-ID table: one label namespace per run, and
		// OpMark interns each label once for both consumers.
		cfg.Prof.SetClock(acc.ToolCycles)
		cfg.Prof.ShareSites(det.RegionTable())
		cfg.Prof.SetThreads(p.NumThreads())
	}

	rep := &Report{Program: p.Name, Policy: cfg.Demand.Kind}
	ex := &executor{
		cfg: cfg, prog: p, hier: hier, pmu: pmu, ctl: ctl, det: det, acc: acc,
		rep: rep, track: cfg.Demand.Kind != demand.Off,
	}
	if cfg.Lockset {
		ex.ls = lockset.New(p.NumThreads())
	}
	if cfg.Deadlock {
		ex.dl = deadlock.New(p.NumThreads())
	}

	demandPolicy := cfg.Demand.Kind.Demand()
	pmu.SetHandler(func(s perf.Sample) {
		if demandPolicy {
			acc.Interrupt()
		}
		ctl.OnSample(s)
	})
	if demandPolicy {
		// Mirror the paper: the HITM counter is disarmed while a context's
		// threads are all in analysis mode (the signal is redundant there)
		// and re-armed when a thread decays back to fast execution.
		ctl.SetCounterControl(pmu.SetEnabled)
	}

	if err := sc.RunContext(ctx, ex); err != nil {
		return nil, err
	}
	pmu.DrainAll()

	dst := ctl.Stats()
	if cfg.Demand.Kind == demand.WatchDemand {
		// Watchpoint arming writes a debug register instead of re-patching
		// instrumentation; expiration is free.
		acc.WatchArm(dst.EnableTransitions)
	} else {
		acc.ModeSwitch(dst.EnableTransitions + dst.DisableTransitions)
	}
	if pt := ctl.PageTracker(); pt != nil {
		acc.PageFaults(pt.Stats().Faults)
		acc.ProtSweeps(pt.Stats().Sweeps)
	}

	rep.NativeCycles = acc.NativeCycles()
	rep.ToolCycles = acc.ToolCycles()
	rep.Slowdown = acc.Slowdown()
	rep.Cost = acc.Breakdown()
	rep.Races = det.Reports()
	if ex.ls != nil {
		rep.LocksetReports = ex.ls.Reports()
	}
	if ex.dl != nil {
		rep.DeadlockReports = ex.dl.Reports()
	}
	rep.Cache = hier.Stats()
	rep.Cores = hier.PerCoreStats()
	rep.PMU = pmu.Stats()
	rep.Demand = dst
	rep.Threads = ctl.Residency()
	rep.Detector = det.Stats()
	rep.Steps = sc.Steps()
	if cfg.Trace != nil {
		rep.Timeline = obs.ThreadSpans(cfg.Trace.Events(), acc.ToolCycles(),
			p.NumThreads(), cfg.Demand.Kind == demand.Continuous)
	}
	if cfg.Prof != nil {
		rep.Profile = cfg.Prof.Snapshot(p.Name)
	}
	publishMetrics(cfg.Metrics, rep)
	return rep, nil
}

// RunPolicies runs p once per policy under otherwise identical
// configuration, returning reports keyed by policy order.
func RunPolicies(p *program.Program, cfg Config, kinds ...demand.PolicyKind) ([]*Report, error) {
	out := make([]*Report, 0, len(kinds))
	for _, k := range kinds {
		r, err := Run(p, cfg.WithPolicy(k))
		if err != nil {
			return nil, fmt.Errorf("runner: policy %v: %w", k, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// RunPoliciesParallel is RunPolicies fanned out across workers goroutines
// (0 = one per CPU). Each policy's run owns its entire pipeline, so the
// reports — still ordered by policy — are identical to the serial ones.
func RunPoliciesParallel(p *program.Program, cfg Config, workers int, kinds ...demand.PolicyKind) ([]*Report, error) {
	eng := parallel.New(workers)
	return parallel.Map(context.Background(), eng, len(kinds), func(_ context.Context, i int) (*Report, error) {
		r, err := Run(p, cfg.WithPolicy(kinds[i]))
		if err != nil {
			return nil, fmt.Errorf("runner: policy %v: %w", kinds[i], err)
		}
		return r, nil
	})
}
