// Package replica keeps sealed analysis results alive across backend
// loss: every result key the gateway sees committed gets copied from its
// ring owner to the R−1 successors on the consistent-hash ring, so
// killing the owner does not force the fleet to recompute the shard —
// reads fall through to a replica (read-repair) and membership changes
// trigger re-replication (handoff).
//
// The replicator is deliberately asynchronous and best-effort: copies ride
// a bounded task queue drained by background workers, and a full queue
// drops the task (counted) rather than backpressuring the submit path —
// durability converges via the periodic resync sweep, which re-enqueues
// every key below its replication factor. Results are immutable and
// content-addressed, so copying is idempotent and there is no
// invalidation problem: any holder's bytes are THE bytes.
package replica

import (
	"context"
	"log/slog"
	"sort"
	"sync"
	"time"

	"demandrace/internal/obs"
	olog "demandrace/internal/obs/log"
	"demandrace/internal/obs/stream"
)

// Placement is the ring view the replicator plans against — satisfied by
// *cluster.Ring.
type Placement interface {
	// Lookup returns up to n distinct active members in ring order from
	// key's position: the owner first, then its successors.
	Lookup(key string, n int) []string
}

// Peer is one backend's replication surface: the key-addressed result
// endpoints (GET/PUT /v1/cache/{key}, GET /v1/cache). Implemented over
// HTTP by the cluster tier and by in-memory fakes in tests.
type Peer interface {
	// Get fetches the result bytes stored under key, or an error
	// (including not-found).
	Get(ctx context.Context, key string) ([]byte, error)
	// Put stores the result bytes under key. Idempotent.
	Put(ctx context.Context, key string, data []byte) error
	// Keys lists every result key the peer holds.
	Keys(ctx context.Context) ([]string, error)
}

// Config shapes a Replicator.
type Config struct {
	// Factor is the replication factor R: each key is kept on its owner
	// plus R−1 ring successors. Values <= 1 disable replication.
	Factor int
	// QueueDepth bounds the pending-copy task queue (default 1024).
	QueueDepth int
	// Workers is how many goroutines drain the queue (default 2).
	Workers int
	// ResyncInterval is the period of the anti-entropy sweep that
	// re-enqueues under-replicated keys (default 2s).
	ResyncInterval time.Duration
	// HandoffDeadline is how long keys may stay under-replicated after a
	// membership change before the replication /healthz subsystem reports
	// degraded (default 15s).
	HandoffDeadline time.Duration
	// OpTimeout bounds one peer Get/Put (default 10s).
	OpTimeout time.Duration
	// Ring places keys. Required.
	Ring Placement
	// Peer resolves a member name to its replication surface, nil for
	// unknown or unreachable members. Required.
	Peer func(name string) Peer
	// Registry, when set, receives the replica_* metrics.
	Registry *obs.Registry
	// Bus, when set, receives replica_repair events.
	Bus *stream.Bus
	// Log, when set, records replication activity.
	Log *slog.Logger
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

// entry is the replicator's knowledge of one tracked key.
type entry struct {
	holders map[string]bool // members believed to hold the bytes
}

// Replicator tracks sealed result keys and drives them toward their
// replication factor. A nil *Replicator is a valid "replication off"
// instance; every method is nil-safe.
type Replicator struct {
	cfg Config

	mu      sync.Mutex
	keys    map[string]*entry
	pending map[string]bool // keys with a queued task (dedup)
	under   int             // cached under-replicated count
	underAt time.Time       // when under first became nonzero

	queue  chan string
	wg     sync.WaitGroup
	cancel context.CancelFunc

	cWrites      *obs.Counter
	cWriteErrors *obs.Counter
	cRepairs     *obs.Counter
	cDrops       *obs.Counter
	gQueue       *obs.Gauge
	gTracked     *obs.Gauge
	gUnder       *obs.Gauge
}

// New builds a replicator, or nil when cfg.Factor <= 1 (replication off).
func New(cfg Config) *Replicator {
	if cfg.Factor <= 1 {
		return nil
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.ResyncInterval <= 0 {
		cfg.ResyncInterval = 2 * time.Second
	}
	if cfg.HandoffDeadline <= 0 {
		cfg.HandoffDeadline = 15 * time.Second
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 10 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Log == nil {
		cfg.Log = olog.Discard()
	}
	r := &Replicator{
		cfg:     cfg,
		keys:    make(map[string]*entry),
		pending: make(map[string]bool),
		queue:   make(chan string, cfg.QueueDepth),
	}
	if reg := cfg.Registry; reg != nil {
		r.cWrites = reg.Counter(obs.ReplicaWrites)
		r.cWriteErrors = reg.Counter(obs.ReplicaWriteErrors)
		r.cRepairs = reg.Counter(obs.ReplicaReadRepairs)
		r.cDrops = reg.Counter(obs.ReplicaQueueDrops)
		r.gQueue = reg.Gauge(obs.ReplicaQueueDepth)
		r.gTracked = reg.Gauge(obs.ReplicaTracked)
		r.gUnder = reg.Gauge(obs.ReplicaUnderReplicated)
	}
	return r
}

// Factor returns the configured replication factor (0 when off). Nil-safe.
func (r *Replicator) Factor() int {
	if r == nil {
		return 0
	}
	return r.cfg.Factor
}

// Start launches the queue workers and the anti-entropy sweep. Nil-safe.
func (r *Replicator) Start() {
	if r == nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	for i := 0; i < r.cfg.Workers; i++ {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case key := <-r.queue:
					r.noteDequeued(key)
					r.replicate(ctx, key)
				}
			}
		}()
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(r.cfg.ResyncInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				r.Resync()
			}
		}
	}()
}

// Stop halts the workers. Nil-safe, idempotent.
func (r *Replicator) Stop() {
	if r == nil || r.cancel == nil {
		return
	}
	r.cancel()
	r.wg.Wait()
	r.cancel = nil
}

// Track registers a sealed result held by member and queues it for
// replication to the rest of its replica chain. Nil-safe.
func (r *Replicator) Track(key, member string) {
	if r == nil || key == "" {
		return
	}
	r.mu.Lock()
	e := r.keys[key]
	if e == nil {
		e = &entry{holders: make(map[string]bool, r.cfg.Factor)}
		r.keys[key] = e
	}
	if member != "" {
		e.holders[member] = true
	}
	r.refreshGaugesLocked()
	r.mu.Unlock()
	r.enqueue(key)
}

// enqueue queues one key for a replication pass, deduplicating against
// tasks already in flight and dropping (counted) when the queue is full.
func (r *Replicator) enqueue(key string) {
	r.mu.Lock()
	if r.pending[key] {
		r.mu.Unlock()
		return
	}
	r.pending[key] = true
	r.mu.Unlock()
	select {
	case r.queue <- key:
		if r.gQueue != nil {
			r.gQueue.Set(int64(len(r.queue)))
		}
	default:
		r.mu.Lock()
		delete(r.pending, key)
		r.mu.Unlock()
		if r.cDrops != nil {
			r.cDrops.Inc()
		}
	}
}

// noteDequeued clears a key's pending mark once a worker picks it up.
func (r *Replicator) noteDequeued(key string) {
	r.mu.Lock()
	delete(r.pending, key)
	r.mu.Unlock()
	if r.gQueue != nil {
		r.gQueue.Set(int64(len(r.queue)))
	}
}

// chain is the replica set current placement assigns to key: the owner
// plus Factor−1 successors.
func (r *Replicator) chain(key string) []string {
	return r.cfg.Ring.Lookup(key, r.cfg.Factor)
}

// replicate runs one convergence pass for key: fetch the bytes from some
// holder and copy them to every chain member that lacks them. Remembered
// holders are tried as sources first, but every desired member is probed
// too — a restarted owner whose disk survived (or whose crash made us
// forget it) is rediscovered here instead of being re-pushed to.
func (r *Replicator) replicate(ctx context.Context, key string) {
	desired := r.chain(key)
	r.mu.Lock()
	e := r.keys[key]
	if e == nil || len(desired) == 0 {
		r.mu.Unlock()
		r.settle(key)
		return
	}
	sources := make([]string, 0, len(e.holders)+len(desired))
	for m := range e.holders {
		sources = append(sources, m)
	}
	sort.Strings(sources)
	need := false
	for _, m := range desired {
		if !e.holders[m] {
			need = true
		}
		if !contains(sources, m) {
			sources = append(sources, m)
		}
	}
	r.mu.Unlock()
	if !need {
		r.settle(key)
		return
	}

	data, src := r.fetch(ctx, key, sources)
	if data == nil {
		// No reachable holder: leave the key under-replicated; the resync
		// sweep retries after membership settles.
		r.settle(key)
		return
	}
	r.mu.Lock()
	e.holders[src] = true
	r.mu.Unlock()
	for _, m := range desired {
		r.mu.Lock()
		have := e.holders[m]
		r.mu.Unlock()
		if have {
			continue
		}
		p := r.cfg.Peer(m)
		if p == nil {
			continue
		}
		if r.cWrites != nil {
			r.cWrites.Inc()
		}
		opCtx, cancel := context.WithTimeout(ctx, r.cfg.OpTimeout)
		err := p.Put(opCtx, key, data)
		cancel()
		if err != nil {
			if r.cWriteErrors != nil {
				r.cWriteErrors.Inc()
			}
			r.cfg.Log.Warn("replica write failed", "key", key, "target", m, "error", err.Error())
			continue
		}
		r.mu.Lock()
		e.holders[m] = true
		r.mu.Unlock()
		r.cfg.Log.Info("replica written", "key", key, "source", src, "target", m)
	}
	r.settle(key)
}

// fetch pulls key's bytes from the first reachable source.
func (r *Replicator) fetch(ctx context.Context, key string, sources []string) ([]byte, string) {
	for _, m := range sources {
		p := r.cfg.Peer(m)
		if p == nil {
			continue
		}
		opCtx, cancel := context.WithTimeout(ctx, r.cfg.OpTimeout)
		data, err := p.Get(opCtx, key)
		cancel()
		if err == nil && data != nil {
			return data, m
		}
		// A holder that cannot produce the bytes is not a holder.
		r.mu.Lock()
		if e := r.keys[key]; e != nil {
			delete(e.holders, m)
		}
		r.mu.Unlock()
	}
	return nil, ""
}

// Repair serves a read whose routed backend (avoid) missed or was
// unreachable: it walks key's current replica chain — and any other
// remembered holder — skipping avoid, returns the first hit, and queues
// the chain for back-fill so the failed member recovers the bytes once it
// is reachable again. ok is false when no replica held the bytes.
// Nil-safe.
func (r *Replicator) Repair(ctx context.Context, key, avoid string) (data []byte, source string, ok bool) {
	if r == nil || key == "" {
		return nil, "", false
	}
	candidates := r.chain(key)
	r.mu.Lock()
	if e := r.keys[key]; e != nil {
		for m := range e.holders {
			if !contains(candidates, m) {
				candidates = append(candidates, m)
			}
		}
	}
	r.mu.Unlock()
	missed := avoid
	if missed == "" && len(candidates) > 0 {
		missed = candidates[0]
	}
	for _, m := range candidates {
		if m == avoid {
			continue
		}
		p := r.cfg.Peer(m)
		if p == nil {
			continue
		}
		opCtx, cancel := context.WithTimeout(ctx, r.cfg.OpTimeout)
		data, err := p.Get(opCtx, key)
		cancel()
		if err != nil || data == nil {
			continue
		}
		if r.cRepairs != nil {
			r.cRepairs.Inc()
		}
		r.cfg.Bus.Publish(stream.Event{
			Type: stream.TypeReplicaRepair,
			Detail: map[string]string{
				"key":    key,
				"owner":  missed,
				"source": m,
			},
		})
		r.cfg.Log.Info("read repair", "key", key, "owner", missed, "source", m)
		// The repair proved m holds the bytes; remember that and queue the
		// chain (including the failed member, once reachable) for back-fill.
		r.Track(key, m)
		return data, m, true
	}
	return nil, "", false
}

// OnEvict reacts to a member leaving the ring: it no longer counts as a
// holder, and every key whose replica chain it was in is queued for
// re-replication from the survivors. Nil-safe.
func (r *Replicator) OnEvict(member string) {
	if r == nil {
		return
	}
	var requeue []string
	r.mu.Lock()
	for key, e := range r.keys {
		if e.holders[member] {
			delete(e.holders, member)
			requeue = append(requeue, key)
		}
	}
	r.refreshGaugesLocked()
	r.mu.Unlock()
	for _, key := range requeue {
		r.enqueue(key)
	}
	if len(requeue) > 0 {
		r.cfg.Log.Info("member evicted; re-replicating", "member", member, "keys", len(requeue))
	}
}

// OnReadmit reacts to a member rejoining: every tracked key whose current
// chain includes it is queued, streaming its shard back. Nil-safe.
func (r *Replicator) OnReadmit(member string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	keys := make([]string, 0, len(r.keys))
	for key := range r.keys {
		keys = append(keys, key)
	}
	r.mu.Unlock()
	n := 0
	for _, key := range keys {
		if contains(r.chain(key), member) {
			r.enqueue(key)
			n++
		}
	}
	if n > 0 {
		r.cfg.Log.Info("member readmitted; streaming shard back", "member", member, "keys", n)
	}
}

// Resync is the anti-entropy sweep: every tracked key below its
// replication factor is re-enqueued. Nil-safe.
func (r *Replicator) Resync() {
	if r == nil {
		return
	}
	r.mu.Lock()
	keys := make([]string, 0, len(r.keys))
	for key := range r.keys {
		keys = append(keys, key)
	}
	r.mu.Unlock()
	for _, key := range keys {
		if r.underReplicated(key) {
			r.enqueue(key)
		}
	}
	r.settleAll()
}

// Seed imports a peer's key list (e.g. at startup) so pre-existing store
// contents participate in replication. Nil-safe.
func (r *Replicator) Seed(ctx context.Context, member string) error {
	if r == nil {
		return nil
	}
	p := r.cfg.Peer(member)
	if p == nil {
		return nil
	}
	keys, err := p.Keys(ctx)
	if err != nil {
		return err
	}
	for _, key := range keys {
		r.Track(key, member)
	}
	return nil
}

// underReplicated reports whether key's chain is missing holders.
func (r *Replicator) underReplicated(key string) bool {
	desired := r.chain(key)
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.keys[key]
	if e == nil {
		return false
	}
	for _, m := range desired {
		if !e.holders[m] {
			return true
		}
	}
	return false
}

// settle recomputes the under-replication gauges after a pass over key.
func (r *Replicator) settle(key string) { r.settleAll() }

// settleAll recounts under-replicated keys and refreshes the gauges.
func (r *Replicator) settleAll() {
	counts := r.countUnder()
	r.mu.Lock()
	r.applyUnderLocked(counts)
	r.mu.Unlock()
}

// countUnder counts tracked keys whose current chain is missing holders.
// Takes and releases the lock per key to avoid holding it across chain().
func (r *Replicator) countUnder() int {
	r.mu.Lock()
	keys := make([]string, 0, len(r.keys))
	for key := range r.keys {
		keys = append(keys, key)
	}
	r.mu.Unlock()
	n := 0
	for _, key := range keys {
		if r.underReplicated(key) {
			n++
		}
	}
	return n
}

// applyUnderLocked updates the cached under-replication state. Caller
// holds r.mu.
func (r *Replicator) applyUnderLocked(under int) {
	if under > 0 && r.under == 0 {
		r.underAt = r.cfg.Now()
	}
	if under == 0 {
		r.underAt = time.Time{}
	}
	r.under = under
	r.refreshGaugesLocked()
}

// refreshGaugesLocked pushes the tracked/under-replicated gauges. Caller
// holds r.mu.
func (r *Replicator) refreshGaugesLocked() {
	if r.gTracked != nil {
		r.gTracked.Set(int64(len(r.keys)))
	}
	if r.gUnder != nil {
		r.gUnder.Set(int64(r.under))
	}
}

// Stats is the replication snapshot served in /v1/stats and /healthz.
type Stats struct {
	// Factor is the configured replication factor (0 = off).
	Factor int `json:"factor"`
	// Tracked counts sealed result keys under management.
	Tracked int `json:"tracked"`
	// UnderReplicated counts tracked keys currently below Factor.
	UnderReplicated int `json:"under_replicated"`
	// Queue is the pending replication task count.
	Queue int `json:"queue"`
	// Degraded is true when keys have been under-replicated for longer
	// than the handoff deadline.
	Degraded bool `json:"degraded"`
}

// StatsSnapshot returns the current replication state. Nil-safe (zero
// Stats when replication is off).
func (r *Replicator) StatsSnapshot() Stats {
	if r == nil {
		return Stats{}
	}
	under := r.countUnder()
	r.mu.Lock()
	r.applyUnderLocked(under)
	s := Stats{
		Factor:          r.cfg.Factor,
		Tracked:         len(r.keys),
		UnderReplicated: r.under,
		Queue:           len(r.queue),
		Degraded:        r.under > 0 && r.cfg.Now().Sub(r.underAt) > r.cfg.HandoffDeadline,
	}
	r.mu.Unlock()
	return s
}

// Holders returns the members believed to hold key, sorted (tests and
// diagnostics). Nil-safe.
func (r *Replicator) Holders(key string) []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.keys[key]
	if e == nil {
		return nil
	}
	out := make([]string, 0, len(e.holders))
	for m := range e.holders {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

func contains(list []string, m string) bool {
	for _, x := range list {
		if x == m {
			return true
		}
	}
	return false
}
