package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingLookupDeterministic: two rings built from the same members — in
// different insertion orders — must place every key identically. This is
// the property the whole cluster design leans on: any gateway instance
// with the same membership routes the same.
func TestRingLookupDeterministic(t *testing.T) {
	a := NewRing(64)
	for _, m := range []string{"n1", "n2", "n3"} {
		a.Add(m)
	}
	b := NewRing(64)
	for _, m := range []string{"n3", "n1", "n2"} {
		b.Add(m)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		la, lb := a.Lookup(key, 3), b.Lookup(key, 3)
		if !reflect.DeepEqual(la, lb) {
			t.Fatalf("key %q: ring A %v, ring B %v", key, la, lb)
		}
		if len(la) != 3 {
			t.Fatalf("key %q: want 3 distinct candidates, got %v", key, la)
		}
		seen := map[string]bool{}
		for _, m := range la {
			if seen[m] {
				t.Fatalf("key %q: duplicate candidate in %v", key, la)
			}
			seen[m] = true
		}
	}
}

// TestRingDistribution: with virtual nodes, each of 3 members should own a
// non-degenerate share of the keyspace. The bound is deliberately loose
// (>10% each); we care that no member is starved, not about perfection.
func TestRingDistribution(t *testing.T) {
	r := NewRing(DefaultVNodes)
	members := []string{"n1", "n2", "n3"}
	for _, m := range members {
		r.Add(m)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, m := range members {
		if share := float64(counts[m]) / keys; share < 0.10 {
			t.Fatalf("member %s owns %.1f%% of keys, want > 10%% (counts %v)", m, share*100, counts)
		}
	}
}

// TestRingEvictionStability: evicting a member must leave every key it did
// NOT own exactly where it was — only the evicted member's share moves.
func TestRingEvictionStability(t *testing.T) {
	r := NewRing(DefaultVNodes)
	for _, m := range []string{"n1", "n2", "n3"} {
		r.Add(m)
	}
	const keys = 1000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("key-%d", i))
	}

	r.Evict("n2")
	if got := r.Active(); !reflect.DeepEqual(got, []string{"n1", "n3"}) {
		t.Fatalf("active after eviction = %v", got)
	}
	moved := 0
	for i := range before {
		after := r.Owner(fmt.Sprintf("key-%d", i))
		if after == "n2" {
			t.Fatalf("key-%d still routed to evicted member", i)
		}
		if before[i] != "n2" && after != before[i] {
			t.Fatalf("key-%d moved %s -> %s though its owner was not evicted", i, before[i], after)
		}
		if before[i] == "n2" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("test is vacuous: n2 owned no keys")
	}

	// Readmission restores the exact original placement.
	r.Readmit("n2")
	for i := range before {
		if after := r.Owner(fmt.Sprintf("key-%d", i)); after != before[i] {
			t.Fatalf("key-%d after readmission: %s, want %s", i, after, before[i])
		}
	}
}

// TestRingLookupSkipsEvicted: failover candidate lists never include an
// evicted member, and shrink when membership does.
func TestRingLookupSkipsEvicted(t *testing.T) {
	r := NewRing(32)
	for _, m := range []string{"n1", "n2", "n3"} {
		r.Add(m)
	}
	r.Evict("n1")
	for i := 0; i < 200; i++ {
		cands := r.Lookup(fmt.Sprintf("key-%d", i), 3)
		if len(cands) != 2 {
			t.Fatalf("want 2 candidates after eviction, got %v", cands)
		}
		for _, m := range cands {
			if m == "n1" {
				t.Fatalf("evicted member in candidates %v", cands)
			}
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup("k", 2); got != nil {
		t.Fatalf("empty ring lookup = %v", got)
	}
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if r.Size() != 0 {
		t.Fatalf("empty ring size = %d", r.Size())
	}
}

func TestParseBackends(t *testing.T) {
	bs, err := ParseBackends("http://127.0.0.1:8318, fast=http://10.0.0.2:9000/")
	if err != nil {
		t.Fatalf("ParseBackends: %v", err)
	}
	want := []Backend{
		{Name: "127.0.0.1-8318", URL: "http://127.0.0.1:8318"},
		{Name: "fast", URL: "http://10.0.0.2:9000"},
	}
	if !reflect.DeepEqual(bs, want) {
		t.Fatalf("parsed %+v, want %+v", bs, want)
	}
	for _, bad := range []string{"", "   ", "not-a-url", "a=http://x:1,a=http://y:2"} {
		if _, err := ParseBackends(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}
