// Package intern provides a tiny string interner: dense uint32 IDs for a
// growing set of strings, O(1) in both directions.
//
// The race detector's hot path is the reason this package exists. Shadow
// memory records the program region of the last read and write of every
// tracked word; stored as strings that is a 16-byte header per slot and a
// pointer the garbage collector must trace across millions of words. Stored
// as interned IDs it is 4 bytes, shadow pages become pointer-free where it
// counts, and the region strings themselves are materialized only when a
// race is actually reported. The same table is shared with the cycle
// profiler (sample buckets keyed by site ID instead of string) and the
// report renderer (aggregating races by region pair without re-hashing
// strings).
//
// ID 0 is always the empty string, so zero-valued metadata reads naturally
// as "no label". A Table is not safe for concurrent use; like the detector
// it serves, it belongs to a single run.
package intern

// Table interns strings to dense uint32 IDs in first-seen order.
type Table struct {
	ids  map[string]uint32
	strs []string
}

// New returns a table holding only the empty string at ID 0.
func New() *Table {
	return &Table{
		ids:  map[string]uint32{"": 0},
		strs: []string{""},
	}
}

// ID returns the ID for s, interning it on first sight. Interning allocates
// once per distinct string; repeat lookups are a single map probe.
func (t *Table) ID(s string) uint32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := uint32(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// Lookup returns the ID for s without interning, and whether it was present.
func (t *Table) Lookup(s string) (uint32, bool) {
	id, ok := t.ids[s]
	return id, ok
}

// Str returns the string for id. Unknown IDs resolve to the empty string,
// matching the "no label" meaning of ID 0.
func (t *Table) Str(id uint32) string {
	if int(id) >= len(t.strs) {
		return ""
	}
	return t.strs[id]
}

// Len returns the number of interned strings, including the empty string.
func (t *Table) Len() int { return len(t.strs) }
