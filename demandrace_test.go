package demandrace_test

import (
	"fmt"
	"strings"
	"testing"

	"demandrace"
)

// Example demonstrates the core workflow: build a mostly-private program
// with a repeated race, then compare the continuous and demand-driven
// policies on the identical execution.
func Example() {
	b := demandrace.NewProgram("example")
	x := b.Space().AllocLine(8)
	priv0 := b.Space().AllocArray(800, 8)
	priv1 := b.Space().AllocArray(800, 8)
	t0, t1 := b.Thread(), b.Thread()
	for i := 0; i < 800; i++ {
		t0.Load(priv0 + demandrace.Addr(i*8)).Store(priv0 + demandrace.Addr(i*8))
		t1.Load(priv1 + demandrace.Addr(i*8)).Store(priv1 + demandrace.Addr(i*8))
		if i >= 400 && i < 410 { // the bug: a short unsynchronized phase
			t0.Store(x)
			t1.Load(x)
		}
	}
	p := b.MustBuild()

	reps, err := demandrace.RunPolicies(p, demandrace.DefaultConfig(),
		demandrace.Continuous, demandrace.HITMDemand)
	if err != nil {
		panic(err)
	}
	cont, dem := reps[0], reps[1]
	fmt.Printf("continuous found race: %v\n", len(cont.Races) > 0)
	fmt.Printf("demand found race:     %v\n", len(dem.Races) > 0)
	fmt.Printf("demand is faster:      %v\n", dem.Slowdown < cont.Slowdown)
	// Output:
	// continuous found race: true
	// demand found race:     true
	// demand is faster:      true
}

func TestPublicKernelAccess(t *testing.T) {
	ks := demandrace.Kernels()
	if len(ks) < 20 {
		t.Errorf("only %d bundled kernels", len(ks))
	}
	k, ok := demandrace.KernelByName("swaptions")
	if !ok {
		t.Fatal("swaptions missing")
	}
	p := k.Build(demandrace.KernelConfig{Threads: 4, Scale: 1})
	rep, err := demandrace.Run(p, demandrace.DefaultConfig().WithPolicy(demandrace.Off))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Slowdown != 1.0 {
		t.Errorf("Off slowdown = %g", rep.Slowdown)
	}
	if len(demandrace.KernelSuite("phoenix")) != 8 {
		t.Error("phoenix suite size wrong")
	}
}

func TestPublicInjectAndTrace(t *testing.T) {
	k, _ := demandrace.KernelByName("micro_private")
	p := k.Build(demandrace.KernelConfig{Threads: 4, Scale: 1})
	injected, injs, err := demandrace.InjectRaces(p, demandrace.InjectionConfig{Seed: 1, Count: 2, Repeats: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(injs) != 2 {
		t.Fatalf("injections = %v", injs)
	}
	cfg := demandrace.DefaultConfig().WithPolicy(demandrace.Continuous)
	rec := demandrace.NewTraceRecorder(injected.Name)
	cfg.Tracer = rec
	rep, err := demandrace.Run(injected, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) == 0 {
		t.Fatal("no races found after injection")
	}
	det := demandrace.ReplayTrace(rec.Trace(), demandrace.DetectorOptions{})
	if len(det.Reports()) != len(rep.Races) {
		t.Errorf("replay races %d != live %d", len(det.Reports()), len(rep.Races))
	}
}

// ExampleInjectRaces shows the accuracy-experiment workflow: take a clean
// kernel, plant races with known ground truth, and score a policy.
func ExampleInjectRaces() {
	k, _ := demandrace.KernelByName("micro_private")
	clean := k.Build(demandrace.KernelConfig{Threads: 4, Scale: 1})
	p, injected, err := demandrace.InjectRaces(clean, demandrace.InjectionConfig{
		Seed: 7, Count: 2, Repeats: 5,
	})
	if err != nil {
		panic(err)
	}
	rep, err := demandrace.Run(p, demandrace.DefaultConfig().WithPolicy(demandrace.Continuous))
	if err != nil {
		panic(err)
	}
	racy := rep.RacyAddrs()
	found := 0
	for _, in := range injected {
		if racy[in.Addr.String()] {
			found++
		}
	}
	fmt.Printf("planted %d, found %d\n", len(injected), found)
	// Output:
	// planted 2, found 2
}

// ExampleReplayTrace shows the execute-once / analyze-many-times workflow.
func ExampleReplayTrace() {
	k, _ := demandrace.KernelByName("racy_counter")
	p := k.Build(demandrace.KernelConfig{Threads: 2, Scale: 1})
	cfg := demandrace.DefaultConfig().WithPolicy(demandrace.Continuous)
	cfg.Tracer = demandrace.NewTraceRecorder(p.Name)
	live, err := demandrace.Run(p, cfg)
	if err != nil {
		panic(err)
	}
	// Re-analyze offline with the full-vector-clock engine.
	det := demandrace.ReplayTrace(cfg.Tracer.Trace(), demandrace.DetectorOptions{FullVC: true})
	fmt.Printf("live %d, replayed %d\n", len(live.Races), len(det.Reports()))
	// Output:
	// live 1, replayed 1
}

func TestPublicTimelineAndCalibrate(t *testing.T) {
	k, _ := demandrace.KernelByName("racy_counter")
	p := k.Build(demandrace.KernelConfig{Threads: 2, Scale: 1})
	cfg := demandrace.DefaultConfig().WithPolicy(demandrace.Continuous)
	cfg.Tracer = demandrace.NewTraceRecorder(p.Name)
	if _, err := demandrace.Run(p, cfg); err != nil {
		t.Fatal(err)
	}
	tl := demandrace.TraceTimeline(cfg.Tracer.Trace(), 50)
	if !strings.Contains(tl, "t0 ") || !strings.Contains(tl, "t1 ") {
		t.Errorf("timeline:\n%s", tl)
	}
	model, err := demandrace.CalibrateContinuous(p, demandrace.DefaultConfig(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if model.AnalysisMem == 0 {
		t.Error("calibration produced zero analysis cost")
	}
}
