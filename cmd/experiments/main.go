// Command experiments regenerates the tables and figures of the paper's
// evaluation (reconstructed per DESIGN.md).
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig4 -threads 8 -scale 2
//	experiments -exp fig1 -csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"demandrace/internal/experiments"
	"demandrace/internal/stats"
)

type tabler interface{ Table() *stats.Table }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment: scorecard|tab1|fig1|fig2|fig3|fig4|fig5|fig6|fig7|tab3|tab4|tab5|tab6|all")
		threads = fs.Int("threads", 4, "worker thread count")
		scale   = fs.Int("scale", 1, "workload scale factor")
		csv     = fs.Bool("csv", false, "emit CSV instead of text tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := experiments.Options{Threads: *threads, Scale: *scale}

	runners := map[string]func(experiments.Options) (tabler, error){
		"tab1":      func(o experiments.Options) (tabler, error) { return experiments.Tab1(o) },
		"fig1":      func(o experiments.Options) (tabler, error) { return experiments.Fig1(o) },
		"fig2":      func(o experiments.Options) (tabler, error) { return experiments.Fig2(o) },
		"fig3":      func(o experiments.Options) (tabler, error) { return experiments.Fig3(o) },
		"fig4":      func(o experiments.Options) (tabler, error) { return experiments.Fig4(o) },
		"fig5":      func(o experiments.Options) (tabler, error) { return experiments.Fig5(o) },
		"fig6":      func(o experiments.Options) (tabler, error) { return experiments.Fig6(o) },
		"tab3":      func(o experiments.Options) (tabler, error) { return experiments.Tab3(o) },
		"tab4":      func(o experiments.Options) (tabler, error) { return experiments.Tab4(o) },
		"tab5":      func(o experiments.Options) (tabler, error) { return experiments.Tab5(o) },
		"fig7":      func(o experiments.Options) (tabler, error) { return experiments.Fig7(o) },
		"tab6":      func(o experiments.Options) (tabler, error) { return experiments.Tab6(o) },
		"scorecard": func(o experiments.Options) (tabler, error) { return experiments.Scorecard(o) },
	}
	order := []string{"scorecard", "tab1", "fig1", "fig2", "fig3", "fig4", "tab3", "fig5", "fig6", "fig7", "tab4", "tab5", "tab6"}

	var names []string
	if *exp == "all" {
		names = order
	} else if _, ok := runners[*exp]; ok {
		names = []string{*exp}
	} else {
		return fmt.Errorf("unknown experiment %q", *exp)
	}

	for _, name := range names {
		res, err := runners[name](o)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tb := res.Table()
		if *csv {
			fmt.Fprint(out, tb.CSV())
		} else {
			fmt.Fprintln(out, tb)
		}
	}
	return nil
}
