package report_test

import (
	"bytes"
	"strings"
	"testing"

	"demandrace/internal/demand"
	"demandrace/internal/obs"
	"demandrace/internal/report"
	"demandrace/internal/runner"
	"demandrace/internal/workloads"
)

func runKernel(t *testing.T, name string, pol demand.PolicyKind, mut func(*runner.Config)) *runner.Report {
	t.Helper()
	k, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("kernel %q missing", name)
	}
	p := k.Build(workloads.Config{Threads: 4, Scale: 1})
	cfg := runner.DefaultConfig().WithPolicy(pol)
	if mut != nil {
		mut(&cfg)
	}
	r, err := runner.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReportRacyKernel(t *testing.T) {
	r := runKernel(t, "racy_flag", demand.Continuous, nil)
	var buf bytes.Buffer
	if err := report.Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"racy_flag",
		"race report(s)",
		"write-read",
		"publish", // region annotation surfaces in the table
		"HITM events",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "No data races detected") {
		t.Error("racy report claims clean")
	}
}

func TestReportCleanKernel(t *testing.T) {
	r := runKernel(t, "micro_private", demand.HITMDemand, nil)
	var buf bytes.Buffer
	if err := report.Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No data races detected") {
		t.Error("clean report missing verdict")
	}
}

func TestReportDeadlockSection(t *testing.T) {
	r := runKernel(t, "racy_lock_inversion", demand.Continuous, func(c *runner.Config) {
		c.Deadlock = true
	})
	var buf bytes.Buffer
	if err := report.Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Potential deadlocks") {
		t.Error("report missing deadlock section")
	}
}

func TestReportComparisonTable(t *testing.T) {
	a := runKernel(t, "histogram", demand.Continuous, nil)
	b := runKernel(t, "histogram", demand.HITMDemand, nil)
	var buf bytes.Buffer
	if err := report.Write(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Policy comparison") || !strings.Contains(out, "hitm-demand") {
		t.Error("comparison table missing")
	}
}

func TestReportModeTimeline(t *testing.T) {
	// With a tracer attached, a demand-policy run over a racy kernel yields
	// fast→analysis transitions, and the page renders them as a per-thread
	// strip.
	r := runKernel(t, "racy_flag", demand.HITMDemand, func(c *runner.Config) {
		c.Trace = obs.NewTracer()
	})
	if len(r.Timeline) == 0 {
		t.Fatal("run with tracer produced no timeline spans")
	}
	var buf bytes.Buffer
	if err := report.Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Mode timeline",
		`class="strip"`,
		`class="analysis"`,
		`class="fast"`,
		"% analyzed",
		`class="tl-label"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline section missing %q", want)
		}
	}
	// Strip widths are percentages of the run; every segment carries one.
	if !strings.Contains(out, "style=\"width:") {
		t.Error("timeline segments carry no widths")
	}
}

func TestReportNoTimelineWithoutTracer(t *testing.T) {
	r := runKernel(t, "racy_flag", demand.HITMDemand, nil)
	var buf bytes.Buffer
	if err := report.Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Mode timeline") {
		t.Error("timeline section rendered without telemetry")
	}
}

func TestReportEscapesContent(t *testing.T) {
	// Program names flow through html/template escaping.
	r := runKernel(t, "histogram", demand.Off, nil)
	r.Program = `<script>alert("xss")</script>`
	var buf bytes.Buffer
	if err := report.Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>alert") {
		t.Error("unescaped content in HTML output")
	}
}

func TestReportRegionPairTable(t *testing.T) {
	r := runKernel(t, "racy_flag", demand.Continuous, func(c *runner.Config) {
		c.Detector.MaxReportsPerAddr = -1
	})
	if len(r.Races) == 0 {
		t.Fatal("racy_flag produced no races")
	}
	var buf bytes.Buffer
	if err := report.Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Races by region") {
		t.Fatal("region-pair section missing from annotated racy run")
	}
	// Duplicate (cur, prev) pairs must aggregate: the table has at most as
	// many rows as distinct pairs, and each row carries a count cell.
	if strings.Count(out, "Races by region") != 1 {
		t.Error("region-pair section rendered more than once")
	}

	// A run whose races carry no region labels renders no section.
	bare := *r
	bare.Races = nil
	buf.Reset()
	if err := report.Write(&buf, &bare); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Races by region") {
		t.Error("region-pair section rendered without races")
	}
}
