package olog

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want slog.Level
		ok   bool
	}{
		{"debug", slog.LevelDebug, true},
		{"info", slog.LevelInfo, true},
		{"", slog.LevelInfo, true},
		{"WARN", slog.LevelWarn, true},
		{"warning", slog.LevelWarn, true},
		{" error ", slog.LevelError, true},
		{"verbose", 0, false},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseLevel(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseLevel(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNewJSONOutputParses(t *testing.T) {
	var buf bytes.Buffer
	lg := New(Options{Level: slog.LevelInfo, Format: FormatJSON, Output: &buf})
	lg.Info("job queued", "job_id", "j-1", "kind", "kernel")
	lg.Debug("dropped", "k", "v") // below level: must not appear

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly 1 line, got %d:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, lines[0])
	}
	if rec["msg"] != "job queued" || rec["job_id"] != "j-1" || rec["kind"] != "kernel" {
		t.Errorf("record missing fields: %v", rec)
	}
	if _, ok := rec["time"]; !ok {
		t.Errorf("record missing timestamp: %v", rec)
	}
}

func TestNewTextOutput(t *testing.T) {
	var buf bytes.Buffer
	lg := New(Options{Level: slog.LevelWarn, Format: FormatText, Output: &buf})
	lg.Info("hidden")
	lg.Warn("shown", "n", 3)
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info leaked through warn level:\n%s", out)
	}
	if !strings.Contains(out, "msg=shown") || !strings.Contains(out, "n=3") {
		t.Errorf("text output missing fields:\n%s", out)
	}
}

func TestNewNilOutputDiscardsButStaysEnabled(t *testing.T) {
	lg := New(Options{Level: slog.LevelInfo, Output: nil})
	lg.Info("goes nowhere")
	if !lg.Enabled(context.Background(), slog.LevelInfo) {
		t.Error("nil-output logger should still answer Enabled truthfully")
	}
}

func TestDiscardDisabledAtEveryLevel(t *testing.T) {
	lg := Discard()
	for _, lvl := range []slog.Level{slog.LevelDebug, slog.LevelInfo, slog.LevelWarn, slog.LevelError} {
		if lg.Enabled(context.Background(), lvl) {
			t.Errorf("Discard logger enabled at %v", lvl)
		}
	}
	lg.Error("must not panic")
}

func TestRegisterAndLogger(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Register(fs, FormatJSON)
	if err := fs.Parse([]string{"-log-level=debug"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	lg, err := f.Logger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("visible")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("default format should have been JSON: %v\n%s", err, buf.String())
	}
}

func TestRegisterRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-log-level=loud"},
		{"-log-format=xml"},
	} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		f := Register(fs, "")
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Logger(io.Discard); err == nil {
			t.Errorf("args %v: want error, got logger", args)
		}
	}
}

func TestJobIDContext(t *testing.T) {
	ctx := context.Background()
	if _, ok := JobID(ctx); ok {
		t.Error("empty context should carry no job ID")
	}
	ctx = WithJobID(ctx, "j-42")
	id, ok := JobID(ctx)
	if !ok || id != "j-42" {
		t.Errorf("JobID = %q, %v; want j-42, true", id, ok)
	}
}

func TestLoggerContext(t *testing.T) {
	// Absent: From must return a safe non-nil discard logger.
	got := From(context.Background())
	if got == nil {
		t.Fatal("From(empty) returned nil")
	}
	if got.Enabled(context.Background(), slog.LevelError) {
		t.Error("fallback logger should be disabled")
	}

	var buf bytes.Buffer
	lg := New(Options{Format: FormatJSON, Output: &buf}).With("job_id", "j-7")
	ctx := Into(context.Background(), lg)
	From(ctx).Info("deep in the stack")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if rec["job_id"] != "j-7" {
		t.Errorf("carried logger lost its attrs: %v", rec)
	}
}
