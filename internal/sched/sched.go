// Package sched executes a program.Program under a deterministic simulated
// thread scheduler.
//
// The scheduler owns all blocking semantics (mutexes, barriers, semaphores)
// and hands every executed operation to an Executor — the runner's pipeline
// of cache simulation, PMU accounting, and race detection. Determinism is a
// hard requirement: the same program, configuration, and seed produce the
// same interleaving, the same coherence events, and the same race reports,
// which is what makes the accuracy experiments reproducible.
package sched

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"demandrace/internal/cache"
	"demandrace/internal/program"
	"demandrace/internal/vclock"
)

// Executor receives every executed operation in program order per thread,
// already serialized by the scheduler.
type Executor interface {
	// Exec is called once per executed op, except barriers. For OpLock it
	// is called at the moment the acquisition succeeds.
	Exec(t vclock.TID, ctx cache.Context, op program.Op)
	// BarrierRelease is called once when the last participant arrives at a
	// barrier, with the participants in ascending thread order. No Exec
	// call is made for OpBarrier.
	BarrierRelease(id program.SyncID, parties []vclock.TID)
}

// Policy selects the interleaving strategy.
type Policy uint8

const (
	// RoundRobin runs ready threads in cyclic thread order, one quantum at
	// a time.
	RoundRobin Policy = iota
	// RandomInterleave picks the next thread uniformly among ready threads
	// using the configured seed.
	RandomInterleave
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case RandomInterleave:
		return "random"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// Config controls scheduling and thread placement.
type Config struct {
	Policy Policy
	// Seed drives RandomInterleave.
	Seed int64
	// Quantum is the maximum ops a thread runs before the scheduler
	// switches. Must be ≥ 1.
	Quantum int
	// Contexts is the number of hardware contexts available. Threads are
	// placed with CtxOf, defaulting to tid mod Contexts.
	Contexts int
	// CtxOf overrides thread placement (optional).
	CtxOf func(vclock.TID) cache.Context
}

// DefaultConfig is round-robin with a quantum of 1 (finest interleaving)
// over the given context count.
func DefaultConfig(contexts int) Config {
	return Config{Policy: RoundRobin, Quantum: 1, Contexts: contexts}
}

func (c Config) validate() error {
	if c.Quantum < 1 {
		return fmt.Errorf("sched: Quantum must be ≥ 1, got %d", c.Quantum)
	}
	if c.Contexts < 1 {
		return fmt.Errorf("sched: Contexts must be ≥ 1, got %d", c.Contexts)
	}
	return nil
}

// InterruptedError reports a run stopped by context cancellation, carrying
// how far it got — the number the service's job-lifecycle logs attribute a
// timeout to. It unwraps to the context error, so errors.Is(err, ctx.Err())
// keeps working for every existing caller.
type InterruptedError struct {
	// Steps is the number of ops executed before the interruption.
	Steps uint64
	// Err is the context's error (context.Canceled or DeadlineExceeded).
	Err error
}

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("sched: run interrupted after %d steps: %v", e.Steps, e.Err)
}

func (e *InterruptedError) Unwrap() error { return e.Err }

// DeadlockError reports that no thread can make progress.
type DeadlockError struct {
	// Blocked describes each stuck thread.
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sched: deadlock among %d threads: %v", len(e.Blocked), e.Blocked)
}

type threadStatus uint8

const (
	stReady threadStatus = iota
	stBlockedMutex
	stBlockedBarrier
	stBlockedSem
	stDone
)

type threadState struct {
	pc     int
	status threadStatus
	// waitOn is the sync object blocking the thread (valid when blocked).
	waitOn program.SyncID
}

type mutexState struct {
	owner vclock.TID // -1 when free
}

type barrierState struct {
	waiting []vclock.TID
}

type semState struct {
	count int
}

// Scheduler drives one program to completion.
type Scheduler struct {
	prog    *program.Program
	cfg     Config
	threads []threadState
	mutexes []mutexState
	bars    []barrierState
	sems    []semState
	rng     *rand.Rand
	// rrNext is the next thread index to consider under round-robin.
	rrNext int
	// steps counts executed ops, for the stats consumers.
	steps uint64
}

// New prepares a scheduler for one run of prog. The program must already be
// validated.
func New(prog *program.Program, cfg Config) (*Scheduler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{
		prog:    prog,
		cfg:     cfg,
		threads: make([]threadState, len(prog.Threads)),
		mutexes: make([]mutexState, prog.Mutexes),
		bars:    make([]barrierState, prog.Barriers),
		sems:    make([]semState, prog.Semaphores),
	}
	for i := range s.mutexes {
		s.mutexes[i].owner = -1
	}
	if cfg.Policy == RandomInterleave {
		s.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return s, nil
}

// CtxOf returns the hardware context thread t runs on.
func (s *Scheduler) CtxOf(t vclock.TID) cache.Context {
	if s.cfg.CtxOf != nil {
		return s.cfg.CtxOf(t)
	}
	return cache.Context(int(t) % s.cfg.Contexts)
}

// Steps returns the number of ops executed so far.
func (s *Scheduler) Steps() uint64 { return s.steps }

// Run executes the program to completion, delivering every op to ex.
// It returns a *DeadlockError if the program cannot finish.
func (s *Scheduler) Run(ex Executor) error {
	return s.RunContext(context.Background(), ex)
}

// RunContext is Run with cooperative cancellation: ctx is polled at every
// scheduler-quantum boundary (between slots, never mid-op), so a long
// simulation aborts within one quantum of cancellation while the executed
// prefix stays exactly the prefix a full run would have produced. A context
// without a Done channel (context.Background) adds no per-slot cost.
func (s *Scheduler) RunContext(ctx context.Context, ex Executor) error {
	done := ctx.Done()
	for {
		if done != nil {
			select {
			case <-done:
				return &InterruptedError{Steps: s.steps, Err: ctx.Err()}
			default:
			}
		}
		ti, ok := s.pick()
		if !ok {
			if s.allDone() {
				return nil
			}
			return s.deadlock()
		}
		s.runSlot(ti, ex)
	}
}

// pick chooses the next ready thread, or ok=false if none are ready.
func (s *Scheduler) pick() (int, bool) {
	n := len(s.threads)
	switch s.cfg.Policy {
	case RandomInterleave:
		ready := make([]int, 0, n)
		for i := range s.threads {
			if s.threads[i].status == stReady {
				ready = append(ready, i)
			}
		}
		if len(ready) == 0 {
			return 0, false
		}
		return ready[s.rng.Intn(len(ready))], true
	default: // RoundRobin
		for off := 0; off < n; off++ {
			i := (s.rrNext + off) % n
			if s.threads[i].status == stReady {
				s.rrNext = (i + 1) % n
				return i, true
			}
		}
		return 0, false
	}
}

func (s *Scheduler) allDone() bool {
	for i := range s.threads {
		if s.threads[i].status != stDone {
			return false
		}
	}
	return true
}

func (s *Scheduler) deadlock() error {
	var blocked []string
	for i := range s.threads {
		st := &s.threads[i]
		if st.status == stDone || st.status == stReady {
			continue
		}
		var what string
		switch st.status {
		case stBlockedMutex:
			what = fmt.Sprintf("t%d waits mutex #%d (held by t%d)",
				i, st.waitOn, s.mutexes[st.waitOn].owner)
		case stBlockedBarrier:
			what = fmt.Sprintf("t%d waits barrier #%d (%d/%d arrived)",
				i, st.waitOn, len(s.bars[st.waitOn].waiting), s.prog.BarrierParties[st.waitOn])
		case stBlockedSem:
			what = fmt.Sprintf("t%d waits semaphore #%d", i, st.waitOn)
		}
		blocked = append(blocked, what)
	}
	return &DeadlockError{Blocked: blocked}
}

// runSlot runs thread ti for up to Quantum ops or until it blocks/finishes.
func (s *Scheduler) runSlot(ti int, ex Executor) {
	tid := vclock.TID(ti)
	ctx := s.CtxOf(tid)
	st := &s.threads[ti]
	ops := s.prog.Threads[ti].Ops
	for q := 0; q < s.cfg.Quantum; q++ {
		if st.pc >= len(ops) {
			st.status = stDone
			return
		}
		op := ops[st.pc]
		switch op.Kind {
		case program.OpLock:
			m := &s.mutexes[op.Sync]
			if m.owner != -1 {
				st.status = stBlockedMutex
				st.waitOn = op.Sync
				return
			}
			m.owner = tid
			s.exec(ex, tid, ctx, op)
			st.pc++
		case program.OpUnlock:
			m := &s.mutexes[op.Sync]
			if m.owner != tid {
				// Validate() rules this out for well-formed programs; a
				// mutation bug would corrupt state silently, so fail loudly.
				panic(fmt.Sprintf("sched: t%d unlocks mutex #%d owned by t%d", tid, op.Sync, m.owner))
			}
			s.exec(ex, tid, ctx, op)
			m.owner = -1
			st.pc++
			s.wakeAll(stBlockedMutex, op.Sync)
		case program.OpBarrier:
			b := &s.bars[op.Sync]
			b.waiting = append(b.waiting, tid)
			if len(b.waiting) < s.prog.BarrierParties[op.Sync] {
				st.status = stBlockedBarrier
				st.waitOn = op.Sync
				return
			}
			// Last arrival: release everyone.
			parties := append([]vclock.TID(nil), b.waiting...)
			sort.Slice(parties, func(i, j int) bool { return parties[i] < parties[j] })
			b.waiting = b.waiting[:0]
			s.steps++
			ex.BarrierRelease(op.Sync, parties)
			for _, p := range parties {
				ps := &s.threads[p]
				ps.status = stReady
				ps.pc++
			}
			// The releasing thread's pc was advanced above; end the slot so
			// peers get to run promptly.
			return
		case program.OpSignal:
			s.exec(ex, tid, ctx, op)
			s.sems[op.Sync].count++
			st.pc++
			s.wakeAll(stBlockedSem, op.Sync)
		case program.OpWait:
			sem := &s.sems[op.Sync]
			if sem.count == 0 {
				st.status = stBlockedSem
				st.waitOn = op.Sync
				return
			}
			sem.count--
			s.exec(ex, tid, ctx, op)
			st.pc++
		default:
			s.exec(ex, tid, ctx, op)
			st.pc++
		}
	}
	if st.pc >= len(ops) {
		st.status = stDone
	}
}

func (s *Scheduler) exec(ex Executor, t vclock.TID, ctx cache.Context, op program.Op) {
	s.steps++
	ex.Exec(t, ctx, op)
}

// wakeAll moves every thread blocked with the given status on id back to
// ready; they re-attempt their blocking op when next scheduled.
func (s *Scheduler) wakeAll(status threadStatus, id program.SyncID) {
	for i := range s.threads {
		st := &s.threads[i]
		if st.status == status && st.waitOn == id {
			st.status = stReady
		}
	}
}
