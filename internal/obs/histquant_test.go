package obs

import "testing"

// Quantile edge cases: the estimator must stay sane at the boundaries the
// tsdb sampler hits every tick — empty histograms, a single observation,
// and degenerate all-equal distributions.

func TestQuantileEmptyHistogram(t *testing.T) {
	h := NewRegistry().Histogram("empty", []float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 {
		t.Error("nil histogram is not a no-op")
	}
}

func TestQuantileSingleSample(t *testing.T) {
	h := NewRegistry().Histogram("single", []float64{1, 2, 4})
	h.Observe(1.5)
	// One sample in (1, 2]: every quantile must interpolate inside that
	// bucket, and the extremes must hit its edges.
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want bucket floor 1", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Errorf("Quantile(1) = %v, want bucket ceiling 2", got)
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if got < 1 || got > 2 {
			t.Errorf("Quantile(%v) = %v, escaped the sample's bucket (1, 2]", q, got)
		}
	}
	// Out-of-range q clamps rather than extrapolating.
	if h.Quantile(-3) != h.Quantile(0) || h.Quantile(7) != h.Quantile(1) {
		t.Error("out-of-range quantiles did not clamp")
	}
}

func TestQuantileAllEqualSamples(t *testing.T) {
	h := NewRegistry().Histogram("equal", []float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	// All mass in (2, 4]: the median interpolates to exactly the midpoint,
	// and no quantile may leave the bucket.
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %v, want 3", got)
	}
	prev := 0.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if got < 2 || got > 4 {
			t.Errorf("Quantile(%v) = %v, escaped bucket (2, 4]", q, got)
		}
		if got < prev {
			t.Errorf("Quantile(%v) = %v, not monotonic (prev %v)", q, got, prev)
		}
		prev = got
	}
}

func TestQuantileOverflowClampsToTopBound(t *testing.T) {
	h := NewRegistry().Histogram("overflow", []float64{1, 2, 4})
	h.Observe(1000) // +Inf bucket
	if got := h.Quantile(0.99); got != 4 {
		t.Errorf("Quantile in +Inf bucket = %v, want top finite bound 4", got)
	}
}

func TestQuantileNoFiniteBoundsFallsBackToMean(t *testing.T) {
	h := NewRegistry().Histogram("unbounded", nil)
	h.Observe(2)
	h.Observe(4)
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("bound-less Quantile = %v, want mean 3", got)
	}
}
