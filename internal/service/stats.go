package service

import (
	"time"

	"demandrace/internal/obs"
	"demandrace/internal/tenant"
)

// LatencySummary condenses one wall-clock histogram into the percentiles an
// operator actually reads. Percentiles are bucket-interpolated estimates
// (the same estimator as Prometheus's histogram_quantile).
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"` // estimate: p100 clamps to the top finite bucket bound
}

// EndpointStats is one row of the per-route latency table.
type EndpointStats struct {
	Route string `json:"route"`
	LatencySummary
}

// QueueStats describes submission-queue pressure.
type QueueStats struct {
	Depth     int  `json:"depth"`
	Capacity  int  `json:"capacity"`
	HighWater int  `json:"high_water"`
	Degraded  bool `json:"degraded"`
}

// JobStats aggregates the job lifecycle counters.
type JobStats struct {
	Submitted      uint64 `json:"submitted"`
	Completed      uint64 `json:"completed"`
	Failed         uint64 `json:"failed"`
	Canceled       uint64 `json:"canceled"`
	Rejected       uint64 `json:"rejected"`
	Inflight       int64  `json:"inflight"`
	UtilizationPct int64  `json:"utilization_pct"`
}

// SLOStats is the request-latency error budget: of Requests measured,
// Breaches exceeded ThresholdMS; the budget is the (1-Target) share the
// service may burn while still Healthy.
type SLOStats struct {
	ThresholdMS float64 `json:"threshold_ms"`
	Target      float64 `json:"target"`
	Requests    uint64  `json:"requests"`
	Breaches    uint64  `json:"breaches"`
	Compliance  float64 `json:"compliance"`
	BudgetUsed  float64 `json:"budget_used"`
	Healthy     bool    `json:"healthy"`
}

// DetectorStats aggregates race-detector work across every job this process
// has run (simulation runs and trace replays alike), read back from the
// ddrace_detector_* counters the runner publishes. The four hit/fallback
// rows partition Reads+Writes in epoch mode: same-epoch and owned are the
// O(1) fast paths, epoch fallbacks ran the constant-time HB comparisons,
// and VC fallbacks walked a read vector clock.
type DetectorStats struct {
	Reads          uint64 `json:"reads"`
	Writes         uint64 `json:"writes"`
	SameEpochHits  uint64 `json:"same_epoch_hits"`
	OwnedHits      uint64 `json:"owned_hits"`
	EpochFallbacks uint64 `json:"epoch_fallbacks"`
	VCFallbacks    uint64 `json:"vc_fallbacks"`
	ReadInflations uint64 `json:"read_inflations"`
	ReadSpills     uint64 `json:"read_spills"`
	SyncOps        uint64 `json:"sync_ops"`
	Races          uint64 `json:"races"`
	Suppressed     uint64 `json:"suppressed"`
}

// StoreStats describes the optional on-disk result store.
type StoreStats struct {
	Dir     string `json:"dir"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
}

// StatsSummary is the GET /v1/stats document: a self-contained operational
// snapshot assembled from the wall-clock side of the registry. It is a
// diagnostics surface — values here are intentionally non-deterministic,
// unlike the simulation exports.
//
// Node names the process that produced the document. Queue pressure and
// SLO numbers are inherently per-process, so when ddgate merges backend
// stats into its aggregated view, the node field is what keeps each row
// attributable to one backend rather than reading as cluster totals.
type StatsSummary struct {
	Node          string          `json:"node"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Workers       int             `json:"workers"`
	Health        string          `json:"health"`
	Queue         QueueStats      `json:"queue"`
	Jobs          JobStats        `json:"jobs"`
	Endpoints     []EndpointStats `json:"endpoints"`
	QueueWait     LatencySummary  `json:"queue_wait"`
	JobDuration   LatencySummary  `json:"job_duration"`
	SLO           SLOStats        `json:"slo"`
	Detector      DetectorStats   `json:"detector"`
	Store         *StoreStats     `json:"store,omitempty"`
	Tenants       []tenant.Stats  `json:"tenants,omitempty"`
}

// summarize reads one histogram into a LatencySummary.
func summarize(h *obs.Histogram) LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		P50MS: h.Quantile(0.50),
		P90MS: h.Quantile(0.90),
		P99MS: h.Quantile(0.99),
		MaxMS: h.Quantile(1.0),
	}
}

// Stats assembles the current operational snapshot served at GET /v1/stats.
func (s *Server) Stats() StatsSummary {
	health, queued, _ := s.Health()

	sum := StatsSummary{
		Node:          s.cfg.Node,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.cfg.Workers,
		Health:        health,
		Queue: QueueStats{
			Depth:     queued,
			Capacity:  s.cfg.QueueDepth,
			HighWater: s.cfg.QueueHighWater,
			Degraded:  health == HealthDegraded,
		},
		Jobs: JobStats{
			Submitted:      s.cSubmit.Value(),
			Completed:      s.cComplete.Value(),
			Failed:         s.cFail.Value(),
			Canceled:       s.cCancel.Value(),
			Rejected:       s.cReject.Value(),
			Inflight:       s.gInflight.Value(),
			UtilizationPct: s.gUtil.Value(),
		},
		QueueWait:   summarize(s.hWait),
		JobDuration: summarize(s.hJobDur),
	}

	// The route table reuses the handler registration order, so the JSON is
	// stable run to run even though the values are wall-clock.
	for _, rt := range s.routes() {
		h := s.reg.Histogram(obs.SvcHTTPLatencyPrefix+rt.key, obs.LatencyBuckets)
		sum.Endpoints = append(sum.Endpoints, EndpointStats{
			Route:          rt.key,
			LatencySummary: summarize(h),
		})
	}

	slo := SLOStats{
		ThresholdMS: float64(s.cfg.SLOLatency) / float64(time.Millisecond),
		Target:      s.cfg.SLOTarget,
		Requests:    s.reg.CounterValue(obs.SvcSLORequests),
		Breaches:    s.reg.CounterValue(obs.SvcSLOBreaches),
		Compliance:  1,
		Healthy:     true,
	}
	if slo.Requests > 0 {
		slo.Compliance = 1 - float64(slo.Breaches)/float64(slo.Requests)
		if budget := 1 - slo.Target; budget > 0 {
			slo.BudgetUsed = (float64(slo.Breaches) / float64(slo.Requests)) / budget
		}
		slo.Healthy = slo.Compliance >= slo.Target
	}
	sum.SLO = slo
	sum.Detector = DetectorStats{
		Reads:          s.reg.CounterValue("ddrace_detector_reads_total"),
		Writes:         s.reg.CounterValue("ddrace_detector_writes_total"),
		SameEpochHits:  s.reg.CounterValue("ddrace_detector_same_epoch_hits_total"),
		OwnedHits:      s.reg.CounterValue("ddrace_detector_owned_hits_total"),
		EpochFallbacks: s.reg.CounterValue("ddrace_detector_epoch_fallbacks_total"),
		VCFallbacks:    s.reg.CounterValue("ddrace_detector_vc_fallbacks_total"),
		ReadInflations: s.reg.CounterValue("ddrace_detector_read_inflations_total"),
		ReadSpills:     s.reg.CounterValue("ddrace_detector_read_spills_total"),
		SyncOps:        s.reg.CounterValue("ddrace_detector_sync_ops_total"),
		Races:          s.reg.CounterValue("ddrace_detector_races_total"),
		Suppressed:     s.reg.CounterValue("ddrace_detector_suppressed_total"),
	}
	if s.cfg.Store != nil {
		sum.Store = &StoreStats{
			Dir:     s.cfg.Store.Dir(),
			Entries: s.cfg.Store.Len(),
			Bytes:   s.cfg.Store.Size(),
		}
	}
	sum.Tenants = s.tenants.StatsSnapshot()
	return sum
}
