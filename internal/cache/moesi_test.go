package cache

import (
	"math/rand"
	"testing"

	"demandrace/internal/mem"
)

func moesiConfig() Config {
	cfg := DefaultConfig()
	cfg.Protocol = MOESI
	return cfg
}

func TestMOESIReadKeepsDirtyOwner(t *testing.T) {
	h := New(moesiConfig())
	h.Access(0, addr(5, 0), true) // M in core 0
	res := h.Access(1, addr(5, 0), false)
	if !res.HITM {
		t.Fatal("first consumer should take a dirty intervention")
	}
	if h.StateOf(0, 5) != Owned {
		t.Errorf("owner state = %v, want O", h.StateOf(0, 5))
	}
	if h.StateOf(1, 5) != Shared {
		t.Errorf("consumer state = %v, want S", h.StateOf(1, 5))
	}
	// No writeback happened: the LLC copy (from the fill) is still clean.
	if _, dirty := h.LLCStateOf(5); dirty {
		t.Error("MOESI read must not write back")
	}
}

func TestMOESIEveryNewConsumerHITMs(t *testing.T) {
	// The protocol delta the ablation measures: under MESI the second
	// consumer fills silently from the LLC; under MOESI the Owned line
	// keeps supplying dirty interventions.
	run := func(p Protocol) uint64 {
		cfg := DefaultConfig()
		cfg.Protocol = p
		h := New(cfg)
		h.Access(0, addr(5, 0), true)
		h.Access(1, addr(5, 0), false)
		h.Access(2, addr(5, 0), false)
		h.Access(3, addr(5, 0), false)
		return h.Stats().HITM
	}
	if got := run(MESI); got != 1 {
		t.Errorf("MESI HITMs = %d, want 1", got)
	}
	if got := run(MOESI); got != 3 {
		t.Errorf("MOESI HITMs = %d, want 3", got)
	}
}

func TestMOESIWriteInvalidatesOwnerAndSharers(t *testing.T) {
	h := New(moesiConfig())
	h.Access(0, addr(5, 0), true)  // M
	h.Access(1, addr(5, 0), false) // O/S
	res := h.Access(2, addr(5, 0), true)
	if !res.HITM {
		t.Fatal("RFO over Owned line should HITM")
	}
	if h.StateOf(0, 5) != Invalid || h.StateOf(1, 5) != Invalid {
		t.Errorf("peers not invalidated: %v %v", h.StateOf(0, 5), h.StateOf(1, 5))
	}
	if h.StateOf(2, 5) != Modified {
		t.Errorf("writer state = %v, want M", h.StateOf(2, 5))
	}
}

func TestMOESIOwnerUpgradeOtoM(t *testing.T) {
	h := New(moesiConfig())
	h.Access(0, addr(5, 0), true)
	h.Access(1, addr(5, 0), false) // core0 O, core1 S
	res := h.Access(0, addr(5, 0), true)
	if !res.HitL1 {
		t.Error("O→M upgrade should hit locally")
	}
	if h.StateOf(0, 5) != Modified || h.StateOf(1, 5) != Invalid {
		t.Errorf("states after upgrade: %v %v", h.StateOf(0, 5), h.StateOf(1, 5))
	}
}

func TestMOESIOwnedEvictionWritesBack(t *testing.T) {
	cfg := Config{Cores: 2, SMT: 1, L1Sets: 2, L1Ways: 2, L2Sets: 8, L2Ways: 4, Protocol: MOESI}
	h := New(cfg)
	h.Access(0, addr(1, 0), true)
	h.Access(1, addr(1, 0), false) // core0 now Owned
	// Evict line 1 from core 0 (set 1 holds odd lines).
	h.Access(0, addr(3, 0), false)
	h.Access(0, addr(5, 0), false)
	if h.StateOf(0, 1) != Invalid {
		t.Fatal("owned line should have been evicted")
	}
	if h.Stats().Writebacks == 0 {
		t.Error("owned eviction must write back")
	}
	if p, dirty := h.LLCStateOf(1); !p || !dirty {
		t.Errorf("LLC after owned eviction: present %v dirty %v", p, dirty)
	}
}

func TestMOESIInvariantsRandom(t *testing.T) {
	cfgs := []Config{
		{Cores: 4, SMT: 1, L1Sets: 2, L1Ways: 2, L2Sets: 16, L2Ways: 2, Protocol: MOESI},
		{Cores: 2, SMT: 2, L1Sets: 4, L1Ways: 2, L2Sets: 16, L2Ways: 2, Protocol: MOESI},
		{Cores: 4, SMT: 1, L1Sets: 4, L1Ways: 2, Protocol: MOESI}, // no LLC
	}
	for _, cfg := range cfgs {
		r := rand.New(rand.NewSource(21))
		h := New(cfg)
		for i := 0; i < 20000; i++ {
			ctx := Context(r.Intn(cfg.Contexts()))
			a := addr(uint64(r.Intn(24)), uint64(r.Intn(8)*8))
			h.Access(ctx, a, r.Intn(2) == 0)
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("cfg %+v step %d: %v", cfg, i, err)
			}
		}
	}
}

func TestMOESIHITMIffRemoteDirty(t *testing.T) {
	// Under MOESI the indicator property generalizes: HITM iff some other
	// core held the line Modified OR Owned.
	cfg := Config{Cores: 4, SMT: 1, L1Sets: 2, L1Ways: 2, L2Sets: 8, L2Ways: 4, Protocol: MOESI}
	r := rand.New(rand.NewSource(9))
	h := New(cfg)
	for i := 0; i < 20000; i++ {
		ctx := Context(r.Intn(cfg.Contexts()))
		a := addr(uint64(r.Intn(16)), 0)
		l := a >> 6
		core := h.CoreOf(ctx)
		remoteDirty := false
		for c := 0; c < cfg.Cores; c++ {
			if c == core {
				continue
			}
			if st := h.StateOf(c, mem.Line(l)); st == Modified || st == Owned {
				remoteDirty = true
			}
		}
		localHit := h.StateOf(core, mem.Line(l)) != Invalid
		res := h.Access(ctx, a, r.Intn(2) == 0)
		if res.HITM != (remoteDirty && !localHit) {
			t.Fatalf("step %d: HITM=%v want %v", i, res.HITM, remoteDirty && !localHit)
		}
	}
}

func TestProtocolString(t *testing.T) {
	if MESI.String() != "MESI" || MOESI.String() != "MOESI" {
		t.Error("protocol strings wrong")
	}
	if Owned.String() != "O" {
		t.Error("Owned string wrong")
	}
}
