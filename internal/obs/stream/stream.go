// Package stream is the live event layer: a small publish/subscribe bus
// for operational events (job lifecycle, cache activity, ring membership)
// served over Server-Sent Events at GET /v1/events.
//
// The design constraint that shapes everything here is that a slow
// subscriber must never block the worker pool. Publish is non-blocking by
// construction: each subscriber owns a bounded ring buffer; when a
// subscriber falls behind, its oldest undelivered events are dropped and
// counted, and the subscriber can see the gap in the event sequence
// numbers. The bus never applies backpressure to publishers — operational
// visibility rides along with the service, it does not steer it.
package stream

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Event types published by the service and cluster tiers.
const (
	// TypeJobQueued fires when a job is admitted to the queue.
	TypeJobQueued = "job_queued"
	// TypeJobStarted fires when a worker picks the job up.
	TypeJobStarted = "job_started"
	// TypeJobDone fires when a job completes (Detail carries the state).
	TypeJobDone = "job_done"
	// TypeCacheHit fires when a submit is served from the result cache.
	TypeCacheHit = "cache_hit"
	// TypeRingChange fires when a gateway marks a backend up or down.
	TypeRingChange = "ring_change"
	// TypeHello is the first event on every subscription, so a tail shows
	// who it is connected to before any job activity happens.
	TypeHello = "hello"
	// TypeTraceChunk fires when a streaming-ingest session applies a chunk
	// (Job carries the session ID; Detail carries seq/bytes/events/races).
	TypeTraceChunk = "trace_chunk"
	// TypeRaceFound fires the moment an in-flight upload's live analysis
	// surfaces a new race, before the session commits (Detail carries
	// addr/kind/cur/prev).
	TypeRaceFound = "race_found"
)

// Event is one operational occurrence, JSON-encoded on the wire.
type Event struct {
	// Seq is the bus-assigned sequence number, strictly increasing per
	// publishing process. Gaps visible to a subscriber mean drops.
	Seq uint64 `json:"seq"`
	// UnixMS is the publish time in milliseconds.
	UnixMS int64 `json:"t"`
	// Type is one of the Type* constants.
	Type string `json:"type"`
	// Node names the publishing process.
	Node string `json:"node,omitempty"`
	// Job is the job ID the event concerns, if any.
	Job string `json:"job,omitempty"`
	// Trace is the trace ID of the request that caused the event, if any.
	Trace string `json:"trace,omitempty"`
	// Detail carries event-specific fields (state, backend, health, ...).
	Detail map[string]string `json:"detail,omitempty"`
}

// DefaultSubBuffer bounds each subscriber's undelivered-event ring.
const DefaultSubBuffer = 256

// Sub is one subscription: a bounded drop-oldest ring the bus writes into
// and the subscriber drains via Next.
type Sub struct {
	bus *Bus

	mu      sync.Mutex
	buf     []Event
	head    int
	n       int
	dropped uint64
	closed  bool

	// wake has capacity 1: publish does a non-blocking send, Next drains.
	wake chan struct{}
}

// push appends ev, evicting the oldest buffered event when full. Never
// blocks.
func (s *Sub) push(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.buf) {
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
	}
	s.buf[(s.head+s.n)%len(s.buf)] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Next returns the oldest undelivered event, blocking until one arrives,
// ctx is done, or the subscription is closed. The boolean is false when
// no more events will come.
func (s *Sub) Next(ctx context.Context) (Event, bool) {
	for {
		s.mu.Lock()
		if s.n > 0 {
			ev := s.buf[s.head]
			s.head = (s.head + 1) % len(s.buf)
			s.n--
			s.mu.Unlock()
			return ev, true
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, false
		}
		select {
		case <-s.wake:
		case <-ctx.Done():
			return Event{}, false
		}
	}
}

// Dropped returns how many events this subscriber lost to the buffer
// bound.
func (s *Sub) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close detaches the subscription from the bus. Idempotent.
func (s *Sub) Close() {
	s.bus.unsubscribe(s)
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		return
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Bus fans events out to subscribers. A nil *Bus is a valid no-op
// publisher, so event publication can be wired unconditionally.
type Bus struct {
	node string

	mu   sync.Mutex
	seq  uint64
	subs map[*Sub]struct{}
}

// NewBus builds a bus whose events carry node as their origin.
func NewBus(node string) *Bus {
	return &Bus{node: node, subs: make(map[*Sub]struct{})}
}

// Publish stamps ev (sequence, time, node) and delivers it to every
// subscriber without blocking. Nil-safe.
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	if ev.UnixMS == 0 {
		ev.UnixMS = time.Now().UnixMilli()
	}
	if ev.Node == "" {
		ev.Node = b.node
	}
	subs := make([]*Sub, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	for _, s := range subs {
		s.push(ev)
	}
}

// Subscribe attaches a new subscriber with a ring of the given size
// (<= 0 takes DefaultSubBuffer). Returns nil on a nil bus.
func (b *Bus) Subscribe(buffer int) *Sub {
	if b == nil {
		return nil
	}
	if buffer <= 0 {
		buffer = DefaultSubBuffer
	}
	s := &Sub{
		bus:  b,
		buf:  make([]Event, buffer),
		wake: make(chan struct{}, 1),
	}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

func (b *Bus) unsubscribe(s *Sub) {
	if b == nil {
		return
	}
	b.mu.Lock()
	delete(b.subs, s)
	b.mu.Unlock()
}

// Subscribers returns the current subscriber count. Nil-safe.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// keepalive is how often the SSE handler emits a comment line when no
// events flow, so idle connections are detected and proxies keep the
// stream open.
const keepalive = 15 * time.Second

// ServeSSE streams the bus over w as Server-Sent Events until the request
// context ends. The first event is a hello carrying the node name; after
// that, every published event becomes an `event:`/`data:` block. Slow
// readers lose oldest events (never service throughput).
func ServeSSE(w http.ResponseWriter, r *http.Request, b *Bus) {
	if b == nil {
		http.Error(w, "event stream unavailable", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	sub := b.Subscribe(0)
	defer sub.Close()

	hello := Event{
		UnixMS: time.Now().UnixMilli(),
		Type:   TypeHello,
		Node:   b.node,
	}
	if err := writeSSE(w, hello); err != nil {
		return
	}
	fl.Flush()

	ctx := r.Context()
	for {
		next, cancel := context.WithTimeout(ctx, keepalive)
		ev, ok := sub.Next(next)
		cancel()
		if !ok {
			if ctx.Err() != nil {
				return
			}
			// Keepalive window elapsed with no events: emit a comment so
			// the connection stays demonstrably alive.
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
			continue
		}
		if err := writeSSE(w, ev); err != nil {
			return
		}
		fl.Flush()
	}
}

// writeSSE renders one event as an SSE block.
func writeSSE(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	return err
}

// Decoder reads Server-Sent Events produced by ServeSSE back into Events —
// the client half used by `ddrace -watch` and by a gateway tailing its
// backends.
type Decoder struct {
	r *bufio.Reader
}

// NewDecoder wraps r for event decoding.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// Next returns the next event, skipping comments and blank lines. io.EOF
// signals a cleanly closed stream.
func (d *Decoder) Next() (Event, error) {
	var data string
	for {
		line, err := d.r.ReadString('\n')
		if err != nil {
			return Event{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "" && data != "":
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				return Event{}, fmt.Errorf("stream: decoding event: %w", err)
			}
			return ev, nil
		}
	}
}
