package program

import (
	"bytes"
	"strings"
	"testing"

	"demandrace/internal/mem"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("basic")
	a := b.Space().AllocLine(8)
	mu := b.Mutex()
	t0 := b.Thread()
	t0.Store(a).Lock(mu).Load(a).Unlock(mu).Compute(5)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumThreads() != 1 || p.TotalOps() != 5 || p.MemOps() != 2 {
		t.Errorf("counts: threads=%d ops=%d mem=%d", p.NumThreads(), p.TotalOps(), p.MemOps())
	}
	if p.Mutexes != 1 {
		t.Errorf("mutexes = %d", p.Mutexes)
	}
}

func TestThreadIDsDense(t *testing.T) {
	b := NewBuilder("ids")
	a := b.Space().AllocLine(8)
	for i := 0; i < 4; i++ {
		b.Thread().Load(a)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i, th := range p.Threads {
		if int(th.ID) != i {
			t.Errorf("thread %d has ID %d", i, th.ID)
		}
	}
}

func TestValidateRejectsZeroAddress(t *testing.T) {
	b := NewBuilder("zero")
	b.Thread().Load(0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "zero address") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateRejectsUnlockUnheld(t *testing.T) {
	b := NewBuilder("unheld")
	mu := b.Mutex()
	b.Thread().Unlock(mu)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unheld") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateRejectsRecursiveLock(t *testing.T) {
	b := NewBuilder("recursive")
	mu := b.Mutex()
	b.Thread().Lock(mu).Lock(mu).Unlock(mu).Unlock(mu)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateRejectsHeldAtExit(t *testing.T) {
	b := NewBuilder("held")
	mu := b.Mutex()
	b.Thread().Lock(mu)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "still held") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateRejectsBadSyncIDs(t *testing.T) {
	cases := []func(*Builder, *ThreadBuilder){
		func(b *Builder, t *ThreadBuilder) { t.Lock(5).Unlock(5) },
		func(b *Builder, t *ThreadBuilder) { t.Barrier(5) },
		func(b *Builder, t *ThreadBuilder) { t.Signal(5) },
		func(b *Builder, t *ThreadBuilder) { t.Wait(5) },
	}
	for i, f := range cases {
		b := NewBuilder("bad")
		tb := b.Thread()
		f(b, tb)
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestValidateRejectsBarrierPartyMismatch(t *testing.T) {
	b := NewBuilder("parties")
	bar := b.Barrier(3) // declares 3 parties
	b.Thread().Barrier(bar)
	b.Thread().Barrier(bar) // only 2 use it
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "parties") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateAcceptsBarrier(t *testing.T) {
	b := NewBuilder("parties-ok")
	bar := b.Barrier(2)
	b.Thread().Barrier(bar)
	b.Thread().Barrier(bar)
	if _, err := b.Build(); err != nil {
		t.Errorf("err = %v", err)
	}
}

func TestValidateRejectsZeroCompute(t *testing.T) {
	b := NewBuilder("compute0")
	b.Thread().Compute(0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "zero-cycle") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateRejectsEmptyProgram(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Error("empty program should fail validation")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on invalid program")
		}
	}()
	NewBuilder("boom").MustBuild()
}

func TestKindClassification(t *testing.T) {
	memOps := []Kind{OpLoad, OpStore, OpAtomicLoad, OpAtomicStore}
	for _, k := range memOps {
		if !k.IsMemory() {
			t.Errorf("%v should be memory", k)
		}
	}
	syncOps := []Kind{OpLock, OpUnlock, OpBarrier, OpSignal, OpWait, OpAtomicLoad, OpAtomicStore}
	for _, k := range syncOps {
		if !k.IsSync() {
			t.Errorf("%v should be sync", k)
		}
	}
	for _, k := range []Kind{OpLoad, OpStore, OpCompute} {
		if k.IsSync() {
			t.Errorf("%v should not be sync", k)
		}
	}
	if !OpStore.IsWrite() || !OpAtomicStore.IsWrite() || OpLoad.IsWrite() || OpAtomicLoad.IsWrite() {
		t.Error("IsWrite misclassifies")
	}
}

func TestOpString(t *testing.T) {
	cases := map[string]Op{
		"load 0x40":  {Kind: OpLoad, Addr: mem.Addr(0x40)},
		"compute 10": {Kind: OpCompute, N: 10},
		"lock #2":    {Kind: OpLock, Sync: 2},
		"barrier #0": {Kind: OpBarrier, Sync: 0},
	}
	for want, op := range cases {
		if got := op.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestSemaphoreAndSignalValid(t *testing.T) {
	b := NewBuilder("sem")
	s := b.Semaphore()
	a := b.Space().AllocLine(8)
	b.Thread().Store(a).Signal(s)
	b.Thread().Wait(s).Load(a)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Semaphores != 1 {
		t.Errorf("semaphores = %d", p.Semaphores)
	}
}

func TestRegionBuilder(t *testing.T) {
	b := NewBuilder("regions")
	a := b.Space().AllocLine(8)
	b.Thread().Region("init").Store(a).Region("work").Load(a).Region("init")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// "init" is interned once.
	if len(p.Labels) != 2 {
		t.Errorf("labels = %v", p.Labels)
	}
	ops := p.Threads[0].Ops
	if ops[0].Kind != OpMark || p.LabelOf(ops[0]) != "init" {
		t.Errorf("first op = %v (%q)", ops[0], p.LabelOf(ops[0]))
	}
	if p.LabelOf(ops[2]) != "work" {
		t.Errorf("third op label = %q", p.LabelOf(ops[2]))
	}
	if p.LabelOf(ops[1]) != "" {
		t.Error("LabelOf non-mark op should be empty")
	}
}

func TestValidateRejectsBadLabelIndex(t *testing.T) {
	p := &Program{
		Name:    "bad-label",
		Threads: []Thread{{ID: 0, Ops: []Op{{Kind: OpMark, N: 5}}}},
	}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "label index") {
		t.Errorf("err = %v", err)
	}
}

func TestDump(t *testing.T) {
	b := NewBuilder("dumpme")
	a := b.Space().AllocLine(8)
	mu := b.Mutex()
	b.Thread().Region("phase-a").Lock(mu).Store(a).Unlock(mu).Compute(3)
	p := b.MustBuild()
	var buf bytes.Buffer
	p.Dump(&buf)
	out := buf.String()
	for _, want := range []string{`program "dumpme"`, "t0 (5 ops)", `region "phase-a"`, "lock #0", "compute 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}
