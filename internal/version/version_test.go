package version

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestStringKeepsCanonicalPrefixAndSingleLine(t *testing.T) {
	got := String("ddrace")
	if !strings.HasPrefix(got, "ddrace version "+Version) {
		t.Fatalf("banner %q lost the canonical prefix", got)
	}
	if strings.ContainsRune(got, '\n') {
		t.Fatalf("banner %q spans lines", got)
	}
}

func TestBuildSuffix(t *testing.T) {
	if got := buildSuffix(nil, false); got != "" {
		t.Fatalf("no build info produced suffix %q", got)
	}
	if got := buildSuffix(&debug.BuildInfo{}, true); got != "" {
		t.Fatalf("empty build info produced suffix %q", got)
	}

	bi := &debug.BuildInfo{
		GoVersion: "go1.24.0",
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "9c9a3cb0d1e2f3a4b5c6d7e8f9a0b1c2d3e4f5a6"},
			{Key: "vcs.modified", Value: "true"},
		},
	}
	got := buildSuffix(bi, true)
	want := " (go1.24.0, rev 9c9a3cb0d1e2+dirty)"
	if got != want {
		t.Fatalf("buildSuffix = %q, want %q", got, want)
	}

	// Clean checkout: no +dirty marker.
	bi.Settings[1].Value = "false"
	if got := buildSuffix(bi, true); strings.Contains(got, "dirty") {
		t.Fatalf("clean build marked dirty: %q", got)
	}

	// Go version alone still renders.
	if got := buildSuffix(&debug.BuildInfo{GoVersion: "go1.24.0"}, true); got != " (go1.24.0)" {
		t.Fatalf("go-only suffix = %q", got)
	}
}
