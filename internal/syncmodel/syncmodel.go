// Package syncmodel tracks the vector clocks attached to synchronization
// objects: the release clocks of mutexes, the cumulative clocks of
// semaphores and atomic variables, and barrier generations.
//
// The race detector consumes this table to build happens-before edges; it is
// split out of the detector because the demand-driven controller keeps sync
// tracking *always on* (the paper instruments synchronization continuously
// — only data-access analysis is toggled), so the sync clocks must stay
// coherent even while data analysis is disabled.
package syncmodel

import (
	"demandrace/internal/mem"
	"demandrace/internal/program"
	"demandrace/internal/vclock"
)

// Table holds the clocks of every sync object in a program.
type Table struct {
	mutexes []*vclock.VC
	sems    []*vclock.VC
	atomics map[mem.Addr]*vclock.VC
}

// NewTable sizes a table for a program's sync objects.
func NewTable(mutexes, semaphores int) *Table {
	t := &Table{
		mutexes: make([]*vclock.VC, mutexes),
		sems:    make([]*vclock.VC, semaphores),
		atomics: make(map[mem.Addr]*vclock.VC),
	}
	for i := range t.mutexes {
		t.mutexes[i] = vclock.New(0)
	}
	for i := range t.sems {
		t.sems[i] = vclock.New(0)
	}
	return t
}

// Mutex returns the release clock of mutex id.
func (t *Table) Mutex(id program.SyncID) *vclock.VC { return t.mutexes[id] }

// Sem returns the cumulative clock of semaphore id.
func (t *Table) Sem(id program.SyncID) *vclock.VC { return t.sems[id] }

// Atomic returns the clock of the atomic variable at addr (word-normalized),
// creating it on first use.
func (t *Table) Atomic(addr mem.Addr) *vclock.VC {
	w := mem.WordOf(addr)
	c, ok := t.atomics[w]
	if !ok {
		c = vclock.New(0)
		t.atomics[w] = c
	}
	return c
}
