package prof

import (
	"bytes"
	"strings"
	"testing"
)

// fakeClock is a settable simulated-cycle clock.
type fakeClock struct{ now uint64 }

func (c *fakeClock) clock() uint64 { return c.now }

func TestTickSamplesOnPeriodBoundary(t *testing.T) {
	p := New(100)
	c := &fakeClock{}
	p.SetClock(c.clock)
	p.SetThreads(2)

	c.now = 99
	p.Tick(0, false)
	if p.Total() != 0 {
		t.Fatalf("sampled before the boundary: %d", p.Total())
	}
	c.now = 100
	p.Tick(0, false)
	if p.Total() != 1 {
		t.Fatalf("boundary crossing should sample once, got %d", p.Total())
	}
	// Same clock value again: the boundary was consumed.
	p.Tick(1, true)
	if p.Total() != 1 {
		t.Fatalf("re-tick at same cycle resampled: %d", p.Total())
	}
}

func TestTickMultiPeriodOpGetsMultipleSamples(t *testing.T) {
	p := New(100)
	c := &fakeClock{}
	p.SetClock(c.clock)
	p.Mark(0, "storm")

	// One op whose charge jumps the clock across 5 boundaries: sample count
	// must be cycle-proportional, like a real PMU interrupt storm.
	c.now = 512
	p.Tick(0, true)
	if p.Total() != 5 {
		t.Fatalf("512 cycles / 100 per sample should book 5 samples, got %d", p.Total())
	}
	pr := p.Snapshot("k")
	if len(pr.Entries) != 1 || pr.Entries[0].Samples != 5 || pr.Entries[0].Site != "storm" {
		t.Fatalf("entries = %+v", pr.Entries)
	}
}

func TestMarkRoutesAttribution(t *testing.T) {
	p := New(10)
	c := &fakeClock{}
	p.SetClock(c.clock)

	p.Mark(0, "map")
	c.now = 10
	p.Tick(0, false)
	p.Mark(0, "reduce")
	c.now = 20
	p.Tick(0, true)
	p.Mark(0, "") // empty label falls back to the root site
	c.now = 30
	p.Tick(0, false)

	pr := p.Snapshot("k")
	bySite := map[string]Entry{}
	for _, e := range pr.Entries {
		bySite[e.Site] = e
	}
	if bySite["map"].Mode != "fast" || bySite["map"].Samples != 1 {
		t.Errorf("map entry = %+v", bySite["map"])
	}
	if bySite["reduce"].Mode != "analysis" || bySite["reduce"].Samples != 1 {
		t.Errorf("reduce entry = %+v", bySite["reduce"])
	}
	if bySite[RootSite].Samples != 1 {
		t.Errorf("root entry = %+v", bySite[RootSite])
	}
}

func TestSnapshotOrderDeterministic(t *testing.T) {
	build := func() *Profile {
		p := New(1)
		c := &fakeClock{}
		p.SetClock(c.clock)
		for i, site := range []string{"b", "a", "c", "a"} {
			th := i % 2
			p.Mark(th, site)
			c.now += 3
			p.Tick(th, i%2 == 0)
		}
		return p.Snapshot("k")
	}
	a, b := build(), build()
	var fa, fb bytes.Buffer
	if err := a.WriteFolded(&fa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFolded(&fb); err != nil {
		t.Fatal(err)
	}
	if fa.String() != fb.String() {
		t.Fatalf("folded output differs between identical runs:\n%s\nvs\n%s", fa.String(), fb.String())
	}
	for i := 1; i < len(a.Entries); i++ {
		p, q := a.Entries[i-1], a.Entries[i]
		if p.Thread > q.Thread ||
			(p.Thread == q.Thread && p.Mode > q.Mode) ||
			(p.Thread == q.Thread && p.Mode == q.Mode && p.Site >= q.Site) {
			t.Fatalf("entries not sorted at %d: %+v then %+v", i, p, q)
		}
	}
}

func TestWriteFoldedFormat(t *testing.T) {
	pr := &Profile{
		Program: "histogram",
		Every:   1024,
		Entries: []Entry{
			{Thread: 0, Mode: "fast", Site: "map", Samples: 3},
			{Thread: 1, Mode: "analysis", Site: "reduce", Samples: 7},
		},
	}
	var buf bytes.Buffer
	if err := pr.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	want := "histogram;t0;fast;map 3\nhistogram;t1;analysis;reduce 7\n"
	if buf.String() != want {
		t.Fatalf("folded output:\n%q\nwant\n%q", buf.String(), want)
	}
	// Flamegraph contract: semicolon-separated frames, space, count.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		stack, count, ok := strings.Cut(line, " ")
		if !ok || strings.Count(stack, ";") != 3 || count == "" {
			t.Errorf("line %q is not a 4-frame folded stack", line)
		}
	}
}

func TestTopAggregatesAcrossThreads(t *testing.T) {
	p := New(10)
	c := &fakeClock{}
	p.SetClock(c.clock)
	// Same site+mode on two threads: Top must merge them.
	p.Mark(0, "hot")
	c.now = 10
	p.Tick(0, true)
	p.Mark(1, "hot")
	c.now = 20
	p.Tick(1, true)
	p.Mark(0, "cold")
	c.now = 30
	p.Tick(0, false)

	tb := p.Snapshot("k").Top(10)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + column row + separator + 2 aggregated rows.
	if !strings.Contains(lines[len(lines)-2], "hot") || !strings.Contains(lines[len(lines)-2], "2") {
		t.Errorf("hottest row should be hot/analysis with 2 samples:\n%s", out)
	}
	if !strings.Contains(out, "cold") {
		t.Errorf("missing cold row:\n%s", out)
	}
}

func TestNilProfilerIsNoOp(t *testing.T) {
	var p *Profiler
	p.SetClock(func() uint64 { return 1 })
	p.SetThreads(4)
	p.Mark(0, "x")
	p.Tick(0, true)
	if p.Total() != 0 || p.Every() != 0 {
		t.Error("nil profiler should account nothing")
	}
	pr := p.Snapshot("k")
	if pr.TotalSamples != 0 || len(pr.Entries) != 0 {
		t.Errorf("nil snapshot = %+v", pr)
	}
}

func TestNoClockNeverFires(t *testing.T) {
	p := New(1)
	p.Tick(0, true)
	if p.Total() != 0 {
		t.Error("profiler without a clock sampled")
	}
}

func TestNewZeroUsesDefault(t *testing.T) {
	if got := New(0).Every(); got != DefaultEvery {
		t.Errorf("Every = %d, want %d", got, DefaultEvery)
	}
}
