package trace

import (
	"bytes"
	"errors"
	"testing"

	"demandrace/internal/program"
	"demandrace/internal/vclock"
)

// limitsTestTrace builds a small valid trace.
func limitsTestTrace(events int) *Trace {
	rec := NewRecorder("limits")
	for i := 0; i < events; i++ {
		rec.RecordOp(vclock.TID(i%4), 0, program.Op{Kind: program.OpLoad, Addr: 64}, i%2 == 0, true)
	}
	return rec.Trace()
}

func encodeTrace(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, tr); err != nil {
		t.Fatalf("EncodeBinary: %v", err)
	}
	return buf.Bytes()
}

func TestDecodeBinaryLimitedEventCap(t *testing.T) {
	raw := encodeTrace(t, limitsTestTrace(100))
	if _, err := DecodeBinaryLimited(bytes.NewReader(raw), DecodeLimits{MaxEvents: 100}); err != nil {
		t.Fatalf("at-limit trace rejected: %v", err)
	}
	_, err := DecodeBinaryLimited(bytes.NewReader(raw), DecodeLimits{MaxEvents: 99})
	var lim *LimitError
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v, want *LimitError", err)
	}
	if lim.What != "events" || lim.Limit != 99 || lim.Got != 100 {
		t.Fatalf("limit error = %+v", lim)
	}
}

func TestDecodeBinaryLimitedByteCap(t *testing.T) {
	raw := encodeTrace(t, limitsTestTrace(1000))
	if _, err := DecodeBinaryLimited(bytes.NewReader(raw), DecodeLimits{MaxBytes: int64(len(raw))}); err != nil {
		t.Fatalf("at-limit trace rejected: %v", err)
	}
	_, err := DecodeBinaryLimited(bytes.NewReader(raw), DecodeLimits{MaxBytes: 64})
	var lim *LimitError
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v, want *LimitError", err)
	}
	if lim.What != "bytes" {
		t.Fatalf("limit error dimension = %q, want bytes", lim.What)
	}
}

// TestDecodeBinaryLyingCount feeds a header that declares more events than
// the stream holds: decode must fail at read time, never allocate for the
// declared count.
func TestDecodeBinaryLyingCount(t *testing.T) {
	raw := encodeTrace(t, limitsTestTrace(4))
	// Event count is a uvarint right after magic+name; for small traces it
	// is a single byte. Bump 4 → 100 (both single-byte uvarints).
	idx := len(magic) + 1 + len("limits")
	if raw[idx] != 4 {
		t.Fatalf("test assumption broken: count byte = %d", raw[idx])
	}
	raw[idx] = 100
	if _, err := DecodeBinary(bytes.NewReader(raw)); err == nil {
		t.Fatal("truncated-under-count trace decoded")
	}
}

func TestDecodeBinaryDefaultLimitsRoundTrip(t *testing.T) {
	tr := limitsTestTrace(50)
	got, err := DecodeBinary(bytes.NewReader(encodeTrace(t, tr)))
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if got.Program != tr.Program || len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip lost data: %d events vs %d", len(got.Events), len(tr.Events))
	}
}
