// Enginesuite: run all three analysis engines — happens-before races,
// Eraser locksets, and lock-order deadlock hazards — over one buggy
// application and write the combined HTML report a developer would
// actually receive.
//
//	go run ./examples/enginesuite
//	go run ./examples/enginesuite -out report.html
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"demandrace"
	"demandrace/internal/report"
	"demandrace/internal/runner"
)

func main() {
	out := flag.String("out", "", "also write an HTML report to this file")
	flag.Parse()

	// A program with one of each bug class: a data race (unlocked hit
	// counter), a lock-order inversion, and a lockset-visible unprotected
	// write.
	b := demandrace.NewProgram("enginesuite")
	hits := b.Space().AllocLine(8)
	cfgVal := b.Space().AllocLine(8)
	a, bb := b.Mutex(), b.Mutex()

	t0 := b.Thread()
	t0.Region("request-handler")
	for i := 0; i < 50; i++ {
		t0.Lock(a).Lock(bb).Load(cfgVal).Unlock(bb).Unlock(a)
		t0.Load(hits).Store(hits) // bug 1: racy counter
		t0.Compute(5)
	}
	t1 := b.Thread()
	t1.Region("config-reloader")
	for i := 0; i < 60; i++ {
		t1.Compute(20)
	}
	for i := 0; i < 10; i++ {
		t1.Lock(bb).Lock(a).Store(cfgVal).Unlock(a).Unlock(bb) // bug 2: ABBA
		t1.Load(hits).Store(hits)
		t1.Compute(5)
	}
	p := b.MustBuild()

	cfg := demandrace.DefaultConfig().WithPolicy(demandrace.Continuous)
	cfg.Lockset = true
	cfg.Deadlock = true
	rep, err := demandrace.Run(p, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s: three engines, one run ===\n\n", p.Name)
	fmt.Printf("happens-before engine: %d race report(s)\n", len(rep.Races))
	for _, r := range rep.Races {
		fmt.Printf("  %v\n", r)
	}
	fmt.Printf("\nlockset engine: %d violation(s)\n", len(rep.LocksetReports))
	for _, r := range rep.LocksetReports {
		fmt.Printf("  %v\n", r)
	}
	fmt.Printf("\nlock-order engine: %d potential deadlock(s)\n", len(rep.DeadlockReports))
	for _, r := range rep.DeadlockReports {
		fmt.Printf("  %v\n", r)
	}

	// The same lock ops feed all engines, so the demand policy keeps
	// deadlock detection at full strength while cutting race-analysis cost.
	dem, err := demandrace.Run(p, func() demandrace.Config {
		c := demandrace.DefaultConfig().WithPolicy(demandrace.HITMDemand)
		c.Deadlock = true
		return c
	}())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunder hitm-demand: %.2f× vs %.2f× continuous, %d deadlock report(s) retained\n",
		dem.Slowdown, rep.Slowdown, len(dem.DeadlockReports))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := report.Write(f, rep, []*runner.Report{dem}...); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nhtml report: %s\n", *out)
	}
}
