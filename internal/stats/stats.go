// Package stats provides the aggregation and table rendering used by the
// experiment harness: geometric means (the paper's suite-level summary
// statistic), arithmetic summaries, and fixed-width table output.
//
// Table is the single rendering path for every figure and table the
// experiments regenerate. Each experiment result exposes a Table() method
// returning one of these; cmd/experiments prints either its aligned text
// form (String) or its CSV form. Because all rendering funnels through
// Table with fixed-precision formatting, "the same numbers" and "the same
// bytes" coincide — which is what lets the determinism regression tests
// compare parallel and serial experiment runs by simple string equality.
//
// Aggregation helpers follow the paper's conventions: suite-level speedups
// are summarized with Geomean (ratios compose multiplicatively), while
// rates and counts use arithmetic Mean. All helpers return NaN on empty or
// invalid input rather than panicking, so a table cell renders as "NaN"
// instead of killing a long experiment sweep.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs, the statistic the paper uses
// for suite-level speedups. Non-positive values are invalid and yield NaN;
// an empty slice yields NaN.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the minimum (NaN for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (NaN for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank on a sorted copy. NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Table renders fixed-width text tables for the experiment harness.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) *Table {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// AddRowf appends a row of formatted cells; each argument is rendered with
// %v except float64, which gets two decimals.
func (t *Table) AddRowf(cells ...interface{}) *Table {
	ss := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			ss[i] = fmt.Sprintf("%.2f", v)
		default:
			ss[i] = fmt.Sprintf("%v", v)
		}
	}
	return t.AddRow(ss...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no title).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
