package runner

import (
	"fmt"

	"demandrace/internal/cost"
	"demandrace/internal/demand"
	"demandrace/internal/program"
)

// CalibrateContinuous solves for the per-access analysis cost that makes
// continuous analysis of p cost target× native speed, holding every other
// model constant. This is how the repository's default constants were
// fitted to the paper's reported slowdowns: pick a reference program and a
// published number, calibrate, and check the rest of the suite lands in
// band.
//
// Under the Continuous policy the tool time decomposes exactly as
//
//	tool = native + memAnalyzed·AnalysisMem + syncAnalyzed·AnalysisSync
//
// so the required AnalysisMem has a closed form. An error is returned when
// the target is unreachable (below the sync-instrumentation floor) or the
// program has no data accesses to charge.
func CalibrateContinuous(p *program.Program, cfg Config, target float64) (cost.Model, error) {
	if target <= 1 {
		return cost.Model{}, fmt.Errorf("runner: calibration target %.2f must exceed 1×", target)
	}
	r, err := Run(p, cfg.WithPolicy(demand.Continuous))
	if err != nil {
		return cost.Model{}, err
	}
	model := cfg.Cost
	if model.AnalysisMem == 0 {
		model = cost.Default()
	}
	mem := r.Demand.MemAnalyzed
	if mem == 0 {
		return cost.Model{}, fmt.Errorf("runner: program %q has no analyzed data accesses", p.Name)
	}
	native := float64(r.NativeCycles)
	syncTerm := float64(r.Demand.SyncAnalyzed) * float64(model.AnalysisSync)
	need := target*native - native - syncTerm
	if need <= 0 {
		return cost.Model{}, fmt.Errorf("runner: target %.2f× is below the sync-instrumentation floor (%.2f×)",
			target, 1+syncTerm/native)
	}
	model.AnalysisMem = uint64(need / float64(mem))
	if model.AnalysisMem == 0 {
		model.AnalysisMem = 1
	}
	return model, nil
}
