package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanLineage(t *testing.T) {
	ctx, root := StartSpan(context.Background(), "http:post_jobs")
	ctx2, child := StartSpan(ctx, "job")

	if SpanFrom(ctx) != root || SpanFrom(ctx2) != child {
		t.Fatal("contexts do not carry the expected spans")
	}
	if child.Parent() != root {
		t.Errorf("child parent = %v, want root", child.Parent().Name())
	}
	if got := child.Path(); got != "http:post_jobs/job" {
		t.Errorf("Path = %q", got)
	}
	if SpanFrom(context.Background()) != nil {
		t.Error("empty context should carry no span")
	}
}

func TestSpanAttrs(t *testing.T) {
	_, s := StartSpan(context.Background(), "s")
	s.SetAttr("job_id", "j-1")
	s.SetAttr("kind", "kernel")
	got := s.Attrs()
	if len(got) != 2 || got[0] != (SpanAttr{"job_id", "j-1"}) || got[1] != (SpanAttr{"kind", "kernel"}) {
		t.Errorf("Attrs = %v", got)
	}
}

func TestSpanEndIdempotentAndObserves(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	_, s := StartSpan(context.Background(), "s")
	s.ObserveInto(h)
	s.ObserveInto(nil) // must be skipped, not crash at End

	d1 := s.End()
	d2 := s.End()
	if d1 != d2 {
		t.Errorf("End not idempotent: %v then %v", d1, d2)
	}
	if got := h.Count(); got != 1 {
		t.Errorf("histogram observed %d times, want 1", got)
	}
	if s.Duration() != d1 {
		t.Errorf("Duration after End = %v, want %v", s.Duration(), d1)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *TimedSpan
	s.SetAttr("k", "v")
	s.ObserveInto(newHistogram(nil))
	if s.End() != 0 || s.Duration() != 0 || s.Name() != "" || s.Path() != "" || s.Parent() != nil || s.Attrs() != nil {
		t.Error("nil span methods must be no-ops")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// 100 observations landing in the (1,10] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	p50 := h.Quantile(0.5)
	if p50 <= 1 || p50 > 10 {
		t.Errorf("p50 = %v, want within (1,10]", p50)
	}
	// Out-of-range q clamps instead of panicking.
	if h.Quantile(-1) < 0 || h.Quantile(2) > 10 {
		t.Errorf("clamped quantiles out of range: %v %v", h.Quantile(-1), h.Quantile(2))
	}
	// +Inf bucket clamps to the top finite bound.
	h2 := newHistogram([]float64{1, 10})
	h2.Observe(1e6)
	if got := h2.Quantile(0.99); got != 10 {
		t.Errorf("overflow quantile = %v, want top bound 10", got)
	}
}

// TestExportersUnderConcurrentWriters hammers the shared registry from
// parallel span/metric emitters while Prometheus exporters snapshot it, and
// runs concurrent NDJSON exports over per-writer tracers (a Tracer is
// single-owner by contract — each simulated run has its own, like its cache
// hierarchy). Both outputs must stay parseable throughout. Run with -race
// this doubles as the data-race check the exporters promise.
func TestExportersUnderConcurrentWriters(t *testing.T) {
	reg := NewRegistry()

	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	start := make(chan struct{})
	tracers := make([]*Tracer, writers)
	for w := 0; w < writers; w++ {
		tracers[w] = NewTracer()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			tr := tracers[w]
			h := reg.Histogram("svc_latency_ms", LatencyBuckets)
			c := reg.Counter("svc_requests_total")
			g := reg.Gauge("svc_inflight")
			for i := 0; i < perWriter; i++ {
				_, s := StartSpan(context.Background(), fmt.Sprintf("w%d", w))
				s.ObserveInto(h)
				s.SetAttr("i", "x")
				c.Inc()
				g.Set(int64(i))
				s.End()
				tr.Emit(KindSampleDelivered, w, 0, uint64(i), 0, "concurrent")
			}
		}(w)
	}

	// A quiesced tracer whose events the NDJSON exporters share read-only.
	done := NewTracer()
	for i := 0; i < 100; i++ {
		done.Emit(KindHITM, i%4, 0, uint64(i), 1, "pre-filled")
	}

	// Exporters race the metric writers: exposition must stay well-formed
	// even when snapshotted mid-update.
	var exwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		exwg.Add(1)
		go func() {
			defer exwg.Done()
			<-start
			for j := 0; j < 20; j++ {
				var prom, nd bytes.Buffer
				if err := reg.WriteProm(&prom); err != nil {
					t.Errorf("WriteProm: %v", err)
				}
				checkPromParses(t, prom.Bytes())
				if err := WriteNDJSON(&nd, done.Events()); err != nil {
					t.Errorf("WriteNDJSON: %v", err)
				}
				checkNDJSONParses(t, nd.Bytes())
			}
		}()
	}
	close(start)
	wg.Wait()
	exwg.Wait()

	// Per-writer tracers, now quiesced, must each export parseable NDJSON.
	for w, tr := range tracers {
		var nd bytes.Buffer
		if err := WriteNDJSON(&nd, tr.Events()); err != nil {
			t.Fatalf("writer %d NDJSON: %v", w, err)
		}
		checkNDJSONParses(t, nd.Bytes())
		if tr.Len() != perWriter {
			t.Errorf("writer %d recorded %d events, want %d", w, tr.Len(), perWriter)
		}
	}

	// Quiesced: totals must be exact.
	if got := reg.CounterValue("svc_requests_total"); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := reg.Histogram("svc_latency_ms", nil).Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), fmt.Sprintf("svc_requests_total %d", writers*perWriter)) {
		t.Errorf("final exposition missing exact total:\n%s", prom.String())
	}
}

// checkPromParses validates the text exposition line-by-line: comments are
// "# TYPE name kind", samples are "name[{labels}] value".
func checkPromParses(t *testing.T, b []byte) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(b))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "TYPE" {
				t.Fatalf("malformed comment line %q", line)
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := fmt.Sscanf(f[1], "%f", new(float64)); err != nil {
			t.Fatalf("non-numeric value in %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

// checkNDJSONParses requires every line to be a standalone JSON object.
func checkNDJSONParses(t *testing.T, b []byte) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(b))
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("NDJSON line does not parse: %v\n%s", err, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSpanDurationRuns(t *testing.T) {
	_, s := StartSpan(context.Background(), "s")
	time.Sleep(time.Millisecond)
	if s.Duration() <= 0 {
		t.Error("running span should report positive elapsed time")
	}
}
