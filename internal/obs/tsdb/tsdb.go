// Package tsdb is the in-process time-series layer: a bounded in-memory
// ring that snapshots an obs.Registry on a fixed interval, turning the
// service's point-in-time metrics into short history an operator can
// actually plot — queue depth over the last hour, p99 latency across a
// deploy, cache hit rate while a backend drained.
//
// The sampling model, per tick:
//
//   - counters become rate samples: the delta since the previous tick
//     (monotonic totals are what /metrics is for; trends want deltas);
//   - gauges are sampled as-is;
//   - histograms become three quantile series (<name>:p50/:p90/:p99) plus
//     a count-delta series (<name>:rate), so latency trends and traffic
//     trends come from one source.
//
// Everything is wall-clock-side by construction: the database holds
// operational history, never deterministic exports, and a bounded ring
// per series caps memory no matter how long the daemon runs. ddserved
// serves its database at GET /v1/timeseries; ddgate aggregates every
// backend's database into a fleet view under the same route.
package tsdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"demandrace/internal/obs"
)

// Kind classifies a series.
const (
	// KindCounter marks a per-tick delta of a monotonic counter.
	KindCounter = "counter"
	// KindGauge marks a sampled gauge value.
	KindGauge = "gauge"
	// KindHistogram marks a quantile or count-rate series derived from a
	// histogram.
	KindHistogram = "histogram"
)

// Sample is one (time, value) observation.
type Sample struct {
	// UnixMS is the sample's wall-clock timestamp in milliseconds.
	UnixMS int64 `json:"t"`
	// Value is the observed value (a delta for counter series).
	Value float64 `json:"v"`
}

// Series is one metric's sampled history.
type Series struct {
	// Metric names the series. Histogram-derived series suffix the source
	// metric with :p50/:p90/:p99/:rate.
	Metric string `json:"metric"`
	// Kind is KindCounter, KindGauge, or KindHistogram.
	Kind string `json:"kind"`
	// Node names the process the series was sampled in — the field that
	// keeps fleet-aggregated documents attributable per backend.
	Node string `json:"node,omitempty"`
	// Samples are in ascending time order.
	Samples []Sample `json:"samples"`
}

// Doc is the GET /v1/timeseries response document.
type Doc struct {
	// Node names the responding process; an aggregating gateway keeps its
	// own name here while the per-series Node fields name the sources.
	Node string `json:"node"`
	// IntervalMS is the sampling period of the responding process.
	IntervalMS int64 `json:"interval_ms"`
	// Series holds every matching series, sorted by (node, metric).
	Series []Series `json:"series"`
}

// Options shape a DB. Zero fields take defaults.
type Options struct {
	// Registry is the metrics source. Required (a nil registry yields an
	// always-empty database).
	Registry *obs.Registry
	// Node names this process in served series.
	Node string
	// Interval is the sampling period (default 5s).
	Interval time.Duration
	// Retention bounds how much history each series keeps (default 1h).
	// The per-series ring holds Retention/Interval samples.
	Retention time.Duration
	// Runtime, when set, refreshes the process runtime gauges
	// (obs.UpdateProcessGauges) at every tick, so goroutine and heap
	// trends ride along for free.
	Runtime bool
}

func (o Options) normalized() Options {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Second
	}
	if o.Retention <= 0 {
		o.Retention = time.Hour
	}
	if o.Retention < o.Interval {
		o.Retention = o.Interval
	}
	return o
}

// ring is one series' bounded sample history.
type ring struct {
	kind    string
	samples []Sample // ring buffer
	head    int      // index of oldest
	n       int
}

func (r *ring) push(s Sample) {
	if r.n < len(r.samples) {
		r.samples[(r.head+r.n)%len(r.samples)] = s
		r.n++
		return
	}
	r.samples[r.head] = s
	r.head = (r.head + 1) % len(r.samples)
}

// since copies samples at or after cutoff (UnixMS), oldest first.
func (r *ring) since(cutoff int64) []Sample {
	out := make([]Sample, 0, r.n)
	for i := 0; i < r.n; i++ {
		s := r.samples[(r.head+i)%len(r.samples)]
		if s.UnixMS >= cutoff {
			out = append(out, s)
		}
	}
	return out
}

// DB is the bounded in-memory time-series database. Build with New, feed
// it with Start (a background ticker) or CollectNow (manual ticks —
// tests, or a caller with its own scheduler), query with Query.
type DB struct {
	opts Options

	mu           sync.Mutex
	series       map[string]*ring
	prevCounters map[string]uint64
	prevHistN    map[string]uint64
	ticks        int
	onTick       func()

	stopOnce sync.Once
	stop     chan struct{}
	stopped  chan struct{}
	started  bool
}

// New builds a DB. No goroutine starts until Start.
func New(opts Options) *DB {
	return &DB{
		opts:         opts.normalized(),
		series:       make(map[string]*ring),
		prevCounters: make(map[string]uint64),
		prevHistN:    make(map[string]uint64),
		stop:         make(chan struct{}),
		stopped:      make(chan struct{}),
	}
}

// Interval returns the sampling period.
func (d *DB) Interval() time.Duration { return d.opts.Interval }

// SetOnTick registers fn to run after every completed sample tick (ticker
// or CollectNow), outside the database lock — the hook the alert engine
// hangs its evaluation on, so rules see each tick's samples exactly once.
func (d *DB) SetOnTick(fn func()) {
	d.mu.Lock()
	d.onTick = fn
	d.mu.Unlock()
}

// Node returns the configured node name.
func (d *DB) Node() string { return d.opts.Node }

// capacity is the per-series ring size.
func (d *DB) capacity() int {
	n := int(d.opts.Retention / d.opts.Interval)
	if n < 2 {
		n = 2
	}
	return n
}

// Start launches the sampling ticker. Idempotent.
func (d *DB) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	go func() {
		defer close(d.stopped)
		t := time.NewTicker(d.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				d.CollectNow()
			case <-d.stop:
				return
			}
		}
	}()
}

// Stop halts the ticker. Idempotent; safe if Start was never called.
func (d *DB) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.mu.Lock()
	started := d.started
	d.mu.Unlock()
	if started {
		<-d.stopped
	}
}

// CollectNow takes one sample of every metric in the registry. The first
// tick establishes counter baselines (a delta needs two observations), so
// counter series appear from the second tick on.
func (d *DB) CollectNow() {
	if d.opts.Runtime {
		obs.UpdateProcessGauges(d.opts.Registry)
	}
	snap := d.opts.Registry.Snapshot()
	now := time.Now().UnixMilli()

	d.mu.Lock()
	first := d.ticks == 0
	d.ticks++

	for name, v := range snap.Counters {
		prev, seen := d.prevCounters[name]
		d.prevCounters[name] = v
		if !seen && first {
			continue // no baseline yet
		}
		delta := float64(0)
		if v >= prev {
			delta = float64(v - prev)
		}
		d.pushLocked(name, KindCounter, Sample{UnixMS: now, Value: delta})
	}
	for name, v := range snap.Gauges {
		d.pushLocked(name, KindGauge, Sample{UnixMS: now, Value: float64(v)})
	}
	for name, h := range snap.Histograms {
		prev, seen := d.prevHistN[name]
		d.prevHistN[name] = h.Count
		d.pushLocked(name+":p50", KindHistogram, Sample{UnixMS: now, Value: h.P50})
		d.pushLocked(name+":p90", KindHistogram, Sample{UnixMS: now, Value: h.P90})
		d.pushLocked(name+":p99", KindHistogram, Sample{UnixMS: now, Value: h.P99})
		if seen || !first {
			delta := float64(0)
			if h.Count >= prev {
				delta = float64(h.Count - prev)
			}
			d.pushLocked(name+":rate", KindHistogram, Sample{UnixMS: now, Value: delta})
		}
	}
	hook := d.onTick
	d.mu.Unlock()
	if hook != nil {
		hook()
	}
}

func (d *DB) pushLocked(name, kind string, s Sample) {
	r, ok := d.series[name]
	if !ok {
		r = &ring{kind: kind, samples: make([]Sample, d.capacity())}
		d.series[name] = r
	}
	r.push(s)
}

// Query returns every series whose metric name contains match (empty
// matches all), restricted to samples at or after since (zero time means
// everything retained). Series are sorted by metric name.
func (d *DB) Query(match string, since time.Time) []Series {
	var cutoff int64
	if !since.IsZero() {
		cutoff = since.UnixMilli()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Series, 0, len(d.series))
	for name, r := range d.series {
		if match != "" && !strings.Contains(name, match) {
			continue
		}
		samples := r.since(cutoff)
		if len(samples) == 0 {
			continue
		}
		out = append(out, Series{
			Metric:  name,
			Kind:    r.kind,
			Node:    d.opts.Node,
			Samples: samples,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Metric < out[j].Metric })
	return out
}

// Samples returns one series' kind and its retained samples at or after
// since (zero time means all), oldest first — the exact-name lookup the
// alert engine evaluates rules against. ok is false when the metric has
// never been sampled.
func (d *DB) Samples(metric string, since time.Time) (kind string, samples []Sample, ok bool) {
	var cutoff int64
	if !since.IsZero() {
		cutoff = since.UnixMilli()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	r, found := d.series[metric]
	if !found {
		return "", nil, false
	}
	return r.kind, r.since(cutoff), true
}

// Doc assembles the GET /v1/timeseries response for a query.
func (d *DB) Doc(match string, since time.Time) Doc {
	return Doc{
		Node:       d.opts.Node,
		IntervalMS: d.opts.Interval.Milliseconds(),
		Series:     d.Query(match, since),
	}
}

// ParseSince interprets a ?since= query parameter, shared by every tier
// serving /v1/timeseries: empty means all retained history, an integer is
// absolute unix milliseconds, and a duration ("90s", "15m") reaches that
// far back from now.
func ParseSince(v string) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
		return time.UnixMilli(ms), nil
	}
	if d, err := time.ParseDuration(v); err == nil {
		return time.Now().Add(-d), nil
	}
	return time.Time{}, fmt.Errorf("tsdb: since must be unix milliseconds or a duration, got %q", v)
}
