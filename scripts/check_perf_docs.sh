#!/bin/sh
# check_perf_docs.sh — fail when PERFORMANCE.md references a CLI flag that
# the binaries no longer advertise.
#
# The handbook names flags as `experiments -flag` or `ddrace -flag`. This
# script extracts every such reference and verifies the flag appears in the
# corresponding binary's -help output, so flag renames break CI instead of
# silently rotting the docs. Run from the repository root.
set -eu

doc=PERFORMANCE.md
[ -f "$doc" ] || { echo "check_perf_docs: $doc not found (run from repo root)" >&2; exit 2; }

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/experiments" ./cmd/experiments
go build -o "$tmp/ddrace" ./cmd/ddrace

# flag package binaries exit nonzero on -help; capture the usage text anyway.
"$tmp/experiments" -help >"$tmp/experiments.help" 2>&1 || true
"$tmp/ddrace" -help >"$tmp/ddrace.help" 2>&1 || true

# Collect "tool -flag" references. Violations accumulate in a file rather
# than a variable: the while loop runs in a pipeline subshell.
grep -oE '(experiments|ddrace) -[a-z][a-z0-9-]*' "$doc" | sort -u |
while read -r tool flag; do
    if ! grep -qE "^  $flag( |$)" "$tmp/$tool.help"; then
        echo "$doc references '$tool $flag' but $tool -help does not list $flag" >>"$tmp/violations"
    fi
done

if [ -s "$tmp/violations" ]; then
    cat "$tmp/violations" >&2
    exit 1
fi
echo "check_perf_docs: all $(grep -cE '(experiments|ddrace) -[a-z][a-z0-9-]*' "$doc") flag references in $doc are live"
