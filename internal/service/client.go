package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Client talks to a ddserved daemon. The zero value is not usable; set
// BaseURL (e.g. "http://127.0.0.1:8318").
type Client struct {
	// BaseURL is the daemon's root URL, without a trailing slash.
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval paces Wait's status polling (default 50ms).
	PollInterval time.Duration
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Code    int
	Message string
	// RetryAfter echoes the Retry-After header on 429/503 (seconds, 0 if
	// absent), so callers can implement backoff.
	RetryAfter int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: daemon returned %d: %s", e.Code, e.Message)
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues a request and decodes either a Status or an APIError.
func (c *Client) do(req *http.Request) (Status, error) {
	resp, err := c.http().Do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return Status{}, apiError(resp)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, fmt.Errorf("service: decoding daemon response: %w", err)
	}
	return st, nil
}

func apiError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body)
	if body.Error == "" {
		body.Error = resp.Status
	}
	retry, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
	return &APIError{Code: resp.StatusCode, Message: body.Error, RetryAfter: retry}
}

// Submit posts a kernel-analysis request.
func (c *Client) Submit(ctx context.Context, r Request) (Status, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return Status{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return Status{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req)
}

// SubmitTrace posts a binary trace for offline replay.
func (c *Client) SubmitTrace(ctx context.Context, tr io.Reader, opts TraceOptions) (Status, error) {
	q := url.Values{}
	if opts.FullVC {
		q.Set("fullvc", "1")
	}
	if opts.MaxReports != 0 {
		q.Set("max_reports", strconv.Itoa(opts.MaxReports))
	}
	if opts.TimeoutMS != 0 {
		q.Set("timeout_ms", strconv.FormatInt(opts.TimeoutMS, 10))
	}
	u := c.BaseURL + "/v1/jobs"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, tr)
	if err != nil {
		return Status{}, err
	}
	req.Header.Set("Content-Type", TraceContentType)
	return c.do(req)
}

// Status fetches a job's current state.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return Status{}, err
	}
	return c.do(req)
}

// Result fetches a done job's result JSON.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/results/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string) (Status, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return Status{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Run submits a request, waits for completion, and fetches the result —
// the whole ddrace -submit round trip. A failed or canceled job returns
// its terminal Status alongside the error.
func (c *Client) Run(ctx context.Context, r Request) ([]byte, Status, error) {
	st, err := c.Submit(ctx, r)
	if err != nil {
		return nil, st, err
	}
	if st, err = c.Wait(ctx, st.ID); err != nil {
		return nil, st, err
	}
	if st.State != StateDone {
		return nil, st, fmt.Errorf("service: job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	data, err := c.Result(ctx, st.ID)
	return data, st, err
}
