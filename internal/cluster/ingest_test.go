package cluster

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"demandrace/internal/demand"
	"demandrace/internal/runner"
	"demandrace/internal/service"
	"demandrace/internal/trace"
	"demandrace/internal/workloads"
)

// recordRacyTrace encodes a continuous-analysis racy_counter run.
func recordRacyTrace(t *testing.T) []byte {
	t.Helper()
	k, _ := workloads.ByName("racy_counter")
	p := k.Build(workloads.Config{Threads: 4, Scale: 1})
	cfg := runner.DefaultConfig().WithPolicy(demand.Continuous)
	rec := trace.NewRecorder(p.Name)
	cfg.Tracer = rec
	if _, err := runner.Run(p, cfg); err != nil {
		t.Fatalf("recording run: %v", err)
	}
	var buf bytes.Buffer
	if err := trace.EncodeBinary(&buf, rec.Trace()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestClusterStreamedUpload drives the full streaming protocol through
// ddgate against a multi-node ring: open pins a backend via the session-ID
// namespace, chunks and partial polls follow the prefix, an injected
// mid-stream fault exercises resume-through-the-gateway, and the sealed
// result is byte-identical to a batch submission of the same bytes.
func TestClusterStreamedUpload(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	raw := recordRacyTrace(t)
	opts := service.TraceOptions{MaxReports: -1}

	backends := make([]Backend, 3)
	for i := range backends {
		_, hs := startBackend(t)
		backends[i] = Backend{Name: string(rune('a' + i)), URL: hs.URL}
	}
	g, cl := newGateway(t, Config{Backends: backends})

	// Batch reference through the same gateway.
	st, err := cl.SubmitTrace(ctx, bytes.NewReader(raw), opts)
	if err != nil {
		t.Fatalf("batch SubmitTrace: %v", err)
	}
	if st, err = cl.Wait(ctx, st.ID); err != nil || st.State != service.StateDone {
		t.Fatalf("batch job %+v (%v)", st, err)
	}
	want, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Streamed upload with a fault injected after the second chunk. The
	// chunk size forces ≥3 chunks so the fault lands mid-stream.
	chunkBytes := len(raw)/4 + 1
	var partials []service.PartialReport
	sst, err := cl.StreamTrace(ctx, raw, opts, service.StreamOptions{
		ChunkBytes: chunkBytes,
		FaultAfter: 2,
		OnPartial:  func(p service.PartialReport) { partials = append(partials, p) },
	})
	if err != nil {
		t.Fatalf("StreamTrace through gateway: %v", err)
	}
	if sst.State != service.StateDone || sst.Kind != "trace" {
		t.Fatalf("streamed status %+v", sst)
	}
	// Both IDs are gateway-namespaced, and they may land on different
	// backends (batch routes by content hash, sessions rotate).
	if _, _, ok := splitJobID(sst.ID); !ok {
		t.Fatalf("streamed job ID %q not namespaced", sst.ID)
	}
	got, err := cl.Result(ctx, sst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed result through gateway differs from batch:\n got %s\nwant %s", got, want)
	}

	// Partials were observable pre-commit, namespaced to the owning node.
	if len(partials) == 0 {
		t.Fatal("no partial reports surfaced mid-stream")
	}
	p := partials[0]
	name, _, ok := splitJobID(p.Session)
	if !ok || g.byName[name] == nil {
		t.Fatalf("partial session %q not namespaced to a backend", p.Session)
	}
	if p.State != "receiving" || len(p.Races) == 0 {
		t.Fatalf("mid-stream partial %+v", p)
	}

	// After commit, the partial stays fetchable by the namespaced job ID.
	p2, err := cl.Partial(ctx, sst.ID)
	if err != nil {
		t.Fatalf("post-commit partial through gateway: %v", err)
	}
	if p2.State != "committed" || p2.Job != sst.ID {
		t.Fatalf("post-commit partial %+v, want job %s", p2, sst.ID)
	}
}

// TestClusterSessionChunksPinned: every chunk of a session goes to the
// backend named in the session ID — the other nodes never see it.
func TestClusterSessionChunksPinned(t *testing.T) {
	ctx := context.Background()
	raw := recordRacyTrace(t)

	srvs := make([]*service.Server, 3)
	backends := make([]Backend, 3)
	for i := range backends {
		s, hs := startBackend(t)
		srvs[i] = s
		backends[i] = Backend{Name: string(rune('a' + i)), URL: hs.URL}
	}
	_, cl := newGateway(t, Config{Backends: backends})

	ts, err := cl.OpenTrace(ctx, service.TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	owner, remoteID, ok := splitJobID(ts.Session)
	if !ok || !strings.HasPrefix(remoteID, "s-") {
		t.Fatalf("session ID %q not in backend:s-n form", ts.Session)
	}
	chunk := raw[:64]
	if _, err := cl.PutChunk(ctx, ts.Session, 0, chunk); err != nil {
		t.Fatal(err)
	}
	for i, s := range srvs {
		n := s.Ingest().Len()
		if backends[i].Name == owner && n != 1 {
			t.Fatalf("owner %s holds %d sessions, want 1", owner, n)
		}
		if backends[i].Name != owner && n != 0 {
			t.Fatalf("non-owner %s holds %d sessions", backends[i].Name, n)
		}
	}

	// An unknown backend prefix 404s at the gateway without a forward.
	if _, err := cl.PutChunk(ctx, "nope:s-1", 1, chunk); err == nil {
		t.Fatal("chunk to unknown backend prefix accepted")
	} else if apiErr, ok := err.(*service.APIError); !ok || apiErr.Code != 404 {
		t.Fatalf("unknown-prefix error %v", err)
	}
}

// TestClusterSessionEventsNamespaced: trace_chunk/race_found events tailed
// from a backend re-publish on the gateway bus with namespaced session IDs.
func TestClusterSessionEventsNamespaced(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	raw := recordRacyTrace(t)

	_, hs := startBackend(t)
	g, cl := newGateway(t, Config{Backends: []Backend{{Name: "solo", URL: hs.URL}}})
	g.Start()
	sub := g.Events().Subscribe(256)
	defer sub.Close()
	// Let the tailer attach before generating events.
	time.Sleep(50 * time.Millisecond)

	if _, err := cl.StreamTrace(ctx, raw, service.TraceOptions{MaxReports: -1},
		service.StreamOptions{ChunkBytes: len(raw)/3 + 1}); err != nil {
		t.Fatalf("StreamTrace: %v", err)
	}

	sawChunk, sawRace := false, false
	for !(sawChunk && sawRace) {
		ev, ok := sub.Next(ctx)
		if !ok {
			t.Fatal("gateway bus closed")
		}
		switch ev.Type {
		case "trace_chunk":
			sawChunk = true
		case "race_found":
			sawRace = true
		default:
			continue
		}
		if !strings.HasPrefix(ev.Job, "solo:s-") {
			t.Fatalf("%s event job %q not namespaced", ev.Type, ev.Job)
		}
	}
}
