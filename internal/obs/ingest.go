package obs

// Canonical metric names for the streaming-ingest subsystem
// (internal/ingest): resumable upload sessions with analyze-while-receiving.
// Same conventions as the service names in this package: `ddserved_`
// prefix (sessions live inside the ddserved process), `_total` on
// counters, bare names for gauges.
const (
	// IngestSessionsOpen gauges currently open (receiving or retained)
	// upload sessions.
	IngestSessionsOpen = "ddserved_ingest_sessions_open"
	// IngestSessionsOpened / Committed / Expired / Failed count session
	// lifecycle outcomes. Expired means the idle GC reclaimed it;
	// Failed means a chunk failed decode or the commit found the stream
	// incomplete.
	IngestSessionsOpened    = "ddserved_ingest_sessions_opened_total"
	IngestSessionsCommitted = "ddserved_ingest_sessions_committed_total"
	IngestSessionsExpired   = "ddserved_ingest_sessions_expired_total"
	IngestSessionsFailed    = "ddserved_ingest_sessions_failed_total"

	// IngestChunks counts applied chunks; IngestChunkDupes counts
	// idempotent replays of already-applied sequence numbers (client
	// retries after a lost ack); IngestChunkBytes totals applied payload
	// bytes.
	IngestChunks     = "ddserved_ingest_chunks_total"
	IngestChunkDupes = "ddserved_ingest_chunk_dupes_total"
	IngestChunkBytes = "ddserved_ingest_chunk_bytes_total"

	// IngestEvents counts events decoded out of the chunk stream;
	// IngestRaces counts races surfaced mid-stream (before commit).
	IngestEvents = "ddserved_ingest_events_total"
	IngestRaces  = "ddserved_ingest_partial_races_total"

	// IngestRejected counts refused chunk/open operations: session quota,
	// inflight backpressure, CRC mismatches, sequence gaps, over-limit
	// payloads.
	IngestRejected = "ddserved_ingest_rejected_total"
)
