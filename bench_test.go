package demandrace_test

import (
	"testing"

	"demandrace"
	"demandrace/internal/detector"
	"demandrace/internal/experiments"
	"demandrace/internal/mem"
	"demandrace/internal/vclock"
)

// One benchmark per reproduced table/figure: each iteration regenerates the
// experiment's data exactly as cmd/experiments prints it. Run with
//
//	go test -bench=. -benchmem
//
// The per-op costs of the component benchmarks at the bottom are the
// FastTrack-vs-full-VC and cache-pipeline ablations DESIGN.md calls out.

func benchExperiment[T any](b *testing.B, fn func(experiments.Options) (T, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := fn(experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Continuous regenerates the continuous-analysis slowdown
// figure (E1).
func BenchmarkFig1Continuous(b *testing.B) { benchExperiment(b, experiments.Fig1) }

// BenchmarkFig2Sharing regenerates the sharing-fraction figure (E2).
func BenchmarkFig2Sharing(b *testing.B) { benchExperiment(b, experiments.Fig2) }

// BenchmarkFig3Hitm regenerates the HITM-fidelity microbenchmarks (E3).
func BenchmarkFig3Hitm(b *testing.B) { benchExperiment(b, experiments.Fig3) }

// BenchmarkFig4Demand regenerates the headline demand-vs-continuous
// comparison (E4).
func BenchmarkFig4Demand(b *testing.B) { benchExperiment(b, experiments.Fig4) }

// BenchmarkTab3Accuracy regenerates the injected-race accuracy table (E5).
func BenchmarkTab3Accuracy(b *testing.B) { benchExperiment(b, experiments.Tab3) }

// BenchmarkFig5Threads regenerates the thread-scaling figure (E6).
func BenchmarkFig5Threads(b *testing.B) { benchExperiment(b, experiments.Fig5) }

// BenchmarkFig6Ablation regenerates the policy/scope ablation (E7).
func BenchmarkFig6Ablation(b *testing.B) { benchExperiment(b, experiments.Fig6) }

// BenchmarkTab4Pmu regenerates the PMU sensitivity table (E8).
func BenchmarkTab4Pmu(b *testing.B) { benchExperiment(b, experiments.Tab4) }

// BenchmarkTab5Sampling regenerates the sampling-vs-demand frontier (E9).
func BenchmarkTab5Sampling(b *testing.B) { benchExperiment(b, experiments.Tab5) }

// ---- per-kernel pipeline benchmarks ----

func benchKernel(b *testing.B, name string, pol demandrace.Policy) {
	b.Helper()
	k, ok := demandrace.KernelByName(name)
	if !ok {
		b.Fatalf("kernel %q missing", name)
	}
	p := k.Build(demandrace.KernelConfig{Threads: 4, Scale: 1})
	cfg := demandrace.DefaultConfig().WithPolicy(pol)
	b.ReportMetric(float64(p.TotalOps()), "progops")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := demandrace.Run(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunSwaptionsContinuous measures the full pipeline on the
// best-case kernel under always-on analysis.
func BenchmarkRunSwaptionsContinuous(b *testing.B) {
	benchKernel(b, "swaptions", demandrace.Continuous)
}

// BenchmarkRunSwaptionsDemand measures the same kernel under the paper's
// policy.
func BenchmarkRunSwaptionsDemand(b *testing.B) {
	benchKernel(b, "swaptions", demandrace.HITMDemand)
}

// BenchmarkRunCannealDemand measures the worst-case (constant-sharing)
// kernel under the demand policy.
func BenchmarkRunCannealDemand(b *testing.B) {
	benchKernel(b, "canneal", demandrace.HITMDemand)
}

// ---- detector representation ablation (DESIGN.md choice #3) ----

func benchDetectorReads(b *testing.B, opt detector.Options) {
	b.Helper()
	d := detector.New(4, 1, 0, opt)
	addrs := make([]mem.Addr, 64)
	for i := range addrs {
		addrs[i] = mem.Addr(0x1000 + i*8)
	}
	// Lock-ordered accesses so no races are reported (reporting would
	// short-circuit the interesting paths).
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := vclock.TID(i % 4)
		d.OnLock(t, 0)
		d.OnRead(t, addrs[i%len(addrs)])
		d.OnWrite(t, addrs[i%len(addrs)])
		d.OnUnlock(t, 0)
	}
}

// BenchmarkDetectorFastTrack exercises the epoch-based shadow
// representation.
func BenchmarkDetectorFastTrack(b *testing.B) {
	benchDetectorReads(b, detector.Options{})
}

// BenchmarkDetectorFullVC exercises the DJIT+-style full-vector-clock
// representation; the gap against FastTrack is the paper's detector's
// reason for epochs.
func BenchmarkDetectorFullVC(b *testing.B) {
	benchDetectorReads(b, detector.Options{FullVC: true})
}

// BenchmarkDetectorSameEpochFastPath isolates FastTrack's O(1) common case.
func BenchmarkDetectorSameEpochFastPath(b *testing.B) {
	d := detector.New(2, 0, 0, detector.Options{})
	d.OnWrite(0, 0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.OnWrite(0, 0x1000)
	}
}

// ---- substrate microbenchmarks ----

func newHierarchy() *demandrace.CacheHierarchy {
	return demandrace.NewCache(demandrace.DefaultCacheConfig())
}

// BenchmarkCacheLocalHit measures the cache simulator's hot path.
func BenchmarkCacheLocalHit(b *testing.B) {
	h := newHierarchy()
	h.Access(0, 0x1000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, 0x1000, false)
	}
}

// BenchmarkCacheHITMPingPong measures the coherence slow path: alternating
// writers on one line.
func BenchmarkCacheHITMPingPong(b *testing.B) {
	h := newHierarchy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(demandrace.Context(i%2), 0x1000, true)
	}
}

// BenchmarkFig7Sweep regenerates the sharing-fraction characteristic curve
// (E10).
func BenchmarkFig7Sweep(b *testing.B) { benchExperiment(b, experiments.Fig7) }

// BenchmarkTab6Protocol regenerates the MESI-vs-MOESI ablation (E11).
func BenchmarkTab6Protocol(b *testing.B) { benchExperiment(b, experiments.Tab6) }
