package service

import (
	"container/list"
	"sync"

	"demandrace/internal/obs"
)

// resultCache is the content-addressed result store: cache key (hash of
// program+config) → marshaled JSON result, with LRU eviction bounded in
// entries. Because simulation runs are pure, entries never go stale; the
// only reason to evict is memory.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits, misses, evictions *obs.Counter
}

type cacheEntry struct {
	key  string
	data []byte
}

// newResultCache builds a cache holding at most capacity entries
// (capacity <= 0 disables caching: every lookup misses, every store drops).
func newResultCache(capacity int, reg *obs.Registry) *resultCache {
	return &resultCache{
		cap:       capacity,
		entries:   make(map[string]*list.Element),
		order:     list.New(),
		hits:      reg.Counter(obs.SvcCacheHits),
		misses:    reg.Counter(obs.SvcCacheMisses),
		evictions: reg.Counter(obs.SvcCacheEvictions),
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).data, true
}

// put stores a result, evicting the least recently used entry past cap.
func (c *resultCache) put(key string, data []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Pure jobs make identical data; just refresh recency.
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, data: data})
	for len(c.entries) > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
