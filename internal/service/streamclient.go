package service

// Client-side streaming upload: the chunked counterpart to SubmitTrace.
// StreamTrace splits a trace into CRC-tagged chunks, pushes them through a
// resumable session, watches partial race reports as the server analyzes
// mid-stream, and commits. Every wire call goes through roundTrip, so the
// client's Options (per-attempt timeouts, retries, Retry-After floors)
// govern chunk pushes exactly as they govern submissions.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"demandrace/internal/ingest"
)

// Streaming wire documents, shared with the server by construction: the
// service layer serves the ingest types verbatim, and the client decodes
// into the same types, so the two cannot drift.
type (
	// TraceSession is the session snapshot from open/status calls.
	TraceSession = ingest.SessionStatus
	// ChunkAck acknowledges one chunk write.
	ChunkAck = ingest.Ack
	// PartialReport is the mid-stream race report.
	PartialReport = ingest.Partial
)

// StreamOptions shape a StreamTrace call.
type StreamOptions struct {
	// ChunkBytes is the split size (default 1 MiB, clamped to the server's
	// advertised max_chunk_bytes).
	ChunkBytes int
	// OnPartial, when set, is called with a fresh partial report each time
	// a chunk ack shows new races — the client-side face of
	// analyze-while-receiving.
	OnPartial func(PartialReport)
	// FaultAfter, when positive, injects one simulated connection drop
	// after that many chunks have been acked: idle connections are torn
	// down and the upload resumes from the server's high-water mark,
	// re-sending one chunk to exercise the duplicate-ack path. This is the
	// resume machinery made testable end-to-end (ddrace -stream-fault, the
	// cluster smoke test); production uploads leave it zero.
	FaultAfter int
}

// OpenTrace opens a streaming upload session (POST /v1/traces).
func (c *Client) OpenTrace(ctx context.Context, opts TraceOptions) (TraceSession, error) {
	u := c.BaseURL + "/v1/traces"
	if q := traceOptionsQuery(opts); q != "" {
		u += "?" + q
	}
	var ts TraceSession
	err := c.doJSON(ctx, &ts, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	})
	return ts, err
}

// PutChunk uploads one chunk (PUT /v1/traces/{id}/chunks/{seq}) with its
// CRC-32C declared in the request header. Retries replay the body under
// the client's Options; duplicate acks from a retried send are normal.
func (c *Client) PutChunk(ctx context.Context, session string, seq uint64, data []byte) (ChunkAck, error) {
	u := fmt.Sprintf("%s/v1/traces/%s/chunks/%d", c.BaseURL, url.PathEscape(session), seq)
	crc := strconv.FormatUint(uint64(ingest.Checksum(data)), 10)
	var ack ChunkAck
	err := c.doJSON(ctx, &ack, func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, u, bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set(ChunkCRCHeader, crc)
		return req, nil
	})
	return ack, err
}

// TraceSessionStatus fetches a session snapshot (GET /v1/traces/{id}) —
// the resume handle: high_water is the next chunk the server expects.
func (c *Client) TraceSessionStatus(ctx context.Context, session string) (TraceSession, error) {
	var ts TraceSession
	err := c.doJSON(ctx, &ts, c.get("/v1/traces/"+url.PathEscape(session)))
	return ts, err
}

// CommitTrace seals a session (POST /v1/traces/{id}/commit) and returns
// the born-done job's status.
func (c *Client) CommitTrace(ctx context.Context, session string) (Status, error) {
	return c.doStatus(ctx, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodPost,
			c.BaseURL+"/v1/traces/"+url.PathEscape(session)+"/commit", nil)
	})
}

// Partial fetches the races found so far (GET /v1/jobs/{id}/partial); id
// is a session ID mid-stream or a job ID after commit.
func (c *Client) Partial(ctx context.Context, id string) (PartialReport, error) {
	var p PartialReport
	err := c.doJSON(ctx, &p, c.get("/v1/jobs/"+url.PathEscape(id)+"/partial"))
	return p, err
}

// StreamTrace uploads raw as a chunked resumable session and commits it,
// returning the sealed job's status. Transport failures mid-stream resync
// from the server's high-water mark (re-sending at most one chunk, which
// the server acks as a duplicate), so a dropped connection costs one
// chunk of progress, not the upload.
func (c *Client) StreamTrace(ctx context.Context, raw []byte, opts TraceOptions, sopts StreamOptions) (Status, error) {
	ts, err := c.OpenTrace(ctx, opts)
	if err != nil {
		return Status{}, err
	}
	chunkBytes := sopts.ChunkBytes
	if chunkBytes <= 0 {
		chunkBytes = 1 << 20
	}
	if ts.MaxChunkBytes > 0 && int64(chunkBytes) > ts.MaxChunkBytes {
		chunkBytes = int(ts.MaxChunkBytes)
	}
	var chunks [][]byte
	for off := 0; off < len(raw); off += chunkBytes {
		end := off + chunkBytes
		if end > len(raw) {
			end = len(raw)
		}
		chunks = append(chunks, raw[off:end])
	}

	var (
		seenRaces int
		faulted   bool
		resyncs   int
	)
	for seq := 0; seq < len(chunks); {
		ack, err := c.PutChunk(ctx, ts.Session, uint64(seq), chunks[seq])
		if err != nil {
			if _, isAPI := err.(*APIError); isAPI || ctx.Err() != nil {
				return Status{}, err
			}
			// Transport failure: the chunk may or may not have landed.
			// Resync from the server's view and continue from there.
			resyncs++
			if resyncs > c.Options.Retries+2 {
				return Status{}, fmt.Errorf("service: streaming upload: %w", err)
			}
			cur, serr := c.TraceSessionStatus(ctx, ts.Session)
			if serr != nil {
				return Status{}, fmt.Errorf("service: resyncing after %v: %w", err, serr)
			}
			seq = int(cur.HighWater)
			continue
		}
		seq = int(ack.HighWater)
		if sopts.OnPartial != nil && ack.Races > seenRaces {
			if p, perr := c.Partial(ctx, ts.Session); perr == nil {
				seenRaces = len(p.Races)
				sopts.OnPartial(p)
			}
		}
		if !faulted && sopts.FaultAfter > 0 && seq >= sopts.FaultAfter && seq < len(chunks) {
			// Injected drop: tear down connections, forget local progress,
			// and recover purely through the resume protocol.
			faulted = true
			c.http().CloseIdleConnections()
			cur, serr := c.TraceSessionStatus(ctx, ts.Session)
			if serr != nil {
				return Status{}, fmt.Errorf("service: resuming after injected fault: %w", serr)
			}
			if cur.HighWater > 0 {
				seq = int(cur.HighWater) - 1 // re-send one → duplicate ack
			} else {
				seq = 0
			}
		}
	}
	return c.CommitTrace(ctx, ts.Session)
}

// doJSON runs a request through roundTrip and decodes the success body.
func (c *Client) doJSON(ctx context.Context, out any, build func(ctx context.Context) (*http.Request, error)) error {
	r, err := c.roundTrip(ctx, build)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(r.body, out); err != nil {
		return fmt.Errorf("service: decoding daemon response: %w", err)
	}
	return nil
}

// traceOptionsQuery renders the options as the query string both upload
// paths accept.
func traceOptionsQuery(opts TraceOptions) string {
	q := url.Values{}
	if opts.FullVC {
		q.Set("fullvc", "1")
	}
	if opts.MaxReports != 0 {
		q.Set("max_reports", strconv.Itoa(opts.MaxReports))
	}
	if opts.TimeoutMS != 0 {
		q.Set("timeout_ms", strconv.FormatInt(opts.TimeoutMS, 10))
	}
	return q.Encode()
}
