package detector

import (
	"math/rand"
	"strings"
	"testing"

	"demandrace/internal/mem"
	"demandrace/internal/vclock"
)

const (
	x = mem.Addr(0x100)
	y = mem.Addr(0x200)
)

func newD(threads int) *Detector { return New(threads, 4, 4, Options{}) }

func TestWriteWriteRace(t *testing.T) {
	d := newD(2)
	d.OnWrite(0, x)
	d.OnWrite(1, x)
	rs := d.Reports()
	if len(rs) != 1 {
		t.Fatalf("reports = %v", rs)
	}
	r := rs[0]
	if r.Kind != WriteWrite || r.Addr != x || r.Cur != 1 || r.Prev != 0 {
		t.Errorf("report = %+v", r)
	}
}

func TestWriteReadRace(t *testing.T) {
	d := newD(2)
	d.OnWrite(0, x)
	d.OnRead(1, x)
	rs := d.Reports()
	if len(rs) != 1 || rs[0].Kind != WriteRead {
		t.Fatalf("reports = %v", rs)
	}
}

func TestReadWriteRace(t *testing.T) {
	d := newD(2)
	d.OnRead(0, x)
	d.OnWrite(1, x)
	rs := d.Reports()
	if len(rs) != 1 || rs[0].Kind != ReadWrite {
		t.Fatalf("reports = %v", rs)
	}
}

func TestReadReadNoRace(t *testing.T) {
	d := newD(2)
	d.OnRead(0, x)
	d.OnRead(1, x)
	if len(d.Reports()) != 0 {
		t.Errorf("read-read reported: %v", d.Reports())
	}
}

func TestSameThreadNoRace(t *testing.T) {
	d := newD(2)
	d.OnWrite(0, x)
	d.OnRead(0, x)
	d.OnWrite(0, x)
	if len(d.Reports()) != 0 {
		t.Errorf("same-thread accesses reported: %v", d.Reports())
	}
}

func TestLockProtectsAccesses(t *testing.T) {
	d := newD(2)
	d.OnLock(0, 0)
	d.OnWrite(0, x)
	d.OnUnlock(0, 0)
	d.OnLock(1, 0)
	d.OnWrite(1, x)
	d.OnRead(1, x)
	d.OnUnlock(1, 0)
	if len(d.Reports()) != 0 {
		t.Errorf("lock-ordered accesses reported: %v", d.Reports())
	}
}

func TestDifferentLocksDoNotOrder(t *testing.T) {
	d := newD(2)
	d.OnLock(0, 0)
	d.OnWrite(0, x)
	d.OnUnlock(0, 0)
	d.OnLock(1, 1)
	d.OnWrite(1, x)
	d.OnUnlock(1, 1)
	if len(d.Reports()) != 1 {
		t.Errorf("differently-locked writes: %v", d.Reports())
	}
}

func TestSemaphoreOrders(t *testing.T) {
	d := newD(2)
	d.OnWrite(0, x)
	d.OnSignal(0, 0)
	d.OnWait(1, 0)
	d.OnRead(1, x)
	if len(d.Reports()) != 0 {
		t.Errorf("signal/wait-ordered accesses reported: %v", d.Reports())
	}
}

func TestAtomicOrders(t *testing.T) {
	flag := mem.Addr(0x300)
	d := newD(2)
	d.OnWrite(0, x)
	d.OnAtomicStore(0, flag)
	d.OnAtomicLoad(1, flag)
	d.OnRead(1, x)
	if len(d.Reports()) != 0 {
		t.Errorf("atomic-ordered accesses reported: %v", d.Reports())
	}
}

func TestBarrierOrders(t *testing.T) {
	d := newD(3)
	d.OnWrite(0, x)
	d.OnWrite(1, y)
	d.OnBarrierRelease([]vclock.TID{0, 1, 2})
	d.OnRead(2, x)
	d.OnRead(2, y)
	if len(d.Reports()) != 0 {
		t.Errorf("barrier-ordered accesses reported: %v", d.Reports())
	}
}

func TestBarrierOrdersBothDirections(t *testing.T) {
	// Accesses after the barrier by different threads still race with each
	// other.
	d := newD(2)
	d.OnBarrierRelease([]vclock.TID{0, 1})
	d.OnWrite(0, x)
	d.OnWrite(1, x)
	if len(d.Reports()) != 1 {
		t.Errorf("post-barrier writes should race: %v", d.Reports())
	}
}

func TestUnlockWithoutHBDoesNotOrder(t *testing.T) {
	// Thread 1 takes the lock *before* thread 0's release is seen: HB comes
	// only through the lock's release clock, so acquiring first gives no
	// edge. Sequence: t1 lock/unlock m, then t0 writes, then t1 writes —
	// the write pair is unordered.
	d := newD(2)
	d.OnLock(1, 0)
	d.OnUnlock(1, 0)
	d.OnWrite(0, x)
	d.OnWrite(1, x)
	if len(d.Reports()) != 1 {
		t.Errorf("reports = %v", d.Reports())
	}
}

func TestReadSharedInflationAndWrite(t *testing.T) {
	d := newD(3)
	d.OnRead(0, x)
	d.OnRead(1, x) // concurrent with read 0 → inflate
	if d.Stats().ReadInflations != 1 {
		t.Errorf("inflations = %d, want 1", d.Stats().ReadInflations)
	}
	d.OnWrite(2, x)
	rs := d.Reports()
	if len(rs) != 1 || rs[0].Kind != ReadWrite {
		t.Fatalf("reports = %v", rs)
	}
	// The representative previous reader must be one of the actual readers.
	if rs[0].Prev != 0 && rs[0].Prev != 1 {
		t.Errorf("prev reader = %d", rs[0].Prev)
	}
}

func TestSharedReadThenOrderedWriteNoRace(t *testing.T) {
	// Both reads happen-before the write via a semaphore each.
	d := newD(3)
	d.OnRead(0, x)
	d.OnSignal(0, 0)
	d.OnRead(1, x)
	d.OnSignal(1, 1)
	d.OnWait(2, 0)
	d.OnWait(2, 1)
	d.OnWrite(2, x)
	if len(d.Reports()) != 0 {
		t.Errorf("ordered shared-read→write reported: %v", d.Reports())
	}
}

func TestSameEpochFastPath(t *testing.T) {
	d := newD(1)
	d.OnRead(0, x)
	d.OnRead(0, x)
	d.OnRead(0, x)
	d.OnWrite(0, x)
	d.OnWrite(0, x)
	st := d.Stats()
	if st.SameEpochHits != 3 {
		t.Errorf("same-epoch hits = %d, want 3", st.SameEpochHits)
	}
}

func TestReportDedupPerAddress(t *testing.T) {
	d := newD(3)
	d.OnWrite(0, x)
	d.OnWrite(1, x)
	d.OnWrite(2, x)
	if len(d.Reports()) != 1 {
		t.Errorf("default cap should keep first report only: %v", d.Reports())
	}
	st := d.Stats()
	if st.Races != 2 || st.Suppressed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReportUnlimited(t *testing.T) {
	d := New(3, 0, 0, Options{MaxReportsPerAddr: -1})
	d.OnWrite(0, x)
	d.OnWrite(1, x)
	d.OnWrite(2, x)
	if len(d.Reports()) != 2 {
		t.Errorf("unlimited reports = %v", d.Reports())
	}
}

func TestDistinctWordsIndependent(t *testing.T) {
	d := newD(2)
	d.OnWrite(0, x)
	d.OnWrite(1, x+mem.WordSize)
	if len(d.Reports()) != 0 {
		t.Errorf("adjacent words reported: %v", d.Reports())
	}
}

func TestSubWordAccessesCollapse(t *testing.T) {
	// Bytes within one word are the same variable to the detector.
	d := newD(2)
	d.OnWrite(0, x)
	d.OnWrite(1, x+3)
	if len(d.Reports()) != 1 {
		t.Errorf("sub-word accesses should collide: %v", d.Reports())
	}
}

func TestLockFullCycleNoFalsePositiveAfterRace(t *testing.T) {
	// After a genuine race the detector must keep functioning for other
	// variables.
	d := newD(2)
	d.OnWrite(0, x)
	d.OnWrite(1, x) // race
	d.OnLock(0, 0)
	d.OnWrite(0, y)
	d.OnUnlock(0, 0)
	d.OnLock(1, 0)
	d.OnRead(1, y)
	d.OnUnlock(1, 0)
	for _, r := range d.Reports() {
		if r.Addr == y {
			t.Errorf("false positive on y: %v", r)
		}
	}
}

// randomEvent drives both representations through an identical random event
// stream and compares the racy-address sets; FastTrack's claim is detection
// equivalence on the first race per variable.
func TestFastTrackMatchesFullVC(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		ft := New(4, 2, 2, Options{})
		fv := New(4, 2, 2, Options{FullVC: true})
		// Track which mutexes each thread holds so the stream is
		// lock-well-formed.
		held := make([]map[int]bool, 4)
		for i := range held {
			held[i] = map[int]bool{}
		}
		addrs := []mem.Addr{0x100, 0x108, 0x110}
		for step := 0; step < 400; step++ {
			tid := vclock.TID(r.Intn(4))
			switch r.Intn(10) {
			case 0, 1, 2, 3:
				a := addrs[r.Intn(len(addrs))]
				ft.OnRead(tid, a)
				fv.OnRead(tid, a)
			case 4, 5, 6:
				a := addrs[r.Intn(len(addrs))]
				ft.OnWrite(tid, a)
				fv.OnWrite(tid, a)
			case 7:
				m := r.Intn(2)
				if !held[tid][m] {
					ft.OnLock(tid, 0)
					fv.OnLock(tid, 0)
					held[tid][m] = true
				}
			case 8:
				m := r.Intn(2)
				if held[tid][m] {
					ft.OnUnlock(tid, 0)
					fv.OnUnlock(tid, 0)
					held[tid][m] = false
				}
			case 9:
				if r.Intn(2) == 0 {
					ft.OnSignal(tid, 0)
					fv.OnSignal(tid, 0)
				} else {
					ft.OnWait(tid, 0)
					fv.OnWait(tid, 0)
				}
			}
		}
		ftAddrs := racyAddrs(ft)
		fvAddrs := racyAddrs(fv)
		if len(ftAddrs) != len(fvAddrs) {
			t.Fatalf("seed %d: fasttrack racy=%v fullvc racy=%v", seed, ftAddrs, fvAddrs)
		}
		for a := range ftAddrs {
			if !fvAddrs[a] {
				t.Fatalf("seed %d: address %v racy under FastTrack only", seed, a)
			}
		}
	}
}

func racyAddrs(d *Detector) map[mem.Addr]bool {
	m := map[mem.Addr]bool{}
	for _, r := range d.Reports() {
		m[r.Addr] = true
	}
	return m
}

// TestNoRaceOnDRFRandomLockDiscipline generates programs where every access
// to a shared variable is protected by one global lock; no interleaving may
// produce a report.
func TestNoRaceOnDRFRandomLockDiscipline(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		d := New(4, 1, 0, Options{})
		// Serialize random critical sections.
		for cs := 0; cs < 60; cs++ {
			tid := vclock.TID(r.Intn(4))
			d.OnLock(tid, 0)
			for i := 0; i < r.Intn(4)+1; i++ {
				a := mem.Addr(0x100 + 8*r.Intn(3))
				if r.Intn(2) == 0 {
					d.OnRead(tid, mem.Addr(a))
				} else {
					d.OnWrite(tid, mem.Addr(a))
				}
			}
			d.OnUnlock(tid, 0)
		}
		if len(d.Reports()) != 0 {
			t.Fatalf("seed %d: DRF program reported %v", seed, d.Reports())
		}
	}
}

func TestRaceKindString(t *testing.T) {
	if WriteWrite.String() != "write-write" || ReadWrite.String() != "read-write" || WriteRead.String() != "write-read" {
		t.Error("RaceKind strings wrong")
	}
}

func TestReportString(t *testing.T) {
	r := Report{Addr: x, Kind: WriteWrite, Cur: 1, Prev: 0, PrevTime: 3}
	if got := r.String(); got != "race write-write on 0x100: t1 vs t0@3" {
		t.Errorf("String = %q", got)
	}
}

func TestRegionsInReports(t *testing.T) {
	d := newD(2)
	d.SetRegion(0, "writer-phase")
	d.OnWrite(0, x)
	d.SetRegion(1, "reader-phase")
	d.OnRead(1, x)
	rs := d.Reports()
	if len(rs) != 1 {
		t.Fatalf("reports = %v", rs)
	}
	if rs[0].CurRegion != "reader-phase" || rs[0].PrevRegion != "writer-phase" {
		t.Errorf("regions = %q vs %q", rs[0].CurRegion, rs[0].PrevRegion)
	}
	want := "race write-read on 0x100: t1 vs t0@1 [reader-phase vs writer-phase]"
	if rs[0].String() != want {
		t.Errorf("String = %q", rs[0].String())
	}
}

func TestRegionsInFullVCReports(t *testing.T) {
	d := New(2, 0, 0, Options{FullVC: true})
	d.SetRegion(0, "a")
	d.OnWrite(0, x)
	d.SetRegion(1, "b")
	d.OnWrite(1, x)
	rs := d.Reports()
	if len(rs) != 1 || rs[0].CurRegion != "b" || rs[0].PrevRegion != "a" {
		t.Errorf("reports = %v", rs)
	}
}

func TestUnannotatedReportsOmitRegions(t *testing.T) {
	d := newD(2)
	d.OnWrite(0, x)
	d.OnWrite(1, x)
	rs := d.Reports()
	if len(rs) != 1 || rs[0].CurRegion != "" || rs[0].PrevRegion != "" {
		t.Fatalf("reports = %v", rs)
	}
	if strings.Contains(rs[0].String(), "[") {
		t.Errorf("unannotated report shows regions: %q", rs[0].String())
	}
}
