package deadlock

import (
	"reflect"
	"testing"

	"demandrace/internal/program"
	"demandrace/internal/vclock"
)

func TestABBACycleDetected(t *testing.T) {
	d := New(2)
	// t0: A then B; t1: B then A — never actually deadlocking here, but
	// the hazard exists.
	d.OnLock(0, 0)
	d.OnLock(0, 1)
	d.OnUnlock(0, 1)
	d.OnUnlock(0, 0)
	d.OnLock(1, 1)
	d.OnLock(1, 0)
	d.OnUnlock(1, 0)
	d.OnUnlock(1, 1)
	rs := d.Reports()
	if len(rs) != 1 {
		t.Fatalf("reports = %v", rs)
	}
	if !reflect.DeepEqual(rs[0].Cycle, []program.SyncID{0, 1}) {
		t.Errorf("cycle = %v", rs[0].Cycle)
	}
	if len(rs[0].Threads) != 2 {
		t.Errorf("witnesses = %v", rs[0].Threads)
	}
}

func TestConsistentOrderClean(t *testing.T) {
	d2 := New(3)
	for rep := 0; rep < 5; rep++ {
		for tid := 0; tid < 3; tid++ {
			tt := vclock.TID(tid)
			d2.OnLock(tt, 0)
			d2.OnLock(tt, 1)
			d2.OnLock(tt, 2)
			d2.OnUnlock(tt, 2)
			d2.OnUnlock(tt, 1)
			d2.OnUnlock(tt, 0)
		}
	}
	if len(d2.Reports()) != 0 {
		t.Errorf("consistent hierarchy reported: %v", d2.Reports())
	}
}

func TestThreeLockCycle(t *testing.T) {
	d := New(3)
	pairs := [][2]program.SyncID{{0, 1}, {1, 2}, {2, 0}}
	for tid, pr := range pairs {
		tt := vclock.TID(tid)
		d.OnLock(tt, pr[0])
		d.OnLock(tt, pr[1])
		d.OnUnlock(tt, pr[1])
		d.OnUnlock(tt, pr[0])
	}
	rs := d.Reports()
	if len(rs) != 1 {
		t.Fatalf("reports = %v", rs)
	}
	if !reflect.DeepEqual(rs[0].Cycle, []program.SyncID{0, 1, 2}) {
		t.Errorf("cycle = %v", rs[0].Cycle)
	}
}

func TestCycleDeduplicated(t *testing.T) {
	d := New(2)
	for rep := 0; rep < 4; rep++ {
		d.OnLock(0, 0)
		d.OnLock(0, 1)
		d.OnUnlock(0, 1)
		d.OnUnlock(0, 0)
		d.OnLock(1, 1)
		d.OnLock(1, 0)
		d.OnUnlock(1, 0)
		d.OnUnlock(1, 1)
	}
	if len(d.Reports()) != 1 {
		t.Errorf("duplicate cycles reported: %v", d.Reports())
	}
	if d.Stats().Cycles != 1 {
		t.Errorf("cycles = %d", d.Stats().Cycles)
	}
}

func TestNestedSameLockNoSelfEdge(t *testing.T) {
	// Holding A while acquiring B then re-walking A's edges must not
	// produce A→A.
	d := New(1)
	d.OnLock(0, 0)
	d.OnLock(0, 1)
	d.OnUnlock(0, 1)
	d.OnLock(0, 1)
	d.OnUnlock(0, 1)
	d.OnUnlock(0, 0)
	if len(d.Reports()) != 0 {
		t.Errorf("reports = %v", d.Reports())
	}
}

func TestSingleThreadInversionStillFlagged(t *testing.T) {
	// Even one thread acquiring in both orders (at different times)
	// creates the hazard for any concurrent second thread.
	d := New(1)
	d.OnLock(0, 0)
	d.OnLock(0, 1)
	d.OnUnlock(0, 1)
	d.OnUnlock(0, 0)
	d.OnLock(0, 1)
	d.OnLock(0, 0)
	d.OnUnlock(0, 0)
	d.OnUnlock(0, 1)
	if len(d.Reports()) != 1 {
		t.Errorf("reports = %v", d.Reports())
	}
}

func TestUnlockOutOfOrder(t *testing.T) {
	// Hand-over-hand locking releases in acquisition order; the held stack
	// must handle non-LIFO release.
	d := New(1)
	d.OnLock(0, 0)
	d.OnLock(0, 1)
	d.OnUnlock(0, 0) // release the outer lock first
	d.OnLock(0, 2)   // edge 1→2 only
	d.OnUnlock(0, 2)
	d.OnUnlock(0, 1)
	if d.Stats().Edges != 2 { // 0→1 and 1→2
		t.Errorf("edges = %d", d.Stats().Edges)
	}
	if len(d.Reports()) != 0 {
		t.Errorf("reports = %v", d.Reports())
	}
}

func TestStats(t *testing.T) {
	d := New(1)
	d.OnLock(0, 0)
	d.OnLock(0, 1)
	d.OnUnlock(0, 1)
	d.OnUnlock(0, 0)
	st := d.Stats()
	if st.Acquires != 2 || st.Releases != 2 || st.Edges != 1 || st.Cycles != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReportString(t *testing.T) {
	r := Report{Cycle: []program.SyncID{0, 1}, Threads: []vclock.TID{0, 1}}
	if r.String() != "potential deadlock: lock cycle [0 1] (witnesses [0 1])" {
		t.Errorf("String = %q", r.String())
	}
}
