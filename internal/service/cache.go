package service

import (
	"container/list"
	"sync"
	"time"

	"demandrace/internal/obs"
	"demandrace/internal/store"
)

// resultCache is the content-addressed result store: cache key (hash of
// program+config) → marshaled JSON result, with LRU eviction bounded in
// entries. Because simulation runs are pure, entries never go stale; the
// only reason to evict is memory.
//
// With a backing store attached the cache becomes two-tier: every put is
// written through to disk, an in-memory miss falls back to a disk lookup
// (promoting the entry back into the LRU), and construction repopulates
// the LRU from disk so cache contents survive restarts. LRU eviction then
// only bounds memory — evicted entries remain answerable from disk until
// the store's own size cap evicts their segment.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	disk    *store.Store

	hits, misses, evictions *obs.Counter
	diskHits, diskErrors    *obs.Counter
	gDiskEntries, gDiskSize *obs.Gauge
}

type cacheEntry struct {
	key  string
	data []byte
}

// newResultCache builds a cache holding at most capacity entries
// (capacity <= 0 disables in-memory caching: every lookup misses unless
// the backing store answers, every store drops). disk may be nil; when
// set, the LRU is warmed from it, newest entries first.
func newResultCache(capacity int, reg *obs.Registry, disk *store.Store) *resultCache {
	c := &resultCache{
		cap:          capacity,
		entries:      make(map[string]*list.Element),
		order:        list.New(),
		disk:         disk,
		hits:         reg.Counter(obs.SvcCacheHits),
		misses:       reg.Counter(obs.SvcCacheMisses),
		evictions:    reg.Counter(obs.SvcCacheEvictions),
		diskHits:     reg.Counter(obs.SvcStoreHits),
		diskErrors:   reg.Counter(obs.SvcStoreErrors),
		gDiskEntries: reg.Gauge(obs.SvcStoreEntries),
		gDiskSize:    reg.Gauge(obs.SvcStoreBytes),
	}
	if disk != nil {
		// Warm the LRU in write order: put-front + trim leaves the newest
		// stored results resident.
		disk.Each(func(key string, data []byte) error {
			c.mu.Lock()
			c.insertLocked(key, data)
			c.mu.Unlock()
			return nil
		})
		c.publishDiskGauges()
	}
	return c
}

// get returns the cached result for key, refreshing its recency. An
// in-memory miss consults the backing store and promotes a disk hit.
func (c *resultCache) get(key string) ([]byte, bool) {
	data, ok, _, _ := c.lookup(key)
	return data, ok
}

// lookup is get plus provenance for the trace waterfall: source is
// "memory" or "disk" on a hit ("" on a miss), and diskDur covers the
// backing-store read when the disk tier answered.
func (c *resultCache) lookup(key string) (data []byte, ok bool, source string, diskDur time.Duration) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits.Inc()
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		return data, true, "memory", 0
	}
	c.mu.Unlock()
	if c.disk != nil {
		readStart := time.Now()
		if data, ok := c.disk.Get(key); ok {
			c.mu.Lock()
			c.insertLocked(key, data)
			c.mu.Unlock()
			c.diskHits.Inc()
			c.hits.Inc()
			return data, true, "disk", time.Since(readStart)
		}
	}
	c.misses.Inc()
	return nil, false, "", 0
}

// put stores a result in memory and writes it through to the backing
// store. A store write failure is counted and logged by the store, never
// surfaced to the job — the result just isn't durable.
func (c *resultCache) put(key string, data []byte) {
	c.mu.Lock()
	c.insertLocked(key, data)
	c.mu.Unlock()
	if c.disk != nil {
		if err := c.disk.Put(key, data); err != nil {
			c.diskErrors.Inc()
		}
		c.publishDiskGauges()
	}
}

// insertLocked adds (or refreshes) a memory entry and trims past cap.
func (c *resultCache) insertLocked(key string, data []byte) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		// Pure jobs make identical data; just refresh recency.
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, data: data})
	for len(c.entries) > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// publishDiskGauges mirrors the store's footprint into the registry.
func (c *resultCache) publishDiskGauges() {
	c.gDiskEntries.Set(int64(c.disk.Len()))
	c.gDiskSize.Set(c.disk.Size())
}

// export returns the bytes stored under key without touching the
// hit/miss accounting: replication reads are fleet-internal traffic, not
// client lookups, and must not perturb the cache-collapse alert ratio.
func (c *resultCache) export(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		return data, true
	}
	c.mu.Unlock()
	if c.disk != nil {
		if data, ok := c.disk.Get(key); ok {
			return data, true
		}
	}
	return nil, false
}

// keys returns every key this node can answer for: memory-resident
// entries (most recent first) followed by disk-only keys in write order.
func (c *resultCache) keys() []string {
	seen := make(map[string]bool)
	var out []string
	c.mu.Lock()
	for el := c.order.Front(); el != nil; el = el.Next() {
		k := el.Value.(*cacheEntry).key
		seen[k] = true
		out = append(out, k)
	}
	c.mu.Unlock()
	if c.disk != nil {
		for _, k := range c.disk.Keys() {
			if !seen[k] {
				out = append(out, k)
			}
		}
	}
	return out
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
